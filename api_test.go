package crew_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"crew"
)

func slowLib(t *testing.T) (*crew.Library, *crew.Registry) {
	t.Helper()
	lib := crew.NewLibrary()
	// The slow step is pinned to a2 while the start step (and so the
	// distributed coordinator) lives on a1: Start returns before the slow
	// program finishes on every architecture.
	lib.Add(crew.NewSchema("Slow").
		Step("A", "fast", crew.WithAgents("a1")).
		Step("B", "slow", crew.WithAgents("a2")).
		Seq("A", "B").
		MustBuild())
	lib.Add(crew.NewSchema("Fast").Step("A", "fast").MustBuild())
	reg := crew.NewRegistry()
	reg.Register("slow", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	})
	reg.Register("fast", crew.NopProgram())
	return lib, reg
}

// TestTypedErrorsAcrossArchitectures pins the error contract of the System
// interface: every architecture reports the same failure classes through the
// same errors.Is-matchable sentinels.
func TestTypedErrorsAcrossArchitectures(t *testing.T) {
	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		t.Run(arch.String(), func(t *testing.T) {
			lib, reg := slowLib(t)
			sys, err := crew.NewSystem(crew.Config{
				Library:      lib,
				Programs:     reg,
				Architecture: arch,
				Agents:       []string{"a1", "a2"},
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}

			if _, err := sys.Start("NoSuch", nil); !errors.Is(err, crew.ErrUnknownWorkflow) {
				t.Errorf("Start(unknown) = %v, want ErrUnknownWorkflow", err)
			}

			id, err := sys.Start("Slow", nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Wait("Slow", id, 10*time.Millisecond); !errors.Is(err, crew.ErrTimeout) {
				t.Errorf("Wait(short deadline) = %v, want ErrTimeout", err)
			}
			if st, err := sys.Wait("Slow", id, waitTimeout); err != nil || st != crew.Committed {
				t.Fatalf("final wait = (%v, %v)", st, err)
			}

			sys.Close()
			if _, err := sys.Start("Fast", nil); !errors.Is(err, crew.ErrClosed) {
				t.Errorf("Start after Close = %v, want ErrClosed", err)
			}
			if _, err := sys.WaitCtx(context.Background(), "Slow", id); !errors.Is(err, crew.ErrClosed) {
				t.Errorf("WaitCtx after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestInstanceErrorsAcrossArchitectures round-trips the instance-level
// sentinels through Abort on every architecture: an instance that never
// existed is ErrUnknownInstance, a committed one is ErrNotRunning.
func TestInstanceErrorsAcrossArchitectures(t *testing.T) {
	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		t.Run(arch.String(), func(t *testing.T) {
			lib, reg := slowLib(t)
			sys, err := crew.NewSystem(crew.Config{
				Library:      lib,
				Programs:     reg,
				Architecture: arch,
				Agents:       []string{"a1", "a2"},
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if err := sys.Abort("Fast", 99); !errors.Is(err, crew.ErrUnknownInstance) {
				t.Errorf("Abort(never started) = %v, want ErrUnknownInstance", err)
			}
			id, st, err := sys.Run("Fast", nil, waitTimeout)
			if err != nil || st != crew.Committed {
				t.Fatalf("run = (%v, %v)", st, err)
			}
			if err := sys.Abort("Fast", id); !errors.Is(err, crew.ErrNotRunning) {
				t.Errorf("Abort(committed) = %v, want ErrNotRunning", err)
			}
		})
	}
}

// TestWaitCtxCancellation distinguishes a plain cancellation (reported as
// ctx.Err()) from a deadline expiry (reported as ErrTimeout).
func TestWaitCtxCancellation(t *testing.T) {
	lib, reg := slowLib(t)
	sys, err := crew.NewSystem(crew.Config{Library: lib, Programs: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	id, err := sys.Start("Slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := sys.WaitCtx(ctx, "Slow", id); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled WaitCtx = %v, want context.Canceled", err)
	}
	if _, err := sys.Wait("Slow", id, waitTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidatePreflight(t *testing.T) {
	lib, reg := slowLib(t)
	good := crew.Config{Library: lib, Programs: reg}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Engines = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative engine count accepted")
	}
	bad = good
	bad.DBs = []*crew.DB{crew.NewMemoryDB()}
	if err := bad.Validate(); err == nil {
		t.Error("central architecture with DBs accepted")
	}
}

// TestInvalidConfigSentinel pins the preflight error contract: every
// rejection — Validate directly, NewSystem's internal validation, and an
// invalid fault plan armed through WithFaults — is errors.Is-matchable
// against ErrInvalidConfig.
func TestInvalidConfigSentinel(t *testing.T) {
	lib, reg := slowLib(t)
	bad := crew.Config{Library: lib, Programs: reg, Engines: -1}
	if err := bad.Validate(); !errors.Is(err, crew.ErrInvalidConfig) {
		t.Errorf("Validate(bad) = %v, want ErrInvalidConfig", err)
	}
	if _, err := crew.NewSystem(bad); !errors.Is(err, crew.ErrInvalidConfig) {
		t.Errorf("NewSystem(bad) = %v, want ErrInvalidConfig", err)
	}
	if _, err := crew.NewSystem(crew.Config{Programs: reg}); !errors.Is(err, crew.ErrInvalidConfig) {
		t.Errorf("NewSystem(no library) = %v, want ErrInvalidConfig", err)
	}
	plan := crew.FaultPlan{Events: []crew.FaultEvent{{Action: crew.FaultRecover, Node: "engine", At: 1}}}
	good := crew.Config{Library: lib, Programs: reg}
	if _, err := crew.NewSystem(good, crew.WithFaults(plan)); !errors.Is(err, crew.ErrInvalidConfig) {
		t.Errorf("NewSystem(bad fault plan) = %v, want ErrInvalidConfig", err)
	}
}

// TestWithFaultsPublicAPI arms a chaos plan through the public option and
// checks that the crash/recovery cycle is applied and survived.
func TestWithFaultsPublicAPI(t *testing.T) {
	lib := crew.NewLibrary()
	lib.Add(crew.NewSchema("W").
		Step("A", "p").Step("B", "p").Step("C", "p").
		Seq("A", "B", "C").
		MustBuild())
	reg := crew.NewRegistry()
	reg.Register("p", crew.NopProgram())

	plan := crew.NewChaosPlan(9, []string{"engine"}, 1, 6, 10, 4)
	col := crew.NewCollector()
	sys, err := crew.NewSystem(crew.Config{
		Library:   lib,
		Programs:  reg,
		DB:        crew.NewMemoryDB(),
		Collector: col,
		Agents:    []string{"a1", "a2"},
		Logf:      t.Logf,
	}, crew.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for i := 0; i < 3; i++ {
		if _, st, err := sys.Run("W", nil, 30*time.Second); err != nil || st != crew.Committed {
			t.Fatalf("instance %d = (%v, %v)", i, st, err)
		}
	}
	if col.Crashes() != 1 || col.Recoveries() != 1 {
		t.Errorf("crashes=%d recoveries=%d, want 1/1", col.Crashes(), col.Recoveries())
	}

	invalid := crew.FaultPlan{Events: []crew.FaultEvent{{Action: crew.FaultRecover, Node: "engine", At: 1}}}
	if _, err := crew.NewSystem(crew.Config{Library: lib, Programs: reg}, crew.WithFaults(invalid)); err == nil {
		t.Error("invalid fault plan accepted")
	}
}
