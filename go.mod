module crew

go 1.22.0

toolchain go1.24.0

require golang.org/x/tools v0.28.1

// Vendored subset of golang.org/x/tools (go/analysis + unitchecker and their
// internal dependencies), copied from the Go toolchain's own vendored copy
// (GOROOT/src/cmd/vendor). The build environment has no network access, so
// the module is resolved locally; the copy carries the upstream LICENSE.
replace golang.org/x/tools => ./third_party/golang.org/x/tools
