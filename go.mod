module crew

go 1.22
