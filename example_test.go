package crew_test

import (
	"fmt"
	"time"

	"crew"
)

// Example runs a two-step workflow compiled from LAWS on the distributed
// control architecture.
func Example() {
	lib := crew.MustCompileLAWS(`
workflow Order {
  inputs Qty
  step Reserve {
    program "reserve"
    inputs WF.Qty
    outputs O1
  }
  step Ship { program "ship" inputs Reserve.O1 }
  Reserve -> Ship
}`)

	reg := crew.NewRegistry()
	reg.Register("reserve", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		qty, _ := ctx.Inputs["WF.Qty"].AsNum()
		return map[string]crew.Value{"O1": crew.Num(qty * 2)}, nil
	})
	reg.Register("ship", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		fmt.Println("shipping", ctx.Inputs["Reserve.O1"], "units")
		return nil, nil
	})

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: crew.Distributed,
		Agents:       []string{"a1", "a2"},
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	_, status, err := sys.Run("Order", map[string]crew.Value{"Qty": crew.Num(21)}, 5*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", status)
	// Output:
	// shipping 42 units
	// status: committed
}

// ExampleCompileLAWS shows failure handling declared in LAWS: the failing
// payment rolls the workflow back to the quote, which re-executes.
func ExampleCompileLAWS() {
	lib, err := crew.CompileLAWS(`
workflow Pay {
  step Quote { program "quote" outputs Price }
  step Charge { program "charge" inputs Quote.Price }
  Quote -> Charge
  on failure of Charge rollback to Quote attempts 3
}`)
	if err != nil {
		panic(err)
	}

	reg := crew.NewRegistry()
	attempt := 0
	reg.Register("quote", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		attempt++
		return map[string]crew.Value{"Price": crew.Num(float64(90 + 10*attempt))}, nil
	})
	reg.Register("charge", crew.FailNTimes(1, func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		fmt.Println("charged", ctx.Inputs["Quote.Price"])
		return nil, nil
	}))

	sys, err := crew.NewSystem(crew.Config{
		Library:  lib,
		Programs: reg,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	_, status, err := sys.Run("Pay", nil, 5*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", status)
	// Output:
	// charged 100
	// status: committed
}
