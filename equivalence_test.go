package crew_test

// Cross-architecture equivalence: the three control architectures are
// different machines executing the same semantics, so a deterministic
// workload must commit the same instances with the same final data on all
// of them (paper Figure 6: the architecture is a deployment choice, not a
// semantics choice).

import (
	"testing"
	"time"

	"crew"
	"crew/internal/analysis"
	"crew/internal/rules"
	"crew/internal/workload"
)

type outcome struct {
	status crew.Status
	data   map[string]string
}

func equivalenceParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 3
	p.S = 7
	p.Z = 6
	p.A = 2
	p.F = 2
	p.R = 2
	p.ME, p.RO, p.RD = 0, 2, 0 // ordering on, failures off: fully deterministic
	p.PF, p.PI, p.PA, p.PR = 0, 0, 0, 0
	return p
}

// collectOutcomes runs the deterministic workload on every architecture and
// returns the terminal status and final data of each instance, keyed by
// workflow and instance index.
func collectOutcomes(t *testing.T, p analysis.Parameters) map[crew.Architecture]map[string]outcome {
	t.Helper()
	const instances = 4
	results := make(map[crew.Architecture]map[string]outcome)
	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		w, err := workload.Generate(p, 99)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := crew.NewSystem(crew.Config{
			Library:      w.Library,
			Programs:     w.Programs,
			Architecture: arch,
			Agents:       w.Agents,
			Engines:      3,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]outcome)
		for _, wf := range w.Library.Names() {
			for i := 0; i < instances; i++ {
				id, st, err := sys.Run(wf, w.Inputs(i), 20*time.Second)
				if err != nil {
					sys.Close()
					t.Fatalf("%v %s: %v", arch, wf, err)
				}
				snap, ok := sys.Snapshot(wf, id)
				if !ok {
					sys.Close()
					t.Fatalf("%v %s.%d: no snapshot", arch, wf, id)
				}
				data := make(map[string]string, len(snap.Data))
				for k, v := range snap.Data {
					data[k] = v.GoString()
				}
				got[wf+"#"+string(rune('0'+i))] = outcome{status: st, data: data}
			}
		}
		sys.Close()
		results[arch] = got
	}
	return results
}

// compareOutcomes fails the test on any status or data divergence between the
// two outcome sets.
func compareOutcomes(t *testing.T, label string, base, other map[string]outcome) {
	t.Helper()
	if len(other) != len(base) {
		t.Fatalf("%s produced %d outcomes, reference %d", label, len(other), len(base))
	}
	for key, want := range base {
		got, ok := other[key]
		if !ok {
			t.Errorf("%s missing outcome %s", label, key)
			continue
		}
		if got.status != want.status {
			t.Errorf("%s %s status = %v, reference %v", label, key, got.status, want.status)
		}
		for item, v := range want.data {
			if got.data[item] != v {
				t.Errorf("%s %s data %s = %s, reference %s", label, key, item, got.data[item], v)
			}
		}
	}
}

func TestArchitecturesProduceEquivalentResults(t *testing.T) {
	results := collectOutcomes(t, equivalenceParams())
	base := results[crew.Central]
	for _, arch := range []crew.Architecture{crew.Parallel, crew.Distributed} {
		compareOutcomes(t, arch.String(), base, results[arch])
	}
}

// TestIndexedRulePathMatchesScanReference forces every rule engine in the
// system through the reference scan evaluation path and re-runs the
// deterministic workload: the indexed (reactive) path must produce the same
// outcomes on every architecture — the engine's inverted index is an
// evaluation strategy, never a semantics change.
func TestIndexedRulePathMatchesScanReference(t *testing.T) {
	p := equivalenceParams()

	rules.SetScanOnly(true)
	scan := collectOutcomes(t, p)
	rules.SetScanOnly(false)
	indexed := collectOutcomes(t, p)

	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		compareOutcomes(t, "indexed/"+arch.String(), scan[arch], indexed[arch])
	}
}
