package crew_test

// Cross-architecture equivalence: the three control architectures are
// different machines executing the same semantics, so a deterministic
// workload must commit the same instances with the same final data on all
// of them (paper Figure 6: the architecture is a deployment choice, not a
// semantics choice).

import (
	"testing"
	"time"

	"crew"
	"crew/internal/analysis"
	"crew/internal/workload"
)

func TestArchitecturesProduceEquivalentResults(t *testing.T) {
	p := analysis.Default()
	p.C = 3
	p.S = 7
	p.Z = 6
	p.A = 2
	p.F = 2
	p.R = 2
	p.ME, p.RO, p.RD = 0, 2, 0 // ordering on, failures off: fully deterministic
	p.PF, p.PI, p.PA, p.PR = 0, 0, 0, 0

	type outcome struct {
		status crew.Status
		data   map[string]string
	}
	const instances = 4

	results := make(map[crew.Architecture]map[string]outcome)
	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		w, err := workload.Generate(p, 99)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := crew.NewSystem(crew.Config{
			Library:      w.Library,
			Programs:     w.Programs,
			Architecture: arch,
			Agents:       w.Agents,
			Engines:      3,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]outcome)
		for _, wf := range w.Library.Names() {
			for i := 0; i < instances; i++ {
				id, st, err := sys.Run(wf, w.Inputs(i), 20*time.Second)
				if err != nil {
					sys.Close()
					t.Fatalf("%v %s: %v", arch, wf, err)
				}
				snap, ok := sys.Snapshot(wf, id)
				if !ok {
					sys.Close()
					t.Fatalf("%v %s.%d: no snapshot", arch, wf, id)
				}
				data := make(map[string]string, len(snap.Data))
				for k, v := range snap.Data {
					data[k] = v.GoString()
				}
				got[wf+"#"+string(rune('0'+i))] = outcome{status: st, data: data}
			}
		}
		sys.Close()
		results[arch] = got
	}

	base := results[crew.Central]
	for _, arch := range []crew.Architecture{crew.Parallel, crew.Distributed} {
		other := results[arch]
		if len(other) != len(base) {
			t.Fatalf("%v produced %d outcomes, central %d", arch, len(other), len(base))
		}
		for key, want := range base {
			got, ok := other[key]
			if !ok {
				t.Errorf("%v missing outcome %s", arch, key)
				continue
			}
			if got.status != want.status {
				t.Errorf("%v %s status = %v, central %v", arch, key, got.status, want.status)
			}
			for item, v := range want.data {
				if got.data[item] != v {
					t.Errorf("%v %s data %s = %s, central %s", arch, key, item, got.data[item], v)
				}
			}
		}
	}
}
