package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crew/internal/distributed"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/ocr"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// cmdFig4 demonstrates the paper's Figure 4: the message protocol that
// establishes a relative order between two concurrent workflows using the
// AddRule / AddPrecondition / AddEvent workflow interfaces. It runs two
// ordered two-step workflows on a distributed deployment with a transport
// trace and prints the coordination messages in order.
func cmdFig4() error {
	reg := model.NewRegistry()
	for _, p := range []string{"pa1", "pb1", "pa2", "pb2"} {
		reg.Register(p, model.NopProgram())
	}
	wf1 := model.NewSchema("WF1").
		Step("S12", "pa1", model.WithAgents("a2")).
		Step("S14", "pb1", model.WithAgents("a2")).
		Seq("S12", "S14").MustBuild()
	wf2 := model.NewSchema("WF2").
		Step("S23", "pa2", model.WithAgents("a3")).
		Step("S25", "pb2", model.WithAgents("a3")).
		Seq("S23", "S25").MustBuild()
	lib := model.NewLibrary()
	lib.Add(wf1)
	lib.Add(wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "WF1", Step: "S12"}, B: model.StepRef{Workflow: "WF2", Step: "S23"}},
			{A: model.StepRef{Workflow: "WF1", Step: "S14"}, B: model.StepRef{Workflow: "WF2", Step: "S25"}},
		},
	})

	col := metrics.NewCollector()
	sys, err := distributed.NewSystem(distributed.SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: col,
		Agents:    []string{"a1", "a2", "a3"},
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	var mu sync.Mutex
	var trace []string
	sys.Network().Trace(func(m transport.Message) {
		if m.Mechanism != metrics.Coordination {
			return
		}
		mu.Lock()
		trace = append(trace, fmt.Sprintf("%-9s -> %-9s %s", m.From, m.To, m.Kind))
		mu.Unlock()
	})

	id1, err := sys.Start("WF1", nil)
	if err != nil {
		return err
	}
	if _, err := sys.Wait("WF1", id1, 10*time.Second); err != nil {
		return err
	}
	id2, err := sys.Start("WF2", nil)
	if err != nil {
		return err
	}
	if _, err := sys.Wait("WF2", id2, 10*time.Second); err != nil {
		return err
	}

	fmt.Println("Figure 4: Enforcing Relative Order — protocol trace")
	fmt.Println("  WF1.1 executes the first conflicting pair member first (leading);")
	fmt.Println("  WF2.1 enrolls behind it (lagging) and waits for AddEvent releases.")
	fmt.Println()
	mu.Lock()
	defer mu.Unlock()
	for _, line := range trace {
		fmt.Println("  " + line)
	}
	fmt.Printf("\n  coordination messages: %d\n", col.Messages(metrics.Coordination))
	return nil
}

// cmdFig5 demonstrates the paper's Figure 5: the decisions of the
// opportunistic compensation and re-execution algorithm across the scenarios
// the paper distinguishes.
func cmdFig5() error {
	fmt.Println("Figure 5: Opportunistic Compensation and Re-execution — decisions")
	type scenario struct {
		name   string
		step   *model.Step
		rec    *wfdb.StepRecord
		inputs map[string]expr.Value
		data   expr.MapEnv
	}
	baseRec := &wfdb.StepRecord{
		Status:    wfdb.StepDone,
		HasResult: true,
		Attempts:  1,
		Inputs:    map[string]expr.Value{"WF.Qty": expr.Num(10)},
		Outputs:   map[string]expr.Value{"O1": expr.Num(10)},
	}
	scenarios := []scenario{
		{
			name:   "first execution (no previous results)",
			step:   &model.Step{ID: "S2", Program: "p", Compensation: "c"},
			rec:    nil,
			inputs: map[string]expr.Value{"WF.Qty": expr.Num(10)},
		},
		{
			name:   "inputs unchanged: previous results reused",
			step:   &model.Step{ID: "S2", Program: "p", Compensation: "c"},
			rec:    baseRec,
			inputs: map[string]expr.Value{"WF.Qty": expr.Num(10)},
		},
		{
			name:   "inputs changed: complete compensation + re-execution",
			step:   &model.Step{ID: "S2", Program: "p", Compensation: "c"},
			rec:    baseRec,
			inputs: map[string]expr.Value{"WF.Qty": expr.Num(12)},
		},
		{
			name:   "inputs changed, incremental step: partial comp + incremental re-exec",
			step:   &model.Step{ID: "S2", Program: "p", Compensation: "c", Incremental: true},
			rec:    baseRec,
			inputs: map[string]expr.Value{"WF.Qty": expr.Num(12)},
		},
		{
			name:   "condition says previous reservation still covers the order",
			step:   &model.Step{ID: "S2", Program: "p", Compensation: "c", ReexecCond: "WF.Qty > prev.WF.Qty"},
			rec:    baseRec,
			inputs: map[string]expr.Value{"WF.Qty": expr.Num(7)},
			data:   expr.MapEnv{"WF.Qty": expr.Num(7)},
		},
	}
	for _, sc := range scenarios {
		d, err := ocr.Decide(nil, sc.step, sc.rec, sc.inputs, sc.data)
		note := ""
		if err != nil {
			note = " (" + err.Error() + ")"
		}
		fmt.Printf("  %-68s -> %s%s\n", sc.name, d, note)
	}
	fmt.Println("\n  cost model (exec=100, comp=50 load units):")
	for _, d := range []ocr.Decision{ocr.Reuse, ocr.IncrementalCR, ocr.CompleteCR} {
		fmt.Printf("  %-42s %4d units\n", d, ocr.CostUnits(d, 100, 50))
	}
	return nil
}

// cmdFig7 prints the paper's Figure 7 sample workflow packet.
func cmdFig7() error {
	p := &distributed.Packet{
		Workflow:   "WF2",
		Instance:   4,
		TargetStep: "S3",
		Data: map[string]expr.Value{
			"WF.I1": expr.Num(90),
			"WF.I2": expr.Str("Blower"),
			"S1.O1": expr.Num(20),
			"S1.O2": expr.Str("Gasket"),
			"S2.O1": expr.Num(45),
			"S2.O2": expr.Num(400),
		},
		Events:  []string{"WF.start", "S1.done", "S2.done"},
		Leading: []string{"WF3.15", "WF4.13"},
		Lagging: []string{"WF5.12"},
	}
	fmt.Println("Figure 7: Sample Workflow Packet in Distributed Control")
	fmt.Println()
	fmt.Print(indent(p.String(), "  "))
	return nil
}

func indent(s, prefix string) string {
	lines := []string{}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	sort.SliceStable(lines, func(i, j int) bool { return false }) // keep order
	out := ""
	for _, l := range lines {
		if l == "" {
			continue
		}
		out += prefix + l + "\n"
	}
	return out
}
