// Command crewsim regenerates the paper's evaluation: the parameter space
// (Table 3), the per-architecture load/message tables with analytic and
// measured columns (Tables 4-6), the architecture recommendation (Table 7),
// the parameter sweeps behind §6's scaling claims, and demonstrations of the
// relative-ordering protocol (Figure 4), the OCR algorithm (Figure 5) and
// the workflow packet (Figure 7).
//
// Usage:
//
//	crewsim table3
//	crewsim table4|table5|table6 [-i N] [-seed S] [-s steps] [-z agents] [-e engines]
//	crewsim table7  [-i N] [-seed S]
//	crewsim sweep   [-i N] -param s|z|e|ro -values 5,10,15 [-arch central|parallel|distributed]
//	crewsim throughput [-i N] [-rounds 1,5,10] [-arch all] [-dbdir DIR] [-seed S]
//	crewsim chaos   [-i N] [-seed S] [-crashes 1,2,4] [-sfr RATE] [-drop K] [-smoke]
//	crewsim fig4
//	crewsim fig5
//	crewsim fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"crew/internal/analysis"
	"crew/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	// Global flags precede the subcommand (flag parsing stops at the first
	// non-flag argument, so plain "crewsim table4 -i 5" is unaffected).
	global := flag.NewFlagSet("crewsim", flag.ExitOnError)
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := global.String("memprofile", "", "write a heap profile to `file` on exit")
	global.Usage = func() { usage() }
	global.Parse(os.Args[1:])
	if global.NArg() < 1 {
		usage()
		return 2
	}
	cmd := global.Arg(0)
	args := global.Args()[1:]

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crewsim: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "crewsim: -cpuprofile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crewsim: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "crewsim: -memprofile:", err)
			}
		}()
	}

	if err := dispatch(cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "crewsim:", err)
		return 1
	}
	return 0
}

func dispatch(cmd string, args []string) error {
	var err error
	switch cmd {
	case "table3":
		err = cmdTable3()
	case "table4":
		err = cmdTable(analysis.Central, "Table 4: Load and Physical Messages in Centralized Workflow Control", args)
	case "table5":
		err = cmdTable(analysis.Parallel, "Table 5: Load and Physical Messages in Parallel Workflow Control", args)
	case "table6":
		err = cmdTable(analysis.Distributed, "Table 6: Load and Physical Messages in Distributed Workflow Control", args)
	case "table7":
		err = cmdTable7(args)
	case "sweep":
		err = cmdSweep(args)
	case "throughput":
		err = cmdThroughput(args)
	case "chaos":
		err = cmdChaos(args)
	case "fig4":
		err = cmdFig4()
	case "fig5":
		err = cmdFig5()
	case "fig7":
		err = cmdFig7()
	default:
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: crewsim [-cpuprofile file] [-memprofile file] <table3|table4|table5|table6|table7|sweep|throughput|chaos|fig4|fig5|fig7> [flags]`)
}

// experimentParams defines the measured-run parameter point: Table 3
// averages scaled down in c/i so a run takes seconds, with every mechanism
// active.
func experimentParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 4
	p.S = 10
	p.Z = 10
	p.A = 2
	p.F = 2
	p.R = 3
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 1
	return p
}

func paramFlags(fs *flag.FlagSet, p *analysis.Parameters) (instances *int, seed *int64) {
	instances = fs.Int("i", 5, "instances per schema")
	seed = fs.Int64("seed", 1, "workload seed")
	fs.IntVar(&p.S, "s", p.S, "steps per workflow")
	fs.IntVar(&p.C, "c", p.C, "workflow schemas")
	fs.IntVar(&p.Z, "z", p.Z, "agents")
	fs.IntVar(&p.E, "e", p.E, "engines")
	fs.IntVar(&p.A, "a", p.A, "eligible agents per step")
	fs.IntVar(&p.RO, "ro", p.RO, "relative-order steps per workflow")
	fs.IntVar(&p.ME, "me", p.ME, "mutex steps per workflow")
	fs.IntVar(&p.RD, "rd", p.RD, "rollback-dependency steps per workflow")
	fs.Float64Var(&p.PF, "pf", p.PF, "step failure probability")
	return instances, seed
}

func cmdTable3() error {
	fmt.Println("Table 3: Parameters used in Analysis")
	fmt.Printf("  %-52s %-7s %s\n", "Parameter", "Symbol", "Value Range")
	for _, r := range analysis.Table3() {
		fmt.Printf("  %-52s %-7s %g - %g\n", r.Name, r.Symbol, r.Lo, r.Hi)
	}
	return nil
}

func cmdTable(arch analysis.Architecture, title string, args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	p := experimentParams()
	instances, seed := paramFlags(fs, &p)
	backend := fs.String("backend", "inproc", "wire backend: inproc|unix|tcp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := experiment.Run(experiment.Options{
		Arch:      arch,
		Params:    p,
		Instances: *instances,
		Seed:      *seed,
		Timeout:   5 * time.Minute,
		Backend:   *backend,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiment.FormatComparison(title, m))
	return nil
}

func cmdTable7(args []string) error {
	fs := flag.NewFlagSet("table7", flag.ExitOnError)
	p := experimentParams()
	instances, seed := paramFlags(fs, &p)
	backend := fs.String("backend", "inproc", "wire backend: inproc|unix|tcp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The three deployments are independent (separate networks, separate
	// collectors), so measure them concurrently.
	results := make(map[analysis.Architecture]*experiment.Measured, 3)
	errs := make([]error, len(analysis.Architectures))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, arch := range analysis.Architectures {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := experiment.Run(experiment.Options{
				Arch: arch, Params: p, Instances: *instances, Seed: *seed,
				Timeout: 5 * time.Minute, Backend: *backend,
			})
			if err != nil {
				errs[i] = fmt.Errorf("%v: %w", arch, err)
				return
			}
			mu.Lock()
			results[arch] = m
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Println("Table 7: Recommended Choice of Architectures (analytic | measured)")
	fmt.Printf("  %-18s %-34s %-34s\n", "Criteria", "Load at Node", "Physical Messages")
	for _, c := range analysis.Criteria {
		al := analysis.RecommendLoad(p, c)
		am := analysis.RecommendMessages(p, c)
		ml := experiment.RankMeasured(results, c, true)
		mm := experiment.RankMeasured(results, c, false)
		fmt.Printf("  %-18s analytic: %-24s analytic: %s\n", c, rankStr(al.Order), rankStr(am.Order))
		fmt.Printf("  %-18s measured: %-24s measured: %s\n", "", rankStr(ml.Order), rankStr(mm.Order))
	}
	return nil
}

// cmdChaos sweeps crash counts across all three architectures under the
// deterministic fault injector, reporting recovery metrics and the verified
// coordination invariants. Any non-terminal instance or invariant violation
// fails the command, so it doubles as a CI recovery check (-smoke shrinks it
// to one quick point per architecture).
// cmdThroughput runs the sustained-load sweep: each point keeps one
// deployment alive and drives rounds × i instances of every schema through
// it in disjoint id windows, reporting instances/sec, the peak goroutine
// count and the heap retained after the final quiesce. With retirement the
// retained column stays roughly flat as rounds grow — that is the point.
func cmdThroughput(args []string) error {
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	archName := fs.String("arch", "all", "central|parallel|distributed|all")
	rounds := fs.String("rounds", "1,5,10", "comma-separated round counts (sweep points)")
	instances := fs.Int("i", 5, "instances per schema per round")
	seed := fs.Int64("seed", 1, "workload seed")
	dbdir := fs.String("dbdir", "", "directory for file-backed spilled WFDBs (default: in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var archs []analysis.Architecture
	switch *archName {
	case "all":
		archs = analysis.Architectures
	case "central":
		archs = []analysis.Architecture{analysis.Central}
	case "parallel":
		archs = []analysis.Architecture{analysis.Parallel}
	case "distributed":
		archs = []analysis.Architecture{analysis.Distributed}
	default:
		return fmt.Errorf("unknown architecture %q", *archName)
	}
	var points []int
	for _, vs := range strings.Split(*rounds, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(vs))
		if err != nil {
			return err
		}
		points = append(points, v)
	}
	fmt.Printf("Sustained-load throughput (i=%d instances/schema/round, seed=%d)\n", *instances, *seed)
	// Points run sequentially: rate and goroutine numbers are only
	// meaningful on an otherwise idle machine.
	for _, arch := range archs {
		for _, r := range points {
			dir := ""
			if *dbdir != "" {
				dir = fmt.Sprintf("%s/%v-r%d", *dbdir, arch, r)
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
			}
			res, err := experiment.Throughput(experiment.ThroughputOptions{
				Arch: arch, Params: experimentParams(), Rounds: r,
				Instances: *instances, Seed: *seed,
				Timeout: 5 * time.Minute, DBDir: dir,
			})
			if err != nil {
				return err
			}
			fmt.Println("  " + experiment.FormatThroughput(res))
		}
	}
	return nil
}

func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	instances := fs.Int("i", 3, "instances per schema")
	seed := fs.Int64("seed", 1, "workload and fault-plan seed")
	crashList := fs.String("crashes", "1,2,4", "comma-separated crash counts to sweep")
	sfr := fs.Float64("sfr", 0, "injected transient step-failure rate")
	drop := fs.Int("drop", 0, "drop every k-th message (0 disables)")
	backend := fs.String("backend", "inproc", "wire backend: inproc|unix|tcp")
	smoke := fs.Bool("smoke", false, "quick single-point run per architecture")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var counts []int
	if *smoke {
		counts = []int{1}
		*instances = 2
	} else {
		for _, vs := range strings.Split(*crashList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(vs))
			if err != nil {
				return err
			}
			counts = append(counts, v)
		}
	}
	p := experimentParams()
	p.RO = 3 // three ordered instances make the relative-order check non-vacuous

	fmt.Printf("Chaos sweep (seed=%d, %d instances/schema, sfr=%g, drop=%d)\n",
		*seed, *instances, *sfr, *drop)
	failures := 0
	for _, crashes := range counts {
		fmt.Printf("crashes=%d\n", crashes)
		for _, arch := range analysis.Architectures {
			m, _, err := experiment.RunChaos(experiment.ChaosOptions{
				Arch:         arch,
				Params:       p,
				Instances:    *instances,
				Seed:         *seed,
				Timeout:      5 * time.Minute,
				Crashes:      crashes,
				StepFailRate: *sfr,
				DropEvery:    *drop,
				Backend:      *backend,
			})
			if err != nil {
				return fmt.Errorf("%v crashes=%d: %w", arch, crashes, err)
			}
			fmt.Printf("  %s\n", experiment.FormatChaos(m))
			fmt.Printf("  %-12s plan: %s\n", "", m.PlanDigest())
			failures += len(m.NonTerminal) + len(m.MutexViolations) + len(m.OrderViolations)
			if m.CrashesApplied < 1 {
				failures++
				fmt.Printf("  %-12s ERROR: no crash was applied\n", "")
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d recovery-contract violations", failures)
	}
	return nil
}

func rankStr(order []analysis.Architecture) string {
	parts := make([]string, len(order))
	for i, a := range order {
		parts[i] = fmt.Sprintf("(%d)%s", i+1, a)
	}
	return strings.Join(parts, " ")
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	param := fs.String("param", "z", "parameter to sweep: s|z|e|a|ro|pf")
	values := fs.String("values", "4,8,16", "comma-separated values")
	archName := fs.String("arch", "distributed", "central|parallel|distributed")
	instances := fs.Int("i", 5, "instances per schema")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var arch analysis.Architecture
	switch *archName {
	case "central":
		arch = analysis.Central
	case "parallel":
		arch = analysis.Parallel
	case "distributed":
		arch = analysis.Distributed
	default:
		return fmt.Errorf("unknown architecture %q", *archName)
	}
	// Parse the whole sweep up front, then measure every point concurrently
	// (each point is its own deployment) and print in input order.
	var points []float64
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return err
		}
		points = append(points, v)
	}
	lines := make([]string, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	for i, v := range points {
		p := experimentParams()
		switch *param {
		case "s":
			p.S = int(v)
		case "z":
			p.Z = int(v)
		case "e":
			p.E = int(v)
		case "a":
			p.A = int(v)
		case "ro":
			p.RO = int(v)
		case "pf":
			p.PF = v
		default:
			return fmt.Errorf("unknown parameter %q", *param)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := experiment.Run(experiment.Options{
				Arch: arch, Params: p, Instances: *instances, Seed: *seed,
				Timeout: 5 * time.Minute,
			})
			if err != nil {
				errs[i] = err
				return
			}
			lines[i] = fmt.Sprintf("  %s=%-6g msgs=%-8.2f coord=%-8.2f load=%-8.3f",
				*param, v,
				m.MsgsPerInstance[analysis.RowNormal],
				m.MsgsPerInstance[analysis.RowCoord],
				m.LoadPerInstance[analysis.RowNormal])
		}()
	}
	wg.Wait()
	fmt.Printf("Sweep of %s on %v (normal msgs/inst, coord msgs/inst, load/inst per node)\n", *param, arch)
	for i, line := range lines {
		if errs[i] != nil {
			return errs[i]
		}
		fmt.Println(line)
	}
	return nil
}
