// Command crewrun compiles a LAWS specification and runs one instance of a
// workflow on the chosen control architecture, printing the execution trace
// and the final data table. Step programs are synthesized: every program
// succeeds and produces its declared outputs (numbers derived from the
// inputs), and -fail can inject a one-time failure at a named step to watch
// the failure-handling machinery (rollback, OCR, compensation) at work.
//
// The transport is selectable: -backend carries every message through
// in-process channels (default), unix-domain sockets or loopback TCP, and
// -procs runs the distributed architecture as a real multi-process
// deployment — one OS process per agent, joined through the hub wire
// protocol, with -fail exercising failure handling across genuine process
// boundaries.
//
// Usage:
//
//	crewrun [-arch central|parallel|distributed] [-wf Name] [-input I1=90 -input I2=Blower]
//	        [-backend inproc|unix|tcp] [-procs] [-fail Step] [-trace] file.laws
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crew"
	"crew/internal/mproc"
	"crew/internal/transport"
)

type inputList map[string]crew.Value

func (m inputList) String() string { return fmt.Sprintf("%v", map[string]crew.Value(m)) }

func (m inputList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("inputs are NAME=VALUE, got %q", s)
	}
	if f, err := strconv.ParseFloat(val, 64); err == nil {
		m[name] = crew.Num(f)
	} else if val == "true" || val == "false" {
		m[name] = crew.Bool(val == "true")
	} else {
		m[name] = crew.Str(val)
	}
	return nil
}

func main() {
	// An agent-host invocation (spawned by -procs) is configured entirely
	// through the environment and never parses flags.
	if cfg, err := mproc.ChildConfigFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "crewrun:", err)
		os.Exit(1)
	} else if cfg != nil {
		if err := childMain(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "crewrun agent %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		return
	}

	archName := flag.String("arch", "distributed", "central|parallel|distributed")
	wfName := flag.String("wf", "", "workflow class to run (default: first in file)")
	failStep := flag.String("fail", "", "inject a one-time failure at this step")
	backend := flag.String("backend", "inproc", "wire backend: inproc|unix|tcp")
	procs := flag.Bool("procs", false, "run each agent as its own OS process (distributed only)")
	trace := flag.Bool("trace", false, "print every physical message")
	timeout := flag.Duration("timeout", 30*time.Second, "run timeout")
	inputs := inputList{}
	flag.Var(inputs, "input", "workflow input NAME=VALUE (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crewrun [flags] file.laws")
		os.Exit(2)
	}

	var err error
	if *procs {
		err = runProcs(*wfName, *failStep, *backend, *trace, *timeout, inputs, flag.Arg(0))
	} else {
		err = run(*archName, *wfName, *failStep, *backend, *trace, *timeout, inputs, flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crewrun:", err)
		os.Exit(1)
	}
}

// compile loads a LAWS file and resolves the workflow to run.
func compile(path, wfName string) (*crew.Library, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	lib, err := crew.CompileLAWS(string(src))
	if err != nil {
		return nil, "", err
	}
	names := lib.Names()
	if len(names) == 0 {
		return nil, "", fmt.Errorf("no workflows in %s", path)
	}
	if wfName == "" {
		wfName = names[0]
	}
	if lib.Schema(wfName) == nil {
		return nil, "", fmt.Errorf("workflow %q not found (have: %s)", wfName, strings.Join(names, ", "))
	}
	return lib, wfName, nil
}

func run(archName, wfName, failStep, backend string, trace bool, timeout time.Duration, inputs inputList, path string) error {
	lib, wfName, err := compile(path, wfName)
	if err != nil {
		return err
	}

	var arch crew.Architecture
	switch archName {
	case "central":
		arch = crew.Central
	case "parallel":
		arch = crew.Parallel
	case "distributed":
		arch = crew.Distributed
	default:
		return fmt.Errorf("unknown architecture %q", archName)
	}

	var mu sync.Mutex
	reg := crew.NewRegistry()
	registerSynthetic(reg, lib, failStep, &mu)

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: arch,
		Transport:    crew.TransportConfig{Backend: backend},
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	if trace {
		type netProvider interface{ Network() *transport.Network }
		if np, ok := sys.(netProvider); ok {
			np.Network().Trace(func(m transport.Message) {
				mu.Lock()
				fmt.Printf("  msg %-10s %-9s -> %-9s (%v)\n", m.Kind, m.From, m.To, m.Mechanism)
				mu.Unlock()
			})
		}
	}

	fmt.Printf("running %s on %s control\n", wfName, arch)
	id, st, err := sys.Run(wfName, inputs, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s.%d finished: %v\n", wfName, id, st)
	if snap, ok := sys.Snapshot(wfName, id); ok {
		fmt.Println("data table:")
		keys := make([]string, 0, len(snap.Data))
		for k := range snap.Data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %s\n", k, snap.Data[k].GoString())
		}
		fmt.Printf("execution order: %v\n", snap.ExecOrder)
	}
	col := sys.Collector()
	fmt.Printf("messages: normal=%d failure=%d coordination=%d abort=%d\n",
		col.Messages(crew.MechNormal), col.Messages(crew.MechFailure),
		col.Messages(crew.MechCoordination), col.Messages(crew.MechAbort))
	return nil
}

// runProcs is the hub side of the multi-process mode: it spawns one OS
// process per agent (re-executing this binary with the agent-host
// environment), drives the workflow through the hub network, and prints the
// authoritative message counts.
func runProcs(wfName, failStep, backend string, trace bool, timeout time.Duration, inputs inputList, path string) error {
	absPath, err := filepath.Abs(path)
	if err != nil {
		return err
	}
	lib, wfName, err := compile(absPath, wfName)
	if err != nil {
		return err
	}
	agents := lib.SortedAgents()
	if len(agents) == 0 {
		agents = []string{"agent1", "agent2", "agent3"}
	}
	if backend == "" || backend == "inproc" {
		backend = "unix" // agent processes need a real socket to the hub
	}
	dbDir, err := os.MkdirTemp("", "crewrun-agdb")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dbDir)

	col := crew.NewCollector()
	cl, err := mproc.NewCluster(mproc.ClusterConfig{
		Network:   backend,
		Library:   lib,
		Agents:    agents,
		Collector: col,
		Command: func(name string) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
		Child: mproc.ChildParams{
			DBDir:         dbDir,
			PurgeOnCommit: true,
			LawsPath:      absPath,
			FailStep:      failStep,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crewrun: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	if trace {
		var mu sync.Mutex
		cl.Network().Trace(func(m transport.Message) {
			mu.Lock()
			fmt.Printf("  msg %-10s %-9s -> %-9s (%v)\n", m.Kind, m.From, m.To, m.Mechanism)
			mu.Unlock()
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		return fmt.Errorf("agent processes never connected: %w", err)
	}
	fmt.Printf("running %s on distributed control, %d agent processes over %s\n", wfName, len(agents), backend)
	id, err := cl.Start(wfName, inputs)
	if err != nil {
		return err
	}
	st, err := cl.Wait(wfName, id, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s.%d finished: %v\n", wfName, id, st)
	fmt.Printf("messages: normal=%d failure=%d coordination=%d abort=%d\n",
		col.Messages(crew.MechNormal), col.Messages(crew.MechFailure),
		col.Messages(crew.MechCoordination), col.Messages(crew.MechAbort))
	return nil
}

// childMain runs one agent process: compile the same LAWS source the hub
// compiled, register the same synthetic programs, and serve deliveries until
// the hub goes away.
func childMain(cfg *mproc.ChildConfig) error {
	if cfg.LawsPath == "" {
		return fmt.Errorf("agent host needs a LAWS path")
	}
	lib, _, err := compile(cfg.LawsPath, "")
	if err != nil {
		return err
	}
	var mu sync.Mutex
	reg := crew.NewRegistry()
	registerSynthetic(reg, lib, cfg.FailStep, &mu)
	return mproc.RunChild(cfg, lib, reg)
}

// registerSynthetic binds every program name mentioned by the library to a
// synthetic implementation that logs, derives numeric outputs from its
// inputs, and honors the one-time failure injection.
func registerSynthetic(reg *crew.Registry, lib *crew.Library, failStep string, mu *sync.Mutex) {
	seen := map[string]bool{}
	failed := false
	for _, name := range lib.Names() {
		s := lib.Schema(name)
		for _, st := range s.StepList() {
			st := st
			register := func(prog string, comp bool) {
				if prog == "" || seen[prog] {
					return
				}
				seen[prog] = true
				reg.Register(prog, func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
					mu.Lock()
					defer mu.Unlock()
					if !comp && string(ctx.Step) == failStep && !failed {
						failed = true
						fmt.Printf("  step %-10s attempt %d at instance %d: injected FAILURE\n", ctx.Step, ctx.Attempt, ctx.Instance)
						return nil, crew.Fail("injected by -fail")
					}
					verb := "exec"
					if comp {
						verb = "comp"
					}
					fmt.Printf("  step %-10s %s (mode %v, attempt %d)\n", ctx.Step, verb, ctx.Mode, ctx.Attempt)
					if comp {
						return nil, nil
					}
					out := make(map[string]crew.Value, len(st.Outputs))
					sum := 0.0
					for _, v := range ctx.Inputs {
						if f, ok := v.AsNum(); ok {
							sum += f
						}
					}
					for i, o := range st.Outputs {
						out[o] = crew.Num(sum + float64(ctx.Attempt) + float64(i))
					}
					return out, nil
				})
			}
			register(st.Program, false)
			register(st.Compensation, true)
		}
	}
}
