// Command crewrun compiles a LAWS specification and runs one instance of a
// workflow on the chosen control architecture, printing the execution trace
// and the final data table. Step programs are synthesized: every program
// succeeds and produces its declared outputs (numbers derived from the
// inputs), and -fail can inject a one-time failure at a named step to watch
// the failure-handling machinery (rollback, OCR, compensation) at work.
//
// Usage:
//
//	crewrun [-arch central|parallel|distributed] [-wf Name] [-input I1=90 -input I2=Blower]
//	        [-fail Step] [-trace] file.laws
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crew"
	"crew/internal/transport"
)

type inputList map[string]crew.Value

func (m inputList) String() string { return fmt.Sprintf("%v", map[string]crew.Value(m)) }

func (m inputList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("inputs are NAME=VALUE, got %q", s)
	}
	if f, err := strconv.ParseFloat(val, 64); err == nil {
		m[name] = crew.Num(f)
	} else if val == "true" || val == "false" {
		m[name] = crew.Bool(val == "true")
	} else {
		m[name] = crew.Str(val)
	}
	return nil
}

func main() {
	archName := flag.String("arch", "distributed", "central|parallel|distributed")
	wfName := flag.String("wf", "", "workflow class to run (default: first in file)")
	failStep := flag.String("fail", "", "inject a one-time failure at this step")
	trace := flag.Bool("trace", false, "print every physical message")
	timeout := flag.Duration("timeout", 30*time.Second, "run timeout")
	inputs := inputList{}
	flag.Var(inputs, "input", "workflow input NAME=VALUE (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crewrun [flags] file.laws")
		os.Exit(2)
	}

	if err := run(*archName, *wfName, *failStep, *trace, *timeout, inputs, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "crewrun:", err)
		os.Exit(1)
	}
}

func run(archName, wfName, failStep string, trace bool, timeout time.Duration, inputs inputList, path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lib, err := crew.CompileLAWS(string(src))
	if err != nil {
		return err
	}
	names := lib.Names()
	if len(names) == 0 {
		return fmt.Errorf("no workflows in %s", path)
	}
	if wfName == "" {
		wfName = names[0]
	}
	if lib.Schema(wfName) == nil {
		return fmt.Errorf("workflow %q not found (have: %s)", wfName, strings.Join(names, ", "))
	}

	var arch crew.Architecture
	switch archName {
	case "central":
		arch = crew.Central
	case "parallel":
		arch = crew.Parallel
	case "distributed":
		arch = crew.Distributed
	default:
		return fmt.Errorf("unknown architecture %q", archName)
	}

	var mu sync.Mutex
	reg := crew.NewRegistry()
	registerSynthetic(reg, lib, failStep, &mu)

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: arch,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	if trace {
		type netProvider interface{ Network() *transport.Network }
		if np, ok := sys.(netProvider); ok {
			np.Network().Trace(func(m transport.Message) {
				mu.Lock()
				fmt.Printf("  msg %-10s %-9s -> %-9s (%v)\n", m.Kind, m.From, m.To, m.Mechanism)
				mu.Unlock()
			})
		}
	}

	fmt.Printf("running %s on %s control\n", wfName, arch)
	id, st, err := sys.Run(wfName, inputs, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s.%d finished: %v\n", wfName, id, st)
	if snap, ok := sys.Snapshot(wfName, id); ok {
		fmt.Println("data table:")
		keys := make([]string, 0, len(snap.Data))
		for k := range snap.Data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %s\n", k, snap.Data[k].GoString())
		}
		fmt.Printf("execution order: %v\n", snap.ExecOrder)
	}
	col := sys.Collector()
	fmt.Printf("messages: normal=%d failure=%d coordination=%d abort=%d\n",
		col.Messages(crew.MechNormal), col.Messages(crew.MechFailure),
		col.Messages(crew.MechCoordination), col.Messages(crew.MechAbort))
	return nil
}

// registerSynthetic binds every program name mentioned by the library to a
// synthetic implementation that logs, derives numeric outputs from its
// inputs, and honors the one-time failure injection.
func registerSynthetic(reg *crew.Registry, lib *crew.Library, failStep string, mu *sync.Mutex) {
	seen := map[string]bool{}
	failed := false
	for _, name := range lib.Names() {
		s := lib.Schema(name)
		for _, st := range s.StepList() {
			st := st
			register := func(prog string, comp bool) {
				if prog == "" || seen[prog] {
					return
				}
				seen[prog] = true
				reg.Register(prog, func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
					mu.Lock()
					defer mu.Unlock()
					if !comp && string(ctx.Step) == failStep && !failed {
						failed = true
						fmt.Printf("  step %-10s attempt %d at instance %d: injected FAILURE\n", ctx.Step, ctx.Attempt, ctx.Instance)
						return nil, crew.Fail("injected by -fail")
					}
					verb := "exec"
					if comp {
						verb = "comp"
					}
					fmt.Printf("  step %-10s %s (mode %v, attempt %d)\n", ctx.Step, verb, ctx.Mode, ctx.Attempt)
					if comp {
						return nil, nil
					}
					out := make(map[string]crew.Value, len(st.Outputs))
					sum := 0.0
					for _, v := range ctx.Inputs {
						if f, ok := v.AsNum(); ok {
							sum += f
						}
					}
					for i, o := range st.Outputs {
						out[o] = crew.Num(sum + float64(ctx.Attempt) + float64(i))
					}
					return out, nil
				})
			}
			register(st.Program, false)
			register(st.Compensation, true)
		}
	}
}
