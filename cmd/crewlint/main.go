// Command crewlint runs the repository's custom go/analysis suite (see
// internal/lint) over package patterns:
//
//	go run ./cmd/crewlint ./...
//
// The binary is dual-mode. Invoked with package patterns it re-executes
// itself through the go vet driver (`go vet -vettool=<self> <patterns>`),
// which handles package loading, export data, and per-package caching.
// When go vet then calls the binary back — with -V=full or a unit *.cfg
// file, the unitchecker protocol — it serves the analyzers directly.
// Analyzer flags (e.g. -detclock.packages=...) pass through unchanged.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"crew/internal/lint"
)

func main() {
	if vetInvocation(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers...)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crewlint: %v\n", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	if len(os.Args) == 1 {
		args = append(args, "./...")
	}
	cmd := exec.Command("go", args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "crewlint: %v\n", err)
		os.Exit(1)
	}
}

// vetInvocation reports whether the arguments are a callback from the go
// vet driver rather than a user-facing invocation with package patterns.
func vetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
