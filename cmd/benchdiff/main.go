// Command benchdiff compares two recorded benchmark JSON files
// (BENCH_*.json) benchstat-style: for every benchmark present in both it
// prints the mean ns/op, B/op and allocs/op with the relative delta, and it
// checks the semantic columns (msgs_per_inst, load_per_inst) for exact
// equality — the paper's tables count logical traffic, which performance
// work must not change.
//
// Usage:
//
//	go run ./cmd/benchdiff OLD.json NEW.json
//
// Exit status 1 if a semantic column differs (or a file is unreadable);
// timing deltas are informational only.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type record struct {
	NsPerOp     []float64 `json:"ns_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op"`
	AllocsPerOp []float64 `json:"allocs_per_op"`
	MsgsPerInst *float64  `json:"msgs_per_inst"`
	LoadPerInst *float64  `json:"load_per_inst"`
}

type file struct {
	Command    string            `json:"command"`
	Benchmarks map[string]record `json:"benchmarks"`
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func load(path string) (*file, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldF, err := load(os.Args[1])
	if err == nil {
		var newF *file
		newF, err = load(os.Args[2])
		if err == nil {
			os.Exit(run(os.Args[1], os.Args[2], oldF, newF))
		}
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func run(oldPath, newPath string, oldF, newF *file) int {
	names := make([]string, 0, len(newF.Benchmarks))
	for name := range newF.Benchmarks {
		if _, ok := oldF.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Printf("benchdiff %s -> %s\n\n", oldPath, newPath)
	fmt.Printf("%-32s %14s %14s %9s\n", "benchmark", "old", "new", "delta")
	status := 0
	for _, name := range names {
		o, n := oldF.Benchmarks[name], newF.Benchmarks[name]
		rows := []struct {
			unit     string
			old, new float64
		}{
			{"ns/op", mean(o.NsPerOp), mean(n.NsPerOp)},
			{"B/op", mean(o.BytesPerOp), mean(n.BytesPerOp)},
			{"allocs/op", mean(o.AllocsPerOp), mean(n.AllocsPerOp)},
		}
		fmt.Println(name)
		for _, r := range rows {
			fmt.Printf("  %-30s %14.0f %14.0f %9s\n", r.unit, r.old, r.new, delta(r.old, r.new))
		}
		// Semantic columns: exact match required when both files record them.
		checks := []struct {
			unit     string
			old, new *float64
		}{
			{"msgs_per_inst", o.MsgsPerInst, n.MsgsPerInst},
			{"load_per_inst", o.LoadPerInst, n.LoadPerInst},
		}
		for _, c := range checks {
			if c.old == nil || c.new == nil {
				continue
			}
			if *c.old != *c.new {
				fmt.Printf("  %-30s %14g %14g  MISMATCH\n", c.unit, *c.old, *c.new)
				status = 1
			} else {
				fmt.Printf("  %-30s %14g %14g        ok\n", c.unit, *c.old, *c.new)
			}
		}
	}
	if status != 0 {
		fmt.Println("\nFAIL: semantic columns differ (msgs/load per instance must be identical)")
	}
	return status
}
