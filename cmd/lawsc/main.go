// Command lawsc compiles a LAWS workflow specification and prints a summary
// of the compiled library — workflow classes, steps, control structure,
// failure handling and coordination specs — or the compilation error.
//
// Usage:
//
//	lawsc file.laws
//	lawsc -rules file.laws     # also print the generated ECA rules
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"crew/internal/laws"
	"crew/internal/model"
	"crew/internal/rules"
)

func main() {
	showRules := flag.Bool("rules", false, "print the generated ECA rules per step")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lawsc [-rules] file.laws")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lawsc:", err)
		os.Exit(1)
	}
	lib, err := laws.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lawsc:", err)
		os.Exit(1)
	}
	for _, name := range lib.Names() {
		s := lib.Schema(name)
		fmt.Printf("workflow %s  (%d steps, %d arcs, inputs: %s)\n",
			s.Name, len(s.Steps), len(s.Arcs), strings.Join(s.Inputs, ", "))
		for _, st := range s.StepList() {
			fmt.Printf("  step %-14s %s\n", st.ID, describeStep(st))
		}
		starts, terms := s.StartSteps(), s.TerminalSteps()
		fmt.Printf("  start: %v  terminal: %v\n", starts, terms)
		for _, a := range s.Arcs {
			arrow := "->"
			if a.Loop {
				arrow = "~>"
			}
			cond := ""
			if a.Cond != "" {
				cond = fmt.Sprintf("  when %q", a.Cond)
			}
			fmt.Printf("  %s %s %s%s\n", a.From, arrow, a.To, cond)
		}
		failSteps := make([]model.StepID, 0, len(s.OnFailure))
		for step := range s.OnFailure {
			failSteps = append(failSteps, step)
		}
		sort.Slice(failSteps, func(i, j int) bool { return failSteps[i] < failSteps[j] })
		for _, step := range failSteps {
			pol := s.OnFailure[step]
			fmt.Printf("  on failure of %s: rollback to %s (attempts %d)\n", step, pol.RollbackTo, pol.Attempts())
		}
		for _, set := range s.CompSets {
			fmt.Printf("  compensation dependent set: %v\n", set)
		}
		if len(s.AbortCompensate) > 0 {
			fmt.Printf("  abort compensates: %v\n", s.AbortCompensate)
		}
		if *showRules {
			for _, r := range rules.SchemaRules(s) {
				cond := ""
				if r.Precond != nil {
					cond = fmt.Sprintf("  if %q", r.Precond.Source())
				}
				fmt.Printf("  rule %-16s on %v%s -> execute %s\n", r.ID, r.Events, cond, r.Action.Step)
			}
		}
		fmt.Println()
	}
	for _, c := range lib.Coord {
		switch c.Kind {
		case model.RelativeOrder:
			fmt.Printf("relative order %q:\n", c.Name)
			for _, p := range c.Pairs {
				fmt.Printf("  pair %s ~ %s\n", p.A, p.B)
			}
		case model.Mutex:
			refs := make([]string, len(c.MutexSteps))
			for i, r := range c.MutexSteps {
				refs[i] = r.String()
			}
			fmt.Printf("mutex %q: %s\n", c.Name, strings.Join(refs, ", "))
		case model.RollbackDep:
			fmt.Printf("rollback of %s forces %s\n", c.Trigger, c.Target)
		}
	}
}

func describeStep(st *model.Step) string {
	var parts []string
	if st.Nested != "" {
		parts = append(parts, "nested "+st.Nested)
	} else {
		parts = append(parts, fmt.Sprintf("program %q", st.Program))
	}
	if st.Compensation != "" {
		parts = append(parts, fmt.Sprintf("compensation %q", st.Compensation))
	}
	if len(st.EligibleAgents) > 0 {
		parts = append(parts, "agents "+strings.Join(st.EligibleAgents, ","))
	}
	if st.Update {
		parts = append(parts, "update")
	}
	if st.Incremental {
		parts = append(parts, "incremental")
	}
	if st.Join == model.JoinAny {
		parts = append(parts, "join any")
	}
	if st.ReexecCond != "" {
		parts = append(parts, fmt.Sprintf("reexec when %q", st.ReexecCond))
	}
	return strings.Join(parts, ", ")
}
