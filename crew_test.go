package crew_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"crew"
)

const waitTimeout = 5 * time.Second

// orderLAWS is a LAWS spec exercising branching, OCR and coordination.
const orderLAWS = `
workflow Order {
  inputs Qty
  step Reserve {
    program "reserve"
    compensation "unreserve"
    inputs WF.Qty
    outputs O1
    reexec when "WF.Qty > prev.WF.Qty"
  }
  step Bill { program "bill" inputs Reserve.O1 outputs O1 }
  step Ship { program "ship" inputs Bill.O1 }
  Reserve -> Bill
  Bill -> Ship
  on failure of Bill rollback to Reserve attempts 3
}
`

func registryFor(t *testing.T, rec *recorder) *crew.Registry {
	t.Helper()
	reg := crew.NewRegistry()
	reg.Register("reserve", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		rec.add("reserve")
		q, _ := ctx.Inputs["WF.Qty"].AsNum()
		return map[string]crew.Value{"O1": crew.Num(q)}, nil
	})
	reg.Register("unreserve", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		rec.add("unreserve")
		return nil, nil
	})
	reg.Register("bill", crew.FailNTimes(1, func(*crew.ProgramContext) (map[string]crew.Value, error) {
		rec.add("bill")
		return map[string]crew.Value{"O1": crew.Num(1)}, nil
	}))
	reg.Register("ship", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		rec.add("ship")
		return nil, nil
	})
	return reg
}

type recorder struct {
	mu sync.Mutex
	ev []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.ev = append(r.ev, s)
	r.mu.Unlock()
}

func (r *recorder) count(s string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.ev {
		if e == s {
			n++
		}
	}
	return n
}

func TestPublicAPIAcrossArchitectures(t *testing.T) {
	for _, arch := range []crew.Architecture{crew.Central, crew.Parallel, crew.Distributed} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			lib, err := crew.CompileLAWS(orderLAWS)
			if err != nil {
				t.Fatal(err)
			}
			rec := &recorder{}
			sys, err := crew.NewSystem(crew.Config{
				Library:      lib,
				Programs:     registryFor(t, rec),
				Architecture: arch,
				Agents:       []string{"a1", "a2", "a3"},
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			id, st, err := sys.Run("Order", map[string]crew.Value{"Qty": crew.Num(7)}, waitTimeout)
			if err != nil {
				t.Fatal(err)
			}
			if st != crew.Committed {
				t.Fatalf("status = %v", st)
			}
			// Bill failed once; Reserve was reused (not re-executed, not
			// compensated) because the quantity did not grow — the OCR path.
			if rec.count("reserve") != 1 || rec.count("unreserve") != 0 {
				t.Errorf("OCR violated: reserve=%d unreserve=%d", rec.count("reserve"), rec.count("unreserve"))
			}
			if rec.count("ship") != 1 {
				t.Errorf("ship = %d", rec.count("ship"))
			}
			snap, ok := sys.Snapshot("Order", id)
			if !ok || !snap.Data["Reserve.O1"].Equal(crew.Num(7)) {
				t.Errorf("snapshot = (%v, %v)", snap, ok)
			}
			if got, ok := sys.Status("Order", id); !ok || got != crew.Committed {
				t.Errorf("Status = (%v, %v)", got, ok)
			}
			if sys.Collector().Messages(crew.MechNormal) == 0 {
				t.Error("no messages measured")
			}
		})
	}
}

func TestFrontEndOverPublicAPI(t *testing.T) {
	lib := crew.MustCompileLAWS(orderLAWS)
	rec := &recorder{}
	sys, err := crew.NewSystem(crew.Config{
		Library:  lib,
		Programs: registryFor(t, rec),
		Agents:   []string{"a1"},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	fe := crew.NewFrontEnd(sys)
	if err := fe.Submit("po-1", "Order", map[string]crew.Value{"Qty": crew.Num(2)}); err != nil {
		t.Fatal(err)
	}
	st, err := fe.Wait("po-1", waitTimeout)
	if err != nil || st != crew.Committed {
		t.Fatalf("front-end wait = (%v, %v)", st, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := crew.NewSystem(crew.Config{}); err == nil || !strings.Contains(err.Error(), "Library") {
		t.Errorf("missing library = %v", err)
	}
	lib := crew.NewLibrary()
	lib.Add(crew.NewSchema("W").Step("A", "p").MustBuild())
	if _, err := crew.NewSystem(crew.Config{Library: lib}); err == nil || !strings.Contains(err.Error(), "Programs") {
		t.Errorf("missing programs = %v", err)
	}
	reg := crew.NewRegistry()
	reg.Register("p", crew.NopProgram())
	if _, err := crew.NewSystem(crew.Config{Library: lib, Programs: reg, Architecture: crew.Architecture(9)}); err == nil {
		t.Error("unknown architecture should fail")
	}
}

func TestArchitectureString(t *testing.T) {
	if crew.Central.String() != "central" || crew.Parallel.String() != "parallel" ||
		crew.Distributed.String() != "distributed" {
		t.Error("architecture names wrong")
	}
	if crew.Architecture(9).String() != "Architecture(9)" {
		t.Error("unknown architecture name wrong")
	}
}

func TestBuilderAPIWithoutLAWS(t *testing.T) {
	lib := crew.NewLibrary()
	lib.Add(crew.NewSchema("Mini", "I1").
		Step("A", "pa", crew.WithOutputs("O1"), crew.WithCompensation("ca")).
		Step("B", "pb", crew.WithInputs("A.O1"), crew.WithJoin(crew.JoinAll)).
		Seq("A", "B").
		MustBuild())
	reg := crew.NewRegistry()
	reg.Register("pa", crew.ConstProgram(map[string]crew.Value{"O1": crew.Num(1)}))
	reg.Register("pb", crew.NopProgram())
	reg.Register("ca", crew.NopProgram())
	sys, err := crew.NewSystem(crew.Config{Library: lib, Programs: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	_, st, err := sys.Run("Mini", map[string]crew.Value{"I1": crew.Num(5)}, waitTimeout)
	if err != nil || st != crew.Committed {
		t.Fatalf("run = (%v, %v)", st, err)
	}
	if crew.DefaultParams().S != 15 {
		t.Error("DefaultParams wrong")
	}
}
