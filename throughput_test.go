package crew_test

// Sustained-load benchmarks: where bench_test.go measures per-instance
// message and load columns (Tables 4-6), these measure what a long-lived
// deployment does under an unbounded instance stream — throughput, goroutine
// ceiling, and, crucially, retained heap. Instance retirement is the feature
// under test: every terminal instance is archived and evicted, so retained
// bytes must stay roughly flat as the driven instance count grows.

import (
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/experiment"
)

func runThroughputBench(b *testing.B, arch analysis.Architecture) {
	b.Helper()
	b.ReportAllocs()
	var last *experiment.ThroughputResult
	for i := 0; i < b.N; i++ {
		r, err := experiment.Throughput(experiment.ThroughputOptions{
			Arch:      arch,
			Params:    benchParams(),
			Rounds:    3,
			Instances: benchInstances,
			Seed:      int64(500 + i),
			Timeout:   120 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.InstancesPerSec, "inst/sec")
	b.ReportMetric(float64(last.PeakGoroutines), "peak_goroutines")
	b.ReportMetric(float64(last.RetainedBytes), "retained_B")
}

// BenchmarkThroughputCentralized drives a sustained stream through one
// centralized deployment.
func BenchmarkThroughputCentralized(b *testing.B) {
	runThroughputBench(b, analysis.Central)
}

// BenchmarkThroughputParallel drives a sustained stream through one parallel
// deployment (e engines).
func BenchmarkThroughputParallel(b *testing.B) {
	runThroughputBench(b, analysis.Parallel)
}

// BenchmarkThroughputDistributed drives a sustained stream through one
// distributed deployment (z agents).
func BenchmarkThroughputDistributed(b *testing.B) {
	runThroughputBench(b, analysis.Distributed)
}

// TestThroughputRetainedMemoryFlat is the retirement acceptance check: a
// 10x-longer instance stream through a durable (file-backed, spilled-archive)
// deployment must retain far less than 10x the heap — archived instances
// live in the WAL and spill file, and only the byte-per-instance terminal
// registry stays resident.
func TestThroughputRetainedMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load run")
	}
	for _, arch := range analysis.Architectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			measure := func(rounds int) *experiment.ThroughputResult {
				r, err := experiment.Throughput(experiment.ThroughputOptions{
					Arch:      arch,
					Params:    benchParams(),
					Rounds:    rounds,
					Instances: benchInstances,
					Seed:      42,
					Timeout:   120 * time.Second,
					DBDir:     t.TempDir(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			r1 := measure(1)
			r10 := measure(10)
			if r10.Instances != 10*r1.Instances {
				t.Fatalf("instances = %d, want %d", r10.Instances, 10*r1.Instances)
			}
			if r10.Committed+r10.Aborted != r10.Instances {
				t.Fatalf("only %d of %d instances reached a terminal status",
					r10.Committed+r10.Aborted, r10.Instances)
			}
			// Sublinear-growth bound with a generous noise floor: GC
			// accounting jitters by hundreds of KiB, but a retirement
			// regression retains full instance state (rules, data tables,
			// event tables) for every driven instance and lands well past
			// the floor.
			limit := 4 * r1.RetainedBytes
			if limit < 2<<20 {
				limit = 2 << 20
			}
			if r10.RetainedBytes > limit {
				t.Errorf("retained after 10x run = %d bytes (1x run: %d); growth is linear, retirement is not evicting",
					r10.RetainedBytes, r1.RetainedBytes)
			}
			t.Logf("%s: 1x retained=%d 10x retained=%d (%.0f inst/s, peak %d goroutines)",
				arch, r1.RetainedBytes, r10.RetainedBytes, r10.InstancesPerSec, r10.PeakGoroutines)
		})
	}
}
