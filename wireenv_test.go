package crew_test

import (
	"os"
	"testing"

	"crew"
)

// applyWireEnv routes a test deployment through the wire backend named by the
// CREW_WIRE environment variable ("inproc", "unix" or "tcp"; empty keeps the
// in-process default). CI runs the recovery suite once per backend, so the
// crash/park/replay contract is exercised across real sockets too.
func applyWireEnv(t *testing.T, cfg *crew.Config) {
	t.Helper()
	backend := os.Getenv("CREW_WIRE")
	if backend == "" {
		return
	}
	cfg.Transport = crew.TransportConfig{Backend: backend}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("CREW_WIRE=%q: %v", backend, err)
	}
}
