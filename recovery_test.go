package crew_test

import (
	"context"
	"testing"
	"time"

	"crew"
	"crew/internal/metrics"
	"crew/internal/transport"
)

// nodeFaults is the crash surface every architecture's System exposes (the
// fault injector drives it; these tests drive it from inside step programs to
// pin the crash to an exact point of the failure-handling protocol).
type nodeFaults interface {
	HaltNode(name string)
	RestartNode(name string)
}

// archCase describes one architecture's deployment knobs for the recovery
// tables: which scheduler nodes to crash and how to give them databases.
type archCase struct {
	arch  crew.Architecture
	nodes []string
	conf  func(*crew.Config)
}

func recoveryCases() []archCase {
	return []archCase{
		{crew.Central, []string{"engine"}, func(c *crew.Config) {
			c.DB = crew.NewMemoryDB()
		}},
		{crew.Parallel, []string{"engine0", "engine1"}, func(c *crew.Config) {
			c.Engines = 2
			c.DBs = []*crew.DB{crew.NewMemoryDB(), crew.NewMemoryDB()}
		}},
		// In distributed control every agent already replicates the state of
		// the instances it touches, so a crash parks only its transport queue.
		{crew.Distributed, []string{"a1"}, func(c *crew.Config) {}},
	}
}

// crashNodes simulates a crash/restart cycle of the scheduler nodes: volatile
// state is wiped (central, parallel) or inbound traffic parked (distributed),
// then recovery rebuilds from the workflow database and drains the queue.
func crashNodes(t *testing.T, sys crew.System, nodes []string) {
	t.Helper()
	nf, ok := sys.(nodeFaults)
	if !ok {
		t.Fatalf("%T does not expose HaltNode/RestartNode", sys)
	}
	for _, n := range nodes {
		nf.HaltNode(n)
	}
	for _, n := range nodes {
		nf.RestartNode(n)
	}
}

// TestCrashDuringRollback crashes the scheduling nodes while an abort's
// compensation is in flight, for every architecture. The recovery contract:
// the instance still reaches its terminal status, and the compensation (run
// exactly-once by the StepCompensating write-ahead mark) is not re-requested
// by the rebuilt scheduler.
func TestCrashDuringRollback(t *testing.T) {
	for _, tc := range recoveryCases() {
		t.Run(tc.arch.String(), func(t *testing.T) {
			rec := &recorder{}
			var sys crew.System
			reg := crew.NewRegistry()
			reg.Register("pa", crew.ConstProgram(map[string]crew.Value{"O1": crew.Num(7)}))
			reg.Register("ca", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				if rec.count("ca") == 0 {
					crashNodes(t, sys, tc.nodes)
				}
				rec.add("ca")
				return nil, nil
			})
			reg.Register("pb", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("b")
				return nil, crew.Fail("permanent failure")
			})
			lib := crew.NewLibrary()
			lib.Add(crew.NewSchema("R").
				Step("A", "pa", crew.WithOutputs("O1"), crew.WithCompensation("ca"), crew.WithAgents("a1")).
				Step("B", "pb", crew.WithInputs("A.O1"), crew.WithAgents("a2")).
				Seq("A", "B").
				OnFailure("B", "A", 2).
				MustBuild())
			cfg := crew.Config{
				Library:      lib,
				Programs:     reg,
				Architecture: tc.arch,
				Agents:       []string{"a1", "a2"},
				Logf:         t.Logf,
			}
			tc.conf(&cfg)
			applyWireEnv(t, &cfg)
			s, err := crew.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sys = s

			_, st, err := s.Run("R", nil, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if st != crew.Aborted {
				t.Fatalf("status = %v, want aborted", st)
			}
			if got := rec.count("ca"); got != 1 {
				t.Errorf("compensation of A ran %d times, want exactly once", got)
			}
			if got := rec.count("b"); got < 1 {
				t.Errorf("B never executed")
			}
		})
	}
}

// TestCrashDuringOCR crashes the scheduling nodes at the exact point a step
// failure is reported, so recovery happens while the failure-handling and OCR
// machinery decides what to roll back. The opportunistic outcome must survive
// the crash: A's unchanged results are reused — neither compensated nor
// re-executed — and the instance commits.
func TestCrashDuringOCR(t *testing.T) {
	for _, tc := range recoveryCases() {
		t.Run(tc.arch.String(), func(t *testing.T) {
			rec := &recorder{}
			var sys crew.System
			reg := crew.NewRegistry()
			reg.Register("pa", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("a")
				return map[string]crew.Value{"O1": crew.Num(7)}, nil
			})
			reg.Register("ca", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("ca")
				return nil, nil
			})
			reg.Register("pb", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				if rec.count("bfail") == 0 {
					rec.add("bfail")
					crashNodes(t, sys, tc.nodes)
					return nil, crew.Fail("transient failure")
				}
				rec.add("b")
				return nil, nil
			})
			reg.Register("pc", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("c")
				return nil, nil
			})
			lib := crew.NewLibrary()
			lib.Add(crew.NewSchema("O").
				Step("A", "pa", crew.WithOutputs("O1"), crew.WithCompensation("ca"), crew.WithAgents("a1")).
				Step("B", "pb", crew.WithInputs("A.O1"), crew.WithAgents("a2")).
				Step("C", "pc", crew.WithAgents("a1")).
				Seq("A", "B", "C").
				OnFailure("B", "A", 3).
				MustBuild())
			cfg := crew.Config{
				Library:      lib,
				Programs:     reg,
				Architecture: tc.arch,
				Agents:       []string{"a1", "a2"},
				Logf:         t.Logf,
			}
			tc.conf(&cfg)
			applyWireEnv(t, &cfg)
			s, err := crew.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sys = s

			_, st, err := s.Run("O", nil, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if st != crew.Committed {
				t.Fatalf("status = %v, want committed", st)
			}
			if got := rec.count("a"); got != 1 {
				t.Errorf("A executed %d times, want 1 (OCR reuse)", got)
			}
			if got := rec.count("ca"); got != 0 {
				t.Errorf("A compensated %d times despite reuse", got)
			}
			if got := rec.count("b"); got != 1 {
				t.Errorf("B succeeded %d times, want 1", got)
			}
			if got := rec.count("c"); got != 1 {
				t.Errorf("C executed %d times, want 1", got)
			}
		})
	}
}

// TestCrashMidBatchParksWholeEnvelope pins the transport-level recovery
// contract for batched sends: a dispatch burst coalesced into one envelope is
// ONE physical message, so a crash that lands mid-batch parks and replays the
// envelope atomically — the logical messages inside are never split across
// the crash and never double-delivered.
func TestCrashMidBatchParksWholeEnvelope(t *testing.T) {
	col := metrics.NewCollector()
	net := transport.NewNetwork(transport.NetworkConfig{Collector: col})
	defer net.Close()
	ep := net.MustRegister("agent")
	ep.ManualAck()
	h, err := net.Handle("agent")
	if err != nil {
		t.Fatal(err)
	}

	// The destination crashes before the burst lands.
	net.Crash("agent")
	var b transport.Batcher
	const logical = 3
	for i := 0; i < logical; i++ {
		b.Add(h, transport.Message{From: "coord", To: "agent", Mechanism: metrics.Normal, Kind: "StepExecute", Payload: i})
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	// The whole burst parks as a single physical message...
	if q := net.QueuedFor("agent"); q != 1 {
		t.Fatalf("QueuedFor = %d physical messages, want 1 (whole envelope parked)", q)
	}
	if p := net.Parked(); p != 1 {
		t.Fatalf("Parked = %d, want 1", p)
	}
	// ...while the metrics collector already counted every logical message
	// (the paper's tables count logical traffic, crash or not).
	if got := col.Messages(metrics.Normal); got != logical {
		t.Fatalf("collector counted %d messages, want %d", got, logical)
	}

	// Recovery replays the envelope: each logical message exactly once, in
	// send order.
	net.Recover("agent")
	var m transport.Message
	select {
	case m = <-ep.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("envelope not replayed after recovery")
	}
	env, ok := m.Payload.(*transport.Envelope)
	if !ok {
		t.Fatalf("payload = %T, want *transport.Envelope", m.Payload)
	}
	if len(env.Msgs) != logical {
		t.Fatalf("envelope carries %d logical messages, want %d", len(env.Msgs), logical)
	}
	for i, lm := range env.Msgs {
		if lm.Payload != i {
			t.Errorf("logical message %d payload = %v, want %d", i, lm.Payload, i)
		}
	}
	env.Release()
	ep.Ack()

	// Nothing left to replay: the network drains and no second copy of any
	// logical message arrives.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := net.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	select {
	case m := <-ep.Inbox():
		t.Fatalf("double delivery after replay: %+v", m)
	default:
	}
	if got := col.Messages(metrics.Normal); got != logical {
		t.Fatalf("collector counted %d messages after replay, want %d (replay is not re-accepted)", got, logical)
	}
}

// TestCrashMidBatchUnderLoad drives the same guarantee end to end: a node
// crash/restart cycle in the middle of a workflow run with batching active
// must not duplicate or lose step executions in any architecture.
func TestCrashMidBatchUnderLoad(t *testing.T) {
	for _, tc := range recoveryCases() {
		t.Run(tc.arch.String(), func(t *testing.T) {
			rec := &recorder{}
			var sys crew.System
			reg := crew.NewRegistry()
			reg.Register("pa", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("a")
				return map[string]crew.Value{"O1": crew.Num(1)}, nil
			})
			reg.Register("pb", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("b")
				// Crash the scheduler nodes while the completion (and the
				// successor dispatch burst it triggers) is in flight.
				if rec.count("b") == 1 {
					crashNodes(t, sys, tc.nodes)
				}
				return map[string]crew.Value{"O1": crew.Num(2)}, nil
			})
			reg.Register("pc", func(*crew.ProgramContext) (map[string]crew.Value, error) {
				rec.add("c")
				return map[string]crew.Value{"O1": crew.Num(3)}, nil
			})
			lib := crew.NewLibrary()
			lib.Add(crew.NewSchema("M").
				Step("A", "pa", crew.WithOutputs("O1"), crew.WithAgents("a1")).
				Step("B", "pb", crew.WithOutputs("O1"), crew.WithAgents("a2")).
				Step("C", "pc", crew.WithOutputs("O1"), crew.WithAgents("a1")).
				Seq("A", "B", "C").
				MustBuild())
			cfg := crew.Config{
				Library:      lib,
				Programs:     reg,
				Architecture: tc.arch,
				Agents:       []string{"a1", "a2"},
				Logf:         t.Logf,
			}
			tc.conf(&cfg)
			applyWireEnv(t, &cfg)
			s, err := crew.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sys = s

			_, st, err := s.Run("M", nil, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if st != crew.Committed {
				t.Fatalf("status = %v, want committed", st)
			}
			for _, step := range []string{"a", "b", "c"} {
				if got := rec.count(step); got != 1 {
					t.Errorf("%s executed %d times, want exactly 1", step, got)
				}
			}
		})
	}
}
