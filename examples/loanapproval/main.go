// Loan approval: parallel branches with an AND-join, a front-end database
// mapping external case numbers to workflow instances, and a user-initiated
// cancellation that compensates completed steps in reverse execution order
// (the paper's WorkflowAbort path).
//
//	go run ./examples/loanapproval
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"crew"
)

const spec = `
workflow Loan {
  inputs Amount

  step Intake {
    program "intake"
    compensation "closeFile"
    agents clerk1, clerk2
    inputs WF.Amount
    outputs O1
  }
  step CreditCheck {
    program "credit"
    compensation "voidCredit"
    agents clerk1, clerk2
    inputs Intake.O1
    outputs Score
  }
  # The appraisal can stall, so it gets a dedicated agent.
  step Appraisal {
    program "appraise"
    compensation "voidAppraisal"
    agents appraiser
    inputs Intake.O1
    outputs Value
  }
  step Decide {
    program "decide"
    agents clerk1, clerk2
    inputs CreditCheck.Score, Appraisal.Value
    outputs Approved
    join all
  }

  Intake -> CreditCheck, Appraisal
  CreditCheck -> Decide
  Appraisal -> Decide

  abort compensate Intake, CreditCheck, Appraisal
}
`

func main() {
	lib, err := crew.CompileLAWS(spec)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var events []string
	note := func(s string) {
		mu.Lock()
		events = append(events, s)
		mu.Unlock()
		fmt.Println("  " + s)
	}
	appraisalGate := make(chan struct{})

	reg := crew.NewRegistry()
	reg.Register("intake", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		amt, _ := ctx.Inputs["WF.Amount"].AsNum()
		note(fmt.Sprintf("Intake: case %d for amount %.0f", ctx.Instance, amt))
		return map[string]crew.Value{"O1": crew.Num(float64(ctx.Instance))}, nil
	})
	reg.Register("closeFile", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		note(fmt.Sprintf("Intake: case %d file closed (compensation)", ctx.Instance))
		return nil, nil
	})
	reg.Register("credit", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		note(fmt.Sprintf("CreditCheck: case %d scored", ctx.Instance))
		return map[string]crew.Value{"Score": crew.Num(700)}, nil
	})
	reg.Register("voidCredit", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		note(fmt.Sprintf("CreditCheck: case %d voided (compensation)", ctx.Instance))
		return nil, nil
	})
	reg.Register("appraise", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		if ctx.Instance == 2 {
			<-appraisalGate // the second case's appraisal stalls
		}
		note(fmt.Sprintf("Appraisal: case %d property valued", ctx.Instance))
		return map[string]crew.Value{"Value": crew.Num(250000)}, nil
	})
	reg.Register("voidAppraisal", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		note(fmt.Sprintf("Appraisal: case %d voided (compensation)", ctx.Instance))
		return nil, nil
	})
	reg.Register("decide", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		note(fmt.Sprintf("Decide: case %d approved", ctx.Instance))
		return map[string]crew.Value{"Approved": crew.Bool(true)}, nil
	})

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: crew.Central,
		Agents:       []string{"clerk1", "clerk2", "appraiser"},
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fe := crew.NewFrontEnd(sys)

	fmt.Println("case LN-1001 (runs to approval):")
	if err := fe.Submit("LN-1001", "Loan", map[string]crew.Value{"Amount": crew.Num(200000)}); err != nil {
		log.Fatal(err)
	}
	st, err := fe.Wait("LN-1001", 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %v\n\n", st)

	fmt.Println("case LN-1002 (customer cancels while the appraisal is stuck):")
	if err := fe.Submit("LN-1002", "Loan", map[string]crew.Value{"Amount": crew.Num(90000)}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // intake + credit check complete
	if err := fe.Cancel("LN-1002"); err != nil {
		log.Fatal(err)
	}
	st, err = fe.Wait("LN-1002", 10*time.Second)
	close(appraisalGate) // release the stuck appraiser; its late result is ignored
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the stale appraisal note flush
	fmt.Printf("  -> %v\n", st)

	mu.Lock()
	idxCredit, idxIntake := -1, -1
	for i, e := range events {
		if e == "CreditCheck: case 2 voided (compensation)" {
			idxCredit = i
		}
		if e == "Intake: case 2 file closed (compensation)" {
			idxIntake = i
		}
	}
	mu.Unlock()
	if idxCredit >= 0 && idxIntake > idxCredit {
		fmt.Println("\ncompleted steps were compensated in reverse execution order.")
	} else {
		fmt.Println("\nNOTE: compensation order unexpected!")
	}
	fmt.Printf("abort messages: %d\n", sys.Collector().Messages(crew.MechAbort))
}
