// Quickstart: define a three-step workflow with the builder API, run one
// instance on the distributed control architecture, and read its results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"crew"
)

func main() {
	// A workflow schema is a directed graph of steps. Data items use the
	// paper's naming: workflow inputs are WF.<name>, step outputs are
	// <Step>.<name>.
	lib := crew.NewLibrary()
	lib.Add(crew.NewSchema("Greeting", "Name").
		Step("Compose", "compose",
			crew.WithInputs("WF.Name"),
			crew.WithOutputs("Text")).
		Step("Emphasize", "emphasize",
			crew.WithInputs("Compose.Text"),
			crew.WithOutputs("Text")).
		Step("Deliver", "deliver",
			crew.WithInputs("Emphasize.Text")).
		Seq("Compose", "Emphasize", "Deliver").
		MustBuild())

	// Step programs are black boxes to the WFMS: plain Go functions keyed
	// by name.
	reg := crew.NewRegistry()
	reg.Register("compose", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		name, _ := ctx.Inputs["WF.Name"].AsStr()
		return map[string]crew.Value{"Text": crew.Str("hello, " + name)}, nil
	})
	reg.Register("emphasize", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		text, _ := ctx.Inputs["Compose.Text"].AsStr()
		return map[string]crew.Value{"Text": crew.Str(text + "!")}, nil
	})
	reg.Register("deliver", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		text, _ := ctx.Inputs["Emphasize.Text"].AsStr()
		fmt.Println("delivering:", text)
		return nil, nil
	})

	// The same library and programs run on any of the three control
	// architectures; here the agents themselves schedule the workflow.
	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: crew.Distributed,
		Agents:       []string{"agent1", "agent2", "agent3"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	id, status, err := sys.Run("Greeting", map[string]crew.Value{"Name": crew.Str("workflows")}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance Greeting.%d finished: %v\n", id, status)

	snap, _ := sys.Snapshot("Greeting", id)
	fmt.Printf("final text: %s\n", snap.Data["Emphasize.Text"])
	fmt.Printf("physical messages exchanged: %d\n", sys.Collector().TotalMessages())
}
