// Order processing: the paper's motivating scenario for coordinated
// execution (Figure 2). Two order-fulfillment workflows compete for the same
// parts; a relative-order specification guarantees that orders are fulfilled
// in the sequence in which their first conflicting step executed — the
// earlier order allocates stock and ships first, even when the later order's
// steps would otherwise overtake it.
//
//	go run ./examples/orderprocessing
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"crew"
)

const spec = `
# Two order-fulfillment classes whose Allocate/Ship steps conflict on stock.
workflow OrderA {
  inputs Qty
  step Receive  { program "receive"  outputs O1 inputs WF.Qty }
  step Allocate { program "allocate" outputs O1 inputs Receive.O1 update }
  step Ship     { program "ship"     inputs Allocate.O1 }
  Receive -> Allocate
  Allocate -> Ship
}
workflow OrderB {
  inputs Qty
  step Receive  { program "receive"  outputs O1 inputs WF.Qty }
  step Allocate { program "allocate" outputs O1 inputs Receive.O1 update }
  step Ship     { program "ship"     inputs Allocate.O1 }
  Receive -> Allocate
  Allocate -> Ship
}

# Orders must allocate and ship in the same relative order.
order "stock" {
  pair OrderA.Allocate ~ OrderB.Allocate
  pair OrderA.Ship     ~ OrderB.Ship
}
`

func main() {
	lib, err := crew.CompileLAWS(spec)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var shipments []string

	reg := crew.NewRegistry()
	reg.Register("receive", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		q, _ := ctx.Inputs["WF.Qty"].AsNum()
		return map[string]crew.Value{"O1": crew.Num(q)}, nil
	})
	reg.Register("allocate", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		q, _ := ctx.Inputs["Receive.O1"].AsNum()
		return map[string]crew.Value{"O1": crew.Num(q)}, nil
	})
	reg.Register("ship", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		// The leading order's shipping is slow: without coordinated
		// execution the later order would overtake it here.
		if ctx.Workflow == "OrderB" {
			time.Sleep(150 * time.Millisecond)
		}
		mu.Lock()
		shipments = append(shipments, fmt.Sprintf("%s.%d", ctx.Workflow, ctx.Instance))
		mu.Unlock()
		return nil, nil
	})

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: crew.Distributed,
		Agents:       []string{"coord", "agentA", "agentB"},
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// OrderB arrives first and executes its first conflicting step first:
	// it becomes the leading workflow.
	idB, err := sys.Start("OrderB", map[string]crew.Value{"Qty": crew.Num(5)})
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	idA, err := sys.Start("OrderA", map[string]crew.Value{"Qty": crew.Num(3)})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Wait("OrderB", idB, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Wait("OrderA", idA, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("shipments in completion order:", shipments)
	if len(shipments) == 2 && shipments[0] == fmt.Sprintf("OrderB.%d", idB) {
		fmt.Println("relative order preserved: the earlier order shipped first")
	} else {
		fmt.Println("unexpected order!")
	}
	fmt.Printf("coordination messages exchanged: %d\n",
		sys.Collector().Messages(crew.MechCoordination))
}
