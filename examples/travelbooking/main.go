// Travel booking: the paper's Figure 3 recovery scenario. A booking
// workflow takes the "fly" branch of an if-then-else, the flight payment
// step fails, and the workflow partially rolls back to the quoting step
// instead of aborting. The re-executed quote picks the train branch, so the
// opportunistic compensation and re-execution machinery:
//
//   - compensates and re-runs the quote (its re-execution condition says a
//     failed payment invalidates the previous quote);
//
//   - starts a compensation thread down the abandoned flight branch
//     (undoing the seat reservation);
//
//   - reuses the traveler-profile step untouched (its inputs are unchanged);
//
//   - continues through the confluence step and commits.
//
//     go run ./examples/travelbooking
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"crew"
)

func main() {
	lib := crew.NewLibrary()
	lib.Add(crew.NewSchema("Trip", "Budget").
		Step("Profile", "profile",
			crew.WithInputs("WF.Budget"), crew.WithOutputs("Traveler"),
			crew.WithCompensation("unprofile")).
		Step("Quote", "quote",
			crew.WithInputs("WF.Budget"), crew.WithOutputs("Price"),
			crew.WithCompensation("unquote"),
			// A revisit after a failure downstream must produce a fresh
			// quote (the previous one led to the failed payment).
			crew.WithReexecCond("true")).
		Step("ReserveSeat", "reserveSeat",
			crew.WithInputs("Quote.Price"),
			crew.WithCompensation("releaseSeat")).
		Step("PayFlight", "payFlight",
			crew.WithInputs("Quote.Price")).
		Step("BookTrain", "bookTrain",
			crew.WithInputs("Quote.Price")).
		Step("Itinerary", "itinerary", crew.WithJoin(crew.JoinAny)).
		Seq("Profile", "Quote").
		CondArc("Quote", "ReserveSeat", "Quote.Price <= WF.Budget").
		CondArc("Quote", "BookTrain", "Quote.Price > WF.Budget").
		Arc("ReserveSeat", "PayFlight").
		Arc("PayFlight", "Itinerary").
		Arc("BookTrain", "Itinerary").
		OnFailure("PayFlight", "Quote", 3).
		MustBuild())

	var mu sync.Mutex
	var trace []string
	note := func(s string) {
		mu.Lock()
		trace = append(trace, s)
		mu.Unlock()
		fmt.Println("  " + s)
	}

	reg := crew.NewRegistry()
	reg.Register("profile", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("Profile: loaded traveler preferences")
		return map[string]crew.Value{"Traveler": crew.Str("K. Ramamritham")}, nil
	})
	reg.Register("unprofile", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("Profile: COMPENSATED (should not happen)")
		return nil, nil
	})
	reg.Register("quote", func(ctx *crew.ProgramContext) (map[string]crew.Value, error) {
		if ctx.Attempt == 1 {
			note("Quote: flight at 90 (within budget 100) -> fly branch")
			return map[string]crew.Value{"Price": crew.Num(90)}, nil
		}
		note("Quote: re-quoted at 140 after payment failure -> train branch")
		return map[string]crew.Value{"Price": crew.Num(140)}, nil
	})
	reg.Register("unquote", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("Quote: previous quote withdrawn (compensation)")
		return nil, nil
	})
	reg.Register("reserveSeat", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("ReserveSeat: seat 12A held")
		return nil, nil
	})
	reg.Register("releaseSeat", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("ReserveSeat: seat 12A released (abandoned-branch compensation)")
		return nil, nil
	})
	reg.Register("payFlight", crew.FailNTimes(1, func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("PayFlight: charged")
		return nil, nil
	}))
	reg.Register("bookTrain", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("BookTrain: train ticket booked")
		return nil, nil
	})
	reg.Register("itinerary", func(*crew.ProgramContext) (map[string]crew.Value, error) {
		note("Itinerary: sent to traveler")
		return nil, nil
	})

	sys, err := crew.NewSystem(crew.Config{
		Library:      lib,
		Programs:     reg,
		Architecture: crew.Distributed,
		Agents:       []string{"a1", "a2", "a3"},
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("booking a trip with budget 100 (flight payment will fail once):")
	id, status, err := sys.Run("Trip", map[string]crew.Value{"Budget": crew.Num(100)}, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstance Trip.%d finished: %v\n", id, status)

	mu.Lock()
	defer mu.Unlock()
	has := func(s string) bool {
		for _, t := range trace {
			if t == s {
				return true
			}
		}
		return false
	}
	switch {
	case !has("ReserveSeat: seat 12A released (abandoned-branch compensation)"):
		fmt.Println("NOTE: abandoned branch was not compensated!")
	case has("Profile: COMPENSATED (should not happen)"):
		fmt.Println("NOTE: profile was compensated although its results were reusable!")
	default:
		fmt.Println("partial rollback, branch switch and abandoned-branch compensation all worked;")
		fmt.Println("the profile step's results were reused untouched (OCR).")
	}
	fmt.Printf("failure-handling messages: %d\n", sys.Collector().Messages(crew.MechFailure))
}
