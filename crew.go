// Package crew is a Go reproduction of "Failure Handling and Coordinated
// Execution of Concurrent Workflows" (Kamath & Ramamritham, ICDE 1998): a
// rule-based workflow management system with three interchangeable control
// architectures — centralized, parallel and distributed — plus the paper's
// failure-handling machinery (partial rollback, thread halting, compensation
// dependent sets, opportunistic compensation and re-execution) and
// coordinated execution across concurrent workflows (relative ordering,
// mutual exclusion, rollback dependencies).
//
// A minimal program:
//
//	lib := crew.NewLibrary()
//	lib.Add(crew.NewSchema("Hello").
//		Step("Greet", "greet").
//		MustBuild())
//	reg := crew.NewRegistry()
//	reg.Register("greet", func(*crew.ProgramContext) (map[string]crew.Value, error) {
//		fmt.Println("hello, workflow")
//		return nil, nil
//	})
//	sys, _ := crew.NewSystem(crew.Config{Library: lib, Programs: reg})
//	defer sys.Close()
//	id, _ := sys.Start("Hello", nil)
//	sys.Wait("Hello", id, time.Second)
//
// Workflows can also be written in the LAWS specification language and
// compiled with CompileLAWS. Choose the control architecture with
// Config.Architecture; the same library, programs and API run unchanged on
// all three, which is exactly what the paper's evaluation compares.
//
// The System interface is context-aware — StartCtx, RunCtx and WaitCtx
// accept a context, and the duration-based calls are thin wrappers over
// them — and reports failure classes through typed sentinels
// (ErrUnknownWorkflow, ErrUnknownInstance, ErrNotRunning, ErrTimeout,
// ErrClosed) that errors.Is-match identically on every architecture.
//
// Deployments can be fault-injected deterministically: WithFaults arms a
// seeded FaultPlan (see NewChaosPlan) of scheduled node crashes and
// recoveries, per-link message drops and delays, and transient step
// failures. A crashed engine halts and later rebuilds its volatile state
// from the workflow database (give it one with Config.DB/DBs); the transport
// parks and replays a crashed node's messages — the paper's persistent-queue
// recovery contract. The same seed reproduces the same fault schedule.
package crew

import (
	"context"
	"fmt"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/cerrors"
	"crew/internal/distributed"
	"crew/internal/expr"
	"crew/internal/faults"
	"crew/internal/frontend"
	"crew/internal/laws"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/parallel"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// Core modeling types, aliased from the implementation packages so they are
// usable without importing internal paths.
type (
	// Schema is a workflow definition: a directed graph of steps.
	Schema = model.Schema
	// SchemaBuilder builds schemas fluently; see NewSchema.
	SchemaBuilder = model.Builder
	// Library is a set of schemas plus cross-workflow coordination specs.
	Library = model.Library
	// Step is one node of a schema.
	Step = model.Step
	// StepID identifies a step within a schema.
	StepID = model.StepID
	// StepOption customizes a step added through a SchemaBuilder.
	StepOption = model.StepOption
	// Arc connects two steps (control or data flow).
	Arc = model.Arc
	// FailurePolicy is a step's failure-handling specification.
	FailurePolicy = model.FailurePolicy
	// CoordSpec is a coordinated-execution requirement across workflows.
	CoordSpec = model.CoordSpec
	// StepRef qualifies a step with its workflow class.
	StepRef = model.StepRef
	// ConflictPair is one conflicting step pair of a relative-order spec.
	ConflictPair = model.ConflictPair

	// Value is a dynamically typed workflow data value.
	Value = expr.Value
	// Program is a black-box step program.
	Program = model.Program
	// ProgramContext carries a program invocation's arguments.
	ProgramContext = model.ProgramContext
	// PrevExecution exposes a step's previous execution to re-executions.
	PrevExecution = model.PrevExecution
	// Registry maps program names to implementations.
	Registry = model.Registry

	// Status is a workflow instance's life-cycle state.
	Status = wfdb.Status
	// Instance is a snapshot of one workflow instance's state.
	Instance = wfdb.Instance
	// DB is a workflow database: the persistent instance store an engine
	// recovers from after a crash.
	DB = wfdb.DB
	// FaultPlan is a deterministic, seeded fault-injection schedule; pass it
	// to NewSystem through WithFaults.
	FaultPlan = faults.Plan
	// FaultEvent schedules one node crash or recovery within a FaultPlan.
	FaultEvent = faults.Event
	// LinkFault injects per-link message drops and delays within a FaultPlan.
	LinkFault = faults.LinkFault
	// Collector accumulates the load and message metrics the paper's
	// evaluation compares.
	Collector = metrics.Collector
	// Mechanism classifies load/messages by the evaluation's five rows.
	Mechanism = metrics.Mechanism
	// Params is the evaluation's Table 3 parameter point.
	Params = analysis.Parameters
	// FrontEnd maps external request IDs to workflow instances.
	FrontEnd = frontend.FrontEnd
)

// Instance life-cycle states.
const (
	Running   = wfdb.Running
	Committed = wfdb.Committed
	Aborted   = wfdb.Aborted
)

// Join policies for confluence steps.
const (
	JoinAll = model.JoinAll
	JoinAny = model.JoinAny
)

// Coordination spec kinds.
const (
	Mutex         = model.Mutex
	RelativeOrder = model.RelativeOrder
	RollbackDep   = model.RollbackDep
)

// Metric mechanism classes.
const (
	MechNormal       = metrics.Normal
	MechInputChange  = metrics.InputChange
	MechAbort        = metrics.Abort
	MechFailure      = metrics.Failure
	MechCoordination = metrics.Coordination
)

// Fault-plan event actions.
const (
	// FaultCrash halts a node at a scheduled point.
	FaultCrash = faults.Crash
	// FaultRecover restarts a crashed node.
	FaultRecover = faults.Recover
)

// Sentinel errors shared by every architecture. All System methods wrap these
// values, so callers match failure classes with errors.Is regardless of the
// deployed architecture.
var (
	// ErrUnknownWorkflow reports a workflow class absent from the library.
	ErrUnknownWorkflow = cerrors.ErrUnknownWorkflow
	// ErrUnknownInstance reports an instance that was never started.
	ErrUnknownInstance = cerrors.ErrUnknownInstance
	// ErrNotRunning reports an operation on a terminated instance.
	ErrNotRunning = cerrors.ErrNotRunning
	// ErrTimeout reports that a wait deadline elapsed first.
	ErrTimeout = cerrors.ErrTimeout
	// ErrClosed reports an operation on a closed System.
	ErrClosed = cerrors.ErrClosed
	// ErrInvalidConfig reports a Config or fault plan rejected by Validate.
	ErrInvalidConfig = cerrors.ErrInvalidConfig
)

// Value constructors.
var (
	// Num builds a numeric value.
	Num = expr.Num
	// Str builds a string value.
	Str = expr.Str
	// Bool builds a boolean value.
	Bool = expr.Bool
	// Null builds the null value.
	Null = expr.Null
)

// Schema-building helpers.
var (
	// NewSchema starts a schema builder.
	NewSchema = model.NewSchema
	// NewLibrary creates an empty library.
	NewLibrary = model.NewLibrary
	// WithAgents sets a step's eligible agents.
	WithAgents = model.WithAgents
	// WithCompensation sets a step's compensation program.
	WithCompensation = model.WithCompensation
	// WithInputs declares a step's consumed data items (full names).
	WithInputs = model.WithInputs
	// WithOutputs declares a step's produced data items (short names).
	WithOutputs = model.WithOutputs
	// WithUpdate marks a step as updating shared resources.
	WithUpdate = model.WithUpdate
	// WithJoin sets a confluence step's join policy.
	WithJoin = model.WithJoin
	// WithReexecCond sets a step's OCR re-execution condition.
	WithReexecCond = model.WithReexecCond
	// WithIncremental marks a step as supporting incremental re-execution.
	WithIncremental = model.WithIncremental
	// WithName sets a human-readable step label.
	WithName = model.WithName
)

// Program helpers.
var (
	// NewRegistry creates an empty program registry.
	NewRegistry = model.NewRegistry
	// NopProgram succeeds producing null outputs.
	NopProgram = model.NopProgram
	// ConstProgram produces fixed outputs.
	ConstProgram = model.ConstProgram
	// FailNTimes fails the first n executions, then delegates.
	FailNTimes = model.FailNTimes
	// Fail builds a logical step-failure error.
	Fail = model.Fail
	// NewCollector creates a metrics collector.
	NewCollector = metrics.NewCollector
	// DefaultParams returns the paper's average-case Table 3 parameters.
	DefaultParams = analysis.Default
	// NewMemoryDB creates an in-memory workflow database.
	NewMemoryDB = wfdb.NewMemory
	// NewChaosPlan derives a deterministic crash/recovery schedule from a
	// seed: crashes crashes spread over targets, the i-th at message
	// firstAt+i*spacing, recovering downtime messages later.
	NewChaosPlan = faults.ChaosPlan
)

// CompileLAWS compiles a LAWS specification into a validated library.
func CompileLAWS(src string) (*Library, error) { return laws.Compile(src) }

// MustCompileLAWS is CompileLAWS panicking on error.
func MustCompileLAWS(src string) *Library { return laws.MustCompile(src) }

// NewFrontEnd builds an administrative front end over a running system.
func NewFrontEnd(sys System) *FrontEnd { return frontend.New(sys) }

// Architecture selects the workflow control architecture (paper Figure 6).
type Architecture int

const (
	// Central runs a single workflow engine (paper §2).
	Central Architecture = iota
	// Parallel runs several engines sharing the load (paper §6).
	Parallel
	// Distributed lets the step-executing agents schedule and coordinate
	// the workflows themselves (paper §4-5).
	Distributed
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case Central:
		return "central"
	case Parallel:
		return "parallel"
	case Distributed:
		return "distributed"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// TransportConfig selects the wire backend that carries messages between the
// deployment's nodes. The zero value is the in-process backend: direct
// channel handoff, no serialization, the default and fastest path. The socket
// backends route every message through a real kernel socket as a
// length-prefixed binary frame — same delivery semantics (FIFO, park/replay
// on crash, identical message counts), genuine serialization cost.
type TransportConfig struct {
	// Backend is "" or "inproc" (in-process channels), "unix" (unix-domain
	// sockets) or "tcp" (loopback TCP).
	Backend string
	// Addr optionally pins the socket address: a socket path for "unix", a
	// host:port for "tcp". Empty picks a fresh temp path or loopback port.
	// Must be empty for the in-process backend.
	Addr string
}

// newWire builds the transport backend a TransportConfig selects.
func (tc TransportConfig) newWire() (transport.Wire, error) {
	switch tc.Backend {
	case "", "inproc":
		return nil, nil
	case "unix", "tcp":
		return transport.NewSocketWire(tc.Backend, tc.Addr)
	default:
		return nil, fmt.Errorf("crew: %w: unknown transport backend %q (want inproc, unix or tcp)", ErrInvalidConfig, tc.Backend)
	}
}

// Config assembles a deployment.
type Config struct {
	// Library holds the workflow definitions; required.
	Library *Library
	// Programs resolves step programs; required.
	Programs *Registry
	// Architecture defaults to Central.
	Architecture Architecture
	// Agents names the agent nodes; defaults derive from the library's
	// eligible-agent declarations.
	Agents []string
	// Engines is the parallel architecture's engine count (default 2).
	Engines int
	// Collector receives metrics; one is created if nil.
	Collector *Collector
	// DisableOCR forces Saga-style recovery (the OCR ablation).
	DisableOCR bool
	// PurgeOnCommit broadcasts purge notes in distributed control.
	PurgeOnCommit bool
	// DB persists instance state for the central architecture's engine,
	// enabling crash recovery (see NewMemoryDB). Ignored by the others.
	DB *DB
	// DBs gives each node of the parallel (per engine) or distributed (per
	// agent) architecture its own database. Length must match the node
	// count. Ignored by the central architecture.
	DBs []*DB
	// Transport selects the wire backend between nodes; the zero value is
	// the in-process default.
	Transport TransportConfig
	// Logf receives diagnostics; defaults to the standard logger.
	Logf func(format string, args ...any)
}

// Validate checks the configuration without building anything. NewSystem
// calls it first, so a deployment can pre-flight a Config (e.g. one decoded
// from user input) and get the same errors without side effects.
func (cfg *Config) Validate() error {
	if cfg.Library == nil {
		return fmt.Errorf("crew: %w: Config.Library is required", ErrInvalidConfig)
	}
	if cfg.Programs == nil {
		return fmt.Errorf("crew: %w: Config.Programs is required", ErrInvalidConfig)
	}
	switch cfg.Architecture {
	case Central, Parallel, Distributed:
	default:
		return fmt.Errorf("crew: %w: unknown architecture %v", ErrInvalidConfig, cfg.Architecture)
	}
	if cfg.Engines < 0 {
		return fmt.Errorf("crew: %w: Config.Engines must not be negative", ErrInvalidConfig)
	}
	if cfg.Architecture == Central && len(cfg.DBs) > 0 {
		return fmt.Errorf("crew: %w: the central architecture takes Config.DB, not DBs", ErrInvalidConfig)
	}
	switch cfg.Transport.Backend {
	case "", "inproc":
		if cfg.Transport.Addr != "" {
			return fmt.Errorf("crew: %w: Transport.Addr is meaningless for the in-process backend", ErrInvalidConfig)
		}
	case "unix", "tcp":
	default:
		return fmt.Errorf("crew: %w: unknown transport backend %q (want inproc, unix or tcp)", ErrInvalidConfig, cfg.Transport.Backend)
	}
	return cfg.Library.Validate()
}

// System is a running workflow management system. All three architectures
// implement it identically. The context-aware calls fail fast with ErrClosed
// after Close and report expired wait deadlines as ErrTimeout; the
// duration-based calls are thin wrappers over them.
type System interface {
	// Start launches an instance and returns its ID.
	Start(workflow string, inputs map[string]Value) (int, error)
	// StartCtx launches an instance; ctx gates only the request's admission,
	// a started instance keeps running after ctx is cancelled.
	StartCtx(ctx context.Context, workflow string, inputs map[string]Value) (int, error)
	// Run starts an instance and waits for its terminal status.
	Run(workflow string, inputs map[string]Value, timeout time.Duration) (int, Status, error)
	// RunCtx starts an instance and waits for its terminal status under ctx.
	RunCtx(ctx context.Context, workflow string, inputs map[string]Value) (int, Status, error)
	// Wait blocks until the instance terminates.
	Wait(workflow string, id int, timeout time.Duration) (Status, error)
	// WaitCtx blocks until the instance terminates or ctx ends; a deadline
	// expiry is reported as ErrTimeout.
	WaitCtx(ctx context.Context, workflow string, id int) (Status, error)
	// Abort requests a user-initiated abort.
	Abort(workflow string, id int) error
	// ChangeInputs applies user-initiated workflow input changes.
	ChangeInputs(workflow string, id int, inputs map[string]Value) error
	// Status reports an instance's status.
	Status(workflow string, id int) (Status, bool)
	// Snapshot returns a deep copy of the instance state.
	Snapshot(workflow string, id int) (*Instance, bool)
	// Collector exposes the deployment's metrics.
	Collector() *Collector
	// Close shuts the deployment down.
	Close()
}

var (
	_ System = (*central.System)(nil)
	_ System = (*parallel.System)(nil)
	_ System = (*distributed.System)(nil)
)

// Option customizes a deployment built by NewSystem beyond its Config.
type Option func(*options)

type options struct {
	faults *FaultPlan
}

// WithFaults arms a deterministic fault-injection plan on the deployment:
// scheduled node crashes and recoveries (driving the engines' halt/rebuild
// recovery), per-link message drops and delays, and seeded transient step
// failures. The same seed and plan reproduce the same fault schedule. The
// plan is validated by NewSystem.
func WithFaults(plan FaultPlan) Option {
	p := plan
	return func(o *options) { o.faults = &p }
}

// faultable is the architecture-facade surface fault injection needs; all
// three architectures implement it.
type faultable interface {
	System
	Network() *transport.Network
	HaltNode(name string)
	RestartNode(name string)
}

var (
	_ faultable = (*central.System)(nil)
	_ faultable = (*parallel.System)(nil)
	_ faultable = (*distributed.System)(nil)
)

// faultedSystem stops the injector when the deployment closes.
type faultedSystem struct {
	faultable
	inj *faults.Injector
}

func (f *faultedSystem) Close() {
	f.inj.Stop()
	f.faultable.Close()
}

// NewSystem builds and starts a deployment of the configured architecture.
func NewSystem(cfg Config, opts ...Option) (System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	programs := cfg.Programs
	if o.faults != nil {
		if err := o.faults.Validate(); err != nil {
			return nil, fmt.Errorf("crew: fault plan: %w: %v", ErrInvalidConfig, err)
		}
		programs = faults.WrapFlaky(programs, o.faults.Seed, o.faults.StepFailRate)
	}
	sys, err := newArchSystem(cfg, programs)
	if err != nil {
		return nil, err
	}
	if o.faults == nil {
		return sys, nil
	}
	inj, err := faults.NewInjector(*o.faults, cfg.Collector)
	if err != nil {
		sys.Close()
		return nil, fmt.Errorf("crew: fault plan: %w: %v", ErrInvalidConfig, err)
	}
	inj.SetHooks(sys)
	inj.Attach(sys.Network())
	return &faultedSystem{faultable: sys, inj: inj}, nil
}

func newArchSystem(cfg Config, programs *Registry) (faultable, error) {
	wire, err := cfg.Transport.newWire()
	if err != nil {
		return nil, err
	}
	switch cfg.Architecture {
	case Central:
		return central.NewSystem(central.SystemConfig{
			Library:    cfg.Library,
			Programs:   programs,
			Collector:  cfg.Collector,
			DB:         cfg.DB,
			Agents:     cfg.Agents,
			DisableOCR: cfg.DisableOCR,
			Wire:       wire,
			Logf:       cfg.Logf,
		})
	case Parallel:
		engines := cfg.Engines
		if engines <= 0 {
			engines = 2
		}
		return parallel.NewSystem(parallel.SystemConfig{
			Library:    cfg.Library,
			Programs:   programs,
			Collector:  cfg.Collector,
			Engines:    engines,
			Agents:     cfg.Agents,
			DBs:        cfg.DBs,
			DisableOCR: cfg.DisableOCR,
			Wire:       wire,
			Logf:       cfg.Logf,
		})
	case Distributed:
		return distributed.NewSystem(distributed.SystemConfig{
			Library:       cfg.Library,
			Programs:      programs,
			Collector:     cfg.Collector,
			Agents:        cfg.Agents,
			AGDBs:         cfg.DBs,
			DisableOCR:    cfg.DisableOCR,
			PurgeOnCommit: cfg.PurgeOnCommit,
			Wire:          wire,
			Logf:          cfg.Logf,
		})
	default:
		return nil, fmt.Errorf("crew: unknown architecture %v", cfg.Architecture)
	}
}
