package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"crew/internal/metrics"
)

// forEachWire runs fn against every backend: the in-process default (nil
// Wire), unix-domain sockets, and loopback TCP. The transport contract —
// counting, FIFO, park/replay, quiescence — must hold identically on all
// three.
func forEachWire(t *testing.T, fn func(t *testing.T, n *Network)) {
	t.Helper()
	backends := []struct {
		name string
		mk   func(t *testing.T) Wire
	}{
		{"inproc", func(t *testing.T) Wire { return nil }},
		{"unix", func(t *testing.T) Wire {
			w, err := NewSocketWire("unix", "")
			if err != nil {
				t.Fatalf("unix wire: %v", err)
			}
			return w
		}},
		{"tcp", func(t *testing.T) Wire {
			w, err := NewSocketWire("tcp", "")
			if err != nil {
				t.Fatalf("tcp wire: %v", err)
			}
			return w
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			n := NewNetwork(NetworkConfig{Collector: metrics.NewCollector(), Wire: b.mk(t)})
			defer n.Close()
			fn(t, n)
		})
	}
}

func TestWireSendDeliver(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		b := n.MustRegister("b")
		err := n.Send(Message{From: "a", To: "b", Mechanism: metrics.Coordination, Kind: "StepExecute", Payload: wirePayload{A: "hi", B: 5}})
		if err != nil {
			t.Fatal(err)
		}
		m := recvOne(t, b)
		if m.From != "a" || m.To != "b" || m.Kind != "StepExecute" || m.Mechanism != metrics.Coordination {
			t.Errorf("message = %+v", m)
		}
		if p, ok := m.Payload.(wirePayload); !ok || p.A != "hi" || p.B != 5 {
			t.Errorf("payload = %#v", m.Payload)
		}
		if got := n.collector.Messages(metrics.Coordination); got != 1 {
			t.Errorf("counted %d, want 1", got)
		}
	})
}

func TestWireFIFO(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		b := n.MustRegister("b")
		const total = 200
		for i := 0; i < total; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < total; i++ {
			if m := recvOne(t, b); m.Payload.(int) != i {
				t.Fatalf("out of order: got %v at %d", m.Payload, i)
			}
		}
	})
}

func TestWireCrashParksAndRecoverReplays(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		b := n.MustRegister("b")
		if !n.Crash("b") {
			t.Fatal("Crash returned false")
		}
		for i := 0; i < 5; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case m := <-b.Inbox():
			t.Fatalf("delivered while down: %+v", m)
		case <-time.After(50 * time.Millisecond):
		}
		if got := n.Parked(); got != 5 {
			t.Errorf("Parked = %d, want 5", got)
		}
		// Everything in flight is parked: the network reports a stall.
		stalled, err := n.AwaitStall(context.Background())
		if err != nil || !stalled {
			t.Fatalf("AwaitStall = %v, %v; want stall", stalled, err)
		}
		if !n.Recover("b") {
			t.Fatal("Recover returned false")
		}
		for i := 0; i < 5; i++ {
			if m := recvOne(t, b); m.Payload.(int) != i {
				t.Fatalf("replay out of order: %v at %d", m.Payload, i)
			}
		}
	})
}

func TestWireEnvelopeBatch(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		b := n.MustRegister("b")
		h, err := n.Handle("b")
		if err != nil {
			t.Fatal(err)
		}
		env := NewEnvelope()
		for i := 0; i < 4; i++ {
			env.Msgs = append(env.Msgs, Message{From: "a", To: "b", Kind: "K", Mechanism: metrics.Normal, Payload: wirePayload{B: i}})
		}
		if err := h.SendBatch(env); err != nil {
			t.Fatal(err)
		}
		m := recvOne(t, b)
		genv, ok := m.Payload.(*Envelope)
		if !ok || m.Kind != KindEnvelope {
			t.Fatalf("wrapper = %+v", m)
		}
		if len(genv.Msgs) != 4 {
			t.Fatalf("envelope carried %d logical messages, want 4", len(genv.Msgs))
		}
		for i, lm := range genv.Msgs {
			if lm.Payload.(wirePayload).B != i {
				t.Errorf("logical %d = %+v", i, lm.Payload)
			}
		}
		genv.Release()
		// Logical counting is backend-independent: 4 messages, not 1.
		if got := n.collector.Messages(metrics.Normal); got != 4 {
			t.Errorf("counted %d logical messages, want 4", got)
		}
	})
}

func TestWireQuiesce(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		b := n.MustRegister("b")
		b.ManualAck()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				m := recvOne(t, b)
				_ = m
				b.Ack()
			}
		}()
		for i := 0; i < 50; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := n.Quiesce(ctx); err != nil {
			t.Fatalf("Quiesce: %v", err)
		}
		<-done
		if got := n.InFlight(); got != 0 {
			t.Errorf("InFlight after Quiesce = %d", got)
		}
	})
}

func TestWireCloseClosesInboxes(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		a := n.MustRegister("a")
		n.Close()
		select {
		case _, ok := <-a.Inbox():
			if ok {
				t.Error("expected closed inbox")
			}
		case <-time.After(2 * time.Second):
			t.Error("inbox not closed after network Close")
		}
		if err := n.Send(Message{From: "a", To: "a"}); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after Close = %v", err)
		}
		n.Close() // idempotent
	})
}

func TestWireCloseUnblocksPendingDelivery(t *testing.T) {
	forEachWire(t, func(t *testing.T, n *Network) {
		n.MustRegister("a")
		n.MustRegister("b") // nobody ever reads b's inbox
		for i := 0; i < 10; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		go func() {
			n.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close blocked on undelivered messages")
		}
	})
}

func TestSocketWireRejectsBadNetwork(t *testing.T) {
	if _, err := NewSocketWire("udp", ""); err == nil {
		t.Fatal("NewSocketWire(udp) succeeded, want error")
	}
}

func TestSocketWireAddr(t *testing.T) {
	w, err := NewSocketWire("tcp", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Addr() == "" {
		t.Error("Addr empty")
	}
}
