package transport

import (
	"context"
	"testing"
	"time"
)

// fakeChild runs a minimal agent host against a hub: every delivery is
// acknowledged (after optional processing) and recorded.
type fakeChild struct {
	conn *ChildConn
	got  chan Message
	done chan error
}

func dialChild(t *testing.T, network, addr, name string) *fakeChild {
	t.Helper()
	conn, err := DialHub(network, addr, name)
	if err != nil {
		t.Fatalf("DialHub(%s): %v", name, err)
	}
	fc := &fakeChild{conn: conn, got: make(chan Message, 64), done: make(chan error, 1)}
	go func() {
		fc.done <- conn.Serve(func(m Message) error {
			fc.got <- m
			return nil
		}, nil)
	}()
	return fc
}

func (fc *fakeChild) expect(t *testing.T, kind string) Message {
	t.Helper()
	select {
	case m := <-fc.got:
		if m.Kind != kind {
			t.Fatalf("child received kind %q, want %q", m.Kind, kind)
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("child never received %q", kind)
		return Message{}
	}
}

func newHub(t *testing.T) (*Network, *RemoteHub) {
	t.Helper()
	n := NewNetwork(NetworkConfig{})
	hub, err := NewRemoteHub(n, "unix", "", nil)
	if err != nil {
		n.Close()
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, hub
}

// TestRemoteHubRoundTrip sends hub->child and child->hub and verifies the
// hub's quiescence accounting retires deliveries only on ACK.
func TestRemoteHubRoundTrip(t *testing.T) {
	n, hub := newHub(t)
	if err := hub.RegisterRemote("a"); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	child := dialChild(t, "unix", hub.Addr(), "a")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hub.WaitConnected(ctx, "a"); err != nil {
		t.Fatal(err)
	}

	if err := n.Send(Message{From: "b", To: "a", Kind: "ping", Payload: wirePayload{B: 7}}); err != nil {
		t.Fatal(err)
	}
	m := child.expect(t, "ping")
	if p, ok := m.Payload.(wirePayload); !ok || p.B != 7 {
		t.Fatalf("payload = %#v", m.Payload)
	}
	if err := n.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce after ack: %v", err)
	}

	// Child -> hub: the forwarded send re-enters the network and reaches a
	// local endpoint.
	if err := child.conn.SendMessage(Message{From: "a", To: "b", Kind: "pong", Payload: wirePayload{B: 9}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ep.Inbox():
		if m.Kind != "pong" {
			t.Fatalf("kind = %q", m.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub-side endpoint never received the forwarded send")
	}
}

// TestRemoteHubReplay crashes a disconnected remote node with traffic in
// flight, then reconnects: the parked messages must replay in order, exactly
// once, and quiescence must settle.
func TestRemoteHubReplay(t *testing.T) {
	n, hub := newHub(t)
	if err := hub.RegisterRemote("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("b"); err != nil {
		t.Fatal(err)
	}

	first := dialChild(t, "unix", hub.Addr(), "a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hub.WaitConnected(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// Deliver one message the child processes but whose "process" then dies
	// before more arrive: kill the connection without acking further.
	if err := n.Send(Message{From: "b", To: "a", Kind: "k0", Payload: wirePayload{B: 0}}); err != nil {
		t.Fatal(err)
	}
	first.expect(t, "k0")
	if err := n.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	first.conn.Close()
	<-first.done

	// Crash the node, then send while it is down and disconnected: traffic
	// parks (stalled network, not a hang).
	n.Crash("a")
	for i := 1; i <= 3; i++ {
		if err := n.Send(Message{From: "b", To: "a", Kind: "k", Payload: wirePayload{B: i}}); err != nil {
			t.Fatal(err)
		}
	}
	stalled, err := n.AwaitStall(ctx)
	if err != nil {
		t.Fatalf("AwaitStall while down: %v", err)
	}
	if !stalled {
		t.Fatal("network should be stalled with parked traffic, not idle")
	}

	// Recover and reconnect: the parked messages replay in order.
	n.Recover("a")
	second := dialChild(t, "unix", hub.Addr(), "a")
	for i := 1; i <= 3; i++ {
		m := second.expect(t, "k")
		if p := m.Payload.(wirePayload); p.B != i {
			t.Fatalf("replayed message %d has payload %d", i, p.B)
		}
	}
	if err := n.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce after replay: %v", err)
	}
}

// TestRemoteHubAnnounce verifies liveness broadcasts reach children and feed
// their Alive view.
func TestRemoteHubAnnounce(t *testing.T) {
	_, hub := newHub(t)
	for _, name := range []string{"a", "b"} {
		if err := hub.RegisterRemote(name); err != nil {
			t.Fatal(err)
		}
	}
	child := dialChild(t, "unix", hub.Addr(), "a")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hub.WaitConnected(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if !child.conn.Alive("b") {
		t.Fatal("b should default to alive")
	}
	hub.Announce("b", false)
	deadline := time.Now().Add(5 * time.Second)
	for child.conn.Alive("b") {
		if time.Now().After(deadline) {
			t.Fatal("crash announcement never reached the child")
		}
		time.Sleep(time.Millisecond)
	}
	hub.Announce("b", true)
	for !child.conn.Alive("b") {
		if time.Now().After(deadline) {
			t.Fatal("recover announcement never reached the child")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteDeliverFailsFastWhenDown pins the stall-detection contract: a
// Deliver to a down, disconnected node must error out (parking the message)
// rather than block, so inflight==parked and stall detection stays sharp.
func TestRemoteDeliverFailsFastWhenDown(t *testing.T) {
	n, hub := newHub(t)
	if err := hub.RegisterRemote("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("b"); err != nil {
		t.Fatal(err)
	}
	n.Crash("a")
	if err := n.Send(Message{From: "b", To: "a", Kind: "k", Payload: wirePayload{B: 1}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stalled, err := n.AwaitStall(ctx)
	if err != nil {
		t.Fatalf("AwaitStall: %v (Deliver must not block while the node is down)", err)
	}
	if !stalled {
		t.Fatal("want stalled network")
	}
}
