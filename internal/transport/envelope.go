package transport

import "sync"

// KindEnvelope is the Kind of the physical wrapper message that carries a
// batched envelope. Protocol traces never see it: tracing reports the logical
// messages inside.
const KindEnvelope = "Envelope"

// Envelope is one physical message carrying a burst of logical messages to
// the same destination node. Batching dispatch bursts (a step completion that
// triggers several successor requests, an agent answering every request of a
// received batch) collapses N mailbox round-trips into one while the metrics
// collector still counts every logical message under its own mechanism — the
// paper's message-count tables are byte-identical with batching on or off.
//
// Envelopes are pooled. The receiving endpoint owns a delivered envelope: it
// iterates Msgs and then calls Release exactly once, after which neither the
// envelope nor the Msgs backing array may be touched. A crash before delivery
// parks the whole envelope at the node like any other physical message, so a
// batch is replayed atomically on recovery — logical messages of one envelope
// are never split across a crash, and never double-delivered.
type Envelope struct {
	Msgs []Message
}

var envPool = sync.Pool{New: func() any { return new(Envelope) }}

// NewEnvelope returns an empty pooled envelope.
func NewEnvelope() *Envelope { return envPool.Get().(*Envelope) }

// Release clears the envelope and returns it to the pool.
func (e *Envelope) Release() {
	for i := range e.Msgs {
		e.Msgs[i] = Message{} // drop payload references before pooling
	}
	e.Msgs = e.Msgs[:0]
	envPool.Put(e)
}

// SendBatch accepts an envelope of logical messages for the handle's node as
// ONE physical message: one acceptance sequence number, one fault-policy
// consultation, one in-flight unit, one mailbox entry, one Ack. Ownership of
// the envelope passes to the transport (and then to the receiver, who must
// Release it); on error the envelope is released here.
func (h *Handle) SendBatch(env *Envelope) error { return h.n.deliverBatch(h.nd, env) }

//crew:hotpath
func (n *Network) deliverBatch(nd *node, env *Envelope) error {
	if len(env.Msgs) == 0 {
		env.Release()
		return nil
	}
	if n.closed.Load() {
		env.Release()
		return ErrClosed
	}
	first := env.Msgs[0]
	wrapper := Message{From: first.From, To: first.To, Mechanism: first.Mechanism, Kind: KindEnvelope, Payload: env}
	seq := n.accepted.Add(1)
	delay := 0
	if p := n.policy.Load(); p != nil {
		v := (*p).OnMessage(wrapper, seq)
		if v.Retransmits > 0 && n.collector != nil {
			// A dropped envelope is retransmitted whole: every logical
			// message inside travels again.
			for i := range env.Msgs {
				n.collector.AddMessages(env.Msgs[i].Mechanism, int64(v.Retransmits))
			}
			n.collector.AddRetransmits(int64(v.Retransmits) * int64(len(env.Msgs)))
		}
		delay = v.Delay
	}
	if n.collector != nil {
		for i := range env.Msgs {
			n.collector.AddMessages(env.Msgs[i].Mechanism, 1)
		}
	}
	if fn := n.trace.Load(); fn != nil {
		for i := range env.Msgs {
			(*fn)(env.Msgs[i])
		}
	}
	n.enqueue(nd, wrapper, delay)
	return nil
}

// Batcher coalesces the sends of one dispatch burst by destination. It is
// owned by a single sender goroutine: Add during a handler turn, Flush at the
// end of the turn (before acknowledging the message that triggered it, so
// quiescence accounting never observes the gap). A destination that received
// only one message is flushed as a plain Send — byte-identical to the
// unbatched path. The batcher's internal buffers are reused across turns, so
// the steady-state cost of a flush is the envelope bookkeeping alone.
type Batcher struct {
	dests []batchDest
}

type batchDest struct {
	h   *Handle
	env *Envelope
}

// Add appends a logical message for the handle's destination.
//
//crew:hotpath
func (b *Batcher) Add(h *Handle, m Message) {
	for i := range b.dests {
		if b.dests[i].h.nd == h.nd {
			b.dests[i].env.Msgs = append(b.dests[i].env.Msgs, m)
			return
		}
	}
	env := NewEnvelope()
	env.Msgs = append(env.Msgs, m)
	b.dests = append(b.dests, batchDest{h: h, env: env})
}

// Flush sends every pending batch and empties the batcher. It returns the
// first send error; remaining batches are still sent.
func (b *Batcher) Flush() error {
	var firstErr error
	for i := range b.dests {
		d := b.dests[i]
		var err error
		if len(d.env.Msgs) == 1 {
			m := d.env.Msgs[0]
			d.env.Release()
			err = d.h.Send(m)
		} else {
			err = d.h.SendBatch(d.env)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		b.dests[i] = batchDest{}
	}
	b.dests = b.dests[:0]
	return firstErr
}

// Pending reports the number of destinations with unflushed messages.
func (b *Batcher) Pending() int { return len(b.dests) }
