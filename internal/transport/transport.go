// Package transport simulates the reliable messaging layer between workflow
// nodes (engines, agents, the front end). The paper assumes messages are
// reliably delivered between agents using persistent-queue techniques
// (Exotica/FMQM); this transport preserves those semantics in-process:
//
//   - delivery is reliable and FIFO per receiver;
//   - messages to a crashed node are queued and delivered on recovery;
//   - senders never block (each node has an unbounded mailbox drained by a
//     pump goroutine), so protocol deadlocks cannot be introduced by the
//     transport itself;
//   - every physical message is counted in a metrics.Collector under its
//     mechanism class, which is the quantity the paper's evaluation compares
//     across architectures.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"crew/internal/metrics"
)

// Message is one physical message between nodes.
type Message struct {
	From string
	To   string
	// Mechanism classifies the message for the evaluation's message counts.
	Mechanism metrics.Mechanism
	// Kind is a free-form label naming the workflow interface invoked
	// (e.g. "StepExecute"); used by protocol traces and tests.
	Kind string
	// Payload carries the WI arguments; consumers type-switch on it.
	Payload any
}

// Endpoint is a node's receive side.
type Endpoint struct {
	name string
	ch   chan Message
}

// Name returns the node name.
func (e *Endpoint) Name() string { return e.name }

// Inbox returns the receive channel. It is closed when the network shuts
// down.
func (e *Endpoint) Inbox() <-chan Message { return e.ch }

type node struct {
	ep     *Endpoint
	mu     sync.Mutex
	queue  []Message
	up     bool
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

func (nd *node) pump() {
	defer close(nd.done)
	defer close(nd.ep.ch)
	for {
		nd.mu.Lock()
		var next *Message
		if nd.up && len(nd.queue) > 0 {
			m := nd.queue[0]
			nd.queue = nd.queue[1:]
			next = &m
		}
		nd.mu.Unlock()
		if next == nil {
			select {
			case <-nd.notify:
				continue
			case <-nd.stop:
				return
			}
		}
		select {
		case nd.ep.ch <- *next:
		case <-nd.stop:
			return
		}
	}
}

func (nd *node) wake() {
	select {
	case nd.notify <- struct{}{}:
	default:
	}
}

// Network connects named nodes.
type Network struct {
	mu        sync.Mutex
	nodes     map[string]*node
	collector *metrics.Collector
	closed    bool
	// trace, when non-nil, receives a copy of every sent message (for
	// protocol-trace tests and the crewsim fig4 demo).
	trace func(Message)
}

// ErrUnknownNode is returned when sending to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// New returns an empty network counting messages into collector (which may
// be nil to disable counting).
func New(collector *metrics.Collector) *Network {
	return &Network{nodes: make(map[string]*node), collector: collector}
}

// Trace installs a callback invoked (synchronously, under no lock) with a
// copy of every message accepted for delivery.
func (n *Network) Trace(fn func(Message)) {
	n.mu.Lock()
	n.trace = fn
	n.mu.Unlock()
}

// Register creates a node and returns its endpoint.
func (n *Network) Register(name string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.nodes[name]; dup {
		return nil, fmt.Errorf("transport: node %q already registered", name)
	}
	nd := &node{
		ep:     &Endpoint{name: name, ch: make(chan Message)},
		up:     true,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n.nodes[name] = nd
	go nd.pump()
	return nd.ep, nil
}

// MustRegister is Register panicking on error, for deployment code whose
// node sets are statically correct.
func (n *Network) MustRegister(name string) *Endpoint {
	ep, err := n.Register(name)
	if err != nil {
		panic(err)
	}
	return ep
}

// Send enqueues a message for delivery and counts it. Messages to a crashed
// node are retained and delivered after recovery.
func (n *Network) Send(m Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	nd, ok := n.nodes[m.To]
	trace := n.trace
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, m.To)
	}
	if n.collector != nil {
		n.collector.AddMessages(m.Mechanism, 1)
	}
	if trace != nil {
		trace(m)
	}
	nd.mu.Lock()
	nd.queue = append(nd.queue, m)
	nd.mu.Unlock()
	nd.wake()
	return nil
}

// Alive reports whether the node is registered and up.
func (n *Network) Alive(name string) bool {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	n.mu.Unlock()
	if !ok {
		return false
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.up
}

// Crash marks a node down: deliveries pause and messages queue until
// recovery. Crashing an unknown node is a no-op returning false.
func (n *Network) Crash(name string) bool {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	n.mu.Unlock()
	if !ok {
		return false
	}
	nd.mu.Lock()
	nd.up = false
	nd.mu.Unlock()
	return true
}

// Recover marks a node up again and resumes delivery of queued messages.
func (n *Network) Recover(name string) bool {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	n.mu.Unlock()
	if !ok {
		return false
	}
	nd.mu.Lock()
	nd.up = true
	nd.mu.Unlock()
	nd.wake()
	return true
}

// QueuedFor returns how many messages wait for a (typically crashed) node.
func (n *Network) QueuedFor(name string) int {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	n.mu.Unlock()
	if !ok {
		return 0
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return len(nd.queue)
}

// Nodes returns the sorted registered node names.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close shuts the network down: pumps stop and every endpoint's inbox is
// closed after its pump exits. Pending undelivered messages are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		close(nd.stop)
	}
	for _, nd := range nodes {
		<-nd.done
	}
}
