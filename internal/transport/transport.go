// Package transport simulates the reliable messaging layer between workflow
// nodes (engines, agents, the front end). The paper assumes messages are
// reliably delivered between agents using persistent-queue techniques
// (Exotica/FMQM); this transport preserves those semantics in-process:
//
//   - delivery is reliable and FIFO per receiver;
//   - messages to a crashed node are queued and delivered on recovery;
//   - senders never block (each node has an unbounded mailbox drained by a
//     pump goroutine), so protocol deadlocks cannot be introduced by the
//     transport itself;
//   - every physical message is counted in a metrics.Collector under its
//     mechanism class, which is the quantity the paper's evaluation compares
//     across architectures.
//
// The send side is the system's hottest path, so it is lock-free: the node
// table is copy-on-write (registration is rare, sends are not), the closed
// flag and trace callback are atomics, and per-destination Handles returned
// by Network.Handle skip the node lookup entirely. The receive side batches:
// each pump wakeup swaps the whole queued slice out under the node lock and
// delivers the batch, instead of one lock round-trip per message.
//
// The network also tracks every accepted message until it is consumed, which
// is what makes Quiesce possible: experiment harnesses block until no message
// is queued or undelivered instead of sleeping an arbitrary grace period.
//
// Fault injection hooks into this layer through a FaultPolicy: a policy
// installed with SetFaultPolicy observes every accepted message (with its
// global sequence number) and may charge retransmissions for it or delay its
// delivery by a number of pump rounds. The network additionally distinguishes
// in-flight messages that are parked at a crashed node; AwaitStall blocks
// until either the network drains or every remaining in-flight message is
// parked — the signal a fault injector uses to force recovery when a crash
// has stalled all forward progress.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crew/internal/metrics"
)

// Message is one physical message between nodes.
type Message struct {
	From string
	To   string
	// Mechanism classifies the message for the evaluation's message counts.
	Mechanism metrics.Mechanism
	// Kind is a free-form label naming the workflow interface invoked
	// (e.g. "StepExecute"); used by protocol traces and tests.
	Kind string
	// Payload carries the WI arguments; consumers type-switch on it.
	Payload any
}

// Verdict is a FaultPolicy's decision about one accepted message. The zero
// Verdict means "deliver normally".
type Verdict struct {
	// Retransmits charges that many extra physical transmissions of the
	// message (a drop followed by retransmission under a reliable transport:
	// the message still arrives, but it cost 1+Retransmits sends). The extra
	// copies are counted in the collector under the message's mechanism and
	// in the retransmit recovery counter.
	Retransmits int
	// Delay holds the message at the receiving node for that many delivery
	// rounds (pump passes). Per-link FIFO order is preserved: messages from
	// the same sender queued behind a delayed message are held with it.
	Delay int
}

// FaultPolicy is consulted on every message accepted for delivery. seq is the
// message's global 1-based acceptance sequence number — the network's logical
// clock, in delivered-message ticks. Implementations must be safe for
// concurrent use and must not block: the policy runs on the sender's
// goroutine.
type FaultPolicy interface {
	OnMessage(m Message, seq int64) Verdict
}

// Endpoint is a node's receive side.
type Endpoint struct {
	name string
	ch   chan Message
	nd   *node
}

// Name returns the node name.
func (e *Endpoint) Name() string { return e.name }

// Inbox returns the receive channel. It is closed when the network shuts
// down.
func (e *Endpoint) Inbox() <-chan Message { return e.ch }

// ManualAck switches the endpoint to handler-completion tracking: a message
// counts as in flight (for Quiesce) until the consumer calls Ack, not merely
// until it is read from the inbox. Consumers that process messages and send
// follow-ups must use this mode, otherwise Quiesce can observe an idle
// network between a message being received and its handler running. It must
// be called before any message is delivered to the endpoint (in practice:
// right after Register, before traffic starts).
func (e *Endpoint) ManualAck() { e.nd.manualAck.Store(true) }

// Ack marks one received message as fully processed. It must be called
// exactly once per message read from the inbox of a ManualAck endpoint, after
// the handler (and any sends it performs) completes. On endpoints not in
// manual-ack mode it is a no-op.
func (e *Endpoint) Ack() {
	if e.nd.manualAck.Load() {
		e.nd.net.decInflight()
	}
}

// queued is one mailbox entry: the message plus the remaining delivery-round
// delay charged by the fault policy.
type queued struct {
	m     Message
	delay int
}

type node struct {
	net       *Network
	ep        *Endpoint // nil for remote nodes (hub side of a process boundary)
	up        atomic.Bool
	manualAck atomic.Bool
	// link, when non-nil, is the wire backend's send side for this node: the
	// pump delivers through it instead of handing straight to ep.ch.
	link Link

	mu     sync.Mutex //crew:lockrank 40
	queue  []queued
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
	// unacked holds messages a remote node's link has written to its peer
	// process but the peer has not acknowledged yet. They are still in
	// flight; a reconnecting peer gets them replayed (at-least-once), and
	// crash/recover counts them with the parked queue.
	unacked []Message
}

// pump drains the node's mailbox into its inbox channel. Each wakeup swaps
// the entire queued slice out under the lock and delivers the batch, so the
// per-message steady-state cost is one channel send — the lock is paid once
// per burst. The batch and queue buffers are reused across swaps.
//
// Messages carrying a fault-injected delay are held for that many pump
// passes before delivery; while a message from sender S is held, every later
// message from S in the same pass is held behind it, so per-link FIFO order
// survives injected latency.
func (nd *node) pump() {
	defer close(nd.done)
	if nd.ep != nil && nd.link == nil {
		// In-process delivery: the pump is the only sender on ep.ch. With a
		// wire backend the sink sends on ep.ch from the backend's reader, so
		// Network.Close closes it after the backend has been torn down.
		defer close(nd.ep.ch)
	}
	var batch []queued
	for {
		nd.mu.Lock()
		if nd.up.Load() && len(nd.queue) > 0 {
			batch, nd.queue = nd.queue, batch[:0]
		}
		nd.mu.Unlock()
		if len(batch) == 0 {
			select {
			case <-nd.notify:
				continue
			case <-nd.stop:
				return
			}
		}
		var held []queued
		var heldFrom map[string]bool
		crashedAt := -1
		for i := range batch {
			if !nd.up.Load() {
				crashedAt = i
				break
			}
			q := batch[i]
			if q.delay > 0 || heldFrom[q.m.From] {
				if q.delay > 0 {
					q.delay--
				}
				if heldFrom == nil {
					heldFrom = make(map[string]bool)
				}
				heldFrom[q.m.From] = true
				held = append(held, q)
				continue
			}
			if nd.link != nil {
				// Wire delivery: the frame crosses the backend and the sink
				// (for local nodes) or the peer's ack (for remote nodes)
				// retires it from the in-flight count. A delivery failure is
				// treated like a crash cut-off: the message and the batch
				// remainder go back to the queue front for replay.
				if err := nd.deliverWire(q.m); err != nil {
					if nd.net.closed.Load() {
						return
					}
					crashedAt = i
					break
				}
				continue
			}
			select {
			case nd.ep.ch <- q.m:
				if !nd.manualAck.Load() {
					nd.net.decInflight()
				}
			case <-nd.stop:
				return
			}
		}
		if crashedAt >= 0 || len(held) > 0 {
			// Push undelivered messages back to the front of the queue so
			// later arrivals stay behind them: held-for-delay messages first
			// (they arrived earliest), then the remainder the crash cut off.
			rest := append([]queued(nil), held...)
			if crashedAt >= 0 {
				rest = append(rest, batch[crashedAt:]...)
			}
			nd.mu.Lock()
			nd.queue = append(rest, nd.queue...)
			if !nd.up.Load() {
				// The node is down: everything just requeued is parked until
				// recovery (Recover subtracts the whole queue).
				nd.net.parked.Add(int64(len(rest)))
			}
			nd.mu.Unlock()
			nd.net.maybeNotifyQuiet()
			if crashedAt < 0 {
				// Nothing is waking us for the held messages; re-arm.
				nd.wake()
			}
		}
		batch = batch[:0]
	}
}

func (nd *node) wake() {
	select {
	case nd.notify <- struct{}{}:
	default:
	}
}

// deliverWire carries one message across the node's wire link.
func (nd *node) deliverWire(m Message) error { return nd.link.Deliver(m) }

// consume is the wire sink's handoff into the endpoint: it blocks until the
// consumer takes the message (or the node stops) and then retires it from
// the in-flight count — the same accounting as the in-process delivery
// branch, so Quiesce stays exact across any backend.
func (nd *node) consume(m Message) error {
	select {
	case nd.ep.ch <- m:
		if !nd.manualAck.Load() {
			nd.net.decInflight()
		}
		return nil
	case <-nd.stop:
		return ErrClosed
	}
}

// Network connects named nodes.
type Network struct {
	// mu serializes registration and close; sends never take it.
	mu        sync.Mutex //crew:lockrank 10
	nodes     atomic.Pointer[map[string]*node]
	collector *metrics.Collector
	// wire is the byte-transport backend; nil selects the in-process
	// channel path (see NetworkConfig.Wire).
	wire Wire
	// backends lists additional wire machinery (a RemoteHub) whose Close
	// must interleave with shutdown to unblock in-flight deliveries.
	backends []interface{ Close() error }
	closed   atomic.Bool
	closedCh chan struct{}
	// trace, when non-nil, receives a copy of every sent message (for
	// protocol-trace tests and the crewsim fig4 demo). Captured atomically so
	// installation can race with traffic.
	trace atomic.Pointer[func(Message)]
	// policy, when non-nil, is the installed FaultPolicy.
	policy atomic.Pointer[FaultPolicy]
	// accepted is the global message sequence clock: the number of messages
	// accepted for delivery so far.
	accepted atomic.Int64

	// inflight counts messages accepted by Send but not yet consumed (see
	// Endpoint.ManualAck for what "consumed" means per endpoint). parked
	// counts the subset currently queued at a crashed node; when
	// inflight == parked > 0 the network is stalled on recovery. idleCh is
	// non-nil while Quiesce/AwaitStall waiters sleep and is closed on every
	// transition to idle or stalled.
	inflight atomic.Int64
	parked   atomic.Int64
	idleMu   sync.Mutex //crew:lockrank 50
	idleCh   chan struct{}
}

// Handle is a cached sender bound to one destination node. It skips the node
// lookup that Network.Send performs, which makes it the preferred send path
// for engines and agents that message the same peers repeatedly.
type Handle struct {
	n  *Network
	nd *node
}

// Send enqueues a message for delivery to the handle's node and counts it.
// The message's To field should name the handle's node; delivery goes to the
// bound node regardless.
//crew:hotpath
func (h *Handle) Send(m Message) error { return h.n.deliver(h.nd, m) }

// ErrUnknownNode is returned when sending to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// New returns an empty in-process network counting messages into collector
// (which may be nil to disable counting).
//
// Deprecated: use NewNetwork, which selects a wire backend. New bypasses
// backend selection and always builds the in-process network; it is kept for
// tests and old call sites only.
func New(collector *metrics.Collector) *Network {
	return NewNetwork(NetworkConfig{Collector: collector})
}

// Trace installs a callback invoked (synchronously, under no lock) with a
// copy of every message accepted for delivery. Installation is atomic with
// respect to concurrent sends.
func (n *Network) Trace(fn func(Message)) {
	if fn == nil {
		n.trace.Store(nil)
		return
	}
	n.trace.Store(&fn)
}

// SetFaultPolicy installs (or, with nil, removes) the fault policy consulted
// on every accepted message. Installation is atomic with respect to
// concurrent sends; with no policy installed the send path pays one atomic
// load.
func (n *Network) SetFaultPolicy(p FaultPolicy) {
	if p == nil {
		n.policy.Store(nil)
		return
	}
	n.policy.Store(&p)
}

// Seq returns the network's logical clock: the number of messages accepted
// for delivery so far.
func (n *Network) Seq() int64 { return n.accepted.Load() }

// lookup resolves a node without locking (copy-on-write node table).
func (n *Network) lookup(name string) *node {
	return (*n.nodes.Load())[name]
}

// Register creates a node and returns its endpoint. With a wire backend
// configured, the node's deliveries are bound through the backend before any
// message can be accepted for it.
func (n *Network) Register(name string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		return nil, ErrClosed
	}
	old := *n.nodes.Load()
	if _, dup := old[name]; dup {
		return nil, fmt.Errorf("transport: node %q already registered", name)
	}
	nd := &node{
		net:    n,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	nd.up.Store(true)
	nd.ep = &Endpoint{name: name, ch: make(chan Message), nd: nd}
	if n.wire != nil {
		link, err := n.wire.Listen(name, nd.consume)
		if err != nil {
			return nil, fmt.Errorf("transport: wire listen %q: %w", name, err)
		}
		nd.link = link
	}
	n.install(name, nd, old)
	return nd.ep, nil
}

// registerRemote creates a node whose consumer lives in another OS process:
// it has no local endpoint, and its pump delivers through link (a RemoteHub
// per-peer link). The front half treats it like any other node — counting,
// fault policy, parking, quiescence — which is what makes hub-side
// accounting authoritative across process boundaries.
func (n *Network) registerRemote(name string, mkLink func(*node) Link) (*node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		return nil, ErrClosed
	}
	old := *n.nodes.Load()
	if _, dup := old[name]; dup {
		return nil, fmt.Errorf("transport: node %q already registered", name)
	}
	nd := &node{
		net:    n,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	nd.up.Store(true)
	nd.link = mkLink(nd)
	n.install(name, nd, old)
	return nd, nil
}

// install publishes a node in the copy-on-write table and starts its pump.
// Callers hold n.mu and pass the table snapshot they duplicate-checked.
func (n *Network) install(name string, nd *node, old map[string]*node) {
	next := make(map[string]*node, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = nd
	n.nodes.Store(&next)
	go nd.pump()
}

// addBackend registers extra wire machinery to close during shutdown.
func (n *Network) addBackend(c interface{ Close() error }) {
	n.mu.Lock()
	n.backends = append(n.backends, c)
	n.mu.Unlock()
}

// MustRegister is Register panicking on error, for deployment code whose
// node sets are statically correct.
func (n *Network) MustRegister(name string) *Endpoint {
	ep, err := n.Register(name)
	if err != nil {
		panic(err)
	}
	return ep
}

// Handle returns a cached sender for a registered node.
func (n *Network) Handle(name string) (*Handle, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	nd := n.lookup(name)
	if nd == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return &Handle{n: n, nd: nd}, nil
}

// Send enqueues a message for delivery and counts it. Messages to a crashed
// node are retained and delivered after recovery. The path is lock-free up
// to the destination node's queue append.
func (n *Network) Send(m Message) error {
	if n.closed.Load() {
		return ErrClosed
	}
	nd := n.lookup(m.To)
	if nd == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, m.To)
	}
	return n.deliver(nd, m)
}

//crew:hotpath
func (n *Network) deliver(nd *node, m Message) error {
	if n.closed.Load() {
		return ErrClosed
	}
	seq := n.accepted.Add(1)
	delay := 0
	if p := n.policy.Load(); p != nil {
		v := (*p).OnMessage(m, seq)
		if v.Retransmits > 0 && n.collector != nil {
			n.collector.AddMessages(m.Mechanism, int64(v.Retransmits))
			n.collector.AddRetransmits(int64(v.Retransmits))
		}
		delay = v.Delay
	}
	if n.collector != nil {
		n.collector.AddMessages(m.Mechanism, 1)
	}
	if fn := n.trace.Load(); fn != nil {
		(*fn)(m)
	}
	n.enqueue(nd, m, delay)
	return nil
}

// enqueue appends one accepted physical message to the node's mailbox and
// updates the in-flight/parked accounting.
//
//crew:hotpath
func (n *Network) enqueue(nd *node, m Message, delay int) {
	n.inflight.Add(1)
	parkedHere := false
	nd.mu.Lock()
	nd.queue = append(nd.queue, queued{m: m, delay: delay})
	if !nd.up.Load() {
		n.parked.Add(1)
		parkedHere = true
	}
	nd.mu.Unlock()
	if parkedHere {
		n.maybeNotifyQuiet()
	}
	nd.wake()
}

// decInflight retires one in-flight message and releases Quiesce/AwaitStall
// waiters on a transition to idle or stalled.
func (n *Network) decInflight() {
	in := n.inflight.Add(-1)
	if in == 0 || in == n.parked.Load() {
		n.notifyQuiet()
	}
}

// maybeNotifyQuiet releases waiters if the network is currently idle or
// stalled. Called after any change to the parked count.
func (n *Network) maybeNotifyQuiet() {
	in := n.inflight.Load()
	if in == 0 || in == n.parked.Load() {
		n.notifyQuiet()
	}
}

func (n *Network) notifyQuiet() {
	n.idleMu.Lock()
	if n.idleCh != nil {
		close(n.idleCh)
		n.idleCh = nil
	}
	n.idleMu.Unlock()
}

// InFlight reports the number of messages accepted but not yet consumed.
func (n *Network) InFlight() int64 { return n.inflight.Load() }

// Parked reports how many in-flight messages are queued at crashed nodes.
func (n *Network) Parked() int64 { return n.parked.Load() }

// Quiesce blocks until the network is idle: no message queued, undelivered,
// or (for ManualAck endpoints) still being processed. Messages queued for a
// crashed node keep the network non-idle until the node recovers. It returns
// ctx.Err() if the context ends first and ErrClosed if the network closes.
func (n *Network) Quiesce(ctx context.Context) error {
	for {
		if n.closed.Load() {
			return ErrClosed
		}
		n.idleMu.Lock()
		if n.inflight.Load() == 0 {
			n.idleMu.Unlock()
			return nil
		}
		if n.idleCh == nil {
			n.idleCh = make(chan struct{})
		}
		ch := n.idleCh
		n.idleMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-n.closedCh:
			return ErrClosed
		}
	}
}

// AwaitStall blocks until the network either drains completely (returns
// false) or stalls — every in-flight message is parked at a crashed node, so
// no forward progress is possible until something recovers (returns true).
// Fault injectors use this as the backstop that forces recovery when a crash
// has frozen the system before the scheduled recovery trigger can fire.
func (n *Network) AwaitStall(ctx context.Context) (bool, error) {
	for {
		if n.closed.Load() {
			return false, ErrClosed
		}
		n.idleMu.Lock()
		in, p := n.inflight.Load(), n.parked.Load()
		if in == 0 {
			n.idleMu.Unlock()
			return false, nil
		}
		if in == p {
			n.idleMu.Unlock()
			return true, nil
		}
		if n.idleCh == nil {
			n.idleCh = make(chan struct{})
		}
		ch := n.idleCh
		n.idleMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false, ctx.Err()
		case <-n.closedCh:
			return false, ErrClosed
		}
	}
}

// Alive reports whether the node is registered and up.
func (n *Network) Alive(name string) bool {
	nd := n.lookup(name)
	return nd != nil && nd.up.Load()
}

// Crash marks a node down: deliveries pause and messages queue until
// recovery. Crashing an unknown node is a no-op returning false.
func (n *Network) Crash(name string) bool {
	nd := n.lookup(name)
	if nd == nil {
		return false
	}
	nd.mu.Lock()
	if nd.up.Load() {
		nd.up.Store(false)
		// A remote node's unacked messages are in flight at the dead peer;
		// they park with the queue and will be replayed on reclaim.
		n.parked.Add(int64(len(nd.queue) + len(nd.unacked)))
	}
	nd.mu.Unlock()
	n.maybeNotifyQuiet()
	return true
}

// Recover marks a node up again and resumes delivery of queued messages.
func (n *Network) Recover(name string) bool {
	nd := n.lookup(name)
	if nd == nil {
		return false
	}
	nd.mu.Lock()
	if !nd.up.Load() {
		nd.up.Store(true)
		n.parked.Add(int64(-(len(nd.queue) + len(nd.unacked))))
	}
	nd.mu.Unlock()
	n.maybeNotifyQuiet()
	nd.wake()
	return true
}

// QueuedFor returns how many messages wait for a (typically crashed) node.
func (n *Network) QueuedFor(name string) int {
	nd := n.lookup(name)
	if nd == nil {
		return 0
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return len(nd.queue)
}

// Nodes returns the sorted registered node names.
func (n *Network) Nodes() []string {
	nodes := *n.nodes.Load()
	out := make([]string, 0, len(nodes))
	for name := range nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close shuts the network down: pumps stop and every endpoint's inbox is
// closed after its pump exits. Pending undelivered messages are dropped and
// any Quiesce waiters are released with ErrClosed.
//
// With a wire backend the teardown order matters: node stops are signalled
// first (unblocking sinks parked on full endpoint channels), then the backend
// is closed — which fails in-flight Delivers and joins every reader
// goroutine — and only then, with no sender left, are the wire endpoints'
// inbox channels closed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed.Load() {
		n.mu.Unlock()
		return
	}
	n.closed.Store(true)
	close(n.closedCh)
	nodes := *n.nodes.Load()
	backends := n.backends
	n.mu.Unlock()
	for _, nd := range nodes {
		close(nd.stop)
	}
	for _, b := range backends {
		b.Close()
	}
	if n.wire != nil {
		n.wire.Close()
	}
	for _, nd := range nodes {
		<-nd.done
	}
	if n.wire != nil {
		for _, nd := range nodes {
			if nd.link != nil && nd.ep != nil {
				close(nd.ep.ch)
			}
		}
	}
}
