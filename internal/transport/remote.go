package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/cerrors"
)

// This file implements the multi-process hub protocol: the piece that turns
// the in-process Network into the message switch of a deployment whose agents
// are real OS processes.
//
// Topology: the hub process owns the Network (and with it the authoritative
// message counts, fault policy, parking and quiescence accounting). Every
// agent process dials the hub once and claims its node name with a HELLO
// frame. From then on the single connection carries, hub -> child, the
// node's deliveries (MSG) and deployment liveness announcements (WELCOME,
// CRASH, RECOVER); and child -> hub, the child's outbound sends (MSG,
// re-entering the hub Network where they are counted and routed), delivery
// acknowledgements (ACK) and program-execution events (EXEC, feeding a
// cross-process coordination-invariant checker).
//
// Delivery to a child is write-and-track rather than write-and-wait: Deliver
// appends the message to the node's unacked tail, writes the frame and
// returns, and the child's ACK — sent only after the child has fully
// processed the delivery, including flushing its own follow-up sends on the
// same connection — retires it from the in-flight count. Because the ACK
// trails the follow-up sends in the connection's FIFO, the hub never observes
// a processed-but-unsent gap: Quiesce stays exact across process boundaries.
// A child killed mid-delivery leaves the message in the unacked tail; the
// respawned child's reconnect replays the tail in order before any new
// traffic (at-least-once — the workflow protocol's epoch merge absorbs the
// duplicates this can produce).

// Exec phases reported over EXEC frames.
const (
	// ExecEnter marks a step program starting to run.
	ExecEnter byte = iota
	// ExecExitOK marks a step program returning success.
	ExecExitOK
	// ExecExitFail marks a step program returning a logical failure.
	ExecExitFail
)

// ExecEvent is one program-execution event crossing the hub protocol: a child
// reports the execution window of every step program it runs, so the hub can
// check coordination invariants (mutex overlap, relative order) from outside
// the processes that enforce them.
type ExecEvent struct {
	Phase    byte
	Workflow string
	Step     string
	Instance int
}

// RemoteHub is the hub-process side of the protocol. It plugs into a Network
// as the delivery backend of remote nodes (RegisterRemote) and is closed with
// the network (it registers itself as a backend).
type RemoteHub struct {
	n      *Network
	ln     net.Listener
	onExec func(ExecEvent)
	tmpDir string

	mu    sync.Mutex //crew:lockrank 20
	peers map[string]*remotePeer

	closed   atomic.Bool
	closedCh chan struct{}
	wg       sync.WaitGroup
}

// NewRemoteHub binds a hub listener ("unix" or "tcp"; empty addr picks a
// private socket path or a loopback port) and attaches it to the network.
// onExec, when non-nil, receives every EXEC event children report.
func NewRemoteHub(n *Network, network, addr string, onExec func(ExecEvent)) (*RemoteHub, error) {
	h := &RemoteHub{
		n:        n,
		onExec:   onExec,
		peers:    make(map[string]*remotePeer),
		closedCh: make(chan struct{}),
	}
	switch network {
	case "unix":
		if addr == "" {
			dir, err := os.MkdirTemp("", "crewhub")
			if err != nil {
				return nil, cerrors.E(cerrors.CodeInvalidConfig, cerrors.PhaseListen, cerrors.ErrWire, err, "hub socket dir")
			}
			h.tmpDir = dir
			addr = filepath.Join(dir, "hub.sock")
		}
	case "tcp":
		if addr == "" {
			addr = "127.0.0.1:0"
		}
	default:
		return nil, cerrors.E(cerrors.CodeInvalidConfig, cerrors.PhaseConfig, cerrors.ErrWire, nil, "hub network %q (want unix or tcp)", network)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		if h.tmpDir != "" {
			os.RemoveAll(h.tmpDir)
		}
		return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseListen, cerrors.ErrWire, err, "hub listen %s %s", network, addr)
	}
	h.ln = ln
	n.addBackend(h)
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's bound address (children dial it).
func (h *RemoteHub) Addr() string { return h.ln.Addr().String() }

// RegisterRemote creates a network node whose consumer is a child process.
// The node takes part in counting, fault injection, parking and quiescence
// like any in-process node; its deliveries cross the hub connection once a
// child claims the name.
func (h *RemoteHub) RegisterRemote(name string) error {
	if h.closed.Load() {
		return ErrClosed
	}
	p := &remotePeer{hub: h, name: name, claimed: make(chan struct{})}
	_, err := h.n.registerRemote(name, func(nd *node) Link {
		p.nd = nd
		return p
	})
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.peers[name] = p
	h.mu.Unlock()
	return nil
}

// Announce broadcasts a node's liveness transition to every connected child,
// so their election liveness maps track the hub's crash/recover injections.
// The network-side Crash/Recover bookkeeping is the caller's job (the fault
// injector already drives Network.Crash and Network.Recover directly).
func (h *RemoteHub) Announce(name string, up bool) {
	typ := frameCrash
	if up {
		typ = frameRecover
	}
	body := appendString(nil, name)
	h.mu.Lock()
	peers := make([]*remotePeer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	h.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.writeFrameLocked(typ, body)
		}
		p.mu.Unlock()
	}
}

// Connected reports whether a child currently claims the node.
func (h *RemoteHub) Connected(name string) bool {
	h.mu.Lock()
	p := h.peers[name]
	h.mu.Unlock()
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// WaitConnected blocks until every named node has been claimed by a child.
func (h *RemoteHub) WaitConnected(ctx context.Context, names ...string) error {
	for _, name := range names {
		h.mu.Lock()
		p := h.peers[name]
		h.mu.Unlock()
		if p == nil {
			return fmt.Errorf("%w: %q", ErrUnknownNode, name)
		}
		for {
			p.mu.Lock()
			connected := p.conn != nil
			ch := p.claimed
			p.mu.Unlock()
			if connected {
				break
			}
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			case <-h.closedCh:
				return ErrClosed
			}
		}
	}
	return nil
}

// Close shuts the hub down: the listener and every child connection close,
// which fails in-flight Delivers and joins the reader goroutines. Idempotent;
// Network.Close calls it through the backend registration.
func (h *RemoteHub) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	close(h.closedCh)
	h.ln.Close()
	h.mu.Lock()
	peers := make([]*remotePeer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	h.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	h.wg.Wait()
	if h.tmpDir != "" {
		os.RemoveAll(h.tmpDir)
	}
	return nil
}

func (h *RemoteHub) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serve(c)
	}
}

// serve handles one child connection: HELLO claims a node, then the loop
// dispatches the child's MSG/ACK/EXEC frames until the connection dies.
func (h *RemoteHub) serve(c net.Conn) {
	defer h.wg.Done()
	var buf []byte
	typ, body, buf, err := readFrame(c, buf)
	if err != nil || typ != frameHello {
		c.Close()
		return
	}
	name, _, err := readString(body)
	if err != nil {
		c.Close()
		return
	}
	h.mu.Lock()
	p := h.peers[name]
	h.mu.Unlock()
	if p == nil {
		c.Close()
		return
	}
	p.attach(c)
	defer p.detach(c)
	for {
		typ, body, buf, err = readFrame(c, buf)
		if err != nil {
			return
		}
		switch typ {
		case frameMsg:
			m, err := decodeMessage(body)
			if err != nil {
				return
			}
			h.inject(m)
		case frameAck:
			p.ack()
		case frameExec:
			ev, err := decodeExec(body)
			if err != nil {
				return
			}
			if h.onExec != nil {
				h.onExec(ev)
			}
		default:
			return
		}
	}
}

// inject routes a child's forwarded send through the hub network, where it is
// counted (per logical message for envelopes) exactly like a local send.
func (h *RemoteHub) inject(m Message) {
	if env, ok := m.Payload.(*Envelope); ok && m.Kind == KindEnvelope {
		nd := h.n.lookup(m.To)
		if nd == nil {
			env.Release()
			return
		}
		h.n.deliverBatch(nd, env)
		return
	}
	h.n.Send(m)
}

// remotePeer is the hub-side send half of one remote node: the Link its
// network node delivers through, plus the claimed connection.
type remotePeer struct {
	hub  *RemoteHub
	name string
	nd   *node

	// mu guards conn and serializes every write on it: deliveries, the
	// attach-time WELCOME + unacked replay, and liveness broadcasts. The lock
	// order is mu before nd.mu, always.
	mu      sync.Mutex //crew:lockrank 30
	conn    net.Conn
	claimed chan struct{} // closed while conn != nil; replaced on detach
	scratch []byte
}

// Deliver carries one message toward the child. With a claimed connection it
// appends the message to the unacked tail and writes the frame — returning
// nil even if the write fails, because the message is tracked for replay and
// popping it back out would race the ACK stream. With no connection it waits
// for a claim, failing fast once the node is marked down so the pump parks
// the remainder (keeping AwaitStall's stalled-network signal sharp) and
// polling the liveness flag so a crash during the wait cannot strand it.
func (p *remotePeer) Deliver(m Message) error {
	for {
		p.mu.Lock()
		if p.conn != nil {
			err := p.writeMsgLocked(m)
			p.mu.Unlock()
			return err
		}
		ch := p.claimed
		p.mu.Unlock()
		if p.hub.closed.Load() {
			return ErrClosed
		}
		if !p.nd.up.Load() {
			return cerrors.E(cerrors.CodePeerCrashed, cerrors.PhaseDeliver, cerrors.ErrWire, nil, "node %s down with no process attached", p.name)
		}
		select {
		case <-ch:
		case <-p.hub.closedCh:
			return ErrClosed
		case <-p.nd.stop:
			return ErrClosed
		case <-time.After(20 * time.Millisecond):
			// Re-check the liveness flag; a crash can land while we sleep.
		}
	}
}

// Close implements Link; the hub owns connection lifecycle, nothing to do.
func (p *remotePeer) Close() error { return nil }

// writeMsgLocked encodes and writes one MSG frame under p.mu, tracking the
// message in the node's unacked tail first: once the frame may have reached
// the child the message must be replayable, and ACKs pop strictly from the
// front. An encode failure (unregistered payload — a sender bug) is returned
// without tracking; a write failure is not an error here, the reader will
// detach the dead connection and a reclaim will replay the tail.
func (p *remotePeer) writeMsgLocked(m Message) error {
	framed, err := appendMessageFrame(p.scratch[:0], m)
	if err != nil {
		return err
	}
	p.scratch = framed
	p.nd.mu.Lock()
	p.nd.unacked = append(p.nd.unacked, m)
	if !p.nd.up.Load() {
		p.nd.net.parked.Add(1)
	}
	p.nd.mu.Unlock()
	if _, err := p.conn.Write(framed); err != nil {
		p.conn.Close()
	}
	return nil
}

// writeFrameLocked writes one non-MSG frame under p.mu.
func (p *remotePeer) writeFrameLocked(typ byte, body []byte) {
	p.scratch = appendFrame(p.scratch[:0], typ, body)
	if _, err := p.conn.Write(p.scratch); err != nil {
		p.conn.Close()
	}
}

// attach installs a claimed connection: welcome the child with the current
// roster and liveness, replay the unacked tail in order (nothing new can be
// written while p.mu is held, so replay precedes all fresh traffic), then
// release waiting Delivers.
func (p *remotePeer) attach(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wasConnected := p.conn != nil
	if wasConnected {
		p.conn.Close()
	}
	p.conn = c
	nodes := p.hub.n.Nodes()
	body := binary.AppendUvarint(nil, uint64(len(nodes)))
	for _, name := range nodes {
		body = appendString(body, name)
		if p.hub.n.Alive(name) {
			body = append(body, 1)
		} else {
			body = append(body, 0)
		}
	}
	p.writeFrameLocked(frameWelcome, body)
	p.nd.mu.Lock()
	pending := append([]Message(nil), p.nd.unacked...)
	p.nd.mu.Unlock()
	for _, m := range pending {
		framed, err := appendMessageFrame(p.scratch[:0], m)
		if err != nil {
			continue
		}
		p.scratch = framed
		if _, err := p.conn.Write(framed); err != nil {
			p.conn.Close()
			break
		}
	}
	if !wasConnected {
		close(p.claimed)
	}
}

// detach clears the connection if it is still the current one. Liveness is
// not touched: an unexpected disconnect (a killed process) is announced by
// whoever killed it — the transport only knows the pipe broke.
func (p *remotePeer) detach(c net.Conn) {
	c.Close()
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
		p.claimed = make(chan struct{})
	}
	p.mu.Unlock()
}

// ack retires the oldest unacked delivery: the child has fully processed it
// (its follow-up sends precede the ACK on the wire, so they are already
// routed). The parked adjustment and the down decision share the node lock
// with Crash/Recover, keeping the parked invariant — every queued or unacked
// message of a down node is parked, nothing else — exact under races.
func (p *remotePeer) ack() {
	p.nd.mu.Lock()
	if len(p.nd.unacked) == 0 {
		p.nd.mu.Unlock()
		return
	}
	m := p.nd.unacked[0]
	copy(p.nd.unacked, p.nd.unacked[1:])
	p.nd.unacked[len(p.nd.unacked)-1] = Message{}
	p.nd.unacked = p.nd.unacked[:len(p.nd.unacked)-1]
	down := !p.nd.up.Load()
	p.nd.mu.Unlock()
	if down {
		p.nd.net.parked.Add(-1)
	}
	p.nd.net.decInflight()
	if env, ok := m.Payload.(*Envelope); ok && m.Kind == KindEnvelope {
		env.Release()
	}
}

// appendMessageFrame appends a complete MSG frame (header + body) to dst.
func appendMessageFrame(dst []byte, m Message) ([]byte, error) {
	dst = append(dst, 0, 0, 0, 0, frameMsg)
	body, err := appendMessage(dst, m)
	if err != nil {
		return nil, err
	}
	n := len(body) - 4
	body[0], body[1], body[2], body[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return body, nil
}

func appendExec(dst []byte, ev ExecEvent) []byte {
	dst = append(dst, ev.Phase)
	dst = appendString(dst, ev.Workflow)
	dst = appendString(dst, ev.Step)
	return binary.AppendUvarint(dst, uint64(ev.Instance))
}

func decodeExec(body []byte) (ExecEvent, error) {
	var ev ExecEvent
	if len(body) < 1 {
		return ev, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, nil, "empty exec body")
	}
	ev.Phase = body[0]
	rest := body[1:]
	var err error
	if ev.Workflow, rest, err = readString(rest); err != nil {
		return ev, err
	}
	if ev.Step, rest, err = readString(rest); err != nil {
		return ev, err
	}
	id, _, err := readUvarint(rest)
	if err != nil {
		return ev, err
	}
	ev.Instance = int(id)
	return ev, nil
}

// ---------------------------------------------------------------------------
// Child side

// ChildConn is the agent-process side of the hub protocol: one connection
// that claims this process's node name and then multiplexes deliveries in and
// sends/acks/exec-events out. Writes are safe for concurrent use (forwarder
// goroutines and the delivery loop share the connection).
type ChildConn struct {
	conn net.Conn
	name string

	wmu     sync.Mutex
	scratch []byte

	amu   sync.Mutex
	alive map[string]bool
}

// DialHub connects to a hub and claims name.
func DialHub(network, addr, name string) (*ChildConn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseDial, cerrors.ErrWire, err, "dial hub %s %s", network, addr)
	}
	cc := &ChildConn{conn: c, name: name, alive: make(map[string]bool)}
	cc.wmu.Lock()
	cc.scratch = appendFrame(cc.scratch[:0], frameHello, appendString(nil, name))
	_, err = c.Write(cc.scratch)
	cc.wmu.Unlock()
	if err != nil {
		c.Close()
		return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseDial, cerrors.ErrWire, err, "hello %s", name)
	}
	return cc, nil
}

// Alive reports the hub-announced liveness of a node. The child's own name is
// always alive; nodes the hub has not mentioned yet default to alive (they
// are registered and up until a crash is announced).
func (c *ChildConn) Alive(name string) bool {
	if name == c.name {
		return true
	}
	c.amu.Lock()
	defer c.amu.Unlock()
	up, known := c.alive[name]
	return !known || up
}

// SendMessage forwards one of this process's outbound sends to the hub,
// where it re-enters the authoritative network.
func (c *ChildConn) SendMessage(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	framed, err := appendMessageFrame(c.scratch[:0], m)
	if err != nil {
		return err
	}
	c.scratch = framed
	_, err = c.conn.Write(framed)
	return err
}

// Exec reports a program-execution event to the hub's invariant checker.
func (c *ChildConn) Exec(ev ExecEvent) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.scratch = appendFrame(c.scratch[:0], frameExec, appendExec(nil, ev))
	_, err := c.conn.Write(c.scratch)
	return err
}

func (c *ChildConn) writeAck() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.scratch = appendFrame(c.scratch[:0], frameAck, nil)
	_, err := c.conn.Write(c.scratch)
	return err
}

// Close tears the connection down (ends Serve).
func (c *ChildConn) Close() error { return c.conn.Close() }

// Serve runs the child's receive loop until the connection closes: deliver
// is called for every incoming message and must return only when the message
// is fully processed — including every follow-up send the processing caused,
// issued through SendMessage so they precede the automatic ACK on the wire.
// That ordering is what makes the hub's quiescence accounting exact across
// the process boundary. onLiveness (optional) observes hub announcements
// after the internal liveness map (serving Alive) is updated. A nil error
// means the hub closed the connection cleanly.
func (c *ChildConn) Serve(deliver func(Message) error, onLiveness func(name string, up bool)) error {
	var buf []byte
	for {
		typ, body, nbuf, err := readFrame(c.conn, buf)
		buf = nbuf
		if err != nil {
			c.conn.Close()
			if err == io.EOF || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch typ {
		case frameMsg:
			m, err := decodeMessage(body)
			if err != nil {
				c.conn.Close()
				return err
			}
			if err := deliver(m); err != nil {
				c.conn.Close()
				return err
			}
			if err := c.writeAck(); err != nil {
				c.conn.Close()
				return err
			}
		case frameWelcome:
			count, rest, err := readUvarint(body)
			if err != nil {
				c.conn.Close()
				return err
			}
			c.amu.Lock()
			for i := uint64(0); i < count && len(rest) > 0; i++ {
				var name string
				if name, rest, err = readString(rest); err != nil {
					break
				}
				if len(rest) < 1 {
					break
				}
				c.alive[name] = rest[0] == 1
				rest = rest[1:]
			}
			c.amu.Unlock()
		case frameCrash, frameRecover:
			name, _, err := readString(body)
			if err != nil {
				c.conn.Close()
				return err
			}
			up := typ == frameRecover
			c.amu.Lock()
			c.alive[name] = up
			c.amu.Unlock()
			if onLiveness != nil {
				onLiveness(name, up)
			}
		default:
			// The hub never sends HELLO, ACK or EXEC downstream; anything
			// else is a framing desync. Rejecting loudly here beats
			// resynchronizing on a corrupt stream.
			c.conn.Close()
			return cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "unexpected frame %d from hub", typ)
		}
	}
}
