package transport

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"crew/internal/cerrors"
)

// TestWireErrorClassification drives the wire failure modes a multi-process
// supervisor must tell apart — dial refused, truncated frame, peer killed
// mid-conversation, protocol desync — and asserts each classifies to its
// documented cerrors code and phase. The assertions switch on CodeOf the way
// real callers do: never string matching, never errors.Is on wrapped causes.
func TestWireErrorClassification(t *testing.T) {
	t.Run("dial refused", func(t *testing.T) {
		// Bind a listener to reserve an address, then close it so the dial
		// lands on a dead port.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		_, err = DialHub("tcp", addr, "a")
		if err == nil {
			t.Fatal("DialHub to a closed listener succeeded")
		}
		switch cerrors.CodeOf(err) {
		case cerrors.CodeDialRefused:
		default:
			t.Fatalf("CodeOf = %q, want CodeDialRefused (err=%v)", cerrors.CodeOf(err), err)
		}
		if cerrors.PhaseOf(err) != cerrors.PhaseDial {
			t.Fatalf("PhaseOf = %q, want PhaseDial", cerrors.PhaseOf(err))
		}
	})

	t.Run("frame truncated", func(t *testing.T) {
		// A header that promises 100 body bytes over a stream holding 3.
		raw := appendFrame(nil, frameMsg, bytes.Repeat([]byte{7}, 99))
		_, _, _, err := readFrame(bytes.NewReader(raw[:8]), nil)
		if err == nil {
			t.Fatal("readFrame on a truncated stream succeeded")
		}
		switch cerrors.CodeOf(err) {
		case cerrors.CodeFrameTruncated:
		default:
			t.Fatalf("CodeOf = %q, want CodeFrameTruncated (err=%v)", cerrors.CodeOf(err), err)
		}
		if cerrors.PhaseOf(err) != cerrors.PhaseDecode {
			t.Fatalf("PhaseOf = %q, want PhaseDecode", cerrors.PhaseOf(err))
		}
	})

	t.Run("peer killed", func(t *testing.T) {
		// A child claims its node, then its process dies (the connection
		// drops and the supervisor marks the node crashed). A subsequent
		// Deliver must fail fast with the peer-crashed code rather than
		// block waiting for a claim that will not come.
		n, hub := newHub(t)
		if err := hub.RegisterRemote("a"); err != nil {
			t.Fatal(err)
		}
		child := dialChild(t, "unix", hub.Addr(), "a")
		waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hub.WaitConnected(waitCtx, "a"); err != nil {
			t.Fatal(err)
		}
		child.conn.Close() // the SIGKILL analog: the socket dies abruptly
		<-child.done
		n.Crash("a")

		hub.mu.Lock()
		p := hub.peers["a"]
		hub.mu.Unlock()
		// The connection teardown races the Close above; give the hub's
		// reader a moment to detach before asserting.
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := p.Deliver(Message{From: "b", To: "a", Kind: "k"})
			if err == nil {
				if time.Now().After(deadline) {
					t.Fatal("Deliver kept succeeding after the peer died")
				}
				time.Sleep(time.Millisecond)
				continue
			}
			switch cerrors.CodeOf(err) {
			case cerrors.CodePeerCrashed:
			default:
				t.Fatalf("CodeOf = %q, want CodePeerCrashed (err=%v)", cerrors.CodeOf(err), err)
			}
			if cerrors.PhaseOf(err) != cerrors.PhaseDeliver {
				t.Fatalf("PhaseOf = %q, want PhaseDeliver", cerrors.PhaseOf(err))
			}
			break
		}
	})

	t.Run("protocol desync", func(t *testing.T) {
		// The hub never sends HELLO downstream; a child receiving one has
		// lost framing and must reject the stream as malformed instead of
		// silently dropping the frame (regression test for the Serve
		// default arm).
		client, server := net.Pipe()
		defer server.Close()
		c := &ChildConn{conn: client, name: "a", alive: make(map[string]bool)}
		done := make(chan error, 1)
		go func() {
			done <- c.Serve(func(Message) error { return nil }, nil)
		}()
		if _, err := server.Write(appendFrame(nil, frameHello, appendString(nil, "x"))); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Serve treated an unexpected frame as a clean close")
			}
			switch cerrors.CodeOf(err) {
			case cerrors.CodeFrameMalformed:
			default:
				t.Fatalf("CodeOf = %q, want CodeFrameMalformed (err=%v)", cerrors.CodeOf(err), err)
			}
			if cerrors.PhaseOf(err) != cerrors.PhaseDecode {
				t.Fatalf("PhaseOf = %q, want PhaseDecode", cerrors.PhaseOf(err))
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Serve did not reject the unexpected frame")
		}
	})
}
