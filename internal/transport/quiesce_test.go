package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crew/internal/metrics"
)

func TestHandleSend(t *testing.T) {
	col := metrics.NewCollector()
	n := NewNetwork(NetworkConfig{Collector: col})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	h, err := n.Handle("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(Message{From: "a", To: "b", Mechanism: metrics.Normal, Kind: "StepExecute"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, b); m.Kind != "StepExecute" {
		t.Errorf("message = %+v", m)
	}
	if col.Messages(metrics.Normal) != 1 {
		t.Errorf("handle send not counted: %d", col.Messages(metrics.Normal))
	}
	if _, err := n.Handle("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Handle(ghost) = %v, want ErrUnknownNode", err)
	}
}

func TestHandleAfterClose(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	n.MustRegister("b")
	h, err := n.Handle("b")
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := n.Handle("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Handle after Close = %v, want ErrClosed", err)
	}
	if err := h.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on handle after Close = %v, want ErrClosed", err)
	}
}

func TestQuiesceIdleAndAfterDrain(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	// Idle network quiesces immediately.
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatalf("idle Quiesce = %v", err)
	}

	const total = 50
	for i := 0; i < total; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Undelivered messages keep the network busy.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := n.Quiesce(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce with undelivered messages = %v, want deadline exceeded", err)
	}
	if n.InFlight() == 0 {
		t.Fatal("InFlight = 0 with undelivered messages")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			recvOne(t, b)
		}
	}()
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after drain = %v", err)
	}
	<-done
	if got := n.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d", got)
	}
}

func TestQuiesceManualAck(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")
	b.ManualAck()

	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Received but not acked: still in flight, Quiesce must not pass.
	if got := n.InFlight(); got != 1 {
		t.Fatalf("InFlight after receive = %d, want 1 (manual ack)", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := n.Quiesce(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce before Ack = %v, want deadline exceeded", err)
	}
	b.Ack()
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after Ack = %v", err)
	}
}

func TestQuiesceCrashedNodeStaysBusy(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	n.Crash("b")
	for i := 0; i < 3; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := n.Quiesce(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce with crashed receiver = %v, want deadline exceeded", err)
	}
	n.Recover("b")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			recvOne(t, b)
		}
	}()
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after recovery = %v", err)
	}
	<-done
}

func TestQuiesceReleasedByClose(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	n.MustRegister("a")
	n.MustRegister("b") // nobody reads b
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- n.Quiesce(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	n.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Quiesce released by Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce not released by Close")
	}
	if err := n.Quiesce(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Quiesce after Close = %v, want ErrClosed", err)
	}
}

// TestTraceDuringTraffic installs and removes the trace callback while
// senders are active: the callback must be captured atomically per message
// (no torn reads, every invocation sees a complete message).
func TestTraceDuringTraffic(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	const total = 2000
	var traced atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for i := 0; i < total; i++ {
			recvOne(t, b)
		}
	}()
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < total; i++ {
			if err := n.Send(Message{From: "a", To: "b", Kind: "StepExecute", Payload: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Flip the trace callback while traffic flows.
	for j := 0; j < 200; j++ {
		n.Trace(func(m Message) {
			if m.Kind != "StepExecute" {
				t.Errorf("trace saw torn message: %+v", m)
			}
			traced.Add(1)
		})
		n.Trace(nil)
	}
	<-sent
	<-drained
	t.Logf("traced %d of %d messages across 200 install/remove cycles", traced.Load(), total)
}

// TestCrashMidStreamPreservesFIFO crashes the receiver while a long stream is
// being delivered and checks that, across crash, queueing and recovery, the
// receiver still observes every message exactly once in send order (the pump
// requeues an interrupted batch at the front of the queue).
func TestCrashMidStreamPreservesFIFO(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	next := 0
	consume := func(k int) {
		for ; next < k; next++ {
			if m := recvOne(t, b); m.Payload.(int) != next {
				t.Fatalf("out of order across crash: got %v, want %d", m.Payload, next)
			}
		}
	}
	consume(100)
	n.Crash("b")
	// Drain at most the handful of messages the pump already committed to the
	// channel before observing the crash; then the stream must stall.
	for {
		select {
		case m := <-b.Inbox():
			if m.Payload.(int) != next {
				t.Fatalf("out of order during crash drain: got %v, want %d", m.Payload, next)
			}
			next++
		case <-time.After(50 * time.Millisecond):
			goto stalled
		}
	}
stalled:
	n.Recover("b")
	consume(total)
	wg.Wait()
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after crash/recover stream = %v", err)
	}
}
