package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"crew/internal/cerrors"
	"crew/internal/metrics"
)

// wirePayload / wirePtrPayload are the test payload types registered for the
// wire codec tests (value and pointer prototypes).
type wirePayload struct {
	A string
	B int
}

type wirePtrPayload struct {
	N int
}

func init() {
	RegisterPayload(wirePayload{}, &wirePtrPayload{}, 0)
}

func mustEncode(t *testing.T, m Message) []byte {
	t.Helper()
	body, err := appendMessage(nil, m)
	if err != nil {
		t.Fatalf("appendMessage: %v", err)
	}
	return body
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{From: "a", To: "b", Kind: "StepExecute", Mechanism: metrics.Normal, Payload: wirePayload{A: "x", B: 7}},
		{From: "a", To: "b", Kind: "Ptr", Mechanism: metrics.Coordination, Payload: &wirePtrPayload{N: 3}},
		{From: "", To: "b", Kind: "", Mechanism: metrics.Normal, Payload: nil},
		{From: "a", To: "b", Kind: "Int", Mechanism: metrics.Normal, Payload: 42},
	}
	for _, want := range cases {
		got, err := decodeMessage(mustEncode(t, want))
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.From != want.From || got.To != want.To || got.Kind != want.Kind || got.Mechanism != want.Mechanism {
			t.Errorf("header mismatch: got %+v want %+v", got, want)
		}
		switch p := want.Payload.(type) {
		case nil:
			if got.Payload != nil {
				t.Errorf("payload = %v, want nil", got.Payload)
			}
		case *wirePtrPayload:
			gp, ok := got.Payload.(*wirePtrPayload)
			if !ok || gp.N != p.N {
				t.Errorf("payload = %#v, want %#v", got.Payload, p)
			}
		default:
			if got.Payload != want.Payload {
				t.Errorf("payload = %#v, want %#v", got.Payload, want.Payload)
			}
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := NewEnvelope()
	for i := 0; i < 3; i++ {
		env.Msgs = append(env.Msgs, Message{From: "a", To: "b", Kind: "K", Payload: wirePayload{B: i}})
	}
	wrapper := Message{From: "a", To: "b", Kind: KindEnvelope, Payload: env}
	got, err := decodeMessage(mustEncode(t, wrapper))
	if err != nil {
		t.Fatal(err)
	}
	genv, ok := got.Payload.(*Envelope)
	if !ok || got.Kind != KindEnvelope {
		t.Fatalf("decoded wrapper = %+v", got)
	}
	if len(genv.Msgs) != 3 {
		t.Fatalf("decoded %d logical messages, want 3", len(genv.Msgs))
	}
	for i, m := range genv.Msgs {
		if m.Payload.(wirePayload).B != i {
			t.Errorf("logical message %d payload = %+v", i, m.Payload)
		}
	}
	genv.Release()
	env.Release()
}

func TestEncodeRejectsUnregisteredPayload(t *testing.T) {
	type secret struct{ X int }
	_, err := appendMessage(nil, Message{Payload: secret{}})
	if cerrors.CodeOf(err) != cerrors.CodeFrameMalformed {
		t.Fatalf("CodeOf = %q, want CodeFrameMalformed (err=%v)", cerrors.CodeOf(err), err)
	}
	if cerrors.PhaseOf(err) != cerrors.PhaseEncode {
		t.Fatalf("PhaseOf = %q, want PhaseEncode", cerrors.PhaseOf(err))
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := mustEncode(t, Message{From: "a", To: "b", Kind: "K", Payload: wirePayload{B: 1}})
	cases := []struct {
		name string
		body []byte
		want cerrors.Code
	}{
		{"empty body", nil, cerrors.CodeFrameTruncated},
		{"bad flag", []byte{9}, cerrors.CodeFrameMalformed},
		{"truncated string", []byte{0, 200}, cerrors.CodeFrameTruncated},
		{"trailing bytes", append(append([]byte{}, valid...), 0xFF), cerrors.CodeFrameMalformed},
		{"empty envelope", []byte{1, 0}, cerrors.CodeFrameMalformed},
		{"bad mechanism", func() []byte {
			b := []byte{0}
			b = appendString(b, "a")
			b = appendString(b, "b")
			b = appendString(b, "K")
			return append(b, 100) // mechanism 100 >= len(metrics.Mechanisms)
		}(), cerrors.CodeFrameMalformed},
		{"unknown payload type", func() []byte {
			b := []byte{0}
			b = appendString(b, "a")
			b = appendString(b, "b")
			b = appendString(b, "K")
			b = append(b, 0) // mechanism
			b = appendString(b, "nosuch.Type")
			return append(b, 0)
		}(), cerrors.CodeFrameMalformed},
		{"payload longer than body", func() []byte {
			b := []byte{0}
			b = appendString(b, "a")
			b = appendString(b, "b")
			b = appendString(b, "K")
			b = append(b, 0)
			b = appendString(b, "transport.wirePayload")
			return append(b, 200) // declares 200 payload bytes, none follow
		}(), cerrors.CodeFrameTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := decodeMessage(c.body)
			if err == nil {
				t.Fatal("decode accepted malformed body")
			}
			if got := cerrors.CodeOf(err); got != c.want {
				t.Errorf("CodeOf = %q, want %q (err=%v)", got, c.want, err)
			}
			if !errors.Is(err, cerrors.ErrWire) {
				t.Errorf("error not classified under ErrWire: %v", err)
			}
		})
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized length prefix is rejected before any allocation.
	over := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	_, _, _, err := readFrame(bytes.NewReader(over), nil)
	if cerrors.CodeOf(err) != cerrors.CodeFrameOversized {
		t.Errorf("oversized: CodeOf = %q (err=%v)", cerrors.CodeOf(err), err)
	}
	// Zero-length frame (no type byte) is malformed.
	zero := []byte{0, 0, 0, 0}
	_, _, _, err = readFrame(bytes.NewReader(zero), nil)
	if cerrors.CodeOf(err) != cerrors.CodeFrameMalformed {
		t.Errorf("zero length: CodeOf = %q (err=%v)", cerrors.CodeOf(err), err)
	}
	// A body shorter than declared is truncated.
	trunc := appendFrame(nil, frameMsg, []byte("abc"))[:6]
	_, _, _, err = readFrame(bytes.NewReader(trunc), nil)
	if cerrors.CodeOf(err) != cerrors.CodeFrameTruncated {
		t.Errorf("truncated: CodeOf = %q (err=%v)", cerrors.CodeOf(err), err)
	}
	// Clean close at a frame boundary is bare io.EOF, not a wire error.
	_, _, _, err = readFrame(bytes.NewReader(nil), nil)
	if err != io.EOF {
		t.Errorf("clean EOF: err = %v, want io.EOF", err)
	}
	// And a valid frame round-trips through appendFrame/readFrame.
	framed := appendFrame(nil, frameHello, []byte("node-1"))
	typ, body, _, err := readFrame(bytes.NewReader(framed), nil)
	if err != nil || typ != frameHello || string(body) != "node-1" {
		t.Errorf("round trip: typ=%d body=%q err=%v", typ, body, err)
	}
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(mustEncodeFuzz(Message{From: "a", To: "b", Kind: "K", Payload: wirePayload{A: "x", B: 1}}))
	f.Add(mustEncodeFuzz(Message{From: "a", To: "b", Kind: "Nil"}))
	env := NewEnvelope()
	env.Msgs = append(env.Msgs, Message{From: "a", To: "b", Kind: "E1"}, Message{From: "a", To: "b", Kind: "E2", Payload: &wirePtrPayload{N: 9}})
	f.Add(mustEncodeFuzz(Message{From: "a", To: "b", Kind: KindEnvelope, Payload: env}))
	env.Release()
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := decodeMessage(body)
		if err != nil {
			// Every rejection must be a classified wire error.
			if !errors.Is(err, cerrors.ErrWire) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		// Whatever decodes must re-encode and decode to the same bytes-level
		// message (encode is canonical, so enc(dec(b)) is a fixed point).
		re, err := appendMessage(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		m2, err := decodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := appendMessage(nil, m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding not stable:\n first=%x\nsecond=%x", re, re2)
		}
		if env, ok := m.Payload.(*Envelope); ok {
			env.Release()
		}
		if env, ok := m2.Payload.(*Envelope); ok {
			env.Release()
		}
	})
}

func mustEncodeFuzz(m Message) []byte {
	body, err := appendMessage(nil, m)
	if err != nil {
		panic(err)
	}
	return body
}
