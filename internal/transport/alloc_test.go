package transport

import (
	"sync/atomic"
	"testing"
)

// Per-message allocation budgets for the send hot path. The budgets are
// deliberately loose (slice growth in the destination queue amortizes to well
// under one allocation per send, pool misses after a GC cost one envelope) so
// the guard only trips on a real regression — e.g. a Message escaping to the
// heap again, or envelopes no longer being pooled.
const (
	sendAllocBudget  = 2.0 // allocs per plain Handle.Send
	batchAllocBudget = 1.0 // allocs per logical message through Batcher+SendBatch
)

// drain consumes rx's inbox on a goroutine, releasing envelopes (the
// receiver's side of the pooling contract) and counting logical messages.
func drain(ep *Endpoint, logical *atomic.Int64) {
	go func() {
		for m := range ep.Inbox() {
			if env, ok := m.Payload.(*Envelope); ok {
				logical.Add(int64(len(env.Msgs)))
				env.Release()
			} else {
				logical.Add(1)
			}
		}
	}()
}

// TestSendAllocBudget guards the plain per-message send path: a steady-state
// Handle.Send must stay within sendAllocBudget allocations.
func TestSendAllocBudget(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	defer net.Close()
	ep := net.MustRegister("rx")
	var logical atomic.Int64
	drain(ep, &logical)
	h, err := net.Handle("rx")
	if err != nil {
		t.Fatal(err)
	}
	m := Message{From: "tx", To: "rx", Kind: "Ping"}
	// Warm up the queue/batch buffers before measuring.
	for i := 0; i < 64; i++ {
		if err := h.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := h.Send(m); err != nil {
			t.Error(err)
		}
	})
	if avg > sendAllocBudget {
		t.Errorf("Handle.Send allocates %.2f/op, budget %.1f", avg, sendAllocBudget)
	}
}

// TestEnvelopeBatchAllocBudget guards the batched path: adding a burst to a
// Batcher and flushing it must stay within batchAllocBudget allocations per
// logical message (the envelope comes from the pool, the batcher's buffers
// are reused across turns, and the whole burst is one physical delivery).
func TestEnvelopeBatchAllocBudget(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	defer net.Close()
	ep := net.MustRegister("rx")
	var logical atomic.Int64
	drain(ep, &logical)
	h, err := net.Handle("rx")
	if err != nil {
		t.Fatal(err)
	}
	m := Message{From: "tx", To: "rx", Kind: "Ping"}
	var b Batcher
	const burst = 8
	// Warm up: grows the envelope Msgs capacity the pool will recycle.
	for i := 0; i < 4; i++ {
		for j := 0; j < burst; j++ {
			b.Add(h, m)
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		for j := 0; j < burst; j++ {
			b.Add(h, m)
		}
		if err := b.Flush(); err != nil {
			t.Error(err)
		}
	})
	perMsg := avg / burst
	if perMsg > batchAllocBudget {
		t.Errorf("batched send allocates %.2f/logical message (%.1f/burst), budget %.1f", perMsg, avg, batchAllocBudget)
	}
}

// TestFrameEncodeAllocBudget guards the frame encoders the hotalloc analyzer
// gates (//crew:hotpath on appendFrame/appendString): encoding into a warm
// scratch buffer — the shape every writer uses via scratch[:0] — must not
// allocate.
func TestFrameEncodeAllocBudget(t *testing.T) {
	body := []byte("payload-bytes")
	buf := appendString(appendFrame(nil, frameMsg, body), "node-name") // warm capacity
	avg := testing.AllocsPerRun(500, func() {
		buf = appendFrame(buf[:0], frameMsg, body)
		buf = appendString(buf, "node-name")
	})
	if avg > 0 {
		t.Errorf("frame encode allocates %.2f/op into a warm buffer, budget 0", avg)
	}
}
