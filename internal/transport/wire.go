package transport

import "crew/internal/metrics"

// Wire is the pluggable byte-transport backend behind a Network. The Network
// keeps every engine-facing guarantee in its backend-agnostic front half —
// logical message counting and load charging, FaultPolicy consultation,
// Quiesce/in-flight accounting, per-receiver FIFO, crash parking and replay,
// batched envelopes — and hands a backend exactly one job: carry one ordered
// stream of framed messages per node from the Network's pump to that node's
// endpoint.
//
// The contract, per node:
//
//   - Listen binds the receive side for a node and returns the Link the
//     Network delivers through. The sink passed to Listen is invoked with
//     each decoded message, in frame order, on the backend's receive side.
//   - Deliver(m) carries one physical message (which may be a batched
//     *Envelope) across the backend and does not return success until the
//     sink call for that frame has returned. This synchronous handoff is what
//     lets the front half keep park/replay atomicity: a crash observed by the
//     pump is always at a frame boundary, never mid-socket, so no message can
//     be half-delivered to a down node or reordered around a recovery.
//   - Close tears the backend down and does not return until every
//     outstanding sink invocation has returned.
//
// The in-process backend is the nil Wire: with NetworkConfig.Wire unset the
// pump hands messages straight to the endpoint channel, byte-identical to the
// pre-Wire transport (same counts, same allocation profile).
type Wire interface {
	// Listen binds the wire's receive side for the named node. Inbound
	// frames addressed to the node are decoded and handed to sink in order.
	Listen(node string, sink Sink) (Link, error)
	// Close shuts the backend down, releasing sockets and joining reader
	// goroutines. It must be safe to call concurrently with Deliver.
	Close() error
}

// Sink consumes one decoded inbound message on the backend's receive side.
// The Network's sink blocks until the destination endpoint accepts the
// message (or the node stops), so a backend must treat a slow sink as
// backpressure, not an error.
type Sink func(m Message) error

// Link is the Network's send side to one node over a Wire backend.
type Link interface {
	// Deliver carries one physical message to the node and returns after the
	// node's sink has consumed it (see the Wire contract). A delivered
	// envelope's ownership passes to the backend: it releases the pooled
	// *Envelope after a successful round trip and leaves it intact on error
	// so the pump can replay it.
	Deliver(m Message) error
	// Close releases the link's resources.
	Close() error
}

// NetworkConfig parameterizes a Network.
type NetworkConfig struct {
	// Collector receives physical message counts (nil disables counting).
	Collector *metrics.Collector
	// Wire selects the byte-transport backend. Nil is the in-process
	// backend: direct channel handoff with no serialization, the default and
	// fastest path. A non-nil Wire (NewSocketWire) carries every delivered
	// message through the backend as a length-prefixed binary frame.
	Wire Wire
}

// NewNetwork returns an empty network. This is the only construction entry
// point that selects a wire backend; New is the deprecated in-process-only
// shorthand.
func NewNetwork(cfg NetworkConfig) *Network {
	n := &Network{collector: cfg.Collector, wire: cfg.Wire, closedCh: make(chan struct{})}
	empty := make(map[string]*node)
	n.nodes.Store(&empty)
	return n
}
