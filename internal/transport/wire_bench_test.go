package transport

import (
	"context"
	"sort"
	"testing"
	"time"

	"crew/internal/metrics"
)

// benchMessage is a representative workflow-item message: short strings, a
// registered payload, the shape the distributed architecture sends per step.
func benchMessage() Message {
	return Message{
		From: "agent1", To: "agent2", Kind: "StepExecute",
		Mechanism: metrics.Coordination,
		Payload:   wirePayload{A: "ProcessOrder.Reserve", B: 42},
	}
}

// BenchmarkFrameEncode measures the serialization cost of one message —
// what every socket-backend send pays over the in-process path.
func BenchmarkFrameEncode(b *testing.B) {
	m := benchMessage()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendMessage(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkFrameDecode measures the deserialization cost of one message.
func BenchmarkFrameDecode(b *testing.B) {
	buf, err := appendMessage(nil, benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures one-message send-to-receive latency on each
// backend and reports its distribution (p50/p99) alongside the mean: the
// socket backends pay a serialization plus syscall premium that a mean alone
// hides in the tail.
func BenchmarkWireRoundTrip(b *testing.B) {
	backends := []struct {
		name string
		mk   func(b *testing.B) Wire
	}{
		{"inproc", func(b *testing.B) Wire { return nil }},
		{"unix", func(b *testing.B) Wire {
			w, err := NewSocketWire("unix", "")
			if err != nil {
				b.Fatal(err)
			}
			return w
		}},
		{"tcp", func(b *testing.B) Wire {
			w, err := NewSocketWire("tcp", "")
			if err != nil {
				b.Fatal(err)
			}
			return w
		}},
	}
	for _, bk := range backends {
		b.Run(bk.name, func(b *testing.B) {
			n := NewNetwork(NetworkConfig{Collector: metrics.NewCollector(), Wire: bk.mk(b)})
			defer n.Close()
			n.MustRegister("agent1")
			ep := n.MustRegister("agent2")
			m := benchMessage()
			ctx := context.Background()
			samples := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if err := n.Send(m); err != nil {
					b.Fatal(err)
				}
				<-ep.Inbox()
				samples = append(samples, time.Since(start))
			}
			b.StopTimer()
			if err := n.Quiesce(ctx); err != nil {
				b.Fatal(err)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if len(samples) > 0 {
				b.ReportMetric(float64(samples[len(samples)/2]), "p50-ns")
				b.ReportMetric(float64(samples[len(samples)*99/100]), "p99-ns")
			}
		})
	}
}
