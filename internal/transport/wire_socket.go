package transport

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"crew/internal/cerrors"
)

// SocketWire is a Wire backend over real kernel sockets: "unix" (unix-domain
// stream sockets) or "tcp" (loopback TCP). One listener serves the whole
// network; each node's Link is a dedicated connection to it, identified by a
// hello frame, so the per-node frame stream keeps the FIFO order the
// transport contract requires. Every delivered message pays genuine
// serialization (the length-prefixed binary frame codec in frame.go) and a
// kernel round trip, which is what the wire-mode benchmarks measure.
//
// Deliver is synchronous per the Wire contract: the frame is written, the
// listener-side reader decodes it and runs the node's sink, and a one-byte
// ack frame travels back before Deliver returns. At most one frame per node
// is ever inside the socket, so a crash observed by the Network's pump is
// always at a frame boundary and park/replay semantics are byte-identical to
// the in-process backend.
type SocketWire struct {
	network string // "unix" or "tcp"
	addr    string
	ln      net.Listener
	tmpDir  string // owned temp dir for an auto-generated unix socket path

	mu     sync.Mutex
	sinks  map[string]Sink
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewSocketWire binds a socket backend. network is "unix" or "tcp"; an empty
// addr picks a fresh socket path (unix) or a loopback port (tcp).
func NewSocketWire(network, addr string) (*SocketWire, error) {
	w := &SocketWire{
		network: network,
		sinks:   make(map[string]Sink),
		conns:   make(map[net.Conn]struct{}),
	}
	switch network {
	case "unix":
		if addr == "" {
			dir, err := os.MkdirTemp("", "crewwire")
			if err != nil {
				return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseListen, cerrors.ErrWire, err, "unix socket dir")
			}
			w.tmpDir = dir
			addr = filepath.Join(dir, "w.sock")
		}
	case "tcp":
		if addr == "" {
			addr = "127.0.0.1:0"
		}
	default:
		return nil, cerrors.E(cerrors.CodeInvalidConfig, cerrors.PhaseConfig, cerrors.ErrInvalidConfig, nil, "socket wire network %q (want unix or tcp)", network)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		w.cleanup()
		return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseListen, cerrors.ErrWire, err, "%s %s", network, addr)
	}
	w.ln = ln
	w.addr = ln.Addr().String()
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the backend's bound listen address.
func (w *SocketWire) Addr() string { return w.addr }

// Listen implements Wire: it registers the node's sink and dials the node's
// dedicated delivery connection.
func (w *SocketWire) Listen(node string, sink Sink) (Link, error) {
	if w.closed.Load() {
		return nil, ErrClosed
	}
	w.mu.Lock()
	if _, dup := w.sinks[node]; dup {
		w.mu.Unlock()
		return nil, fmt.Errorf("transport: socket wire: node %q already listening", node)
	}
	w.sinks[node] = sink
	w.mu.Unlock()

	conn, err := net.Dial(w.network, w.addr)
	if err != nil {
		w.mu.Lock()
		delete(w.sinks, node)
		w.mu.Unlock()
		return nil, cerrors.E(cerrors.CodeDialRefused, cerrors.PhaseDial, cerrors.ErrWire, err, "node %q via %s %s", node, w.network, w.addr)
	}
	w.track(conn)
	l := &socketLink{w: w, node: node, conn: conn, br: bufio.NewReader(conn)}
	if err := l.writeFrame(frameHello, []byte(node)); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

func (w *SocketWire) track(conn net.Conn) {
	w.mu.Lock()
	w.conns[conn] = struct{}{}
	w.mu.Unlock()
}

func (w *SocketWire) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

func (w *SocketWire) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.track(conn)
		w.wg.Add(1)
		go w.serve(conn)
	}
}

// serve drains one delivery connection: a hello naming the destination node,
// then message frames, each answered with an ack after the node's sink
// consumed it.
func (w *SocketWire) serve(conn net.Conn) {
	defer w.wg.Done()
	defer w.untrack(conn)
	defer conn.Close()
	br := bufio.NewReader(conn)
	typ, body, buf, err := readFrame(br, nil)
	if err != nil || typ != frameHello {
		return
	}
	w.mu.Lock()
	sink := w.sinks[string(body)]
	w.mu.Unlock()
	if sink == nil {
		return // CodeUnclaimedNode: no node by that name listens here
	}
	ack := appendFrame(nil, frameAck, nil)
	for {
		typ, body, buf, err = readFrame(br, buf)
		if err != nil || typ != frameMsg {
			return
		}
		m, err := decodeMessage(body)
		if err != nil {
			return
		}
		if sink(m) != nil {
			return // node stopping
		}
		if _, err := conn.Write(ack); err != nil {
			return
		}
	}
}

// Close implements Wire: it closes the listener and every connection, joins
// the reader goroutines (so no sink invocation is outstanding on return) and
// removes an auto-generated unix socket directory.
func (w *SocketWire) Close() error {
	if w.closed.Swap(true) {
		return nil
	}
	w.ln.Close()
	w.mu.Lock()
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	w.cleanup()
	return nil
}

func (w *SocketWire) cleanup() {
	if w.tmpDir != "" {
		os.RemoveAll(w.tmpDir)
	}
}

// socketLink is the per-node send side: one connection, one in-flight frame.
type socketLink struct {
	w    *SocketWire
	node string
	conn net.Conn
	br   *bufio.Reader

	mu      sync.Mutex
	scratch []byte
	rbuf    []byte
}

func (l *socketLink) writeFrame(typ byte, body []byte) error {
	buf := appendFrame(l.scratch[:0], typ, body)
	l.scratch = buf[:0]
	if _, err := l.conn.Write(buf); err != nil {
		return l.failure(err, "write")
	}
	return nil
}

func (l *socketLink) failure(err error, op string) error {
	if l.w.closed.Load() {
		return ErrClosed
	}
	return cerrors.E(cerrors.CodePeerCrashed, cerrors.PhaseDeliver, cerrors.ErrWire, err, "%s to node %q", op, l.node)
}

// Deliver implements Link: encode, write, await the ack that the sink
// consumed the frame. On success a batched envelope's ownership has passed to
// the receive side (which got a fresh pooled copy), so the original is
// released here; on error it is left intact for the pump to replay.
func (l *socketLink) Deliver(m Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Encode straight behind a reserved frame header, then fill it in.
	framed := append(l.scratch[:0], 0, 0, 0, 0, frameMsg)
	framed, err := appendMessage(framed, m)
	if err != nil {
		l.scratch = framed[:0]
		return err
	}
	n := len(framed) - 4 // length covers the type byte and body
	framed[0], framed[1], framed[2], framed[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	l.scratch = framed[:0]
	if _, err := l.conn.Write(framed); err != nil {
		return l.failure(err, "write")
	}
	typ, _, rbuf, err := readFrame(l.br, l.rbuf)
	l.rbuf = rbuf
	if err != nil {
		return l.failure(err, "ack read")
	}
	if typ != frameAck {
		return cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDeliver, cerrors.ErrWire, nil, "node %q answered frame type %d, want ack", l.node, typ)
	}
	if env, ok := m.Payload.(*Envelope); ok && m.Kind == KindEnvelope {
		env.Release()
	}
	return nil
}

// Close implements Link.
func (l *socketLink) Close() error {
	l.w.untrack(l.conn)
	return l.conn.Close()
}
