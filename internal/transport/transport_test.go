package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"crew/internal/metrics"
)

func recvOne(t *testing.T, ep *Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestSendDeliver(t *testing.T) {
	col := metrics.NewCollector()
	n := NewNetwork(NetworkConfig{Collector: col})
	defer n.Close()
	a := n.MustRegister("a")
	_ = a
	b := n.MustRegister("b")

	err := n.Send(Message{From: "a", To: "b", Mechanism: metrics.Normal, Kind: "StepExecute", Payload: 42})
	if err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if m.From != "a" || m.Kind != "StepExecute" || m.Payload.(int) != 42 {
		t.Errorf("message = %+v", m)
	}
	if col.Messages(metrics.Normal) != 1 {
		t.Errorf("message not counted: %d", col.Messages(metrics.Normal))
	}
}

func TestFIFOPerReceiver(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	b := n.MustRegister("b")
	n.MustRegister("a")
	for i := 0; i < 100; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if m := recvOne(t, b); m.Payload.(int) != i {
			t.Fatalf("out of order: got %v at %d", m.Payload, i)
		}
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	err := n.Send(Message{From: "a", To: "ghost"})
	if !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestDuplicateRegister(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	if _, err := n.Register("a"); err == nil {
		t.Error("duplicate register should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on duplicate")
		}
	}()
	n.MustRegister("a")
}

func TestCrashQueuesAndRecoverDelivers(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")

	if !n.Crash("b") {
		t.Fatal("Crash returned false")
	}
	if n.Alive("b") {
		t.Error("crashed node reported alive")
	}
	for i := 0; i < 3; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is delivered while down.
	select {
	case m := <-b.Inbox():
		t.Fatalf("delivered while down: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	if q := n.QueuedFor("b"); q != 3 {
		t.Errorf("QueuedFor = %d, want 3", q)
	}

	if !n.Recover("b") {
		t.Fatal("Recover returned false")
	}
	for i := 0; i < 3; i++ {
		if m := recvOne(t, b); m.Payload.(int) != i {
			t.Fatalf("recovered delivery out of order: %v at %d", m.Payload, i)
		}
	}
	if !n.Alive("b") {
		t.Error("recovered node reported dead")
	}
}

func TestCrashUnknown(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	if n.Crash("ghost") || n.Recover("ghost") || n.Alive("ghost") {
		t.Error("operations on unknown node should be false")
	}
	if n.QueuedFor("ghost") != 0 {
		t.Error("QueuedFor unknown node should be 0")
	}
}

func TestNodes(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("z")
	n.MustRegister("a")
	got := n.Nodes()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("Nodes = %v", got)
	}
}

func TestCloseClosesInboxes(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a := n.MustRegister("a")
	n.Close()
	select {
	case _, ok := <-a.Inbox():
		if ok {
			t.Error("expected closed inbox")
		}
	case <-time.After(time.Second):
		t.Error("inbox not closed")
	}
	if err := n.Send(Message{From: "a", To: "a"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v", err)
	}
	if _, err := n.Register("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close = %v", err)
	}
	n.Close() // idempotent
}

func TestTrace(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	b := n.MustRegister("b")
	var mu sync.Mutex
	var kinds []string
	n.Trace(func(m Message) {
		mu.Lock()
		kinds = append(kinds, m.Kind)
		mu.Unlock()
	})
	n.Send(Message{From: "a", To: "b", Kind: "AddRule"})
	n.Send(Message{From: "a", To: "b", Kind: "AddEvent"})
	recvOne(t, b)
	recvOne(t, b)
	mu.Lock()
	defer mu.Unlock()
	if len(kinds) != 2 || kinds[0] != "AddRule" || kinds[1] != "AddEvent" {
		t.Errorf("trace = %v", kinds)
	}
}

func TestSendNeverBlocks(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	n.MustRegister("a")
	n.MustRegister("b") // nobody reads b's inbox
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			if err := n.Send(Message{From: "a", To: "b", Payload: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked with unread inbox")
	}
}

func TestConcurrentSendersCountExactly(t *testing.T) {
	col := metrics.NewCollector()
	n := NewNetwork(NetworkConfig{Collector: col})
	defer n.Close()
	b := n.MustRegister("b")
	const senders, per = 8, 100
	for i := 0; i < senders; i++ {
		name := string(rune('c' + i))
		n.MustRegister(name)
		go func(from string) {
			for j := 0; j < per; j++ {
				n.Send(Message{From: from, To: "b", Mechanism: metrics.Coordination})
			}
		}(name)
	}
	for i := 0; i < senders*per; i++ {
		recvOne(t, b)
	}
	if got := col.Messages(metrics.Coordination); got != senders*per {
		t.Errorf("counted %d messages, want %d", got, senders*per)
	}
}
