package transport

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"reflect"
	"sync"

	"crew/internal/cerrors"
	"crew/internal/metrics"
)

// The wire frame format shared by every socket backend and the multi-process
// hub protocol. A frame is:
//
//	[4-byte big-endian length n][1-byte type][n-1 body bytes]
//
// The length covers the type byte and body. Frames above MaxFrame are
// rejected before any allocation, protecting receivers from corrupt or
// hostile length prefixes. All failures are classified through
// cerrors (CodeFrameTruncated / CodeFrameMalformed / CodeFrameOversized), so
// callers switch on cerrors.CodeOf and never string-match.
//
// A message frame body is:
//
//	[1-byte envelope flag][count uvarint, envelopes only][message...]
//
// and each message is:
//
//	[from][to][kind]            uvarint-length-prefixed strings
//	[mechanism uvarint]
//	[payload type name string]  "" for a nil payload
//	[payload length uvarint][payload JSON bytes]
//
// Payload types must be pre-registered with RegisterPayload: the type name
// is the wire tag, and decoding produces the same concrete type the sender
// passed, so receiver type-switches work unchanged across a socket.

// MaxFrame is the hard ceiling on one frame's length (type byte + body).
const MaxFrame = 8 << 20

// Frame types. The loopback socket backend uses Msg/Hello/Ack; the
// multi-process hub protocol additionally uses Welcome (peer roster),
// Crash/Recover (liveness announcements) and Exec (program-execution events
// feeding the cross-process coordination-invariant checker).
const (
	frameMsg byte = iota + 1
	frameHello
	frameWelcome
	frameAck
	frameCrash
	frameRecover
	frameExec
)

// appendFrame appends one complete frame to dst.
//
//crew:hotpath
func appendFrame(dst []byte, typ byte, body []byte) []byte {
	n := len(body) + 1
	dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	dst = append(dst, typ)
	return append(dst, body...)
}

// readFrame reads one frame, reusing buf when it is large enough. io.EOF is
// returned bare for a clean close at a frame boundary; every other failure is
// a classified wire error.
func readFrame(r io.Reader, buf []byte) (typ byte, body, nextBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, err, "frame header")
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return 0, nil, buf, cerrors.E(cerrors.CodeFrameOversized, cerrors.PhaseDecode, cerrors.ErrWire, nil, "frame length %d exceeds limit %d", n, MaxFrame)
	}
	if n < 1 {
		return 0, nil, buf, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "frame length %d", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, err, "frame body (%d bytes)", n)
	}
	return buf[0], buf[1:], buf, nil
}

//crew:hotpath
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, nil, "string header")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, nil, "uvarint")
	}
	return n, b[w:], nil
}

// appendMessage appends a message-frame body (no frame header) to dst. A
// batched envelope is flattened into its logical messages behind the
// envelope flag; the receive side rebuilds a pooled *Envelope, so park/replay
// and per-logical-message counting behave identically across the wire.
func appendMessage(dst []byte, m Message) ([]byte, error) {
	if env, ok := m.Payload.(*Envelope); ok && m.Kind == KindEnvelope {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(env.Msgs)))
		var err error
		for i := range env.Msgs {
			if dst, err = appendOne(dst, env.Msgs[i]); err != nil {
				return nil, err
			}
		}
		return dst, nil
	}
	dst = append(dst, 0)
	return appendOne(dst, m)
}

func appendOne(dst []byte, m Message) ([]byte, error) {
	dst = appendString(dst, m.From)
	dst = appendString(dst, m.To)
	dst = appendString(dst, m.Kind)
	dst = binary.AppendUvarint(dst, uint64(m.Mechanism))
	if m.Payload == nil {
		return appendString(dst, ""), nil
	}
	name, ok := payloadNameOf(m.Payload)
	if !ok {
		return nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseEncode, cerrors.ErrWire, nil, "unregistered payload type %T (missing transport.RegisterPayload)", m.Payload)
	}
	dst = appendString(dst, name)
	b, err := json.Marshal(m.Payload)
	if err != nil {
		return nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseEncode, cerrors.ErrWire, err, "payload %s", name)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...), nil
}

// decodeMessage parses a message-frame body. An envelope body yields a
// wrapper message carrying a fresh pooled *Envelope (the consumer releases
// it, exactly as on the in-process path).
func decodeMessage(body []byte) (Message, error) {
	if len(body) < 1 {
		return Message{}, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, nil, "empty message body")
	}
	flag, rest := body[0], body[1:]
	switch flag {
	case 0:
		m, rest, err := decodeOne(rest)
		if err != nil {
			return Message{}, err
		}
		if len(rest) != 0 {
			return Message{}, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "%d trailing bytes", len(rest))
		}
		return m, nil
	case 1:
		count, rest, err := readUvarint(rest)
		if err != nil {
			return Message{}, err
		}
		if count == 0 {
			return Message{}, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "empty envelope")
		}
		env := NewEnvelope()
		for i := uint64(0); i < count; i++ {
			var m Message
			if m, rest, err = decodeOne(rest); err != nil {
				env.Release()
				return Message{}, err
			}
			env.Msgs = append(env.Msgs, m)
		}
		if len(rest) != 0 {
			env.Release()
			return Message{}, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "%d trailing bytes", len(rest))
		}
		first := env.Msgs[0]
		return Message{From: first.From, To: first.To, Mechanism: first.Mechanism, Kind: KindEnvelope, Payload: env}, nil
	default:
		return Message{}, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "envelope flag %d", flag)
	}
}

func decodeOne(b []byte) (Message, []byte, error) {
	var m Message
	var err error
	if m.From, b, err = readString(b); err != nil {
		return m, nil, err
	}
	if m.To, b, err = readString(b); err != nil {
		return m, nil, err
	}
	if m.Kind, b, err = readString(b); err != nil {
		return m, nil, err
	}
	mech, b, err := readUvarint(b)
	if err != nil {
		return m, nil, err
	}
	if mech >= uint64(len(metrics.Mechanisms)) {
		return m, nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "mechanism %d", mech)
	}
	m.Mechanism = metrics.Mechanism(mech)
	name, b, err := readString(b)
	if err != nil {
		return m, nil, err
	}
	if name == "" {
		return m, b, nil
	}
	plen, b, err := readUvarint(b)
	if err != nil {
		return m, nil, err
	}
	if plen > uint64(len(b)) {
		return m, nil, cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, nil, "payload %s: %d bytes declared, %d available", name, plen, len(b))
	}
	if m.Payload, err = decodePayload(name, b[:plen]); err != nil {
		return m, nil, err
	}
	return m, b[plen:], nil
}

// ---------------------------------------------------------------------------
// Payload registry

var payloadReg = struct {
	mu     sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// RegisterPayload registers prototype payload values so wire backends can
// carry Message.Payload across a socket. The wire tag is the reflect type
// string (e.g. "distributed.workflowStart"); decoding yields the same
// concrete type the sender passed (a value for a value prototype, a pointer
// for a pointer prototype), so receiver type-switches work unchanged.
// Registration is idempotent; registering two different types under one name
// panics (an init-time bug, never a runtime condition). Packages that send
// through the transport register their payload types in an init function.
func RegisterPayload(prototypes ...any) {
	payloadReg.mu.Lock()
	defer payloadReg.mu.Unlock()
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		if t == nil {
			panic("transport: RegisterPayload(nil)")
		}
		name := t.String()
		if prev, ok := payloadReg.byName[name]; ok {
			if prev != t {
				panic("transport: payload name collision: " + name)
			}
			continue
		}
		payloadReg.byName[name] = t
		payloadReg.byType[t] = name
	}
}

func payloadNameOf(p any) (string, bool) {
	payloadReg.mu.RLock()
	name, ok := payloadReg.byType[reflect.TypeOf(p)]
	payloadReg.mu.RUnlock()
	return name, ok
}

func decodePayload(name string, data []byte) (any, error) {
	payloadReg.mu.RLock()
	t, ok := payloadReg.byName[name]
	payloadReg.mu.RUnlock()
	if !ok {
		return nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, nil, "unknown payload type %q", name)
	}
	if t.Kind() == reflect.Pointer {
		pv := reflect.New(t.Elem())
		if err := json.Unmarshal(data, pv.Interface()); err != nil {
			return nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, err, "payload %s", name)
		}
		return pv.Interface(), nil
	}
	pv := reflect.New(t)
	if err := json.Unmarshal(data, pv.Interface()); err != nil {
		return nil, cerrors.E(cerrors.CodeFrameMalformed, cerrors.PhaseDecode, cerrors.ErrWire, err, "payload %s", name)
	}
	return pv.Elem().Interface(), nil
}
