package mproc

import (
	"context"
	"fmt"

	"crew/internal/distributed"
	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/store"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// RunChild is an agent process's main loop: dial the hub, claim the node,
// rebuild replicas from the (surviving) WFDB file, then process deliveries
// until the hub connection dies. The caller resolves the library and
// programs — both sides of the process boundary must derive them from the
// same recipe (cfg.ResolveWorkload for parameter-driven deployments, a
// compiled LAWS source for crewrun).
//
// Everything the agent emits goes back through the hub: the local Network
// registers every peer (and the notify node) as a manual-ack forwarding
// proxy whose consumer writes the message as a MSG frame and only then acks
// it. That write-before-ack order is the quiescence contract: when the local
// network reports idle after a delivery, every follow-up frame is already on
// the connection ahead of the delivery's ACK, so the hub's in-flight
// accounting never observes a gap. Local message counts are discarded — the
// hub charges every message once, authoritatively.
func RunChild(cfg *ChildConfig, lib *model.Library, programs *model.Registry) error {
	if cfg == nil {
		return fmt.Errorf("mproc: RunChild needs a config")
	}
	conn, err := transport.DialHub(cfg.Network, cfg.Addr, cfg.Name)
	if err != nil {
		return err
	}
	defer conn.Close()

	var db *wfdb.DB
	if cfg.DBPath != "" {
		st, err := store.Open(cfg.DBPath)
		if err != nil {
			return fmt.Errorf("mproc: open agent db: %w", err)
		}
		defer st.Close()
		db = wfdb.New(st)
	} else {
		db = wfdb.NewMemory()
	}

	net := transport.NewNetwork(transport.NetworkConfig{})
	peers := append([]string(nil), cfg.Agents...)
	if cfg.Notify != "" {
		peers = append(peers, cfg.Notify)
	}
	for _, peer := range peers {
		if peer == cfg.Name {
			continue
		}
		ep, err := net.Register(peer)
		if err != nil {
			net.Close()
			return err
		}
		ep.ManualAck()
		go forward(conn, ep)
	}

	agent, err := distributed.NewAgent(distributed.Config{
		Name:          cfg.Name,
		Library:       lib,
		Agents:        cfg.Agents,
		Programs:      reportExec(conn, programs),
		AGDB:          db,
		DisableOCR:    cfg.DisableOCR,
		PurgeOnCommit: cfg.PurgeOnCommit,
		Alive:         conn.Alive,
	}, net)
	if err != nil {
		net.Close()
		return err
	}

	// Rebuild before serving: recovered replicas re-announce terminal
	// summaries and resume from checkpoints, and only then does the hub's
	// replay of unacked deliveries (already queued on the connection) start
	// flowing — redelivered duplicates meet a fully restored state.
	if err := agent.RecoverReplicas(cfg.Notify); err != nil {
		net.Close()
		agent.Stop()
		return fmt.Errorf("mproc: recover replicas: %w", err)
	}

	serveErr := conn.Serve(func(m transport.Message) error {
		//crew:nocharge hub delivery is already charged; this re-injects it locally
		if err := net.Send(m); err != nil {
			return err
		}
		// Idle means the agent finished the turn and every proxy flushed
		// and acked — the automatic ACK that follows is truthful.
		return net.Quiesce(context.Background())
	}, nil)
	net.Close()
	agent.Stop()
	return serveErr
}

// forward drains one proxy endpoint onto the hub connection. Envelopes are
// flattened on the wire (the hub re-counts each logical message) and
// released here; the ack after the write is what keeps local quiescence
// aligned with the connection's FIFO. A dead connection still drains and
// acks — the child is exiting via Serve's error, and a wedged proxy would
// hang the agent's flush instead.
func forward(conn *transport.ChildConn, ep *transport.Endpoint) {
	for m := range ep.Inbox() {
		//crew:nocharge forwards a message the agent already charged; the hub re-counts it
		conn.SendMessage(m)
		if env, ok := m.Payload.(*transport.Envelope); ok && m.Kind == transport.KindEnvelope {
			env.Release()
		}
		ep.Ack()
	}
}

// reportExec wraps every program to report its execution window to the hub
// as EXEC frames, feeding the cross-process coordination checker. The frame
// precedes the program's outcome messages on the same connection, so the
// hub observes enter/exit in a causally consistent order with the
// coordination traffic they race against.
func reportExec(conn *transport.ChildConn, reg *model.Registry) *model.Registry {
	out := model.NewRegistry()
	for _, name := range reg.Names() {
		inner, _ := reg.Lookup(name)
		out.Register(name, func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
			executing := ctx.Mode == model.ModeExecute || ctx.Mode == model.ModeIncremental
			if executing {
				conn.Exec(transport.ExecEvent{Phase: transport.ExecEnter,
					Workflow: ctx.Workflow, Step: string(ctx.Step), Instance: ctx.Instance})
			}
			outs, err := inner(ctx)
			if executing {
				phase := transport.ExecExitOK
				if err != nil {
					phase = transport.ExecExitFail
				}
				conn.Exec(transport.ExecEvent{Phase: phase,
					Workflow: ctx.Workflow, Step: string(ctx.Step), Instance: ctx.Instance})
			}
			return outs, err
		})
	}
	return out
}
