package mproc

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/experiment"
	"crew/internal/faults"
	"crew/internal/metrics"
	"crew/internal/transport"
	"crew/internal/wfdb"
	"crew/internal/workload"
)

// TestMain doubles as the agent-process entry point: the cluster re-executes
// this test binary with EnvChildConfig set, and the child branch runs the
// agent host instead of the test suite.
func TestMain(m *testing.M) {
	cfg, err := ChildConfigFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cfg != nil {
		lib, programs, err := cfg.ResolveWorkload()
		if err == nil {
			err = RunChild(cfg, lib, programs)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "agent %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func clusterParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 2
	p.S = 5
	p.Z = 3
	p.E = 1
	p.A = 2
	p.F = 1
	p.R = 2
	p.W = 2
	p.ME, p.RO, p.RD = 1, 1, 0
	p.PF, p.PI, p.PA, p.PR = 0, 0, 0, 0
	return p
}

const clusterSeed = 11

func startCluster(t *testing.T, p analysis.Parameters, w *workload.Workload, col *metrics.Collector, checker *experiment.CoordChecker) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Library:   w.Library,
		Agents:    w.Agents,
		Collector: col,
		OnExec: func(ev transport.ExecEvent) {
			if checker == nil {
				return
			}
			switch ev.Phase {
			case transport.ExecEnter:
				checker.Enter(ev.Workflow, ev.Step, ev.Instance)
			default:
				checker.Exit(ev.Workflow, ev.Step, ev.Instance, ev.Phase == transport.ExecExitOK)
			}
		},
		Command: func(name string) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
		Child: ChildParams{
			DBDir:         t.TempDir(),
			PurgeOnCommit: true,
			Workload:      &p,
			Seed:          clusterSeed,
		},
		Logf: func(format string, args ...any) { t.Logf(format, args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatalf("agents never connected: %v", err)
	}
	return cl
}

// TestClusterRuns drives a workload through real agent processes with no
// faults and requires every instance to commit.
func TestClusterRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	p := clusterParams()
	w, err := workload.Generate(p, clusterSeed)
	if err != nil {
		t.Fatal(err)
	}
	cl := startCluster(t, p, w, metrics.NewCollector(), nil)
	res, err := workload.Drive(cl, w, 2, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != res.Instances {
		t.Errorf("committed %d of %d instances", res.Committed, res.Instances)
	}
	for _, wf := range w.Library.Names() {
		for i := 1; i <= 2; i++ {
			st, ok := cl.Status(wf, i)
			if !ok || st != wfdb.Committed {
				t.Errorf("%s.%d: status %v (terminal=%v), want Committed", wf, i, st, ok)
			}
		}
	}
}

// TestClusterChaos kills a real agent OS process mid-run (SIGKILL via the
// fault injector's HaltNode hook), respawns it against its surviving WFDB
// file, and requires the deployment to finish every instance with the
// coordination invariants (mutex, relative order) intact — recovery across
// a genuine process boundary.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test")
	}
	p := clusterParams()
	w, err := workload.Generate(p, clusterSeed)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	checker := experiment.NewCoordChecker(w.Library)
	cl := startCluster(t, p, w, col, checker)

	plan := faults.ChaosPlan(7, w.Agents, 2, 15, 40, 12)
	inj, err := faults.NewInjector(plan, col)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetHooks(cl)
	inj.Attach(cl.Network())
	defer inj.Stop()

	res, err := workload.Drive(cl, w, 3, 180*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	qctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	qerr := cl.Quiesce(qctx)
	cancel()
	if qerr != nil {
		t.Fatalf("quiesce after chaos: %v", qerr)
	}

	crashes := 0
	for _, ae := range inj.Applied() {
		if ae.Action == faults.Crash {
			crashes++
		}
	}
	if crashes < 1 {
		t.Errorf("no crash was applied (traffic ended before the first trigger)")
	}
	if crashes >= 1 && cl.Respawns() < 1 {
		t.Errorf("crashes=%d but no agent process was respawned", crashes)
	}
	if got := res.Committed + res.Aborted; got != res.Instances {
		t.Errorf("committed+aborted = %d, want %d", got, res.Instances)
	}
	for _, wf := range w.Library.Names() {
		for i := 1; i <= 3; i++ {
			if st, ok := cl.Status(wf, i); !ok {
				t.Errorf("%s.%d: no terminal status after recovery", wf, i)
			} else if st != wfdb.Committed && st != wfdb.Aborted {
				t.Errorf("%s.%d: non-terminal status %v", wf, i, st)
			}
		}
	}
	for _, v := range checker.MutexViolations() {
		t.Errorf("mutex violation: %s", v)
	}
	for _, v := range checker.OrderViolations() {
		t.Errorf("order violation: %s", v)
	}
}
