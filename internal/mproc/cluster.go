package mproc

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/analysis"
	"crew/internal/cerrors"
	"crew/internal/distributed"
	"crew/internal/expr"
	"crew/internal/itable"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// ClusterConfig parameterizes a multi-process deployment.
type ClusterConfig struct {
	// Network selects the hub wire: "unix" (default) or "tcp". Addr may stay
	// empty (private socket path / loopback port).
	Network string
	Addr    string
	// Library and Agents define the deployment; every child must resolve an
	// identical library (same workload recipe or LAWS source).
	Library *model.Library
	Agents  []string
	// Collector receives the hub network's authoritative message counts
	// (may be nil). Child-local counts are deliberately discarded: every
	// inter-agent message crosses the hub, where it is charged once.
	Collector *metrics.Collector
	// OnExec observes the EXEC events children report (coordination
	// checking); may be nil.
	OnExec func(transport.ExecEvent)
	// Command builds the (unstarted) child process for an agent — typically
	// the current binary re-executed; the cluster appends EnvChildConfig to
	// its environment. Called again on every RestartNode.
	Command func(name string) *exec.Cmd
	// Child is the per-agent configuration template; Name/Network/Addr/
	// Agents/Notify/DBPath are filled in by the cluster. DBDir, when
	// non-empty, gives every agent a persistent WFDB file there — required
	// for crash recovery to survive the process boundary.
	Child ChildParams
	Logf  func(format string, args ...any)
}

// ChildParams is the part of ChildConfig the cluster owner chooses.
type ChildParams struct {
	DBDir         string
	DisableOCR    bool
	PurgeOnCommit bool
	// Workload + Seed ship the deterministic workload recipe; LawsPath
	// ships a LAWS source instead.
	Workload *analysis.Parameters
	Seed     int64
	LawsPath string
	FailStep string
}

// Cluster is the hub process's handle on a multi-process deployment. It
// implements workload.Target (Start/Wait/Abort/ChangeInputs address the
// elected coordination agents over the wire) and faults.NodeHooks (HaltNode
// SIGKILLs the agent's process, RestartNode re-executes it).
type Cluster struct {
	cfg  ClusterConfig
	net  *transport.Network
	hub  *transport.RemoteHub
	term *itable.Terminal
	fe   *transport.Endpoint

	mu     sync.Mutex
	nextID map[string]int
	procs  map[string]*childProc

	respawns atomic.Int64
	feDone   chan struct{}
	closed   atomic.Bool
}

type childProc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

// NewCluster binds the hub, registers every agent as a remote node and
// spawns the child processes. Call WaitConnected before driving work.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Library == nil || len(cfg.Agents) == 0 || cfg.Command == nil {
		return nil, errors.New("mproc: cluster needs a library, agents and a child command")
	}
	if cfg.Network == "" {
		cfg.Network = "unix"
	}
	c := &Cluster{
		cfg:    cfg,
		net:    transport.NewNetwork(transport.NetworkConfig{Collector: cfg.Collector}),
		term:   new(itable.Terminal),
		nextID: make(map[string]int),
		procs:  make(map[string]*childProc),
		feDone: make(chan struct{}),
	}
	hub, err := transport.NewRemoteHub(c.net, cfg.Network, cfg.Addr, cfg.OnExec)
	if err != nil {
		c.net.Close()
		return nil, err
	}
	c.hub = hub
	for _, name := range cfg.Agents {
		if err := hub.RegisterRemote(name); err != nil {
			c.net.Close()
			return nil, err
		}
	}
	fe, err := c.net.Register(FrontendNode)
	if err != nil {
		c.net.Close()
		return nil, err
	}
	c.fe = fe
	go c.consumeFrontend()
	for _, name := range cfg.Agents {
		if err := c.spawn(name); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	} else {
		log.Printf("mproc: "+format, args...)
	}
}

// consumeFrontend retires WorkflowDone notifications into the terminal
// registry, waking Wait subscribers.
func (c *Cluster) consumeFrontend() {
	defer close(c.feDone)
	handle := func(m transport.Message) {
		switch p := m.Payload.(type) {
		case distributed.WorkflowDone:
			c.term.Complete(p.Workflow, p.Instance, p.Status)
		case *distributed.WorkflowDone:
			c.term.Complete(p.Workflow, p.Instance, p.Status)
		}
	}
	for m := range c.fe.Inbox() {
		if env, ok := m.Payload.(*transport.Envelope); ok && m.Kind == transport.KindEnvelope {
			for i := range env.Msgs {
				handle(env.Msgs[i])
			}
			env.Release()
			continue
		}
		handle(m)
	}
}

// childConfig builds the JSON configuration for one agent process.
func (c *Cluster) childConfig(name string) (*ChildConfig, error) {
	cc := &ChildConfig{
		Name:          name,
		Network:       c.cfg.Network,
		Addr:          c.hub.Addr(),
		Agents:        c.cfg.Agents,
		Notify:        FrontendNode,
		DisableOCR:    c.cfg.Child.DisableOCR,
		PurgeOnCommit: c.cfg.Child.PurgeOnCommit,
		Workload:      c.cfg.Child.Workload,
		Seed:          c.cfg.Child.Seed,
		LawsPath:      c.cfg.Child.LawsPath,
		FailStep:      c.cfg.Child.FailStep,
	}
	if c.cfg.Child.DBDir != "" {
		cc.DBPath = filepath.Join(c.cfg.Child.DBDir, name+".agdb")
	}
	return cc, nil
}

// spawn launches (or relaunches) an agent's process. The child's WFDB path
// is stable across respawns: that file is what recovery rebuilds from.
func (c *Cluster) spawn(name string) error {
	cc, err := c.childConfig(name)
	if err != nil {
		return err
	}
	entry, err := cc.Env()
	if err != nil {
		return err
	}
	cmd := c.cfg.Command(name)
	if cmd == nil {
		return fmt.Errorf("mproc: no command for agent %s", name)
	}
	if cmd.Env == nil {
		cmd.Env = os.Environ()
	}
	cmd.Env = append(cmd.Env, entry)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("mproc: start agent %s: %w", name, err)
	}
	p := &childProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(p.done)
	}()
	c.mu.Lock()
	c.procs[name] = p
	c.mu.Unlock()
	return nil
}

// WaitConnected blocks until every agent process has claimed its node.
func (c *Cluster) WaitConnected(ctx context.Context) error {
	return c.hub.WaitConnected(ctx, c.cfg.Agents...)
}

// Network exposes the authoritative hub network (fault attachment, Quiesce,
// AwaitStall).
func (c *Cluster) Network() *transport.Network { return c.net }

// Collector returns the hub's metrics collector.
func (c *Cluster) Collector() *metrics.Collector { return c.cfg.Collector }

// Respawns reports how many agent processes were restarted.
func (c *Cluster) Respawns() int64 { return c.respawns.Load() }

// coordinator elects the coordination agent a workflow interface must
// address — the same zero-message election agents and front ends share.
func (c *Cluster) coordinator(workflow string, id int) (string, error) {
	return distributed.CoordinatorFor(c.cfg.Library, c.cfg.Agents, workflow, id, c.net.Alive)
}

// Start launches an instance by sending the WorkflowStart WI to its elected
// coordination agent, subscribing the frontend to its WorkflowDone.
func (c *Cluster) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	c.mu.Lock()
	id := c.nextID[workflow] + 1
	c.nextID[workflow] = id
	c.mu.Unlock()
	to, err := c.coordinator(workflow, id)
	if err != nil {
		return 0, err
	}
	//crew:nocharge StartMessage sets Mechanism in its constructor
	if err := c.net.Send(distributed.StartMessage(FrontendNode, to, workflow, id, inputs, FrontendNode)); err != nil {
		return 0, err
	}
	return id, nil
}

// Wait blocks until the instance terminates (push-based via the terminal
// registry) or the timeout expires.
func (c *Cluster) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, done, w, gen := c.term.Subscribe(workflow, id)
	if done {
		return st, nil
	}
	select {
	case <-w.Done():
		return w.Result(), nil
	case <-ctx.Done():
		c.term.Unsubscribe(workflow, id, w, gen)
		return 0, fmt.Errorf("mproc: %w: %s.%d", cerrors.ErrTimeout, workflow, id)
	}
}

// Status reports an instance's terminal status, if it has one.
func (c *Cluster) Status(workflow string, id int) (wfdb.Status, bool) {
	return c.term.Status(workflow, id)
}

// Abort requests a user abort via the instance's coordination agent.
func (c *Cluster) Abort(workflow string, id int) error {
	if st, ok := c.term.Status(workflow, id); ok && st != wfdb.Running {
		return fmt.Errorf("mproc: %w: %s.%d is %v", cerrors.ErrNotRunning, workflow, id, st)
	}
	to, err := c.coordinator(workflow, id)
	if err != nil {
		return err
	}
	//crew:nocharge AbortMessage sets Mechanism in its constructor
	return c.net.Send(distributed.AbortMessage(FrontendNode, to, workflow, id))
}

// ChangeInputs requests an input change via the coordination agent.
func (c *Cluster) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	to, err := c.coordinator(workflow, id)
	if err != nil {
		return err
	}
	//crew:nocharge ChangeInputsMessage sets Mechanism in its constructor
	return c.net.Send(distributed.ChangeInputsMessage(FrontendNode, to, workflow, id, inputs))
}

// Quiesce waits for the hub network to go idle or stall.
func (c *Cluster) Quiesce(ctx context.Context) error { return c.net.Quiesce(ctx) }

// HaltNode implements faults.NodeHooks with a real crash: the agent's OS
// process is SIGKILLed mid-flight — no flushes, no goodbyes — and the kill is
// announced so surviving children update their election liveness. The
// injector has already applied Network.Crash (parking the node's traffic)
// before calling this.
func (c *Cluster) HaltNode(name string) {
	c.hub.Announce(name, false)
	c.mu.Lock()
	p := c.procs[name]
	c.mu.Unlock()
	if p == nil {
		return
	}
	p.cmd.Process.Kill()
	<-p.done // reap before a respawn may reopen the WFDB file
}

// RestartNode re-executes the agent's process against its surviving WFDB
// file; the fresh process rebuilds replicas from it (RecoverReplicas),
// reclaims its hub node and receives the parked + unacked replay. The
// injector applies Network.Recover after this returns.
func (c *Cluster) RestartNode(name string) {
	if c.closed.Load() {
		return
	}
	if err := c.spawn(name); err != nil {
		c.logf("respawn %s: %v", name, err)
		return
	}
	c.respawns.Add(1)
	c.hub.Announce(name, true)
}

// Close tears the cluster down: children are killed first (they are of no
// use without the hub), then the network closes — taking the hub and its
// connections with it — and the frontend consumer drains out.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.mu.Lock()
	procs := make([]*childProc, 0, len(c.procs))
	for _, p := range c.procs {
		procs = append(procs, p)
	}
	c.mu.Unlock()
	for _, p := range procs {
		p.cmd.Process.Kill()
	}
	for _, p := range procs {
		<-p.done
	}
	c.net.Close()
	<-c.feDone
}
