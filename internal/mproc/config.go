// Package mproc runs a crew deployment as real OS processes: one hub process
// owning the authoritative transport.Network (message counts, fault policy,
// quiescence) and one child process per agent, joined by the hub wire
// protocol (transport.RemoteHub / transport.ChildConn).
//
// The hub side (Cluster) is a workload.Target and a faults.NodeHooks: the
// standard drivers and the chaos injector work unchanged, except that
// HaltNode delivers a genuine SIGKILL to an agent's process and RestartNode
// re-executes it — recovery is rebuild-from-WFDB across a real process
// boundary, not a map reset inside one address space.
package mproc

import (
	"encoding/json"
	"fmt"
	"os"

	"crew/internal/analysis"
	"crew/internal/model"
	"crew/internal/workload"
)

// EnvChildConfig is the environment variable carrying a child process's JSON
// configuration. A process that finds it set is an agent host, not a hub.
const EnvChildConfig = "CREW_AGENTHOST"

// FrontendNode is the hub-local node name workflow interfaces originate from
// and WorkflowDone notifications return to.
const FrontendNode = "frontend"

// ChildConfig is everything an agent process needs to join a cluster. It
// deliberately carries the workload *recipe* (parameters + seed) rather than
// the generated artifacts: workload generation is deterministic, so hub and
// children rebuild identical libraries and programs independently.
type ChildConfig struct {
	// Name is the agent node this process claims at the hub.
	Name string `json:"name"`
	// Network/Addr locate the hub listener ("unix" or "tcp").
	Network string `json:"network"`
	Addr    string `json:"addr"`
	// Agents is the full deployment agent list (sorted order matters: it
	// defines the coordination home agent everywhere).
	Agents []string `json:"agents"`
	// Notify is the node WorkflowDone notifications are pushed to
	// (FrontendNode in a standard cluster).
	Notify string `json:"notify,omitempty"`
	// DBPath is the agent's persistent WFDB file; empty keeps the database
	// in memory (no recovery across a restart).
	DBPath string `json:"dbPath,omitempty"`
	// DisableOCR and PurgeOnCommit mirror distributed.Config.
	DisableOCR    bool `json:"disableOCR,omitempty"`
	PurgeOnCommit bool `json:"purgeOnCommit,omitempty"`
	// Workload + Seed regenerate a synthetic workload's library and
	// programs. LawsPath mode (crewrun) resolves them from a LAWS file
	// instead and leaves Workload nil.
	Workload *analysis.Parameters `json:"workload,omitempty"`
	Seed     int64                `json:"seed,omitempty"`
	// LawsPath names a LAWS source file for LAWS-defined deployments; the
	// child-process entry point compiles it and registers its programs
	// (mproc itself cannot: program code is not serializable).
	LawsPath string `json:"lawsPath,omitempty"`
	// FailStep optionally names a step whose program reports a logical
	// failure once (crewrun's synthetic-failure switch).
	FailStep string `json:"failStep,omitempty"`
}

// Env encodes the config as the environment variable entry to append to a
// child's environment.
func (c *ChildConfig) Env() (string, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("mproc: encode child config: %w", err)
	}
	return EnvChildConfig + "=" + string(b), nil
}

// ChildConfigFromEnv decodes the current process's child configuration.
// It returns (nil, nil) when the variable is unset: this process is a hub.
func ChildConfigFromEnv() (*ChildConfig, error) {
	raw := os.Getenv(EnvChildConfig)
	if raw == "" {
		return nil, nil
	}
	var c ChildConfig
	if err := json.Unmarshal([]byte(raw), &c); err != nil {
		return nil, fmt.Errorf("mproc: decode %s: %w", EnvChildConfig, err)
	}
	return &c, nil
}

// ResolveWorkload regenerates the library and programs for a
// parameter-driven child. LAWS-driven children resolve their own (the hub
// cannot ship program code across a process boundary).
func (c *ChildConfig) ResolveWorkload() (*model.Library, *model.Registry, error) {
	if c.Workload == nil {
		return nil, nil, fmt.Errorf("mproc: child %s has no workload parameters", c.Name)
	}
	w, err := workload.Generate(*c.Workload, c.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("mproc: regenerate workload: %w", err)
	}
	return w.Library, w.Programs, nil
}
