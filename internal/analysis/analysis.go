// Package analysis reproduces the paper's analytical performance model
// (§6): the parameter space of Table 3, the closed-form load and
// physical-message expressions of Tables 4 (centralized), 5 (parallel) and
// 6 (distributed), and the architecture recommendation of Table 7. The
// crewsim harness prints these analytic rows next to measured values from
// real runs of the three architectures.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Parameters is the paper's Table 3. Probabilities are per instance (pf, pr
// per step where the paper applies them to the rolled-back region).
type Parameters struct {
	S  int     // steps per workflow (5-25)
	C  int     // workflow schemas (20)
	I  int     // concurrent instances per schema (10-1000)
	E  int     // engines (1-8)
	Z  int     // agents (10-100)
	A  int     // eligible agents per step (1-4)
	D  int     // conflicting definitions per step (0-2)
	R  int     // steps rolled back on a failure (1-10)
	V  int     // steps invalidated on a step failure (0-8)
	F  int     // final steps in a workflow (1-4)
	W  int     // steps compensated on a workflow abort (0-4)
	ME int     // steps/WF needing mutual exclusion (0-4)
	RO int     // steps/WF needing relative ordering (0-4)
	RD int     // steps/WF having rollback dependency (0-2)
	L  float64 // navigation and other load per step (instructions)
	PF float64 // probability of logical step failure (0.0-0.2)
	PI float64 // probability of workflow input change (0.0-0.05)
	PA float64 // probability of workflow abort (0.0-0.05)
	PR float64 // probability of step re-execution (0.0-0.5)
}

// Default returns the average-case parameter values that produce the
// normalized numbers printed in the paper's Tables 4-6 (s=15, e=4, z=50,
// a=2, d=1, r=5, v=4, f=2, w=2, me=2, ro=2, rd=1, pf=0.1, pi=0.025,
// pa=0.025, pr=0.25; loads are reported as multiples of l).
func Default() Parameters {
	return Parameters{
		S: 15, C: 20, I: 100, E: 4, Z: 50, A: 2, D: 1,
		R: 5, V: 4, F: 2, W: 2, ME: 2, RO: 2, RD: 1,
		L: 1, PF: 0.1, PI: 0.025, PA: 0.025, PR: 0.25,
	}
}

// Range describes one Table 3 row.
type Range struct {
	Name   string
	Symbol string
	Lo, Hi float64
}

// Table3 returns the parameter ranges exactly as the paper lists them.
func Table3() []Range {
	return []Range{
		{"Number of Steps per Workflow", "s", 5, 25},
		{"Number of Workflow Schemas", "c", 20, 20},
		{"Number of Concurrent Instances per Schema", "i", 10, 1000},
		{"Number of Engines", "e", 1, 8},
		{"Number of Agents", "z", 10, 100},
		{"Number of Eligible Agents per Step", "a", 1, 4},
		{"Number of Conflicting Definitions per Step", "d", 0, 2},
		{"Number of Steps Rolled Back on a Failure", "r", 1, 10},
		{"Number of Steps to be Invalidated on a Step Failure", "v", 0, 8},
		{"Number of Final Steps in a Workflow", "f", 1, 4},
		{"Number of Steps to be Compensated on a Workflow Abort", "w", 0, 4},
		{"Number of Steps/WF needing Mutual Exclusion", "me", 0, 4},
		{"Number of Steps/WF needing Relative Ordering", "ro", 0, 4},
		{"Number of Steps/WF having Rollback Dependency", "rd", 0, 2},
		{"Probability of Logical Step Failure", "pf", 0, 0.2},
		{"Probability of Workflow Input Change", "pi", 0, 0.05},
		{"Probability of Workflow Abort", "pa", 0, 0.05},
		{"Probability of Step Re-execution", "pr", 0, 0.5},
	}
}

// Mechanism rows of Tables 4-6, in the paper's order.
const (
	RowNormal      = "Normal Execution"
	RowInputChange = "Workflow Input Change"
	RowAbort       = "Workflow Abort"
	RowFailure     = "Failure Handling"
	RowCoord       = "Coordinated Execution"
)

// Rows lists the mechanism rows in presentation order.
var Rows = []string{RowNormal, RowInputChange, RowAbort, RowFailure, RowCoord}

// Architecture identifies a control architecture.
type Architecture int

const (
	// Central is the centralized control architecture (Table 4).
	Central Architecture = iota
	// Parallel is the parallel control architecture (Table 5).
	Parallel
	// Distributed is the distributed control architecture (Table 6).
	Distributed
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case Central:
		return "Central"
	case Parallel:
		return "Parallel"
	case Distributed:
		return "Distributed"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Architectures lists all three in table order.
var Architectures = []Architecture{Central, Parallel, Distributed}

// Entry is one analytic cell: the expression text and its value under given
// parameters. Loads are in multiples of l.
type Entry struct {
	Row        string
	Expression string
	Value      float64
}

// LoadPerInstance returns the per-instance scheduling-node load expressions
// (Tables 4-6, "Load at Engine" sections), in multiples of l.
func LoadPerInstance(arch Architecture, p Parameters) []Entry {
	s, e, z := float64(p.S), float64(p.E), float64(p.Z)
	a, d := float64(p.A), float64(p.D)
	r, w := float64(p.R), float64(p.W)
	coordSteps := float64(p.ME + p.RO + p.RD)
	switch arch {
	case Central:
		return []Entry{
			{RowNormal, "l·s", s},
			{RowInputChange, "l·r·pi", r * p.PI},
			{RowAbort, "l·w·pa", w * p.PA},
			{RowFailure, "l·r·pf", r * p.PF},
			{RowCoord, "l·(me+ro+rd)·s", coordSteps * s},
		}
	case Parallel:
		return []Entry{
			{RowNormal, "l·s/e", s / e},
			{RowInputChange, "(l·r·pi)/e", r * p.PI / e},
			{RowAbort, "(l·w·pa)/e", w * p.PA / e},
			{RowFailure, "(l·r·pf)/e", r * p.PF / e},
			{RowCoord, "l·(me+ro+rd)·s", coordSteps * s},
		}
	default: // Distributed
		return []Entry{
			{RowNormal, "l·s/z", s / z},
			{RowInputChange, "(l·r·pi)/z", r * p.PI / z},
			{RowAbort, "(l·w·pa)/z", w * p.PA / z},
			{RowFailure, "(l·r·pf)/z", r * p.PF / z},
			{RowCoord, "(l·(me+ro+rd)·a·d·s)/z", coordSteps * a * d * s / z},
		}
	}
}

// MessagesPerInstance returns the per-instance physical-message expressions
// (Tables 4-6, "Physical Messages Exchanged" sections).
func MessagesPerInstance(arch Architecture, p Parameters) []Entry {
	s, e := float64(p.S), float64(p.E)
	a, d := float64(p.A), float64(p.D)
	r, v, f, w := float64(p.R), float64(p.V), float64(p.F), float64(p.W)
	coordSteps := float64(p.ME + p.RO + p.RD)
	switch arch {
	case Central:
		return []Entry{
			{RowNormal, "2·s·a", 2 * s * a},
			{RowInputChange, "2·r·pi·pr·a", 2 * r * p.PI * p.PR * a},
			{RowAbort, "2·w·pa·a", 2 * w * p.PA * a},
			{RowFailure, "2·r·pf·pr·a", 2 * r * p.PF * p.PR * a},
			{RowCoord, "0", 0},
		}
	case Parallel:
		return []Entry{
			{RowNormal, "2·s·a", 2 * s * a},
			{RowInputChange, "2·r·pi·pr·a", 2 * r * p.PI * p.PR * a},
			{RowAbort, "2·w·pa·a", 2 * w * p.PA * a},
			{RowFailure, "2·r·pf·pr·a", 2 * r * p.PF * p.PR * a},
			{RowCoord, "(me+ro+rd)·e·s", coordSteps * e * s},
		}
	default: // Distributed
		return []Entry{
			{RowNormal, "s·a + f", s*a + f},
			{RowInputChange, "(r+v)·pi·a", (r + v) * p.PI * a},
			{RowAbort, "2·w·pa·a", 2 * w * p.PA * a},
			{RowFailure, "(r+v)·pf·a", (r + v) * p.PF * a},
			{RowCoord, "(me+ro+rd)·a·d·s", coordSteps * a * d * s},
		}
	}
}

// entryValue finds a row's value.
func entryValue(entries []Entry, row string) float64 {
	for _, e := range entries {
		if e.Row == row {
			return e.Value
		}
	}
	return 0
}

// Criterion is a Table 7 column.
type Criterion int

const (
	// NormalOnly considers normal execution only.
	NormalOnly Criterion = iota
	// NormalPlusFailures adds input changes, aborts and failure handling.
	NormalPlusFailures
	// NormalPlusCoordinated adds coordinated execution.
	NormalPlusCoordinated
)

// String names the criterion as in Table 7.
func (c Criterion) String() string {
	switch c {
	case NormalOnly:
		return "Normal"
	case NormalPlusFailures:
		return "Normal + Failures"
	case NormalPlusCoordinated:
		return "Normal + Coordinated"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Criteria lists Table 7's columns.
var Criteria = []Criterion{NormalOnly, NormalPlusFailures, NormalPlusCoordinated}

func criterionTotal(entries []Entry, c Criterion) float64 {
	total := entryValue(entries, RowNormal)
	switch c {
	case NormalPlusFailures:
		total += entryValue(entries, RowInputChange) +
			entryValue(entries, RowAbort) +
			entryValue(entries, RowFailure)
	case NormalPlusCoordinated:
		total += entryValue(entries, RowCoord)
	}
	return total
}

// Ranking is an ordered list of architectures (best first); ties share a
// rank when their values are within 1%.
type Ranking struct {
	Order []Architecture
	Rank  map[Architecture]int
}

func rank(values map[Architecture]float64) Ranking {
	order := append([]Architecture(nil), Architectures...)
	sort.SliceStable(order, func(i, j int) bool {
		return values[order[i]] < values[order[j]]
	})
	rk := map[Architecture]int{order[0]: 1}
	for i := 1; i < len(order); i++ {
		prev, cur := values[order[i-1]], values[order[i]]
		if cur <= prev*1.01+1e-9 {
			rk[order[i]] = rk[order[i-1]]
		} else {
			rk[order[i]] = i + 1
		}
	}
	return Ranking{Order: order, Rank: rk}
}

// RecommendLoad ranks the architectures by scheduling-node load for a
// criterion (Table 7's "Load at Engine" rows).
func RecommendLoad(p Parameters, c Criterion) Ranking {
	values := make(map[Architecture]float64, 3)
	for _, arch := range Architectures {
		values[arch] = criterionTotal(LoadPerInstance(arch, p), c)
	}
	return rank(values)
}

// RecommendMessages ranks the architectures by physical messages for a
// criterion (Table 7's "Physical Messages" rows).
func RecommendMessages(p Parameters, c Criterion) Ranking {
	values := make(map[Architecture]float64, 3)
	for _, arch := range Architectures {
		values[arch] = criterionTotal(MessagesPerInstance(arch, p), c)
	}
	return rank(values)
}

// CoordinationCrossover reports the paper's §6 observation for coordination
// messages: distributed control uses fewer messages than parallel control
// iff a·d < e.
func CoordinationCrossover(p Parameters) (distributedWins bool) {
	return p.A*p.D < p.E
}

// FormatTable renders analytic entries as the paper lays its tables out.
func FormatTable(title string, loads, msgs []Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-24s %-22s %12s\n", "Load at Engine", "Expression", "Value (·l)")
	for _, e := range loads {
		fmt.Fprintf(&b, "  %-24s %-22s %12.4f\n", e.Row, e.Expression, e.Value)
	}
	fmt.Fprintf(&b, "  %-24s %-22s %12s\n", "Physical Messages", "Expression", "Value")
	for _, e := range msgs {
		fmt.Fprintf(&b, "  %-24s %-22s %12.4f\n", e.Row, e.Expression, e.Value)
	}
	return b.String()
}
