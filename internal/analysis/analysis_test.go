package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func val(entries []Entry, row string) float64 { return entryValue(entries, row) }

// TestTable4NormalizedValues checks the exact normalized numbers printed in
// the paper's Table 4 under the default (average) parameters.
func TestTable4NormalizedValues(t *testing.T) {
	p := Default()
	loads := LoadPerInstance(Central, p)
	if !near(val(loads, RowNormal), 15) {
		t.Errorf("central normal load = %g, want 15·l", val(loads, RowNormal))
	}
	if !near(val(loads, RowInputChange), 0.125) {
		t.Errorf("central input-change load = %g, want 0.125·l", val(loads, RowInputChange))
	}
	if !near(val(loads, RowAbort), 0.05) {
		t.Errorf("central abort load = %g, want 0.05·l", val(loads, RowAbort))
	}
	if !near(val(loads, RowFailure), 0.5) {
		t.Errorf("central failure load = %g, want 0.5·l", val(loads, RowFailure))
	}
	if !near(val(loads, RowCoord), 75) {
		t.Errorf("central coordination load = %g, want 75·l", val(loads, RowCoord))
	}
	msgs := MessagesPerInstance(Central, p)
	if !near(val(msgs, RowNormal), 60) {
		t.Errorf("central normal messages = %g, want 60", val(msgs, RowNormal))
	}
	if !near(val(msgs, RowInputChange), 0.125) {
		t.Errorf("central input-change messages = %g, want 0.125", val(msgs, RowInputChange))
	}
	if !near(val(msgs, RowAbort), 0.2) {
		t.Errorf("central abort messages = %g, want 0.2", val(msgs, RowAbort))
	}
	if !near(val(msgs, RowFailure), 0.5) {
		t.Errorf("central failure messages = %g, want 0.5", val(msgs, RowFailure))
	}
	if !near(val(msgs, RowCoord), 0) {
		t.Errorf("central coordination messages = %g, want 0", val(msgs, RowCoord))
	}
}

// TestTable5NormalizedValues checks the paper's Table 5 numbers.
func TestTable5NormalizedValues(t *testing.T) {
	p := Default()
	loads := LoadPerInstance(Parallel, p)
	if !near(val(loads, RowNormal), 3.75) {
		t.Errorf("parallel normal load = %g, want 3.75·l", val(loads, RowNormal))
	}
	if !near(val(loads, RowInputChange), 0.03125) {
		t.Errorf("parallel input-change load = %g, want 0.0313·l", val(loads, RowInputChange))
	}
	if !near(val(loads, RowAbort), 0.0125) {
		t.Errorf("parallel abort load = %g, want 0.0125·l", val(loads, RowAbort))
	}
	if !near(val(loads, RowFailure), 0.125) {
		t.Errorf("parallel failure load = %g, want 0.125·l", val(loads, RowFailure))
	}
	if !near(val(loads, RowCoord), 75) {
		t.Errorf("parallel coordination load = %g, want 75·l", val(loads, RowCoord))
	}
	msgs := MessagesPerInstance(Parallel, p)
	if !near(val(msgs, RowNormal), 60) {
		t.Errorf("parallel normal messages = %g, want 60", val(msgs, RowNormal))
	}
	if !near(val(msgs, RowCoord), 300) {
		t.Errorf("parallel coordination messages = %g, want 300", val(msgs, RowCoord))
	}
}

// TestTable6NormalizedValues checks the paper's Table 6 numbers.
func TestTable6NormalizedValues(t *testing.T) {
	p := Default()
	loads := LoadPerInstance(Distributed, p)
	if !near(val(loads, RowNormal), 0.3) {
		t.Errorf("distributed normal load = %g, want 0.3·l", val(loads, RowNormal))
	}
	if !near(val(loads, RowInputChange), 0.0025) {
		t.Errorf("distributed input-change load = %g, want 0.0025·l", val(loads, RowInputChange))
	}
	if !near(val(loads, RowAbort), 0.001) {
		t.Errorf("distributed abort load = %g, want 0.001·l", val(loads, RowAbort))
	}
	if !near(val(loads, RowFailure), 0.01) {
		t.Errorf("distributed failure load = %g, want 0.01·l", val(loads, RowFailure))
	}
	// The paper prints 1.5·l here, but its own expression
	// (me+ro+rd)·a·d·s/z with the stated averages (5·2·1·15/50) gives 3·l;
	// the companion message row (150) confirms a=2 and d=1, so the printed
	// 1.5 is an arithmetic slip in the paper. We stay faithful to the
	// expression.
	if !near(val(loads, RowCoord), 3) {
		t.Errorf("distributed coordination load = %g, want 3·l (paper prints 1.5·l)", val(loads, RowCoord))
	}
	msgs := MessagesPerInstance(Distributed, p)
	if !near(val(msgs, RowNormal), 32) {
		t.Errorf("distributed normal messages = %g, want 32", val(msgs, RowNormal))
	}
	if !near(val(msgs, RowInputChange), 0.45) {
		t.Errorf("distributed input-change messages = %g, want 0.45", val(msgs, RowInputChange))
	}
	if !near(val(msgs, RowAbort), 0.2) {
		t.Errorf("distributed abort messages = %g, want 0.2", val(msgs, RowAbort))
	}
	if !near(val(msgs, RowFailure), 1.8) {
		t.Errorf("distributed failure messages = %g, want 1.8", val(msgs, RowFailure))
	}
	if !near(val(msgs, RowCoord), 150) {
		t.Errorf("distributed coordination messages = %g, want 150", val(msgs, RowCoord))
	}
}

// TestTable7Recommendations verifies the paper's recommended order under the
// default parameters for every criterion.
func TestTable7Recommendations(t *testing.T) {
	p := Default()

	// Load at engine: Distributed < Parallel < Central, for all criteria.
	for _, c := range Criteria {
		rk := RecommendLoad(p, c)
		if rk.Order[0] != Distributed || rk.Order[1] != Parallel || rk.Order[2] != Central {
			t.Errorf("load ranking for %v = %v, want [Distributed Parallel Central]", c, rk.Order)
		}
	}

	// Messages, normal: Distributed first; Parallel and Central tie.
	rk := RecommendMessages(p, NormalOnly)
	if rk.Order[0] != Distributed {
		t.Errorf("normal message ranking = %v, want Distributed first", rk.Order)
	}
	if rk.Rank[Parallel] != rk.Rank[Central] {
		t.Errorf("parallel and central should tie on normal messages: %v", rk.Rank)
	}

	// Messages, normal + failures: Distributed still first (32+2.45 < 60.825).
	rk = RecommendMessages(p, NormalPlusFailures)
	if rk.Order[0] != Distributed {
		t.Errorf("failures message ranking = %v, want Distributed first", rk.Order)
	}

	// Messages, normal + coordinated: Central wins (60 < 182 < 360), then
	// Distributed, then Parallel — exactly Table 7's last column.
	rk = RecommendMessages(p, NormalPlusCoordinated)
	if rk.Order[0] != Central || rk.Order[1] != Distributed || rk.Order[2] != Parallel {
		t.Errorf("coordinated message ranking = %v, want [Central Distributed Parallel]", rk.Order)
	}
}

func TestCoordinationCrossover(t *testing.T) {
	p := Default() // a·d = 2 < e = 4: distributed wins
	if !CoordinationCrossover(p) {
		t.Error("default parameters: distributed should use fewer coordination messages")
	}
	p.A, p.D, p.E = 4, 2, 4 // a·d = 8 >= e = 4
	if CoordinationCrossover(p) {
		t.Error("a·d >= e: parallel should win")
	}
	// Cross-check against the actual expressions.
	m1 := val(MessagesPerInstance(Distributed, p), RowCoord)
	m2 := val(MessagesPerInstance(Parallel, p), RowCoord)
	if m1 < m2 {
		t.Errorf("expressions disagree with crossover: dist=%g par=%g", m1, m2)
	}
}

func TestTable3Ranges(t *testing.T) {
	rows := Table3()
	if len(rows) != 18 {
		t.Fatalf("Table3 rows = %d, want 18", len(rows))
	}
	bySym := map[string]Range{}
	for _, r := range rows {
		if r.Lo > r.Hi {
			t.Errorf("row %s has Lo > Hi", r.Symbol)
		}
		bySym[r.Symbol] = r
	}
	if bySym["s"].Lo != 5 || bySym["s"].Hi != 25 {
		t.Error("s range wrong")
	}
	if bySym["z"].Lo != 10 || bySym["z"].Hi != 100 {
		t.Error("z range wrong")
	}
	if bySym["pf"].Hi != 0.2 {
		t.Error("pf range wrong")
	}
	// Defaults sit inside the ranges.
	p := Default()
	checks := map[string]float64{
		"s": float64(p.S), "e": float64(p.E), "z": float64(p.Z),
		"a": float64(p.A), "d": float64(p.D), "r": float64(p.R),
		"v": float64(p.V), "f": float64(p.F), "w": float64(p.W),
		"me": float64(p.ME), "ro": float64(p.RO), "rd": float64(p.RD),
		"pf": p.PF, "pi": p.PI, "pa": p.PA, "pr": p.PR,
	}
	for sym, v := range checks {
		r, ok := bySym[sym]
		if !ok {
			t.Errorf("missing Table 3 row %q", sym)
			continue
		}
		if v < r.Lo || v > r.Hi {
			t.Errorf("default %s = %g outside range [%g, %g]", sym, v, r.Lo, r.Hi)
		}
	}
}

func TestArchitectureAndCriterionStrings(t *testing.T) {
	if Central.String() != "Central" || Parallel.String() != "Parallel" || Distributed.String() != "Distributed" {
		t.Error("architecture strings wrong")
	}
	if Architecture(9).String() != "Architecture(9)" {
		t.Error("unknown architecture string")
	}
	if NormalOnly.String() != "Normal" || NormalPlusFailures.String() != "Normal + Failures" ||
		NormalPlusCoordinated.String() != "Normal + Coordinated" {
		t.Error("criterion strings wrong")
	}
	if Criterion(9).String() != "Criterion(9)" {
		t.Error("unknown criterion string")
	}
}

func TestFormatTable(t *testing.T) {
	p := Default()
	out := FormatTable("Table 4", LoadPerInstance(Central, p), MessagesPerInstance(Central, p))
	for _, want := range []string{"Table 4", "Normal Execution", "l·s", "2·s·a", "60.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable missing %q:\n%s", want, out)
		}
	}
}

// Property: distributed per-node load is never higher than parallel, which
// is never higher than central, for normal execution over the whole Table 3
// parameter space (z >= e >= 1 in the paper's ranges).
func TestPropertyLoadOrdering(t *testing.T) {
	f := func(sRaw, eRaw, zRaw uint8) bool {
		p := Default()
		p.S = 5 + int(sRaw)%21
		p.E = 1 + int(eRaw)%8
		p.Z = 10 + int(zRaw)%91
		if p.Z < p.E {
			p.Z = p.E
		}
		c := val(LoadPerInstance(Central, p), RowNormal)
		pa := val(LoadPerInstance(Parallel, p), RowNormal)
		d := val(LoadPerInstance(Distributed, p), RowNormal)
		return d <= pa+1e-12 && pa <= c+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distributed normal-execution messages beat centralized whenever
// f < s·a (always true in the paper's ranges, since f <= 4 <= s·a).
func TestPropertyDistributedMessagesWinNormal(t *testing.T) {
	f := func(sRaw, aRaw, fRaw uint8) bool {
		p := Default()
		p.S = 5 + int(sRaw)%21
		p.A = 1 + int(aRaw)%4
		p.F = 1 + int(fRaw)%4
		d := val(MessagesPerInstance(Distributed, p), RowNormal)
		c := val(MessagesPerInstance(Central, p), RowNormal)
		return d < c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rankings are permutations with ranks starting at 1.
func TestPropertyRankingWellFormed(t *testing.T) {
	f := func(aRaw, dRaw, eRaw uint8, crit uint8) bool {
		p := Default()
		p.A = 1 + int(aRaw)%4
		p.D = int(dRaw) % 3
		p.E = 1 + int(eRaw)%8
		c := Criteria[int(crit)%len(Criteria)]
		for _, rk := range []Ranking{RecommendLoad(p, c), RecommendMessages(p, c)} {
			if len(rk.Order) != 3 {
				return false
			}
			seen := map[Architecture]bool{}
			for _, a := range rk.Order {
				if seen[a] {
					return false
				}
				seen[a] = true
			}
			if rk.Rank[rk.Order[0]] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
