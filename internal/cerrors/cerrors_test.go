package cerrors

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestEMatchesClassAndCause(t *testing.T) {
	cause := io.ErrUnexpectedEOF
	err := E(CodeFrameTruncated, PhaseDecode, ErrWire, cause, "node %q", "a1")
	if !errors.Is(err, ErrWire) {
		t.Fatalf("errors.Is(err, ErrWire) = false, want true")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("errors.Is(err, cause) = false, want true")
	}
	if got := CodeOf(err); got != CodeFrameTruncated {
		t.Fatalf("CodeOf = %q, want %q", got, CodeFrameTruncated)
	}
	if got := PhaseOf(err); got != PhaseDecode {
		t.Fatalf("PhaseOf = %q, want %q", got, PhaseDecode)
	}
	msg := err.Error()
	for _, want := range []string{"wire_frame_truncated", "decode", `node "a1"`, "unexpected EOF"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestCodeOfSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("outer: %w", E(CodeDialRefused, PhaseDial, ErrWire, nil, "tcp 127.0.0.1:9"))
	if got := CodeOf(err); got != CodeDialRefused {
		t.Fatalf("CodeOf(wrapped) = %q, want %q", got, CodeDialRefused)
	}
	if got := PhaseOf(err); got != PhaseDial {
		t.Fatalf("PhaseOf(wrapped) = %q, want %q", got, PhaseDial)
	}
	if !errors.Is(err, ErrWire) {
		t.Fatalf("errors.Is(wrapped, ErrWire) = false, want true")
	}
}

func TestCodeOfPlainSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeUnknown},
		{errors.New("misc"), CodeUnknown},
		{ErrUnknownWorkflow, CodeUnknownWorkflow},
		{ErrUnknownInstance, CodeUnknownInstance},
		{ErrNotRunning, CodeNotRunning},
		{ErrTimeout, CodeTimeout},
		{ErrClosed, CodeClosed},
		{ErrInvalidConfig, CodeInvalidConfig},
		{fmt.Errorf("ctx: %w", ErrTimeout), CodeTimeout},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.want {
			t.Errorf("CodeOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestPhaseOfUnclassified(t *testing.T) {
	if got := PhaseOf(ErrTimeout); got != PhaseNone {
		t.Fatalf("PhaseOf(sentinel) = %q, want PhaseNone", got)
	}
	if got := PhaseOf(nil); got != PhaseNone {
		t.Fatalf("PhaseOf(nil) = %q, want PhaseNone", got)
	}
}
