// Package cerrors defines the error classification shared by every
// architecture's public surface: sentinel values for errors.Is matching, and
// stable (Code, Phase) pairs callers can switch on without ever string-
// matching a message. The three control architectures (centralized, parallel,
// distributed) return these values — usually wrapped with %w and call-site
// context — so callers can match failure classes with errors.Is without
// caring which architecture is deployed. The root crew package re-exports
// the sentinels as its public error API.
//
// Codes are append-only and never renamed: they are the machine-readable
// contract (log pipelines, retry policies, tests). The Phase records where in
// an operation's life cycle the failure happened, which is what distinguishes
// "the TCP dial was refused" from "the peer crashed mid-frame" when both
// surface from the same call.
package cerrors

import (
	"errors"
	"fmt"
)

var (
	// ErrUnknownWorkflow reports a workflow class name absent from the
	// deployed library.
	ErrUnknownWorkflow = errors.New("unknown workflow class")
	// ErrUnknownInstance reports a workflow instance that was never started
	// on this deployment.
	ErrUnknownInstance = errors.New("unknown workflow instance")
	// ErrNotRunning reports an operation (abort, input change) against an
	// instance that already reached a terminal status.
	ErrNotRunning = errors.New("instance is not running")
	// ErrTimeout reports that a wait's deadline elapsed before the instance
	// reached a terminal status.
	ErrTimeout = errors.New("timed out waiting for instance")
	// ErrClosed reports an operation on a closed system.
	ErrClosed = errors.New("system is closed")
	// ErrInvalidConfig reports a Config or fault plan that fails validation
	// before any system is built.
	ErrInvalidConfig = errors.New("invalid configuration")
	// ErrWire reports a transport wire-backend failure (socket or frame
	// level). Match the class with errors.Is(err, ErrWire), then switch on
	// CodeOf(err) for the specific failure.
	ErrWire = errors.New("transport wire failure")
)

// Code is a stable, machine-readable failure class. Callers switch on codes;
// they never parse error strings.
type Code string

// Stable error codes. Append-only: existing values are part of the public
// contract and must not be renamed or reused.
const (
	// CodeUnknown is the zero code: the error carries no classification.
	CodeUnknown Code = ""
	// CodeUnknownWorkflow mirrors ErrUnknownWorkflow.
	CodeUnknownWorkflow Code = "unknown_workflow"
	// CodeUnknownInstance mirrors ErrUnknownInstance.
	CodeUnknownInstance Code = "unknown_instance"
	// CodeNotRunning mirrors ErrNotRunning.
	CodeNotRunning Code = "not_running"
	// CodeTimeout mirrors ErrTimeout.
	CodeTimeout Code = "timeout"
	// CodeClosed mirrors ErrClosed.
	CodeClosed Code = "closed"
	// CodeInvalidConfig mirrors ErrInvalidConfig.
	CodeInvalidConfig Code = "invalid_config"

	// Wire-backend codes. All carry ErrWire as their class sentinel.

	// CodeDialRefused reports that dialing a wire backend's listener failed
	// (connection refused, missing socket file, bad address).
	CodeDialRefused Code = "wire_dial_refused"
	// CodeFrameTruncated reports a frame cut short: the connection delivered
	// fewer bytes than the length prefix (or a section header) promised.
	CodeFrameTruncated Code = "wire_frame_truncated"
	// CodeFrameMalformed reports a structurally invalid frame: bad magic,
	// unsupported version, unknown frame type, or an undecodable payload.
	CodeFrameMalformed Code = "wire_frame_malformed"
	// CodeFrameOversized reports a frame whose declared length exceeds the
	// codec's hard limit (protects receivers from hostile or corrupt peers).
	CodeFrameOversized Code = "wire_frame_oversized"
	// CodePeerCrashed reports that the process or connection serving a wire
	// node died with messages still owed to or by it.
	CodePeerCrashed Code = "wire_peer_crashed"
	// CodeUnclaimedNode reports a frame addressed to a wire node no
	// connection has claimed.
	CodeUnclaimedNode Code = "wire_unclaimed_node"
)

// Phase locates a failure within an operation's life cycle.
type Phase string

// Failure phases. Append-only, like codes.
const (
	// PhaseNone is the zero phase: the error carries no phase.
	PhaseNone Phase = ""
	// PhaseConfig covers validation before any system is built.
	PhaseConfig Phase = "config"
	// PhaseListen covers binding a wire backend's listener.
	PhaseListen Phase = "listen"
	// PhaseDial covers establishing a connection to a wire listener.
	PhaseDial Phase = "dial"
	// PhaseEncode covers serializing a message into a wire frame.
	PhaseEncode Phase = "encode"
	// PhaseDecode covers parsing a received wire frame.
	PhaseDecode Phase = "decode"
	// PhaseDeliver covers handing an accepted message to its destination.
	PhaseDeliver Phase = "deliver"
	// PhaseRecovery covers crash recovery (rebuild, replay, reclaim).
	PhaseRecovery Phase = "recovery"
)

// Error is a classified error: a stable code, the phase it occurred in, and
// the underlying cause. It matches errors.Is against its class sentinel (and
// whatever the cause matches), so existing errors.Is call sites keep working
// when a plain sentinel is upgraded to a classified error.
type Error struct {
	Code  Code
	Phase Phase
	// Class is the sentinel this error is an instance of (e.g. ErrWire);
	// errors.Is(err, Class) matches. May be nil.
	Class error
	// Err is the underlying cause; may be nil.
	Err error
	// Msg is optional call-site context.
	Msg string
}

// E builds a classified error. Typical use:
//
//	cerrors.E(cerrors.CodeFrameTruncated, cerrors.PhaseDecode, cerrors.ErrWire, err, "node %q", node)
func E(code Code, phase Phase, class, err error, format string, args ...any) *Error {
	return &Error{Code: code, Phase: phase, Class: class, Err: err, Msg: fmt.Sprintf(format, args...)}
}

// Error renders the human-readable form. The code and phase are included for
// log greppability, but programs must use CodeOf/PhaseOf, never this string.
func (e *Error) Error() string {
	s := string(e.Code)
	if e.Phase != PhaseNone {
		s += "@" + string(e.Phase)
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause chain: the class sentinel and the underlying
// error both match errors.Is.
func (e *Error) Unwrap() []error {
	var out []error
	if e.Class != nil {
		out = append(out, e.Class)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

// CodeOf extracts the stable code from an error chain. Plain sentinels map to
// their mirrored codes, so CodeOf is total over the package's public errors;
// anything unclassified reports CodeUnknown.
func CodeOf(err error) Code {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Code
	}
	switch {
	case err == nil:
		return CodeUnknown
	case errors.Is(err, ErrUnknownWorkflow):
		return CodeUnknownWorkflow
	case errors.Is(err, ErrUnknownInstance):
		return CodeUnknownInstance
	case errors.Is(err, ErrNotRunning):
		return CodeNotRunning
	case errors.Is(err, ErrTimeout):
		return CodeTimeout
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrInvalidConfig):
		return CodeInvalidConfig
	default:
		return CodeUnknown
	}
}

// PhaseOf extracts the failure phase from an error chain (PhaseNone if the
// chain carries no classified error).
func PhaseOf(err error) Phase {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Phase
	}
	return PhaseNone
}
