// Package cerrors defines the sentinel errors shared by every architecture's
// public surface. The three control architectures (centralized, parallel,
// distributed) return these values — usually wrapped with %w and call-site
// context — so callers can match failure classes with errors.Is without
// caring which architecture is deployed. The root crew package re-exports
// them as its public error API.
package cerrors

import "errors"

var (
	// ErrUnknownWorkflow reports a workflow class name absent from the
	// deployed library.
	ErrUnknownWorkflow = errors.New("unknown workflow class")
	// ErrUnknownInstance reports a workflow instance that was never started
	// on this deployment.
	ErrUnknownInstance = errors.New("unknown workflow instance")
	// ErrNotRunning reports an operation (abort, input change) against an
	// instance that already reached a terminal status.
	ErrNotRunning = errors.New("instance is not running")
	// ErrTimeout reports that a wait's deadline elapsed before the instance
	// reached a terminal status.
	ErrTimeout = errors.New("timed out waiting for instance")
	// ErrClosed reports an operation on a closed system.
	ErrClosed = errors.New("system is closed")
	// ErrInvalidConfig reports a Config or fault plan that fails validation
	// before any system is built.
	ErrInvalidConfig = errors.New("invalid configuration")
)
