package experiment

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/distributed"
	"crew/internal/metrics"
	"crew/internal/parallel"
	"crew/internal/store"
	"crew/internal/wfdb"
	"crew/internal/workload"
)

// ThroughputOptions configures a sustained-load run: Rounds successive
// workload passes of Instances instances per schema against one long-lived
// deployment. Successive rounds use disjoint instance-id windows, so the run
// exercises instance retirement rather than id reuse.
type ThroughputOptions struct {
	Arch   analysis.Architecture
	Params analysis.Parameters
	// Rounds is the number of back-to-back workload.DriveRange passes.
	Rounds int
	// Instances is the per-schema instance count of each round.
	Instances int
	Seed      int64
	Timeout   time.Duration
	// DBDir, when non-empty, gives every scheduling node a file-backed WFDB
	// under that directory with a spilled archive table, so RetainedBytes
	// reflects the durable configuration (archived instances live in the
	// spill file, not on the heap) instead of in-memory archives.
	DBDir string
}

// ThroughputResult is the outcome of one sustained-load run.
type ThroughputResult struct {
	Arch      analysis.Architecture
	Rounds    int
	Instances int // total instances driven across all rounds
	Committed int
	Aborted   int
	Elapsed   time.Duration
	// InstancesPerSec is Instances / Elapsed.
	InstancesPerSec float64
	// PeakGoroutines is the largest goroutine count sampled while driving.
	PeakGoroutines int
	// RetainedBytes is the live-heap growth attributable to the run: heap
	// in use after the final quiesce and a forced GC, minus heap in use
	// before the first round (clamped at zero). With instance retirement
	// this stays roughly flat as Rounds grows; without it, it grows
	// linearly in the total instance count.
	RetainedBytes uint64
}

// buildTarget constructs a DB-optional deployment for arch and returns the
// drive target plus its close and quiesce hooks. Every node gets a file-backed
// WFDB with a spilled archive when dbDir is non-empty.
func buildTarget(arch analysis.Architecture, w *workload.Workload, e int, dbDir string) (workload.Target, func(), func(context.Context) error, error) {
	quiet := func(string, ...any) {}
	col := metrics.NewCollector()
	openDB := func(name string) (*wfdb.DB, error) {
		st, err := store.Open(filepath.Join(dbDir, name+".db"))
		if err != nil {
			return nil, err
		}
		db := wfdb.New(st)
		if err := db.SpillArchive(); err != nil {
			return nil, err
		}
		return db, nil
	}
	switch arch {
	case analysis.Central:
		cfg := central.SystemConfig{
			Library: w.Library, Programs: w.Programs, Collector: col,
			Agents: w.Agents, Logf: quiet,
		}
		if dbDir != "" {
			db, err := openDB("central")
			if err != nil {
				return nil, nil, nil, err
			}
			cfg.DB = db
		}
		sys, err := central.NewSystem(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return sys, sys.Close, sys.Quiesce, nil
	case analysis.Parallel:
		cfg := parallel.SystemConfig{
			Library: w.Library, Programs: w.Programs, Collector: col,
			Engines: e, Agents: w.Agents, Logf: quiet,
		}
		if dbDir != "" {
			for i := 0; i < e; i++ {
				db, err := openDB(fmt.Sprintf("engine%d", i))
				if err != nil {
					return nil, nil, nil, err
				}
				cfg.DBs = append(cfg.DBs, db)
			}
		}
		sys, err := parallel.NewSystem(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return sys, sys.Close, sys.Quiesce, nil
	case analysis.Distributed:
		cfg := distributed.SystemConfig{
			Library: w.Library, Programs: w.Programs, Collector: col,
			Agents: w.Agents, Logf: quiet,
		}
		if dbDir != "" {
			for _, name := range w.Agents {
				db, err := openDB(name)
				if err != nil {
					return nil, nil, nil, err
				}
				cfg.AGDBs = append(cfg.AGDBs, db)
			}
		}
		sys, err := distributed.NewSystem(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return sys, sys.Close, sys.Quiesce, nil
	default:
		return nil, nil, nil, fmt.Errorf("experiment: unknown architecture %v", arch)
	}
}

// Throughput drives a sustained instance stream through one deployment and
// reports rate, goroutine and retained-memory figures. Unlike Run it keeps
// the system alive across rounds — the point is what the deployment retains
// after instances terminate, not per-run message counts.
func Throughput(opt ThroughputOptions) (*ThroughputResult, error) {
	if opt.Rounds <= 0 {
		opt.Rounds = 1
	}
	if opt.Instances <= 0 {
		opt.Instances = 5
	}
	if opt.Timeout == 0 {
		opt.Timeout = 60 * time.Second
	}
	w, err := workload.Generate(opt.Params, opt.Seed)
	if err != nil {
		return nil, err
	}
	target, closeFn, quiesce, err := buildTarget(opt.Arch, w, opt.Params.E, opt.DBDir)
	if err != nil {
		return nil, err
	}
	defer closeFn()

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapBefore := ms.HeapAlloc

	// Sample the goroutine count in the background while driving; the peak
	// bounds the cost of waiter/poller machinery under load.
	var peak atomic.Int64
	stop := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if n := int64(runtime.NumGoroutine()); n > peak.Load() {
					peak.Store(n)
				}
			}
		}
	}()

	res := &ThroughputResult{Arch: opt.Arch, Rounds: opt.Rounds}
	start := time.Now()
	for r := 0; r < opt.Rounds; r++ {
		dr, err := workload.DriveRange(target, w, r*opt.Instances+1, opt.Instances, opt.Timeout)
		if err != nil {
			close(stop)
			<-sampleDone
			return nil, fmt.Errorf("experiment: round %d: %w", r, err)
		}
		res.Instances += dr.Instances
		res.Committed += dr.Committed
		res.Aborted += dr.Aborted
	}
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.InstancesPerSec = float64(res.Instances) / s
	}
	close(stop)
	<-sampleDone
	res.PeakGoroutines = int(peak.Load())

	qctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	qerr := quiesce(qctx)
	cancel()
	if qerr != nil {
		return nil, fmt.Errorf("experiment: quiesce: %w", qerr)
	}
	// Two GC cycles: the first finalizes, the second collects what the
	// finalizers released; the remaining heap growth is what the deployment
	// actually retains per driven instance.
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > heapBefore {
		res.RetainedBytes = ms.HeapAlloc - heapBefore
	}
	return res, nil
}

// FormatThroughput renders one result as a log-friendly line.
func FormatThroughput(r *ThroughputResult) string {
	return fmt.Sprintf("%-12v rounds=%-3d inst=%-5d committed=%-5d aborted=%-4d %8.1f inst/s  peak_goroutines=%-4d retained=%s",
		r.Arch, r.Rounds, r.Instances, r.Committed, r.Aborted,
		r.InstancesPerSec, r.PeakGoroutines, formatBytes(r.RetainedBytes))
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
