// Package experiment runs measured reproductions of the paper's evaluation:
// it deploys a Table 3-parameterized workload on the centralized, parallel
// or distributed architecture, drives i instances of every schema through
// it (with deterministic failures, aborts and input changes), and reduces
// the metrics counters to the per-instance load and message rows of Tables
// 4-6, ready to print next to the analytic values.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/distributed"
	"crew/internal/metrics"
	"crew/internal/parallel"
	"crew/internal/transport"
	"crew/internal/workload"
)

// Options configures a measured run.
type Options struct {
	Arch analysis.Architecture
	// Params is the Table 3 parameter point.
	Params analysis.Parameters
	// Instances is the number of instances per schema driven through the
	// system (the paper's i, kept small for wall-clock reasons).
	Instances int
	Seed      int64
	Timeout   time.Duration
	// DisableOCR runs the Saga-style ablation (supported by central and
	// distributed).
	DisableOCR bool
	// ExplicitElection uses the StateInformation successor election in
	// distributed control (ablation).
	ExplicitElection bool
	// Backend selects the wire backend ("" or "inproc" = in-process
	// channels; "unix"/"tcp" carry every message across real sockets).
	// Runs are deterministic per backend; the workflow-item columns
	// (normal, failure, abort, input change) are identical on every
	// backend, while coordination counts may shift slightly because the
	// coordination protocol reacts to cross-link arrival interleaving,
	// which a socket changes.
	Backend string
}

// newWire builds the transport backend a Backend string names.
func newWire(backend string) (transport.Wire, error) {
	switch backend {
	case "", "inproc":
		return nil, nil
	default:
		return transport.NewSocketWire(backend, "")
	}
}

// Measured is the outcome of one run.
type Measured struct {
	Arch      analysis.Architecture
	Params    analysis.Parameters
	Instances int // total instances driven (c·i)
	Committed int
	Aborted   int
	Elapsed   time.Duration
	// MsgsPerInstance maps mechanism rows to measured messages/instance.
	MsgsPerInstance map[string]float64
	// LoadPerInstance maps mechanism rows to measured load units per
	// instance at the (average) scheduling node — the paper's "load at
	// engine" in units of l.
	LoadPerInstance map[string]float64
	// SchedulingNodes is the number of scheduling nodes (1, e, or z).
	SchedulingNodes int
}

var rowOf = map[metrics.Mechanism]string{
	metrics.Normal:       analysis.RowNormal,
	metrics.InputChange:  analysis.RowInputChange,
	metrics.Abort:        analysis.RowAbort,
	metrics.Failure:      analysis.RowFailure,
	metrics.Coordination: analysis.RowCoord,
}

// Run executes one measured experiment.
func Run(opt Options) (*Measured, error) {
	if opt.Instances <= 0 {
		opt.Instances = 5
	}
	if opt.Timeout == 0 {
		opt.Timeout = 60 * time.Second
	}
	w, err := workload.Generate(opt.Params, opt.Seed)
	if err != nil {
		return nil, err
	}
	col := metrics.NewCollector()
	quiet := func(string, ...any) {}
	wire, err := newWire(opt.Backend)
	if err != nil {
		return nil, err
	}

	var target workload.Target
	var closeFn func()
	var quiesce func(context.Context) error
	var schedNodes []string

	switch opt.Arch {
	case analysis.Central:
		sys, err := central.NewSystem(central.SystemConfig{
			Library:    w.Library,
			Programs:   w.Programs,
			Collector:  col,
			Agents:     w.Agents,
			DisableOCR: opt.DisableOCR,
			Wire:       wire,
			Logf:       quiet,
		})
		if err != nil {
			return nil, err
		}
		target, closeFn, quiesce = sys, sys.Close, sys.Quiesce
		schedNodes = []string{"engine"}
	case analysis.Parallel:
		sys, err := parallel.NewSystem(parallel.SystemConfig{
			Library:    w.Library,
			Programs:   w.Programs,
			Collector:  col,
			Engines:    opt.Params.E,
			Agents:     w.Agents,
			DisableOCR: opt.DisableOCR,
			Wire:       wire,
			Logf:       quiet,
		})
		if err != nil {
			return nil, err
		}
		target, closeFn, quiesce = sys, sys.Close, sys.Quiesce
		for i := 0; i < opt.Params.E; i++ {
			schedNodes = append(schedNodes, fmt.Sprintf("engine%d", i))
		}
	case analysis.Distributed:
		sys, err := distributed.NewSystem(distributed.SystemConfig{
			Library:          w.Library,
			Programs:         w.Programs,
			Collector:        col,
			Agents:           w.Agents,
			DisableOCR:       opt.DisableOCR,
			ExplicitElection: opt.ExplicitElection,
			Wire:             wire,
			Logf:             quiet,
		})
		if err != nil {
			return nil, err
		}
		target, closeFn, quiesce = sys, sys.Close, sys.Quiesce
		schedNodes = w.Agents
	default:
		return nil, fmt.Errorf("experiment: unknown architecture %v", opt.Arch)
	}
	defer closeFn()

	res, err := workload.Drive(target, w, opt.Instances, opt.Timeout)
	if err != nil {
		return nil, err
	}
	// Let trailing probe/ack messages land before reading counters: block
	// until the transport reports no message queued, undelivered or still
	// being handled, instead of sleeping a fixed grace period.
	qctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	qerr := quiesce(qctx)
	cancel()
	if qerr != nil {
		return nil, fmt.Errorf("experiment: quiesce: %w", qerr)
	}

	m := &Measured{
		Arch:            opt.Arch,
		Params:          opt.Params,
		Instances:       res.Instances,
		Committed:       res.Committed,
		Aborted:         res.Aborted,
		Elapsed:         res.Elapsed,
		MsgsPerInstance: make(map[string]float64, len(rowOf)),
		LoadPerInstance: make(map[string]float64, len(rowOf)),
		SchedulingNodes: len(schedNodes),
	}
	for mech, row := range rowOf {
		m.MsgsPerInstance[row] = metrics.PerInstance(col.Messages(mech), res.Instances)
		var load int64
		for _, n := range schedNodes {
			load += col.NodeLoad(n, mech)
		}
		perNode := float64(load) / float64(len(schedNodes))
		m.LoadPerInstance[row] = perNode / float64(res.Instances)
	}
	return m, nil
}

// CompareRow pairs an analytic expression with its measured counterpart.
type CompareRow struct {
	Row        string
	Expression string
	Analytic   float64
	Measured   float64
}

// Compare builds the measured-vs-analytic rows for one architecture.
func Compare(m *Measured) (loads, msgs []CompareRow) {
	for _, e := range analysis.LoadPerInstance(m.Arch, m.Params) {
		loads = append(loads, CompareRow{
			Row:        e.Row,
			Expression: e.Expression,
			Analytic:   e.Value,
			Measured:   m.LoadPerInstance[e.Row],
		})
	}
	for _, e := range analysis.MessagesPerInstance(m.Arch, m.Params) {
		msgs = append(msgs, CompareRow{
			Row:        e.Row,
			Expression: e.Expression,
			Analytic:   e.Value,
			Measured:   m.MsgsPerInstance[e.Row],
		})
	}
	return loads, msgs
}

// FormatComparison renders a paper-style table with analytic and measured
// columns.
func FormatComparison(title string, m *Measured) string {
	loads, msgs := Compare(m)
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (instances=%d committed=%d aborted=%d nodes=%d elapsed=%s)\n",
		title, m.Instances, m.Committed, m.Aborted, m.SchedulingNodes, m.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-24s %-24s %12s %12s\n", "Load at Node (·l)", "Expression", "Analytic", "Measured")
	for _, r := range loads {
		fmt.Fprintf(&b, "  %-24s %-24s %12.4f %12.4f\n", r.Row, r.Expression, r.Analytic, r.Measured)
	}
	fmt.Fprintf(&b, "  %-24s %-24s %12s %12s\n", "Physical Messages", "Expression", "Analytic", "Measured")
	for _, r := range msgs {
		fmt.Fprintf(&b, "  %-24s %-24s %12.4f %12.4f\n", r.Row, r.Expression, r.Analytic, r.Measured)
	}
	return b.String()
}

// MeasuredRanking ranks architectures by a measured quantity (for the
// measured Table 7).
type MeasuredRanking struct {
	Criterion analysis.Criterion
	Order     []analysis.Architecture
	Values    map[analysis.Architecture]float64
}

func criterionRows(c analysis.Criterion) []string {
	switch c {
	case analysis.NormalPlusFailures:
		return []string{analysis.RowNormal, analysis.RowInputChange, analysis.RowAbort, analysis.RowFailure}
	case analysis.NormalPlusCoordinated:
		return []string{analysis.RowNormal, analysis.RowCoord}
	default:
		return []string{analysis.RowNormal}
	}
}

// RankMeasured orders architectures by measured load or messages under a
// criterion.
func RankMeasured(results map[analysis.Architecture]*Measured, c analysis.Criterion, byLoad bool) MeasuredRanking {
	values := make(map[analysis.Architecture]float64, len(results))
	for arch, m := range results {
		var total float64
		for _, row := range criterionRows(c) {
			if byLoad {
				total += m.LoadPerInstance[row]
			} else {
				total += m.MsgsPerInstance[row]
			}
		}
		values[arch] = total
	}
	order := make([]analysis.Architecture, 0, len(results))
	for arch := range results {
		order = append(order, arch)
	}
	sort.Slice(order, func(i, j int) bool {
		if values[order[i]] != values[order[j]] {
			return values[order[i]] < values[order[j]]
		}
		return order[i] < order[j]
	})
	return MeasuredRanking{Criterion: c, Order: order, Values: values}
}
