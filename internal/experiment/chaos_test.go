package experiment

import (
	"fmt"
	"testing"
	"time"

	"crew/internal/analysis"
)

func chaosParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 2
	p.S = 8
	p.Z = 6
	p.E = 2
	p.A = 2
	p.F = 2
	p.R = 2
	p.W = 2
	p.ME, p.RO, p.RD = 1, 3, 1
	return p
}

// TestChaosAllArchitectures injects crash/recover cycles into every
// architecture's scheduling nodes and asserts the recovery contract: every
// instance still reaches a terminal status and the coordination invariants
// (mutex, relative order) hold.
func TestChaosAllArchitectures(t *testing.T) {
	for _, arch := range analysis.Architectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			m, _, err := RunChaos(ChaosOptions{
				Arch:      arch,
				Params:    chaosParams(),
				Instances: 3,
				Seed:      5,
				Timeout:   90 * time.Second,
				Crashes:   2,
				FirstAt:   30,
				Spacing:   60,
				Downtime:  25,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.CrashesApplied < 1 {
				t.Errorf("no crash was applied (traffic ended before the first trigger)")
			}
			if m.CrashesApplied != m.RecoveriesApplied {
				t.Errorf("crashes=%d but recoveries=%d", m.CrashesApplied, m.RecoveriesApplied)
			}
			if len(m.NonTerminal) > 0 {
				t.Errorf("non-terminal instances after recovery: %v", m.NonTerminal)
			}
			if got := m.Committed + m.Aborted; got != m.Instances {
				t.Errorf("committed+aborted = %d, want %d", got, m.Instances)
			}
			for _, v := range m.MutexViolations {
				t.Errorf("mutex violation: %s", v)
			}
			for _, v := range m.OrderViolations {
				t.Errorf("order violation: %s", v)
			}
		})
	}
}

// TestChaosDeterminism runs the same seeded chaos point twice and requires
// identical fault schedules and identical observable outcomes.
func TestChaosDeterminism(t *testing.T) {
	run := func() (string, string) {
		m, statuses, err := RunChaos(ChaosOptions{
			Arch:      analysis.Central,
			Params:    chaosParams(),
			Instances: 3,
			Seed:      7,
			Timeout:   90 * time.Second,
			Crashes:   2,
			FirstAt:   30,
			Spacing:   60,
			Downtime:  25,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.CrashesApplied < 1 {
			t.Fatal("no crash applied; the determinism check would be vacuous")
		}
		return m.PlanDigest(), m.OutcomeDigest(statuses)
	}
	plan1, out1 := run()
	plan2, out2 := run()
	if plan1 != plan2 {
		t.Errorf("fault schedules differ:\n  %s\n  %s", plan1, plan2)
	}
	if out1 != out2 {
		t.Errorf("outcomes differ:\n  %s\n  %s", out1, out2)
	}
}

// TestChaosWithLinkFaults layers periodic message drops (charged as
// retransmissions) and transient step failures on top of the crash plan.
func TestChaosWithLinkFaults(t *testing.T) {
	m, _, err := RunChaos(ChaosOptions{
		Arch:         analysis.Central,
		Params:       chaosParams(),
		Instances:    2,
		Seed:         11,
		Timeout:      90 * time.Second,
		Crashes:      1,
		FirstAt:      30,
		Spacing:      60,
		Downtime:     20,
		DropEvery:    17,
		StepFailRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Retransmits == 0 {
		t.Error("drop fault charged no retransmissions")
	}
	if len(m.NonTerminal) > 0 {
		t.Errorf("non-terminal instances: %v", m.NonTerminal)
	}
	if len(m.MutexViolations)+len(m.OrderViolations) > 0 {
		t.Errorf("invariant violations: %v %v", m.MutexViolations, m.OrderViolations)
	}
}

// TestChaosSeedStress soaks the distributed architecture — the most
// interleaving-sensitive one — across several fault-plan seeds. Run it under
// -race to keep the recovery paths honest.
func TestChaosSeedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("seed soak skipped in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m, _, err := RunChaos(ChaosOptions{
				Arch:      analysis.Distributed,
				Params:    chaosParams(),
				Instances: 3,
				Seed:      seed,
				Timeout:   90 * time.Second,
				Crashes:   3,
				FirstAt:   25,
				Spacing:   50,
				Downtime:  20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(m.NonTerminal) > 0 {
				t.Errorf("non-terminal instances: %v", m.NonTerminal)
			}
			if n := len(m.MutexViolations) + len(m.OrderViolations); n > 0 {
				t.Errorf("invariant violations: %v %v", m.MutexViolations, m.OrderViolations)
			}
		})
	}
}
