package experiment

import (
	"strings"
	"testing"
	"time"

	"crew/internal/analysis"
)

// fastParams is a small but mechanism-complete parameter point.
func fastParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 4
	p.S = 6
	p.E = 2
	p.Z = 6
	p.A = 2
	p.F = 2
	p.R = 2
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 0
	p.PF, p.PI, p.PA, p.PR = 0.1, 0.03, 0.03, 0.3
	return p
}

func runArch(t *testing.T, arch analysis.Architecture) *Measured {
	t.Helper()
	m, err := Run(Options{
		Arch:      arch,
		Params:    fastParams(),
		Instances: 4,
		Seed:      21,
		Timeout:   60 * time.Second,
	})
	if err != nil {
		t.Fatalf("%v: %v", arch, err)
	}
	return m
}

func TestRunAllArchitectures(t *testing.T) {
	results := make(map[analysis.Architecture]*Measured, 3)
	for _, arch := range analysis.Architectures {
		m := runArch(t, arch)
		results[arch] = m
		if m.Instances != 16 {
			t.Errorf("%v: instances = %d, want 16", arch, m.Instances)
		}
		if m.Committed+m.Aborted != m.Instances {
			t.Errorf("%v: outcomes don't add up: %+v", arch, m)
		}
		if m.MsgsPerInstance[analysis.RowNormal] <= 0 {
			t.Errorf("%v: no normal messages measured", arch)
		}
		if m.LoadPerInstance[analysis.RowNormal] <= 0 {
			t.Errorf("%v: no normal load measured", arch)
		}
	}

	// Shape checks from the paper's conclusions:
	// 1. Per-node load: Distributed < Parallel < Central.
	cl := results[analysis.Central].LoadPerInstance[analysis.RowNormal]
	pl := results[analysis.Parallel].LoadPerInstance[analysis.RowNormal]
	dl := results[analysis.Distributed].LoadPerInstance[analysis.RowNormal]
	if !(dl < pl && pl < cl) {
		t.Errorf("load ordering violated: central=%.3f parallel=%.3f distributed=%.3f", cl, pl, dl)
	}
	// 2. Normal-execution messages: Distributed < Central == Parallel-ish.
	cm := results[analysis.Central].MsgsPerInstance[analysis.RowNormal]
	dm := results[analysis.Distributed].MsgsPerInstance[analysis.RowNormal]
	if !(dm < cm) {
		t.Errorf("message ordering violated: central=%.2f distributed=%.2f", cm, dm)
	}
	// 3. Coordination messages: zero for central, positive elsewhere when
	// coordination specs exist.
	if results[analysis.Central].MsgsPerInstance[analysis.RowCoord] != 0 {
		t.Error("central coordination messages should be 0")
	}
	if results[analysis.Distributed].MsgsPerInstance[analysis.RowCoord] <= 0 {
		t.Error("distributed coordination messages should be positive")
	}
	if results[analysis.Parallel].MsgsPerInstance[analysis.RowCoord] <= 0 {
		t.Error("parallel coordination messages should be positive")
	}

	// Measured Table 7 rankings are well-formed and match the headline
	// analytic conclusions for load.
	for _, c := range analysis.Criteria {
		rk := RankMeasured(results, c, true)
		if len(rk.Order) != 3 || rk.Order[0] != analysis.Distributed {
			t.Errorf("measured load ranking for %v = %v, want Distributed first", c, rk.Order)
		}
	}
	rk := RankMeasured(results, analysis.NormalOnly, false)
	if rk.Order[0] != analysis.Distributed {
		t.Errorf("measured normal message ranking = %v, want Distributed first", rk.Order)
	}
}

func TestCompareAndFormat(t *testing.T) {
	m := runArch(t, analysis.Central)
	loads, msgs := Compare(m)
	if len(loads) != 5 || len(msgs) != 5 {
		t.Fatalf("Compare rows = %d/%d, want 5/5", len(loads), len(msgs))
	}
	out := FormatComparison("Table 4 (centralized)", m)
	for _, want := range []string{"Table 4", "Analytic", "Measured", "Normal Execution", "2·s·a"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatComparison missing %q:\n%s", want, out)
		}
	}
}

func TestRunDefaults(t *testing.T) {
	p := fastParams()
	m, err := Run(Options{Arch: analysis.Central, Params: p, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances != p.C*5 {
		t.Errorf("default instances = %d, want %d", m.Instances, p.C*5)
	}
}

func TestRunUnknownArch(t *testing.T) {
	if _, err := Run(Options{Arch: analysis.Architecture(9), Params: fastParams(), Instances: 1}); err == nil {
		t.Error("unknown architecture should fail")
	}
}

func TestOCRAblationReducesWork(t *testing.T) {
	p := fastParams()
	p.PF = 0.25 // plenty of rollbacks so OCR matters
	p.RO, p.ME, p.RD = 0, 0, 0
	base, err := Run(Options{Arch: analysis.Central, Params: p, Instances: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	saga, err := Run(Options{Arch: analysis.Central, Params: p, Instances: 6, Seed: 9, DisableOCR: true})
	if err != nil {
		t.Fatal(err)
	}
	// The OCR strategy must not do more failure-handling work than the
	// Saga-style fallback, and typically does strictly less.
	if base.MsgsPerInstance[analysis.RowFailure] > saga.MsgsPerInstance[analysis.RowFailure]+1e-9 {
		t.Errorf("OCR failure messages (%.3f) exceed Saga (%.3f)",
			base.MsgsPerInstance[analysis.RowFailure], saga.MsgsPerInstance[analysis.RowFailure])
	}
	if base.MsgsPerInstance[analysis.RowFailure] >= saga.MsgsPerInstance[analysis.RowFailure] {
		t.Logf("note: OCR did not strictly win at this point: ocr=%.3f saga=%.3f",
			base.MsgsPerInstance[analysis.RowFailure], saga.MsgsPerInstance[analysis.RowFailure])
	}
}

func TestElectionAblationCostsMessages(t *testing.T) {
	p := fastParams()
	p.PF, p.PI, p.PA = 0, 0, 0
	p.ME, p.RO, p.RD = 0, 0, 0
	base, err := Run(Options{Arch: analysis.Distributed, Params: p, Instances: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	probed, err := Run(Options{Arch: analysis.Distributed, Params: p, Instances: 4, Seed: 5, ExplicitElection: true})
	if err != nil {
		t.Fatal(err)
	}
	if probed.MsgsPerInstance[analysis.RowNormal] <= base.MsgsPerInstance[analysis.RowNormal] {
		t.Errorf("explicit election should cost extra messages: base=%.2f probed=%.2f",
			base.MsgsPerInstance[analysis.RowNormal], probed.MsgsPerInstance[analysis.RowNormal])
	}
}
