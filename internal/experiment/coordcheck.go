package experiment

import (
	"fmt"

	"crew/internal/model"
)

// CoordChecker is the exported face of the chaos coordination checker for
// deployments where execution events arrive over a wire — each agent process
// reports enter/exit around its step programs and the hub feeds them here —
// instead of through a registry wrapped in the same address space.
type CoordChecker struct {
	c *chaosChecker
}

// NewCoordChecker builds a checker over the library's coordination specs.
func NewCoordChecker(lib *model.Library) *CoordChecker {
	return &CoordChecker{c: newChaosChecker(lib)}
}

// Enter records a step program starting to execute for an instance.
func (k *CoordChecker) Enter(workflow, step string, instance int) {
	k.c.enter(model.StepRef{Workflow: workflow, Step: model.StepID(step)},
		fmt.Sprintf("%s.%d", workflow, instance))
}

// Exit records a step program finishing; completed distinguishes success from
// a logical failure (only completions advance relative-order clocks).
func (k *CoordChecker) Exit(workflow, step string, instance int, completed bool) {
	k.c.exit(model.StepRef{Workflow: workflow, Step: model.StepID(step)},
		fmt.Sprintf("%s.%d", workflow, instance), completed)
}

// Wrap instruments an in-process registry to report into this checker.
func (k *CoordChecker) Wrap(reg *model.Registry) *model.Registry { return k.c.Wrap(reg) }

// MutexViolations returns observed mutual-exclusion breaches.
func (k *CoordChecker) MutexViolations() []string { return k.c.MutexViolations() }

// OrderViolations returns observed relative-order inversions.
func (k *CoordChecker) OrderViolations() []string { return k.c.OrderViolations() }
