package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/distributed"
	"crew/internal/expr"
	"crew/internal/faults"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/parallel"
	"crew/internal/transport"
	"crew/internal/wfdb"
	"crew/internal/workload"
)

// ChaosOptions configures a fault-injected run: the Table 3 workload driven
// while a deterministic faults.Plan crashes and recovers scheduling nodes.
type ChaosOptions struct {
	Arch analysis.Architecture
	// Params is the workload parameter point. RunChaos forces pa = pi = 0:
	// user aborts and input changes race against commit, which would make the
	// per-instance outcome depend on goroutine scheduling and break the
	// determinism contract the chaos digest asserts.
	Params    analysis.Parameters
	Instances int
	Seed      int64
	Timeout   time.Duration
	// Crashes is the number of crash/recover cycles injected into the
	// architecture's scheduling nodes (the engine, the e engines, or the z
	// agents). FirstAt, Spacing and Downtime place the cycles on the
	// network's logical clock; zero values get defaults that land inside the
	// active phase of a small run.
	Crashes  int
	FirstAt  int64
	Spacing  int64
	Downtime int64
	// StepFailRate layers seeded transient step failures (faults.WrapFlaky)
	// on top of the workload's own pf failures.
	StepFailRate float64
	// DropEvery, if > 0, adds a wildcard link fault dropping every k-th
	// message (each drop charged as one retransmission).
	DropEvery  int
	DisableOCR bool
	// Backend selects the wire backend ("" or "inproc" = in-process
	// channels; "unix"/"tcp" run the crash/recover plan across real
	// sockets).
	Backend string
	// Logf receives system diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// ChaosMeasured is the outcome of one fault-injected run.
type ChaosMeasured struct {
	Arch      analysis.Architecture
	Plan      faults.Plan
	Instances int
	Committed int
	Aborted   int
	// NonTerminal lists instances that failed to reach a terminal status
	// (empty on a healthy run — the driver waits for every instance).
	NonTerminal []string
	// CrashesApplied / RecoveriesApplied count fault events actually applied
	// (a plan's tail may never trigger if traffic ends first, but every
	// applied crash is always paired with a recovery).
	CrashesApplied    int
	RecoveriesApplied int
	ForcedRecoveries  int
	Survived          int64
	Retransmits       int64
	RecoveryTicks     int64
	// MutexViolations / OrderViolations are coordination-invariant breaches
	// observed by the program-level checker (empty on a correct run).
	MutexViolations []string
	OrderViolations []string
	Elapsed         time.Duration
}

// PlanDigest is the canonical fault-schedule digest: a pure function of the
// seed and shape parameters, identical across same-seed runs.
func (m *ChaosMeasured) PlanDigest() string { return m.Plan.String() }

// OutcomeDigest summarizes the run's observable outcome for determinism
// checks: the per-instance terminal statuses plus the multiset of applied
// fault events. Application sequence numbers, forced-recovery flags and
// retransmission counts are excluded — they depend on message interleaving,
// not on what the run computed.
func (m *ChaosMeasured) OutcomeDigest(statuses map[string]wfdb.Status) string {
	keys := make([]string, 0, len(statuses))
	for k := range statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "plan{%s}", m.Plan.String())
	for _, k := range keys {
		fmt.Fprintf(&b, ";%s=%s", k, statuses[k])
	}
	fmt.Fprintf(&b, ";crashes=%d;recoveries=%d", m.CrashesApplied, m.RecoveriesApplied)
	return b.String()
}

// chaosSystem is the slice of the three System types the chaos harness
// needs: the driver face plus crash-restart hooks and status inspection.
type chaosSystem interface {
	workload.Target
	faults.NodeHooks
	Network() *transport.Network
	Quiesce(ctx context.Context) error
	Status(workflow string, id int) (wfdb.Status, bool)
	Close()
}

// RunChaos drives the workload while applying a deterministic crash/recover
// plan, and verifies the coordinated-execution invariants survive recovery.
// The returned ChaosMeasured carries the per-instance statuses via Statuses.
func RunChaos(opt ChaosOptions) (*ChaosMeasured, map[string]wfdb.Status, error) {
	if opt.Instances <= 0 {
		opt.Instances = 3
	}
	if opt.Timeout == 0 {
		opt.Timeout = 2 * time.Minute
	}
	if opt.FirstAt == 0 {
		opt.FirstAt = 40
	}
	if opt.Spacing == 0 {
		opt.Spacing = 80
	}
	if opt.Downtime == 0 {
		opt.Downtime = 30
	}
	p := opt.Params
	p.PA, p.PI = 0, 0

	w, err := workload.Generate(p, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	chk := newChaosChecker(w.Library)
	programs := chk.Wrap(w.Programs)
	if opt.StepFailRate > 0 {
		programs = faults.WrapFlaky(programs, opt.Seed, opt.StepFailRate)
	}

	col := metrics.NewCollector()
	quiet := opt.Logf
	if quiet == nil {
		quiet = func(string, ...any) {}
	}

	wire, err := newWire(opt.Backend)
	if err != nil {
		return nil, nil, err
	}
	var sys chaosSystem
	var targets []string
	switch opt.Arch {
	case analysis.Central:
		s, err := central.NewSystem(central.SystemConfig{
			Library:    w.Library,
			Programs:   programs,
			Collector:  col,
			DB:         wfdb.NewMemory(),
			Agents:     w.Agents,
			DisableOCR: opt.DisableOCR,
			Wire:       wire,
			Logf:       quiet,
		})
		if err != nil {
			return nil, nil, err
		}
		sys, targets = s, []string{"engine"}
	case analysis.Parallel:
		dbs := make([]*wfdb.DB, p.E)
		for i := range dbs {
			dbs[i] = wfdb.NewMemory()
			targets = append(targets, fmt.Sprintf("engine%d", i))
		}
		s, err := parallel.NewSystem(parallel.SystemConfig{
			Library:    w.Library,
			Programs:   programs,
			Collector:  col,
			Engines:    p.E,
			Agents:     w.Agents,
			DBs:        dbs,
			DisableOCR: opt.DisableOCR,
			Wire:       wire,
			Logf:       quiet,
		})
		if err != nil {
			return nil, nil, err
		}
		sys = s
	case analysis.Distributed:
		s, err := distributed.NewSystem(distributed.SystemConfig{
			Library:    w.Library,
			Programs:   programs,
			Collector:  col,
			Agents:     w.Agents,
			DisableOCR: opt.DisableOCR,
			Wire:       wire,
			Logf:       quiet,
		})
		if err != nil {
			return nil, nil, err
		}
		sys, targets = s, w.Agents
	default:
		return nil, nil, fmt.Errorf("experiment: unknown architecture %v", opt.Arch)
	}
	defer sys.Close()

	plan := faults.ChaosPlan(opt.Seed, targets, opt.Crashes, opt.FirstAt, opt.Spacing, opt.Downtime)
	if opt.DropEvery > 0 {
		plan.Links = append(plan.Links, faults.LinkFault{DropEvery: opt.DropEvery, Retransmits: 1})
	}
	plan.StepFailRate = opt.StepFailRate
	inj, err := faults.NewInjector(plan, col)
	if err != nil {
		return nil, nil, err
	}
	inj.SetHooks(sys)
	inj.Attach(sys.Network())
	defer inj.Stop()

	res, err := workload.Drive(sys, w, opt.Instances, opt.Timeout)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: chaos drive (%v): %w", opt.Arch, err)
	}
	qctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	qerr := sys.Quiesce(qctx)
	cancel()
	if qerr != nil {
		return nil, nil, fmt.Errorf("experiment: chaos quiesce (%v): %w", opt.Arch, qerr)
	}

	m := &ChaosMeasured{
		Arch:          opt.Arch,
		Plan:          inj.Plan(),
		Instances:     res.Instances,
		Committed:     res.Committed,
		Aborted:       res.Aborted,
		Survived:      col.Survived(),
		Retransmits:   col.Retransmits(),
		RecoveryTicks: col.RecoveryTicks(),
		Elapsed:       res.Elapsed,
	}
	for _, ae := range inj.Applied() {
		switch ae.Action {
		case faults.Crash:
			m.CrashesApplied++
		case faults.Recover:
			m.RecoveriesApplied++
			if ae.Forced {
				m.ForcedRecoveries++
			}
		}
	}

	statuses := make(map[string]wfdb.Status, res.Instances)
	for _, wf := range w.Library.Names() {
		for i := 1; i <= opt.Instances; i++ {
			key := fmt.Sprintf("%s.%d", wf, i)
			st, ok := sys.Status(wf, i)
			statuses[key] = st
			if !ok || (st != wfdb.Committed && st != wfdb.Aborted) {
				m.NonTerminal = append(m.NonTerminal, key)
			}
		}
	}
	sort.Strings(m.NonTerminal)
	m.MutexViolations = chk.MutexViolations()
	m.OrderViolations = chk.OrderViolations()
	return m, statuses, nil
}

// FormatChaos renders one chaos point as a report line.
func FormatChaos(m *ChaosMeasured) string {
	invariants := "ok"
	if n := len(m.MutexViolations) + len(m.OrderViolations) + len(m.NonTerminal); n > 0 {
		invariants = fmt.Sprintf("VIOLATED(%d)", n)
	}
	return fmt.Sprintf(
		"%-12v crashes=%d/%d forced=%d survived=%-3d committed=%-3d aborted=%-3d retrans=%-4d downtime=%-5d invariants=%s",
		m.Arch, m.CrashesApplied, m.RecoveriesApplied, m.ForcedRecoveries, m.Survived,
		m.Committed, m.Aborted, m.Retransmits, m.RecoveryTicks, invariants)
}

// ---------------------------------------------------------------------------
// Coordination-invariant checker

// chaosChecker observes actual step-program executions (by wrapping the
// program registry) and verifies the library's coordination invariants from
// the outside, independently of the machinery that enforces them:
//
//   - Mutex: no two instances ever execute steps of the same mutex spec
//     concurrently.
//   - Relative order: for every relative-order spec, the order in which
//     instances first complete their pair-k steps is the same for every
//     enforced pair (k >= 1). First completions are compared — a rollback
//     re-execution does not reorder a pair retroactively — and pair 0 is
//     exempt because it *establishes* the order rather than obeying one.
type chaosChecker struct {
	specs []model.CoordSpec

	mu    sync.Mutex
	clock int64
	// active tracks, per mutex spec index, the instances currently inside a
	// step of the spec.
	active map[int]map[string]bool
	// firstDone records, per relative-order spec index and pair index, the
	// logical time each instance first completed its pair member.
	firstDone  map[int]map[int]map[string]int64
	mutexViols []string
}

func newChaosChecker(lib *model.Library) *chaosChecker {
	c := &chaosChecker{
		specs:     append([]model.CoordSpec(nil), lib.Coord...),
		active:    make(map[int]map[string]bool),
		firstDone: make(map[int]map[int]map[string]int64),
	}
	for i, spec := range c.specs {
		switch spec.Kind {
		case model.Mutex:
			c.active[i] = make(map[string]bool)
		case model.RelativeOrder:
			c.firstDone[i] = make(map[int]map[string]int64)
		}
	}
	return c
}

// Wrap returns a registry in which every program additionally reports its
// execution window and completion to the checker.
func (c *chaosChecker) Wrap(reg *model.Registry) *model.Registry {
	out := model.NewRegistry()
	for _, name := range reg.Names() {
		p, _ := reg.Lookup(name)
		out.Register(name, c.observe(p))
	}
	return out
}

func (c *chaosChecker) observe(inner model.Program) model.Program {
	return func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		exec := ctx.Mode == model.ModeExecute || ctx.Mode == model.ModeIncremental
		ref := model.StepRef{Workflow: ctx.Workflow, Step: ctx.Step}
		inst := fmt.Sprintf("%s.%d", ctx.Workflow, ctx.Instance)
		if exec {
			c.enter(ref, inst)
		}
		out, err := inner(ctx)
		if exec {
			c.exit(ref, inst, err == nil)
		}
		return out, err
	}
}

func (c *chaosChecker) enter(ref model.StepRef, inst string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, spec := range c.specs {
		if spec.Kind != model.Mutex || !c.mentionsMutex(i, ref) {
			continue
		}
		for other := range c.active[i] {
			if other != inst {
				c.mutexViols = append(c.mutexViols, fmt.Sprintf(
					"mutex %s: %s entered %s while %s inside", spec.Name, inst, ref, other))
			}
		}
		c.active[i][inst] = true
	}
}

func (c *chaosChecker) exit(ref model.StepRef, inst string, completed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, spec := range c.specs {
		if spec.Kind == model.Mutex && c.mentionsMutex(i, ref) {
			delete(c.active[i], inst)
		}
		if spec.Kind == model.RelativeOrder && completed {
			for k, pair := range spec.Pairs {
				if pair.A != ref && pair.B != ref {
					continue
				}
				c.clock++
				if c.firstDone[i][k] == nil {
					c.firstDone[i][k] = make(map[string]int64)
				}
				if _, seen := c.firstDone[i][k][inst]; !seen {
					c.firstDone[i][k][inst] = c.clock
				}
			}
		}
	}
}

func (c *chaosChecker) mentionsMutex(i int, ref model.StepRef) bool {
	for _, r := range c.specs[i].MutexSteps {
		if r == ref {
			return true
		}
	}
	return false
}

// MutexViolations returns the observed mutual-exclusion breaches.
func (c *chaosChecker) MutexViolations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.mutexViols...)
}

// OrderViolations cross-checks first-completion orders between every pair of
// enforced conflict pairs of every relative-order spec.
func (c *chaosChecker) OrderViolations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var viols []string
	for i, spec := range c.specs {
		if spec.Kind != model.RelativeOrder {
			continue
		}
		for k := 1; k < len(spec.Pairs); k++ {
			for l := k + 1; l < len(spec.Pairs); l++ {
				tk, tl := c.firstDone[i][k], c.firstDone[i][l]
				insts := make([]string, 0, len(tk))
				for inst := range tk {
					if _, ok := tl[inst]; ok {
						insts = append(insts, inst)
					}
				}
				sort.Strings(insts)
				for a := 0; a < len(insts); a++ {
					for b := a + 1; b < len(insts); b++ {
						x, y := insts[a], insts[b]
						if (tk[x] < tk[y]) != (tl[x] < tl[y]) {
							viols = append(viols, fmt.Sprintf(
								"order %s: %s and %s completed pair %d and pair %d in opposite orders",
								spec.Name, x, y, k, l))
						}
					}
				}
			}
		}
	}
	return viols
}
