package nav

import (
	"testing"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/rules"
	"crew/internal/wfdb"
)

// fig3 builds S1 -> S2 -> (S3 -> S4 | S6) -> S5 (XOR join).
func fig3(t *testing.T) *model.Schema {
	t.Helper()
	return model.NewSchema("Fig3", "I1").
		Step("S1", "p1").
		Step("S2", "p2", model.WithOutputs("O1")).
		Step("S3", "p3", model.WithCompensation("c3")).
		Step("S4", "p4").
		Step("S6", "p6").
		Step("S5", "p5", model.WithJoin(model.JoinAny)).
		Seq("S1", "S2").
		CondArc("S2", "S3", "S2.O1 > 0").
		CondArc("S2", "S6", "S2.O1 <= 0").
		Arc("S3", "S4").
		Arc("S4", "S5").
		Arc("S6", "S5").
		MustBuild()
}

func parallel(t *testing.T) *model.Schema {
	t.Helper()
	return model.NewSchema("Par").
		Step("A", "p").
		Step("B", "p").
		Step("C", "p").
		Arc("A", "B").
		Arc("A", "C").
		MustBuild()
}

func TestPotentialTerminalsConservativeBeforeBranch(t *testing.T) {
	s := fig3(t)
	ins := wfdb.NewInstance("Fig3", 1, nil)
	terms := PotentialTerminals(s, ins)
	if len(terms) != 1 || terms[0] != "S5" {
		t.Errorf("terminals = %v, want [S5]", terms)
	}
	if ShouldCommit(s, ins) {
		t.Error("fresh instance should not commit")
	}
}

func TestPotentialTerminalsPrunesUntakenBranch(t *testing.T) {
	s := parallel(t)
	ins := wfdb.NewInstance("Par", 1, nil)
	// Both B and C are terminals; before A executes both are potential.
	if got := PotentialTerminals(s, ins); len(got) != 2 {
		t.Errorf("terminals = %v", got)
	}
	ins.RecordDone("A", nil)
	ins.RecordDone("B", nil)
	if ShouldCommit(s, ins) {
		t.Error("parallel workflow must wait for both branches")
	}
	ins.RecordDone("C", nil)
	if !ShouldCommit(s, ins) {
		t.Error("both branches done: should commit")
	}
}

func TestShouldCommitIfThenElse(t *testing.T) {
	s := fig3(t)
	ins := wfdb.NewInstance("Fig3", 1, nil)
	ins.RecordDone("S1", nil)
	ins.RecordDone("S2", map[string]expr.Value{"O1": expr.Num(5)}) // top branch
	ins.RecordDone("S3", nil)
	ins.RecordDone("S4", nil)
	if ShouldCommit(s, ins) {
		t.Error("should not commit before S5")
	}
	ins.RecordDone("S5", nil)
	if !ShouldCommit(s, ins) {
		t.Error("top branch complete: should commit (S6 unreachable)")
	}
}

func TestShouldCommitRespectsStatus(t *testing.T) {
	s := parallel(t)
	ins := wfdb.NewInstance("Par", 1, nil)
	for _, id := range []model.StepID{"A", "B", "C"} {
		ins.RecordDone(id, nil)
	}
	ins.Status = wfdb.Aborted
	if ShouldCommit(s, ins) {
		t.Error("aborted instance must not commit")
	}
}

func TestInvalidationSet(t *testing.T) {
	s := fig3(t)
	got := InvalidationSet(s, "S2")
	want := map[model.StepID]bool{"S3": true, "S4": true, "S5": true, "S6": true}
	if len(got) != len(want) {
		t.Fatalf("InvalidationSet = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected member %s", id)
		}
	}
}

func TestResetStepsAndApplyRollback(t *testing.T) {
	s := fig3(t)
	ins := wfdb.NewInstance("Fig3", 1, nil)
	eng := rules.NewEngine()
	rules.InstallSchemaRules(eng, s)

	ins.Events.Post(event.WorkflowStartName)
	ins.RecordDone("S1", nil)
	ins.RecordDone("S2", map[string]expr.Value{"O1": expr.Num(5)})
	ins.RecordDone("S3", nil)
	ins.RecordFailed("S4")

	affected, invalidated := ApplyRollback(s, ins, eng, "S2")
	if len(affected) != 4 {
		t.Errorf("affected = %v", affected)
	}
	// Invalidated: S3.done, S4.fail, S2.done => 3 events.
	if invalidated != 3 {
		t.Errorf("invalidated = %d, want 3", invalidated)
	}
	if ins.Events.Has(event.DoneName("S2")) || ins.Events.Has(event.DoneName("S3")) || ins.Events.Has(event.FailName("S4")) {
		t.Error("events not invalidated")
	}
	if ins.StepRec("S3").Status != wfdb.StepPending {
		t.Error("S3 status not reset")
	}
	// Previous execution info retained for OCR.
	if ins.StepRec("S2").Outputs == nil {
		t.Error("rollback must retain previous outputs for OCR")
	}
	// Rules re-armed: S1.done still valid so S2's rule can refire after
	// S1.done recount — simulate re-execution of S2 via re-posted event.
	ins.Events.Post(event.DoneName("S1"))
	fired, err := eng.Evaluate(ins.Events, ins.Env())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range fired {
		if r.Action.Step == "S2" {
			found = true
		}
	}
	if !found {
		t.Errorf("S2 rule did not refire after rollback: %v", fired)
	}
}

func TestApplyLoopBack(t *testing.T) {
	s := model.NewSchema("Loop").
		Step("A", "p").
		Step("B", "p", model.WithOutputs("O1")).
		Step("C", "p").
		Seq("A", "B", "C").
		LoopArc("B", "B", "B.O1 < 3").
		MustBuild()
	ins := wfdb.NewInstance("Loop", 1, nil)
	ins.RecordDone("A", nil)
	ins.RecordDone("B", map[string]expr.Value{"O1": expr.Num(1)})
	body := ApplyLoopBack(s, ins, nil, "B", "B")
	if len(body) != 1 || body[0] != "B" {
		t.Errorf("body = %v", body)
	}
	if ins.Events.Has(event.DoneName("B")) {
		t.Error("loop body event not invalidated")
	}
	if ins.Events.Count(event.DoneName("B")) != 1 {
		t.Error("loop body count lost")
	}
	if !ins.Events.Has(event.DoneName("A")) {
		t.Error("steps outside body must keep their events")
	}
}

func TestElectAgentDeterministicAndAliveAware(t *testing.T) {
	eligible := []string{"a3", "a1", "a2"}
	got1 := ElectAgent(eligible, "WF", 7, "S1", nil)
	got2 := ElectAgent([]string{"a1", "a2", "a3"}, "WF", 7, "S1", nil)
	if got1 == "" || got1 != got2 {
		t.Errorf("election not deterministic: %q vs %q", got1, got2)
	}
	// Different step can elect a different agent; at minimum it stays valid.
	other := ElectAgent(eligible, "WF", 7, "S2", nil)
	valid := map[string]bool{"a1": true, "a2": true, "a3": true}
	if !valid[other] {
		t.Errorf("elected unknown agent %q", other)
	}
	// Dead agents are skipped.
	alive := func(a string) bool { return a != got1 }
	alt := ElectAgent(eligible, "WF", 7, "S1", alive)
	if alt == got1 || alt == "" {
		t.Errorf("election ignored alive predicate: %q", alt)
	}
	// No candidates.
	if got := ElectAgent(eligible, "WF", 7, "S1", func(string) bool { return false }); got != "" {
		t.Errorf("election with no alive agents = %q", got)
	}
	if got := ElectAgent(nil, "WF", 7, "S1", nil); got != "" {
		t.Errorf("election with no eligible agents = %q", got)
	}
}

func TestElectAgentSpreadsLoad(t *testing.T) {
	eligible := []string{"a1", "a2", "a3", "a4"}
	counts := make(map[string]int)
	for i := 0; i < 400; i++ {
		counts[ElectAgent(eligible, "WF", i, "S1", nil)]++
	}
	for _, a := range eligible {
		if counts[a] == 0 {
			t.Errorf("agent %s never elected: %v", a, counts)
		}
	}
}

func TestActiveBranchTargets(t *testing.T) {
	s := fig3(t)
	ins := wfdb.NewInstance("Fig3", 1, nil)
	ins.RecordDone("S2", map[string]expr.Value{"O1": expr.Num(5)})
	got := ActiveBranchTargets(s, ins, "S2")
	if len(got) != 1 || got[0] != "S3" {
		t.Errorf("targets = %v, want [S3]", got)
	}
	ins2 := wfdb.NewInstance("Fig3", 2, nil)
	ins2.RecordDone("S2", map[string]expr.Value{"O1": expr.Num(-1)})
	got = ActiveBranchTargets(s, ins2, "S2")
	if len(got) != 1 || got[0] != "S6" {
		t.Errorf("targets = %v, want [S6]", got)
	}
	// Unconditional arcs: all targets.
	p := parallel(t)
	insP := wfdb.NewInstance("Par", 1, nil)
	insP.RecordDone("A", nil)
	if got := ActiveBranchTargets(p, insP, "A"); len(got) != 2 {
		t.Errorf("parallel targets = %v", got)
	}
	// Unevaluable condition: branch not taken.
	insU := wfdb.NewInstance("Fig3", 3, nil)
	insU.RecordDone("S2", nil) // no O1 output: conditions compare null
	if got := ActiveBranchTargets(s, insU, "S2"); len(got) != 0 {
		t.Errorf("unevaluable condition targets = %v", got)
	}
}

func TestAbandonedBranchSteps(t *testing.T) {
	s := fig3(t)
	ins := wfdb.NewInstance("Fig3", 1, nil)
	ins.RecordDone("S1", nil)
	ins.RecordDone("S2", map[string]expr.Value{"O1": expr.Num(-1)}) // now bottom branch
	ins.RecordDone("S3", nil)                                       // executed on a previous pass
	got := AbandonedBranchSteps(s, ins, "S2", []model.StepID{"S6"})
	if len(got) != 1 || got[0] != "S3" {
		t.Errorf("abandoned = %v, want [S3]", got)
	}
	// S5 is shared via the confluence: never abandoned.
	ins.RecordDone("S5", nil)
	got = AbandonedBranchSteps(s, ins, "S2", []model.StepID{"S6"})
	for _, id := range got {
		if id == "S5" {
			t.Error("confluence step wrongly marked abandoned")
		}
	}
}
