// Package nav implements workflow navigation logic shared by the
// centralized, parallel and distributed control architectures: determining
// which terminal steps are still potentially reachable (the commit
// condition), invalidating events and re-arming rules when a workflow is
// rolled back or a loop iterates, and the deterministic successor-agent
// election used in distributed control.
package nav

import (
	"hash/fnv"
	"sort"
	"sync"

	"crew/internal/model"
	"crew/internal/rules"
	"crew/internal/wfdb"
)

// ptScratch pools the reachability working set of PotentialTerminals, which
// runs on every commit check of every engine round — the hottest navigation
// query in all three architectures.
var ptScratch = sync.Pool{New: func() any { return new(ptState) }}

type ptState struct {
	reach    map[model.StepID]bool
	frontier []model.StepID
}

// PotentialTerminals returns the terminal steps of the schema that are still
// potentially reachable given the instance's current state:
//
//   - successors of an executed step are reachable along arcs whose
//     condition holds (or is absent);
//   - successors of a not-yet-executed reachable step are all reachable
//     (conservative: the future is unknown, so commit must wait);
//   - arcs whose condition cannot be evaluated yet count as reachable.
//
// A workflow is committed when every potentially reachable terminal step has
// executed — the coordination agent's commit test.
func PotentialTerminals(s *model.Schema, ins *wfdb.Instance) []model.StepID {
	env := ins.Env()
	sc := ptScratch.Get().(*ptState)
	if sc.reach == nil {
		sc.reach = make(map[model.StepID]bool, len(s.Order))
	} else {
		clear(sc.reach)
	}
	reach, frontier := sc.reach, sc.frontier[:0]
	for _, id := range s.StartSteps() {
		reach[id] = true
		frontier = append(frontier, id)
	}
	for i := 0; i < len(frontier); i++ {
		cur := frontier[i]
		executed := ins.Executed(cur)
		for _, a := range s.ControlSuccessors(cur) {
			include := true
			if executed && a.Cond != "" {
				e, err := s.CondExpr(a.Cond)
				if err == nil {
					if ok, evalErr := e.EvalBool(env); evalErr == nil {
						include = ok
					}
				}
			}
			if include && !reach[a.To] {
				reach[a.To] = true
				frontier = append(frontier, a.To)
			}
		}
	}
	var out []model.StepID
	for _, id := range s.TerminalSteps() {
		if reach[id] {
			out = append(out, id)
		}
	}
	sc.frontier = frontier
	ptScratch.Put(sc)
	return out
}

// ShouldCommit reports whether the instance satisfies the commit condition:
// it is still running and every potentially reachable terminal step has
// executed.
func ShouldCommit(s *model.Schema, ins *wfdb.Instance) bool {
	if ins.Status != wfdb.Running {
		return false
	}
	terms := PotentialTerminals(s, ins)
	if len(terms) == 0 {
		return false
	}
	for _, id := range terms {
		if !ins.Executed(id) {
			return false
		}
	}
	return true
}

// InvalidationSet returns the steps whose events a rollback to origin must
// invalidate: every (non-loop) control descendant of origin. The origin
// itself is re-executed through the OCR path, so its done event is also
// invalidated when reset is requested by the caller.
func InvalidationSet(s *model.Schema, origin model.StepID) []model.StepID {
	desc := s.Descendants(origin)
	var out []model.StepID
	for _, id := range s.Order {
		if desc[id] {
			out = append(out, id)
		}
	}
	return out
}

// ResetSteps invalidates the step.done and step.fail events of the given
// steps, re-arms their execution rules, and resets their step-table status to
// pending while retaining the previous inputs/outputs (which the OCR strategy
// needs). It returns the number of events invalidated — the paper's v
// parameter counts these invalidations.
func ResetSteps(ins *wfdb.Instance, eng *rules.Engine, steps []model.StepID) int {
	n := 0
	for _, id := range steps {
		n += ins.ResetStepEvents(id)
		if r := ins.Steps[id]; r != nil && (r.Status == wfdb.StepDone || r.Status == wfdb.StepFailed || r.Status == wfdb.StepExecuting) {
			r.Status = wfdb.StepPending
		}
		if eng != nil {
			eng.RearmExecRules(id)
		}
	}
	return n
}

// ApplyRollback performs the state-level part of a partial rollback to
// origin: descendants of origin are reset (events invalidated, rules
// re-armed, statuses cleared) and the origin's own done/fail events are
// invalidated so its rule can re-fire. It returns the steps that were reset
// (the "affected threads") and the number of invalidated events.
func ApplyRollback(s *model.Schema, ins *wfdb.Instance, eng *rules.Engine, origin model.StepID) (affected []model.StepID, invalidated int) {
	affected = InvalidationSet(s, origin)
	invalidated = ResetSteps(ins, eng, affected)
	invalidated += ResetSteps(ins, eng, []model.StepID{origin})
	return affected, invalidated
}

// ApplyLoopBack resets the loop body (head..tail inclusive) for another
// iteration and returns the body steps. Unlike a rollback, a loop iteration
// is a fresh execution, not an OCR revisit: previous results are discarded
// (HasResult cleared) so every iteration runs the body programs anew. Data
// items from the last iteration stay in the data table until overwritten.
func ApplyLoopBack(s *model.Schema, ins *wfdb.Instance, eng *rules.Engine, head, tail model.StepID) []model.StepID {
	body := s.LoopBody(head, tail)
	ResetSteps(ins, eng, body)
	for _, id := range body {
		if r := ins.Steps[id]; r != nil {
			r.HasResult = false
		}
	}
	return body
}

// ElectAgent deterministically picks the agent that will execute a step from
// the step's eligible agents, restricted to those the alive predicate admits
// (nil means all alive). Every node computes the same choice from the same
// inputs, which implements the paper's successor "leader election" without
// extra messages: all eligible successor agents receive the workflow packet
// and each can tell locally whether it is the executor.
//
// It returns "" when no eligible agent is alive.
func ElectAgent(eligible []string, workflow string, instance int, step model.StepID, alive func(string) bool) string {
	cands := make([]string, 0, len(eligible))
	for _, a := range eligible {
		if alive == nil || alive(a) {
			cands = append(cands, a)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	sort.Strings(cands)
	h := fnv.New32a()
	h.Write([]byte(workflow))
	h.Write([]byte{0})
	h.Write([]byte{byte(instance), byte(instance >> 8), byte(instance >> 16), byte(instance >> 24)})
	h.Write([]byte{0})
	h.Write([]byte(step))
	return cands[int(h.Sum32())%len(cands)]
}

// ActiveBranchTargets evaluates the outgoing non-loop control arcs of a
// completed step against the instance data and returns the successor steps
// whose arc condition holds (all successors for unconditional arcs).
// Conditions that fail to evaluate are treated as not taken.
func ActiveBranchTargets(s *model.Schema, ins *wfdb.Instance, from model.StepID) []model.StepID {
	env := ins.Env()
	var out []model.StepID
	for _, a := range s.ControlSuccessors(from) {
		if a.Cond == "" {
			out = append(out, a.To)
			continue
		}
		e, err := s.CondExpr(a.Cond)
		if err != nil {
			continue
		}
		if ok, err := e.EvalBool(env); err == nil && ok {
			out = append(out, a.To)
		}
	}
	return out
}

// AbandonedBranchSteps returns the steps with uncompensated results that lie
// on branches out of a branching step other than the ones now taken — the
// steps whose effects must be compensated when re-execution takes a
// different branch (paper's Figure 3: S3 must be compensated when the bottom
// branch is taken). The check uses HasResult rather than status because a
// rollback resets statuses while retaining results. Steps reachable from a
// taken branch are excluded (shared suffixes after a confluence are still
// valid).
func AbandonedBranchSteps(s *model.Schema, ins *wfdb.Instance, branch model.StepID, taken []model.StepID) []model.StepID {
	takenSet := make(map[model.StepID]bool)
	for _, id := range taken {
		takenSet[id] = true
		for d := range s.Descendants(id) {
			takenSet[d] = true
		}
	}
	hasResult := func(id model.StepID) bool {
		r := ins.Steps[id]
		return r != nil && r.HasResult
	}
	var out []model.StepID
	seen := make(map[model.StepID]bool)
	for _, a := range s.ControlSuccessors(branch) {
		if takenSet[a.To] {
			continue
		}
		for _, id := range append([]model.StepID{a.To}, setToOrdered(s, s.Descendants(a.To))...) {
			if !takenSet[id] && !seen[id] && hasResult(id) {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

func setToOrdered(s *model.Schema, set map[model.StepID]bool) []model.StepID {
	var out []model.StepID
	for _, id := range s.Order {
		if set[id] {
			out = append(out, id)
		}
	}
	return out
}
