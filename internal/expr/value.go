// Package expr implements the typed values and the condition-expression
// language used throughout the CREW reproduction: control-arc conditions on
// if-then-else branches, rule preconditions, loop exit conditions, and the
// compensation/re-execution conditions of the OCR strategy all compile to
// expressions over workflow data items such as WF.I1 or S2.O1 (the naming
// convention shown in the paper's Figure 7 workflow packet).
package expr

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind int

const (
	// KindNull is the zero Value, used for absent data items.
	KindNull Kind = iota
	// KindNum is a float64 number.
	KindNum
	// KindStr is a string.
	KindStr
	// KindBool is a boolean.
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindNum:
		return "num"
	case KindStr:
		return "str"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed workflow data value. The zero Value is null.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// Num returns a numeric value.
func Num(f float64) Value { return Value{kind: KindNum, num: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindStr, str: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsNum returns the numeric content; ok is false if the value is not a number.
func (v Value) AsNum() (f float64, ok bool) { return v.num, v.kind == KindNum }

// AsStr returns the string content; ok is false if the value is not a string.
func (v Value) AsStr() (s string, ok bool) { return v.str, v.kind == KindStr }

// AsBool returns the boolean content; ok is false if the value is not a bool.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// Truthy converts a value to a boolean for use in a condition position:
// booleans are themselves, numbers are true when non-zero, strings when
// non-empty, and null is false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNum:
		return v.num != 0
	case KindStr:
		return v.str != ""
	default:
		return false
	}
}

// Equal reports deep equality; values of different kinds are never equal.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNum:
		return v.num == o.num
	case KindStr:
		return v.str == o.str
	case KindBool:
		return v.b == o.b
	default: // null
		return true
	}
}

// String renders the value for packets, logs and the crewrun CLI.
func (v Value) String() string {
	switch v.kind {
	case KindNum:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindStr:
		return v.str
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "null"
	}
}

// GoString renders an unambiguous literal form (strings quoted).
func (v Value) GoString() string {
	if v.kind == KindStr {
		return strconv.Quote(v.str)
	}
	return v.String()
}

// Env resolves data-item references during expression evaluation.
type Env interface {
	// Lookup returns the value bound to the given dotted name, and whether
	// the name is bound at all.
	Lookup(name string) (Value, bool)
}

// MapEnv is the common Env implementation: a plain map from dotted names to
// values.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// ChainEnv consults each environment in order and returns the first binding.
// It is used by OCR condition evaluation, where "prev." names resolve in the
// previous-execution environment layered under the current data table.
type ChainEnv []Env

// Lookup implements Env.
func (c ChainEnv) Lookup(name string) (Value, bool) {
	for _, e := range c {
		if e == nil {
			continue
		}
		if v, ok := e.Lookup(name); ok {
			return v, true
		}
	}
	return Value{}, false
}
