package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a compiled expression ready for repeated evaluation.
type Expr struct {
	src  string
	root node
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// String returns the original expression text.
func (e *Expr) String() string { return e.src }

// Refs returns the distinct data-item names referenced by the expression, in
// first-occurrence order. The rule engine uses this to decide which data
// arrivals can change a pending rule's precondition.
func (e *Expr) Refs() []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(n node)
	walk = func(n node) {
		switch t := n.(type) {
		case refNode:
			if !seen[t.name] {
				seen[t.name] = true
				out = append(out, t.name)
			}
		case unaryNode:
			walk(t.operand)
		case binaryNode:
			walk(t.left)
			walk(t.right)
		case callNode:
			for _, a := range t.args {
				walk(a)
			}
		}
	}
	walk(e.root)
	return out
}

// Eval evaluates the expression against env.
func (e *Expr) Eval(env Env) (Value, error) {
	return e.root.eval(env)
}

// EvalBool evaluates the expression and coerces the result to a boolean via
// Truthy. This is the entry point for conditions.
func (e *Expr) EvalBool(env Env) (bool, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// MustCompile is like Compile but panics on error; for statically known
// expressions in tests and examples.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Compile parses src into an Expr. An empty or all-blank source compiles to
// the constant true, which is the "no condition" case on control arcs.
func Compile(src string) (*Expr, error) {
	if strings.TrimSpace(src) == "" {
		return &Expr{src: src, root: litNode{Bool(true)}}, nil
	}
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d in %q", p.tok.text, p.tok.pos, src)
	}
	return &Expr{src: src, root: root}, nil
}

// ---------------------------------------------------------------------------
// AST

type node interface {
	eval(Env) (Value, error)
}

type litNode struct{ v Value }

func (n litNode) eval(Env) (Value, error) { return n.v, nil }

type refNode struct{ name string }

func (n refNode) eval(env Env) (Value, error) {
	if env == nil {
		return Value{}, fmt.Errorf("expr: no environment for reference %q", n.name)
	}
	v, ok := env.Lookup(n.name)
	if !ok {
		// Unbound references evaluate to null rather than erroring: a
		// condition over a data item a prior step has not produced yet is
		// simply not satisfied. exists() distinguishes the two cases.
		return Null(), nil
	}
	return v, nil
}

type unaryNode struct {
	op      string
	operand node
}

func (n unaryNode) eval(env Env) (Value, error) {
	v, err := n.operand.eval(env)
	if err != nil {
		return Value{}, err
	}
	switch n.op {
	case "!":
		return Bool(!v.Truthy()), nil
	case "-":
		f, ok := v.AsNum()
		if !ok {
			return Value{}, fmt.Errorf("expr: unary - applied to %s", v.Kind())
		}
		return Num(-f), nil
	}
	return Value{}, fmt.Errorf("expr: unknown unary operator %q", n.op)
}

type binaryNode struct {
	op          string
	left, right node
}

func (n binaryNode) eval(env Env) (Value, error) {
	// Short-circuit logic first.
	switch n.op {
	case "&&":
		l, err := n.left.eval(env)
		if err != nil {
			return Value{}, err
		}
		if !l.Truthy() {
			return Bool(false), nil
		}
		r, err := n.right.eval(env)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truthy()), nil
	case "||":
		l, err := n.left.eval(env)
		if err != nil {
			return Value{}, err
		}
		if l.Truthy() {
			return Bool(true), nil
		}
		r, err := n.right.eval(env)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truthy()), nil
	}

	l, err := n.left.eval(env)
	if err != nil {
		return Value{}, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return Value{}, err
	}

	switch n.op {
	case "==":
		return Bool(l.Equal(r)), nil
	case "!=":
		return Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c, err := compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch n.op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "+":
		if ls, ok := l.AsStr(); ok {
			rs, ok := r.AsStr()
			if !ok {
				rs = r.String()
			}
			return Str(ls + rs), nil
		}
		return arith(n.op, l, r)
	case "-", "*", "/", "%":
		return arith(n.op, l, r)
	}
	return Value{}, fmt.Errorf("expr: unknown operator %q", n.op)
}

func compare(l, r Value) (int, error) {
	if lf, ok := l.AsNum(); ok {
		rf, ok := r.AsNum()
		if !ok {
			return 0, fmt.Errorf("expr: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ls, ok := l.AsStr(); ok {
		rs, ok := r.AsStr()
		if !ok {
			return 0, fmt.Errorf("expr: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		return strings.Compare(ls, rs), nil
	}
	return 0, fmt.Errorf("expr: cannot order values of kind %s", l.Kind())
}

func arith(op string, l, r Value) (Value, error) {
	lf, lok := l.AsNum()
	rf, rok := r.AsNum()
	if !lok || !rok {
		return Value{}, fmt.Errorf("expr: operator %q needs numbers, got %s and %s", op, l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return Num(lf + rf), nil
	case "-":
		return Num(lf - rf), nil
	case "*":
		return Num(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: division by zero")
		}
		return Num(lf / rf), nil
	case "%":
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: modulo by zero")
		}
		li, ri := int64(lf), int64(rf)
		return Num(float64(li % ri)), nil
	}
	return Value{}, fmt.Errorf("expr: unknown arithmetic operator %q", op)
}

type callNode struct {
	fn   string
	args []node
	// For exists(), we need the raw name rather than the looked-up value.
	rawRef string
}

func (n callNode) eval(env Env) (Value, error) {
	switch n.fn {
	case "exists":
		if env == nil {
			return Bool(false), nil
		}
		_, ok := env.Lookup(n.rawRef)
		return Bool(ok), nil
	case "abs", "min", "max":
		vals := make([]float64, len(n.args))
		for i, a := range n.args {
			v, err := a.eval(env)
			if err != nil {
				return Value{}, err
			}
			f, ok := v.AsNum()
			if !ok {
				return Value{}, fmt.Errorf("expr: %s() needs numeric arguments, got %s", n.fn, v.Kind())
			}
			vals[i] = f
		}
		switch n.fn {
		case "abs":
			f := vals[0]
			if f < 0 {
				f = -f
			}
			return Num(f), nil
		case "min":
			m := vals[0]
			for _, f := range vals[1:] {
				if f < m {
					m = f
				}
			}
			return Num(m), nil
		default: // max
			m := vals[0]
			for _, f := range vals[1:] {
				if f > m {
					m = f
				}
			}
			return Num(m), nil
		}
	}
	return Value{}, fmt.Errorf("expr: unknown function %q", n.fn)
}

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	i   int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.i < len(l.src) && unicode.IsSpace(rune(l.src[l.i])) {
		l.i++
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	c := l.src[l.i]
	switch {
	case c >= '0' && c <= '9', c == '.' && l.i+1 < len(l.src) && isDigit(l.src[l.i+1]):
		for l.i < len(l.src) && (isDigit(l.src[l.i]) || l.src[l.i] == '.') {
			l.i++
		}
		// exponent
		if l.i < len(l.src) && (l.src[l.i] == 'e' || l.src[l.i] == 'E') {
			j := l.i + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && isDigit(l.src[j]) {
				l.i = j
				for l.i < len(l.src) && isDigit(l.src[l.i]) {
					l.i++
				}
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.i], pos: start}, nil
	case c == '"' || c == '\'':
		quote := c
		l.i++
		var b strings.Builder
		for l.i < len(l.src) && l.src[l.i] != quote {
			if l.src[l.i] == '\\' && l.i+1 < len(l.src) {
				l.i++
				switch l.src[l.i] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"', '\'':
					b.WriteByte(l.src[l.i])
				default:
					return token{}, fmt.Errorf("expr: bad escape \\%c at offset %d", l.src[l.i], l.i)
				}
			} else {
				b.WriteByte(l.src[l.i])
			}
			l.i++
		}
		if l.i >= len(l.src) {
			return token{}, fmt.Errorf("expr: unterminated string starting at offset %d", start)
		}
		l.i++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case isIdentStart(c):
		for l.i < len(l.src) && (isIdentPart(l.src[l.i]) || l.src[l.i] == '.') {
			l.i++
		}
		return token{kind: tokIdent, text: l.src[start:l.i], pos: start}, nil
	case c == '(':
		l.i++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.i++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.i++
		return token{kind: tokComma, text: ",", pos: start}, nil
	default:
		// operators, longest-match
		two := ""
		if l.i+1 < len(l.src) {
			two = l.src[l.i : l.i+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			l.i += 2
			return token{kind: tokOp, text: two, pos: start}, nil
		}
		switch c {
		case '<', '>', '!', '+', '-', '*', '/', '%':
			l.i++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("expr: unexpected character %q at offset %d", c, start)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }

// ---------------------------------------------------------------------------
// Parser (precedence climbing)

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.tok.text
			if err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binaryNode{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseMul() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.tok.kind == tokOp && (p.tok.text == "!" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: op, operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return litNode{Num(f)}, nil
	case tokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return litNode{Str(s)}, nil
	case tokIdent:
		name := p.tok.text
		pos := p.tok.pos
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return litNode{Bool(true)}, nil
		case "false":
			return litNode{Bool(false)}, nil
		case "null":
			return litNode{Null()}, nil
		}
		if p.tok.kind == tokLParen {
			return p.parseCall(name, pos)
		}
		return refNode{name: name}, nil
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("expr: missing ) at offset %d", p.tok.pos)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
}

func (p *parser) parseCall(fn string, pos int) (node, error) {
	// current token is '('
	if err := p.next(); err != nil {
		return nil, err
	}
	call := callNode{fn: fn}
	switch fn {
	case "exists":
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("expr: exists() needs a data-item name at offset %d", p.tok.pos)
		}
		call.rawRef = p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
	case "abs", "min", "max":
		for {
			arg, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			call.args = append(call.args, arg)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if fn == "abs" && len(call.args) != 1 {
			return nil, fmt.Errorf("expr: abs() takes exactly one argument")
		}
		if (fn == "min" || fn == "max") && len(call.args) < 1 {
			return nil, fmt.Errorf("expr: %s() needs at least one argument", fn)
		}
	default:
		return nil, fmt.Errorf("expr: unknown function %q at offset %d", fn, pos)
	}
	if p.tok.kind != tokRParen {
		return nil, fmt.Errorf("expr: missing ) after %s(", fn)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	return call, nil
}
