package expr

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the value using native JSON types: null, number,
// string, or boolean. The mapping is unambiguous in both directions, so
// workflow packets and database records stay human-readable.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNum:
		return json.Marshal(v.num)
	case KindStr:
		return json.Marshal(v.str)
	case KindBool:
		return json.Marshal(v.b)
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON decodes a native JSON scalar into a Value.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch t := raw.(type) {
	case nil:
		*v = Null()
	case float64:
		*v = Num(t)
	case string:
		*v = Str(t)
	case bool:
		*v = Bool(t)
	default:
		return fmt.Errorf("expr: cannot decode %T into Value", raw)
	}
	return nil
}
