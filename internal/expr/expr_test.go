package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func env() MapEnv {
	return MapEnv{
		"WF.I1":      Num(90),
		"WF.I2":      Str("Blower"),
		"S1.O1":      Num(20),
		"S1.O2":      Str("Gasket"),
		"S2.O1":      Num(45),
		"S2.O2":      Num(400),
		"flag":       Bool(true),
		"prev.S1.O1": Num(19),
	}
}

func evalNum(t *testing.T, src string) float64 {
	t.Helper()
	e := MustCompile(src)
	v, err := e.Eval(env())
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	f, ok := v.AsNum()
	if !ok {
		t.Fatalf("Eval(%q) = %v, want number", src, v)
	}
	return f
}

func evalBool(t *testing.T, src string) bool {
	t.Helper()
	e := MustCompile(src)
	b, err := e.EvalBool(env())
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", src, err)
	}
	return b
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2":              3,
		"2 * 3 + 4":          10,
		"2 + 3 * 4":          14,
		"(2 + 3) * 4":        20,
		"10 / 4":             2.5,
		"10 % 3":             1,
		"-5 + 2":             -3,
		"--5":                5,
		"1.5e2":              150,
		"2e-1":               0.2,
		"abs(-7)":            7,
		"min(3, 1, 2)":       1,
		"max(3, 1, 2)":       3,
		"S1.O1 + S2.O1":      65,
		"WF.I1 - prev.S1.O1": 71,
	}
	for src, want := range cases {
		if got := evalNum(t, src); math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %g, want %g", src, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":                       true,
		"2 <= 2":                      true,
		"3 > 4":                       false,
		"3 >= 3":                      true,
		"1 == 1":                      true,
		"1 != 1":                      false,
		`"abc" < "abd"`:               true,
		`"a" == "a"`:                  true,
		`WF.I2 == "Blower"`:           true,
		"true && false":               false,
		"true || false":               true,
		"!false":                      true,
		"!(1 > 2)":                    true,
		"S1.O1 > 10 && S2.O1 < 100":   true,
		"S1.O1 > 100 || S2.O2 == 400": true,
		"flag":                        true,
		"exists(S1.O1)":               true,
		"exists(S9.O9)":               false,
		"S9.O9 == null":               true, // unbound ref is null
		"null == null":                true,
		`"" || 0`:                     false,
		`"x" && 1`:                    true,
		`WF.I2 + "X" == "BlowerX"`:    true,
		"S1.O1 != prev.S1.O1":         true,
		"1 < 2 && 2 < 3 || false":     true,
	}
	for src, want := range cases {
		if got := evalBool(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right side would error (division by zero) if evaluated.
	if got := evalBool(t, "false && (1/0 > 0)"); got != false {
		t.Error("&& did not short-circuit")
	}
	if got := evalBool(t, "true || (1/0 > 0)"); got != true {
		t.Error("|| did not short-circuit")
	}
}

func TestEmptySourceIsTrue(t *testing.T) {
	for _, src := range []string{"", "   ", "\t\n"} {
		e, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		b, err := e.EvalBool(nil)
		if err != nil || !b {
			t.Errorf("empty condition %q = (%v, %v), want (true, nil)", src, b, err)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"1 +",
		"(1 + 2",
		"1 ~ 2",
		`"unterminated`,
		"foo(1)",
		"exists(1)",
		"abs(1, 2)",
		"min()",
		"1 2",
		`"bad \q escape"`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"1 / 0",
		"5 % 0",
		`-"str"`,
		`"a" - 1`,
		`"a" < 1`,
		"true < false",
		"null < 1",
	}
	for _, src := range bad {
		e := MustCompile(src)
		if _, err := e.Eval(env()); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestRefs(t *testing.T) {
	e := MustCompile("S1.O1 > 10 && (WF.I1 < S1.O1 || exists(S2.O2)) && abs(S3.O1) > 0")
	got := e.Refs()
	want := []string{"S1.O1", "WF.I1", "S3.O1"}
	// exists() does not create a refNode, so S2.O2 is intentionally absent
	// from Refs (its value is never read).
	if len(got) != len(want) {
		t.Fatalf("Refs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Refs() = %v, want %v", got, want)
		}
	}
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Num(1).Equal(Str("1")) {
		t.Error("Num(1) should not equal Str(1)")
	}
	if !Num(2.5).Equal(Num(2.5)) {
		t.Error("Num(2.5) != Num(2.5)")
	}
	if got := Str("hi").String(); got != "hi" {
		t.Errorf("Str.String() = %q", got)
	}
	if got := Str("hi").GoString(); got != `"hi"` {
		t.Errorf("Str.GoString() = %q", got)
	}
	if got := Bool(true).String(); got != "true" {
		t.Errorf("Bool.String() = %q", got)
	}
	if got := Num(3.5).String(); got != "3.5" {
		t.Errorf("Num.String() = %q", got)
	}
	if got := Null().String(); got != "null" {
		t.Errorf("Null.String() = %q", got)
	}
	kinds := []Kind{KindNull, KindNum, KindStr, KindBool, Kind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{Num(0), false},
		{Num(0.1), true},
		{Str(""), false},
		{Str("x"), true},
		{Bool(true), true},
		{Bool(false), false},
	}
	for _, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("Truthy(%#v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestChainEnv(t *testing.T) {
	top := MapEnv{"a": Num(1)}
	bottom := MapEnv{"a": Num(2), "b": Num(3)}
	ch := ChainEnv{top, nil, bottom}
	if v, ok := ch.Lookup("a"); !ok || !v.Equal(Num(1)) {
		t.Errorf("ChainEnv a = (%v,%v), want first layer 1", v, ok)
	}
	if v, ok := ch.Lookup("b"); !ok || !v.Equal(Num(3)) {
		t.Errorf("ChainEnv b = (%v,%v), want 3", v, ok)
	}
	if _, ok := ch.Lookup("c"); ok {
		t.Error("ChainEnv c should be unbound")
	}
}

func TestEvalWithNilEnvLookup(t *testing.T) {
	e := MustCompile("X.Y > 0")
	if _, err := e.Eval(nil); err == nil {
		t.Error("reference with nil env should error")
	}
	// exists() with nil env is simply false.
	e2 := MustCompile("exists(X.Y)")
	b, err := e2.EvalBool(nil)
	if err != nil || b {
		t.Errorf("exists with nil env = (%v, %v), want (false, nil)", b, err)
	}
}

func TestStringEscapes(t *testing.T) {
	e := MustCompile(`"a\nb\t\"c\\" == 'a` + "\n" + `b` + "\t" + `"c\\'`)
	b, err := e.EvalBool(nil)
	if err != nil || !b {
		t.Errorf("escape round-trip = (%v, %v), want (true, nil)", b, err)
	}
	e2 := MustCompile(`'single' == "single"`)
	b, err = e2.EvalBool(nil)
	if err != nil || !b {
		t.Errorf("single-quote string = (%v, %v), want (true, nil)", b, err)
	}
}

// Property: numeric comparisons agree with Go's float64 comparisons.
func TestPropertyNumericComparison(t *testing.T) {
	f := func(a, b int16) bool {
		m := MapEnv{"A": Num(float64(a)), "B": Num(float64(b))}
		lt, err := MustCompile("A < B").EvalBool(m)
		if err != nil {
			return false
		}
		eq, err := MustCompile("A == B").EvalBool(m)
		if err != nil {
			return false
		}
		return lt == (a < b) && eq == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addition in the language matches Go addition.
func TestPropertyAddition(t *testing.T) {
	f := func(a, b int16) bool {
		m := MapEnv{"A": Num(float64(a)), "B": Num(float64(b))}
		v, err := MustCompile("A + B").Eval(m)
		if err != nil {
			return false
		}
		got, ok := v.AsNum()
		return ok && got == float64(a)+float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan's law holds for the language's booleans.
func TestPropertyDeMorgan(t *testing.T) {
	f := func(a, b bool) bool {
		m := MapEnv{"A": Bool(a), "B": Bool(b)}
		lhs, err := MustCompile("!(A && B)").EvalBool(m)
		if err != nil {
			return false
		}
		rhs, err := MustCompile("!A || !B").EvalBool(m)
		if err != nil {
			return false
		}
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compile never accepts garbage that then evaluates to a non-error
// on operators demanding numbers. (Sanity fuzz over random operator soup.)
func TestFuzzishCompileDoesNotPanic(t *testing.T) {
	pieces := []string{"1", "+", "-", "(", ")", "a.b", `"s"`, "&&", "<", "exists", ",", "min", "!", "%"}
	f := func(idx []uint8) bool {
		var b strings.Builder
		for _, i := range idx {
			b.WriteString(pieces[int(i)%len(pieces)])
			b.WriteByte(' ')
		}
		e, err := Compile(b.String())
		if err != nil {
			return true // rejection is fine; panics are not
		}
		_, _ = e.Eval(env()) // eval errors are fine too
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSourceRoundTrip(t *testing.T) {
	src := "S1.O1 > 10 && WF.I2 == \"Blower\""
	e := MustCompile(src)
	if e.Source() != src || e.String() != src {
		t.Errorf("Source() = %q, want %q", e.Source(), src)
	}
}
