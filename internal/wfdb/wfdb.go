// Package wfdb implements the workflow database: the instance state a
// workflow engine (centralized/parallel control) or an agent (distributed
// control) maintains, and its persistence on the embedded store.
//
// The paper's data organization is kept: a workflow class table holds
// definitions, a workflow instance table holds per-instance state (data
// table, event table, step table, execution order), and a coordination
// instance summary table at coordination agents tracks instance status for
// the front-end database. Committed instances are archived.
package wfdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/store"
)

// Status is the life-cycle state of a workflow instance.
type Status int

const (
	// Running means the instance is executing (or recovering).
	Running Status = iota
	// Committed means every active path completed; effects are permanent.
	Committed
	// Aborted means the instance was aborted and compensated.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// StepStatus is the per-step execution state within an instance.
type StepStatus int

const (
	// StepPending means the step has not been scheduled.
	StepPending StepStatus = iota
	// StepExecuting means the step's program is running.
	StepExecuting
	// StepDone means the step completed successfully.
	StepDone
	// StepFailed means the last execution failed logically.
	StepFailed
	// StepCompensated means the step's effects were compensated.
	StepCompensated
	// StepCompensating means a compensation of the step's previous results
	// is dispatched to an agent. It is written ahead of the dispatch so a
	// crashed engine can tell, on restart, that a compensation result is
	// still owed and must not be re-requested (compensation runs once).
	StepCompensating
)

// String names the step status.
func (s StepStatus) String() string {
	switch s {
	case StepPending:
		return "pending"
	case StepExecuting:
		return "executing"
	case StepDone:
		return "done"
	case StepFailed:
		return "failed"
	case StepCompensated:
		return "compensated"
	case StepCompensating:
		return "compensating"
	default:
		return fmt.Sprintf("StepStatus(%d)", int(s))
	}
}

// StepRecord is the step-table entry for one step of one instance.
type StepRecord struct {
	Status StepStatus `json:"status"`
	// Agent names the agent that executed (or is executing) the step.
	Agent string `json:"agent,omitempty"`
	// Attempts counts executions (1-based after the first execution).
	Attempts int `json:"attempts"`
	// Inputs and Outputs capture the latest execution, supporting the OCR
	// strategy's comparison against previous inputs and result reuse.
	Inputs  map[string]expr.Value `json:"inputs,omitempty"`
	Outputs map[string]expr.Value `json:"outputs,omitempty"`
	// HasResult records that a successful execution's results are on file
	// and not yet compensated. It survives the status reset a rollback
	// performs, which is exactly what lets the OCR strategy reuse or
	// incrementally rebuild the previous results on re-execution.
	HasResult bool `json:"hasResult,omitempty"`
	// CompMode records, while Status is StepCompensating, whether the
	// in-flight compensation is complete (ModeCompensate) or partial
	// (ModePartialComp, to be followed by an incremental re-execution);
	// restart recovery rebuilds the pending compensation task from it.
	CompMode model.ExecMode `json:"compMode,omitempty"`
}

// Prev packages the record's previous execution for a program context.
func (r *StepRecord) Prev() *model.PrevExecution {
	if r == nil || !r.HasResult {
		return nil
	}
	return &model.PrevExecution{Inputs: r.Inputs, Outputs: r.Outputs}
}

// Instance is the complete state of one workflow instance. In centralized
// control the engine owns the whole Instance; in distributed control each
// agent holds a partial replica assembled from workflow packets.
type Instance struct {
	Workflow string
	ID       int
	Status   Status
	// Data is the data table: full item name -> value.
	Data map[string]expr.Value
	// Events is the event table.
	Events *event.Table
	// Steps is the step table.
	Steps map[model.StepID]*StepRecord
	// ExecOrder lists step completions in order (repeats possible across
	// re-executions); compensation dependent sets use it to compensate in
	// reverse execution order.
	ExecOrder []model.StepID
	// Aborting records that the instance entered an abort (user abort or
	// exhausted failure handling) and its compensation chain may be
	// incomplete. Persisted so a restarted engine rebuilds and finishes the
	// chain instead of resuming forward execution.
	Aborting bool
	// Parent links a nested workflow instance to its parent step.
	Parent *ParentRef
	// Epoch and Coordinator checkpoint the owning replica's rollback epoch
	// and coordination-agent election, so an agent restarted from its AGDB
	// (multi-process recovery) resumes with the same epoch discipline and
	// routing instead of rediscovering them from traffic.
	Epoch       int
	Coordinator string
	// NotifyTo names the front-end node to notify when the instance reaches a
	// terminal status. Only set on the coordination replica of deployments
	// whose front end lives across a process boundary; empty means completion
	// is published through the shared in-process terminal registry alone.
	NotifyTo string

	// schema, when attached, serves interned event-name and data-name strings
	// so record-keeping does not rebuild them on every post. Optional (nil
	// falls back to direct construction) and not persisted: owners re-attach
	// after load or import.
	schema *model.Schema
}

// AttachSchema installs the instance's schema as a name-interning source.
// The schema is only read.
func (ins *Instance) AttachSchema(s *model.Schema) { ins.schema = s }

func (ins *Instance) doneName(id model.StepID) string {
	if ins.schema != nil {
		return ins.schema.DoneEventOf(id)
	}
	return event.DoneName(string(id))
}

func (ins *Instance) failName(id model.StepID) string {
	if ins.schema != nil {
		return ins.schema.FailEventOf(id)
	}
	return event.FailName(string(id))
}

func (ins *Instance) compName(id model.StepID) string {
	if ins.schema != nil {
		return ins.schema.CompEventOf(id)
	}
	return event.CompensatedName(string(id))
}

func (ins *Instance) outputRef(id model.StepID, short string) string {
	if ins.schema != nil {
		return ins.schema.OutputRef(id, short)
	}
	return id.Ref(short)
}

// ParentRef identifies the parent step awaiting a nested workflow.
type ParentRef struct {
	Workflow string       `json:"workflow"`
	ID       int          `json:"id"`
	Step     model.StepID `json:"step"`
}

// NewInstance creates a running instance with the given workflow inputs
// (keyed by short input name, e.g. "I1").
func NewInstance(workflow string, id int, inputs map[string]expr.Value) *Instance {
	ins := &Instance{
		Workflow: workflow,
		ID:       id,
		Status:   Running,
		Data:     make(map[string]expr.Value, len(inputs)),
		Events:   event.NewTable(),
		Steps:    make(map[model.StepID]*StepRecord),
	}
	for name, v := range inputs {
		ins.Data[model.WorkflowInput(name)] = v
	}
	return ins
}

// Key returns the instance's database key.
func (ins *Instance) Key() string { return InstanceKeyOf(ins.Workflow, ins.ID) }

// InstanceKeyOf builds the canonical instance key.
func InstanceKeyOf(workflow string, id int) string {
	return workflow + "." + strconv.Itoa(id)
}

// ParseInstanceKey splits a canonical instance key.
func ParseInstanceKey(key string) (workflow string, id int, err error) {
	i := strings.LastIndexByte(key, '.')
	if i < 0 {
		return "", 0, fmt.Errorf("wfdb: malformed instance key %q", key)
	}
	id, err = strconv.Atoi(key[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("wfdb: malformed instance key %q: %w", key, err)
	}
	return key[:i], id, nil
}

// Env exposes the data table as an expression environment.
func (ins *Instance) Env() expr.Env { return expr.MapEnv(ins.Data) }

// StepRec returns (creating if needed) the step record for id.
func (ins *Instance) StepRec(id model.StepID) *StepRecord {
	r := ins.Steps[id]
	if r == nil {
		r = &StepRecord{}
		ins.Steps[id] = r
	}
	return r
}

// SetData writes one data item.
func (ins *Instance) SetData(name string, v expr.Value) {
	ins.Data[name] = v
}

// MergeData copies the given items into the data table and reports how many
// changed. Incoming workflow packets merge their data sections this way.
func (ins *Instance) MergeData(items map[string]expr.Value) int {
	n := 0
	for k, v := range items {
		if old, ok := ins.Data[k]; !ok || !old.Equal(v) {
			ins.Data[k] = v
			n++
		}
	}
	return n
}

// RecordExecuting marks a step as dispatched to an agent.
func (ins *Instance) RecordExecuting(id model.StepID, agent string, inputs map[string]expr.Value) {
	r := ins.StepRec(id)
	r.Status = StepExecuting
	r.Agent = agent
	r.Attempts++
	r.Inputs = inputs
}

// RecordDone marks a step complete: stores outputs in the step record, copies
// them into the data table under full names, appends to the execution order
// and posts step.done.
func (ins *Instance) RecordDone(id model.StepID, outputs map[string]expr.Value) {
	r := ins.StepRec(id)
	r.Status = StepDone
	r.Outputs = outputs
	r.HasResult = true
	for short, v := range outputs {
		ins.Data[ins.outputRef(id, short)] = v
	}
	ins.ExecOrder = append(ins.ExecOrder, id)
	ins.Events.Post(ins.doneName(id))
}

// RecordFailed marks a step failed and posts step.fail.
func (ins *Instance) RecordFailed(id model.StepID) {
	ins.StepRec(id).Status = StepFailed
	ins.Events.Post(ins.failName(id))
}

// RecordCompensating marks a compensation of the step as dispatched to an
// agent in the given mode (ModeCompensate or ModePartialComp). Persisting the
// instance after this call and before the dispatch is the write-ahead record
// that makes compensation exactly-once across an engine crash.
func (ins *Instance) RecordCompensating(id model.StepID, mode model.ExecMode) {
	r := ins.StepRec(id)
	r.Status = StepCompensating
	r.CompMode = mode
}

// RecordCompensated marks a step compensated: its done event is invalidated,
// its outputs are removed from the data table, and step.compensated posts.
func (ins *Instance) RecordCompensated(id model.StepID) {
	r := ins.StepRec(id)
	r.Status = StepCompensated
	r.HasResult = false
	r.CompMode = 0
	for short := range r.Outputs {
		delete(ins.Data, ins.outputRef(id, short))
	}
	ins.Events.Invalidate(ins.doneName(id))
	ins.Events.Post(ins.compName(id))
}

// ResetStepEvents invalidates the step's done and fail events and returns
// how many were valid (the paper's v parameter counts these invalidations).
func (ins *Instance) ResetStepEvents(id model.StepID) int {
	n := 0
	if ins.Events.Invalidate(ins.doneName(id)) {
		n++
	}
	if ins.Events.Invalidate(ins.failName(id)) {
		n++
	}
	return n
}

// Executed reports whether the step currently counts as executed (done and
// not compensated since).
func (ins *Instance) Executed(id model.StepID) bool {
	r := ins.Steps[id]
	return r != nil && r.Status == StepDone
}

// CompletedTerminals returns which of the given terminal steps are done.
func (ins *Instance) CompletedTerminals(terminals []model.StepID) []model.StepID {
	var out []model.StepID
	for _, id := range terminals {
		if ins.Executed(id) {
			out = append(out, id)
		}
	}
	return out
}

// ExecutedMembersInOrder returns the members of set that are currently
// executed, in execution order (latest execution wins for repeats).
func (ins *Instance) ExecutedMembersInOrder(set []model.StepID) []model.StepID {
	return ins.membersInOrder(set, func(r *StepRecord) bool { return r.Status == StepDone })
}

// ResultMembersInOrder returns the members of set whose previous results are
// still on file (HasResult), in execution order. A rollback resets statuses
// to pending but keeps results, and it is these steps a compensation
// dependent set must unwind in reverse execution order.
func (ins *Instance) ResultMembersInOrder(set []model.StepID) []model.StepID {
	return ins.membersInOrder(set, func(r *StepRecord) bool { return r.HasResult })
}

func (ins *Instance) membersInOrder(set []model.StepID, pred func(*StepRecord) bool) []model.StepID {
	inSet := make(map[model.StepID]bool, len(set))
	for _, id := range set {
		inSet[id] = true
	}
	lastPos := make(map[model.StepID]int)
	for i, id := range ins.ExecOrder {
		if inSet[id] {
			lastPos[id] = i
		}
	}
	var out []model.StepID
	for id := range lastPos {
		if r := ins.Steps[id]; r != nil && pred(r) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lastPos[out[i]] < lastPos[out[j]] })
	return out
}

// Clone deep-copies the instance.
func (ins *Instance) Clone() *Instance {
	c := &Instance{
		Workflow:  ins.Workflow,
		ID:        ins.ID,
		Status:    ins.Status,
		Data:      make(map[string]expr.Value, len(ins.Data)),
		Events:    ins.Events.Clone(),
		Steps:     make(map[model.StepID]*StepRecord, len(ins.Steps)),
		ExecOrder: append([]model.StepID(nil), ins.ExecOrder...),
		Aborting:  ins.Aborting,
	}
	c.Epoch = ins.Epoch
	c.Coordinator = ins.Coordinator
	c.NotifyTo = ins.NotifyTo
	for k, v := range ins.Data {
		c.Data[k] = v
	}
	for id, r := range ins.Steps {
		cp := *r
		cp.Inputs = copyValues(r.Inputs)
		cp.Outputs = copyValues(r.Outputs)
		c.Steps[id] = &cp
	}
	if ins.Parent != nil {
		p := *ins.Parent
		c.Parent = &p
	}
	c.schema = ins.schema // read-only interning source; safe to share
	return c
}

func copyValues(m map[string]expr.Value) map[string]expr.Value {
	if m == nil {
		return nil
	}
	out := make(map[string]expr.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// instanceJSON is the serialized form of Instance.
type instanceJSON struct {
	Workflow  string                       `json:"workflow"`
	ID        int                          `json:"id"`
	Status    Status                       `json:"status"`
	Data      map[string]expr.Value        `json:"data"`
	Events    []event.Exported             `json:"events"`
	Steps     map[model.StepID]*StepRecord `json:"steps"`
	ExecOrder []model.StepID               `json:"execOrder"`
	Aborting  bool                         `json:"aborting,omitempty"`
	Parent    *ParentRef                   `json:"parent,omitempty"`
	Epoch     int                          `json:"epoch,omitempty"`
	Coord     string                       `json:"coordinator,omitempty"`
	NotifyTo  string                       `json:"notifyTo,omitempty"`
}

func (ins *Instance) toJSON() instanceJSON {
	return instanceJSON{
		Workflow:  ins.Workflow,
		ID:        ins.ID,
		Status:    ins.Status,
		Data:      ins.Data,
		Events:    ins.Events.Export(),
		Steps:     ins.Steps,
		ExecOrder: ins.ExecOrder,
		Aborting:  ins.Aborting,
		Parent:    ins.Parent,
		Epoch:     ins.Epoch,
		Coord:     ins.Coordinator,
		NotifyTo:  ins.NotifyTo,
	}
}

func fromJSON(j instanceJSON) *Instance {
	ins := &Instance{
		Workflow:    j.Workflow,
		ID:          j.ID,
		Status:      j.Status,
		Data:        j.Data,
		Events:      event.ImportTable(j.Events),
		Steps:       j.Steps,
		ExecOrder:   j.ExecOrder,
		Aborting:    j.Aborting,
		Parent:      j.Parent,
		Epoch:       j.Epoch,
		Coordinator: j.Coord,
		NotifyTo:    j.NotifyTo,
	}
	if ins.Data == nil {
		ins.Data = make(map[string]expr.Value)
	}
	if ins.Steps == nil {
		ins.Steps = make(map[model.StepID]*StepRecord)
	}
	return ins
}

// ---------------------------------------------------------------------------
// DB

// Table names inside the store.
const (
	tableClass    = "class"
	tableInstance = "instance"
	tableArchive  = "archive"
	tableSummary  = "summary"
)

// DB wraps a store as a workflow (or agent) database.
type DB struct {
	st *store.Store
}

// New wraps the given store.
func New(st *store.Store) *DB { return &DB{st: st} }

// NewMemory returns a DB over a fresh in-memory store.
func NewMemory() *DB { return New(store.OpenMemory()) }

// Store exposes the underlying store (e.g. for write-count metrics).
func (db *DB) Store() *store.Store { return db.st }

// SaveSchema persists a workflow class definition.
func (db *DB) SaveSchema(s *model.Schema) error {
	return db.st.PutJSON(tableClass, s.Name, s)
}

// LoadSchema retrieves a workflow class definition.
func (db *DB) LoadSchema(name string) (*model.Schema, bool, error) {
	var s model.Schema
	ok, err := db.st.GetJSON(tableClass, name, &s)
	if err != nil || !ok {
		return nil, ok, err
	}
	return &s, true, nil
}

// SchemaNames lists stored class names.
func (db *DB) SchemaNames() []string { return db.st.Keys(tableClass) }

// SaveInstance persists an instance's full state.
func (db *DB) SaveInstance(ins *Instance) error {
	return db.st.PutJSON(tableInstance, ins.Key(), ins.toJSON())
}

// LoadInstance retrieves an instance.
func (db *DB) LoadInstance(workflow string, id int) (*Instance, bool, error) {
	var j instanceJSON
	ok, err := db.st.GetJSON(tableInstance, InstanceKeyOf(workflow, id), &j)
	if err != nil || !ok {
		return nil, ok, err
	}
	return fromJSON(j), true, nil
}

// DeleteInstance removes an instance record (e.g. after a purge broadcast).
func (db *DB) DeleteInstance(workflow string, id int) error {
	return db.st.Delete(tableInstance, InstanceKeyOf(workflow, id))
}

// InstanceKeys lists keys of live instances.
func (db *DB) InstanceKeys() []string { return db.st.Keys(tableInstance) }

// Archive moves a finished instance to the archive table.
func (db *DB) Archive(ins *Instance) error {
	if err := db.st.PutJSON(tableArchive, ins.Key(), ins.toJSON()); err != nil {
		return err
	}
	return db.st.Delete(tableInstance, ins.Key())
}

// LoadArchived retrieves an archived instance.
func (db *DB) LoadArchived(workflow string, id int) (*Instance, bool, error) {
	var j instanceJSON
	ok, err := db.st.GetJSON(tableArchive, InstanceKeyOf(workflow, id), &j)
	if err != nil || !ok {
		return nil, ok, err
	}
	return fromJSON(j), true, nil
}

// SpillArchive moves the archive table's resident values to the store's
// spill file (file-backed stores only; a documented no-op in memory), so an
// unbounded stream of retired instances does not grow resident memory.
func (db *DB) SpillArchive() error { return db.st.Spill(tableArchive) }

// SaveSummary updates the coordination instance summary table.
func (db *DB) SaveSummary(workflow string, id int, status Status) error {
	return db.st.PutJSON(tableSummary, InstanceKeyOf(workflow, id), status)
}

// LoadSummary reads an instance's summary status.
func (db *DB) LoadSummary(workflow string, id int) (Status, bool, error) {
	var s Status
	ok, err := db.st.GetJSON(tableSummary, InstanceKeyOf(workflow, id), &s)
	return s, ok, err
}

// SummaryKeys lists all summarized instances.
func (db *DB) SummaryKeys() []string { return db.st.Keys(tableSummary) }
