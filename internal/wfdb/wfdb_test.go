package wfdb

import (
	"path/filepath"
	"testing"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/store"
)

func sampleSchema() *model.Schema {
	return model.NewSchema("Ord", "I1").
		Step("S1", "p1", model.WithOutputs("O1"), model.WithCompensation("c1")).
		Step("S2", "p2", model.WithInputs("S1.O1"), model.WithOutputs("O1")).
		Seq("S1", "S2").
		MustBuild()
}

func TestStatusStrings(t *testing.T) {
	if Running.String() != "running" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Error("Status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status")
	}
	for s, want := range map[StepStatus]string{
		StepPending: "pending", StepExecuting: "executing", StepDone: "done",
		StepFailed: "failed", StepCompensated: "compensated", StepStatus(7): "StepStatus(7)",
	} {
		if s.String() != want {
			t.Errorf("StepStatus(%d) = %q, want %q", int(s), s, want)
		}
	}
}

func TestInstanceKeys(t *testing.T) {
	if got := InstanceKeyOf("WF1", 4); got != "WF1.4" {
		t.Errorf("InstanceKeyOf = %q", got)
	}
	wf, id, err := ParseInstanceKey("WF1.4")
	if err != nil || wf != "WF1" || id != 4 {
		t.Errorf("ParseInstanceKey = (%q, %d, %v)", wf, id, err)
	}
	wf, id, err = ParseInstanceKey("A.B.12")
	if err != nil || wf != "A.B" || id != 12 {
		t.Errorf("ParseInstanceKey dotted = (%q, %d, %v)", wf, id, err)
	}
	if _, _, err := ParseInstanceKey("nodot"); err == nil {
		t.Error("ParseInstanceKey should reject keys without a dot")
	}
	if _, _, err := ParseInstanceKey("WF.x"); err == nil {
		t.Error("ParseInstanceKey should reject non-numeric IDs")
	}
}

func TestNewInstanceAndDataFlow(t *testing.T) {
	ins := NewInstance("Ord", 1, map[string]expr.Value{"I1": expr.Num(90)})
	if ins.Key() != "Ord.1" || ins.Status != Running {
		t.Fatalf("bad instance: %+v", ins)
	}
	if v, ok := ins.Data["WF.I1"]; !ok || !v.Equal(expr.Num(90)) {
		t.Error("workflow input not in data table under full name")
	}

	ins.RecordExecuting("S1", "a1", map[string]expr.Value{"WF.I1": expr.Num(90)})
	r := ins.StepRec("S1")
	if r.Status != StepExecuting || r.Agent != "a1" || r.Attempts != 1 {
		t.Errorf("RecordExecuting: %+v", r)
	}

	ins.RecordDone("S1", map[string]expr.Value{"O1": expr.Num(20)})
	if !ins.Executed("S1") {
		t.Error("S1 should be executed")
	}
	if v := ins.Data["S1.O1"]; !v.Equal(expr.Num(20)) {
		t.Error("output not copied to data table")
	}
	if !ins.Events.Has(event.DoneName("S1")) {
		t.Error("step.done not posted")
	}
	if len(ins.ExecOrder) != 1 || ins.ExecOrder[0] != "S1" {
		t.Errorf("ExecOrder = %v", ins.ExecOrder)
	}

	// Env resolves data items.
	ok, err := expr.MustCompile("S1.O1 == 20").EvalBool(ins.Env())
	if err != nil || !ok {
		t.Errorf("Env eval = (%v, %v)", ok, err)
	}

	ins.RecordFailed("S2")
	if !ins.Events.Has(event.FailName("S2")) || ins.StepRec("S2").Status != StepFailed {
		t.Error("RecordFailed incomplete")
	}

	ins.RecordCompensated("S1")
	if ins.Executed("S1") {
		t.Error("compensated step still counts as executed")
	}
	if _, ok := ins.Data["S1.O1"]; ok {
		t.Error("compensation should remove outputs from data table")
	}
	if ins.Events.Has(event.DoneName("S1")) {
		t.Error("compensation should invalidate step.done")
	}
	if !ins.Events.Has(event.CompensatedName("S1")) {
		t.Error("step.compensated not posted")
	}
}

func TestMergeData(t *testing.T) {
	ins := NewInstance("W", 1, nil)
	n := ins.MergeData(map[string]expr.Value{"A": expr.Num(1), "B": expr.Num(2)})
	if n != 2 {
		t.Errorf("MergeData = %d, want 2", n)
	}
	n = ins.MergeData(map[string]expr.Value{"A": expr.Num(1), "B": expr.Num(3)})
	if n != 1 {
		t.Errorf("MergeData with one change = %d, want 1", n)
	}
}

func TestCompletedTerminals(t *testing.T) {
	ins := NewInstance("W", 1, nil)
	ins.RecordDone("S1", nil)
	got := ins.CompletedTerminals([]model.StepID{"S1", "S2"})
	if len(got) != 1 || got[0] != "S1" {
		t.Errorf("CompletedTerminals = %v", got)
	}
}

func TestExecutedMembersInOrder(t *testing.T) {
	ins := NewInstance("W", 1, nil)
	ins.RecordDone("A", nil)
	ins.RecordDone("B", nil)
	ins.RecordDone("C", nil)
	got := ins.ExecutedMembersInOrder([]model.StepID{"C", "A"})
	if len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Errorf("ExecutedMembersInOrder = %v, want [A C]", got)
	}
	// Re-execution moves a step later in the order.
	ins.RecordDone("A", nil)
	got = ins.ExecutedMembersInOrder([]model.StepID{"C", "A"})
	if len(got) != 2 || got[0] != "C" || got[1] != "A" {
		t.Errorf("after re-execution = %v, want [C A]", got)
	}
	// Compensated members drop out.
	ins.RecordCompensated("C")
	got = ins.ExecutedMembersInOrder([]model.StepID{"C", "A"})
	if len(got) != 1 || got[0] != "A" {
		t.Errorf("after compensation = %v, want [A]", got)
	}
}

func TestInstanceClone(t *testing.T) {
	ins := NewInstance("W", 1, map[string]expr.Value{"I1": expr.Num(1)})
	ins.RecordExecuting("S1", "a", map[string]expr.Value{"WF.I1": expr.Num(1)})
	ins.RecordDone("S1", map[string]expr.Value{"O1": expr.Num(2)})
	ins.Parent = &ParentRef{Workflow: "P", ID: 9, Step: "N"}
	c := ins.Clone()
	c.Data["WF.I1"] = expr.Num(99)
	c.StepRec("S1").Outputs["O1"] = expr.Num(99)
	c.Events.Invalidate(event.DoneName("S1"))
	c.ExecOrder = append(c.ExecOrder, "S2")
	c.Parent.ID = 1

	if !ins.Data["WF.I1"].Equal(expr.Num(1)) {
		t.Error("Clone shares data table")
	}
	if !ins.StepRec("S1").Outputs["O1"].Equal(expr.Num(2)) {
		t.Error("Clone shares step outputs")
	}
	if !ins.Events.Has(event.DoneName("S1")) {
		t.Error("Clone shares event table")
	}
	if len(ins.ExecOrder) != 1 {
		t.Error("Clone shares exec order")
	}
	if ins.Parent.ID != 9 {
		t.Error("Clone shares parent ref")
	}
}

func TestDBSchemaRoundTrip(t *testing.T) {
	db := NewMemory()
	s := sampleSchema()
	if err := db.SaveSchema(s); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.LoadSchema("Ord")
	if err != nil || !ok {
		t.Fatalf("LoadSchema = (%v, %v)", ok, err)
	}
	if got.Name != "Ord" || len(got.Steps) != 2 || got.Steps["S1"].Compensation != "c1" {
		t.Errorf("schema round-trip lost data: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped schema invalid: %v", err)
	}
	if names := db.SchemaNames(); len(names) != 1 || names[0] != "Ord" {
		t.Errorf("SchemaNames = %v", names)
	}
	if _, ok, _ := db.LoadSchema("missing"); ok {
		t.Error("LoadSchema(missing) = ok")
	}
}

func TestDBInstanceRoundTrip(t *testing.T) {
	db := NewMemory()
	ins := NewInstance("Ord", 4, map[string]expr.Value{"I1": expr.Num(90), "I2": expr.Str("Blower")})
	ins.RecordExecuting("S1", "a1", map[string]expr.Value{"WF.I1": expr.Num(90)})
	ins.RecordDone("S1", map[string]expr.Value{"O1": expr.Num(20), "O2": expr.Str("Gasket")})
	ins.RecordFailed("S2")
	ins.Events.Post(event.ExternalName("WF3", 15, "S3.done"))
	ins.Events.Invalidate(event.FailName("S2"))
	ins.Parent = &ParentRef{Workflow: "Parent", ID: 1, Step: "N1"}

	if err := db.SaveInstance(ins); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.LoadInstance("Ord", 4)
	if err != nil || !ok {
		t.Fatalf("LoadInstance = (%v, %v)", ok, err)
	}
	if got.Workflow != "Ord" || got.ID != 4 || got.Status != Running {
		t.Errorf("identity lost: %+v", got)
	}
	if !got.Data["S1.O2"].Equal(expr.Str("Gasket")) || !got.Data["WF.I1"].Equal(expr.Num(90)) {
		t.Error("data table lost")
	}
	if !got.Events.Has(event.DoneName("S1")) {
		t.Error("event table lost valid event")
	}
	if got.Events.Has(event.FailName("S2")) {
		t.Error("invalidated event resurrected")
	}
	if got.Events.Count(event.FailName("S2")) != 1 {
		t.Error("event counts lost")
	}
	if got.StepRec("S1").Attempts != 1 || got.StepRec("S1").Agent != "a1" {
		t.Error("step record lost")
	}
	if got.Parent == nil || got.Parent.Step != "N1" {
		t.Error("parent ref lost")
	}
	if len(got.ExecOrder) != 1 || got.ExecOrder[0] != "S1" {
		t.Error("exec order lost")
	}

	keys := db.InstanceKeys()
	if len(keys) != 1 || keys[0] != "Ord.4" {
		t.Errorf("InstanceKeys = %v", keys)
	}
	if err := db.DeleteInstance("Ord", 4); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.LoadInstance("Ord", 4); ok {
		t.Error("instance survived delete")
	}
}

func TestDBArchive(t *testing.T) {
	db := NewMemory()
	ins := NewInstance("Ord", 7, nil)
	ins.Status = Committed
	if err := db.SaveInstance(ins); err != nil {
		t.Fatal(err)
	}
	if err := db.Archive(ins); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.LoadInstance("Ord", 7); ok {
		t.Error("archived instance still in live table")
	}
	got, ok, err := db.LoadArchived("Ord", 7)
	if err != nil || !ok || got.Status != Committed {
		t.Errorf("LoadArchived = (%+v, %v, %v)", got, ok, err)
	}
	if _, ok, _ := db.LoadArchived("Ord", 8); ok {
		t.Error("LoadArchived of missing instance = ok")
	}
}

func TestDBSummary(t *testing.T) {
	db := NewMemory()
	if err := db.SaveSummary("Ord", 1, Running); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSummary("Ord", 1, Committed); err != nil {
		t.Fatal(err)
	}
	st, ok, err := db.LoadSummary("Ord", 1)
	if err != nil || !ok || st != Committed {
		t.Errorf("LoadSummary = (%v, %v, %v)", st, ok, err)
	}
	if _, ok, _ := db.LoadSummary("Ord", 2); ok {
		t.Error("missing summary = ok")
	}
	if keys := db.SummaryKeys(); len(keys) != 1 || keys[0] != "Ord.1" {
		t.Errorf("SummaryKeys = %v", keys)
	}
}

func TestDBPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wfdb.wal")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db := New(st)
	ins := NewInstance("Ord", 2, map[string]expr.Value{"I1": expr.Num(5)})
	ins.RecordDone("S1", map[string]expr.Value{"O1": expr.Num(10)})
	if err := db.SaveInstance(ins); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSchema(sampleSchema()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db2 := New(st2)
	got, ok, err := db2.LoadInstance("Ord", 2)
	if err != nil || !ok {
		t.Fatalf("recovery failed: (%v, %v)", ok, err)
	}
	if !got.Data["S1.O1"].Equal(expr.Num(10)) {
		t.Error("recovered instance lost data")
	}
	if _, ok, _ := db2.LoadSchema("Ord"); !ok {
		t.Error("recovered db lost schema")
	}
	if db2.Store() == nil {
		t.Error("Store() accessor nil")
	}
}
