package model

import (
	"fmt"
	"sync"

	"crew/internal/expr"
)

// ExecMode tells a program in which capacity it is being invoked, supporting
// the four OCR actions: complete re-execution, incremental re-execution,
// complete compensation and partial compensation.
type ExecMode int

const (
	// ModeExecute is a normal (first or complete re-) execution.
	ModeExecute ExecMode = iota
	// ModeIncremental is an incremental re-execution that builds on the
	// previous results.
	ModeIncremental
	// ModeCompensate is a complete compensation of the previous execution.
	ModeCompensate
	// ModePartialComp is a partial compensation preceding an incremental
	// re-execution.
	ModePartialComp
)

// String names the mode.
func (m ExecMode) String() string {
	switch m {
	case ModeExecute:
		return "execute"
	case ModeIncremental:
		return "incremental"
	case ModeCompensate:
		return "compensate"
	case ModePartialComp:
		return "partial-compensate"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// PrevExecution captures what the agent recorded about a step's previous
// execution; OCR conditions and incremental re-executions consult it.
type PrevExecution struct {
	Inputs  map[string]expr.Value // keyed by full item name
	Outputs map[string]expr.Value // keyed by output short name
}

// ProgramContext is the information handed to a black-box program.
type ProgramContext struct {
	Workflow string
	Instance int
	Step     StepID
	Mode     ExecMode
	// Attempt counts executions of this step within the instance (1-based).
	Attempt int
	// Inputs holds the step's resolved input values, keyed by full name.
	Inputs map[string]expr.Value
	// Prev is non-nil on re-executions and compensations.
	Prev *PrevExecution
}

// InputEnv exposes the inputs as an expression environment.
func (c *ProgramContext) InputEnv() expr.Env { return expr.MapEnv(c.Inputs) }

// Program is a black-box step program. Returning an error signals a logical
// step failure (step.fail); outputs are keyed by short output names.
type Program func(ctx *ProgramContext) (map[string]expr.Value, error)

// StepFailure is the error type programs return for logical failures that
// the workflow's failure-handling specification should handle (as opposed to
// programming errors, which also surface as step.fail but are logged).
type StepFailure struct {
	Reason string
}

// Error implements error.
func (f *StepFailure) Error() string { return "step failure: " + f.Reason }

// Fail returns a StepFailure with the given reason.
func Fail(reason string) error { return &StepFailure{Reason: reason} }

// Registry maps program names to implementations. It is safe for concurrent
// use: agents on many goroutines resolve programs from one shared registry.
type Registry struct {
	mu       sync.RWMutex
	programs map[string]Program
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry {
	return &Registry{programs: make(map[string]Program)}
}

// Register binds a program name; it panics on duplicate registration, which
// is always a configuration bug.
func (r *Registry) Register(name string, p Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.programs[name]; dup {
		panic(fmt.Sprintf("model: duplicate program %q", name))
	}
	r.programs[name] = p
}

// Replace binds a program name, overwriting any existing binding. Tests use
// it to substitute failure-injecting variants.
func (r *Registry) Replace(name string, p Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.programs[name] = p
}

// Lookup resolves a program name.
func (r *Registry) Lookup(name string) (Program, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.programs[name]
	return p, ok
}

// Names returns the registered program names (unsorted).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.programs))
	for n := range r.programs {
		out = append(out, n)
	}
	return out
}

// NopProgram succeeds and produces the step's declared outputs as nulls; the
// default when examples or tests don't care about data.
func NopProgram(outputs ...string) Program {
	return func(*ProgramContext) (map[string]expr.Value, error) {
		out := make(map[string]expr.Value, len(outputs))
		for _, o := range outputs {
			out[o] = expr.Null()
		}
		return out, nil
	}
}

// ConstProgram produces fixed outputs.
func ConstProgram(outputs map[string]expr.Value) Program {
	return func(*ProgramContext) (map[string]expr.Value, error) {
		out := make(map[string]expr.Value, len(outputs))
		for k, v := range outputs {
			out[k] = v
		}
		return out, nil
	}
}

// FailNTimes fails the first n invocations in ModeExecute/ModeIncremental,
// then delegates to inner. Used to script deterministic failure scenarios.
func FailNTimes(n int, inner Program) Program {
	var mu sync.Mutex
	remaining := n
	return func(ctx *ProgramContext) (map[string]expr.Value, error) {
		if ctx.Mode == ModeExecute || ctx.Mode == ModeIncremental {
			mu.Lock()
			fail := remaining > 0
			if fail {
				remaining--
			}
			mu.Unlock()
			if fail {
				return nil, Fail("injected failure")
			}
		}
		return inner(ctx)
	}
}
