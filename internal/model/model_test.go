package model

import (
	"strings"
	"testing"
)

// linear builds S1 -> S2 -> S3.
func linear(t *testing.T) *Schema {
	t.Helper()
	return NewSchema("Lin", "I1").
		Step("S1", "p1", WithOutputs("O1"), WithCompensation("c1")).
		Step("S2", "p2", WithInputs("S1.O1"), WithOutputs("O1"), WithCompensation("c2")).
		Step("S3", "p3", WithInputs("S2.O1", "WF.I1")).
		Seq("S1", "S2", "S3").
		MustBuild()
}

// diamond builds S1 -> {S2, S3} -> S4 (parallel branch and AND-join).
func diamond(t *testing.T) *Schema {
	t.Helper()
	return NewSchema("Dia").
		Step("S1", "p1").
		Step("S2", "p2").
		Step("S3", "p3").
		Step("S4", "p4", WithJoin(JoinAll)).
		Arc("S1", "S2").
		Arc("S1", "S3").
		Arc("S2", "S4").
		Arc("S3", "S4").
		MustBuild()
}

// ifElse builds the paper's Figure 3 shape:
// S1 -> S2 -> (S3 -> S4 | S6) -> S5, where S5 is an XOR-join.
func ifElse(t *testing.T) *Schema {
	t.Helper()
	return NewSchema("Fig3", "I1").
		Step("S1", "p1").
		Step("S2", "p2", WithOutputs("O1"), WithCompensation("c2")).
		Step("S3", "p3", WithCompensation("c3")).
		Step("S4", "p4", WithCompensation("c4")).
		Step("S6", "p6", WithCompensation("c6")).
		Step("S5", "p5", WithJoin(JoinAny)).
		Seq("S1", "S2").
		CondArc("S2", "S3", "S2.O1 > 0").
		CondArc("S2", "S6", "S2.O1 <= 0").
		Arc("S3", "S4").
		Arc("S4", "S5").
		Arc("S6", "S5").
		OnFailure("S4", "S2", 3).
		MustBuild()
}

func TestStepIDRefAndWorkflowInput(t *testing.T) {
	if got := StepID("S2").Ref("O1"); got != "S2.O1" {
		t.Errorf("Ref = %q", got)
	}
	if got := WorkflowInput("I1"); got != "WF.I1" {
		t.Errorf("WorkflowInput = %q", got)
	}
}

func TestJoinPolicyAndArcKindStrings(t *testing.T) {
	if JoinAll.String() != "all" || JoinAny.String() != "any" {
		t.Error("JoinPolicy strings wrong")
	}
	if Control.String() != "control" || Data.String() != "data" {
		t.Error("ArcKind strings wrong")
	}
}

func TestBuilderProducesValidSchema(t *testing.T) {
	s := linear(t)
	if s.Name != "Lin" || len(s.Steps) != 3 || len(s.Arcs) != 2 {
		t.Errorf("unexpected schema: %v", s)
	}
	if s.Step("S2").Inputs[0] != "S1.O1" {
		t.Error("inputs not preserved")
	}
	if s.Step("missing") != nil {
		t.Error("missing step should be nil")
	}
	list := s.StepList()
	if len(list) != 3 || list[0].ID != "S1" || list[2].ID != "S3" {
		t.Errorf("StepList order wrong: %v", list)
	}
}

func TestCompensable(t *testing.T) {
	s := linear(t)
	if !s.Step("S1").Compensable() {
		t.Error("S1 should be compensable")
	}
	if s.Step("S3").Compensable() {
		t.Error("S3 should not be compensable")
	}
	nested := &Step{ID: "N", Nested: "Child"}
	if !nested.Compensable() {
		t.Error("nested steps are compensable via their children")
	}
}

func TestFailurePolicyAttempts(t *testing.T) {
	if (FailurePolicy{}).Attempts() != 3 {
		t.Error("default attempts should be 3")
	}
	if (FailurePolicy{MaxAttempts: 7}).Attempts() != 7 {
		t.Error("explicit attempts not honored")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := ifElse(t)
	s.CompSets = [][]StepID{{"S2", "S3"}}
	c := s.Clone()
	c.Steps["S1"].Program = "mutated"
	c.Steps["S1"].EligibleAgents = append(c.Steps["S1"].EligibleAgents, "aX")
	c.CompSets[0][0] = "S9"
	c.OnFailure["S4"] = FailurePolicy{RollbackTo: "S1"}
	if s.Steps["S1"].Program == "mutated" {
		t.Error("Clone shares step structs")
	}
	if s.CompSets[0][0] == "S9" {
		t.Error("Clone shares comp sets")
	}
	if s.OnFailure["S4"].RollbackTo != "S2" {
		t.Error("Clone shares failure map")
	}
	if c.Name != s.Name || len(c.Order) != len(s.Order) {
		t.Error("Clone dropped fields")
	}
}

func TestCompSetOf(t *testing.T) {
	s := linear(t)
	s.CompSets = [][]StepID{{"S1", "S2"}}
	if set := s.CompSetOf("S1"); len(set) != 2 {
		t.Errorf("CompSetOf(S1) = %v", set)
	}
	if set := s.CompSetOf("S3"); set != nil {
		t.Errorf("CompSetOf(S3) = %v, want nil", set)
	}
}

func TestSchemaString(t *testing.T) {
	s := linear(t)
	if got := s.String(); !strings.Contains(got, "Lin") || !strings.Contains(got, "3 steps") {
		t.Errorf("String() = %q", got)
	}
}

func TestLibraryBasics(t *testing.T) {
	l := NewLibrary()
	l.Add(linear(t))
	l.Add(diamond(t))
	if l.Schema("Lin") == nil || l.Schema("Dia") == nil {
		t.Fatal("schemas not retrievable")
	}
	if l.Schema("nope") != nil {
		t.Error("unknown schema should be nil")
	}
	names := l.Names()
	if len(names) != 2 || names[0] != "Lin" || names[1] != "Dia" {
		t.Errorf("Names = %v", names)
	}
	// Re-adding replaces without duplicating order.
	l.Add(linear(t))
	if len(l.Names()) != 2 {
		t.Error("re-Add duplicated name")
	}
}

func TestCoordSpecMentionsAndCoordFor(t *testing.T) {
	l := NewLibrary()
	l.Add(linear(t))
	l.Add(diamond(t))
	ro := CoordSpec{
		Kind: RelativeOrder,
		Name: "orders",
		Pairs: []ConflictPair{
			{A: StepRef{"Lin", "S1"}, B: StepRef{"Dia", "S2"}},
			{A: StepRef{"Lin", "S2"}, B: StepRef{"Dia", "S3"}},
		},
	}
	mx := CoordSpec{
		Kind:       Mutex,
		Name:       "inventory",
		MutexSteps: []StepRef{{"Lin", "S3"}, {"Dia", "S4"}},
	}
	rd := CoordSpec{
		Kind:    RollbackDep,
		Trigger: StepRef{"Lin", "S2"},
		Target:  StepRef{"Dia", "S1"},
	}
	l.AddCoord(ro)
	l.AddCoord(mx)
	l.AddCoord(rd)

	if !ro.Mentions(StepRef{"Dia", "S3"}) || ro.Mentions(StepRef{"Dia", "S4"}) {
		t.Error("RelativeOrder Mentions wrong")
	}
	if !mx.Mentions(StepRef{"Lin", "S3"}) || mx.Mentions(StepRef{"Lin", "S1"}) {
		t.Error("Mutex Mentions wrong")
	}
	if !rd.Mentions(StepRef{"Dia", "S1"}) || rd.Mentions(StepRef{"Dia", "S2"}) {
		t.Error("RollbackDep Mentions wrong")
	}

	got := l.CoordFor(StepRef{"Lin", "S2"})
	if len(got) != 2 { // relative order pair 2 and rollback trigger
		t.Errorf("CoordFor = %d specs, want 2", len(got))
	}
}

func TestCoordKindAndStepRefString(t *testing.T) {
	if Mutex.String() != "mutex" || RelativeOrder.String() != "relative-order" || RollbackDep.String() != "rollback-dependency" {
		t.Error("CoordKind strings wrong")
	}
	if CoordKind(9).String() != "CoordKind(9)" {
		t.Error("unknown CoordKind should render numerically")
	}
	if (StepRef{"WF1", "S12"}).String() != "WF1.S12" {
		t.Error("StepRef.String wrong")
	}
}

func TestSortedAgents(t *testing.T) {
	l := NewLibrary()
	s := NewSchema("A").
		Step("S1", "p", WithAgents("z", "b")).
		Step("S2", "p", WithAgents("a")).
		Seq("S1", "S2").
		MustBuild()
	l.Add(s)
	got := l.SortedAgents()
	want := []string{"a", "b", "z"}
	if len(got) != 3 {
		t.Fatalf("SortedAgents = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedAgents = %v, want %v", got, want)
		}
	}
}

func TestExecutedBefore(t *testing.T) {
	order := []StepID{"S1", "S2", "S3"}
	if !ExecutedBefore(order, "S1", "S3") {
		t.Error("S1 before S3 expected")
	}
	if ExecutedBefore(order, "S3", "S1") {
		t.Error("S3 before S1 unexpected")
	}
	if ExecutedBefore(order, "S1", "SX") {
		t.Error("missing step should be false")
	}
}
