package model

import (
	"testing"
	"testing/quick"
)

func TestStartAndTerminalSteps(t *testing.T) {
	s := diamond(t)
	if got := s.StartSteps(); len(got) != 1 || got[0] != "S1" {
		t.Errorf("StartSteps = %v", got)
	}
	if got := s.TerminalSteps(); len(got) != 1 || got[0] != "S4" {
		t.Errorf("TerminalSteps = %v", got)
	}

	multi := NewSchema("M").
		Step("A", "p").
		Step("B", "p").
		Step("C", "p").
		Step("D", "p").
		Arc("A", "C").
		Arc("B", "D").
		MustBuild()
	if got := multi.StartSteps(); len(got) != 2 {
		t.Errorf("multi StartSteps = %v", got)
	}
	if got := multi.TerminalSteps(); len(got) != 2 {
		t.Errorf("multi TerminalSteps = %v", got)
	}
}

func TestLoopArcsDoNotAffectStartTerminal(t *testing.T) {
	s := NewSchema("L").
		Step("A", "p", WithOutputs("O1")).
		Step("B", "p").
		Arc("A", "B").
		LoopArc("B", "A", "A.O1 < 3").
		MustBuild()
	if got := s.StartSteps(); len(got) != 1 || got[0] != "A" {
		t.Errorf("StartSteps = %v", got)
	}
	if got := s.TerminalSteps(); len(got) != 1 || got[0] != "B" {
		t.Errorf("TerminalSteps = %v", got)
	}
	if got := s.LoopArcs("B"); len(got) != 1 || got[0].To != "A" {
		t.Errorf("LoopArcs = %v", got)
	}
	if got := s.LoopArcs("A"); len(got) != 0 {
		t.Errorf("LoopArcs(A) = %v", got)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	s := diamond(t)
	succ := s.ControlSuccessors("S1")
	if len(succ) != 2 || succ[0].To != "S2" || succ[1].To != "S3" {
		t.Errorf("ControlSuccessors(S1) = %v", succ)
	}
	pred := s.ControlPredecessors("S4")
	if len(pred) != 2 || pred[0] != "S2" || pred[1] != "S3" {
		t.Errorf("ControlPredecessors(S4) = %v", pred)
	}
	if got := s.ControlSuccessors("S4"); len(got) != 0 {
		t.Errorf("ControlSuccessors(S4) = %v", got)
	}
}

func TestBranchClassification(t *testing.T) {
	d := diamond(t)
	if !d.IsParallelBranch("S1") || d.IsBranching("S1") {
		t.Error("diamond S1 should be a parallel branch")
	}
	if !d.IsConfluence("S4") || d.IsConfluence("S2") {
		t.Error("diamond S4 confluence classification wrong")
	}

	ie := ifElse(t)
	if !ie.IsBranching("S2") || ie.IsParallelBranch("S2") {
		t.Error("ifElse S2 should be an if-then-else branch")
	}
	if ie.IsBranching("S1") || ie.IsParallelBranch("S1") {
		t.Error("single-successor step misclassified")
	}
	if !ie.IsConfluence("S5") {
		t.Error("S5 should be a confluence")
	}
}

func TestDescendants(t *testing.T) {
	s := ifElse(t)
	d := s.Descendants("S2")
	for _, id := range []StepID{"S3", "S4", "S5", "S6"} {
		if !d[id] {
			t.Errorf("Descendants(S2) missing %s", id)
		}
	}
	if d["S1"] || d["S2"] {
		t.Error("Descendants should exclude ancestors and self")
	}
	di := s.DescendantsInclusive("S2")
	if !di["S2"] {
		t.Error("DescendantsInclusive should include origin")
	}
}

func TestLoopBody(t *testing.T) {
	s := NewSchema("L").
		Step("A", "p").
		Step("B", "p", WithOutputs("O1")).
		Step("C", "p").
		Step("D", "p").
		Seq("A", "B", "C", "D").
		LoopArc("C", "B", "B.O1 < 3").
		MustBuild()
	body := s.LoopBody("B", "C")
	if len(body) != 2 || body[0] != "B" || body[1] != "C" {
		t.Errorf("LoopBody = %v, want [B C]", body)
	}
	// Loop body with an internal branch.
	s2 := NewSchema("L2").
		Step("A", "p").
		Step("B", "p", WithOutputs("O1")).
		Step("X", "p").
		Step("Y", "p").
		Step("C", "p", WithJoin(JoinAll)).
		Step("D", "p").
		Arc("A", "B").
		Arc("B", "X").
		Arc("B", "Y").
		Arc("X", "C").
		Arc("Y", "C").
		Arc("C", "D").
		LoopArc("C", "B", "B.O1 < 3").
		MustBuild()
	body2 := s2.LoopBody("B", "C")
	want := map[StepID]bool{"B": true, "X": true, "Y": true, "C": true}
	if len(body2) != len(want) {
		t.Fatalf("LoopBody = %v", body2)
	}
	for _, id := range body2 {
		if !want[id] {
			t.Fatalf("LoopBody contains unexpected %s", id)
		}
	}
}

func TestDataSourceStepsAndProducer(t *testing.T) {
	s := linear(t)
	src := s.DataSourceSteps("S3")
	if len(src) != 1 || src[0] != "S2" {
		t.Errorf("DataSourceSteps(S3) = %v, want [S2]", src)
	}
	if got := s.ProducerOf("S1.O1"); got != "S1" {
		t.Errorf("ProducerOf(S1.O1) = %v", got)
	}
	if got := s.ProducerOf("WF.I1"); got != "" {
		t.Errorf("ProducerOf(WF.I1) = %v, want \"\"", got)
	}
	if got := s.DataSourceSteps("missing"); got != nil {
		t.Errorf("DataSourceSteps(missing) = %v", got)
	}
}

func TestTopoOrder(t *testing.T) {
	s := diamond(t)
	order := s.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("TopoOrder = %v", order)
	}
	pos := make(map[StepID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop && pos[a.From] >= pos[a.To] {
			t.Errorf("TopoOrder violates arc %s->%s: %v", a.From, a.To, order)
		}
	}
	if order[0] != "S1" {
		t.Errorf("TopoOrder should start with S1: %v", order)
	}
}

func TestPathExists(t *testing.T) {
	s := ifElse(t)
	if !s.PathExists("S1", "S5") {
		t.Error("S1 should reach S5")
	}
	if s.PathExists("S4", "S3") {
		t.Error("S4 should not reach S3")
	}
	if !s.PathExists("S3", "S3") {
		t.Error("trivial path to self")
	}
}

// Property: for random linear chains, TopoOrder equals definition order and
// Descendants of the i-th step has len n-1-i.
func TestPropertyLinearChains(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 2
		b := NewSchema("Chain")
		var ids []StepID
		for i := 0; i < n; i++ {
			id := StepID(string(rune('A' + i)))
			ids = append(ids, id)
			b.Step(id, "p")
		}
		b.Seq(ids...)
		s := b.MustBuild()
		order := s.TopoOrder()
		if len(order) != n {
			return false
		}
		for i := range ids {
			if order[i] != ids[i] {
				return false
			}
			if len(s.Descendants(ids[i])) != n-1-i {
				return false
			}
		}
		return len(s.StartSteps()) == 1 && len(s.TerminalSteps()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
