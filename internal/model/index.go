package model

import (
	"sync/atomic"

	"crew/internal/event"
	"crew/internal/expr"
)

// graphIndex caches every derived view of a schema's control graph, plus the
// compiled form of every condition expression appearing in the schema. The
// engines re-derive these views on every rule-evaluation round, which made
// graph traversal and expression compilation the dominant allocators on the
// hot path; a frozen schema answers them from the index instead.
//
// The index is built by freeze() when validation succeeds and is dropped by
// any schema mutation (AddStep/AddArc), so an index, once observed, always
// matches the schema. Cached slices and maps are shared with callers and
// must be treated as read-only.
type graphIndex struct {
	succ      map[StepID][]Arc
	loops     map[StepID][]Arc
	preds     map[StepID][]StepID
	starts    []StepID
	terminals []StepID
	desc      map[StepID]map[StepID]bool
	dataSrc   map[StepID][]StepID
	topo      []StepID
	producer  map[string]StepID
	conds     map[string]*expr.Expr
	// Interned per-step name strings: the step.done/step.fail/
	// step.compensated event names and the full data-table name of every
	// declared output. Run-time layers build these strings once per posted
	// event otherwise, which shows up as a top allocator under load.
	doneEv map[StepID]string
	failEv map[StepID]string
	compEv map[StepID]string
	refs   map[StepID]map[string]string

	// ruleCache is an opaque memoization slot for the rules package (the
	// generated rule templates of this schema). Keeping it inside the index
	// ties its lifetime to the schema and drops it on mutation, without the
	// model package knowing the cached type.
	ruleCache atomic.Value
}

// idxHolder wraps the atomic index pointer so Schema stays a plain struct
// (the atomic field must not be copied; Schema values never are — Clone
// builds a fresh literal — but keeping the pointer behind a named type makes
// the intent explicit).
type idxHolder = atomic.Pointer[graphIndex]

// index returns the frozen graph index, or nil if the schema has been
// mutated since the last successful validation.
func (s *Schema) index() *graphIndex { return s.idx.Load() }

// invalidateIndex drops the cached index after a mutation.
func (s *Schema) invalidateIndex() { s.idx.Store(nil) }

// freeze (re)builds the graph index. Validate calls it on success; until
// then every accessor computes its answer from scratch, so schemas that are
// never validated keep the original semantics.
func (s *Schema) freeze() {
	ix := &graphIndex{
		succ:     make(map[StepID][]Arc, len(s.Steps)),
		loops:    map[StepID][]Arc{},
		preds:    make(map[StepID][]StepID, len(s.Steps)),
		desc:     make(map[StepID]map[StepID]bool, len(s.Steps)),
		dataSrc:  make(map[StepID][]StepID, len(s.Steps)),
		producer: map[string]StepID{},
		conds:    map[string]*expr.Expr{},
		doneEv:   make(map[StepID]string, len(s.Steps)),
		failEv:   make(map[StepID]string, len(s.Steps)),
		compEv:   make(map[StepID]string, len(s.Steps)),
		refs:     make(map[StepID]map[string]string, len(s.Steps)),
	}
	for _, a := range s.Arcs {
		if a.Kind != Control {
			continue
		}
		if a.Loop {
			ix.loops[a.From] = append(ix.loops[a.From], a)
		} else {
			ix.succ[a.From] = append(ix.succ[a.From], a)
			ix.preds[a.To] = append(ix.preds[a.To], a.From)
		}
	}
	for _, id := range s.Order {
		if len(ix.preds[id]) == 0 {
			ix.starts = append(ix.starts, id)
		}
		if len(ix.succ[id]) == 0 {
			ix.terminals = append(ix.terminals, id)
		}
	}
	for _, id := range s.Order {
		out := make(map[StepID]bool)
		var visit func(StepID)
		visit = func(cur StepID) {
			for _, a := range ix.succ[cur] {
				if !out[a.To] {
					out[a.To] = true
					visit(a.To)
				}
			}
		}
		visit(id)
		ix.desc[id] = out
		if src := s.computeDataSourceSteps(id); src != nil {
			ix.dataSrc[id] = src
		}
		ix.doneEv[id] = event.DoneName(string(id))
		ix.failEv[id] = event.FailName(string(id))
		ix.compEv[id] = event.CompensatedName(string(id))
		if outs := s.Steps[id].Outputs; len(outs) > 0 {
			rf := make(map[string]string, len(outs))
			for _, out := range outs {
				full := id.Ref(out)
				rf[out] = full
				ix.producer[full] = id
			}
			ix.refs[id] = rf
		}
		if rc := s.Steps[id].ReexecCond; rc != "" {
			if e, err := expr.Compile(rc); err == nil {
				ix.conds[rc] = e
			}
		}
	}
	for _, a := range s.Arcs {
		if a.Cond == "" {
			continue
		}
		if _, ok := ix.conds[a.Cond]; ok {
			continue
		}
		if e, err := expr.Compile(a.Cond); err == nil {
			ix.conds[a.Cond] = e
		}
	}
	ix.topo = s.computeTopoOrder()
	s.idx.Store(ix)
}

// Frozen reports whether the schema carries a valid graph index (validated
// and unmutated since).
func (s *Schema) Frozen() bool { return s.index() != nil }

// TemplateCache returns the schema's opaque memoization slot for derived
// per-schema artifacts (the rules package stores generated rule templates
// there), or nil if the schema is not frozen. All stores must use one
// concrete type.
func (s *Schema) TemplateCache() *atomic.Value {
	if ix := s.index(); ix != nil {
		return &ix.ruleCache
	}
	return nil
}

// DoneEventOf returns the step.done event name of a step, interned for
// frozen schemas.
func (s *Schema) DoneEventOf(id StepID) string {
	if ix := s.index(); ix != nil {
		if n, ok := ix.doneEv[id]; ok {
			return n
		}
	}
	return event.DoneName(string(id))
}

// FailEventOf returns the step.fail event name of a step, interned for
// frozen schemas.
func (s *Schema) FailEventOf(id StepID) string {
	if ix := s.index(); ix != nil {
		if n, ok := ix.failEv[id]; ok {
			return n
		}
	}
	return event.FailName(string(id))
}

// CompEventOf returns the step.compensated event name of a step, interned
// for frozen schemas.
func (s *Schema) CompEventOf(id StepID) string {
	if ix := s.index(); ix != nil {
		if n, ok := ix.compEv[id]; ok {
			return n
		}
	}
	return event.CompensatedName(string(id))
}

// OutputRef returns the full data-table name of a step's declared output,
// interned for frozen schemas.
func (s *Schema) OutputRef(id StepID, short string) string {
	if ix := s.index(); ix != nil {
		if n, ok := ix.refs[id][short]; ok {
			return n
		}
	}
	return id.Ref(short)
}

// CondExpr returns the compiled form of a condition source appearing in the
// schema (arc conditions, loop conditions, re-execution conditions). Frozen
// schemas answer from the compilation cache; unvalidated schemas (or sources
// not present in the schema text) compile afresh.
func (s *Schema) CondExpr(src string) (*expr.Expr, error) {
	if ix := s.index(); ix != nil {
		if e, ok := ix.conds[src]; ok {
			return e, nil
		}
	}
	return expr.Compile(src)
}
