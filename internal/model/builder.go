package model

// Builder constructs schemas fluently; examples and tests use it instead of
// hand-assembling the maps. Errors surface from Build via Schema.Validate.
type Builder struct {
	s *Schema
}

// NewSchema starts a builder for a workflow class.
func NewSchema(name string, inputs ...string) *Builder {
	return &Builder{s: &Schema{
		Name:   name,
		Inputs: inputs,
		Steps:  make(map[StepID]*Step),
	}}
}

// StepOption customizes a step added via the builder.
type StepOption func(*Step)

// WithAgents sets the eligible agents.
func WithAgents(agents ...string) StepOption {
	return func(st *Step) { st.EligibleAgents = agents }
}

// WithCompensation sets the compensation program name.
func WithCompensation(program string) StepOption {
	return func(st *Step) { st.Compensation = program }
}

// WithInputs declares consumed data items (full names).
func WithInputs(items ...string) StepOption {
	return func(st *Step) { st.Inputs = items }
}

// WithOutputs declares produced data items (short names).
func WithOutputs(items ...string) StepOption {
	return func(st *Step) { st.Outputs = items }
}

// WithUpdate marks the step as an update (vs query) step.
func WithUpdate() StepOption {
	return func(st *Step) { st.Update = true }
}

// WithJoin sets the confluence policy.
func WithJoin(p JoinPolicy) StepOption {
	return func(st *Step) { st.Join = p }
}

// WithReexecCond sets the OCR compensation-and-re-execution condition.
func WithReexecCond(cond string) StepOption {
	return func(st *Step) { st.ReexecCond = cond }
}

// WithIncremental marks the step as supporting partial compensation and
// incremental re-execution.
func WithIncremental() StepOption {
	return func(st *Step) { st.Incremental = true }
}

// WithName sets the human-readable step label.
func WithName(name string) StepOption {
	return func(st *Step) { st.Name = name }
}

// Step adds a step executing the named program.
func (b *Builder) Step(id StepID, program string, opts ...StepOption) *Builder {
	st := &Step{ID: id, Program: program}
	for _, o := range opts {
		o(st)
	}
	b.s.AddStep(st)
	return b
}

// NestedStep adds a step that runs a child workflow.
func (b *Builder) NestedStep(id StepID, child string, opts ...StepOption) *Builder {
	st := &Step{ID: id, Nested: child}
	for _, o := range opts {
		o(st)
	}
	b.s.AddStep(st)
	return b
}

// Arc adds an unconditional control arc.
func (b *Builder) Arc(from, to StepID) *Builder {
	b.s.AddArc(Arc{From: from, To: to, Kind: Control})
	return b
}

// CondArc adds a conditioned control arc (if-then-else branch leg).
func (b *Builder) CondArc(from, to StepID, cond string) *Builder {
	b.s.AddArc(Arc{From: from, To: to, Kind: Control, Cond: cond})
	return b
}

// LoopArc adds a back arc: when from completes and cond holds, control
// returns to to.
func (b *Builder) LoopArc(from, to StepID, cond string) *Builder {
	b.s.AddArc(Arc{From: from, To: to, Kind: Control, Cond: cond, Loop: true})
	return b
}

// DataArc adds an explicit data arc.
func (b *Builder) DataArc(from, to StepID) *Builder {
	b.s.AddArc(Arc{From: from, To: to, Kind: Data})
	return b
}

// Seq adds unconditional control arcs chaining the given steps in order.
func (b *Builder) Seq(ids ...StepID) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.Arc(ids[i], ids[i+1])
	}
	return b
}

// CompSet declares a compensation dependent set.
func (b *Builder) CompSet(ids ...StepID) *Builder {
	b.s.CompSets = append(b.s.CompSets, ids)
	return b
}

// OnFailure sets the failure policy of a step.
func (b *Builder) OnFailure(step, rollbackTo StepID, maxAttempts int) *Builder {
	if b.s.OnFailure == nil {
		b.s.OnFailure = make(map[StepID]FailurePolicy)
	}
	b.s.OnFailure[step] = FailurePolicy{RollbackTo: rollbackTo, MaxAttempts: maxAttempts}
	return b
}

// AbortCompensate limits the steps compensated on user abort.
func (b *Builder) AbortCompensate(ids ...StepID) *Builder {
	b.s.AbortCompensate = ids
	return b
}

// Build validates and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild is Build panicking on error; for statically known schemas.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
