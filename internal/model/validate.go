package model

import (
	"errors"
	"fmt"
	"strings"

	"crew/internal/expr"
)

// ValidationError aggregates all problems found in a schema or library.
type ValidationError struct {
	Subject  string
	Problems []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("model: %s invalid: %s", e.Subject, strings.Join(e.Problems, "; "))
}

// Validate checks structural well-formedness of the schema:
//   - at least one step; step IDs well-formed and unique (enforced by map);
//   - every arc references defined steps; loop arcs carry a condition;
//   - the non-loop control graph is acyclic;
//   - at least one start step and one terminal step;
//   - arc and OCR conditions compile;
//   - compensation dependent sets reference compensable steps, and no step
//     belongs to two sets;
//   - failure policies roll back to steps that can reach the failing step;
//   - step inputs that name another step's output have a matching producer.
func (s *Schema) Validate() error {
	var probs []string
	add := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	if s.Name == "" {
		add("schema has no name")
	}
	if len(s.Steps) == 0 {
		add("schema has no steps")
	}
	if len(s.Order) != len(s.Steps) {
		add("step order list and step map disagree (%d vs %d)", len(s.Order), len(s.Steps))
	}
	for _, id := range s.Order {
		st := s.Steps[id]
		if st == nil {
			add("order lists unknown step %s", id)
			continue
		}
		if st.ID != id {
			add("step %s has mismatched ID field %s", id, st.ID)
		}
		if strings.Contains(string(id), ".") {
			add("step ID %s must not contain '.'", id)
		}
		if st.Program == "" && st.Nested == "" {
			add("step %s has neither program nor nested workflow", id)
		}
		if st.Program != "" && st.Nested != "" {
			add("step %s has both program and nested workflow", id)
		}
		if st.ReexecCond != "" {
			if _, err := expr.Compile(st.ReexecCond); err != nil {
				add("step %s reexec condition: %v", id, err)
			}
		}
		for _, o := range st.Outputs {
			if o == "" || strings.Contains(o, ".") {
				add("step %s output %q must be a plain name", id, o)
			}
		}
	}

	for i, a := range s.Arcs {
		if s.Steps[a.From] == nil {
			add("arc %d references unknown step %s", i, a.From)
		}
		if s.Steps[a.To] == nil {
			add("arc %d references unknown step %s", i, a.To)
		}
		if a.Cond != "" {
			if _, err := expr.Compile(a.Cond); err != nil {
				add("arc %s->%s condition: %v", a.From, a.To, err)
			}
		}
		if a.Loop {
			if a.Kind != Control {
				add("loop arc %s->%s must be a control arc", a.From, a.To)
			}
			if a.Cond == "" {
				add("loop arc %s->%s needs a repeat condition", a.From, a.To)
			}
		}
	}

	if len(probs) == 0 { // graph checks only on structurally sane schemas
		if cyc := s.findControlCycle(); cyc != nil {
			add("control graph has a cycle: %v (mark back arcs Loop)", cyc)
		}
		if len(s.StartSteps()) == 0 {
			add("no start step (every step has an incoming control arc)")
		}
		if len(s.TerminalSteps()) == 0 {
			add("no terminal step (every step has an outgoing control arc)")
		}
		for _, a := range s.Arcs {
			if a.Loop && !s.PathExists(a.To, a.From) {
				add("loop arc %s->%s: head does not reach tail", a.From, a.To)
			}
		}
	}

	seenInSet := make(map[StepID]int)
	for i, set := range s.CompSets {
		if len(set) < 2 {
			add("compensation dependent set %d has fewer than 2 members", i)
		}
		for _, id := range set {
			st := s.Steps[id]
			if st == nil {
				add("compensation set %d references unknown step %s", i, id)
				continue
			}
			if !st.Compensable() {
				add("compensation set %d member %s is not compensable", i, id)
			}
			if prev, dup := seenInSet[id]; dup && prev != i {
				add("step %s belongs to compensation sets %d and %d", id, prev, i)
			}
			seenInSet[id] = i
		}
	}

	for id, pol := range s.OnFailure {
		if s.Steps[id] == nil {
			add("failure policy for unknown step %s", id)
			continue
		}
		if s.Steps[pol.RollbackTo] == nil {
			add("failure policy of %s rolls back to unknown step %s", id, pol.RollbackTo)
		} else if len(probs) == 0 && !s.PathExists(pol.RollbackTo, id) {
			add("failure policy of %s rolls back to %s, which cannot reach it", id, pol.RollbackTo)
		}
	}

	inputSet := make(map[string]bool, len(s.Inputs))
	for _, in := range s.Inputs {
		inputSet[WorkflowInput(in)] = true
	}
	for _, id := range s.Order {
		st := s.Steps[id]
		if st == nil {
			continue
		}
		for _, in := range st.Inputs {
			if inputSet[in] {
				continue
			}
			if s.ProducerOf(in) == "" {
				add("step %s input %q has no producer and is not a workflow input", id, in)
			}
		}
	}

	if len(probs) > 0 {
		return &ValidationError{Subject: "schema " + s.Name, Problems: probs}
	}
	s.freeze()
	return nil
}

// findControlCycle returns a cycle in the non-loop control graph, or nil.
func (s *Schema) findControlCycle() []StepID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[StepID]int, len(s.Steps))
	var stack []StepID
	var cycle []StepID
	var visit func(StepID) bool
	visit = func(id StepID) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, a := range s.ControlSuccessors(id) {
			switch color[a.To] {
			case gray:
				// found: slice the stack from a.To
				for i, sid := range stack {
					if sid == a.To {
						cycle = append(append([]StepID(nil), stack[i:]...), a.To)
						return true
					}
				}
			case white:
				if visit(a.To) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
		return false
	}
	for _, id := range s.Order {
		if color[id] == white && visit(id) {
			return cycle
		}
	}
	return nil
}

// Validate checks every schema in the library, that nested references
// resolve, and that coordination specs reference existing steps.
func (l *Library) Validate() error {
	var probs []string
	add := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	var verr *ValidationError
	for _, name := range l.order {
		if err := l.schemas[name].Validate(); err != nil {
			if errors.As(err, &verr) {
				probs = append(probs, verr.Problems...)
			} else {
				add("%v", err)
			}
		}
	}

	resolve := func(ref StepRef) bool {
		sc := l.schemas[ref.Workflow]
		return sc != nil && sc.Steps[ref.Step] != nil
	}

	for _, name := range l.order {
		for id, st := range l.schemas[name].Steps {
			if st.Nested != "" {
				child := l.schemas[st.Nested]
				if child == nil {
					add("step %s.%s nests unknown workflow %q", name, id, st.Nested)
				} else if child.Name == name {
					add("step %s.%s nests its own workflow", name, id)
				}
			}
		}
	}

	for i, c := range l.Coord {
		switch c.Kind {
		case Mutex:
			if len(c.MutexSteps) < 2 {
				add("mutex spec %d needs at least 2 steps", i)
			}
			for _, r := range c.MutexSteps {
				if !resolve(r) {
					add("mutex spec %d references unknown step %s", i, r)
				}
			}
		case RelativeOrder:
			if len(c.Pairs) == 0 {
				add("relative-order spec %d has no conflict pairs", i)
			}
			for _, p := range c.Pairs {
				if !resolve(p.A) || !resolve(p.B) {
					add("relative-order spec %d references unknown step (%s, %s)", i, p.A, p.B)
				}
				if p.A.Workflow == p.B.Workflow && len(c.Pairs) > 0 && c.Pairs[0] != p && p.A.Workflow != c.Pairs[0].A.Workflow {
					add("relative-order spec %d mixes workflow sides", i)
				}
			}
		case RollbackDep:
			if !resolve(c.Trigger) {
				add("rollback-dependency spec %d has unknown trigger %s", i, c.Trigger)
			}
			if !resolve(c.Target) {
				add("rollback-dependency spec %d has unknown target %s", i, c.Target)
			}
		default:
			add("coordination spec %d has unknown kind %d", i, int(c.Kind))
		}
	}

	if len(probs) > 0 {
		return &ValidationError{Subject: "library", Problems: probs}
	}
	return nil
}
