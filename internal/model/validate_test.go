package model

import (
	"strings"
	"testing"
)

func wantInvalid(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("Validate succeeded, want error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Validate error %q does not mention %q", err, fragment)
	}
}

func TestValidateAcceptsGoodSchemas(t *testing.T) {
	for _, s := range []*Schema{linear(t), diamond(t), ifElse(t)} {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", s.Name, err)
		}
	}
}

func TestValidateRejectsEmptyAndUnnamed(t *testing.T) {
	err := (&Schema{}).Validate()
	wantInvalid(t, err, "no steps")
	wantInvalid(t, err, "no name")
}

func TestValidateRejectsDotInStepID(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S.1", Program: "p"})
	wantInvalid(t, s.Validate(), "must not contain '.'")
}

func TestValidateRejectsMissingProgram(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1"})
	wantInvalid(t, s.Validate(), "neither program nor nested")
}

func TestValidateRejectsProgramAndNested(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1", Program: "p", Nested: "Child"})
	wantInvalid(t, s.Validate(), "both program and nested")
}

func TestValidateRejectsUnknownArcEndpoints(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1", Program: "p"})
	s.AddArc(Arc{From: "S1", To: "S9", Kind: Control})
	wantInvalid(t, s.Validate(), "unknown step S9")
}

func TestValidateRejectsBadConditions(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1", Program: "p"})
	s.AddStep(&Step{ID: "S2", Program: "p"})
	s.AddArc(Arc{From: "S1", To: "S2", Kind: Control, Cond: "1 +"})
	wantInvalid(t, s.Validate(), "condition")

	s2 := &Schema{Name: "X"}
	s2.AddStep(&Step{ID: "S1", Program: "p", ReexecCond: ")("})
	wantInvalid(t, s2.Validate(), "reexec condition")
}

func TestValidateRejectsCycles(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1", Program: "p"})
	s.AddStep(&Step{ID: "S2", Program: "p"})
	s.AddArc(Arc{From: "S1", To: "S2", Kind: Control})
	s.AddArc(Arc{From: "S2", To: "S1", Kind: Control})
	wantInvalid(t, s.Validate(), "cycle")
}

func TestValidateLoopArcRules(t *testing.T) {
	// Loop arc without condition.
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "A", Program: "p"})
	s.AddStep(&Step{ID: "B", Program: "p"})
	s.AddArc(Arc{From: "A", To: "B", Kind: Control})
	s.AddArc(Arc{From: "B", To: "A", Kind: Control, Loop: true})
	wantInvalid(t, s.Validate(), "repeat condition")

	// Loop arc whose head cannot reach its tail.
	s2 := &Schema{Name: "X"}
	s2.AddStep(&Step{ID: "A", Program: "p"})
	s2.AddStep(&Step{ID: "B", Program: "p"})
	s2.AddStep(&Step{ID: "C", Program: "p"})
	s2.AddArc(Arc{From: "A", To: "B", Kind: Control})
	s2.AddArc(Arc{From: "A", To: "C", Kind: Control})
	s2.AddArc(Arc{From: "B", To: "C", Kind: Control, Loop: true, Cond: "true"})
	wantInvalid(t, s2.Validate(), "head does not reach tail")

	// Loop arc of kind Data.
	s3 := &Schema{Name: "X"}
	s3.AddStep(&Step{ID: "A", Program: "p"})
	s3.AddStep(&Step{ID: "B", Program: "p"})
	s3.AddArc(Arc{From: "A", To: "B", Kind: Control})
	s3.AddArc(Arc{From: "B", To: "A", Kind: Data, Loop: true, Cond: "true"})
	wantInvalid(t, s3.Validate(), "must be a control arc")
}

func TestValidateCompSets(t *testing.T) {
	s := linear(t)
	s.CompSets = [][]StepID{{"S1"}}
	wantInvalid(t, s.Validate(), "fewer than 2")

	s = linear(t)
	s.CompSets = [][]StepID{{"S1", "S9"}}
	wantInvalid(t, s.Validate(), "unknown step S9")

	s = linear(t)
	s.CompSets = [][]StepID{{"S1", "S3"}} // S3 not compensable
	wantInvalid(t, s.Validate(), "not compensable")

	s = linear(t)
	s.CompSets = [][]StepID{{"S1", "S2"}, {"S2", "S1"}}
	wantInvalid(t, s.Validate(), "belongs to compensation sets")
}

func TestValidateFailurePolicies(t *testing.T) {
	s := linear(t)
	s.OnFailure = map[StepID]FailurePolicy{"S9": {RollbackTo: "S1"}}
	wantInvalid(t, s.Validate(), "failure policy for unknown step")

	s = linear(t)
	s.OnFailure = map[StepID]FailurePolicy{"S2": {RollbackTo: "S9"}}
	wantInvalid(t, s.Validate(), "unknown step S9")

	s = linear(t)
	s.OnFailure = map[StepID]FailurePolicy{"S1": {RollbackTo: "S3"}}
	wantInvalid(t, s.Validate(), "cannot reach")
}

func TestValidateInputsNeedProducers(t *testing.T) {
	s := NewSchema("X", "I1").
		Step("S1", "p", WithInputs("WF.I2")). // not a declared input
		MustBuildUnchecked()
	wantInvalid(t, s.Validate(), "no producer")

	ok := NewSchema("X", "I1").
		Step("S1", "p", WithInputs("WF.I1")).
		MustBuild()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestValidateOutputsPlainNames(t *testing.T) {
	s := &Schema{Name: "X"}
	s.AddStep(&Step{ID: "S1", Program: "p", Outputs: []string{"O.1"}})
	wantInvalid(t, s.Validate(), "plain name")
}

func TestLibraryValidate(t *testing.T) {
	l := NewLibrary()
	l.Add(linear(t))
	if err := l.Validate(); err != nil {
		t.Fatalf("valid library rejected: %v", err)
	}

	// Unknown nested workflow.
	l2 := NewLibrary()
	s := &Schema{Name: "P"}
	s.AddStep(&Step{ID: "S1", Nested: "Missing"})
	l2.Add(s)
	wantInvalid(t, l2.Validate(), "nests unknown workflow")

	// Self-nesting.
	l3 := NewLibrary()
	s3 := &Schema{Name: "P"}
	s3.AddStep(&Step{ID: "S1", Nested: "P"})
	l3.Add(s3)
	wantInvalid(t, l3.Validate(), "nests its own workflow")

	// Coordination referencing unknown steps.
	l4 := NewLibrary()
	l4.Add(linear(t))
	l4.AddCoord(CoordSpec{Kind: Mutex, MutexSteps: []StepRef{{"Lin", "S1"}, {"Nope", "S1"}}})
	wantInvalid(t, l4.Validate(), "unknown step")

	l5 := NewLibrary()
	l5.Add(linear(t))
	l5.AddCoord(CoordSpec{Kind: Mutex, MutexSteps: []StepRef{{"Lin", "S1"}}})
	wantInvalid(t, l5.Validate(), "at least 2 steps")

	l6 := NewLibrary()
	l6.Add(linear(t))
	l6.AddCoord(CoordSpec{Kind: RelativeOrder})
	wantInvalid(t, l6.Validate(), "no conflict pairs")

	l7 := NewLibrary()
	l7.Add(linear(t))
	l7.AddCoord(CoordSpec{Kind: RollbackDep, Trigger: StepRef{"Lin", "S9"}, Target: StepRef{"Lin", "S1"}})
	wantInvalid(t, l7.Validate(), "unknown trigger")

	l8 := NewLibrary()
	l8.Add(linear(t))
	l8.AddCoord(CoordSpec{Kind: CoordKind(42)})
	wantInvalid(t, l8.Validate(), "unknown kind")
}

// MustBuildUnchecked exposes builder output without validation, only for
// tests that need to construct deliberately invalid schemas fluently.
func (b *Builder) MustBuildUnchecked() *Schema { return b.s }
