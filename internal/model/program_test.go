package model

import (
	"errors"
	"sync"
	"testing"

	"crew/internal/expr"
)

func TestExecModeString(t *testing.T) {
	cases := map[ExecMode]string{
		ModeExecute:     "execute",
		ModeIncremental: "incremental",
		ModeCompensate:  "compensate",
		ModePartialComp: "partial-compensate",
		ExecMode(9):     "ExecMode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("ExecMode(%d) = %q, want %q", int(m), got, want)
		}
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	r.Register("p1", NopProgram("O1"))
	p, ok := r.Lookup("p1")
	if !ok || p == nil {
		t.Fatal("Lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("Lookup of missing program succeeded")
	}
	if len(r.Names()) != 1 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("p", NopProgram())
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	r.Register("p", NopProgram())
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register("p", ConstProgram(map[string]expr.Value{"O1": expr.Num(1)}))
	r.Replace("p", ConstProgram(map[string]expr.Value{"O1": expr.Num(2)}))
	p, _ := r.Lookup("p")
	out, err := p(&ProgramContext{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out["O1"].AsNum(); v != 2 {
		t.Errorf("Replace did not take effect: %v", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.Register("p", NopProgram())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if _, ok := r.Lookup("p"); !ok {
					t.Error("Lookup failed under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNopAndConstPrograms(t *testing.T) {
	nop := NopProgram("A", "B")
	out, err := nop(&ProgramContext{})
	if err != nil || len(out) != 2 || !out["A"].IsNull() {
		t.Errorf("NopProgram = (%v, %v)", out, err)
	}
	c := ConstProgram(map[string]expr.Value{"X": expr.Str("v")})
	out, err = c(&ProgramContext{})
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := out["X"].AsStr(); s != "v" {
		t.Errorf("ConstProgram = %v", out)
	}
	// ConstProgram must copy its map so callers can't corrupt it.
	out["X"] = expr.Num(0)
	out2, _ := c(&ProgramContext{})
	if s, _ := out2["X"].AsStr(); s != "v" {
		t.Error("ConstProgram shares its output map")
	}
}

func TestFailNTimes(t *testing.T) {
	p := FailNTimes(2, NopProgram("O1"))
	ctx := &ProgramContext{Mode: ModeExecute}
	var failure *StepFailure
	for i := 0; i < 2; i++ {
		if _, err := p(ctx); !errors.As(err, &failure) {
			t.Fatalf("attempt %d: expected StepFailure, got %v", i, err)
		}
	}
	if _, err := p(ctx); err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	// Compensation invocations do not consume failures.
	p2 := FailNTimes(1, NopProgram())
	if _, err := p2(&ProgramContext{Mode: ModeCompensate}); err != nil {
		t.Error("compensation should not fail")
	}
	if _, err := p2(&ProgramContext{Mode: ModeExecute}); err == nil {
		t.Error("first execute should still fail")
	}
}

func TestStepFailureError(t *testing.T) {
	err := Fail("boom")
	if err.Error() != "step failure: boom" {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestProgramContextInputEnv(t *testing.T) {
	ctx := &ProgramContext{Inputs: map[string]expr.Value{"WF.I1": expr.Num(5)}}
	e := expr.MustCompile("WF.I1 == 5")
	ok, err := e.EvalBool(ctx.InputEnv())
	if err != nil || !ok {
		t.Errorf("InputEnv eval = (%v, %v)", ok, err)
	}
}
