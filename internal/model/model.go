// Package model defines workflow schemas as the paper describes them: a
// workflow schema is a directed graph whose nodes are steps and whose arcs
// are control arcs (optionally conditioned, yielding if-then-else branching)
// and data arcs. It also carries the failure-handling specification (rollback
// targets, compensation dependent sets, OCR conditions) and the coordinated
// execution specifications (mutual exclusion, relative ordering, rollback
// dependency) that span schemas.
//
// Steps are black boxes to the WFMS: the model only knows a step's program
// name, its compensation program, whether it updates or merely queries
// resources, which agents are eligible to run it, and its declared inputs and
// outputs. Data items use the paper's Figure 7 naming: workflow inputs are
// WF.I1, WF.I2, ...; the outputs of step S2 are S2.O1, S2.O2, ...
package model

import (
	"fmt"
	"sort"
	"strings"
)

// StepID identifies a step within one schema.
type StepID string

// Ref returns the full data-item name for an output of this step.
func (id StepID) Ref(output string) string { return string(id) + "." + output }

// WorkflowInput returns the full data-item name of a workflow input.
func WorkflowInput(name string) string { return "WF." + name }

// JoinPolicy determines when a confluence step becomes eligible.
type JoinPolicy int

const (
	// JoinAll fires when control flow along every incoming branch has
	// reached the step (AND-join after a parallel branch).
	JoinAll JoinPolicy = iota
	// JoinAny fires when control flow along any one incoming branch reaches
	// the step (XOR-join after an if-then-else branch).
	JoinAny
)

// String names the join policy.
func (j JoinPolicy) String() string {
	if j == JoinAny {
		return "any"
	}
	return "all"
}

// Step describes one node of a workflow schema.
type Step struct {
	// ID is the step identifier, unique within the schema (e.g. "S1").
	ID StepID
	// Name is an optional human-readable label.
	Name string
	// Program names the black-box program executed to perform the step.
	Program string
	// Compensation names the program that undoes the step; empty means the
	// step is not compensable (its effects need no undoing).
	Compensation string
	// Update marks a step whose program updates shared resources. The
	// distinction matters for predecessor-agent failure: an update step must
	// wait for the failed agent, while a query step may be re-run elsewhere.
	Update bool
	// EligibleAgents lists the agents eligible to execute this step in a
	// distributed architecture; the scheduler picks one at run time.
	EligibleAgents []string
	// Outputs lists the short names of data items the step produces; the
	// full name of output O1 of step S2 is "S2.O1".
	Outputs []string
	// Inputs lists the full data-item names the step consumes
	// (e.g. "WF.I1", "S1.O2"). They define the step's data dependencies.
	Inputs []string
	// Join is the confluence policy when the step has several incoming
	// control arcs.
	Join JoinPolicy
	// ReexecCond is the OCR compensation-and-re-execution condition: when a
	// rolled-back workflow revisits this already-executed step, the step is
	// compensated and re-executed only if the condition evaluates to true.
	// Names prefixed "prev." resolve against the previous execution's
	// inputs/outputs. Empty means "always re-execute" (the conservative
	// Saga-like default).
	ReexecCond string
	// Incremental marks that the step supports partial compensation and
	// incremental re-execution (the cheap arm of the OCR strategy).
	Incremental bool
	// Nested names a child workflow schema executed by this step; Program
	// is ignored for nested steps.
	Nested string
}

// Compensable reports whether the step has a compensation program or is a
// nested workflow (whose children are compensated recursively).
func (s *Step) Compensable() bool { return s.Compensation != "" || s.Nested != "" }

// ArcKind distinguishes control from data arcs.
type ArcKind int

const (
	// Control arcs specify ordering between steps, optionally conditioned.
	Control ArcKind = iota
	// Data arcs denote the flow of data between steps.
	Data
)

// String names the arc kind.
func (k ArcKind) String() string {
	if k == Data {
		return "data"
	}
	return "control"
}

// Arc connects two steps.
type Arc struct {
	From, To StepID
	Kind     ArcKind
	// Cond is a condition on a control arc: the succeeding step is executed
	// only if the condition evaluates to true. Two or more conditioned
	// control arcs out of the same step form an if-then-else branch.
	Cond string
	// Loop marks a back arc: after From completes, if Cond evaluates to
	// true, control flows back to To (re-entering the loop body).
	Loop bool
}

// FailurePolicy is the failure-handling specification for a step.
type FailurePolicy struct {
	// RollbackTo is the step the workflow partially rolls back to when this
	// step fails; re-execution proceeds forward from there.
	RollbackTo StepID
	// MaxAttempts bounds how many times the rollback/re-execute cycle may be
	// applied for this step before the workflow aborts. Zero means 3.
	MaxAttempts int
}

// Attempts returns the effective attempt bound.
func (p FailurePolicy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Schema is a workflow definition: the template from which instances are
// created.
type Schema struct {
	// Name is the workflow class name.
	Name string
	// Inputs lists the workflow input item short names (I1, I2, ...).
	Inputs []string
	// Steps maps step IDs to their definitions.
	Steps map[StepID]*Step
	// Order lists step IDs in definition order, for deterministic iteration.
	Order []StepID
	// Arcs lists all control and data arcs.
	Arcs []Arc
	// CompSets lists the compensation dependent sets: each set must be
	// compensated in the reverse of its execution order.
	CompSets [][]StepID
	// OnFailure maps a step to its failure-handling policy. A failing step
	// with no policy aborts the workflow.
	OnFailure map[StepID]FailurePolicy
	// AbortCompensate lists the steps to compensate when the workflow is
	// aborted by the user (the paper's w parameter); if nil, every executed
	// compensable step is compensated.
	AbortCompensate []StepID

	// idx caches the derived graph views and compiled conditions; set by
	// freeze() on successful validation, dropped by mutation (see index.go).
	idx idxHolder
}

// Step returns the step with the given ID, or nil.
func (s *Schema) Step(id StepID) *Step {
	return s.Steps[id]
}

// StepList returns the steps in definition order.
func (s *Schema) StepList() []*Step {
	out := make([]*Step, 0, len(s.Order))
	for _, id := range s.Order {
		out = append(out, s.Steps[id])
	}
	return out
}

// AddStep inserts a step, replacing any same-ID predecessor definition.
func (s *Schema) AddStep(st *Step) {
	if s.Steps == nil {
		s.Steps = make(map[StepID]*Step)
	}
	if _, exists := s.Steps[st.ID]; !exists {
		s.Order = append(s.Order, st.ID)
	}
	s.Steps[st.ID] = st
	s.invalidateIndex()
}

// AddArc appends an arc.
func (s *Schema) AddArc(a Arc) {
	s.Arcs = append(s.Arcs, a)
	s.invalidateIndex()
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Name:   s.Name,
		Inputs: append([]string(nil), s.Inputs...),
		Steps:  make(map[StepID]*Step, len(s.Steps)),
		Order:  append([]StepID(nil), s.Order...),
		Arcs:   append([]Arc(nil), s.Arcs...),
	}
	for id, st := range s.Steps {
		cp := *st
		cp.EligibleAgents = append([]string(nil), st.EligibleAgents...)
		cp.Inputs = append([]string(nil), st.Inputs...)
		cp.Outputs = append([]string(nil), st.Outputs...)
		c.Steps[id] = &cp
	}
	for _, set := range s.CompSets {
		c.CompSets = append(c.CompSets, append([]StepID(nil), set...))
	}
	if s.OnFailure != nil {
		c.OnFailure = make(map[StepID]FailurePolicy, len(s.OnFailure))
		for k, v := range s.OnFailure {
			c.OnFailure[k] = v
		}
	}
	c.AbortCompensate = append([]StepID(nil), s.AbortCompensate...)
	return c
}

// CompSetOf returns the compensation dependent set containing the step, or
// nil if the step belongs to none. A step belongs to at most one set
// (validated).
func (s *Schema) CompSetOf(id StepID) []StepID {
	for _, set := range s.CompSets {
		for _, member := range set {
			if member == id {
				return set
			}
		}
	}
	return nil
}

// String summarizes the schema.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s (%d steps, %d arcs)", s.Name, len(s.Steps), len(s.Arcs))
	return b.String()
}

// ---------------------------------------------------------------------------
// Cross-schema coordination specifications

// StepRef qualifies a step with its workflow class.
type StepRef struct {
	Workflow string
	Step     StepID
}

// String renders the reference in WF.Step form.
func (r StepRef) String() string { return r.Workflow + "." + string(r.Step) }

// CoordKind classifies coordinated-execution requirements.
type CoordKind int

const (
	// Mutex requires that the listed step regions from concurrent workflows
	// execute mutually exclusively.
	Mutex CoordKind = iota
	// RelativeOrder requires conflicting step pairs from two workflow
	// classes to execute in the same relative order: whichever instance
	// executes the first conflicting pair member first becomes the leading
	// workflow, and every later pair must preserve that order.
	RelativeOrder
	// RollbackDep requires that rolling one workflow back past a step also
	// rolls a dependent workflow back to a designated step.
	RollbackDep
)

// String names the coordination kind.
func (k CoordKind) String() string {
	switch k {
	case Mutex:
		return "mutex"
	case RelativeOrder:
		return "relative-order"
	case RollbackDep:
		return "rollback-dependency"
	default:
		return fmt.Sprintf("CoordKind(%d)", int(k))
	}
}

// ConflictPair is one pair of conflicting steps in a relative-order spec:
// A belongs to one workflow class and B to the other.
type ConflictPair struct {
	A, B StepRef
}

// CoordSpec is a coordinated-execution requirement spanning workflow classes.
type CoordSpec struct {
	Kind CoordKind
	// Name identifies the spec (e.g. the conflicting resource).
	Name string
	// Mutex: the steps that exclude one another.
	MutexSteps []StepRef
	// RelativeOrder: the ordered list of conflicting pairs; Pairs[0]
	// establishes leading/lagging.
	Pairs []ConflictPair
	// RollbackDep: when a workflow rolls back past Trigger, the instance of
	// the dependent workflow rolls back to Target.
	Trigger StepRef
	Target  StepRef
}

// Library is a set of schemas plus the coordination specs across them — what
// the paper calls the compiled workflow definitions stored in the workflow
// database and replicated to agents.
type Library struct {
	schemas map[string]*Schema
	order   []string
	Coord   []CoordSpec
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{schemas: make(map[string]*Schema)}
}

// Add registers a schema, replacing any previous definition of the same name.
func (l *Library) Add(s *Schema) {
	if _, ok := l.schemas[s.Name]; !ok {
		l.order = append(l.order, s.Name)
	}
	l.schemas[s.Name] = s
}

// Schema returns the named schema, or nil.
func (l *Library) Schema(name string) *Schema { return l.schemas[name] }

// Names returns schema names in registration order.
func (l *Library) Names() []string { return append([]string(nil), l.order...) }

// AddCoord registers a coordination spec.
func (l *Library) AddCoord(c CoordSpec) { l.Coord = append(l.Coord, c) }

// CoordFor returns the coordination specs that mention the given step.
func (l *Library) CoordFor(ref StepRef) []CoordSpec {
	var out []CoordSpec
	for _, c := range l.Coord {
		if c.Mentions(ref) {
			out = append(out, c)
		}
	}
	return out
}

// Mentions reports whether the spec involves the given step.
func (c CoordSpec) Mentions(ref StepRef) bool {
	switch c.Kind {
	case Mutex:
		for _, r := range c.MutexSteps {
			if r == ref {
				return true
			}
		}
	case RelativeOrder:
		for _, p := range c.Pairs {
			if p.A == ref || p.B == ref {
				return true
			}
		}
	case RollbackDep:
		return c.Trigger == ref || c.Target == ref
	}
	return false
}

// SortedAgents returns the union of eligible agents across all steps of all
// schemas in the library, sorted. Used to size distributed deployments.
func (l *Library) SortedAgents() []string {
	set := make(map[string]bool)
	for _, name := range l.order {
		for _, st := range l.schemas[name].Steps {
			for _, a := range st.EligibleAgents {
				set[a] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
