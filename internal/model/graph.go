package model

import "sort"

// The derived graph views below are answered from the frozen index when the
// schema has been validated (see index.go); the compute* fallbacks preserve
// the original from-scratch semantics for unvalidated schemas. Returned
// slices and maps may be shared cache entries: callers must not mutate them.

// StartSteps returns the steps with no incoming (non-loop) control arc: the
// steps triggered directly by the workflow.start event. Order follows
// definition order.
func (s *Schema) StartSteps() []StepID {
	if ix := s.index(); ix != nil {
		return ix.starts
	}
	hasIn := make(map[StepID]bool)
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop {
			hasIn[a.To] = true
		}
	}
	var out []StepID
	for _, id := range s.Order {
		if !hasIn[id] {
			out = append(out, id)
		}
	}
	return out
}

// TerminalSteps returns the steps with no outgoing (non-loop) control arc:
// the last step along each path. Their agents act as termination agents and
// report StepCompleted to the coordination agent.
func (s *Schema) TerminalSteps() []StepID {
	if ix := s.index(); ix != nil {
		return ix.terminals
	}
	hasOut := make(map[StepID]bool)
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop {
			hasOut[a.From] = true
		}
	}
	var out []StepID
	for _, id := range s.Order {
		if !hasOut[id] {
			out = append(out, id)
		}
	}
	return out
}

// ControlSuccessors returns the non-loop control successors of a step, with
// the arcs (so callers can evaluate branch conditions), in arc order.
func (s *Schema) ControlSuccessors(id StepID) []Arc {
	if ix := s.index(); ix != nil {
		return ix.succ[id]
	}
	var out []Arc
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop && a.From == id {
			out = append(out, a)
		}
	}
	return out
}

// LoopArcs returns the loop back-arcs out of a step.
func (s *Schema) LoopArcs(id StepID) []Arc {
	if ix := s.index(); ix != nil {
		return ix.loops[id]
	}
	var out []Arc
	for _, a := range s.Arcs {
		if a.Kind == Control && a.Loop && a.From == id {
			out = append(out, a)
		}
	}
	return out
}

// ControlPredecessors returns the non-loop control predecessors of a step.
func (s *Schema) ControlPredecessors(id StepID) []StepID {
	if ix := s.index(); ix != nil {
		return ix.preds[id]
	}
	var out []StepID
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop && a.To == id {
			out = append(out, a.From)
		}
	}
	return out
}

// IsBranching reports whether the step's outgoing control arcs form an
// if-then-else branch: more than one successor and at least one conditioned
// arc. (Unconditioned multi-successor steps are parallel branches.)
func (s *Schema) IsBranching(id StepID) bool {
	succ := s.ControlSuccessors(id)
	if len(succ) < 2 {
		return false
	}
	for _, a := range succ {
		if a.Cond != "" {
			return true
		}
	}
	return false
}

// IsParallelBranch reports whether the step fans out to several branches
// unconditionally.
func (s *Schema) IsParallelBranch(id StepID) bool {
	succ := s.ControlSuccessors(id)
	if len(succ) < 2 {
		return false
	}
	for _, a := range succ {
		if a.Cond != "" {
			return false
		}
	}
	return true
}

// IsConfluence reports whether the step joins several incoming branches.
func (s *Schema) IsConfluence(id StepID) bool {
	return len(s.ControlPredecessors(id)) > 1
}

// Descendants returns every step reachable from id by non-loop control arcs,
// excluding id itself. This is the set of steps whose events a HaltThread /
// rollback starting at id must invalidate. The result may be a shared cache
// entry: treat it as read-only.
func (s *Schema) Descendants(id StepID) map[StepID]bool {
	if ix := s.index(); ix != nil {
		if d, ok := ix.desc[id]; ok {
			return d
		}
	}
	out := make(map[StepID]bool)
	var visit func(StepID)
	visit = func(cur StepID) {
		for _, a := range s.ControlSuccessors(cur) {
			if !out[a.To] {
				out[a.To] = true
				visit(a.To)
			}
		}
	}
	visit(id)
	return out
}

// DescendantsInclusive is Descendants plus the origin itself. The result is
// always a fresh map owned by the caller.
func (s *Schema) DescendantsInclusive(id StepID) map[StepID]bool {
	desc := s.Descendants(id)
	out := make(map[StepID]bool, len(desc)+1)
	for k, v := range desc {
		out[k] = v
	}
	out[id] = true
	return out
}

// LoopBody returns the steps in the body of a loop whose back arc goes from
// tail to head: the steps on non-loop control paths from head to tail
// (inclusive). Their step.done events are invalidated on every loop-back so
// the body re-executes.
func (s *Schema) LoopBody(head, tail StepID) []StepID {
	// Steps reachable from head (inclusive)…
	fromHead := s.DescendantsInclusive(head)
	// …that also reach tail (inclusive).
	reachesTail := make(map[StepID]bool)
	var canReach func(StepID) bool
	memo := make(map[StepID]int) // 0 unknown, 1 yes, 2 no
	canReach = func(cur StepID) bool {
		if cur == tail {
			return true
		}
		switch memo[cur] {
		case 1:
			return true
		case 2:
			return false
		}
		memo[cur] = 2 // guards against revisits while exploring
		ok := false
		for _, a := range s.ControlSuccessors(cur) {
			if canReach(a.To) {
				ok = true
				break
			}
		}
		if ok {
			memo[cur] = 1
		}
		return ok
	}
	for id := range fromHead {
		if canReach(id) {
			reachesTail[id] = true
		}
	}
	var out []StepID
	for _, id := range s.Order {
		if fromHead[id] && reachesTail[id] {
			out = append(out, id)
		}
	}
	return out
}

// DataSourceSteps returns the IDs of steps whose outputs appear among the
// given step's inputs. The rule triggering a step requires step.done events
// from these steps in addition to its control predecessors.
func (s *Schema) DataSourceSteps(id StepID) []StepID {
	if ix := s.index(); ix != nil {
		return ix.dataSrc[id]
	}
	return s.computeDataSourceSteps(id)
}

func (s *Schema) computeDataSourceSteps(id StepID) []StepID {
	st := s.Steps[id]
	if st == nil {
		return nil
	}
	set := make(map[StepID]bool)
	for _, in := range st.Inputs {
		for _, cand := range s.Order {
			if cand == id {
				continue
			}
			for _, out := range s.Steps[cand].Outputs {
				if cand.Ref(out) == in {
					set[cand] = true
				}
			}
		}
	}
	var out []StepID
	for _, cand := range s.Order {
		if set[cand] {
			out = append(out, cand)
		}
	}
	return out
}

// ProducerOf returns the step that produces the named data item, or "" if the
// item is a workflow input or unknown.
func (s *Schema) ProducerOf(item string) StepID {
	if ix := s.index(); ix != nil {
		return ix.producer[item]
	}
	for _, id := range s.Order {
		for _, out := range s.Steps[id].Outputs {
			if id.Ref(out) == item {
				return id
			}
		}
	}
	return ""
}

// TopoOrder returns the steps in a topological order of the non-loop control
// graph. Validation guarantees acyclicity, so this always covers all steps;
// ties break by definition order.
func (s *Schema) TopoOrder() []StepID {
	if ix := s.index(); ix != nil {
		return ix.topo
	}
	return s.computeTopoOrder()
}

func (s *Schema) computeTopoOrder() []StepID {
	indeg := make(map[StepID]int, len(s.Steps))
	for _, id := range s.Order {
		indeg[id] = 0
	}
	for _, a := range s.Arcs {
		if a.Kind == Control && !a.Loop {
			indeg[a.To]++
		}
	}
	// Ready queue kept sorted by definition order index.
	pos := make(map[StepID]int, len(s.Order))
	for i, id := range s.Order {
		pos[id] = i
	}
	var ready []StepID
	for _, id := range s.Order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []StepID
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		cur := ready[0]
		ready = ready[1:]
		out = append(out, cur)
		for _, a := range s.ControlSuccessors(cur) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return out
}

// PathExists reports whether a non-loop control path leads from a to b.
func (s *Schema) PathExists(a, b StepID) bool {
	if a == b {
		return true
	}
	return s.Descendants(a)[b]
}

// ExecutedBefore reports whether step a precedes step b in the given
// execution order (a slice of step IDs in completion order). Used to
// compensate dependent sets in reverse execution order.
func ExecutedBefore(order []StepID, a, b StepID) bool {
	ia, ib := -1, -1
	for i, id := range order {
		if id == a && ia < 0 {
			ia = i
		}
		if id == b && ib < 0 {
			ib = i
		}
	}
	return ia >= 0 && ib >= 0 && ia < ib
}
