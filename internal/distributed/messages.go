package distributed

import (
	"crew/internal/coord"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

func init() {
	// Register every WI payload this architecture puts on the transport, so
	// wire backends (unix/tcp sockets, the multi-process hub) can carry them
	// across a process boundary.
	transport.RegisterPayload(
		workflowStart{}, stepExecute{}, stepCompleted{}, workflowRollback{},
		haltThread{}, compensateSet{}, compensateThread{}, stepCompensate{},
		stepCompensated{}, workflowAbort{}, workflowChangeInputs{},
		stepStatus{}, stepStatusReply{}, stateInformation{},
		stateInformationReply{}, addRule{}, addPrecondition{}, addEvent{},
		coordRollbackNote{}, coordForgetNote{}, coordRollbackOrder{},
		nestedResult{}, purgeNote{},
		//crew:allow wireframe WorkflowDone is handled by the front end (mproc cluster runner), not by the agents in this package
		WorkflowDone{},
	)
}

// Message kind labels: the workflow interfaces of the paper's Table 1.
const (
	KindWorkflowStart        = "WorkflowStart"
	KindWorkflowChangeInputs = "WorkflowChangeInputs"
	KindWorkflowAbort        = "WorkflowAbort"
	KindWorkflowStatus       = "WorkflowStatus"
	KindInputsChanged        = "InputsChanged"
	KindStepExecute          = "StepExecute"
	KindStepCompensate       = "StepCompensate"
	KindStepCompensated      = "StepCompensated"
	KindStepCompleted        = "StepCompleted"
	KindStepStatus           = "StepStatus"
	KindStepStatusReply      = "StepStatusReply"
	KindWorkflowRollback     = "WorkflowRollback"
	KindHaltThread           = "HaltThread"
	KindCompensateSet        = "CompensateSet"
	KindCompensateThread     = "CompensateThread"
	KindStateInformation     = "StateInformation"
	KindAddRule              = "AddRule"
	KindAddEvent             = "AddEvent"
	KindAddPrecondition      = "AddPrecondition"
	KindNestedResult         = "NestedResult"
	KindPurge                = "Purge"
	KindAbortDone            = "AbortDone"
	KindWorkflowDone         = "WorkflowDone"
)

// WorkflowDone is the coordination agent's terminal-status notification to a
// front end living in another process (see Instance.NotifyTo). In-process
// deployments never send it: completion flows through the shared terminal
// registry there.
type WorkflowDone struct {
	Workflow string
	Instance int
	Status   wfdb.Status
}

// workflowStart instantiates a workflow at its coordination agent.
type workflowStart struct {
	Workflow string
	Instance int
	Inputs   map[string]expr.Value
	// Parent links a nested instance to the parent step's agent.
	Parent      *model.StepRef
	ParentInst  int
	ParentAgent string
	// ReplyTo, when non-empty, asks the coordination agent to send a
	// WorkflowDone to that node on termination (multi-process front ends).
	ReplyTo string
}

// stepExecute delivers a workflow packet (the StepExecute WI).
type stepExecute struct {
	Packet *Packet
	// Mechanism classifies the traffic (normal vs re-execution after
	// failure/input change).
	Mechanism metrics.Mechanism
}

// stepCompleted notifies the coordination agent that a terminal step
// finished; it carries the termination agent's state snapshot so the
// coordination agent can decide commit.
type stepCompleted struct {
	Workflow string
	Instance int
	Step     model.StepID
	Epoch    int
	Data     map[string]expr.Value
	Events   []string
}

// workflowRollback asks the agent owning the rollback-target step to apply a
// partial rollback and re-execute from there (the WorkflowRollback WI).
type workflowRollback struct {
	Workflow string
	Instance int
	// Origin is the step re-executed after the rollback.
	Origin model.StepID
	// Epoch and Initiator distinguish repeated rollbacks to the same origin
	// (HaltThread probes are deduplicated per initiator+epoch).
	Epoch     int
	Initiator string
	// NewData carries updated data items (used by input changes).
	NewData map[string]expr.Value
	// Mechanism is Failure or InputChange.
	Mechanism metrics.Mechanism
}

// haltThread quiesces control flow of threads affected by a rollback (the
// HaltThread WI). Step is the step whose agent should halt; Origin is the
// rollback origin determining which events are invalidated.
type haltThread struct {
	Workflow  string
	Instance  int
	Origin    model.StepID
	Step      model.StepID
	Epoch     int
	Initiator string
	Mechanism metrics.Mechanism
}

// compensateSet drives the reverse-execution-order compensation chain of a
// compensation dependent set (the CompensateSet WI).
type compensateSet struct {
	Workflow string
	Instance int
	// Origin is the step whose re-execution requested the chain; the chain
	// ends by compensating it at its own agent, which then re-executes.
	Origin model.StepID
	// StepList holds the remaining steps to compensate, last first.
	StepList []model.StepID
	// Compensated accumulates the steps already compensated along the
	// chain so receivers can update their replicas.
	Compensated []model.StepID
	Mechanism   metrics.Mechanism
}

// compensateThread compensates an abandoned branch step by step until a
// confluence point (the CompensateThread WI).
type compensateThread struct {
	Workflow  string
	Instance  int
	Step      model.StepID
	Mechanism metrics.Mechanism
}

// stepCompensate asks the agent that executed a step to compensate it (used
// by user-initiated aborts; the StepCompensate WI).
type stepCompensate struct {
	Workflow string
	Instance int
	Step     model.StepID
	// ReplyTo receives stepCompensated so the coordination agent can chain
	// compensations in reverse order.
	ReplyTo   string
	Mechanism metrics.Mechanism
}

// stepCompensated acknowledges a stepCompensate.
type stepCompensated struct {
	Workflow string
	Instance int
	Step     model.StepID
}

// workflowAbort asks the coordination agent to abort an instance (front
// end -> coordination agent; the WorkflowAbort WI).
type workflowAbort struct {
	Workflow string
	Instance int
}

// workflowChangeInputs delivers a user input change to the coordination
// agent (the WorkflowChangeInputs WI).
type workflowChangeInputs struct {
	Workflow string
	Instance int
	Inputs   map[string]expr.Value
}

// stepStatus polls eligible agents about a step whose done event is overdue
// (predecessor-failure handling; the StepStatus WI).
type stepStatus struct {
	Workflow string
	Instance int
	Step     model.StepID
	// ForStep is the waiting step at the asker; a responder holding the
	// results re-sends the workflow packet targeting it.
	ForStep model.StepID
	ReplyTo string
}

// stepStatusReply answers a stepStatus poll. A responder that holds the
// step's results re-sends the workflow packet separately.
type stepStatusReply struct {
	Workflow string
	Instance int
	Step     model.StepID
	// Status is "done", "executing" or "unknown".
	Status string
	Agent  string
}

// stateInformation asks an agent for its load (the StateInformation WI; used
// by the explicit-election ablation).
type stateInformation struct {
	ReplyTo string
}

// stateInformationReply answers stateInformation.
type stateInformationReply struct {
	Agent string
	Load  int64
}

// Coordination WI payloads. AddRule establishes/updates coordination state
// at the spec home agent (and asks what the step must wait for),
// AddPrecondition returns the wait events, AddEvent injects an event into an
// instance's event table at the agents holding the waiting rule.
type addRule struct {
	Ref        model.StepRef
	Inst       coord.InstanceRef
	ReplyAgent string
	// Done marks a completion notification rather than a pre-execution
	// check; Failed marks a failed attempt (mutex release only).
	Done   bool
	Failed bool
}

type addPrecondition struct {
	Inst       coord.InstanceRef
	Step       model.StepID
	WaitEvents []string
}

type addEvent struct {
	Target coord.InstanceRef
	Event  string
	Step   model.StepID
}

// coordRollbackNote tells the home agent that an instance rolled back past
// the given steps (rollback-dependency triggers).
type coordRollbackNote struct {
	Workflow    string
	Invalidated []model.StepID
}

// coordForgetNote removes a finished instance from coordination state.
type coordForgetNote struct {
	Inst coord.InstanceRef
}

// coordRollbackOrder applies a rollback dependency at the coordination agent
// of a dependent instance.
type coordRollbackOrder struct {
	Order coord.RollbackOrder
}

// nestedResult reports a nested workflow's outcome to the parent step's
// agent.
type nestedResult struct {
	ParentWorkflow string
	ParentInstance int
	ParentStep     model.StepID
	ChildWorkflow  string
	ChildInstance  int
	Committed      bool
	// Data is the child's final data table (for output mapping).
	Data map[string]expr.Value
}

// purgeNote is the coordination agent's broadcast that an instance finished,
// so agents can purge its replica. Status carries the terminal outcome so the
// recipient records it in the terminal registry before dropping the replica
// (late packets for the instance must stay recognizably retired, not unknown).
type purgeNote struct {
	Workflow string
	Instance int
	Status   wfdb.Status
}
