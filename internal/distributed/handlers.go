package distributed

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"crew/internal/cerrors"
	"crew/internal/coord"
	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/ocr"
	"crew/internal/rules"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

func (a *Agent) handleMessage(m transport.Message) {
	switch p := m.Payload.(type) {
	case *transport.Envelope:
		for _, lm := range p.Msgs {
			a.handleMessage(lm)
		}
		p.Release()
	case workflowStart:
		if err := a.handleWorkflowStart(p); err != nil {
			a.logf("WorkflowStart: %v", err)
		}
	case stepExecute:
		a.handleStepExecute(p, m.From)
	case stepCompleted:
		a.handleStepCompleted(p)
	case workflowRollback:
		a.handleWorkflowRollback(p)
	case haltThread:
		a.handleHaltThread(p)
	case compensateSet:
		a.handleCompensateSet(p)
	case compensateThread:
		a.handleCompensateThread(p)
	case stepCompensate:
		a.handleStepCompensate(p)
	case stepCompensated:
		a.handleStepCompensated(p)
	case workflowAbort:
		if err := a.handleWorkflowAbort(p); err != nil {
			a.logf("WorkflowAbort: %v", err)
		}
	case workflowChangeInputs:
		if err := a.handleWorkflowChangeInputs(p); err != nil {
			a.logf("WorkflowChangeInputs: %v", err)
		}
	case stepStatus:
		a.handleStepStatus(p)
	case stepStatusReply:
		a.handleStepStatusReply(p)
	case stateInformation:
		a.send(p.ReplyTo, metrics.Normal, "StateResponse", stateInformationReply{Agent: a.cfg.Name, Load: a.execCount})
	case stateInformationReply:
		a.loads[p.Agent] = p.Load
	case addRule:
		a.homeHandleAddRule(p)
	case addPrecondition:
		a.handleAddPrecondition(p)
	case addEvent:
		a.handleAddEvent(p)
	case coordRollbackNote:
		a.homeHandleRollbackNote(p)
	case coordForgetNote:
		a.homeHandleForget(p)
	case coordRollbackOrder:
		a.handleRollbackOrder(p)
	case nestedResult:
		a.handleNestedResult(p)
	case purgeNote:
		a.handlePurge(p)
	}
}

// ---------------------------------------------------------------------------
// WorkflowStart

func (a *Agent) handleWorkflowStart(p workflowStart) error {
	schema := a.cfg.Library.Schema(p.Workflow)
	if schema == nil {
		return fmt.Errorf("unknown workflow class %q", p.Workflow)
	}
	key := wfdb.InstanceKeyOf(p.Workflow, p.Instance)
	if _, dup := a.replicas[key]; dup {
		return fmt.Errorf("instance %s already exists", key)
	}
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		return err
	}
	r.coordinator = a.cfg.Name
	r.ins.NotifyTo = p.ReplyTo
	for name, v := range p.Inputs {
		r.ins.Data[model.WorkflowInput(name)] = v
	}
	if p.Parent != nil {
		r.ins.Parent = &wfdb.ParentRef{Workflow: p.Parent.Workflow, ID: p.ParentInst, Step: p.Parent.Step}
		r.parentAgent = p.ParentAgent
	}
	a.addLoad(metrics.Normal, 1)
	if a.cfg.AGDB != nil {
		if err := a.cfg.AGDB.SaveSummary(p.Workflow, p.Instance, wfdb.Running); err != nil {
			a.logf("summary %s: %v", key, err)
		}
	}
	r.ins.Events.Post(event.WorkflowStartName)

	// Dispatch start steps: the coordination agent is the executor of the
	// first start step; other start steps get packets.
	for i, sid := range schema.StartSteps() {
		if i == 0 {
			continue // handled by local evaluation below
		}
		a.forwardPacketForStep(r, sid, metrics.Normal)
	}
	a.evaluate(r)
	return nil
}

// ---------------------------------------------------------------------------
// StepExecute: packet arrival and local navigation

func (a *Agent) handleStepExecute(p stepExecute, from string) {
	pkt := p.Packet
	r, err := a.getReplica(pkt.Workflow, pkt.Instance)
	if err != nil {
		if errors.Is(err, errRetired) {
			// Late packet for a finished instance: the unpack still cost
			// this agent its per-packet load unit (the paper's s·a count
			// is independent of instance fate); only replica work is
			// skipped. Keeping the unit keeps the Table 6 load column
			// identical to the pre-retirement measurement.
			a.addLoad(p.Mechanism, 1)
		} else {
			a.logf("StepExecute: %v", err)
		}
		return
	}
	if r.purged || r.ins.Status != wfdb.Running {
		return
	}
	if pkt.Coordinator != "" {
		r.coordinator = pkt.Coordinator
	}
	if pkt.Epoch > r.epoch {
		r.epoch = pkt.Epoch
	}
	a.addLoad(p.Mechanism, 1) // unpack + table updates
	if len(pkt.ResetSteps) > 0 {
		nav.ResetSteps(r.ins, r.rules, pkt.ResetSteps)
		for _, id := range pkt.ResetSteps {
			if rec := r.ins.Steps[id]; rec != nil {
				rec.HasResult = false
			}
			r.resetEpoch[id] = r.epoch
		}
	}
	a.mergeFiltered(r, pkt.Data, pkt.Events, pkt.Epoch)
	a.syncStatusFromEvents(r)
	// Anti-entropy: a sender operating at an older epoch has missed a
	// rollback; tell it to catch up so its threads quiesce and re-execute.
	if pkt.Epoch < r.epoch && r.lastHalt != nil && from != "" && from != a.cfg.Name {
		a.send(from, r.lastHalt.Mechanism, KindHaltThread, *r.lastHalt)
	}
	a.evaluate(r)
	a.persist(r)
}

// mergeFiltered merges incoming state per step: entries belonging to a step
// that was reset at a later epoch than the sender's view are stale and
// skipped; everything else merges. The step of a data item is its name
// prefix ("S2" of "S2.O1"); events name their step directly.
func (a *Agent) mergeFiltered(r *replica, data map[string]expr.Value, events []string, senderEpoch int) {
	// fresh(step) == senderEpoch >= r.resetEpoch[step], written out inline to
	// keep this (very hot) merge free of a closure allocation per call.
	for k, v := range data {
		if stepName, _, ok := strings.Cut(k, "."); ok {
			if senderEpoch < r.resetEpoch[model.StepID(stepName)] {
				continue // stale; includes "WF": inputs changed at a later epoch
			}
		}
		if old, exists := r.ins.Data[k]; !exists || !old.Equal(v) {
			r.ins.Data[k] = v
		}
	}
	for _, name := range events {
		sid := event.StepOfDone(name)
		if sid != "" {
			id := model.StepID(sid)
			if senderEpoch < r.resetEpoch[id] {
				continue
			}
			if senderEpoch > r.doneEpoch[id] {
				r.doneEpoch[id] = senderEpoch
			}
		}
		if !r.ins.Events.Has(name) {
			r.ins.Events.Post(name)
		}
	}
}

// syncStatusFromEvents marks steps done in the replica's step table when
// their step.done event is valid (knowledge learned from packets about steps
// executed elsewhere).
func (a *Agent) syncStatusFromEvents(r *replica) {
	// Unordered iteration is fine: each step's status update is independent.
	r.ins.Events.RangeValid(func(name string) {
		sid := event.StepOfDone(name)
		if sid == "" {
			return
		}
		id := model.StepID(sid)
		if r.schema.Steps[id] == nil {
			return
		}
		rec := r.ins.StepRec(id)
		if rec.Status == wfdb.StepPending || rec.Status == wfdb.StepCompensated {
			rec.Status = wfdb.StepDone
		}
	})
}

// evaluate runs the rule engine and executes fired steps this agent is the
// elected executor for.
func (a *Agent) evaluate(r *replica) {
	if r.ins.Status != wfdb.Running || r.purged {
		return
	}
	for {
		fired, err := r.rules.Evaluate(r.ins.Events, r.ins.Env())
		if err != nil {
			a.logf("instance %s: %v", r.ins.Key(), err)
		}
		progressed := false
		for _, rl := range fired {
			switch rl.Action.Kind {
			case rules.ActExecute:
				if a.maybeExecute(r, rl.Action.Step) {
					progressed = true
				}
			case rules.ActNotify:
				if rl.Action.Fn != nil {
					rl.Action.Fn()
				}
				progressed = true
			}
		}
		if len(fired) == 0 || !progressed {
			return
		}
		if r.ins.Status != wfdb.Running {
			return
		}
	}
}

// maybeExecute gates and executes a fired step. Returns true when state
// changed synchronously.
func (a *Agent) maybeExecute(r *replica, step model.StepID) bool {
	if r.ins.Status != wfdb.Running || r.executing[step] {
		return false
	}
	if a.executorOf(r, step) != a.cfg.Name {
		return false // another eligible agent won the election
	}
	s := r.schema.Steps[step]
	if s == nil {
		return false
	}

	// Coordinated-execution gate: consult the home agent via AddRule; the
	// AddPrecondition reply carries the wait events and the step proceeds
	// only when all of them are valid. Blocked steps are retried directly
	// when AddEvent injections arrive.
	ref := model.StepRef{Workflow: r.ins.Workflow, Step: step}
	if a.coordSteps[ref] {
		waits, known := r.coordWaits[step]
		if !known {
			r.coordBlocked[step] = true
			if !r.coordPending[step] {
				r.coordPending[step] = true
				a.addLoad(metrics.Coordination, 1)
				a.send(HomeAgent(a.cfg.Agents), metrics.Coordination, KindAddRule, addRule{
					Ref:        ref,
					Inst:       coord.InstanceRef{Workflow: r.ins.Workflow, ID: r.ins.ID},
					ReplyAgent: a.cfg.Name,
				})
			}
			return false
		}
		for _, ev := range waits {
			if !r.ins.Events.Has(ev) {
				r.coordBlocked[step] = true
				return false
			}
		}
		r.coordBlocked[step] = false
	}

	inputs := a.resolveInputs(r, s)

	rec := r.ins.Steps[step]
	if rec != nil && rec.HasResult && rec.Agent == a.cfg.Name {
		// Revisit of an already-executed step: the OCR strategy applies.
		mech := r.recovery
		if mech == metrics.Normal {
			mech = metrics.Failure
		}
		var d ocr.Decision
		if a.cfg.DisableOCR {
			d = ocr.CompleteCR
		} else {
			var derr error
			d, derr = ocr.Decide(r.schema, s, rec, inputs, r.ins.Env())
			if derr != nil {
				a.logf("instance %s step %s: %v", r.ins.Key(), step, derr)
			}
		}
		a.addLoad(mech, 1)
		switch d {
		case ocr.Reuse:
			r.ins.RecordDone(step, rec.Outputs)
			r.doneEpoch[step] = r.epoch
			a.afterStepDone(r, step, mech)
			return true
		case ocr.CompleteCR:
			plan := a.planCompSet(r, step)
			if len(plan) > 1 {
				// Compensation dependent set: drive the CompensateSet chain
				// starting at the agent of the last step of the list.
				a.startCompensateSetChain(r, step, plan, mech)
				return false
			}
			a.compensateLocal(r, step, model.ModeCompensate, mech)
			a.executeStep(r, step, model.ModeExecute, nil, mech)
			return true
		case ocr.IncrementalCR:
			prev := rec.Prev()
			a.compensateLocal(r, step, model.ModePartialComp, mech)
			a.executeStep(r, step, model.ModeIncremental, prev, mech)
			return true
		}
		// ExecuteFresh falls through.
	}

	mech := metrics.Normal
	if rec != nil && rec.Attempts > 0 && r.recovery != metrics.Normal {
		mech = r.recovery
	}
	a.executeStep(r, step, model.ModeExecute, nil, mech)
	return true
}

func (a *Agent) resolveInputs(r *replica, s *model.Step) map[string]expr.Value {
	in := make(map[string]expr.Value, len(s.Inputs))
	for _, name := range s.Inputs {
		if v, ok := r.ins.Data[name]; ok {
			in[name] = v
		}
	}
	return in
}

// executeStep runs the step program synchronously and navigates onward.
func (a *Agent) executeStep(r *replica, step model.StepID, mode model.ExecMode, prev *model.PrevExecution, mech metrics.Mechanism) {
	s := r.schema.Steps[step]
	if s.Nested != "" {
		a.startNested(r, step, mech)
		return
	}
	prog, ok := a.cfg.Programs.Lookup(s.Program)
	if !ok {
		a.logf("instance %s step %s: unknown program %q", r.ins.Key(), step, s.Program)
		a.onStepFailure(r, step, mech)
		return
	}
	inputs := a.resolveInputs(r, s)
	if mode == model.ModeIncremental && prev == nil {
		prev = r.ins.StepRec(step).Prev()
	}
	r.ins.RecordExecuting(step, a.cfg.Name, inputs)
	r.executing[step] = true
	epochBefore := r.epoch
	a.execCount++
	a.addLoad(mech, 1) // navigation + scheduling at the agent
	out, err := prog(&model.ProgramContext{
		Workflow: r.ins.Workflow,
		Instance: r.ins.ID,
		Step:     step,
		Mode:     mode,
		Attempt:  r.ins.StepRec(step).Attempts,
		Inputs:   inputs,
		Prev:     prev,
	})
	r.executing[step] = false
	if r.resetEpoch[step] > epochBefore {
		// A rollback reset this step while it ran: discard the result, but
		// release any coordination resources the attempt held.
		a.coordReleaseOnFailure(r, step)
		return
	}
	if err != nil {
		r.ins.RecordFailed(step)
		a.coordReleaseOnFailure(r, step)
		a.onStepFailure(r, step, metrics.Failure)
		return
	}
	r.ins.RecordDone(step, out)
	r.doneEpoch[step] = r.epoch
	a.afterStepDone(r, step, mech)
}

// coordReleaseOnFailure releases mutexes held for a failed attempt.
func (a *Agent) coordReleaseOnFailure(r *replica, step model.StepID) {
	ref := model.StepRef{Workflow: r.ins.Workflow, Step: step}
	if !a.coordSteps[ref] {
		return
	}
	a.addLoad(metrics.Coordination, 1)
	a.send(HomeAgent(a.cfg.Agents), metrics.Coordination, KindAddRule, addRule{
		Ref:        ref,
		Inst:       coord.InstanceRef{Workflow: r.ins.Workflow, ID: r.ins.ID},
		ReplyAgent: a.cfg.Name,
		Failed:     true,
	})
	a.clearMutexGrants(r, step)
	delete(r.coordWaits, step)
}

func (a *Agent) clearMutexGrants(r *replica, step model.StepID) {
	suffix := ":" + string(step)
	r.ins.Events.InvalidateWhere(func(name string) bool {
		return strings.HasPrefix(name, "mx:") && strings.HasSuffix(name, suffix)
	})
}

// afterStepDone performs post-success navigation: coordination
// notifications, branch-switch compensation threads, loop arcs, terminal
// reporting and packet forwarding.
func (a *Agent) afterStepDone(r *replica, step model.StepID, mech metrics.Mechanism) {
	rec := r.ins.StepRec(step)
	if r.recovery != metrics.Normal && rec.Attempts <= 1 {
		r.recovery = metrics.Normal
	}

	ref := model.StepRef{Workflow: r.ins.Workflow, Step: step}
	if a.coordSteps[ref] {
		a.addLoad(metrics.Coordination, 1)
		a.send(HomeAgent(a.cfg.Agents), metrics.Coordination, KindAddRule, addRule{
			Ref:        ref,
			Inst:       coord.InstanceRef{Workflow: r.ins.Workflow, ID: r.ins.ID},
			ReplyAgent: a.cfg.Name,
			Done:       true,
		})
		a.clearMutexGrants(r, step)
		delete(r.coordWaits, step) // a revisit must re-acquire
	}

	// Branch switch after re-execution: start compensation threads down the
	// branches no longer taken (CompensateThread WI).
	if r.schema.IsBranching(step) && rec.Attempts > 1 {
		taken := nav.ActiveBranchTargets(r.schema, r.ins, step)
		takenSet := make(map[model.StepID]bool, len(taken))
		for _, id := range taken {
			takenSet[id] = true
		}
		for _, arc := range r.schema.ControlSuccessors(step) {
			if takenSet[arc.To] {
				continue
			}
			a.addLoad(mech, 1)
			a.send(a.executorOf(r, arc.To), mech, KindCompensateThread, compensateThread{
				Workflow:  r.ins.Workflow,
				Instance:  r.ins.ID,
				Step:      arc.To,
				Mechanism: mech,
			})
		}
	}

	// Loop arcs: on repeat, reset the body and re-dispatch the head.
	for _, arc := range r.schema.LoopArcs(step) {
		cond, err := r.schema.CondExpr(arc.Cond)
		if err != nil {
			continue
		}
		ok, err := cond.EvalBool(r.ins.Env())
		if err != nil || !ok {
			continue
		}
		a.addLoad(metrics.Normal, 1)
		body := nav.ApplyLoopBack(r.schema, r.ins, r.rules, arc.To, step)
		a.forwardPacketForStepWithReset(r, arc.To, body, metrics.Normal)
		a.persist(r)
		a.evaluate(r)
		return
	}

	// Terminal step: inform the coordination agent (StepCompleted WI).
	isTerminal := false
	for _, tid := range r.schema.TerminalSteps() {
		if tid == step {
			isTerminal = true
			break
		}
	}
	if isTerminal {
		a.addLoad(metrics.Normal, 1)
		coordAgent := r.coordinator
		if coordAgent == "" {
			coordAgent = a.coordinationAgentOf(r.schema, r.ins.Workflow, r.ins.ID)
		}
		a.send(coordAgent, metrics.Normal, KindStepCompleted, stepCompleted{
			Workflow: r.ins.Workflow,
			Instance: r.ins.ID,
			Step:     step,
			Epoch:    r.epoch,
			Data:     cloneData(r.ins.Data),
			Events:   r.ins.Events.ValidNames(),
		})
	}

	// Forward workflow packets to the agents of every successor step.
	for _, arc := range r.schema.ControlSuccessors(step) {
		a.forwardPacketForStep(r, arc.To, mech)
	}
	a.persist(r)
	a.evaluate(r)
}

func cloneData(m map[string]expr.Value) map[string]expr.Value {
	out := make(map[string]expr.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// buildPacket assembles the workflow packet for a target step.
func (a *Agent) buildPacket(r *replica, target model.StepID, reset []model.StepID) *Packet {
	coordAgent := r.coordinator
	if coordAgent == "" {
		coordAgent = a.coordinationAgentOf(r.schema, r.ins.Workflow, r.ins.ID)
	}
	return &Packet{
		Workflow:    r.ins.Workflow,
		Instance:    r.ins.ID,
		Epoch:       r.epoch,
		TargetStep:  target,
		Data:        cloneData(r.ins.Data),
		Events:      r.ins.Events.ValidNames(),
		ResetSteps:  reset,
		Leading:     append([]string(nil), r.leading...),
		Lagging:     append([]string(nil), r.lagging...),
		Coordinator: coordAgent,
	}
}

// forwardPacketForStep sends the packet for a successor step to all its
// eligible agents (the paper's s·a messages; the deterministic election
// picks the executor with no extra traffic). With ExplicitElection the
// agents' states are probed first and the packet goes only to the chosen
// agent.
func (a *Agent) forwardPacketForStep(r *replica, target model.StepID, mech metrics.Mechanism) {
	a.forwardPacketForStepWithReset(r, target, nil, mech)
}

func (a *Agent) forwardPacketForStepWithReset(r *replica, target model.StepID, reset []model.StepID, mech metrics.Mechanism) {
	s := r.schema.Steps[target]
	if s == nil {
		return
	}
	elig := a.effectiveAgents(s)
	pkt := a.buildPacket(r, target, reset)
	a.addLoad(mech, 1)
	if a.cfg.ExplicitElection {
		for _, ag := range elig {
			if ag != a.cfg.Name && a.alive(ag) {
				a.send(ag, mech, KindStateInformation, stateInformation{ReplyTo: a.cfg.Name})
			}
		}
		chosen := a.executorOf(r, target)
		if chosen == "" {
			chosen = a.cfg.Name
		}
		a.send(chosen, mech, KindStepExecute, stepExecute{Packet: pkt, Mechanism: mech})
		return
	}
	// The built packet is already a private snapshot, so the last recipient
	// takes it as-is; only the other recipients need their own clone.
	for i, ag := range elig {
		p := pkt
		if i < len(elig)-1 {
			p = pkt.Clone()
		}
		a.send(ag, mech, KindStepExecute, stepExecute{Packet: p, Mechanism: mech})
	}
}

// ---------------------------------------------------------------------------
// Commit path

func (a *Agent) handleStepCompleted(p stepCompleted) {
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		if !errors.Is(err, errRetired) {
			a.logf("StepCompleted: %v", err)
		}
		return
	}
	if r.ins.Status != wfdb.Running {
		return
	}
	if p.Epoch > r.epoch {
		r.epoch = p.Epoch
	}
	r.coordinator = a.cfg.Name
	a.addLoad(metrics.Normal, 1)
	a.mergeFiltered(r, p.Data, p.Events, p.Epoch)
	a.syncStatusFromEvents(r)
	if nav.ShouldCommit(r.schema, r.ins) {
		a.commitInstance(r)
		return
	}
	a.evaluate(r)
}

func (a *Agent) commitInstance(r *replica) {
	a.addLoad(metrics.Normal, 1)
	r.ins.Status = wfdb.Committed
	r.ins.Events.Post(event.WorkflowDoneName)
	a.finishInstance(r)
}

func (a *Agent) finishInstance(r *replica) {
	key := r.ins.Key()
	if a.cfg.AGDB != nil {
		if err := a.cfg.AGDB.SaveSummary(r.ins.Workflow, r.ins.ID, r.ins.Status); err != nil {
			a.logf("summary %s: %v", key, err)
		}
	}

	// Coordination clean-up at the home agent.
	if len(a.cfg.Library.Coord) > 0 {
		a.addLoad(metrics.Coordination, 1)
		a.send(HomeAgent(a.cfg.Agents), metrics.Coordination, KindAddRule, coordForgetNote{
			Inst: coord.InstanceRef{Workflow: r.ins.Workflow, ID: r.ins.ID},
		})
	}

	// Nested: report to the parent step's agent.
	if p := r.ins.Parent; p != nil && r.parentAgent != "" {
		a.send(r.parentAgent, metrics.Normal, KindNestedResult, nestedResult{
			ParentWorkflow: p.Workflow,
			ParentInstance: p.ID,
			ParentStep:     p.Step,
			ChildWorkflow:  r.ins.Workflow,
			ChildInstance:  r.ins.ID,
			Committed:      r.ins.Status == wfdb.Committed,
			Data:           cloneData(r.ins.Data),
		})
	}

	if a.cfg.PurgeOnCommit {
		for _, ag := range a.cfg.Agents {
			if ag == a.cfg.Name {
				continue
			}
			a.send(ag, metrics.Normal, KindPurge, purgeNote{Workflow: r.ins.Workflow, Instance: r.ins.ID, Status: r.ins.Status})
		}
	}

	// Retire the coordination replica itself: archive the full final state,
	// publish the terminal status (waking completion waiters and letting the
	// other agents' sweeps retire their replicas message-free) and drop the
	// instance from the live table.
	a.retireReplica(r, r.ins.Status)
}

func (a *Agent) handlePurge(p purgeNote) {
	// Record the terminal outcome first so late packets find the instance
	// retired, not unknown (no-op when the registry is deployment-shared:
	// the sender already published it).
	if p.Status != wfdb.Running {
		a.term.Complete(p.Workflow, p.Instance, p.Status)
	}
	key := wfdb.InstanceKeyOf(p.Workflow, p.Instance)
	if r, ok := a.replicas[key]; ok {
		r.purged = true
		delete(a.replicas, key)
		if a.cfg.OnRetired != nil {
			a.cfg.OnRetired(r.ins.Workflow, r.ins.ID)
		}
	}
	if a.cfg.AGDB != nil {
		_ = a.cfg.AGDB.DeleteInstance(p.Workflow, p.Instance)
	}
}

// ---------------------------------------------------------------------------
// Failure handling

// onStepFailure applies the failure-handling specification at the agent
// where the step failed.
func (a *Agent) onStepFailure(r *replica, step model.StepID, mech metrics.Mechanism) {
	a.addLoad(metrics.Failure, 1)
	pol, ok := r.schema.OnFailure[step]
	r.rollbacks[step]++
	if !ok || r.rollbacks[step] > pol.Attempts() {
		coordAgent := r.coordinator
		if coordAgent == "" {
			coordAgent = a.coordinationAgentOf(r.schema, r.ins.Workflow, r.ins.ID)
		}
		a.send(coordAgent, metrics.Failure, KindWorkflowAbort, workflowAbort{Workflow: r.ins.Workflow, Instance: r.ins.ID})
		return
	}
	r.recovery = metrics.Failure
	target := a.executorOf(r, pol.RollbackTo)
	a.send(target, metrics.Failure, KindWorkflowRollback, workflowRollback{
		Workflow:  r.ins.Workflow,
		Instance:  r.ins.ID,
		Origin:    pol.RollbackTo,
		Epoch:     r.rollbacks[step],
		Initiator: a.cfg.Name + "/" + string(step),
		Mechanism: metrics.Failure,
	})
}

// handleWorkflowRollback runs at the agent owning the rollback origin: it
// resets local state, floods HaltThread probes down the affected threads,
// reports rollback-dependency triggers, and re-executes the origin through
// the OCR strategy.
func (a *Agent) handleWorkflowRollback(p workflowRollback) {
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		if errors.Is(err, errRetired) {
			// Late rollback for a finished instance: count the unpack
			// unit the pre-retirement path charged, skip the replica work.
			a.addLoad(p.Mechanism, 1)
		} else {
			a.logf("WorkflowRollback: %v", err)
		}
		return
	}
	if r.ins.Status != wfdb.Running {
		return
	}
	mech := p.Mechanism
	r.recovery = mech
	r.epoch++
	if len(p.NewData) > 0 {
		r.ins.MergeData(p.NewData)
		r.resetEpoch["WF"] = r.epoch // stale packets must not undo the change
	}
	affected, invalidated := nav.ApplyRollback(r.schema, r.ins, r.rules, p.Origin)
	a.addLoad(mech, int64(len(affected))+1)
	_ = invalidated
	for _, id := range append(append([]model.StepID(nil), affected...), p.Origin) {
		r.resetEpoch[id] = r.epoch
		ref := model.StepRef{Workflow: p.Workflow, Step: id}
		if a.coordSteps[ref] {
			delete(r.coordWaits, id)
			r.coordBlocked[id] = false
			r.coordPending[id] = false
			a.clearMutexGrants(r, id)
			a.coordReleaseOnFailure(r, id)
		}
	}

	r.lastHalt = &haltThread{
		Workflow:  p.Workflow,
		Instance:  p.Instance,
		Origin:    p.Origin,
		Epoch:     r.epoch,
		Initiator: p.Initiator,
		Mechanism: mech,
	}

	// Halt the affected threads: probe the agents of the origin's successor
	// steps, and of the successors of every affected step this agent itself
	// executed and forwarded packets from; the probes propagate onward
	// agent to agent.
	a.haltSuccessorsOf(r, p.Origin, p.Origin, r.epoch, p.Initiator, mech)
	a.propagateHalts(r, p.Origin, r.epoch, p.Initiator, mech)

	// Rollback dependencies are resolved at the coordination home agent.
	if a.hasRollbackDep {
		a.addLoad(metrics.Coordination, 1)
		all := append(append([]model.StepID(nil), affected...), p.Origin)
		a.send(HomeAgent(a.cfg.Agents), metrics.Coordination, KindAddRule, coordRollbackNote{
			Workflow:    p.Workflow,
			Invalidated: all,
		})
	}

	a.persist(r)
	a.evaluate(r)
}

// handleHaltThread quiesces the local thread state for a rollback and
// propagates the probe to agents of steps this agent forwarded packets to.
// haltKey identifies one HaltThread flood for deduplication.
type haltKey struct {
	workflow  string
	instance  int
	origin    model.StepID
	initiator string
}

func (a *Agent) handleHaltThread(p haltThread) {
	key := haltKey{workflow: p.Workflow, instance: p.Instance, origin: p.Origin, initiator: p.Initiator}
	if a.handledHalts[key] >= p.Epoch {
		return
	}
	a.handledHalts[key] = p.Epoch
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		return
	}
	if p.Epoch > r.epoch {
		r.epoch = p.Epoch
	}
	if r.lastHalt == nil || p.Epoch >= r.lastHalt.Epoch {
		cp := p
		r.lastHalt = &cp
	}
	set := nav.InvalidationSet(r.schema, p.Origin)
	// A probe must not clobber state the re-executed thread has already
	// re-established at (or after) the probe's epoch.
	stale := set[:0:0]
	for _, id := range set {
		if r.doneEpoch[id] < p.Epoch {
			stale = append(stale, id)
		}
	}
	set = stale
	n := nav.ResetSteps(r.ins, r.rules, set)
	a.addLoad(p.Mechanism, int64(n)+1)
	for _, id := range set {
		r.resetEpoch[id] = r.epoch
		ref := model.StepRef{Workflow: p.Workflow, Step: id}
		if a.coordSteps[ref] {
			delete(r.coordWaits, id)
			r.coordBlocked[id] = false
			r.coordPending[id] = false
			a.clearMutexGrants(r, id)
		}
	}

	// Propagate to successors of steps this agent executed and forwarded.
	a.propagateHalts(r, p.Origin, p.Epoch, p.Initiator, p.Mechanism)
	a.persist(r)
}

// haltSuccessorsOf sends HaltThread probes to the agents of a step's
// immediate successors (skipping this agent, whose state is already reset).
func (a *Agent) haltSuccessorsOf(r *replica, step, origin model.StepID, epoch int, initiator string, mech metrics.Mechanism) {
	for _, arc := range r.schema.ControlSuccessors(step) {
		for _, ag := range a.effectiveAgents(r.schema.Steps[arc.To]) {
			if ag == a.cfg.Name {
				continue
			}
			a.send(ag, mech, KindHaltThread, haltThread{
				Workflow:  r.ins.Workflow,
				Instance:  r.ins.ID,
				Origin:    origin,
				Step:      arc.To,
				Epoch:     epoch,
				Initiator: initiator,
				Mechanism: mech,
			})
		}
	}
}

// propagateHalts forwards HaltThread probes along the threads this agent
// itself drove: for every affected step it executed (and therefore forwarded
// packets from), the agents of that step's successors are probed.
func (a *Agent) propagateHalts(r *replica, origin model.StepID, epoch int, initiator string, mech metrics.Mechanism) {
	desc := r.schema.Descendants(origin)
	// Sorted iteration: haltSuccessorsOf emits HaltThread probes, and map
	// order would make the probe sequence differ run to run.
	ids := make([]model.StepID, 0, len(r.ins.Steps))
	for id, rec := range r.ins.Steps {
		if desc[id] && rec.Agent == a.cfg.Name && rec.Attempts > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a.haltSuccessorsOf(r, id, origin, epoch, initiator, mech)
	}
}

// planCompSet computes the CompensateSet chain for revisiting a step of a
// compensation dependent set. Unlike the centralized engine, an agent knows
// only its own execution order, so set members that executed elsewhere are
// recognized by their valid step.done events and ordered by the schema's
// topological order (consistent with execution order along a path). The plan
// lists later members first and ends with the revisited step itself.
func (a *Agent) planCompSet(r *replica, step model.StepID) []model.StepID {
	set := r.schema.CompSetOf(step)
	if set == nil {
		return []model.StepID{step}
	}
	inSet := make(map[model.StepID]bool, len(set))
	for _, id := range set {
		inSet[id] = true
	}
	topo := r.schema.TopoOrder()
	pos := -1
	for i, id := range topo {
		if id == step {
			pos = i
			break
		}
	}
	if pos < 0 {
		return []model.StepID{step}
	}
	var later []model.StepID
	for _, id := range topo[pos+1:] {
		if !inSet[id] {
			continue
		}
		// The rollback has already invalidated done events, so executed-at-
		// some-point is recognized by the occurrence count (which survives
		// invalidation); members already compensated are skipped. Agents in
		// the chain no-op when they hold no results, so over-inclusion is
		// safe.
		rec := r.ins.Steps[id]
		executed := r.ins.Events.Count(r.schema.DoneEventOf(id)) > 0 &&
			!r.ins.Events.Has(r.schema.CompEventOf(id))
		if executed || (rec != nil && rec.HasResult) {
			later = append(later, id)
		}
	}
	plan := make([]model.StepID, 0, len(later)+1)
	for i := len(later) - 1; i >= 0; i-- {
		plan = append(plan, later[i])
	}
	return append(plan, step)
}

// startCompensateSetChain begins the reverse-order compensation of a
// dependent set: the CompensateSet WI travels to the agent of the last
// remaining step, which compensates and forwards, ending at the origin.
func (a *Agent) startCompensateSetChain(r *replica, origin model.StepID, plan []model.StepID, mech metrics.Mechanism) {
	// plan is already in compensation order (reverse execution order, ending
	// with origin); StepList keeps that order.
	first := plan[0]
	a.addLoad(mech, 1)
	a.send(a.executorOf(r, first), mech, KindCompensateSet, compensateSet{
		Workflow:  r.ins.Workflow,
		Instance:  r.ins.ID,
		Origin:    origin,
		StepList:  plan,
		Mechanism: mech,
	})
}

// handleCompensateSet compensates the head of the StepList if this agent
// executed it, then forwards the chain; when the list is exhausted the
// origin's agent re-executes the origin.
func (a *Agent) handleCompensateSet(p compensateSet) {
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		return
	}
	// Learn about steps compensated earlier in the chain.
	for _, id := range p.Compensated {
		if rec := r.ins.Steps[id]; rec != nil && rec.HasResult {
			r.ins.RecordCompensated(id)
		} else {
			r.ins.Events.Invalidate(r.schema.DoneEventOf(id))
			r.ins.Events.Post(r.schema.CompEventOf(id))
		}
	}
	if len(p.StepList) == 0 {
		a.persist(r)
		a.evaluate(r)
		return
	}
	step := p.StepList[0]
	rest := p.StepList[1:]
	a.addLoad(p.Mechanism, 1)

	rec := r.ins.Steps[step]
	if rec != nil && rec.HasResult && rec.Agent == a.cfg.Name {
		a.compensateLocal(r, step, model.ModeCompensate, p.Mechanism)
	}
	compensated := append(append([]model.StepID(nil), p.Compensated...), step)

	if len(rest) == 0 {
		// The chain is done; the origin (== step) re-executes here.
		if step == p.Origin {
			r.recovery = p.Mechanism
			a.executeStep(r, step, model.ModeExecute, nil, p.Mechanism)
		}
		a.persist(r)
		return
	}
	a.send(a.executorOf(r, rest[0]), p.Mechanism, KindCompensateSet, compensateSet{
		Workflow:    p.Workflow,
		Instance:    p.Instance,
		Origin:      p.Origin,
		StepList:    rest,
		Compensated: compensated,
		Mechanism:   p.Mechanism,
	})
	a.persist(r)
}

// compensateLocal runs a step's compensation program at this agent.
func (a *Agent) compensateLocal(r *replica, step model.StepID, mode model.ExecMode, mech metrics.Mechanism) {
	s := r.schema.Steps[step]
	rec := r.ins.Steps[step]
	if s == nil || rec == nil || !rec.HasResult {
		return
	}
	a.addLoad(mech, 1)
	if s.Compensation != "" && (mode == model.ModeCompensate || s.Incremental) {
		prog, ok := a.cfg.Programs.Lookup(s.Compensation)
		if ok {
			a.execCount++
			if _, err := prog(&model.ProgramContext{
				Workflow: r.ins.Workflow,
				Instance: r.ins.ID,
				Step:     step,
				Mode:     mode,
				Attempt:  rec.Attempts,
				Inputs:   rec.Inputs,
				Prev:     rec.Prev(),
			}); err != nil {
				a.logf("instance %s: compensation of %s failed: %v", r.ins.Key(), step, err)
			}
		}
	}
	if mode == model.ModeCompensate {
		r.ins.RecordCompensated(step)
	}
}

// handleCompensateThread compensates an abandoned-branch step and forwards
// the thread until a confluence point.
func (a *Agent) handleCompensateThread(p compensateThread) {
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err != nil {
		return
	}
	a.addLoad(p.Mechanism, 1)
	rec := r.ins.Steps[p.Step]
	if rec != nil && rec.HasResult && rec.Agent == a.cfg.Name {
		a.compensateLocal(r, p.Step, model.ModeCompensate, p.Mechanism)
	} else {
		// Not executed here; drop stale knowledge so commit logic is clean.
		r.ins.Events.Invalidate(r.schema.DoneEventOf(p.Step))
		if rec != nil && rec.Status == wfdb.StepDone {
			rec.Status = wfdb.StepPending
		}
	}
	for _, arc := range r.schema.ControlSuccessors(p.Step) {
		if r.schema.IsConfluence(arc.To) {
			continue // stop before the confluence point
		}
		a.send(a.executorOf(r, arc.To), p.Mechanism, KindCompensateThread, compensateThread{
			Workflow:  p.Workflow,
			Instance:  p.Instance,
			Step:      arc.To,
			Mechanism: p.Mechanism,
		})
	}
	a.persist(r)
}

// ---------------------------------------------------------------------------
// User-initiated operations at the coordination agent

func (a *Agent) handleWorkflowAbort(p workflowAbort) error {
	key := wfdb.InstanceKeyOf(p.Workflow, p.Instance)
	r, ok := a.replicas[key]
	if !ok {
		if st, done := a.term.Status(p.Workflow, p.Instance); done && st != wfdb.Running {
			return fmt.Errorf("%w: instance %s is %v", cerrors.ErrNotRunning, key, st)
		}
		return fmt.Errorf("%w: %s", cerrors.ErrUnknownInstance, key)
	}
	if r.ins.Status != wfdb.Running {
		return fmt.Errorf("%w: instance %s is %v", cerrors.ErrNotRunning, key, r.ins.Status)
	}
	if r.abort != nil {
		return nil // abort already in progress
	}
	a.addLoad(metrics.Abort, 1)

	// Quiesce the threads starting from the start steps.
	r.epoch++
	for _, sid := range r.schema.StartSteps() {
		for _, arc := range r.schema.ControlSuccessors(sid) {
			for _, ag := range a.effectiveAgents(r.schema.Steps[arc.To]) {
				if ag == a.cfg.Name {
					continue
				}
				a.send(ag, metrics.Abort, KindHaltThread, haltThread{
					Workflow:  p.Workflow,
					Instance:  p.Instance,
					Origin:    sid,
					Step:      arc.To,
					Epoch:     r.epoch,
					Initiator: a.cfg.Name + "/abort",
					Mechanism: metrics.Abort,
				})
			}
		}
	}

	// Determine the steps to compensate (schema spec or every compensable
	// step known to have executed), in reverse topological order.
	var candidates []model.StepID
	if len(r.schema.AbortCompensate) > 0 {
		candidates = r.schema.AbortCompensate
	} else {
		for _, id := range r.schema.Order {
			if r.schema.Steps[id].Compensable() {
				candidates = append(candidates, id)
			}
		}
	}
	inCand := make(map[model.StepID]bool, len(candidates))
	for _, id := range candidates {
		inCand[id] = true
	}
	// The coordination agent may not know which candidates actually
	// executed (state is distributed), so it probes all eligible agents of
	// every candidate step — the paper's w·a abort messages.
	topo := r.schema.TopoOrder()
	var queue []model.StepID
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		if inCand[id] {
			queue = append(queue, id)
		}
	}
	r.abort = &abortState{queue: queue}
	a.pumpAbort(r)
	return nil
}

// pumpAbort sends StepCompensate to all eligible agents of the next step in
// the abort queue and waits for their acknowledgements.
func (a *Agent) pumpAbort(r *replica) {
	ab := r.abort
	for ab.pending == 0 {
		if len(ab.queue) == 0 {
			r.ins.Status = wfdb.Aborted
			r.ins.Events.Post(event.WorkflowAbortName)
			a.finishInstance(r)
			return
		}
		step := ab.queue[0]
		ab.queue = ab.queue[1:]
		elig := a.effectiveAgents(r.schema.Steps[step])
		for _, ag := range elig {
			ab.pending++
			a.send(ag, metrics.Abort, KindStepCompensate, stepCompensate{
				Workflow:  r.ins.Workflow,
				Instance:  r.ins.ID,
				Step:      step,
				ReplyTo:   a.cfg.Name,
				Mechanism: metrics.Abort,
			})
		}
	}
}

func (a *Agent) handleStepCompensate(p stepCompensate) {
	r, err := a.getReplica(p.Workflow, p.Instance)
	if err == nil {
		rec := r.ins.Steps[p.Step]
		if rec != nil && rec.HasResult && rec.Agent == a.cfg.Name {
			a.compensateLocal(r, p.Step, model.ModeCompensate, p.Mechanism)
			a.persist(r)
		}
	}
	a.send(p.ReplyTo, p.Mechanism, KindStepCompensated, stepCompensated{
		Workflow: p.Workflow,
		Instance: p.Instance,
		Step:     p.Step,
	})
}

func (a *Agent) handleStepCompensated(p stepCompensated) {
	r, ok := a.replicas[wfdb.InstanceKeyOf(p.Workflow, p.Instance)]
	if !ok || r.abort == nil {
		return
	}
	a.addLoad(metrics.Abort, 1)
	r.abort.pending--
	a.pumpAbort(r)
}

func (a *Agent) handleWorkflowChangeInputs(p workflowChangeInputs) error {
	key := wfdb.InstanceKeyOf(p.Workflow, p.Instance)
	r, ok := a.replicas[key]
	if !ok {
		if st, done := a.term.Status(p.Workflow, p.Instance); done && st != wfdb.Running {
			return fmt.Errorf("%w: instance %s is %v", cerrors.ErrNotRunning, key, st)
		}
		return fmt.Errorf("%w: %s", cerrors.ErrUnknownInstance, key)
	}
	if r.ins.Status != wfdb.Running {
		return fmt.Errorf("%w: instance %s is %v", cerrors.ErrNotRunning, key, r.ins.Status)
	}
	a.addLoad(metrics.InputChange, 1)
	changed := make(map[string]expr.Value)
	for name, v := range p.Inputs {
		full := model.WorkflowInput(name)
		if old, ok := r.ins.Data[full]; !ok || !old.Equal(v) {
			changed[full] = v
			r.ins.Data[full] = v
		}
	}
	if len(changed) == 0 {
		return nil
	}
	r.epoch++
	r.resetEpoch["WF"] = r.epoch
	var origin model.StepID
	for _, sid := range r.schema.TopoOrder() {
		for _, in := range r.schema.Steps[sid].Inputs {
			if _, hit := changed[in]; hit {
				origin = sid
				break
			}
		}
		if origin != "" {
			break
		}
	}
	if origin == "" {
		return nil
	}
	r.inputEpoch++
	a.send(a.executorOf(r, origin), metrics.InputChange, KindWorkflowRollback, workflowRollback{
		Workflow:  p.Workflow,
		Instance:  p.Instance,
		Origin:    origin,
		Epoch:     r.inputEpoch,
		Initiator: a.cfg.Name + "/inputs",
		NewData:   changed,
		Mechanism: metrics.InputChange,
	})
	return nil
}

// ---------------------------------------------------------------------------
// Nested workflows

func (a *Agent) startNested(r *replica, step model.StepID, mech metrics.Mechanism) {
	s := r.schema.Steps[step]
	child := a.cfg.Library.Schema(s.Nested)
	if child == nil {
		a.logf("instance %s step %s: unknown nested workflow %q", r.ins.Key(), step, s.Nested)
		return
	}
	inputs := a.resolveInputs(r, s)
	r.ins.RecordExecuting(step, a.cfg.Name, inputs)
	childInputs := make(map[string]expr.Value)
	for i, in := range s.Inputs {
		if i >= len(child.Inputs) {
			break
		}
		if v, ok := r.ins.Data[in]; ok {
			childInputs[child.Inputs[i]] = v
		}
	}
	childID := r.ins.ID*1000 + int(r.ins.StepRec(step).Attempts)
	coordAgent := a.coordinationAgentOf(child, s.Nested, childID)
	a.addLoad(mech, 1)
	a.send(coordAgent, mech, KindWorkflowStart, workflowStart{
		Workflow: s.Nested,
		Instance: childID,
		Inputs:   childInputs,
		Parent: &model.StepRef{
			Workflow: r.ins.Workflow,
			Step:     step,
		},
		ParentInst:  r.ins.ID,
		ParentAgent: a.cfg.Name,
	})
}

func (a *Agent) handleNestedResult(p nestedResult) {
	r, ok := a.replicas[wfdb.InstanceKeyOf(p.ParentWorkflow, p.ParentInstance)]
	if !ok || r.ins.Status != wfdb.Running {
		return
	}
	a.addLoad(metrics.Normal, 1)
	if !p.Committed {
		r.ins.RecordFailed(p.ParentStep)
		a.onStepFailure(r, p.ParentStep, metrics.Failure)
		return
	}
	s := r.schema.Steps[p.ParentStep]
	child := a.cfg.Library.Schema(p.ChildWorkflow)
	outputs := make(map[string]expr.Value, len(s.Outputs))
	if child != nil {
		for _, o := range s.Outputs {
			for _, term := range child.TerminalSteps() {
				if v, ok := p.Data[term.Ref(o)]; ok {
					outputs[o] = v
					break
				}
			}
		}
	}
	r.ins.RecordDone(p.ParentStep, outputs)
	a.afterStepDone(r, p.ParentStep, metrics.Normal)
}

// ---------------------------------------------------------------------------
// Predecessor-failure detection (StepStatus polling)

// sweep is the agent's periodic anti-entropy pass: it re-evaluates running
// replicas (firing any rules re-armed by rollbacks whose packets raced past
// their probes), re-reports terminal steps this agent completed to the
// coordination agent (a lost or filtered StepCompleted must not prevent
// commit), and polls StepStatus for events that have been missing too long
// (the paper's predecessor-failure detection).
func (a *Agent) sweep() {
	now := time.Now()
	// Snapshot: evaluation can start nested instances and retirement evicts
	// entries, both mutating the map.
	replicas := make([]*replica, 0, len(a.replicas))
	for _, r := range a.replicas {
		replicas = append(replicas, r)
	}
	for _, r := range replicas {
		// Retire replicas of instances that finished elsewhere: the terminal
		// registry is deployment-shared, so learning the outcome and
		// evicting the replica costs no messages. This is what keeps every
		// agent's resident state flat under an unbounded instance stream —
		// without it, non-coordination agents held their replicas of
		// committed instances forever.
		if !r.purged {
			if st, ok := a.term.Status(r.ins.Workflow, r.ins.ID); ok && st != wfdb.Running {
				a.retireReplica(r, st)
				continue
			}
		}
		if r.ins.Status != wfdb.Running || r.purged {
			continue
		}
		a.rearmUnexecuted(r)
		a.evaluate(r)
		a.recheckCoordination(r)
		if now.Sub(r.lastReport) >= a.cfg.StatusPollAge {
			r.lastReport = now
			a.reportTerminals(r)
		}
		a.pollOverdueRules(r, now)
	}
}

// rearmUnexecuted re-arms the execution rules of steps that never started
// executing anywhere this agent can see. Rules are edge-triggered, and the
// executor election is alive-aware: a rule firing consumed while another
// agent transiently won the election (crash windows flip the winner, and
// recovery flips it back) is otherwise lost for good — every agent's gate
// says "not my step" exactly when its rule fires, and no one ever executes
// it. Re-arming from the sweep lets the eventual winner retry; the election
// gate, the executing guard and the coordination dedup keep the retries
// idempotent for everyone else. Steps with failure or compensation state are
// left to the rollback path, which re-arms what it re-executes.
func (a *Agent) rearmUnexecuted(r *replica) {
	r.rules.RearmWhere(func(id string) bool {
		for _, sid := range r.schema.Order {
			if !rules.IsExecRuleFor(id, sid) {
				continue
			}
			if r.executing[sid] {
				return false
			}
			rec := r.ins.Steps[sid]
			return rec == nil || (rec.Status == wfdb.StepPending && !rec.HasResult)
		}
		return false
	})
}

// recheckCoordination re-runs the coordination gate for blocked steps. A
// rollback can invalidate a mutex grant after the home agent issued it; a
// fresh AddRule check makes the home re-grant to the recorded holder (the
// tracker deduplicates waiters, so repeated checks are safe).
func (a *Agent) recheckCoordination(r *replica) {
	var blocked []model.StepID
	for step, b := range r.coordBlocked {
		if b {
			blocked = append(blocked, step)
		}
	}
	for _, step := range blocked {
		delete(r.coordWaits, step)
		r.coordPending[step] = false
		a.maybeExecute(r, step)
	}
}

// reportTerminals re-sends StepCompleted for terminal steps this agent
// holds results for while the instance is still running here.
func (a *Agent) reportTerminals(r *replica) {
	coordAgent := r.coordinator
	if coordAgent == "" {
		coordAgent = a.coordinationAgentOf(r.schema, r.ins.Workflow, r.ins.ID)
	}
	if coordAgent == a.cfg.Name {
		// We are the coordination agent: just re-check commit.
		if nav.ShouldCommit(r.schema, r.ins) {
			a.commitInstance(r)
		}
		return
	}
	for _, tid := range r.schema.TerminalSteps() {
		rec := r.ins.Steps[tid]
		if rec == nil || !rec.HasResult || rec.Agent != a.cfg.Name {
			continue
		}
		a.send(coordAgent, metrics.Normal, KindStepCompleted, stepCompleted{
			Workflow: r.ins.Workflow,
			Instance: r.ins.ID,
			Step:     tid,
			Epoch:    r.epoch,
			Data:     cloneData(r.ins.Data),
			Events:   r.ins.Events.ValidNames(),
		})
	}
}

// pollOverdueRules polls the eligible agents of every step whose done event
// a pending rule has been missing for longer than StatusPollAge.
func (a *Agent) pollOverdueRules(r *replica, now time.Time) {
	for _, w := range r.rules.WaitingRules(r.ins.Events) {
		for _, missing := range w.Missing {
			sid := event.StepOfDone(missing)
			if sid == "" {
				continue
			}
			key := w.Rule.ID + "|" + missing
			first, seen := r.waitSince[key]
			if !seen {
				r.waitSince[key] = now
				continue
			}
			if now.Sub(first) < a.cfg.StatusPollAge || r.polled[key] {
				continue
			}
			r.polled[key] = true
			producer := model.StepID(sid)
			s := r.schema.Steps[producer]
			if s == nil {
				continue
			}
			forStep := w.Rule.Action.Step
			for _, ag := range a.effectiveAgents(s) {
				if ag == a.cfg.Name || !a.alive(ag) {
					continue
				}
				a.addLoad(metrics.Failure, 1)
				a.send(ag, metrics.Failure, KindStepStatus, stepStatus{
					Workflow: r.ins.Workflow,
					Instance: r.ins.ID,
					Step:     producer,
					ForStep:  forStep,
					ReplyTo:  a.cfg.Name,
				})
			}
		}
	}
}

func (a *Agent) handleStepStatus(p stepStatus) {
	r, ok := a.replicas[wfdb.InstanceKeyOf(p.Workflow, p.Instance)]
	status := "unknown"
	if ok {
		if rec := r.ins.Steps[p.Step]; rec != nil {
			switch {
			case rec.HasResult && rec.Agent == a.cfg.Name:
				status = "done"
			case r.executing[p.Step]:
				status = "executing"
			}
		}
	}
	a.send(p.ReplyTo, metrics.Failure, KindStepStatusReply, stepStatusReply{
		Workflow: p.Workflow,
		Instance: p.Instance,
		Step:     p.Step,
		Status:   status,
		Agent:    a.cfg.Name,
	})
	// A responder holding the results re-sends the workflow packet so the
	// waiting agent can proceed.
	if status == "done" && ok {
		pkt := a.buildPacket(r, p.ForStep, nil)
		a.send(p.ReplyTo, metrics.Failure, KindStepExecute, stepExecute{Packet: pkt, Mechanism: metrics.Failure})
	}
}

func (a *Agent) handleStepStatusReply(p stepStatusReply) {
	r, ok := a.replicas[wfdb.InstanceKeyOf(p.Workflow, p.Instance)]
	if !ok || r.ins.Status != wfdb.Running {
		return
	}
	switch p.Status {
	case "done":
		// The packet re-send unblocks us; nothing more to do.
	case "executing":
		// Keep waiting: reset the age so the poll may repeat later.
		for key := range r.polled {
			if strings.HasSuffix(key, "|"+event.DoneName(string(p.Step))) {
				delete(r.polled, key)
				r.waitSince[key] = time.Now()
			}
		}
	case "unknown":
		// If the producing step is a query, re-execute it at an available
		// eligible agent; update steps must wait for the failed agent.
		s := r.schema.Steps[p.Step]
		if s == nil || s.Update {
			return
		}
		if r.ins.Events.Has(r.schema.DoneEventOf(p.Step)) {
			return
		}
		target := nav.ElectAgent(a.effectiveAgents(s), r.ins.Workflow, r.ins.ID, p.Step, a.alive)
		if target == "" {
			return
		}
		pkt := a.buildPacket(r, p.Step, nil)
		a.addLoad(metrics.Failure, 1)
		a.send(target, metrics.Failure, KindStepExecute, stepExecute{Packet: pkt, Mechanism: metrics.Failure})
	}
}
