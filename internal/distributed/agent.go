package distributed

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/coord"
	"crew/internal/expr"
	"crew/internal/itable"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/rules"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// Config parameterizes one distributed agent.
type Config struct {
	// Name is the agent's node name.
	Name string
	// Library holds the replicated schemas and coordination specs.
	Library *model.Library
	// Agents lists every agent in the deployment (sorted order defines the
	// coordination home agent and default eligibility).
	Agents []string
	// Programs resolves step programs.
	Programs *model.Registry
	// Collector receives load accounting (may be nil).
	Collector *metrics.Collector
	// AGDB persists the agent's replicas; nil disables persistence.
	AGDB *wfdb.DB
	// DisableOCR forces Saga-style recovery on revisits (ablation).
	DisableOCR bool
	// ExplicitElection enables the StateInformation-exchange successor
	// election (ablation); the default is the deterministic zero-message
	// election.
	ExplicitElection bool
	// PurgeOnCommit makes coordination agents broadcast purge notes when an
	// instance finishes (paper: periodic broadcast; immediate here).
	PurgeOnCommit bool
	// Alive overrides the liveness oracle used by agent elections and status
	// polling; nil uses the transport's view. Multi-process children need the
	// override: their local network registers every peer as an always-up
	// forwarding proxy, so only the hub's crash/recover announcements know
	// which agents are really down.
	Alive func(name string) bool
	// Terminal optionally shares a terminal-status registry across the
	// deployment. The coordination agent publishes every commit/abort into
	// it; completion waiters subscribe to it, and the other agents retire
	// their replicas against it without exchanging a single message. Nil
	// keeps a private registry (standalone agents).
	Terminal *itable.Terminal
	// OnRetired, if set, is called after the agent archives and evicts a
	// replica of a terminated instance (the deployment evicts its routing
	// entries through it).
	OnRetired func(workflow string, id int)
	// StatusPollInterval paces the agent's maintenance sweep: re-evaluating
	// replicas, re-reporting completed terminal steps to coordination
	// agents, and polling StepStatus for overdue missing events (the
	// paper's predecessor-failure detection). Zero means the 100ms default;
	// negative disables the sweep.
	//
	// Deprecated: there is no standing status-poll timer any more.
	// Completion is push-based and the sweep runs off a one-shot timer armed
	// only while the agent holds live replicas; an idle agent takes zero
	// timer wakeups. The field is kept as a compatibility knob that only
	// paces that on-demand timer.
	StatusPollInterval time.Duration
	// StatusPollAge is how long a rule must wait before its missing events
	// are polled; defaults to 2*StatusPollInterval.
	//
	// Deprecated: see StatusPollInterval; retained only to pace the
	// on-demand sweep's poll/report throttling.
	StatusPollAge time.Duration
	Logf          func(format string, args ...any)
}

// replica is an agent's partial copy of one workflow instance's state.
type replica struct {
	ins    *wfdb.Instance
	schema *model.Schema
	rules  *rules.Engine
	// coordinator is the instance's coordination agent.
	coordinator string
	// recovery is the current recovery cause at this agent (Normal if none).
	recovery metrics.Mechanism
	// executing guards against double execution while a program runs.
	executing map[model.StepID]bool
	// coordPending marks an outstanding AddRule check at the home agent;
	// coordWaits holds the latest wait-event list per step; coordBlocked
	// marks steps whose rule fired but whose coordination events are not
	// yet all valid (retried when AddEvent injections arrive).
	coordPending map[model.StepID]bool
	coordWaits   map[model.StepID][]string
	coordBlocked map[model.StepID]bool
	// rollbacks counts rollback attempts initiated here per failing step.
	rollbacks map[model.StepID]int
	// abort tracks an in-progress user abort (coordination agent only).
	abort *abortState
	// waitSince tracks when a pending rule first lacked exactly one event
	// (predecessor-failure detection); keyed by ruleID|event.
	waitSince map[string]time.Time
	polled    map[string]bool
	purged    bool
	// parentAgent is the agent awaiting this nested instance's result.
	parentAgent string
	// leading/lagging are the relative-ordering roles piggybacked on
	// outgoing workflow packets (Figure 7).
	leading []string
	lagging []string
	// inputEpoch counts input-change rollbacks issued by the coordination
	// agent.
	inputEpoch int
	// epoch is the instance's rollback epoch at this agent; resetEpoch
	// records, per step, the epoch at which the step was last reset by a
	// rollback. Incoming state (packets, StepCompleted snapshots) is merged
	// per step: entries for a step are ignored unless the sender's epoch is
	// at least the step's reset epoch, so stale threads cannot resurrect
	// invalidated state while unaffected parallel branches still merge.
	epoch      int
	resetEpoch map[model.StepID]int
	// doneEpoch records, per step, the epoch at which its current done
	// state was established. HaltThread probes of epoch E reset only steps
	// whose doneEpoch < E: a probe that arrives after the re-executed
	// thread already passed through must not clobber the fresh state.
	doneEpoch map[model.StepID]int
	// lastHalt remembers the most recent rollback parameters so agents that
	// send stale state can be told to catch up (anti-entropy).
	lastHalt *haltThread
	// lastReport throttles the sweep's terminal re-reports.
	lastReport time.Time
}

type abortState struct {
	queue   []model.StepID
	pending int // outstanding stepCompensated replies for the current step
}

// Agent is a distributed workflow agent: execution agent always, and
// coordination/termination agent per instance as the schemas dictate.
type Agent struct {
	cfg Config
	net *transport.Network
	ep  *transport.Endpoint
	rec metrics.NodeRecorder
	// handles caches per-destination senders; touched only by the agent
	// goroutine.
	handles map[string]*transport.Handle
	// batch coalesces the sends of one handler turn into per-destination
	// envelopes; flushed before the turn's Ack (see flushSends).
	batch transport.Batcher

	cmdMu     sync.Mutex
	cmdQ      []func()
	cmdNotify chan struct{}
	wg        sync.WaitGroup

	replicas map[string]*replica
	// handledHalts dedupes HaltThread floods: highest epoch seen per
	// (instance, origin, initiator).
	handledHalts map[haltKey]int
	// loads caches StateInformation replies (explicit-election ablation).
	loads map[string]int64
	// waiters holds commit/abort subscribers (coordination agent role).
	waiters map[string][]chan wfdb.Status
	// execCount is this agent's total program executions.
	execCount int64
	// term records terminal statuses (shared deployment-wide via
	// Config.Terminal); adb archives retired replicas (the AGDB when one is
	// configured, else a private in-memory database).
	term *itable.Terminal
	adb  *wfdb.DB
	// sweepWakeups counts maintenance-timer firings; tests assert an idle
	// agent stops waking up.
	sweepWakeups atomic.Int64

	// home is non-nil on the deployment's coordination home agent.
	home *homeState

	coordSteps     map[model.StepRef]bool
	hasRollbackDep bool
}

// NewAgent registers the agent and starts its goroutine.
func NewAgent(cfg Config, net *transport.Network) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("distributed: agent needs a name")
	}
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("distributed: agent needs a library and programs")
	}
	if len(cfg.Agents) == 0 {
		return nil, errors.New("distributed: agent needs the deployment agent list")
	}
	if cfg.StatusPollInterval == 0 {
		cfg.StatusPollInterval = 100 * time.Millisecond
	}
	if cfg.StatusPollAge == 0 {
		cfg.StatusPollAge = 2 * cfg.StatusPollInterval
	}
	ep, err := net.Register(cfg.Name)
	if err != nil {
		return nil, err
	}
	ep.ManualAck()
	a := &Agent{
		cfg:          cfg,
		net:          net,
		ep:           ep,
		rec:          cfg.Collector.Node(cfg.Name),
		handles:      make(map[string]*transport.Handle),
		cmdNotify:    make(chan struct{}, 1),
		replicas:     make(map[string]*replica),
		handledHalts: make(map[haltKey]int),
		loads:        make(map[string]int64),
		waiters:      make(map[string][]chan wfdb.Status),
		term:         cfg.Terminal,
		adb:          cfg.AGDB,
	}
	if a.term == nil {
		a.term = new(itable.Terminal)
	}
	if a.adb == nil {
		a.adb = wfdb.NewMemory()
	}
	tracker := coord.NewTracker(cfg.Library)
	a.coordSteps = tracker.CoordinatedSteps()
	for _, spec := range cfg.Library.Coord {
		if spec.Kind == model.RollbackDep {
			a.hasRollbackDep = true
		}
	}
	if HomeAgent(cfg.Agents) == cfg.Name {
		a.home = &homeState{tracker: tracker}
	}
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// HomeAgent returns the deployment's coordination home agent: the first
// agent in sorted order. Every agent computes the same answer locally.
func HomeAgent(agents []string) string {
	if len(agents) == 0 {
		return ""
	}
	sorted := append([]string(nil), agents...)
	sort.Strings(sorted)
	return sorted[0]
}

// Name returns the agent's node name.
func (a *Agent) Name() string { return a.cfg.Name }

// Stop waits for the agent goroutine to exit (close the network first).
func (a *Agent) Stop() { a.wg.Wait() }

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	} else {
		log.Printf("distributed[%s]: "+format, append([]any{a.cfg.Name}, args...)...)
	}
}

func (a *Agent) loop() {
	defer a.wg.Done()
	inbox := a.ep.Inbox()
	// The maintenance sweep runs off a one-shot timer armed on demand: only
	// while the agent holds replicas is there anything to heal, report or
	// retire, so an idle agent (every instance terminal and evicted) blocks
	// with no timer at all — zero steady-state wakeups, unlike the standing
	// ticker this replaces.
	var (
		timer  *time.Timer
		timerC <-chan time.Time
	)
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		a.drainCmds()
		if a.cfg.StatusPollInterval > 0 && timerC == nil && len(a.replicas) > 0 {
			if timer == nil {
				timer = time.NewTimer(a.cfg.StatusPollInterval)
			} else {
				timer.Reset(a.cfg.StatusPollInterval)
			}
			timerC = timer.C
		}
		select {
		case m, ok := <-inbox:
			if !ok {
				a.drainCmds()
				return
			}
			a.handleMessage(m)
			a.flushSends()
			a.ep.Ack()
		case <-a.cmdNotify:
		case <-timerC:
			timerC = nil
			a.sweepWakeups.Add(1)
			a.sweep()
			a.flushSends()
		}
	}
}

// flushSends dispatches the current turn's batched sends. It runs at the end
// of every handler turn and command, before the turn's Ack, so quiescence
// accounting never sees a processed-but-unsent gap.
func (a *Agent) flushSends() {
	if err := a.batch.Flush(); err != nil {
		a.logf("flush sends: %v", err)
	}
}

func (a *Agent) drainCmds() {
	for {
		a.cmdMu.Lock()
		if len(a.cmdQ) == 0 {
			a.cmdMu.Unlock()
			return
		}
		f := a.cmdQ[0]
		a.cmdQ = a.cmdQ[1:]
		a.cmdMu.Unlock()
		f()
		a.flushSends()
	}
}

func (a *Agent) enqueue(f func()) {
	a.cmdMu.Lock()
	a.cmdQ = append(a.cmdQ, f)
	a.cmdMu.Unlock()
	select {
	case a.cmdNotify <- struct{}{}:
	default:
	}
}

// Do runs f on the agent goroutine and waits. Not for use from the agent
// goroutine itself.
func (a *Agent) Do(f func()) {
	done := make(chan struct{})
	a.enqueue(func() {
		defer close(done)
		f()
		a.flushSends() // before done closes: the caller may Quiesce next
	})
	<-done
}

func (a *Agent) addLoad(m metrics.Mechanism, units int64) {
	a.rec.Add(m, units)
}

func (a *Agent) send(to string, mech metrics.Mechanism, kind string, payload any) {
	if to == a.cfg.Name {
		// Local handling: not a physical message.
		a.handleMessage(transport.Message{From: to, To: to, Mechanism: mech, Kind: kind, Payload: payload})
		return
	}
	h := a.handles[to]
	if h == nil {
		var err error
		if h, err = a.net.Handle(to); err != nil {
			a.logf("send %s to %s: %v", kind, to, err)
			return
		}
		a.handles[to] = h
	}
	a.batch.Add(h, transport.Message{
		From:      a.cfg.Name,
		To:        to,
		Mechanism: mech,
		Kind:      kind,
		Payload:   payload,
	})
}

// alive answers liveness queries for elections and polls: the Config.Alive
// override when installed, else the transport's view.
func (a *Agent) alive(name string) bool {
	if a.cfg.Alive != nil {
		return a.cfg.Alive(name)
	}
	return a.net.Alive(name)
}

// effectiveAgents returns the agents eligible to execute a step.
func (a *Agent) effectiveAgents(s *model.Step) []string {
	if len(s.EligibleAgents) > 0 {
		return s.EligibleAgents
	}
	return a.cfg.Agents
}

// executorOf elects the executor of a step (deterministic, alive-aware).
func (a *Agent) executorOf(r *replica, step model.StepID) string {
	s := r.schema.Steps[step]
	if s == nil {
		return ""
	}
	return nav.ElectAgent(a.effectiveAgents(s), r.ins.Workflow, r.ins.ID, step, a.alive)
}

// errRetired marks a message addressed to an instance that already reached a
// terminal status and was archived. Handlers drop such messages silently:
// late packets for a finished instance are normal traffic, and recreating a
// replica for them would resurrect the instance in the live tables.
var errRetired = errors.New("instance already terminated")

// getReplica returns (creating if needed) the replica of an instance,
// installing the execution rules for every step this agent is eligible for.
// Instances recorded terminal in the registry are never recreated; callers
// get errRetired instead.
func (a *Agent) getReplica(workflow string, id int) (*replica, error) {
	key := wfdb.InstanceKeyOf(workflow, id)
	if r, ok := a.replicas[key]; ok {
		return r, nil
	}
	if st, ok := a.term.Status(workflow, id); ok && st != wfdb.Running {
		return nil, fmt.Errorf("%s: %w", key, errRetired)
	}
	schema := a.cfg.Library.Schema(workflow)
	if schema == nil {
		return nil, fmt.Errorf("distributed: unknown workflow class %q", workflow)
	}
	ins := wfdb.NewInstance(workflow, id, nil)
	r := a.newReplica(schema, ins)
	a.replicas[key] = r
	return r, nil
}

// newReplica builds a replica around an instance (fresh or reloaded from the
// AGDB), installing the execution rules for every step this agent is eligible
// for and binding them to the instance's event table.
func (a *Agent) newReplica(schema *model.Schema, ins *wfdb.Instance) *replica {
	ins.AttachSchema(schema)
	r := &replica{
		ins:          ins,
		schema:       schema,
		rules:        rules.NewEngine(),
		recovery:     metrics.Normal,
		executing:    make(map[model.StepID]bool),
		coordPending: make(map[model.StepID]bool),
		coordWaits:   make(map[model.StepID][]string),
		coordBlocked: make(map[model.StepID]bool),
		rollbacks:    make(map[model.StepID]int),
		waitSince:    make(map[string]time.Time),
		polled:       make(map[string]bool),
		resetEpoch:   make(map[model.StepID]int),
		doneEpoch:    make(map[model.StepID]int),
	}
	for _, id := range schema.Order {
		for _, ag := range a.effectiveAgents(schema.Steps[id]) {
			if ag == a.cfg.Name {
				for _, rl := range rules.StepRules(schema, id) {
					r.rules.InstallRule(rl)
				}
				break
			}
		}
	}
	r.rules.Bind(r.ins.Events)
	return r
}

// RecoverReplicas rebuilds the agent's live replicas from its AGDB after a
// process restart: the real crash-recovery path of a multi-process
// deployment, where a killed agent loses every in-memory table and owns
// nothing but its database. Terminal summaries are replayed into the local
// terminal registry (and re-announced to notify, when non-empty, so a front
// end across the wire cannot miss a completion that raced the crash); each
// live instance record becomes a replica again, restoring the persisted
// rollback epoch and coordination election, and is re-evaluated so rules
// whose effects died with the process fire again. Messages the hub never saw
// acknowledged are replayed on reconnect, which is where the remaining
// in-flight state comes from.
func (a *Agent) RecoverReplicas(notify string) error {
	if a.cfg.AGDB == nil {
		return nil
	}
	var firstErr error
	a.Do(func() {
		db := a.cfg.AGDB
		for _, key := range db.SummaryKeys() {
			wf, id, err := wfdb.ParseInstanceKey(key)
			if err != nil {
				continue
			}
			st, ok, err := db.LoadSummary(wf, id)
			if err != nil || !ok || st == wfdb.Running {
				continue
			}
			a.term.Complete(wf, id, st)
			if notify != "" {
				a.send(notify, metrics.Failure, KindWorkflowDone,
					WorkflowDone{Workflow: wf, Instance: id, Status: st})
			}
		}
		for _, key := range db.InstanceKeys() {
			wf, id, err := wfdb.ParseInstanceKey(key)
			if err != nil {
				continue
			}
			if _, ok := a.replicas[key]; ok {
				continue
			}
			if st, ok := a.term.Status(wf, id); ok && st != wfdb.Running {
				continue
			}
			ins, ok, err := db.LoadInstance(wf, id)
			if err != nil || !ok {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			}
			schema := a.cfg.Library.Schema(wf)
			if schema == nil {
				continue
			}
			r := a.newReplica(schema, ins)
			r.epoch = ins.Epoch
			r.coordinator = ins.Coordinator
			r.recovery = metrics.Failure
			a.replicas[key] = r
		}
		keys := make([]string, 0, len(a.replicas))
		for k := range a.replicas {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a.evaluate(a.replicas[k])
		}
	})
	return firstErr
}

// coordinationAgentOf computes an instance's coordination agent: the elected
// executor of the schema's first start step.
func (a *Agent) coordinationAgentOf(schema *model.Schema, workflow string, id int) string {
	starts := schema.StartSteps()
	if len(starts) == 0 {
		return HomeAgent(a.cfg.Agents)
	}
	return nav.ElectAgent(a.effectiveAgents(schema.Steps[starts[0]]), workflow, id, starts[0], a.alive)
}

// persist writes the replica to the AGDB. Retired (archived) replicas are
// never written back: that would resurrect the instance record the archive
// removed.
func (a *Agent) persist(r *replica) {
	if a.cfg.AGDB == nil || r.purged {
		return
	}
	// Checkpoint the replica-level recovery anchors into the record: a process
	// restarted from this database must resume with the same rollback epoch
	// and coordination election it persisted, not rediscover them.
	r.ins.Epoch = r.epoch
	r.ins.Coordinator = r.coordinator
	if err := a.cfg.AGDB.SaveInstance(r.ins); err != nil {
		a.logf("persist %s: %v", r.ins.Key(), err)
	}
}

// Snapshot returns a deep copy of the agent's replica of an instance; for a
// retired instance it serves this agent's archived copy (the full final
// state on the coordination agent, the local partial view elsewhere).
func (a *Agent) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	var out *wfdb.Instance
	a.Do(func() {
		if r, ok := a.replicas[wfdb.InstanceKeyOf(workflow, id)]; ok {
			out = r.ins.Clone()
		}
	})
	if out == nil {
		if ins, ok, err := a.adb.LoadArchived(workflow, id); err == nil && ok {
			if schema := a.cfg.Library.Schema(workflow); schema != nil {
				ins.AttachSchema(schema)
			}
			out = ins
		}
	}
	return out, out != nil
}

// HasReplica reports whether the agent currently holds state for an
// instance (purge tests).
func (a *Agent) HasReplica(workflow string, id int) bool {
	var ok bool
	a.Do(func() {
		_, ok = a.replicas[wfdb.InstanceKeyOf(workflow, id)]
	})
	return ok
}

// ExecCount returns the number of program executions at this agent.
func (a *Agent) ExecCount() int64 {
	var n int64
	a.Do(func() { n = a.execCount })
	return n
}

// ReplicaCount returns the number of live (non-retired) replicas held.
func (a *Agent) ReplicaCount() int {
	var n int
	a.Do(func() { n = len(a.replicas) })
	return n
}

// SweepWakeups returns how often the maintenance timer has fired. An agent
// whose replicas have all retired must stop accruing wakeups.
func (a *Agent) SweepWakeups() int64 { return a.sweepWakeups.Load() }

// DB returns the agent's configured database (nil without persistence).
func (a *Agent) DB() *wfdb.DB { return a.cfg.AGDB }

// Terminal returns the agent's terminal-status registry.
func (a *Agent) Terminal() *itable.Terminal { return a.term }

// retireReplica archives a terminated instance's replica and evicts it from
// the live table, publishing the terminal status and waking completion
// waiters. The local copy (partial on non-coordination agents) goes to this
// agent's archive database, so Snapshot keeps answering with the per-agent
// view. For in-process deployments retirement is pure local bookkeeping: it
// sends no messages and adds no load, so the paper's message and load tables
// are unaffected. Only when the replica carries a NotifyTo address (set by a
// multi-process front end's WorkflowStart) does the coordination agent push
// one WorkflowDone across the wire — the completion signal that replaces the
// shared terminal registry a process boundary takes away.
//
// Retirement happens only at terminal status, after the coordination
// clean-up has been issued — never while pending rollback dependencies or
// compensation-dependent sets can still reference the instance (those only
// exist while the instance is Running).
func (a *Agent) retireReplica(r *replica, st wfdb.Status) {
	key := r.ins.Key()
	r.ins.Status = st
	r.purged = true // callers unwinding with r in hand must not persist it back
	if err := a.adb.Archive(r.ins); err != nil {
		a.logf("archive %s: %v", key, err)
	}
	if a.cfg.AGDB != nil && a.cfg.AGDB != a.adb {
		_ = a.cfg.AGDB.DeleteInstance(r.ins.Workflow, r.ins.ID)
	}
	a.term.Complete(r.ins.Workflow, r.ins.ID, st)
	if r.ins.NotifyTo != "" {
		a.send(r.ins.NotifyTo, metrics.Normal, KindWorkflowDone,
			WorkflowDone{Workflow: r.ins.Workflow, Instance: r.ins.ID, Status: st})
	}
	a.notifyWaiters(key, st)
	delete(a.replicas, key)
	for hk := range a.handledHalts {
		if hk.workflow == r.ins.Workflow && hk.instance == r.ins.ID {
			delete(a.handledHalts, hk)
		}
	}
	if a.cfg.OnRetired != nil {
		a.cfg.OnRetired(r.ins.Workflow, r.ins.ID)
	}
}

// DebugState renders an instance replica's rule and coordination state for
// diagnostics.
func (a *Agent) DebugState(workflow string, id int) string {
	var out string
	a.Do(func() {
		r, ok := a.replicas[wfdb.InstanceKeyOf(workflow, id)]
		if !ok {
			out = "(no replica)"
			return
		}
		out = fmt.Sprintf("status=%v epoch=%d recovery=%v", r.ins.Status, r.epoch, r.recovery)
		for _, w := range r.rules.WaitingRules(r.ins.Events) {
			out += fmt.Sprintf("\n  waiting %s missing=%v", w.Rule.ID, w.Missing)
		}
		for step, v := range r.coordPending {
			if v {
				out += fmt.Sprintf("\n  coordPending %s", step)
			}
		}
		for step, v := range r.coordBlocked {
			if v {
				out += fmt.Sprintf("\n  coordBlocked %s waits=%v", step, r.coordWaits[step])
			}
		}
		if a.home != nil {
			for _, spec := range a.home.tracker.Specs() {
				if spec.Kind == model.RelativeOrder {
					out += fmt.Sprintf("\n  home queue %s: %v", spec.Name, a.home.tracker.OrderQueue(spec.Name))
				}
			}
			for _, line := range a.home.tracker.MutexDebug() {
				out += "\n  home " + line
			}
		}
	})
	return out
}

// StartInstance runs the WorkflowStart WI locally (invoked by the front end
// on the coordination agent).
func (a *Agent) StartInstance(workflow string, id int, inputs map[string]expr.Value) error {
	var err error
	a.Do(func() {
		err = a.handleWorkflowStart(workflowStart{Workflow: workflow, Instance: id, Inputs: inputs})
	})
	return err
}

// RequestAbort runs the WorkflowAbort WI locally.
func (a *Agent) RequestAbort(workflow string, id int) error {
	var err error
	a.Do(func() {
		err = a.handleWorkflowAbort(workflowAbort{Workflow: workflow, Instance: id})
	})
	return err
}

// RequestChangeInputs runs the WorkflowChangeInputs WI locally.
func (a *Agent) RequestChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	var err error
	a.Do(func() {
		err = a.handleWorkflowChangeInputs(workflowChangeInputs{Workflow: workflow, Instance: id, Inputs: inputs})
	})
	return err
}

// InstanceStatus serves the WorkflowStatus WI from the coordination instance
// summary (and live replicas).
func (a *Agent) InstanceStatus(workflow string, id int) (wfdb.Status, bool) {
	var st wfdb.Status
	var ok bool
	a.Do(func() {
		st, ok = a.statusLocked(workflow, id)
	})
	return st, ok
}

func (a *Agent) statusLocked(workflow string, id int) (wfdb.Status, bool) {
	if st, ok := a.term.Status(workflow, id); ok {
		return st, true
	}
	if a.cfg.AGDB != nil {
		if st, found, _ := a.cfg.AGDB.LoadSummary(workflow, id); found {
			return st, true
		}
	}
	if r, found := a.replicas[wfdb.InstanceKeyOf(workflow, id)]; found {
		return r.ins.Status, true
	}
	return 0, false
}

// WaitChan subscribes to an instance's terminal status at its coordination
// agent.
func (a *Agent) WaitChan(workflow string, id int) <-chan wfdb.Status {
	ch := make(chan wfdb.Status, 1)
	a.Do(func() {
		if st, ok := a.statusLocked(workflow, id); ok && st != wfdb.Running {
			ch <- st
			return
		}
		key := wfdb.InstanceKeyOf(workflow, id)
		a.waiters[key] = append(a.waiters[key], ch)
	})
	return ch
}

func (a *Agent) notifyWaiters(key string, st wfdb.Status) {
	for _, ch := range a.waiters[key] {
		ch <- st
	}
	delete(a.waiters, key)
}
