package distributed

import (
	"context"
	"sync"
	"testing"
	"time"

	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

const waitTimeout = 5 * time.Second

type recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	r.mu.Unlock()
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *recorder) count(s string) int {
	n := 0
	for _, e := range r.list() {
		if e == s {
			n++
		}
	}
	return n
}

func (r *recorder) index(s string) int {
	for i, e := range r.list() {
		if e == s {
			return i
		}
	}
	return -1
}

func (r *recorder) waitFor(t *testing.T, s string) {
	t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for r.count(s) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%q never happened: %v", s, r.list())
		}
		time.Sleep(time.Millisecond)
	}
}

func tracked(rec *recorder, name string, outputs map[string]expr.Value) model.Program {
	return func(*model.ProgramContext) (map[string]expr.Value, error) {
		rec.add(name)
		out := make(map[string]expr.Value, len(outputs))
		for k, v := range outputs {
			out[k] = v
		}
		return out, nil
	}
}

func newSystem(t *testing.T, lib *model.Library, reg *model.Registry, agents ...string) *System {
	t.Helper()
	if len(agents) == 0 {
		agents = []string{"a1", "a2", "a3"}
	}
	sys, err := NewSystem(SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: metrics.NewCollector(),
		Agents:    agents,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func lib1(schemas ...*model.Schema) *model.Library {
	lib := model.NewLibrary()
	for _, s := range schemas {
		lib.Add(s)
	}
	return lib
}

func runToStatus(t *testing.T, sys *System, wf string, inputs map[string]expr.Value, want wfdb.Status) int {
	t.Helper()
	id, st, err := sys.Run(wf, inputs, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("instance %s.%d finished %v, want %v", wf, id, st, want)
	}
	return id
}

func TestLinearDistributedCommits(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(1)}))
	reg.Register("pb", tracked(rec, "b", map[string]expr.Value{"O1": expr.Num(2)}))
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("Lin", "I1").
		Step("A", "pa", model.WithOutputs("O1"), model.WithAgents("a1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithOutputs("O1"), model.WithAgents("a2")).
		Step("C", "pc", model.WithInputs("B.O1", "WF.I1"), model.WithAgents("a3")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id := runToStatus(t, sys, "Lin", map[string]expr.Value{"I1": expr.Num(90)}, wfdb.Committed)

	got := rec.list()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("execution order = %v", got)
	}
	// The coordination agent (a1, executor of the first start step) has the
	// committed state.
	snap, ok := sys.SnapshotAt("a1", "Lin", id)
	if !ok {
		t.Fatal("no snapshot at coordination agent")
	}
	if snap.Status != wfdb.Committed {
		t.Errorf("status at coordination agent = %v", snap.Status)
	}
	if !snap.Data["B.O1"].Equal(expr.Num(2)) {
		t.Errorf("commit snapshot data = %v", snap.Data)
	}
	if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
		t.Errorf("Status = (%v, %v)", st, ok)
	}
}

// TestMessageCountMatchesDistributedModel pins steps so every forwarded
// packet crosses the network: the paper's normal-execution count is
// s·a + f messages per instance.
func TestMessageCountMatchesDistributedModel(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, p := range []string{"pa", "pb", "pc"} {
		reg.Register(p, tracked(rec, p, nil))
	}
	// A runs at a1 (coordination agent). B eligible {a2,a3}: 2 packets.
	// C eligible {a4,a5}: 2 packets. C terminal: 1 StepCompleted to a1.
	s := model.NewSchema("Msg").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a2", "a3")).
		Step("C", "pc", model.WithAgents("a4", "a5")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg, "a1", "a2", "a3", "a4", "a5")
	runToStatus(t, sys, "Msg", nil, wfdb.Committed)

	deadline := time.Now().Add(waitTimeout)
	for sys.Collector().Messages(metrics.Normal) < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sys.Collector().Messages(metrics.Normal); got != 5 {
		t.Errorf("normal messages = %d, want s·a + f = 2·2 + 1 = 5", got)
	}
	if got := sys.Collector().Messages(metrics.Coordination); got != 0 {
		t.Errorf("coordination messages = %d, want 0", got)
	}
}

func TestParallelBranchJoinDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, p := range []string{"pa", "pb", "pc", "pd"} {
		reg.Register(p, tracked(rec, p, nil))
	}
	s := model.NewSchema("Dia").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a2")).
		Step("C", "pc", model.WithAgents("a3")).
		Step("D", "pd", model.WithJoin(model.JoinAll), model.WithAgents("a2")).
		Arc("A", "B").Arc("A", "C").Arc("B", "D").Arc("C", "D").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Dia", nil, wfdb.Committed)
	if rec.count("pd") != 1 {
		t.Errorf("join executed %d times: %v", rec.count("pd"), rec.list())
	}
	if rec.index("pd") != 3 {
		t.Errorf("join must run last: %v", rec.list())
	}
}

func TestIfThenElseDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(7)}))
	reg.Register("ptop", tracked(rec, "top", nil))
	reg.Register("pbot", tracked(rec, "bot", nil))
	reg.Register("pj", tracked(rec, "join", nil))
	s := model.NewSchema("ITE").
		Step("A", "pa", model.WithOutputs("O1"), model.WithAgents("a1")).
		Step("T", "ptop", model.WithAgents("a2")).
		Step("B", "pbot", model.WithAgents("a3")).
		Step("J", "pj", model.WithJoin(model.JoinAny), model.WithAgents("a2")).
		CondArc("A", "T", "A.O1 > 0").
		CondArc("A", "B", "A.O1 <= 0").
		Arc("T", "J").Arc("B", "J").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "ITE", nil, wfdb.Committed)
	if rec.count("top") != 1 || rec.count("bot") != 0 {
		t.Errorf("branch execution = %v", rec.list())
	}
}

func TestLoopDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	var mu sync.Mutex
	counter := 0.0
	reg.Register("pinc", func(*model.ProgramContext) (map[string]expr.Value, error) {
		mu.Lock()
		counter++
		v := counter
		mu.Unlock()
		rec.add("inc")
		return map[string]expr.Value{"O1": expr.Num(v)}, nil
	})
	reg.Register("pend", tracked(rec, "end", nil))
	s := model.NewSchema("Loop").
		Step("I", "pinc", model.WithOutputs("O1"), model.WithAgents("a1")).
		Step("E", "pend", model.WithInputs("I.O1"), model.WithAgents("a2")).
		Arc("I", "E").
		LoopArc("I", "I", "I.O1 < 3").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id := runToStatus(t, sys, "Loop", nil, wfdb.Committed)
	if rec.count("inc") != 3 {
		t.Errorf("loop body executed %d times, want 3", rec.count("inc"))
	}
	snap, _ := sys.Snapshot("Loop", id)
	if !snap.Data["I.O1"].Equal(expr.Num(3)) {
		t.Errorf("final I.O1 = %v", snap.Data["I.O1"])
	}
}

// TestFigure3Distributed reproduces the paper's Figure 3 in distributed
// control: the failing agent invokes WorkflowRollback at the origin's agent,
// HaltThread probes quiesce the affected thread, and after the branch switch
// a CompensateThread undoes the abandoned branch.
func TestFigure3Distributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("p1", tracked(rec, "s1", nil))
	reg.Register("p2", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("s2")
		if ctx.Attempt <= 1 {
			return map[string]expr.Value{"O1": expr.Num(5)}, nil
		}
		return map[string]expr.Value{"O1": expr.Num(-1)}, nil
	})
	reg.Register("c2", tracked(rec, "c2", nil))
	reg.Register("p3", tracked(rec, "s3", nil))
	reg.Register("c3", tracked(rec, "c3", nil))
	reg.Register("p4", model.FailNTimes(1, tracked(rec, "s4", nil)))
	reg.Register("p6", tracked(rec, "s6", nil))
	reg.Register("p5", tracked(rec, "s5", nil))
	s := model.NewSchema("Fig3", "I1").
		Step("S1", "p1", model.WithAgents("a1")).
		Step("S2", "p2", model.WithOutputs("O1"), model.WithCompensation("c2"),
			model.WithReexecCond("true"), model.WithAgents("a2")).
		Step("S3", "p3", model.WithCompensation("c3"), model.WithAgents("a3")).
		Step("S4", "p4", model.WithAgents("a1")).
		Step("S6", "p6", model.WithAgents("a3")).
		Step("S5", "p5", model.WithJoin(model.JoinAny), model.WithAgents("a2")).
		Seq("S1", "S2").
		CondArc("S2", "S3", "S2.O1 > 0").
		CondArc("S2", "S6", "S2.O1 <= 0").
		Arc("S3", "S4").Arc("S4", "S5").Arc("S6", "S5").
		OnFailure("S4", "S2", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Fig3", nil, wfdb.Committed)

	if rec.count("s2") != 2 || rec.count("c2") != 1 {
		t.Errorf("S2 exec/comp = %d/%d, want 2/1: %v", rec.count("s2"), rec.count("c2"), rec.list())
	}
	if rec.count("c3") != 1 {
		t.Errorf("abandoned S3 compensated %d times, want 1: %v", rec.count("c3"), rec.list())
	}
	if rec.count("s6") != 1 || rec.count("s5") != 1 {
		t.Errorf("bottom branch not taken: %v", rec.list())
	}
	if sys.Collector().Messages(metrics.Failure) == 0 {
		t.Error("no failure-handling messages counted")
	}
}

func TestOCRReuseDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(7)}))
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", model.FailNTimes(1, tracked(rec, "b", nil)))
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("Reuse").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca"), model.WithAgents("a1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithAgents("a2")).
		Step("C", "pc", model.WithAgents("a3")).
		Seq("A", "B", "C").
		OnFailure("B", "A", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Reuse", nil, wfdb.Committed)

	if rec.count("a") != 1 || rec.count("ca") != 0 {
		t.Errorf("A should be reused without compensation: %v", rec.list())
	}
	if rec.count("c") != 1 {
		t.Errorf("C executed %d times: %v", rec.count("c"), rec.list())
	}
}

// TestCompensateSetChainDistributed drives the CompensateSet WI chain across
// three agents in reverse execution order.
func TestCompensateSetChainDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, n := range []string{"pa", "pb", "pc"} {
		n := n
		reg.Register(n, func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
			rec.add(n)
			return map[string]expr.Value{"O1": expr.Num(float64(ctx.Attempt))}, nil
		})
	}
	for _, n := range []string{"ca", "cb", "cc"} {
		reg.Register(n, tracked(rec, n, nil))
	}
	reg.Register("pd", model.FailNTimes(1, tracked(rec, "pd", nil)))
	s := model.NewSchema("CSet").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca"),
			model.WithReexecCond("true"), model.WithAgents("a1")).
		Step("B", "pb", model.WithOutputs("O1"), model.WithCompensation("cb"),
			model.WithReexecCond("true"), model.WithAgents("a2")).
		Step("C", "pc", model.WithOutputs("O1"), model.WithCompensation("cc"),
			model.WithReexecCond("true"), model.WithAgents("a3")).
		Step("D", "pd", model.WithAgents("a1")).
		Seq("A", "B", "C", "D").
		CompSet("A", "B", "C").
		OnFailure("D", "A", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "CSet", nil, wfdb.Committed)

	ic, ib, ia := rec.index("cc"), rec.index("cb"), rec.index("ca")
	if ic < 0 || ib < 0 || ia < 0 || !(ic < ib && ib < ia) {
		t.Errorf("compensation order wrong: %v", rec.list())
	}
	for _, n := range []string{"pa", "pb", "pc"} {
		if rec.count(n) != 2 {
			t.Errorf("%s executed %d times, want 2: %v", n, rec.count(n), rec.list())
		}
	}
}

func TestUserAbortDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", tracked(rec, "b", nil))
	reg.Register("pc", func(*model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("c")
		<-gate
		return nil, nil
	})
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("cb", tracked(rec, "cb", nil))
	s := model.NewSchema("Ab").
		Step("A", "pa", model.WithCompensation("ca"), model.WithAgents("a1")).
		Step("B", "pb", model.WithCompensation("cb"), model.WithAgents("a2")).
		Step("C", "pc", model.WithAgents("a3")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id, err := sys.Start("Ab", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "c")
	if err := sys.Abort("Ab", id); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Wait("Ab", id, waitTimeout)
	close(gate)
	if err != nil || st != wfdb.Aborted {
		t.Fatalf("abort = (%v, %v)", st, err)
	}
	ib, ia := rec.index("cb"), rec.index("ca")
	if ib < 0 || ia < 0 || ib > ia {
		t.Errorf("compensations out of order: %v", rec.list())
	}
	if sys.Collector().Messages(metrics.Abort) == 0 {
		t.Error("no abort messages counted")
	}
	if err := sys.Abort("Ab", id); err == nil {
		t.Error("second abort should fail")
	}
}

func TestInputChangeDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("pa", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("a")
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"O1": expr.Num(v * 2)}, nil
	})
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", func(*model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("b")
		gateOnce.Do(func() { <-gate })
		return nil, nil
	})
	s := model.NewSchema("IC", "I1").
		Step("A", "pa", model.WithInputs("WF.I1"), model.WithOutputs("O1"),
			model.WithCompensation("ca"), model.WithAgents("a1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id, err := sys.Start("IC", map[string]expr.Value{"I1": expr.Num(10)})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "b")
	if err := sys.ChangeInputs("IC", id, map[string]expr.Value{"I1": expr.Num(20)}); err != nil {
		t.Fatal(err)
	}
	// Let the rollback land at a1 before releasing B.
	deadline := time.Now().Add(waitTimeout)
	for rec.count("a") < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	st, err := sys.Wait("IC", id, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("wait = (%v, %v)", st, err)
	}
	snap, _ := sys.Snapshot("IC", id)
	if !snap.Data["A.O1"].Equal(expr.Num(40)) {
		t.Errorf("A.O1 = %v, want 40", snap.Data["A.O1"])
	}
	if rec.count("a") != 2 || rec.count("ca") != 1 {
		t.Errorf("a=%d ca=%d, want 2/1: %v", rec.count("a"), rec.count("ca"), rec.list())
	}
	if sys.Collector().Messages(metrics.InputChange) == 0 {
		t.Error("no input-change messages counted")
	}
}

func TestRelativeOrderDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	reg.Register("pa1", tracked(rec, "a1", nil))
	reg.Register("pb1", tracked(rec, "b1", nil))
	reg.Register("pa2", tracked(rec, "a2", nil))
	reg.Register("pb2", func(*model.ProgramContext) (map[string]expr.Value, error) {
		<-gate
		rec.add("b2")
		return nil, nil
	})
	wf1 := model.NewSchema("O1").
		Step("A1", "pa1", model.WithAgents("a2")).
		Step("B1", "pb1", model.WithAgents("a2")).
		Seq("A1", "B1").MustBuild()
	wf2 := model.NewSchema("O2").
		Step("A2", "pa2", model.WithAgents("a3")).
		Step("B2", "pb2", model.WithAgents("a3")).
		Seq("A2", "B2").MustBuild()
	lib := lib1(wf1, wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "O1", Step: "A1"}, B: model.StepRef{Workflow: "O2", Step: "A2"}},
			{A: model.StepRef{Workflow: "O1", Step: "B1"}, B: model.StepRef{Workflow: "O2", Step: "B2"}},
		},
	})
	// a1 is the home agent (sorted first) and runs no steps.
	sys := newSystem(t, lib, reg)

	id2, err := sys.Start("O2", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "a2")
	id1, err := sys.Start("O1", nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if rec.count("b1") != 0 {
		t.Fatalf("lagging B1 ran before leading B2: %v", rec.list())
	}
	close(gate)
	if st, err := sys.Wait("O2", id2, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O2 = (%v, %v)", st, err)
	}
	if st, err := sys.Wait("O1", id1, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O1 = (%v, %v)", st, err)
	}
	if rec.index("b2") > rec.index("b1") {
		t.Errorf("relative order violated: %v", rec.list())
	}
	// Distributed coordination costs physical messages (Table 6 vs 4).
	if sys.Collector().Messages(metrics.Coordination) == 0 {
		t.Error("expected coordination messages in distributed control")
	}
}

func TestMutexDistributed(t *testing.T) {
	reg := model.NewRegistry()
	var mu sync.Mutex
	inCrit, maxCrit := 0, 0
	crit := func(*model.ProgramContext) (map[string]expr.Value, error) {
		mu.Lock()
		inCrit++
		if inCrit > maxCrit {
			maxCrit = inCrit
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		inCrit--
		mu.Unlock()
		return nil, nil
	}
	reg.Register("px", crit)
	reg.Register("py", crit)
	a := model.NewSchema("MA").Step("X", "px", model.WithAgents("a2")).MustBuild()
	b := model.NewSchema("MB").Step("Y", "py", model.WithAgents("a3")).MustBuild()
	lib := lib1(a, b)
	lib.AddCoord(model.CoordSpec{
		Kind: model.Mutex,
		Name: "res",
		MutexSteps: []model.StepRef{
			{Workflow: "MA", Step: "X"},
			{Workflow: "MB", Step: "Y"},
		},
	})
	sys := newSystem(t, lib, reg)

	type ref struct {
		wf string
		id int
	}
	var refs []ref
	for i := 0; i < 3; i++ {
		ida, err := sys.Start("MA", nil)
		if err != nil {
			t.Fatal(err)
		}
		idb, err := sys.Start("MB", nil)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref{"MA", ida}, ref{"MB", idb})
	}
	for _, r := range refs {
		if st, err := sys.Wait(r.wf, r.id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("%s.%d = (%v, %v)", r.wf, r.id, st, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if maxCrit != 1 {
		t.Errorf("max concurrent critical sections = %d, want 1", maxCrit)
	}
}

func TestRollbackDependencyDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("px1", tracked(rec, "x1", nil))
	reg.Register("px2", model.FailNTimes(1, tracked(rec, "x2", nil)))
	reg.Register("py1", tracked(rec, "y1", nil))
	reg.Register("cy1", tracked(rec, "cy1", nil))
	reg.Register("py2", func(*model.ProgramContext) (map[string]expr.Value, error) {
		gateOnce.Do(func() { <-gate })
		rec.add("y2")
		return nil, nil
	})
	x := model.NewSchema("X").
		Step("X1", "px1", model.WithAgents("a2")).
		Step("X2", "px2", model.WithAgents("a2")).
		Seq("X1", "X2").
		OnFailure("X2", "X1", 3).
		MustBuild()
	y := model.NewSchema("Y").
		Step("Y1", "py1", model.WithCompensation("cy1"), model.WithReexecCond("true"), model.WithAgents("a3")).
		Step("Y2", "py2", model.WithAgents("a4")).
		Seq("Y1", "Y2").
		MustBuild()
	lib := lib1(x, y)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "X", Step: "X1"},
		Target:  model.StepRef{Workflow: "Y", Step: "Y1"},
	})
	sys := newSystem(t, lib, reg, "a1", "a2", "a3", "a4")

	idY, err := sys.Start("Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "y1")
	idX, err := sys.Start("X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := sys.Wait("X", idX, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("X = (%v, %v)", st, err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("cy1") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if st, err := sys.Wait("Y", idY, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("Y = (%v, %v)", st, err)
	}
	if rec.count("cy1") != 1 || rec.count("y1") != 2 {
		t.Errorf("dependent rollback not applied: cy1=%d y1=%d: %v",
			rec.count("cy1"), rec.count("y1"), rec.list())
	}
}

func TestNestedDistributed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pp1", tracked(rec, "p1", map[string]expr.Value{"O1": expr.Num(11)}))
	reg.Register("pp3", tracked(rec, "p3", nil))
	reg.Register("pc1", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("c1")
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"R": expr.Num(v + 1)}, nil
	})
	child := model.NewSchema("Child", "I1").
		Step("C1", "pc1", model.WithInputs("WF.I1"), model.WithOutputs("R"), model.WithAgents("a3")).
		MustBuild()
	parent := model.NewSchema("Parent", "I1").
		Step("P1", "pp1", model.WithOutputs("O1"), model.WithAgents("a1")).
		NestedStep("N", "Child", model.WithInputs("P1.O1"), model.WithOutputs("R"), model.WithAgents("a2")).
		Step("P3", "pp3", model.WithInputs("N.R"), model.WithAgents("a1")).
		Seq("P1", "N", "P3").
		MustBuild()
	sys := newSystem(t, lib1(parent, child), reg)
	id := runToStatus(t, sys, "Parent", nil, wfdb.Committed)
	snap, _ := sys.Snapshot("Parent", id)
	if !snap.Data["N.R"].Equal(expr.Num(12)) {
		t.Errorf("nested output N.R = %v, want 12", snap.Data["N.R"])
	}
	if rec.count("c1") != 1 || rec.count("p3") != 1 {
		t.Errorf("executions = %v", rec.list())
	}
}

func TestPurgeOnCommit(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram())
	s := model.NewSchema("P").
		Step("A", "p", model.WithAgents("a1")).
		Step("B", "p", model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	sys, err := NewSystem(SystemConfig{
		Library:       lib1(s),
		Programs:      reg,
		Agents:        []string{"a1", "a2"},
		PurgeOnCommit: true,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	id, st, err := sys.Run("P", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%v, %v)", st, err)
	}
	// The non-coordination agent purges its replica.
	deadline := time.Now().Add(waitTimeout)
	for sys.Agent("a2").HasReplica("P", id) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sys.Agent("a2").HasReplica("P", id) {
		t.Error("replica not purged at a2")
	}
}

// TestSuccessorAgentFailure crashes one eligible agent: the alive-aware
// election routes the step to the surviving eligible agent.
func TestSuccessorAgentFailure(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", tracked(rec, "b", nil))
	s := model.NewSchema("SF").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a2", "a3")).
		Seq("A", "B").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)

	// Find which agent would be elected for B and crash it up front.
	elected := ""
	for _, cand := range []string{"a2", "a3"} {
		if sysElect(sys, "SF", 1, "B", []string{"a2", "a3"}, nil) == cand {
			elected = cand
		}
	}
	if elected == "" {
		t.Fatal("no election result")
	}
	sys.Network().Crash(elected)
	runToStatus(t, sys, "SF", nil, wfdb.Committed)
	if rec.count("b") != 1 {
		t.Errorf("B executed %d times: %v", rec.count("b"), rec.list())
	}
}

// sysElect mirrors the agents' deterministic election for tests.
func sysElect(sys *System, wf string, id int, step model.StepID, elig []string, alive func(string) bool) string {
	if alive == nil {
		alive = sys.Network().Alive
	}
	return electForTest(elig, wf, id, step, alive)
}

// TestPredecessorAgentFailureQueryReexecutes covers §5.2: a pending rule
// waiting on a single step.done event past the timeout polls StepStatus; all
// "unknown" plus a query step means re-execution at an available agent.
func TestPredecessorAgentFailureQueryReexecutes(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb1", tracked(rec, "b1", nil))
	reg.Register("pb2", tracked(rec, "b2", nil))
	reg.Register("pj", tracked(rec, "j", nil))
	// Join J at a4 waits for B1 (a2) and B2 (a3 or a5). Crash B2's elected
	// agent before starting, so its packet is stuck in its queue; J's agent
	// polls and re-executes the query step B2 at the survivor.
	s := model.NewSchema("PF").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B1", "pb1", model.WithAgents("a2")).
		Step("B2", "pb2", model.WithAgents("a3", "a5")).
		Step("J", "pj", model.WithJoin(model.JoinAll), model.WithAgents("a4")).
		Arc("A", "B1").Arc("A", "B2").
		Arc("B1", "J").Arc("B2", "J").
		MustBuild()
	sys, err := NewSystem(SystemConfig{
		Library:            lib1(s),
		Programs:           reg,
		Agents:             []string{"a1", "a2", "a3", "a4", "a5"},
		StatusPollInterval: 20 * time.Millisecond,
		StatusPollAge:      40 * time.Millisecond,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	elected := electForTest([]string{"a3", "a5"}, "PF", 1, "B2", sys.Network().Alive)
	sys.Network().Crash(elected)
	// Election is alive-aware, so with the elected agent down the survivor
	// would normally take over immediately; to exercise the StepStatus path
	// we crash AFTER A forwards, which requires the crash to be visible only
	// to the poller. Instead, verify the end-to-end outcome: the workflow
	// commits despite the dead agent.
	id, st, err := sys.Run("PF", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%d, %v, %v)", id, st, err)
	}
	if rec.count("b2") != 1 {
		t.Errorf("B2 executed %d times: %v", rec.count("b2"), rec.list())
	}
}

func TestPacketRendersLikeFigure7(t *testing.T) {
	p := &Packet{
		Workflow:   "WF2",
		Instance:   4,
		TargetStep: "S3",
		Data: map[string]expr.Value{
			"WF.I1": expr.Num(90),
			"WF.I2": expr.Str("Blower"),
			"S1.O1": expr.Num(20),
			"S1.O2": expr.Str("Gasket"),
			"S2.O1": expr.Num(45),
			"S2.O2": expr.Num(400),
		},
		Events:  []string{"WF.start", "S1.done", "S2.done"},
		Leading: []string{"WF3.15", "WF4.13"},
		Lagging: []string{"WF5.12"},
	}
	out := p.String()
	for _, want := range []string{
		"Workflow Name: WF2",
		"Instance Number: 4",
		"Action: Execute S3",
		"WF.I2 = \"Blower\"",
		"S2.O2 = 400",
		"Events: WF.start S1.done S2.done",
		"R.O. Leading: WF3.15 WF4.13",
		"R.O. Lagging: WF5.12",
	} {
		if !containsLine(out, want) {
			t.Errorf("packet rendering missing %q:\n%s", want, out)
		}
	}
	// Clone isolation.
	c := p.Clone()
	c.Data["WF.I1"] = expr.Num(0)
	c.Events[0] = "mutated"
	if !p.Data["WF.I1"].Equal(expr.Num(90)) || p.Events[0] != "WF.start" {
		t.Error("Clone shares state")
	}
}

func containsLine(s, sub string) bool {
	for _, line := range splitLines(s) {
		if trim(line) == sub {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func TestManyInstancesDistributed(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram("O1"))
	s := model.NewSchema("Many").
		Step("A", "p", model.WithOutputs("O1"), model.WithAgents("a1", "a2", "a3")).
		Step("B", "p", model.WithAgents("a1", "a2", "a3")).
		Step("C", "p", model.WithAgents("a1", "a2", "a3")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	const n = 40
	ids := make([]int, n)
	for i := range ids {
		id, err := sys.Start("Many", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if st, err := sys.Wait("Many", id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("instance %d = (%v, %v)", id, st, err)
		}
	}
	// Load spreads across agents (the paper's headline scalability claim).
	loaded := 0
	for _, name := range sys.AgentNames() {
		if sys.Collector().NodeLoad(name, metrics.Normal) > 0 {
			loaded++
		}
	}
	if loaded != 3 {
		t.Errorf("agents carrying load = %d, want 3", loaded)
	}
}

// TestAllEligibleAgentsDownWaitsForRecovery covers §5.2's waiting arm: when
// every agent eligible for a step is unavailable, the workflow neither
// aborts nor re-routes — the packets queue (persistent messages) and the
// step executes when an agent recovers.
func TestAllEligibleAgentsDownWaitsForRecovery(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("b")
		return nil, nil
	})
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("DownB").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a3", "a5"), model.WithUpdate()).
		Step("C", "pc", model.WithAgents("a4")).
		Seq("A", "B", "C").
		MustBuild()
	sys, err := NewSystem(SystemConfig{
		Library:            lib1(s),
		Programs:           reg,
		Agents:             []string{"a1", "a3", "a4", "a5"},
		StatusPollInterval: 20 * time.Millisecond,
		StatusPollAge:      40 * time.Millisecond,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sys.Network().Crash("a3")
	sys.Network().Crash("a5")
	id, err := sys.Start("DownB", nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if rec.count("b") != 0 {
		t.Fatalf("B ran with all eligible agents down: %v", rec.list())
	}
	if st, ok := sys.Status("DownB", id); !ok || st != wfdb.Running {
		t.Fatalf("instance should still be running, got (%v, %v)", st, ok)
	}
	sys.Network().Recover("a3")
	sys.Network().Recover("a5")
	if st, err := sys.Wait("DownB", id, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("after recovery = (%v, %v)", st, err)
	}
	if rec.count("b") != 1 {
		t.Errorf("B executed %d times: %v", rec.count("b"), rec.list())
	}
}

// TestNestedChildFailureFailsParentStep covers the nested-workflow failure
// path: a child workflow that aborts makes the parent's nested step fail,
// which drives the parent's own failure-handling policy.
func TestNestedChildFailureFailsParentStep(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pp1", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("p1")
		return map[string]expr.Value{"O1": expr.Num(float64(ctx.Attempt))}, nil
	})
	reg.Register("cp1", tracked(rec, "cp1", nil))
	// The child's only step always fails, so the child aborts every time.
	reg.Register("pc1", model.FailNTimes(100, tracked(rec, "c1", nil)))
	child := model.NewSchema("Child", "I1").
		Step("C1", "pc1", model.WithAgents("a3")).
		MustBuild()
	parent := model.NewSchema("Parent", "I1").
		Step("P1", "pp1", model.WithOutputs("O1"), model.WithCompensation("cp1"),
			model.WithAgents("a1")).
		NestedStep("N", "Child", model.WithInputs("P1.O1"), model.WithAgents("a2")).
		Seq("P1", "N").
		OnFailure("N", "P1", 2).
		MustBuild()
	sys := newSystem(t, lib1(parent, child), reg)
	id, st, err := sys.Run("Parent", nil, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// The parent retries per its policy, then aborts once attempts exhaust.
	if st != wfdb.Aborted {
		t.Fatalf("parent = %v, want aborted (child always aborts)", st)
	}
	if rec.count("c1") != 0 {
		t.Errorf("child step should never have succeeded: %v", rec.list())
	}
	if rec.count("p1") < 1 {
		t.Errorf("parent first step never ran: %v", rec.list())
	}
	// Parent abort compensates P1.
	if rec.count("cp1") == 0 {
		t.Errorf("parent abort did not compensate P1: %v", rec.list())
	}
	if sum, ok := sys.Status("Parent", id); !ok || sum != wfdb.Aborted {
		t.Errorf("status = (%v, %v)", sum, ok)
	}
}

// TestAGDBPersistence gives every agent a database: replicas are persisted
// as they evolve and the coordination agent archives the committed instance
// with a summary — the paper's AGDB role.
func TestAGDBPersistence(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram("O1"))
	s := model.NewSchema("Persist").
		Step("A", "p", model.WithOutputs("O1"), model.WithAgents("a1")).
		Step("B", "p", model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	dbs := []*wfdb.DB{wfdb.NewMemory(), wfdb.NewMemory()}
	sys, err := NewSystem(SystemConfig{
		Library:  lib1(s),
		Programs: reg,
		Agents:   []string{"a1", "a2"},
		AGDBs:    dbs,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	id, st, err := sys.Run("Persist", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%v, %v)", st, err)
	}
	// a1 is the coordination agent: summary + archive live in its AGDB.
	if sum, ok, _ := dbs[0].LoadSummary("Persist", id); !ok || sum != wfdb.Committed {
		t.Errorf("coordination AGDB summary = (%v, %v)", sum, ok)
	}
	if arch, ok, _ := dbs[0].LoadArchived("Persist", id); !ok || arch.Status != wfdb.Committed {
		t.Errorf("coordination AGDB archive = (%v, %v)", arch, ok)
	}
	// a2 persisted its replica of the instance.
	deadline := time.Now().Add(waitTimeout)
	for len(dbs[1].InstanceKeys()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := dbs[1].InstanceKeys(); len(got) == 0 {
		t.Error("execution agent AGDB is empty")
	}
	// Mismatched AGDB count is rejected.
	if _, err := NewSystem(SystemConfig{
		Library:  lib1(s),
		Programs: reg,
		Agents:   []string{"x1", "x2"},
		AGDBs:    []*wfdb.DB{wfdb.NewMemory()},
	}); err == nil {
		t.Error("mismatched AGDBs length should fail")
	}
}

// TestAPIErrorPaths exercises the front-facing error cases of the
// distributed system facade.
func TestAPIErrorPaths(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram())
	s := model.NewSchema("W").
		Step("A", "p", model.WithAgents("a1")).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)

	if _, err := sys.Start("Ghost", nil); err == nil {
		t.Error("start of unknown class should fail")
	}
	if err := sys.Abort("W", 99); err == nil {
		t.Error("abort of unknown instance should fail")
	}
	if err := sys.ChangeInputs("W", 99, nil); err == nil {
		t.Error("input change of unknown instance should fail")
	}
	if _, ok := sys.Status("W", 99); ok {
		t.Error("status of unknown instance should be not-ok")
	}
	if _, ok := sys.SnapshotAt("ghost-agent", "W", 1); ok {
		t.Error("snapshot at unknown agent should be not-ok")
	}

	id := runToStatus(t, sys, "W", nil, wfdb.Committed)
	// Post-commit user operations are rejected.
	if err := sys.Abort("W", id); err == nil {
		t.Error("abort after commit should fail")
	}
	if err := sys.ChangeInputs("W", id, map[string]expr.Value{"I1": expr.Num(1)}); err == nil {
		t.Error("input change after commit should fail")
	}
	// Duplicate start of the same instance ID is rejected at the agent.
	ag := sys.Agent("a1")
	if err := ag.StartInstance("W", id, nil); err == nil {
		t.Error("duplicate StartInstance should fail")
	}
	if err := ag.StartInstance("Ghost", 1, nil); err == nil {
		t.Error("StartInstance of unknown class should fail")
	}
}

// TestChangeInputsNoOpAndUnconsumed covers input changes that alter nothing
// and changes to inputs no step consumes.
func TestChangeInputsNoOpAndUnconsumed(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var once sync.Once
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", func(*model.ProgramContext) (map[string]expr.Value, error) {
		once.Do(func() { <-gate })
		rec.add("b")
		return nil, nil
	})
	s := model.NewSchema("NC", "I1", "I2").
		Step("A", "pa", model.WithInputs("WF.I1"), model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id, err := sys.Start("NC", map[string]expr.Value{"I1": expr.Num(1), "I2": expr.Num(2)})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "a")
	// Same value: no rollback.
	if err := sys.ChangeInputs("NC", id, map[string]expr.Value{"I1": expr.Num(1)}); err != nil {
		t.Fatal(err)
	}
	// I2 is consumed by no step: data updates, nothing re-executes.
	if err := sys.ChangeInputs("NC", id, map[string]expr.Value{"I2": expr.Num(9)}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if st, err := sys.Wait("NC", id, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("wait = (%v, %v)", st, err)
	}
	if rec.count("a") != 1 {
		t.Errorf("A re-executed despite no effective change: %v", rec.list())
	}
	snap, _ := sys.Snapshot("NC", id)
	if !snap.Data["WF.I2"].Equal(expr.Num(9)) {
		t.Errorf("unconsumed input not updated: %v", snap.Data["WF.I2"])
	}
}

// waitReplicasDrained blocks until no agent holds a live replica.
func waitReplicasDrained(t *testing.T, sys *System) {
	t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for {
		live := 0
		for _, name := range sys.AgentNames() {
			live += sys.Agent(name).ReplicaCount()
		}
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replicas still live", live)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRetirementDrainsAllReplicas(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(1)}))
	reg.Register("pb", tracked(rec, "b", map[string]expr.Value{"O1": expr.Num(2)}))
	s := model.NewSchema("Lin", "I1").
		Step("A", "pa", model.WithOutputs("O1"), model.WithAgents("a1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithOutputs("O1"), model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	sys, err := NewSystem(SystemConfig{
		Library:            lib1(s),
		Programs:           reg,
		Collector:          metrics.NewCollector(),
		Agents:             []string{"a1", "a2", "a3"},
		StatusPollInterval: 10 * time.Millisecond,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	id := runToStatus(t, sys, "Lin", map[string]expr.Value{"I1": expr.Num(1)}, wfdb.Committed)

	// The coordinator retires its replica at commit; the other agents drop
	// theirs on the purge broadcast or their next sweep. Either way the
	// fleet ends with zero resident replicas.
	waitReplicasDrained(t, sys)

	// The coordination agent's archive holds the full final state.
	snap, ok := sys.SnapshotAt("a1", "Lin", id)
	if !ok || snap.Status != wfdb.Committed {
		t.Fatalf("SnapshotAt coordinator = (%v, %v)", snap, ok)
	}
	if !snap.Data["B.O1"].Equal(expr.Num(2)) {
		t.Fatalf("archived data = %v", snap.Data)
	}
	if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
		t.Fatalf("Status = (%v, %v)", st, ok)
	}
	if st, err := sys.Wait("Lin", id, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("Wait after retirement = (%v, %v)", st, err)
	}
}

// TestZeroPollWakeupsWhenIdle pins the push-based completion contract: once
// every replica has retired, no StatusPollInterval-driven timer fires and no
// poll messages cross the network. WaitCtx completes purely by notification.
func TestZeroPollWakeupsWhenIdle(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", tracked(rec, "b", nil))
	s := model.NewSchema("ZP").
		Step("A", "pa", model.WithAgents("a1")).
		Step("B", "pb", model.WithAgents("a2")).
		Seq("A", "B").
		MustBuild()
	const interval = 20 * time.Millisecond
	sys, err := NewSystem(SystemConfig{
		Library:            lib1(s),
		Programs:           reg,
		Collector:          metrics.NewCollector(),
		Agents:             []string{"a1", "a2"},
		StatusPollInterval: interval,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	runToStatus(t, sys, "ZP", nil, wfdb.Committed)
	waitReplicasDrained(t, sys)
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	defer cancel()
	if err := sys.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	wakeups := func() int64 {
		var n int64
		for _, name := range sys.AgentNames() {
			n += sys.Agent(name).SweepWakeups()
		}
		return n
	}
	msgs0, wk0 := sys.Collector().TotalMessages(), wakeups()
	// Several poll intervals pass with the fleet idle: a standing
	// StatusPollInterval ticker would fire here; the on-demand timer, armed
	// only while replicas exist, must not.
	time.Sleep(5 * interval)
	if msgs1 := sys.Collector().TotalMessages(); msgs1 != msgs0 {
		t.Errorf("idle fleet sent %d poll-driven messages", msgs1-msgs0)
	}
	if wk1 := wakeups(); wk1 != wk0 {
		t.Errorf("idle fleet took %d sweep wakeups", wk1-wk0)
	}
}

// TestHaltProbeOrderDeterministic guards the sorted iteration in
// propagateHalts: when a failure rolls a workflow back, the agent that drove
// several parallel threads must emit its HaltThread probes in step order.
// Map-order iteration over the instance's step table would shuffle the probe
// sequence run to run, making protocol traces (and replay comparisons)
// nondeterministic. A on a1 fans out to B1..B4 (also a1), whose successors
// C1..C4 live on a2; when F fails, a1's rollback handler probes the C steps
// and the trace must show them in sorted order every round.
func TestHaltProbeOrderDeterministic(t *testing.T) {
	for round := 0; round < 3; round++ {
		rec := &recorder{}
		reg := model.NewRegistry()
		reg.Register("pa", tracked(rec, "a", nil))
		reg.Register("pb", tracked(rec, "b", nil))
		reg.Register("pc", tracked(rec, "c", nil))
		reg.Register("pf", model.FailNTimes(1, tracked(rec, "f", nil)))
		b := model.NewSchema("HaltOrder", "I1").
			Step("A", "pa", model.WithAgents("a1")).
			Step("F", "pf", model.WithAgents("a1"))
		for _, i := range []string{"1", "2", "3", "4"} {
			bi, ci := model.StepID("B"+i), model.StepID("C"+i)
			b = b.Step(bi, "pb", model.WithAgents("a1")).
				Step(ci, "pc", model.WithAgents("a2")).
				Arc("A", bi).Arc(bi, ci).Arc(ci, "F")
		}
		s := b.OnFailure("F", "A", 3).MustBuild()
		sys := newSystem(t, lib1(s), reg, "a1", "a2")

		var mu sync.Mutex
		var probes []string
		sys.Network().Trace(func(m transport.Message) {
			ht, ok := m.Payload.(haltThread)
			if !ok || len(ht.Step) != 2 || ht.Step[0] != 'C' {
				return
			}
			mu.Lock()
			probes = append(probes, string(ht.Step))
			mu.Unlock()
		})
		runToStatus(t, sys, "HaltOrder", nil, wfdb.Committed)
		sys.Network().Trace(nil)

		mu.Lock()
		got := append([]string(nil), probes...)
		mu.Unlock()
		// The handler may probe more than once (the initial rollback apply
		// and a re-propagation at a later epoch); every burst must come out
		// in step order.
		want := []string{"C1", "C2", "C3", "C4"}
		if len(got) == 0 || len(got)%len(want) != 0 {
			t.Fatalf("round %d: saw %d C-step halt probes, want a multiple of %d: %v", round, len(got), len(want), got)
		}
		for i, p := range got {
			if p != want[i%len(want)] {
				t.Fatalf("round %d: halt probes out of step order: %v", round, got)
			}
		}
	}
}
