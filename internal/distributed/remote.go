package distributed

import (
	"fmt"

	"crew/internal/cerrors"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/transport"
)

// This file is the wire face of the distributed architecture: the helpers a
// front end needs when the agents it drives live in other OS processes and
// every workflow interface must travel as a transport message instead of a
// direct Agent method call. In-process deployments (System) never use it.

// CoordinatorFor computes the coordination agent a front end must address for
// an instance: the deterministic election among the (currently alive)
// eligible agents of the schema's first start step — the same election every
// agent performs locally, so front end and agents agree without exchanging a
// message. alive may be nil (all agents considered up).
func CoordinatorFor(lib *model.Library, agents []string, workflow string, id int, alive func(string) bool) (string, error) {
	schema := lib.Schema(workflow)
	if schema == nil {
		return "", fmt.Errorf("distributed: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	starts := schema.StartSteps()
	if len(starts) == 0 {
		return "", fmt.Errorf("distributed: workflow %q has no start step", workflow)
	}
	elig := schema.Steps[starts[0]].EligibleAgents
	if len(elig) == 0 {
		elig = agents
	}
	if alive == nil {
		alive = func(string) bool { return true }
	}
	name := nav.ElectAgent(elig, workflow, id, starts[0], alive)
	if name == "" {
		return "", fmt.Errorf("distributed: no agent available to coordinate %s.%d", workflow, id)
	}
	return name, nil
}

// StartMessage builds the WorkflowStart WI as a wire message to the
// coordination agent. replyTo, when non-empty, subscribes that node to the
// instance's WorkflowDone notification.
func StartMessage(from, to, workflow string, id int, inputs map[string]expr.Value, replyTo string) transport.Message {
	return transport.Message{
		From: from, To: to, Mechanism: metrics.Normal, Kind: KindWorkflowStart,
		Payload: workflowStart{Workflow: workflow, Instance: id, Inputs: inputs, ReplyTo: replyTo},
	}
}

// AbortMessage builds the WorkflowAbort WI as a wire message.
func AbortMessage(from, to, workflow string, id int) transport.Message {
	return transport.Message{
		From: from, To: to, Mechanism: metrics.Abort, Kind: KindWorkflowAbort,
		Payload: workflowAbort{Workflow: workflow, Instance: id},
	}
}

// ChangeInputsMessage builds the WorkflowChangeInputs WI as a wire message.
func ChangeInputsMessage(from, to, workflow string, id int, inputs map[string]expr.Value) transport.Message {
	return transport.Message{
		From: from, To: to, Mechanism: metrics.InputChange, Kind: KindWorkflowChangeInputs,
		Payload: workflowChangeInputs{Workflow: workflow, Instance: id, Inputs: inputs},
	}
}
