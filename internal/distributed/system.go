package distributed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// SystemConfig parameterizes a distributed deployment: z agents, no engine.
type SystemConfig struct {
	Library   *model.Library
	Programs  *model.Registry
	Collector *metrics.Collector
	// Agents lists the agent node names (the paper's z); empty derives them
	// from the library, defaulting to three agents.
	Agents []string
	// AGDBs optionally gives each agent a database (len must match Agents).
	AGDBs              []*wfdb.DB
	DisableOCR         bool
	ExplicitElection   bool
	PurgeOnCommit      bool
	StatusPollInterval time.Duration
	StatusPollAge      time.Duration
	Logf               func(format string, args ...any)
}

// System is a running distributed WFMS deployment. Its methods play the role
// of the front-end database: they translate user requests into workflow
// interface invocations on coordination agents.
type System struct {
	net    *transport.Network
	agents map[string]*Agent
	names  []string
	lib    *model.Library
	col    *metrics.Collector

	mu     sync.Mutex
	nextID map[string]int
}

// NewSystem builds and starts a distributed deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("distributed: system needs a library and programs")
	}
	if err := cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	names := cfg.Agents
	if len(names) == 0 {
		names = cfg.Library.SortedAgents()
	}
	if len(names) == 0 {
		names = []string{"agent1", "agent2", "agent3"}
	}
	if cfg.AGDBs != nil && len(cfg.AGDBs) != len(names) {
		return nil, errors.New("distributed: AGDBs length must match Agents")
	}

	net := transport.New(cfg.Collector)
	sys := &System{
		net:    net,
		agents: make(map[string]*Agent, len(names)),
		names:  append([]string(nil), names...),
		lib:    cfg.Library,
		col:    cfg.Collector,
		nextID: make(map[string]int),
	}
	for i, name := range names {
		var db *wfdb.DB
		if cfg.AGDBs != nil {
			db = cfg.AGDBs[i]
		}
		ag, err := NewAgent(Config{
			Name:               name,
			Library:            cfg.Library,
			Agents:             names,
			Programs:           cfg.Programs,
			Collector:          cfg.Collector,
			AGDB:               db,
			DisableOCR:         cfg.DisableOCR,
			ExplicitElection:   cfg.ExplicitElection,
			PurgeOnCommit:      cfg.PurgeOnCommit,
			StatusPollInterval: cfg.StatusPollInterval,
			StatusPollAge:      cfg.StatusPollAge,
			Logf:               cfg.Logf,
		}, net)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("distributed: agent %s: %w", name, err)
		}
		sys.agents[name] = ag
	}
	return sys, nil
}

// Collector returns the metrics collector.
func (s *System) Collector() *metrics.Collector { return s.col }

// Network exposes the transport (tests crash/recover agents through it).
func (s *System) Network() *transport.Network { return s.net }

// Agent returns a deployed agent by name.
func (s *System) Agent(name string) *Agent { return s.agents[name] }

// AgentNames returns the deployment's agent names.
func (s *System) AgentNames() []string { return append([]string(nil), s.names...) }

// coordinationAgent computes the coordination agent of an instance: the
// elected executor of the schema's first start step.
func (s *System) coordinationAgent(workflow string, id int) (*Agent, error) {
	schema := s.lib.Schema(workflow)
	if schema == nil {
		return nil, fmt.Errorf("distributed: unknown workflow class %q", workflow)
	}
	starts := schema.StartSteps()
	if len(starts) == 0 {
		return nil, fmt.Errorf("distributed: workflow %q has no start step", workflow)
	}
	st := schema.Steps[starts[0]]
	elig := st.EligibleAgents
	if len(elig) == 0 {
		elig = s.names
	}
	name := nav.ElectAgent(elig, workflow, id, starts[0], s.net.Alive)
	if name == "" {
		return nil, fmt.Errorf("distributed: no agent available to coordinate %s.%d", workflow, id)
	}
	ag, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("distributed: elected unknown agent %q", name)
	}
	return ag, nil
}

// Start launches an instance via its coordination agent's WorkflowStart WI.
func (s *System) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	s.mu.Lock()
	s.nextID[workflow]++
	id := s.nextID[workflow]
	s.mu.Unlock()
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, err
	}
	if err := ag.StartInstance(workflow, id, inputs); err != nil {
		return 0, err
	}
	return id, nil
}

// StartSeq launches an instance under an externally assigned ID. Placement is
// a pure function of (workflow, id) — the elected coordination agent — so the
// global sequence number is unused; accepting it lets concurrent drivers
// start instances in any order without changing where work lands.
func (s *System) StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error {
	s.mu.Lock()
	if id > s.nextID[workflow] {
		s.nextID[workflow] = id
	}
	s.mu.Unlock()
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.StartInstance(workflow, id, inputs)
}

// Quiesce blocks until no message is queued, undelivered or still being
// processed anywhere in the deployment.
func (s *System) Quiesce(ctx context.Context) error { return s.net.Quiesce(ctx) }

// Run starts an instance and waits for its terminal status.
func (s *System) Run(workflow string, inputs map[string]expr.Value, timeout time.Duration) (int, wfdb.Status, error) {
	id, err := s.Start(workflow, inputs)
	if err != nil {
		return 0, 0, err
	}
	st, err := s.Wait(workflow, id, timeout)
	return id, st, err
}

// Wait blocks until the instance terminates (subscribing at the
// coordination agent).
func (s *System) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, err
	}
	select {
	case st := <-ag.WaitChan(workflow, id):
		return st, nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("distributed: timeout waiting for %s.%d", workflow, id)
	}
}

// Abort requests a user abort via the WorkflowAbort WI.
func (s *System) Abort(workflow string, id int) error {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestAbort(workflow, id)
}

// ChangeInputs applies user input changes via WorkflowChangeInputs.
func (s *System) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestChangeInputs(workflow, id, inputs)
}

// Status serves the WorkflowStatus WI.
func (s *System) Status(workflow string, id int) (wfdb.Status, bool) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, false
	}
	return ag.InstanceStatus(workflow, id)
}

// Snapshot returns the coordination agent's replica of the instance.
func (s *System) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// SnapshotAt returns a specific agent's replica of the instance.
func (s *System) SnapshotAt(agent, workflow string, id int) (*wfdb.Instance, bool) {
	ag, ok := s.agents[agent]
	if !ok {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// Close shuts the deployment down.
func (s *System) Close() {
	s.net.Close()
	for _, a := range s.agents {
		a.Stop()
	}
}
