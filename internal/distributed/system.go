package distributed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/cerrors"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// SystemConfig parameterizes a distributed deployment: z agents, no engine.
type SystemConfig struct {
	Library   *model.Library
	Programs  *model.Registry
	Collector *metrics.Collector
	// Agents lists the agent node names (the paper's z); empty derives them
	// from the library, defaulting to three agents.
	Agents []string
	// AGDBs optionally gives each agent a database (len must match Agents).
	AGDBs              []*wfdb.DB
	DisableOCR         bool
	ExplicitElection   bool
	PurgeOnCommit      bool
	StatusPollInterval time.Duration
	StatusPollAge      time.Duration
	Logf               func(format string, args ...any)
}

// System is a running distributed WFMS deployment. Its methods play the role
// of the front-end database: they translate user requests into workflow
// interface invocations on coordination agents.
type System struct {
	net    *transport.Network
	agents map[string]*Agent
	names  []string
	lib    *model.Library
	col    *metrics.Collector

	mu     sync.Mutex
	nextID map[string]int
	// coordName remembers the coordination agent elected when an instance
	// started. Later operations (Wait, Abort, Status, ...) must route to that
	// same agent: re-electing with a liveness filter while the coordinator is
	// crashed would silently address a different agent, which never learns
	// the instance's fate. A crashed coordinator is reachable for local
	// subscription, and its parked protocol traffic drains on recovery.
	coordName map[string]string

	closed atomic.Bool
}

// NewSystem builds and starts a distributed deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("distributed: system needs a library and programs")
	}
	if err := cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	names := cfg.Agents
	if len(names) == 0 {
		names = cfg.Library.SortedAgents()
	}
	if len(names) == 0 {
		names = []string{"agent1", "agent2", "agent3"}
	}
	if cfg.AGDBs != nil && len(cfg.AGDBs) != len(names) {
		return nil, errors.New("distributed: AGDBs length must match Agents")
	}

	net := transport.New(cfg.Collector)
	sys := &System{
		net:       net,
		agents:    make(map[string]*Agent, len(names)),
		names:     append([]string(nil), names...),
		lib:       cfg.Library,
		col:       cfg.Collector,
		nextID:    make(map[string]int),
		coordName: make(map[string]string),
	}
	for i, name := range names {
		var db *wfdb.DB
		if cfg.AGDBs != nil {
			db = cfg.AGDBs[i]
		}
		ag, err := NewAgent(Config{
			Name:               name,
			Library:            cfg.Library,
			Agents:             names,
			Programs:           cfg.Programs,
			Collector:          cfg.Collector,
			AGDB:               db,
			DisableOCR:         cfg.DisableOCR,
			ExplicitElection:   cfg.ExplicitElection,
			PurgeOnCommit:      cfg.PurgeOnCommit,
			StatusPollInterval: cfg.StatusPollInterval,
			StatusPollAge:      cfg.StatusPollAge,
			Logf:               cfg.Logf,
		}, net)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("distributed: agent %s: %w", name, err)
		}
		sys.agents[name] = ag
	}
	return sys, nil
}

// Collector returns the metrics collector.
func (s *System) Collector() *metrics.Collector { return s.col }

// Network exposes the transport (tests crash/recover agents through it).
func (s *System) Network() *transport.Network { return s.net }

// Agent returns a deployed agent by name.
func (s *System) Agent(name string) *Agent { return s.agents[name] }

// AgentNames returns the deployment's agent names.
func (s *System) AgentNames() []string { return append([]string(nil), s.names...) }

// coordinationAgent returns the coordination agent of an instance: the one
// remembered from its start, or (for instances this front end did not start)
// the elected executor of the schema's first start step.
func (s *System) coordinationAgent(workflow string, id int) (*Agent, error) {
	s.mu.Lock()
	name, known := s.coordName[wfdb.InstanceKeyOf(workflow, id)]
	s.mu.Unlock()
	if known {
		if ag, ok := s.agents[name]; ok {
			return ag, nil
		}
	}
	return s.electCoordinator(workflow, id)
}

// electCoordinator elects the coordination agent among the currently alive
// eligible agents and remembers the choice for the instance's lifetime.
func (s *System) electCoordinator(workflow string, id int) (*Agent, error) {
	schema := s.lib.Schema(workflow)
	if schema == nil {
		return nil, fmt.Errorf("distributed: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	starts := schema.StartSteps()
	if len(starts) == 0 {
		return nil, fmt.Errorf("distributed: workflow %q has no start step", workflow)
	}
	st := schema.Steps[starts[0]]
	elig := st.EligibleAgents
	if len(elig) == 0 {
		elig = s.names
	}
	name := nav.ElectAgent(elig, workflow, id, starts[0], s.net.Alive)
	if name == "" {
		return nil, fmt.Errorf("distributed: no agent available to coordinate %s.%d", workflow, id)
	}
	ag, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("distributed: elected unknown agent %q", name)
	}
	s.mu.Lock()
	s.coordName[wfdb.InstanceKeyOf(workflow, id)] = name
	s.mu.Unlock()
	return ag, nil
}

// admit performs the shared pre-flight checks of context-aware calls.
func (s *System) admit(ctx context.Context, workflow string) error {
	if s.closed.Load() {
		return fmt.Errorf("distributed: %w", cerrors.ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workflow != "" && s.lib.Schema(workflow) == nil {
		return fmt.Errorf("distributed: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	return nil
}

// Start launches an instance via its coordination agent's WorkflowStart WI.
func (s *System) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	return s.StartCtx(context.Background(), workflow, inputs)
}

// StartCtx launches an instance via its coordination agent's WorkflowStart
// WI. The context gates only the admission of the request; a started instance
// keeps running after ctx is cancelled.
func (s *System) StartCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, error) {
	if err := s.admit(ctx, workflow); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.nextID[workflow]++
	id := s.nextID[workflow]
	s.mu.Unlock()
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, err
	}
	if err := ag.StartInstance(workflow, id, inputs); err != nil {
		return 0, err
	}
	return id, nil
}

// StartSeq launches an instance under an externally assigned ID. Placement is
// a pure function of (workflow, id) — the elected coordination agent — so the
// global sequence number is unused; accepting it lets concurrent drivers
// start instances in any order without changing where work lands.
func (s *System) StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error {
	s.mu.Lock()
	if id > s.nextID[workflow] {
		s.nextID[workflow] = id
	}
	s.mu.Unlock()
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.StartInstance(workflow, id, inputs)
}

// Quiesce blocks until no message is queued, undelivered or still being
// processed anywhere in the deployment.
func (s *System) Quiesce(ctx context.Context) error { return s.net.Quiesce(ctx) }

// Run starts an instance and waits for its terminal status. It wraps RunCtx
// with a deadline context.
func (s *System) Run(workflow string, inputs map[string]expr.Value, timeout time.Duration) (int, wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.RunCtx(ctx, workflow, inputs)
}

// RunCtx starts an instance and waits for its terminal status under ctx.
func (s *System) RunCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, wfdb.Status, error) {
	id, err := s.StartCtx(ctx, workflow, inputs)
	if err != nil {
		return 0, 0, err
	}
	st, err := s.WaitCtx(ctx, workflow, id)
	return id, st, err
}

// Wait blocks until the instance terminates (subscribing at the coordination
// agent). It wraps WaitCtx with a deadline context; the deadline surfaces as
// cerrors.ErrTimeout.
func (s *System) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.WaitCtx(ctx, workflow, id)
}

// WaitCtx blocks until the instance terminates or ctx ends. A deadline expiry
// is reported as cerrors.ErrTimeout (errors.Is-matchable); a plain
// cancellation as ctx.Err(). An expired ctx wins even when the terminal
// status lands at the same instant, so the deadline contract is deterministic.
func (s *System) WaitCtx(ctx context.Context, workflow string, id int) (wfdb.Status, error) {
	if err := s.admit(ctx, ""); err != nil {
		return 0, err
	}
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, err
	}
	// Subscribing runs on the agent goroutine, which may be busy executing a
	// step program; do it asynchronously so ctx can interrupt the wait for
	// the subscription itself.
	sub := make(chan (<-chan wfdb.Status), 1)
	go func() { sub <- ag.WaitChan(workflow, id) }()
	var ch <-chan wfdb.Status
	select {
	case ch = <-sub:
	case <-ctx.Done():
		return 0, s.waitErr(ctx, workflow, id)
	}
	select {
	case st := <-ch:
		if ctx.Err() != nil {
			return 0, s.waitErr(ctx, workflow, id)
		}
		return st, nil
	case <-ctx.Done():
		return 0, s.waitErr(ctx, workflow, id)
	}
}

// waitErr translates a finished ctx into the Wait error contract.
func (s *System) waitErr(ctx context.Context, workflow string, id int) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("distributed: %w: %s.%d", cerrors.ErrTimeout, workflow, id)
	}
	return ctx.Err()
}

// Abort requests a user abort via the WorkflowAbort WI.
func (s *System) Abort(workflow string, id int) error {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestAbort(workflow, id)
}

// ChangeInputs applies user input changes via WorkflowChangeInputs.
func (s *System) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestChangeInputs(workflow, id, inputs)
}

// Status serves the WorkflowStatus WI.
func (s *System) Status(workflow string, id int) (wfdb.Status, bool) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, false
	}
	return ag.InstanceStatus(workflow, id)
}

// Snapshot returns the coordination agent's replica of the instance.
func (s *System) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// SnapshotAt returns a specific agent's replica of the instance.
func (s *System) SnapshotAt(agent, workflow string, id int) (*wfdb.Instance, bool) {
	ag, ok := s.agents[agent]
	if !ok {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// Close shuts the deployment down. Later context-aware calls fail with
// cerrors.ErrClosed.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.net.Close()
	for _, a := range s.agents {
		a.Stop()
	}
}

// HaltNode simulates a crash of a named agent. In the distributed
// architecture every agent replicates the coordination state of the
// instances it touches into its AGDB, so a crash only parks the agent's
// transport queue: undelivered messages wait, peers keep navigating, and the
// parked traffic drains on RestartNode — the paper's persistent-queue
// recovery contract.
func (s *System) HaltNode(name string) { s.net.Crash(name) }

// RestartNode recovers an agent halted by HaltNode, delivering the messages
// parked while it was down.
func (s *System) RestartNode(name string) { s.net.Recover(name) }
