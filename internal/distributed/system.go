package distributed

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crew/internal/cerrors"
	"crew/internal/expr"
	"crew/internal/itable"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// SystemConfig parameterizes a distributed deployment: z agents, no engine.
type SystemConfig struct {
	Library   *model.Library
	Programs  *model.Registry
	Collector *metrics.Collector
	// Agents lists the agent node names (the paper's z); empty derives them
	// from the library, defaulting to three agents.
	Agents []string
	// AGDBs optionally gives each agent a database (len must match Agents).
	AGDBs            []*wfdb.DB
	DisableOCR       bool
	ExplicitElection bool
	PurgeOnCommit    bool
	// StatusPollInterval and StatusPollAge pace the agents' on-demand
	// maintenance sweep.
	//
	// Deprecated: the standing status-poll timer is gone; completion is
	// push-based and the sweep timer is armed only while an agent holds live
	// replicas. See distributed.Config.
	StatusPollInterval time.Duration
	StatusPollAge      time.Duration
	// Wire selects the transport backend (nil = in-process channels).
	Wire transport.Wire
	Logf func(format string, args ...any)
}

// System is a running distributed WFMS deployment. Its methods play the role
// of the front-end database: they translate user requests into workflow
// interface invocations on coordination agents.
type System struct {
	net    *transport.Network
	agents map[string]*Agent
	names  []string
	lib    *model.Library
	col    *metrics.Collector

	// term is the deployment-wide terminal-status registry shared by every
	// agent: WaitCtx subscribes to it, user operations pre-check it, and
	// agents retire replicas of finished instances against it.
	term *itable.Terminal
	// nextID allocates per-workflow instance ids (workflow-level entries,
	// ID 0). Sharded: concurrent Start calls for different workflows — and
	// mostly for the same one — do not contend on a single system lock.
	nextID itable.Map[int]
	// coordName remembers the coordination agent elected when an instance
	// started. Later operations (Wait, Abort, Status, ...) must route to that
	// same agent: re-electing with a liveness filter while the coordinator is
	// crashed would silently address a different agent, which never learns
	// the instance's fate. A crashed coordinator is reachable for local
	// subscription, and its parked protocol traffic drains on recovery.
	// Entries are evicted when the instance retires.
	coordName itable.Map[string]

	closed atomic.Bool
}

// NewSystem builds and starts a distributed deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("distributed: system needs a library and programs")
	}
	if err := cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	names := cfg.Agents
	if len(names) == 0 {
		names = cfg.Library.SortedAgents()
	}
	if len(names) == 0 {
		names = []string{"agent1", "agent2", "agent3"}
	}
	if cfg.AGDBs != nil && len(cfg.AGDBs) != len(names) {
		return nil, errors.New("distributed: AGDBs length must match Agents")
	}

	net := transport.NewNetwork(transport.NetworkConfig{Collector: cfg.Collector, Wire: cfg.Wire})
	sys := &System{
		net:    net,
		agents: make(map[string]*Agent, len(names)),
		names:  append([]string(nil), names...),
		lib:    cfg.Library,
		col:    cfg.Collector,
		term:   new(itable.Terminal),
	}
	onRetired := func(workflow string, id int) {
		sys.coordName.Delete(itable.Ref{Workflow: workflow, ID: id})
	}
	for i, name := range names {
		var db *wfdb.DB
		if cfg.AGDBs != nil {
			db = cfg.AGDBs[i]
		}
		ag, err := NewAgent(Config{
			Name:               name,
			Library:            cfg.Library,
			Agents:             names,
			Programs:           cfg.Programs,
			Collector:          cfg.Collector,
			AGDB:               db,
			DisableOCR:         cfg.DisableOCR,
			ExplicitElection:   cfg.ExplicitElection,
			PurgeOnCommit:      cfg.PurgeOnCommit,
			Terminal:           sys.term,
			OnRetired:          onRetired,
			StatusPollInterval: cfg.StatusPollInterval,
			StatusPollAge:      cfg.StatusPollAge,
			Logf:               cfg.Logf,
		}, net)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("distributed: agent %s: %w", name, err)
		}
		sys.agents[name] = ag
	}
	return sys, nil
}

// Collector returns the metrics collector.
func (s *System) Collector() *metrics.Collector { return s.col }

// Network exposes the transport (tests crash/recover agents through it).
func (s *System) Network() *transport.Network { return s.net }

// Agent returns a deployed agent by name.
func (s *System) Agent(name string) *Agent { return s.agents[name] }

// AgentNames returns the deployment's agent names.
func (s *System) AgentNames() []string { return append([]string(nil), s.names...) }

// coordinationAgent returns the coordination agent of an instance: the one
// remembered from its start, or (for instances this front end did not start)
// the elected executor of the schema's first start step.
func (s *System) coordinationAgent(workflow string, id int) (*Agent, error) {
	name, known := s.coordName.Get(itable.Ref{Workflow: workflow, ID: id})
	if known {
		if ag, ok := s.agents[name]; ok {
			return ag, nil
		}
	}
	return s.electCoordinator(workflow, id)
}

// electCoordinator elects the coordination agent among the currently alive
// eligible agents and remembers the choice for the instance's lifetime.
func (s *System) electCoordinator(workflow string, id int) (*Agent, error) {
	schema := s.lib.Schema(workflow)
	if schema == nil {
		return nil, fmt.Errorf("distributed: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	starts := schema.StartSteps()
	if len(starts) == 0 {
		return nil, fmt.Errorf("distributed: workflow %q has no start step", workflow)
	}
	st := schema.Steps[starts[0]]
	elig := st.EligibleAgents
	if len(elig) == 0 {
		elig = s.names
	}
	name := nav.ElectAgent(elig, workflow, id, starts[0], s.net.Alive)
	if name == "" {
		return nil, fmt.Errorf("distributed: no agent available to coordinate %s.%d", workflow, id)
	}
	ag, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("distributed: elected unknown agent %q", name)
	}
	// Remember the election only while the instance is live: a retired
	// instance's queries answer from the terminal registry and must not
	// repopulate the routing table.
	if st, done := s.term.Status(workflow, id); !done || st == wfdb.Running {
		s.coordName.Put(itable.Ref{Workflow: workflow, ID: id}, name)
	}
	return ag, nil
}

// admit performs the shared pre-flight checks of context-aware calls.
func (s *System) admit(ctx context.Context, workflow string) error {
	if s.closed.Load() {
		return fmt.Errorf("distributed: %w", cerrors.ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workflow != "" && s.lib.Schema(workflow) == nil {
		return fmt.Errorf("distributed: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	return nil
}

// Start launches an instance via its coordination agent's WorkflowStart WI.
func (s *System) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	return s.StartCtx(context.Background(), workflow, inputs)
}

// StartCtx launches an instance via its coordination agent's WorkflowStart
// WI. The context gates only the admission of the request; a started instance
// keeps running after ctx is cancelled.
func (s *System) StartCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, error) {
	if err := s.admit(ctx, workflow); err != nil {
		return 0, err
	}
	id := s.nextID.Update(itable.Ref{Workflow: workflow}, func(v int, _ bool) int { return v + 1 })
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, err
	}
	if err := ag.StartInstance(workflow, id, inputs); err != nil {
		return 0, err
	}
	return id, nil
}

// StartSeq launches an instance under an externally assigned ID. Placement is
// a pure function of (workflow, id) — the elected coordination agent — so the
// global sequence number is unused; accepting it lets concurrent drivers
// start instances in any order without changing where work lands. A StartSeq
// racing Close fails with cerrors.ErrClosed instead of panicking on the
// closed transport.
func (s *System) StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error {
	if s.closed.Load() {
		return fmt.Errorf("distributed: %w", cerrors.ErrClosed)
	}
	s.nextID.Update(itable.Ref{Workflow: workflow}, func(v int, _ bool) int {
		if id > v {
			return id
		}
		return v
	})
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.StartInstance(workflow, id, inputs)
}

// Quiesce blocks until no message is queued, undelivered or still being
// processed anywhere in the deployment.
func (s *System) Quiesce(ctx context.Context) error { return s.net.Quiesce(ctx) }

// Run starts an instance and waits for its terminal status. It wraps RunCtx
// with a deadline context.
func (s *System) Run(workflow string, inputs map[string]expr.Value, timeout time.Duration) (int, wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.RunCtx(ctx, workflow, inputs)
}

// RunCtx starts an instance and waits for its terminal status under ctx.
func (s *System) RunCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, wfdb.Status, error) {
	id, err := s.StartCtx(ctx, workflow, inputs)
	if err != nil {
		return 0, 0, err
	}
	st, err := s.WaitCtx(ctx, workflow, id)
	return id, st, err
}

// Wait blocks until the instance terminates (subscribing at the coordination
// agent). It wraps WaitCtx with a deadline context; the deadline surfaces as
// cerrors.ErrTimeout.
func (s *System) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.WaitCtx(ctx, workflow, id)
}

// WaitCtx blocks until the instance terminates or ctx ends. Completion is
// push-based: the call subscribes to the deployment's shared terminal
// registry and is woken by the closing of the instance's waiter channel — no
// status polling and no agent-goroutine round-trip, so a Wait can neither
// stall behind a long-running step program nor wake any agent. A deadline
// expiry is reported as cerrors.ErrTimeout (errors.Is-matchable); a plain
// cancellation as ctx.Err(). An expired ctx wins even when the terminal
// status lands at the same instant, so the deadline contract is deterministic.
func (s *System) WaitCtx(ctx context.Context, workflow string, id int) (wfdb.Status, error) {
	if err := s.admit(ctx, ""); err != nil {
		return 0, err
	}
	st, done, w, gen := s.term.Subscribe(workflow, id)
	if done {
		return st, nil
	}
	// Fresh-deployment-over-old-AGDBs: completions from a previous
	// incarnation exist only as summaries in the coordination agent's
	// database (read directly — the store is internally synchronized).
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		s.term.Unsubscribe(workflow, id, w, gen)
		return 0, err
	}
	if db := ag.DB(); db != nil {
		if sum, found, _ := db.LoadSummary(workflow, id); found && sum != wfdb.Running {
			s.term.Unsubscribe(workflow, id, w, gen)
			return sum, nil
		}
	}
	select {
	case <-w.Done():
		if ctx.Err() != nil {
			return 0, s.waitErr(ctx, workflow, id)
		}
		return w.Result(), nil
	case <-ctx.Done():
		s.term.Unsubscribe(workflow, id, w, gen)
		return 0, s.waitErr(ctx, workflow, id)
	}
}

// waitErr translates a finished ctx into the Wait error contract.
func (s *System) waitErr(ctx context.Context, workflow string, id int) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("distributed: %w: %s.%d", cerrors.ErrTimeout, workflow, id)
	}
	return ctx.Err()
}

// Abort requests a user abort via the WorkflowAbort WI. A retired instance
// reports cerrors.ErrNotRunning without touching any agent.
func (s *System) Abort(workflow string, id int) error {
	if st, ok := s.term.Status(workflow, id); ok && st != wfdb.Running {
		return fmt.Errorf("distributed: %w: %s.%d is %v", cerrors.ErrNotRunning, workflow, id, st)
	}
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestAbort(workflow, id)
}

// ChangeInputs applies user input changes via WorkflowChangeInputs.
func (s *System) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	if st, ok := s.term.Status(workflow, id); ok && st != wfdb.Running {
		return fmt.Errorf("distributed: %w: %s.%d is %v", cerrors.ErrNotRunning, workflow, id, st)
	}
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return err
	}
	return ag.RequestChangeInputs(workflow, id, inputs)
}

// Status serves the WorkflowStatus WI: the shared terminal registry answers
// for every finished instance, live ones ask their coordination agent.
func (s *System) Status(workflow string, id int) (wfdb.Status, bool) {
	if st, ok := s.term.Status(workflow, id); ok {
		return st, true
	}
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return 0, false
	}
	return ag.InstanceStatus(workflow, id)
}

// Snapshot returns the coordination agent's replica of the instance.
func (s *System) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	ag, err := s.coordinationAgent(workflow, id)
	if err != nil {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// SnapshotAt returns a specific agent's replica of the instance.
func (s *System) SnapshotAt(agent, workflow string, id int) (*wfdb.Instance, bool) {
	ag, ok := s.agents[agent]
	if !ok {
		return nil, false
	}
	return ag.Snapshot(workflow, id)
}

// Close shuts the deployment down. Later context-aware calls fail with
// cerrors.ErrClosed.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.net.Close()
	for _, a := range s.agents {
		a.Stop()
	}
}

// HaltNode simulates a crash of a named agent. In the distributed
// architecture every agent replicates the coordination state of the
// instances it touches into its AGDB, so a crash only parks the agent's
// transport queue: undelivered messages wait, peers keep navigating, and the
// parked traffic drains on RestartNode — the paper's persistent-queue
// recovery contract.
func (s *System) HaltNode(name string) { s.net.Crash(name) }

// RestartNode recovers an agent halted by HaltNode, delivering the messages
// parked while it was down.
func (s *System) RestartNode(name string) { s.net.Recover(name) }
