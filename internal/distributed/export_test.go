package distributed

import (
	"crew/internal/model"
	"crew/internal/nav"
)

// electForTest mirrors the agents' deterministic successor election.
func electForTest(elig []string, wf string, id int, step model.StepID, alive func(string) bool) string {
	return nav.ElectAgent(elig, wf, id, step, alive)
}
