package distributed

import (
	"sort"

	"crew/internal/coord"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/wfdb"
)

// homeState is the coordination state kept by the deployment's home agent:
// the relative-order queues, mutex queues and rollback-dependency registry
// for the library's specs. Agents reach it with AddRule messages; it answers
// with AddPrecondition and injects events with AddEvent — the three
// implementation-level primitives the paper's coordination support is built
// on.
type homeState struct {
	tracker *coord.Tracker
	// forgotten tombstones finished instances: coordination requests that
	// arrive after an instance's forget (late re-acquires from replicas
	// that have not yet learned of the commit) must not take resources.
	forgotten map[coord.InstanceRef]bool
}

// homeHandleAddRule processes a coordination request at the home agent:
// a pre-execution check (establishing/looking up ordering and acquiring
// mutexes), a completion notification, or a failed-attempt release.
func (a *Agent) homeHandleAddRule(p addRule) {
	if a.home == nil {
		a.logf("AddRule received by non-home agent")
		return
	}
	a.addLoad(metrics.Coordination, 1)
	t := a.home.tracker
	if a.home.forgotten[p.Inst] {
		if !p.Done && !p.Failed {
			// The instance has finished; answer with no waits so the
			// requester unblocks (its own replica will refuse execution
			// once it learns the final status) without taking resources.
			a.send(p.ReplyAgent, metrics.Coordination, KindAddPrecondition, addPrecondition{
				Inst: p.Inst,
				Step: p.Ref.Step,
			})
		}
		return
	}
	switch {
	case p.Failed:
		for _, inj := range t.MutexRelease(p.Ref, p.Inst) {
			a.deliverInjection(inj)
		}
	case p.Done:
		for _, inj := range t.OrderStepDone(p.Ref, p.Inst) {
			a.deliverInjection(inj)
		}
		for _, inj := range t.MutexRelease(p.Ref, p.Inst) {
			a.deliverInjection(inj)
		}
	default:
		waits := t.OrderWait(p.Ref, p.Inst)
		grants, mutexWaits := t.MutexAcquire(p.Ref, p.Inst)
		waits = append(waits, mutexWaits...)
		for _, g := range grants {
			a.deliverInjection(g)
		}
		a.send(p.ReplyAgent, metrics.Coordination, KindAddPrecondition, addPrecondition{
			Inst:       p.Inst,
			Step:       p.Ref.Step,
			WaitEvents: waits,
		})
	}
}

// deliverInjection routes an AddEvent to the agents holding the waiting
// rule: the eligible agents of the target step (when known), otherwise the
// target instance's coordination agent.
func (a *Agent) deliverInjection(inj coord.Injection) {
	msg := addEvent{Target: inj.Target, Event: inj.Event, Step: inj.Step}
	if inj.Step != "" {
		schema := a.cfg.Library.Schema(inj.Target.Workflow)
		if schema != nil && schema.Steps[inj.Step] != nil {
			for _, ag := range a.effectiveAgents(schema.Steps[inj.Step]) {
				a.send(ag, metrics.Coordination, KindAddEvent, msg)
			}
			return
		}
	}
	schema := a.cfg.Library.Schema(inj.Target.Workflow)
	if schema == nil {
		return
	}
	a.send(a.coordinationAgentOf(schema, inj.Target.Workflow, inj.Target.ID), metrics.Coordination, KindAddEvent, msg)
}

// homeHandleRollbackNote resolves rollback-dependency triggers and
// broadcasts the resulting rollback orders to every agent, whose
// coordination-agent replicas apply them.
func (a *Agent) homeHandleRollbackNote(p coordRollbackNote) {
	if a.home == nil {
		return
	}
	a.addLoad(metrics.Coordination, 1)
	orders := a.home.tracker.RollbackTriggered(p.Workflow, p.Invalidated)
	for _, ord := range orders {
		for _, ag := range a.cfg.Agents {
			a.send(ag, metrics.Coordination, KindAddRule, coordRollbackOrder{Order: ord})
		}
	}
}

// homeHandleForget cleans a finished instance out of coordination state.
func (a *Agent) homeHandleForget(p coordForgetNote) {
	if a.home == nil {
		return
	}
	a.addLoad(metrics.Coordination, 1)
	if a.home.forgotten == nil {
		a.home.forgotten = make(map[coord.InstanceRef]bool)
	}
	a.home.forgotten[p.Inst] = true
	for _, inj := range a.home.tracker.OrderForget(p.Inst) {
		a.deliverInjection(inj)
	}
	for _, inj := range a.home.tracker.MutexForget(p.Inst) {
		a.deliverInjection(inj)
	}
}

// handleAddPrecondition records the wait events returned by the home agent
// and retries the blocked step.
func (a *Agent) handleAddPrecondition(p addPrecondition) {
	r, ok := a.replicas[wfdb.InstanceKeyOf(p.Inst.Workflow, p.Inst.ID)]
	if !ok {
		return
	}
	a.addLoad(metrics.Coordination, 1)
	r.coordPending[p.Step] = false
	r.coordWaits[p.Step] = p.WaitEvents
	a.maybeExecute(r, p.Step)
	a.evaluate(r)
}

// handleAddEvent posts an injected coordination event (the AddEvent WI) and
// retries coordination-blocked steps.
func (a *Agent) handleAddEvent(p addEvent) {
	r, err := a.getReplica(p.Target.Workflow, p.Target.ID)
	if err != nil {
		return
	}
	a.addLoad(metrics.Coordination, 1)
	if r.rules.AddEvent(r.ins.Events, p.Event) {
		// Sorted retry order: maybeExecute emits dispatch traffic, and map
		// order would make the emitted sequence differ run to run.
		steps := make([]model.StepID, 0, len(r.coordBlocked))
		for step, blocked := range r.coordBlocked {
			if blocked {
				steps = append(steps, step)
			}
		}
		sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
		for _, step := range steps {
			a.maybeExecute(r, step)
		}
		a.evaluate(r)
	}
}

// handleRollbackOrder applies a rollback dependency to instances this agent
// coordinates. Sends are deferred past the map iteration because a
// self-delivered WorkflowRollback may mutate the replica map.
func (a *Agent) handleRollbackOrder(p coordRollbackOrder) {
	type rollbackSend struct {
		to  string
		msg workflowRollback
	}
	var sends []rollbackSend
	for _, r := range a.replicas {
		if r.coordinator != a.cfg.Name ||
			r.ins.Workflow != p.Order.TargetWorkflow ||
			r.ins.Status != wfdb.Running {
			continue
		}
		if !r.ins.Events.Has(r.schema.DoneEventOf(p.Order.TargetStep)) {
			rec := r.ins.Steps[p.Order.TargetStep]
			if rec == nil || rec.Attempts == 0 {
				continue // has not reached the target step yet
			}
		}
		a.addLoad(metrics.Coordination, 1)
		r.inputEpoch++
		sends = append(sends, rollbackSend{
			to: a.executorOf(r, p.Order.TargetStep),
			msg: workflowRollback{
				Workflow:  r.ins.Workflow,
				Instance:  r.ins.ID,
				Origin:    p.Order.TargetStep,
				Epoch:     r.inputEpoch,
				Initiator: a.cfg.Name + "/dep",
				Mechanism: metrics.Failure,
			},
		})
	}
	for _, s := range sends {
		a.send(s.to, metrics.Failure, KindWorkflowRollback, s.msg)
	}
}

// ensure nav import is used even if future refactors drop other uses.
var _ = nav.ElectAgent
