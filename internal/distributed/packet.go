// Package distributed implements the distributed workflow control
// architecture (paper §4-5): there is no central engine — the agents that
// execute steps also schedule and coordinate the workflow instances. Each
// agent keeps a partial replica of instance state in its agent database
// (AGDB) and navigation happens by exchanging workflow packets. Per the
// paper's agent taxonomy:
//
//   - every agent is an execution agent: it runs step programs, holds the
//     rules for steps it is eligible for, and forwards workflow packets to
//     the agents of successor steps;
//   - the coordination agent of an instance (the agent of its first start
//     step) additionally handles workflow commit and abort, keeps the
//     coordination instance summary table for the front-end database, and
//     receives StepCompleted notifications;
//   - termination agents (agents of terminal steps) report StepCompleted to
//     the coordination agent.
//
// The sixteen workflow interfaces of Table 1 map to message kinds in
// messages.go; mechanisms for failure handling (WorkflowRollback, HaltThread
// probes, CompensateSet chains, CompensateThread) and coordinated execution
// (AddRule/AddEvent/AddPrecondition between agents) follow §5.
package distributed

import (
	"fmt"
	"sort"
	"strings"

	"crew/internal/expr"
	"crew/internal/model"
)

// Packet is the workflow packet exchanged between agents (paper Figure 7).
// It carries the complete state information of the instance as known to the
// sender: the accumulated data items, the valid events, and piggybacked
// relative-ordering roles.
type Packet struct {
	// Workflow and Instance identify the workflow instance.
	Workflow string
	Instance int
	// Epoch is the sender's rollback epoch for the instance: receivers drop
	// packets older than their own epoch (stale-thread quiescing — the
	// paper's event invalidation generalized to in-flight state).
	Epoch int
	// TargetStep is the action: "Execute <step>".
	TargetStep model.StepID
	// Data is the accumulated data-item section.
	Data map[string]expr.Value
	// Events is the valid-event section.
	Events []string
	// ResetSteps lists steps whose previous execution this packet obsoletes
	// (loop iterations): the receiver invalidates their events and results
	// before merging.
	ResetSteps []model.StepID
	// Leading and Lagging carry the relative-ordering roles piggybacked on
	// the packet ("R.O. Leading / R.O. Lagging" in Figure 7): spec name ->
	// role holder rendering.
	Leading []string
	Lagging []string
	// Coordinator names the instance's coordination agent, so termination
	// agents know where to send StepCompleted.
	Coordinator string
}

// String renders the packet in the layout of the paper's Figure 7.
func (p *Packet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workflow Name: %s\n", p.Workflow)
	fmt.Fprintf(&b, "Instance Number: %d\n", p.Instance)
	fmt.Fprintf(&b, "Action: Execute %s\n", p.TargetStep)
	b.WriteString("Data Items:\n")
	keys := make([]string, 0, len(p.Data))
	for k := range p.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s = %s\n", k, p.Data[k].GoString())
	}
	b.WriteString("Events: ")
	b.WriteString(strings.Join(p.Events, " "))
	b.WriteString("\n")
	if len(p.Leading) > 0 {
		fmt.Fprintf(&b, "R.O. Leading: %s\n", strings.Join(p.Leading, " "))
	}
	if len(p.Lagging) > 0 {
		fmt.Fprintf(&b, "R.O. Lagging: %s\n", strings.Join(p.Lagging, " "))
	}
	return b.String()
}

// Clone deep-copies the packet (agents must not share maps across
// goroutines).
func (p *Packet) Clone() *Packet {
	c := *p
	c.Data = make(map[string]expr.Value, len(p.Data))
	for k, v := range p.Data {
		c.Data[k] = v
	}
	c.Events = append([]string(nil), p.Events...)
	c.ResetSteps = append([]model.StepID(nil), p.ResetSteps...)
	c.Leading = append([]string(nil), p.Leading...)
	c.Lagging = append([]string(nil), p.Lagging...)
	return &c
}
