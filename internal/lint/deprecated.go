package lint

// deprecated flags calls to functions whose doc comment carries the
// conventional "Deprecated:" marker. The marker is picked up by the summary
// fact layer, so the check crosses package boundaries: deprecating an API
// (transport.New after the NetworkConfig redesign) immediately fails lint
// at every remaining call site instead of waiting for a reviewer to notice.
// Deliberate uses (a compatibility shim's own tests) annotate
// //crew:allow deprecated <reason>.

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Deprecated = &analysis.Analyzer{
	Name:     "deprecated",
	Doc:      "no calls to functions documented as Deprecated:",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Summaries},
	Run:      runDeprecated,
}

func runDeprecated(pass *analysis.Pass) (any, error) {
	ix := pass.ResultOf[Summaries].(*SummaryIndex)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || !ix.FactsOf(callee).Deprecated {
			return
		}
		if exempted(pass, call.Pos(), "deprecated") {
			return
		}
		name := funcDisplayName(callee)
		if callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
			name = callee.Pkg().Name() + "." + name
		}
		pass.Reportf(call.Pos(), "call to deprecated function %s: its doc comment names the replacement (or annotate //crew:allow deprecated <reason>)", name)
	})
	return nil, nil
}
