package lint

// lockorder builds a global mutex-acquisition-order graph and reports
// cycles (potential deadlocks) and violations of a declared //crew:lockrank
// ordering. The paper's coordination laws are enforced by engine goroutines
// that take shard-table, transport and hub locks on behalf of many
// workflows at once; an A→B ordering in one package and B→A in another is
// exactly the deadlock class that only a whole-program view can catch.
//
// An edge A→B means "B was acquired while A was held": either a literal
// nested Lock() in one function, or a call made inside A's held region to a
// function whose summary fact says it may acquire B (so cross-function and
// cross-package nesting is visible). Locks are identified by class —
// "pkgpath.Type.field" for mutex fields, "pkgpath.var" for package-level
// mutexes — so every instance of a sharded table is one node.
//
// The graph crosses package boundaries through a cumulative package fact:
// each package exports its own edges plus everything its direct imports
// exported, so by the time the root packages are analyzed the full program
// graph is present. A cycle is reported once, at an edge in the package
// that completes it.
//
// Ranks are declared where the mutex lives:
//
//	mu sync.Mutex //crew:lockrank 20
//
// and acquiring a mutex whose rank is not strictly greater than one already
// held is a violation even before it closes a cycle. Deliberate exceptions
// carry //crew:allow lockorder <reason> on the acquiring line.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockEdge is one observed ordering: To was acquired (directly or through a
// call) while From was held.
type LockEdge struct {
	From, To string
	// Pos is "file:line" of the inner acquisition, kept so a cycle detected
	// packages away can still name where each leg was introduced.
	Pos string
}

// LockGraph is the cumulative per-package fact: this package's acquisition
// edges and rank declarations plus those of everything it (transitively)
// imports. Exporting the merged graph is what lets a package see orderings
// introduced anywhere below it with only direct-import fact visibility.
type LockGraph struct {
	Edges []LockEdge
	Ranks map[string]int
}

// AFact marks LockGraph as a go/analysis fact.
func (*LockGraph) AFact() {}

// LockOrder reports mutex-acquisition cycles and //crew:lockrank
// violations over the whole-program graph.
var LockOrder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "report mutex-acquisition-order cycles and //crew:lockrank violations across packages",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, Summaries},
	FactTypes: []analysis.Fact{new(LockGraph)},
	Run:       runLockOrder,
}

// localEdge is an edge observed in the current package, with the report
// position still live.
type localEdge struct {
	LockEdge
	pos      token.Pos
	fromRead bool // From was read-locked (RLock)
	toRead   bool // To acquisition is an RLock (direct acquisitions only)
	via      string // non-empty: the callee whose summary contributed To
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Summaries].(*SummaryIndex)

	var locals []localEdge
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch f := n.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			locals = append(locals, collectOrderEdges(pass, ix, body)...)
		}
	})
	ranks := collectLockRanks(pass)

	// Merge the cumulative graphs of the direct imports; together with this
	// package's own edges they form the program graph known so far.
	merged := map[[2]string]LockEdge{}
	mergedRanks := map[string]int{}
	for class, r := range ranks {
		mergedRanks[class] = r
	}
	for _, imp := range pass.Pkg.Imports() {
		var g LockGraph
		if !pass.ImportPackageFact(imp, &g) {
			continue
		}
		for _, e := range g.Edges {
			merged[[2]string{e.From, e.To}] = e
		}
		for class, r := range g.Ranks {
			mergedRanks[class] = r
		}
	}
	for _, e := range locals {
		k := [2]string{e.From, e.To}
		if _, ok := merged[k]; !ok {
			merged[k] = e.LockEdge
		}
	}

	// Rank violations: acquiring a rank not strictly above every held rank.
	for _, e := range locals {
		rFrom, okFrom := mergedRanks[e.From]
		rTo, okTo := mergedRanks[e.To]
		if !okFrom || !okTo || rTo > rFrom {
			continue
		}
		if exempted(pass, e.pos, "lockorder") {
			continue
		}
		detail := e.To
		if e.via != "" {
			detail = e.To + " (via " + e.via + ")"
		}
		pass.Reportf(e.pos, "lock rank violation: acquiring %s (rank %d) while holding %s (rank %d): //crew:lockrank order must be strictly increasing (reorder the acquisitions or annotate //crew:allow lockorder <reason>)", detail, rTo, e.From, rFrom)
	}

	// Cycles: a local edge A→B closes a cycle when B already reaches A in
	// the merged graph. Reported at the local edge, once per (A,B).
	adj := map[string][]string{}
	for k := range merged {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	reported := map[[2]string]bool{}
	for _, e := range locals {
		k := [2]string{e.From, e.To}
		if reported[k] || e.From == e.To {
			continue
		}
		path := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		reported[k] = true
		if exempted(pass, e.pos, "lockorder") {
			continue
		}
		cycle := append([]string{e.From}, path...)
		legs := make([]string, 0, len(cycle))
		for i := 1; i < len(cycle); i++ {
			leg := merged[[2]string{cycle[i-1], cycle[i]}]
			legs = append(legs, cycle[i]+" ("+leg.Pos+")")
		}
		pass.Reportf(e.pos, "lock-order cycle (potential deadlock): %s → %s → back to %s; every path must acquire these locks in one global order", e.From, strings.Join(legs, " → "), e.From)
	}

	// Export the cumulative graph for importers.
	out := &LockGraph{Ranks: mergedRanks}
	keys := make([][2]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		out.Edges = append(out.Edges, merged[k])
	}
	if len(out.Edges) > 0 || len(out.Ranks) > 0 {
		pass.ExportPackageFact(out)
	}
	return nil, nil
}

// findPath returns a path from → to in adj (inclusive of to, exclusive of
// from), or nil. Deterministic: neighbors are pre-sorted.
func findPath(adj map[string][]string, from, to string) []string {
	type frame struct {
		node string
		path []string
	}
	seen := map[string]bool{from: true}
	stack := []frame{{from, []string{from}}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node == to {
			return f.path
		}
		for _, nb := range adj[f.node] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, frame{nb, append(append([]string{}, f.path...), nb)})
			}
		}
	}
	return nil
}

// collectOrderEdges computes the acquisition edges of one function body: a
// direct acquisition inside another lock's held region, and a call inside a
// held region to a function whose summary says it may acquire locks.
// Read-read nesting of one class is not an edge (RLock is shared).
func collectOrderEdges(pass *analysis.Pass, ix *SummaryIndex, body *ast.BlockStmt) []localEdge {
	locks, _ := collectLockEvents(pass, ix, body)
	if len(locks) == 0 {
		return nil
	}
	held := heldIntervals(locks, body.End())
	var edges []localEdge
	posOf := func(p token.Pos) string {
		pp := pass.Fset.Position(p)
		return pp.Filename[strings.LastIndexByte(pp.Filename, '/')+1:] + ":" + strconv.Itoa(pp.Line)
	}
	add := func(iv lockInterval, to string, toRead bool, pos token.Pos, via string) {
		if iv.class == "" || to == "" {
			return
		}
		if iv.class == to && iv.read && toRead {
			return
		}
		edges = append(edges, localEdge{
			LockEdge: LockEdge{From: iv.class, To: to, Pos: posOf(pos)},
			pos:      pos,
			fromRead: iv.read,
			toRead:   toRead,
			via:      via,
		})
	}

	// Direct nesting: an acquisition strictly inside another's region.
	for _, ev := range locks {
		if ev.unlock {
			continue
		}
		for _, iv := range held {
			if ev.pos > iv.from && ev.pos < iv.to {
				add(iv, ev.class, ev.read, ev.pos, "")
			}
		}
	}

	// Calls under a lock to functions that acquire locks elsewhere. The
	// goCalls exclusion already happened in collectLockEvents for events;
	// here calls are re-walked with the same exclusions.
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goCalls[st.Call] = true
		case *ast.CallExpr:
			if goCalls[st] {
				return true
			}
			if _, isLock := lockEventOf(pass, st); isLock {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, st)
			if callee == nil {
				return true
			}
			ff := ix.FactsOf(callee)
			if len(ff.Locks) == 0 {
				return true
			}
			for _, iv := range held {
				if st.Pos() > iv.from && st.Pos() < iv.to {
					for _, cls := range ff.Locks {
						add(iv, cls, false, st.Pos(), funcDisplayName(callee))
					}
				}
			}
		}
		return true
	})
	return edges
}

// collectLockRanks scans the package for //crew:lockrank declarations on
// mutex fields and package-level mutex variables.
func collectLockRanks(pass *analysis.Pass) map[string]int {
	ranks := map[string]int{}
	parse := func(groups ...*ast.CommentGroup) (int, bool) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "crew:lockrank") {
					continue
				}
				arg := strings.TrimSpace(strings.TrimPrefix(text, "crew:lockrank"))
				n, err := strconv.Atoi(arg)
				if err != nil {
					pass.Reportf(c.Pos(), "malformed //crew:lockrank annotation: want an integer rank, got %q", arg)
					continue
				}
				return n, true
			}
		}
		return 0, false
	}
	isMutex := func(t types.Type) bool {
		return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.StructType:
				for _, field := range d.Fields.List {
					t := pass.TypesInfo.TypeOf(field.Type)
					if t == nil || !isMutex(t) {
						continue
					}
					r, ok := parse(field.Doc, field.Comment)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
							if v, ok := obj.(*types.Var); ok && v.IsField() {
								if owner := fieldOwner(pass, d); owner != "" {
									ranks[owner+"."+name.Name] = r
								}
							}
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					r, ok := parse(vs.Doc, vs.Comment, d.Doc)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.ObjectOf(name)
						if obj == nil || !isMutex(obj.Type()) {
							continue
						}
						if obj.Parent() == pass.Pkg.Scope() {
							ranks[pass.Pkg.Path()+"."+name.Name] = r
						}
					}
				}
			}
			return true
		})
	}
	return ranks
}

// fieldOwner resolves the "pkgpath.Type" prefix of a struct type's lock
// class by finding the named type whose underlying struct this is.
func fieldOwner(pass *analysis.Pass, st *ast.StructType) string {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Type != st {
					continue
				}
				return pass.Pkg.Path() + "." + ts.Name.Name
			}
		}
	}
	return ""
}
