package lint

// facts.go is the shared call-summary layer of the crewlint suite: a
// go/analysis fact engine that computes, for every function in a package, a
// conservative summary of the behaviors the other analyzers care about —
// may it block, may it allocate, which mutex classes does it acquire, does
// it (or anything it calls) put a message on the transport — and exports
// the summaries as object facts so they propagate across package
// boundaries through the vet driver's .vetx files.
//
// The summaries turn the previously syntactic, intraprocedural analyzers
// into interprocedural ones: locksend no longer needs a hand-maintained
// table of blocking entry points (a function that transitively reaches a
// channel receive is blocking wherever it is called from), chargedsend
// follows transport.Message parameters through wrapper functions, and the
// new lockorder/hotalloc analyzers are built on the same propagation.
//
// Propagation rules:
//
//   - Within a package, summaries are a fixed point over the static call
//     graph (go/types resolution; calls through function values stay
//     unknown and contribute nothing).
//   - Across packages, summaries are read back as facts: a call to an
//     imported function merges that function's exported FuncFacts.
//   - Interface dispatch resolves to the interface method object itself
//     (e.g. transport.Link.Deliver), which carries facts seeded in its
//     declaring package — either from the transport entry-point table
//     below or from a //crew:blocks or //crew:allocs annotation on the
//     method's declaration.
//   - Calls inside `go` statements contribute nothing to the caller's
//     summary (the spawned goroutine blocks, allocates and locks on its
//     own stack); the `go` statement itself is an allocation site.
//   - Allocation sites silenced with //crew:allow hotalloc <reason> do not
//     contribute to the Allocs bit, so a deliberate cold-path allocation
//     (an error return, a once-per-lifetime growth) does not poison every
//     hot-path caller.

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// FuncFacts is the exported per-function call summary.
type FuncFacts struct {
	// Blocks reports that calling the function may park the goroutine
	// indefinitely: a channel operation, a select without default, a known
	// blocking root (time.Sleep, WaitGroup.Wait), an annotated primitive,
	// or a transitive call to any of those.
	Blocks bool
	// Allocs reports that the function may allocate on a steady-state
	// call: fmt/errors/json/reflect use, interface boxing, a capturing
	// closure, make/new, map iteration, or a transitive call to a function
	// that does. Sites silenced with //crew:allow hotalloc are excluded.
	Allocs bool
	// SendsRaw reports that the function (transitively) performs a raw
	// wire delivery below the transport's charging front half
	// (Link.Deliver): traffic entering it is never counted.
	SendsRaw bool
	// BypassBatch reports a physical-envelope send entry point whose call
	// sites bypass the Batcher that charges logical messages
	// (Handle.SendBatch).
	BypassBatch bool
	// SendsParam, when non-zero, is the 1-based index of a
	// transport.Message parameter that the function forwards into a
	// charged send entry point without setting its Mechanism: callers must
	// charge the message they pass (chargedsend checks them).
	SendsParam int8
	// Deprecated reports that the function's doc comment carries a
	// "Deprecated:" marker; the deprecated analyzer flags remaining calls.
	Deprecated bool
	// Locks lists the mutex classes (package.Type.field) the function may
	// acquire, directly or transitively. lockorder uses it to extend
	// acquisition edges through calls made while a lock is held.
	Locks []string
}

// AFact marks FuncFacts as a go/analysis fact.
func (*FuncFacts) AFact() {}

func (f *FuncFacts) String() string {
	var parts []string
	if f.Blocks {
		parts = append(parts, "blocks")
	}
	if f.Allocs {
		parts = append(parts, "allocs")
	}
	if f.SendsRaw {
		parts = append(parts, "sendsraw")
	}
	if f.BypassBatch {
		parts = append(parts, "bypassbatch")
	}
	if f.SendsParam != 0 {
		parts = append(parts, "sendsparam="+string(rune('0'+f.SendsParam)))
	}
	if f.Deprecated {
		parts = append(parts, "deprecated")
	}
	if len(f.Locks) > 0 {
		parts = append(parts, "locks("+strings.Join(f.Locks, ",")+")")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

func (f *FuncFacts) empty() bool {
	return !f.Blocks && !f.Allocs && !f.SendsRaw && !f.BypassBatch &&
		f.SendsParam == 0 && !f.Deprecated && len(f.Locks) == 0
}

// merge folds a callee's summary into the caller's, for a call made on the
// caller's goroutine. SendsParam, BypassBatch and Deprecated deliberately
// do not propagate: they describe the callee's signature contract, not a
// behavior the caller inherits.
func (f *FuncFacts) merge(c FuncFacts) bool {
	changed := false
	if c.Blocks && !f.Blocks {
		f.Blocks, changed = true, true
	}
	if c.Allocs && !f.Allocs {
		f.Allocs, changed = true, true
	}
	if c.SendsRaw && !f.SendsRaw {
		f.SendsRaw, changed = true, true
	}
	for _, l := range c.Locks {
		if !containsString(f.Locks, l) {
			f.Locks = append(f.Locks, l)
			changed = true
		}
	}
	return changed
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// SummaryIndex is the Summaries analyzer's per-package result: a lookup
// from any *types.Func — declared here or imported — to its summary.
type SummaryIndex struct {
	pass  *analysis.Pass
	local map[*types.Func]*FuncFacts
}

// FactsOf returns fn's summary, consulting the current package's fixed
// point first and imported facts second. A nil or unknown function has the
// zero summary.
func (ix *SummaryIndex) FactsOf(fn *types.Func) FuncFacts {
	if fn == nil {
		return FuncFacts{}
	}
	if f, ok := ix.local[fn]; ok {
		return *f
	}
	var ff FuncFacts
	if fn.Pkg() != nil && ix.pass.ImportObjectFact(fn, &ff) {
		return ff
	}
	return FuncFacts{}
}

// CalleeOf resolves the function object a call invokes: static callees
// (functions, concrete methods) and interface methods. Calls through plain
// function values and builtins resolve to nil.
func (ix *SummaryIndex) CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeFunc(info, call)
}

// calleeFunc resolves call's target including interface methods, which
// typeutil.StaticCallee deliberately excludes. The interface method object
// is exactly what carries the seeded facts for dynamic dispatch.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if fn := typeutil.StaticCallee(info, call); fn != nil {
		return fn
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// Summaries computes and exports the per-function FuncFacts for a package.
// It reports nothing itself; the other analyzers consume its result (and
// the facts it exports) to reason across function and package boundaries.
var Summaries = &analysis.Analyzer{
	Name:       "summary",
	Doc:        "compute per-function call summaries (may-block, may-allocate, acquired locks, send behavior) as facts",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	FactTypes:  []analysis.Fact{new(FuncFacts)},
	ResultType: reflect.TypeOf((*SummaryIndex)(nil)),
	Run:        runSummaries,
}

// blockingRoots are standard-library calls that can park the goroutine and
// cannot carry facts (their packages are outside the module).
var blockingRoots = map[methodKey]bool{
	{pkg: "sync", recv: "WaitGroup", name: "Wait"}: true,
	{pkg: "sync", recv: "Cond", name: "Wait"}:      true,
	{pkg: "time", name: "Sleep"}:                   true,
}

// allocRootPkgs are standard-library packages whose calls allocate on
// essentially every entry point that matters here.
var allocRootPkgs = map[string]bool{
	"fmt":           true,
	"errors":        true,
	"encoding/json": true,
	"reflect":       true,
}

// transportSeeds are the transport package's charged-send entry points and
// raw wire primitives, seeded when the summary pass analyzes the transport
// package itself so every other package sees them as ordinary facts. The
// Link.Deliver entry is an interface method: dynamic dispatch through any
// Wire backend resolves to it.
var transportSeeds = map[methodKey]FuncFacts{
	{pkg: transportPath, recv: "Handle", name: "Send"}:          {SendsParam: 1},
	{pkg: transportPath, recv: "Network", name: "Send"}:         {SendsParam: 1},
	{pkg: transportPath, recv: "Batcher", name: "Add"}:          {SendsParam: 2},
	{pkg: transportPath, recv: "ChildConn", name: "SendMessage"}: {SendsParam: 1},
	{pkg: transportPath, recv: "Handle", name: "SendBatch"}:     {BypassBatch: true},
	{pkg: transportPath, recv: "Link", name: "Deliver"}:         {SendsRaw: true, Blocks: true},
}

// factsAllPackages widens firstParty to every analyzed package; the
// offline test harness sets it so fixture packages (whose import paths do
// not carry the module prefix) get summaries.
var factsAllPackages = false

// firstParty reports whether the summary layer computes facts for a
// package. Only module-internal code is summarized: under the vet driver
// the suite also visits standard-library dependencies for fact
// propagation, and deriving "may block"/"may allocate" from stdlib
// internals (every os.File.Write bottoms out in a pollable syscall) would
// drown the invariants these facts exist for. Standard-library behavior
// enters the analysis only through the curated root tables
// (blockingRoots, allocRootPkgs) and explicit annotations.
func firstParty(path string) bool {
	return factsAllPackages || path == "crew" || strings.HasPrefix(path, "crew/")
}

func runSummaries(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	local := map[*types.Func]*FuncFacts{}
	if !firstParty(pass.Pkg.Path()) {
		return &SummaryIndex{pass: pass, local: local}, nil
	}
	get := func(fn *types.Func) *FuncFacts {
		f := local[fn]
		if f == nil {
			f = &FuncFacts{}
			local[fn] = f
		}
		return f
	}
	imported := func(fn *types.Func) FuncFacts {
		if f, ok := local[fn]; ok {
			return *f
		}
		var ff FuncFacts
		if fn.Pkg() != nil && pass.ImportObjectFact(fn, &ff) {
			return ff
		}
		return FuncFacts{}
	}

	// Seed the transport entry points when analyzing transport itself (or
	// its testdata stand-in, which shares the import path).
	if pass.Pkg.Path() == transportPath {
		for k, ff := range transportSeeds {
			if fn := lookupMethod(pass.Pkg, k.recv, k.name); fn != nil {
				seeded := ff
				get(fn).merge(seeded)
				if seeded.SendsParam != 0 {
					get(fn).SendsParam = seeded.SendsParam
				}
				if seeded.BypassBatch {
					get(fn).BypassBatch = true
				}
			}
		}
	}

	// Seed annotated declarations: //crew:blocks and //crew:allocs on a
	// function declaration or an interface method force the bit for
	// primitives whose behavior is invisible to the analysis (socket
	// reads, callbacks).
	seedAnnotations(pass, get)

	// Per-function direct attributes and same-package call edges. A
	// //crew:nocharge annotation at a call site stops SendsRaw taint: the
	// annotated funnel takes responsibility, so its callers stay clean.
	// Likewise //crew:allow hotalloc at a call site stops Allocs taint: the
	// annotation vouches that the edge is a cold branch, so a hot caller of
	// the enclosing function stays clean.
	noRawMemo := map[token.Pos]bool{}
	noRawAt := func(pos token.Pos) bool {
		v, ok := noRawMemo[pos]
		if !ok {
			v = exemptedQuiet(pass, pos, "chargedsend")
			noRawMemo[pos] = v
		}
		return v
	}
	allocAllowMemo := map[token.Pos]bool{}
	allocAllowAt := func(pos token.Pos) bool {
		v, ok := allocAllowMemo[pos]
		if !ok {
			v = exemptedQuiet(pass, pos, "hotalloc")
			allocAllowMemo[pos] = v
		}
		return v
	}
	type callsite struct {
		fn   *types.Func // caller
		call *ast.CallExpr
		body *ast.BlockStmt // caller body, for charge analysis
		sig  *types.Signature
	}
	type factEdge struct {
		callee *types.Func
		pos    token.Pos
	}
	edges := map[*types.Func][]factEdge{}
	var sites []callsite
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
		if !ok {
			return
		}
		ff := get(fn)
		if hasDeprecatedDoc(fd.Doc) {
			ff.Deprecated = true
		}
		sig, _ := fn.Type().(*types.Signature)
		directAttrs(pass, fd.Body, ff, func(call *ast.CallExpr) {
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			sites = append(sites, callsite{fn, call, fd.Body, sig})
			if callee.Pkg() == pass.Pkg {
				edges[fn] = append(edges[fn], factEdge{callee, call.Pos()})
			} else {
				cf := imported(callee)
				if cf.SendsRaw && noRawAt(call.Pos()) {
					cf.SendsRaw = false
				}
				if cf.Allocs && allocAllowAt(call.Pos()) {
					cf.Allocs = false
				}
				ff.merge(cf)
			}
		})
	})

	// Fixed point over the package-internal call graph.
	for changed := true; changed; {
		changed = false
		for fn, es := range edges {
			ff := get(fn)
			for _, e := range es {
				cf, ok := local[e.callee]
				if !ok {
					continue
				}
				c := *cf
				if c.SendsRaw && noRawAt(e.pos) {
					c.SendsRaw = false
				}
				if c.Allocs && allocAllowAt(e.pos) {
					c.Allocs = false
				}
				if ff.merge(c) {
					changed = true
				}
			}
		}
	}

	// SendsParam derivation: a function that forwards its own
	// transport.Message parameter into a charged-send entry point, without
	// setting the Mechanism itself, shifts the charging obligation to its
	// callers. Iterated so wrappers of wrappers resolve.
	for changed := true; changed; {
		changed = false
		for _, s := range sites {
			caller := get(s.fn)
			if caller.SendsParam != 0 {
				continue
			}
			callee := calleeFunc(pass.TypesInfo, s.call)
			if callee == nil {
				continue
			}
			cf := imported(callee)
			if cf.SendsParam == 0 || int(cf.SendsParam) > len(s.call.Args) {
				continue
			}
			arg := ast.Unparen(s.call.Args[cf.SendsParam-1])
			idx := paramIndexOf(pass, s.sig, arg)
			if idx < 0 {
				continue
			}
			if messageCharged(pass, s.body, arg) {
				continue
			}
			if noRawAt(s.call.Pos()) {
				// An annotated forwarding funnel relays pre-charged
				// traffic; its callers owe nothing.
				continue
			}
			caller.SendsParam = int8(idx + 1)
			changed = true
		}
	}

	// Export non-empty summaries.
	fns := make([]*types.Func, 0, len(local))
	for fn := range local {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		ff := local[fn]
		if ff.empty() || fn.Pkg() != pass.Pkg {
			continue
		}
		sort.Strings(ff.Locks)
		pass.ExportObjectFact(fn, ff)
	}
	return &SummaryIndex{pass: pass, local: local}, nil
}

// paramIndexOf reports which parameter of sig the expression refers to, or
// -1. Only plain identifier references count: anything rebound or copied is
// the function's own responsibility to charge.
func paramIndexOf(pass *analysis.Pass, sig *types.Signature, e ast.Expr) int {
	id, ok := e.(*ast.Ident)
	if !ok || sig == nil {
		return -1
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// lookupMethod finds a method (or interface method) recv.name, or a
// package-level function when recv is empty, in pkg's scope.
func lookupMethod(pkg *types.Package, recv, name string) *types.Func {
	if recv == "" {
		fn, _ := pkg.Scope().Lookup(name).(*types.Func)
		return fn
	}
	tn, ok := pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumExplicitMethods(); i++ {
			if m := iface.ExplicitMethod(i); m.Name() == name {
				return m
			}
		}
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// hasDeprecatedDoc reports whether a doc comment carries the conventional
// "Deprecated:" paragraph marker.
func hasDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}

// seedAnnotations applies //crew:blocks and //crew:allocs annotations on
// function declarations and interface method declarations.
func seedAnnotations(pass *analysis.Pass, get func(*types.Func) *FuncFacts) {
	apply := func(fn *types.Func, groups ...*ast.CommentGroup) {
		if fn == nil {
			return
		}
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				switch {
				case strings.HasPrefix(text, "crew:blocks"):
					get(fn).Blocks = true
				case strings.HasPrefix(text, "crew:allocs"):
					get(fn).Allocs = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.TypesInfo.ObjectOf(d.Name).(*types.Func)
				apply(fn, d.Doc)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							fn, _ := pass.TypesInfo.ObjectOf(name).(*types.Func)
							apply(fn, m.Doc, m.Comment)
						}
					}
				}
			}
		}
	}
}

// directAttrs scans one function body (excluding nested function literals
// and the bodies of `go` statements' immediate calls) for direct summary
// attributes, setting ff's bits and invoking onCall for every call
// expression that should contribute callee facts.
func directAttrs(pass *analysis.Pass, body *ast.BlockStmt, ff *FuncFacts, onCall func(*ast.CallExpr)) {
	// Comm clauses of selects with a default never block.
	type posRange struct{ from, to token.Pos }
	var nonBlocking []posRange
	inNonBlockingComm := func(pos token.Pos) bool {
		for _, r := range nonBlocking {
			if pos >= r.from && pos < r.to {
				return true
			}
		}
		return false
	}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // nested functions summarize on their own
		case *ast.GoStmt:
			goCalls[st.Call] = true
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						nonBlocking = append(nonBlocking, posRange{cc.Comm.Pos(), cc.Comm.End()})
					}
				}
			} else {
				ff.Blocks = true
			}
		case *ast.SendStmt:
			if !inNonBlockingComm(st.Pos()) {
				ff.Blocks = true
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !inNonBlockingComm(st.Pos()) {
				ff.Blocks = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(st.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ff.Blocks = true
				}
			}
		case *ast.CallExpr:
			if goCalls[st] {
				// The spawned goroutine's behavior is its own; nested
				// argument expressions still evaluate on this goroutine
				// and are visited as separate nodes.
				return true
			}
			if ev, ok := lockEventOf(pass, st); ok {
				if !ev.unlock && ev.class != "" {
					if !containsString(ff.Locks, ev.class) {
						ff.Locks = append(ff.Locks, ev.class)
					}
				}
				return true
			}
			if k, ok := calleeKey(pass.TypesInfo, st); ok && blockingRoots[k] {
				ff.Blocks = true
				return true
			}
			onCall(st)
		}
		return true
	})
	for _, s := range allocSites(pass, body) {
		if !exempted(pass, s.pos, "hotalloc") {
			ff.Allocs = true
			break
		}
	}
}

// allocSite is one construct that may allocate (or, for map ranges, that is
// banned from hot paths for order and cache behavior).
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites scans a function body for direct allocation constructs. It is
// shared between the summary layer (the Allocs bit) and the hotalloc
// analyzer (which reports each site inside a //crew:hotpath function).
// Nested function literals are scanned by their own enclosing summary; here
// only the literal's creation (a capturing closure) is charged.
func allocSites(pass *analysis.Pass, body *ast.BlockStmt) []allocSite {
	var sites []allocSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, allocSite{pos, what})
	}
	var inspectSkippingLits func(n ast.Node) bool
	inspectSkippingLits = func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(pass, st) {
				add(st.Pos(), "capturing closure")
			}
			return false
		case *ast.GoStmt:
			add(st.Pos(), "goroutine spawn")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(st.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					add(st.Pos(), "map iteration")
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(st); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					add(st.Pos(), "map literal")
				case *types.Slice:
					add(st.Pos(), "slice literal")
				}
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				if _, ok := ast.Unparen(st.X).(*ast.CompositeLit); ok {
					add(st.Pos(), "heap-allocated composite literal (&T{...})")
				}
			}
		case *ast.BinaryExpr:
			if st.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(st); t != nil && isStringType(t) {
					if tv, ok := pass.TypesInfo.Types[st]; !ok || tv.Value == nil {
						add(st.Pos(), "string concatenation")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
				switch pass.TypesInfo.ObjectOf(id) {
				case types.Universe.Lookup("make"):
					add(st.Pos(), "make")
					return true
				case types.Universe.Lookup("new"):
					add(st.Pos(), "new")
					return true
				}
			}
			if k, ok := calleeKey(pass.TypesInfo, st); ok && allocRootPkgs[k.pkg] {
				what := k.pkg + "." + k.name
				if k.recv != "" {
					what = k.pkg + "." + k.recv + "." + k.name
				}
				add(st.Pos(), "call to "+what)
				// The call is already a site; don't also flag each boxed
				// ...any argument of the same expression.
				return true
			}
			// Conversions to an interface type box their operand.
			if len(st.Args) == 1 {
				if t := pass.TypesInfo.TypeOf(st.Fun); t != nil {
					if tv, ok := pass.TypesInfo.Types[st.Fun]; ok && tv.IsType() {
						if ifaceDest(t) {
							if boxes(pass, st.Args[0]) {
								add(st.Pos(), "interface boxing (conversion)")
							}
						}
					}
				}
			}
			// Arguments boxed into interface parameters of a static callee.
			if fn := typeutil.StaticCallee(pass.TypesInfo, st); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok {
					checkBoxedArgs(pass, st, sig, add)
				}
			}
		case *ast.KeyValueExpr:
			// Struct literal fields of interface type (e.g. Payload: v).
			if t := pass.TypesInfo.TypeOf(st.Key); t == nil {
				if key, ok := st.Key.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(key); obj != nil {
						if ifaceDest(obj.Type()) && boxes(pass, st.Value) {
							add(st.Value.Pos(), "interface boxing (field "+key.Name+")")
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				lt := pass.TypesInfo.TypeOf(lhs)
				if lt == nil {
					continue
				}
				if ifaceDest(lt) && boxes(pass, st.Rhs[i]) {
					add(st.Rhs[i].Pos(), "interface boxing (assignment)")
				}
			}
		}
		return true
	}
	ast.Inspect(body, inspectSkippingLits)
	return sites
}

// checkBoxedArgs flags arguments whose concrete values are boxed into
// interface-typed parameters (including variadic ...any tails).
func checkBoxedArgs(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string)) {
	if call.Ellipsis.IsValid() {
		return // forwarding a slice: no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if ifaceDest(pt) && boxes(pass, arg) {
			add(arg.Pos(), "interface boxing (argument)")
		}
	}
}

// boxes reports whether assigning e to an interface-typed destination
// allocates: the operand is a non-constant, non-nil concrete value whose
// representation is not pointer-shaped. Pointers, channels, maps, funcs and
// values already held in interfaces convert without allocating.
func boxes(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil || tv.IsNil() {
		return false // constants (runtime-cached or compile-time) and nil
	}
	if _, ok := types.Unalias(tv.Type).(*types.TypeParam); ok {
		return false // stenciled per shape; identical-type-param moves don't box
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Struct:
		if st := tv.Type.Underlying().(*types.Struct); st.NumFields() == 0 {
			return false // zero-size
		}
	case *types.Tuple:
		return false // multi-value RHS (comma-ok, multi-return): not a conversion operand
	}
	return true
}

// ifaceDest reports whether t is a genuine interface destination for boxing
// purposes. Type parameters are excluded: their underlying type is the
// constraint interface, but generic instantiations move values of one
// identical type, not interface conversions.
func ifaceDest(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturesOuter reports whether a function literal references variables
// declared outside it — the capture that forces a heap-allocated closure.
func capturesOuter(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent() != types.Universe && v.Pkg() == pass.Pkg {
			// Declared in some scope; captured if that scope is outside
			// the literal.
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				if v.Parent() != v.Pkg().Scope() { // package vars are not captures
					captured = true
				}
			}
		}
		return true
	})
	return captured
}
