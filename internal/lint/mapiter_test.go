package lint

import "testing"

func TestMapIter(t *testing.T) {
	runLintTest(t, MapIter, "mapiter_a")
}
