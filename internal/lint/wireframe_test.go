package lint

import "testing"

func TestWireFrame(t *testing.T) {
	runLintTest(t, WireFrame, "wireframe_a")
}
