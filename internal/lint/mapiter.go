package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// mapIterSinks are the observable-order sinks: transport sends (message
// order is charged and traced), event posts, WAL/store writes, and direct
// printing. A map iteration that reaches one of these makes externally
// visible output depend on Go's randomized map order, which breaks replay
// and the byte-identical benchdiff comparisons.
var mapIterSinks = map[methodKey]bool{
	{pkg: transportPath, recv: "Handle", name: "Send"}:            true,
	{pkg: transportPath, recv: "Network", name: "Send"}:           true,
	{pkg: transportPath, recv: "Handle", name: "SendBatch"}:       true,
	{pkg: transportPath, recv: "Batcher", name: "Add"}:            true,
	{pkg: "crew/internal/event", recv: "Table", name: "Post"}:     true,
	{pkg: "crew/internal/store", recv: "Store", name: "Put"}:      true,
	{pkg: "crew/internal/store", recv: "Store", name: "PutJSON"}:  true,
	{pkg: "crew/internal/store", recv: "Store", name: "Delete"}:   true,
	{pkg: "crew/internal/wfdb", recv: "DB", name: "SaveInstance"}: true,
	{pkg: "crew/internal/wfdb", recv: "DB", name: "SaveSummary"}:  true,
	{pkg: "crew/internal/wfdb", recv: "DB", name: "Archive"}:      true,
	{pkg: "fmt", name: "Print"}:                                   true,
	{pkg: "fmt", name: "Printf"}:                                  true,
	{pkg: "fmt", name: "Println"}:                                 true,
	{pkg: "fmt", name: "Fprint"}:                                  true,
	{pkg: "fmt", name: "Fprintf"}:                                 true,
	{pkg: "fmt", name: "Fprintln"}:                                true,
}

// MapIter reports `range` statements over maps whose bodies reach — directly
// or transitively through same-package calls — a message emission, event
// post, WAL write, or print. Go randomizes map iteration order per run, so
// any such loop produces a nondeterministic observable sequence; the fix is
// to iterate a sorted copy of the keys. Loops whose output order genuinely
// does not matter are silenced with //crew:allow mapiter <reason>.
var MapIter = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "forbid map iteration that feeds message emission, traces, or WAL writes without sorting",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapIter,
}

func runMapIter(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: which functions declared in this package emit, directly or
	// through same-package calls? Computed as a fixed point over the static
	// call graph restricted to this package.
	emits := map[*types.Func]bool{}
	callees := map[*types.Func][]*types.Func{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
		if !ok {
			return
		}
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if mapIterSinkCall(pass, call) {
				emits[fn] = true
				return true
			}
			if callee := samePackageCallee(pass, call); callee != nil {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
	})
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if emits[fn] {
				continue
			}
			for _, c := range cs {
				if emits[c] {
					emits[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 2: flag map-range bodies that reach a sink.
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rng := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return
		}
		if inTestFile(pass, rng.Pos()) {
			return
		}
		var sink string
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			if sink != "" {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if mapIterSinkCall(pass, call) {
				k, _ := calleeKey(pass.TypesInfo, call)
				sink = k.name
				if k.recv != "" {
					sink = k.recv + "." + sink
				}
				return false
			}
			if callee := samePackageCallee(pass, call); callee != nil && emits[callee] {
				sink = callee.Name() + " (which emits transitively)"
				return false
			}
			return true
		})
		if sink != "" && !exempted(pass, rng.Pos(), "mapiter") {
			pass.Reportf(rng.Pos(), "map iteration feeds %s: map order is randomized per run, making the emitted sequence nondeterministic (iterate a sorted copy of the keys or annotate //crew:allow mapiter <reason>)", sink)
		}
	})
	return nil, nil
}

// mapIterSinkCall reports whether call resolves statically to a known sink.
func mapIterSinkCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	k, ok := calleeKey(pass.TypesInfo, call)
	return ok && mapIterSinks[k]
}

// samePackageCallee resolves call to a function declared in the package
// under analysis, or nil.
func samePackageCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := typeutilStaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}
