package lint

import (
	"flag"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// errWrapFlags lets a driver widen the API surface under check, mainly so
// the analyzer tests can point it at a testdata package:
// -errwrap.packages=pkg1,pkg2 adds to the default root package.
var errWrapFlags flag.FlagSet
var errWrapExtraPackages = errWrapFlags.String("packages", "", "comma-separated extra package paths treated as API surface")

// ErrWrap enforces the typed-error contract of the public API: exported
// functions and methods of the root crew package that return an error must
// not manufacture naked errors. Callers are promised errors.Is matching
// against the internal/cerrors sentinels (ErrUnknownWorkflow, ErrTimeout,
// ErrClosed, ...), so a `return errors.New(...)` or a fmt.Errorf whose
// format string has no %w verb silently breaks every errors.Is site. The
// analyzer flags such returns; the fix is to wrap a sentinel
// (`fmt.Errorf("%w: detail", cerrors.ErrX)`) or add one.
var ErrWrap = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      "exported API functions must return errors wrapping a cerrors sentinel, not naked errors",
	Flags:    errWrapFlags,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrWrap,
}

func runErrWrap(pass *analysis.Pass) (any, error) {
	if !errWrapAPIPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass, fd.Pos()) {
			return
		}
		if !errWrapExportedAPI(fd) {
			return
		}
		if !funcReturnsError(pass, fd) {
			return
		}
		checkErrWrapBody(pass, fd.Body)
	})
	return nil, nil
}

// errWrapAPIPackage reports whether the pass's package is part of the
// checked API surface: the root module package ("crew") or one added via
// -errwrap.packages.
func errWrapAPIPackage(pass *analysis.Pass) bool {
	if pass.Pkg.Path() == "crew" {
		return true
	}
	for _, p := range strings.Split(*errWrapExtraPackages, ",") {
		if p != "" && p == pass.Pkg.Path() {
			return true
		}
	}
	return false
}

// errWrapExportedAPI reports whether fd is part of the exported API:
// an exported function, or an exported method on an exported receiver type.
func errWrapExportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// funcReturnsError reports whether fd's signature has an error result.
func funcReturnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj := pass.TypesInfo.ObjectOf(fd.Name)
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// checkErrWrapBody flags return statements (and error-typed assignments
// feeding them is out of scope — the check is syntactic on returns) whose
// expressions construct a naked error.
func checkErrWrapBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are not the API return path per se
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				continue
			}
			k, ok := calleeKey(pass.TypesInfo, call)
			if !ok || k.recv != "" {
				continue
			}
			switch {
			case k.pkg == "errors" && k.name == "New":
				if !exempted(pass, call.Pos(), "errwrap") {
					pass.Reportf(call.Pos(), "naked errors.New on exported API path: callers cannot errors.Is-match this (wrap a cerrors sentinel with fmt.Errorf(\"%%w: ...\", cerrors.ErrX) or annotate //crew:allow errwrap <reason>)")
				}
			case k.pkg == "fmt" && k.name == "Errorf":
				if len(call.Args) == 0 {
					continue
				}
				format, known := constStringValue(pass, call.Args[0])
				if known && !strings.Contains(format, "%w") && !exempted(pass, call.Pos(), "errwrap") {
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w on exported API path: callers cannot errors.Is-match this (wrap a cerrors sentinel or annotate //crew:allow errwrap <reason>)")
				}
			}
		}
		return true
	})
}

// constStringValue evaluates e as a compile-time string constant.
func constStringValue(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
