package lint

import "testing"

func TestErrWrap(t *testing.T) {
	runLintTest(t, ErrWrap, "crew")
}

func TestErrWrapIgnoresNonAPIPackages(t *testing.T) {
	// A package outside the API surface may return errors however it
	// likes: the store stub returns plain nils and carries no want
	// comments, so the test asserts zero diagnostics.
	runLintTest(t, ErrWrap, "crew/internal/store")
}
