package lint

// wireframe enforces wire-protocol exhaustiveness. The frame set
// (HELLO/WELCOME/MSG/ACK/CRASH/RECOVER/EXEC) and the RegisterPayload
// registry are the transport's extension points, and both fail open at
// runtime: an unknown frame type falls through a switch and is silently
// dropped, an unhandled payload decodes fine and then matches no
// type-switch arm. Both failure modes have already cost debugging time in
// distributed systems exactly like the paper's; this analyzer turns them
// into lint errors at the commit that introduces the new frame or payload.
//
// Two checks:
//
//  1. Frame constants (package-level constants named frame*, of an integer
//     type) must each have at least one encode use (a non-comparison use:
//     passed to appendFrame, assigned, returned) and at least one dispatch
//     arm (a switch case or ==/!= comparison). And every switch statement
//     that dispatches on frame constants must be exhaustive: cover every
//     frame constant or carry a default clause that handles the unknown
//     frame explicitly.
//
//  2. Every type registered with transport.RegisterPayload must have a
//     handler arm — a type-switch case or type assertion — in the
//     registering package. A payload handled in another package (e.g. a
//     frontend consuming events it does not itself produce) declares that
//     with //crew:allow wireframe <reason> on the registration line.
import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var WireFrame = &analysis.Analyzer{
	Name:     "wireframe",
	Doc:      "every wire frame type and registered payload must have encode, dispatch, and handler arms",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWireFrame,
}

func runWireFrame(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	checkFrameConsts(pass, ins)
	checkRegisteredPayloads(pass, ins)
	return nil, nil
}

// frameConstsOf collects the package's frame-type constants: package-level
// constants of an integer type whose name starts with "frame".
func frameConstsOf(pass *analysis.Pass) []*types.Const {
	var consts []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "frame") || name == "frame" {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	return consts
}

func checkFrameConsts(pass *analysis.Pass, ins *inspector.Inspector) {
	consts := frameConstsOf(pass)
	if len(consts) == 0 {
		return
	}
	frameSet := map[types.Object]bool{}
	for _, c := range consts {
		frameSet[c] = true
	}
	frameOf := func(e ast.Expr) *types.Const {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && frameSet[c] {
			return c
		}
		return nil
	}

	encoded := map[types.Object]bool{}
	dispatched := map[types.Object]bool{}

	// Switch statements dispatching on frame constants: record coverage and
	// require exhaustiveness (all frames or a default clause).
	ins.Preorder([]ast.Node{(*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		sw := n.(*ast.SwitchStmt)
		covered := map[types.Object]bool{}
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				if c := frameOf(e); c != nil {
					covered[c] = true
					dispatched[c] = true
				}
			}
		}
		if len(covered) == 0 || hasDefault {
			return
		}
		var missing []string
		for _, c := range consts {
			if !covered[c] {
				missing = append(missing, c.Name())
			}
		}
		if len(missing) == 0 {
			return
		}
		if exempted(pass, sw.Pos(), "wireframe") {
			return
		}
		pass.Reportf(sw.Pos(), "frame switch is not exhaustive: no arm for %s and no default — an unknown frame would be silently dropped (add arms or a default that rejects it)", strings.Join(missing, ", "))
	})

	// Remaining uses: comparisons are dispatch arms, anything else is an
	// encode-side use.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		c, ok := pass.TypesInfo.Uses[n.(*ast.Ident)].(*types.Const)
		if !ok || !frameSet[c] {
			return true
		}
		// The ident itself is stack[len-1]; its parent decides the role.
		var parent ast.Node
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch p := parent.(type) {
		case *ast.CaseClause:
			// Already counted by the switch pass.
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				dispatched[c] = true
			} else {
				encoded[c] = true
			}
		default:
			encoded[c] = true
		}
		return true
	})

	for _, c := range consts {
		if exempted(pass, c.Pos(), "wireframe") {
			continue
		}
		if !encoded[c] {
			pass.Reportf(c.Pos(), "frame %s is never encoded: no send-side use in this package (dead protocol arm, or the writer is missing)", c.Name())
		}
		if !dispatched[c] {
			pass.Reportf(c.Pos(), "frame %s has no dispatch arm: no switch case or comparison consumes it, so a peer sending it would be silently dropped", c.Name())
		}
	}
}

// checkRegisteredPayloads requires a handler arm in the registering package
// for every transport.RegisterPayload prototype.
func checkRegisteredPayloads(pass *analysis.Pass, ins *inspector.Inspector) {
	// Handler arms: type-switch cases and type assertions, normalized to
	// the named type (pointers dereferenced).
	handled := map[*types.TypeName]bool{}
	noteType := func(e ast.Expr) {
		if e == nil {
			return
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return
		}
		if n := namedOrPointerTo(t); n != nil {
			handled[n.Obj()] = true
		}
	}
	ins.Preorder([]ast.Node{(*ast.TypeSwitchStmt)(nil), (*ast.TypeAssertExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.TypeSwitchStmt:
			for _, stmt := range st.Body.List {
				if cc, ok := stmt.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						noteType(e)
					}
				}
			}
		case *ast.TypeAssertExpr:
			noteType(st.Type) // nil Type (x.(type)) is the switch guard, skipped
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		k, ok := calleeKey(pass.TypesInfo, call)
		if !ok || k != (methodKey{pkg: transportPath, name: "RegisterPayload"}) {
			return
		}
		for _, arg := range call.Args {
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil {
				continue
			}
			n := namedOrPointerTo(t)
			if n == nil {
				continue
			}
			tn := n.Obj()
			if handled[tn] {
				continue
			}
			if exempted(pass, arg.Pos(), "wireframe") || exempted(pass, call.Pos(), "wireframe") {
				continue
			}
			pass.Reportf(arg.Pos(), "payload %s is registered for the wire but has no handler arm (type-switch case or type assertion) in this package — a peer sending it would decode and then be dropped (handle it, or annotate //crew:allow wireframe <reason> naming the package that does)", tn.Name())
		}
	})
}
