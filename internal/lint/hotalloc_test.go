package lint

import "testing"

func TestHotAlloc(t *testing.T) {
	runLintTest(t, HotAlloc, "hotalloc_a")
}
