// Package lint implements crewlint, a go/analysis suite that mechanically
// enforces the repository's concurrency, determinism, and accounting
// invariants. Each analyzer maps to a documented DESIGN.md invariant (see
// the "Statically enforced invariants" section there):
//
//   - detclock: no wall-clock reads or unseeded math/rand in deterministic
//     packages (model, rules, analysis, itable, faults).
//   - chargedsend: every transport Send/SendBatch/Batcher.Add call site
//     must set the Message's Mechanism explicitly (the static guard for the
//     byte-identical Tables 4-6 msgs/load accounting) or carry a
//     //crew:nocharge annotation.
//   - locksend: no channel operation or known-blocking call while a mutex
//     is held in the same function body (deadlock prevention for the
//     itable/store shard locks and the engine command queues).
//   - errwrap: exported functions of the root crew package must not return
//     naked errors.New / fmt.Errorf-without-%w errors; API errors wrap an
//     internal/cerrors sentinel.
//   - mapiter: no range over a map whose body (transitively, within the
//     package) emits messages, posts events, or writes the WAL — map
//     iteration order is nondeterministic and breaks replay and benchdiff
//     comparisons; iterate a sorted copy instead.
//   - lockorder: global mutex-acquisition-order graph across packages;
//     reports cycles (potential deadlocks) and acquisitions violating a
//     declared //crew:lockrank ordering.
//   - wireframe: wire-protocol exhaustiveness — every frame type and every
//     RegisterPayload-registered payload must have encode, decode, and
//     handler arms, so adding a frame without handling it is a lint error,
//     not a runtime drop.
//   - hotalloc: //crew:hotpath functions must be allocation-free — no map
//     range, no fmt, no interface boxing, no escaping closure capture,
//     directly or through anything they call.
//   - deprecated: no calls to functions whose doc comment carries a
//     "Deprecated:" marker (e.g. transport.New).
//
// The suite is interprocedural: a shared fact layer (see facts.go) exports
// a per-function summary — may it block, may it allocate, which lock
// classes does it acquire, does it put a message on the transport — and
// chargedsend, locksend, lockorder, and hotalloc consume the summaries, so
// the invariants follow invariant-relevant behavior through wrappers,
// across package boundaries, and through interface dispatch
// (transport.Link.Deliver is seeded) instead of pattern-matching a fixed
// list of direct callees.
//
// False positives are silenced in place with an annotation comment on the
// offending line or the line directly above it:
//
//	//crew:nocharge <reason>          (chargedsend only)
//	//crew:allow <analyzer> <reason>  (any analyzer)
//
// Behavior that the analysis cannot see is declared where it lives:
//
//	//crew:blocks                 on a func or interface method: may park
//	//crew:allocs                 on a func or interface method: allocates
//	//crew:hotpath                on a func: must be allocation-free
//	//crew:lockrank <n>           on a mutex field/var: acquisition rank
//
// The annotation must carry a non-empty reason; a bare annotation is itself
// reported. The suite runs as a go vet tool: `go run ./cmd/crewlint ./...`.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzers is the full crewlint suite in stable presentation order. The
// Summaries fact analyzer is not listed: it reports nothing and runs
// automatically as a dependency of the analyzers that consume its facts.
var Analyzers = []*analysis.Analyzer{
	DetClock,
	ChargedSend,
	LockSend,
	ErrWrap,
	MapIter,
	LockOrder,
	WireFrame,
	HotAlloc,
	Deprecated,
}

// transportPath is the import path of the simulated messaging layer whose
// send entry points chargedsend and mapiter guard.
const transportPath = "crew/internal/transport"

// methodKey names a function or method by package path, receiver type name
// (empty for package-level functions), and name.
type methodKey struct {
	pkg  string
	recv string
	name string
}

// typeutilStaticCallee resolves a call to its statically known *types.Func,
// or nil for dynamic calls and builtins.
func typeutilStaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(info, call)
}

// calleeKey resolves a call expression to the methodKey of its static
// callee, or ok=false for dynamic calls (interface methods, function
// values) and builtins.
func calleeKey(info *types.Info, call *ast.CallExpr) (methodKey, bool) {
	fn := typeutil.StaticCallee(info, call)
	if fn == nil {
		return methodKey{}, false
	}
	k := methodKey{name: fn.Name()}
	if fn.Pkg() != nil {
		k.pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			k.recv = n.Obj().Name()
			if n.Obj().Pkg() != nil {
				k.pkg = n.Obj().Pkg().Path()
			}
		}
	}
	return k, true
}

// fileFor returns the *ast.File of the pass containing pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// exempted reports whether the line containing pos, or the line directly
// above it, carries an annotation silencing the named analyzer:
//
//	//crew:nocharge <reason>            (analyzer "chargedsend")
//	//crew:allow <analyzer> <reason>
//
// An annotation without a reason does not exempt anything; instead it is
// reported so stale or lazy annotations cannot accumulate.
func exempted(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	return exemptionFor(pass, pos, analyzer, true)
}

// exemptedQuiet is exempted without the bare-annotation diagnostic: the
// summary fact pass consults annotations at every call site, and reporting
// belongs to the analyzers that flag the sites.
func exemptedQuiet(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	return exemptionFor(pass, pos, analyzer, false)
}

func exemptionFor(pass *analysis.Pass, pos token.Pos, analyzer string, report bool) bool {
	f := fileFor(pass, pos)
	if f == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cl := pass.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var reason string
			switch {
			case strings.HasPrefix(text, "crew:nocharge"):
				if analyzer != "chargedsend" {
					continue
				}
				reason = strings.TrimSpace(strings.TrimPrefix(text, "crew:nocharge"))
			case strings.HasPrefix(text, "crew:allow"):
				rest := strings.TrimSpace(strings.TrimPrefix(text, "crew:allow"))
				name, r, _ := strings.Cut(rest, " ")
				if name != analyzer {
					continue
				}
				reason = strings.TrimSpace(r)
			default:
				continue
			}
			if reason == "" {
				if report {
					pass.Reportf(pos, "crew annotation needs a reason: %s", text)
				}
				continue
			}
			return true
		}
	}
	return false
}

// funcDisplayName renders a function for diagnostics: "Type.Name" for
// methods (including interface methods), "Name" otherwise.
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOrPointerTo(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// inTestFile reports whether pos is inside a _test.go file.
func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// namedOrPointerTo unwraps pointers and returns the named type, if any.
func namedOrPointerTo(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkg.name.
func isNamedType(t types.Type, pkg, name string) bool {
	n := namedOrPointerTo(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}
