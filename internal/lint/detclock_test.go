package lint

import "testing"

func TestDetClock(t *testing.T) {
	runLintTest(t, DetClock, "crew/internal/model")
}
