package lint

import "testing"

func TestDeprecated(t *testing.T) {
	runLintTest(t, Deprecated, "deprecated_a")
}
