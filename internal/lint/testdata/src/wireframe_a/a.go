// Package wireframe_a seeds wireframe violations: frame constants without
// encode or dispatch arms, non-exhaustive frame switches, and registered
// payloads without handler arms.
package wireframe_a

import "crew/internal/transport"

const (
	frameMsg byte = iota + 1
	frameHello
	framePing
	frameOrphan // want "frame frameOrphan is never encoded" "frame frameOrphan has no dispatch arm"
)

func encode(buf []byte, typ byte) []byte { return append(buf, typ) }

func send(buf []byte) []byte {
	buf = encode(buf, frameMsg)
	buf = encode(buf, frameHello)
	return encode(buf, framePing)
}

// isPing dispatches framePing by comparison.
func isPing(typ byte) bool { return typ == framePing }

func dispatchWithDefault(typ byte) int {
	switch typ { // ok: a default handles unknown frames
	case frameMsg:
		return 1
	default:
		return 0
	}
}

func dispatchMissing(typ byte) int {
	switch typ { // want "frame switch is not exhaustive"
	case frameMsg:
		return 1
	case frameHello:
		return 2
	}
	return 0
}

func dispatchAllowed(typ byte) int {
	//crew:allow wireframe fixture: peer only ever sends Msg here
	switch typ {
	case frameMsg:
		return 1
	}
	return 0
}

// --- payload registry -------------------------------------------------------

type Handled struct{ N int }

type Orphan struct{ N int }

type External struct{ N int }

func init() {
	transport.RegisterPayload(Handled{}, &Orphan{}) // want "payload Orphan is registered for the wire but has no handler arm"
	//crew:allow wireframe consumed by the frontend package, not here
	transport.RegisterPayload(External{})
}

func handle(p any) int {
	switch p.(type) {
	case Handled, *Handled:
		return 1
	}
	return 0
}
