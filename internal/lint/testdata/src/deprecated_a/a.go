// Package deprecated_a seeds deprecated-call violations against the stub
// transport package (cross-package, via the Deprecated summary fact) and a
// local deprecated function.
package deprecated_a

import "crew/internal/transport"

func fresh() *transport.Network {
	return transport.NewNetwork() // ok
}

func stale() *transport.Network {
	return transport.New() // want "call to deprecated function transport.New"
}

func allowedStale() *transport.Network {
	//crew:allow deprecated exercising the legacy shim on purpose
	return transport.New()
}

// Deprecated: use fresh.
func localOld() {}

func callsLocalOld() {
	localOld() // want "call to deprecated function localOld"
}
