// Package lockorder_a seeds lockorder violations: in-package acquisition
// cycles, cycles closed through a callee's lock summary, cycles against an
// ordering established in an imported package, and //crew:lockrank
// violations.
package lockorder_a

import (
	"sync"

	"lockorder_dep"
)

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

func ab(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want "lock-order cycle"
	y.mu.Unlock()
	x.mu.Unlock()
}

func ba(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want "lock-order cycle"
	x.mu.Unlock()
	y.mu.Unlock()
}

// --- cycle closed through a callee's lock summary -------------------------

type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

// lockD's summary carries "acquires d.mu".
func lockD(y *d) {
	y.mu.Lock()
	y.mu.Unlock()
}

func cd(x *c, y *d) {
	x.mu.Lock()
	lockD(y) // want "lock-order cycle"
	x.mu.Unlock()
}

func dc(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock() // want "lock-order cycle"
	x.mu.Unlock()
	y.mu.Unlock()
}

// --- cycle against an imported package's ordering -------------------------

func crossPackage(f *lockorder_dep.First, s *lockorder_dep.Second) {
	s.Mu.Lock()
	f.Mu.Lock() // want "lock-order cycle"
	f.Mu.Unlock()
	s.Mu.Unlock()
}

// --- declared rank ordering ------------------------------------------------

type ranked struct {
	low  sync.Mutex //crew:lockrank 10
	high sync.Mutex //crew:lockrank 20
}

func rankViolation(r *ranked) {
	r.high.Lock()
	r.low.Lock() // want "lock rank violation"
	r.low.Unlock()
	r.high.Unlock()
}

func rankAllowed(r *ranked) {
	r.high.Lock()
	//crew:allow lockorder fixture: init-time only, no concurrent holders
	r.low.Lock()
	r.low.Unlock()
	r.high.Unlock()
}

// rankOrdered acquires a different pair in declared order: no report, and
// no reverse edge anywhere, so no cycle either.
type orderedPair struct {
	first  sync.Mutex //crew:lockrank 1
	second sync.Mutex //crew:lockrank 2
}

func rankOrdered(p *orderedPair) {
	p.first.Lock()
	p.second.Lock() // ok: strictly increasing
	p.second.Unlock()
	p.first.Unlock()
}

// --- read-read nesting is shared, not an ordering --------------------------

type shared struct{ rw sync.RWMutex }

func readers(s *shared) {
	s.rw.RLock()
	s.rw.RLock() // ok: read-read nesting of one class
	s.rw.RUnlock()
	s.rw.RUnlock()
}
