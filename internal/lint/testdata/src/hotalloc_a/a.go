// Package hotalloc_a seeds hotalloc violations: direct allocation sites in
// //crew:hotpath functions, and calls to functions whose summary says they
// may allocate.
package hotalloc_a

import "fmt"

type table struct {
	m    map[string]int
	vals []int
}

//crew:hotpath
func (t *table) hotDirect() string {
	for k := range t.m { // want "map iteration"
		_ = k
	}
	return fmt.Sprintf("%d", len(t.vals)) // want "call to fmt.Sprintf"
}

func consume(v any) {}

//crew:hotpath
func hotBoxing(n int) {
	consume(n) // want "interface boxing"
}

//crew:hotpath
func hotBoxingPointer(t *table) {
	consume(t) // ok: pointers convert to interface without allocating
}

//crew:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want "capturing closure"
}

//crew:hotpath
func hotPlainFunc() func() int {
	return func() int { return 7 } // ok: captures nothing
}

//crew:hotpath
func hotMake() []int {
	return make([]int, 4) // want "make"
}

//crew:hotpath
func hotLiteral() *table {
	return &table{} // want "heap-allocated composite literal"
}

//crew:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//crew:hotpath
func hotSpawn(t *table) {
	go hotMake() // want "goroutine spawn"
}

//crew:hotpath
func hotAppend(t *table, v int) {
	t.vals = append(t.vals, v) // ok: amortized growth is budgeted dynamically
}

// slowHelper allocates; its summary taints hot callers.
func slowHelper() string {
	return fmt.Sprintf("x")
}

//crew:hotpath
func hotCallsSlow() {
	_ = slowHelper() // want "call to slowHelper, which may allocate"
}

// coldWithAllowance allocates only on an annotated error branch, so its
// summary stays clean.
func coldWithAllowance(fail bool) error {
	if fail {
		//crew:allow hotalloc error path runs once per failure
		return fmt.Errorf("failed")
	}
	return nil
}

//crew:hotpath
func hotCallsAnnotated(fail bool) error {
	return coldWithAllowance(fail) // ok: exempted site does not poison the summary
}

//crew:hotpath
func hotAllowedSite() []int {
	//crew:allow hotalloc one-time warm-up growth
	return make([]int, 8)
}

// coldEdge calls an allocating helper on an annotated cold branch; the
// exempted call edge does not taint its summary, so hot callers stay clean.
func coldEdge(fail bool) string {
	if fail {
		//crew:allow hotalloc failure path only
		return slowHelper()
	}
	return ""
}

//crew:hotpath
func hotCallsColdEdge() string {
	return coldEdge(false) // ok: the allocating edge inside coldEdge is exempted
}

// Type-parameter moves are stenciled per shape, not interface conversions.
type genericMap[V any] struct{ m map[string]V }

//crew:hotpath
func getGeneric[V any](g *genericMap[V], k string) (V, bool) {
	v, ok := g.m[k] // ok: comma-ok read of a type-parameter value
	return v, ok
}
