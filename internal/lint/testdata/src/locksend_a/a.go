// Package locksend_a seeds locksend violations: channel ops and blocking
// calls inside mutex-held regions.
package locksend_a

import (
	"sync"
	"time"

	"crew/internal/transport"
)

type queue struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (q *queue) sendHeld() {
	q.mu.Lock()
	q.ch <- 1 // want "channel send while q.mu is locked"
	q.mu.Unlock()
}

func (q *queue) sendAfterUnlock() {
	q.mu.Lock()
	v := 1
	q.mu.Unlock()
	q.ch <- v // ok: lock released
}

func (q *queue) recvDeferred() {
	q.mu.Lock()
	defer q.mu.Unlock()
	<-q.ch // want "channel receive while q.mu is locked"
}

func (q *queue) readLocked() {
	q.rw.RLock()
	defer q.rw.RUnlock()
	for range q.ch { // want "range over channel while q.rw is locked"
	}
}

func (q *queue) nonBlockingSelect() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- 1: // ok: select has a default, never parks
	default:
	}
}

func (q *queue) blockingSelect() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "select without default while q.mu is locked"
	case q.ch <- 1:
	case <-q.ch:
	}
}

func (q *queue) blockingCalls(wg *sync.WaitGroup, net *transport.Network) {
	q.mu.Lock()
	wg.Wait()                   // want "WaitGroup.Wait while q.mu is locked"
	net.Quiesce()               // want "Network.Quiesce while q.mu is locked"
	time.Sleep(time.Nanosecond) // want "Sleep while q.mu is locked"
	q.mu.Unlock()
	net.AwaitStall() // ok: lock released
}

func (q *queue) wireCalls(c *transport.ChildConn, hub *transport.RemoteHub, l transport.Link) {
	q.mu.Lock()
	c.Serve(nil)                   // want "ChildConn.Serve while q.mu is locked"
	hub.WaitConnected()            // want "RemoteHub.WaitConnected while q.mu is locked"
	l.Deliver(transport.Message{}) // want "Link.Deliver while q.mu is locked"
	q.mu.Unlock()
	l.Deliver(transport.Message{}) // ok: lock released
}

func (q *queue) goroutineBody() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1 // ok: separate goroutine, lock not held there
	}()
}

func (q *queue) allowed() {
	q.mu.Lock()
	defer q.mu.Unlock()
	//crew:allow locksend diagnostics channel is buffered and never full
	q.ch <- 1
}
