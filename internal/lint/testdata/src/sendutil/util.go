// Package sendutil is a fixture dependency: an uncharged forwarding
// wrapper in another package, so the chargedsend tests exercise the
// cross-package SendsParam fact.
package sendutil

import "crew/internal/transport"

// Forward relays m to h without charging it: callers must set the
// Mechanism (the summary layer exports a SendsParam fact for this).
func Forward(h *transport.Handle, m transport.Message) {
	h.Send(m)
}
