// Package chargedsend_b seeds interprocedural chargedsend violations: the
// charging obligation must follow Message parameters through wrappers,
// within and across packages, and raw-wire taint must propagate through
// unannotated wrappers.
package chargedsend_b

import (
	"crew/internal/transport"
	"sendutil"
)

const mech = 2

// relay forwards its own parameter into a send without charging it: the
// obligation shifts to relay's callers via the SendsParam fact.
func relay(h *transport.Handle, m transport.Message) {
	h.Send(m) // ok: forwards own parameter, callers are checked
}

// relayCharged charges locally, so its callers owe nothing.
func relayCharged(h *transport.Handle, m transport.Message) {
	m.Mechanism = mech
	h.Send(m) // ok: charged in this function
}

func callsRelay(h *transport.Handle) {
	relay(h, transport.Message{To: 1})                  // want "uncharged transport send: relay"
	relay(h, transport.Message{To: 1, Mechanism: mech}) // ok: literal charges
	relayCharged(h, transport.Message{To: 1})           // ok: callee charges
}

// twoHops forwards through relay: the fact propagates another level.
func twoHops(h *transport.Handle, m transport.Message) {
	relay(h, m) // ok: forwards own parameter again
}

func callsTwoHops(h *transport.Handle) {
	twoHops(h, transport.Message{To: 2}) // want "uncharged transport send: twoHops"
}

func crossPackage(h *transport.Handle) {
	sendutil.Forward(h, transport.Message{To: 3})                  // want "uncharged transport send: Forward"
	sendutil.Forward(h, transport.Message{To: 3, Mechanism: mech}) // ok
}

// rawWrapper reaches Link.Deliver without an annotation, so it inherits
// the below-the-front-half taint.
func rawWrapper(l transport.Link, m transport.Message) error {
	return l.Deliver(m) // want "uncharged transport send: Link.Deliver bypasses"
}

// deliverAll is an annotated funnel: the taint stops here.
func deliverAll(l transport.Link, m transport.Message) {
	//crew:nocharge fixture funnel relays pre-charged traffic
	_ = l.Deliver(m)
}

func callsRaw(l transport.Link) {
	_ = rawWrapper(l, transport.Message{})  // want "uncharged transport send: rawWrapper bypasses"
	deliverAll(l, transport.Message{})      // ok: annotated funnel
}
