// Package locksend_b seeds interprocedural locksend violations: calls that
// only block transitively — through a local helper, through two hops, or
// through a //crew:blocks-annotated primitive in another package — while a
// mutex is held.
package locksend_b

import (
	"sync"

	"crew/internal/transport"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

// waitForSignal parks on the channel; the summary layer derives the
// "may block" fact from the receive.
func (b *box) waitForSignal() { <-b.ch }

// hop blocks only through waitForSignal.
func (b *box) hop() { b.waitForSignal() }

func (b *box) indirect() {
	b.mu.Lock()
	b.waitForSignal() // want "box.waitForSignal while b.mu is locked"
	b.mu.Unlock()
}

func (b *box) twoHops() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hop() // want "box.hop while b.mu is locked"
}

func (b *box) annotatedPrimitive(c *transport.ChildConn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.Serve(nil) // want "ChildConn.Serve while b.mu is locked"
}

func (b *box) afterUnlock() {
	b.mu.Lock()
	b.mu.Unlock()
	b.waitForSignal() // ok: lock released
}

func (b *box) spawned() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.waitForSignal() // ok: blocks its own goroutine, not the holder
}

// nonBlockingHelper never parks: no fact, no report.
func (b *box) nonBlockingHelper() int { return 1 }

func (b *box) cleanCall() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nonBlockingHelper() // ok
}
