// Package chargedsend_a seeds chargedsend violations against the stub
// transport package.
package chargedsend_a

import "crew/internal/transport"

const mechCoordination = 3

func direct(h *transport.Handle) {
	h.Send(transport.Message{To: 1, Mechanism: mechCoordination}) // ok: literal sets Mechanism
	h.Send(transport.Message{To: 1})                              // want "uncharged transport send: Handle.Send"
}

func viaVar(h *transport.Handle) {
	m := transport.Message{To: 2}
	m.Mechanism = mechCoordination
	h.Send(m) // ok: field assigned in this function
}

func viaVarLiteral(h *transport.Handle) {
	m := transport.Message{To: 2, Mechanism: mechCoordination}
	h.Send(m) // ok: construction sets Mechanism
}

func viaVarBad(h *transport.Handle) {
	m := transport.Message{To: 2, Kind: "step"}
	h.Send(m) // want "uncharged transport send: Handle.Send"
}

func batch(h *transport.Handle) {
	h.SendBatch(4) // want "uncharged transport send: Handle.SendBatch"
	//crew:nocharge fixture drains a pre-charged queue
	h.SendBatch(4) // ok: annotated
}

func batcher(b *transport.Batcher, net *transport.Network) {
	b.Add(1, transport.Message{Mechanism: mechCoordination}) // ok
	b.Add(1, transport.Message{Kind: "x"})                   // want "uncharged transport send: Batcher.Add"
	net.Send(transport.Message{Kind: "x"})                   // want "uncharged transport send: Network.Send"
}

func wirePrimitives(c *transport.ChildConn, l transport.Link) {
	c.SendMessage(transport.Message{Mechanism: mechCoordination}) // ok: forwarded message carries its charge
	c.SendMessage(transport.Message{Kind: "x"})                   // want "uncharged transport send: ChildConn.SendMessage"
	l.Deliver(transport.Message{Mechanism: mechCoordination})     // want "uncharged transport send: Link.Deliver bypasses the Network front half"
	//crew:nocharge fixture exercises the raw backend directly
	l.Deliver(transport.Message{Kind: "x"}) // ok: annotated
}
