// Package crew seeds errwrap violations: it impersonates the module root
// package, whose exported API must return sentinel-wrapping errors.
package crew

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("crew: system closed") // ok: sentinel declaration is not a return

type System struct{}

func (s *System) Wait(id string) error {
	if id == "" {
		return errors.New("empty instance id") // want "naked errors.New on exported API path"
	}
	return fmt.Errorf("%w: instance %s", ErrClosed, id) // ok: wraps a sentinel
}

func Validate(shards int) error {
	if shards < 0 {
		return fmt.Errorf("bad shard count %d", shards) // want "fmt.Errorf without %w on exported API path"
	}
	return nil
}

func Allowed() error {
	//crew:allow errwrap adapter boundary, callers match on strings by contract
	return errors.New("legacy text error")
}

func helper() error {
	return errors.New("internal detail") // ok: unexported function
}

type config struct{}

func (config) Check() error {
	return errors.New("not API surface") // ok: unexported receiver type
}
