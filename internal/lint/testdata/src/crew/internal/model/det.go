// Package model seeds detclock violations: the real crew/internal/model is
// in the analyzer's default deterministic set, and this stub borrows its
// import path.
package model

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want "wall clock in deterministic package: time.Now"
}

func Age(t time.Time) time.Duration {
	return time.Since(t) // want "wall clock in deterministic package: time.Since"
}

func Nap() {
	time.Sleep(time.Millisecond) // want "wall clock in deterministic package: time.Sleep"
}

func Jitter() int {
	return rand.Intn(8) // want "unseeded randomness in deterministic package"
}

func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicit seeded source
	return r.Intn(8)
}

func Format(d time.Duration) string {
	return d.String() // ok: duration arithmetic and formatting stay legal
}

func Allowed() time.Time {
	//crew:allow detclock startup banner timestamp, not part of replayed state
	return time.Now()
}

func Bare() time.Time {
	//crew:allow detclock
	return time.Now() // want "crew annotation needs a reason" "wall clock in deterministic package"
}
