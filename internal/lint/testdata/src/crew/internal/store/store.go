// Package store is a minimal stub of crew/internal/store for the analyzer
// tests: method names match the real WAL-backed store.
package store

type Store struct{}

func (s *Store) Put(key string, val []byte) error { return nil }
func (s *Store) PutJSON(key string, v any) error  { return nil }
func (s *Store) Delete(key string) error          { return nil }
