// Package transport is a minimal stub of crew/internal/transport for the
// analyzer tests: the method sets and the Mechanism field name must match
// the real package, the behavior is irrelevant.
package transport

type Message struct {
	To, From  int
	Kind      string
	Mechanism int
}

type Handle struct{}

func (h *Handle) Send(m Message)  {}
func (h *Handle) SendBatch(n int) {}

type Network struct{}

func (n *Network) Send(m Message) {}
func (n *Network) Quiesce()       {}
func (n *Network) AwaitStall()    {}

type Batcher struct{}

func (b *Batcher) Add(to int, m Message) {}

// Link is the backend send primitive below the charging front half.
type Link interface {
	Deliver(m Message) error
	Close() error
}

type ChildConn struct{}

func (c *ChildConn) SendMessage(m Message) error         { return nil }
func (c *ChildConn) Serve(deliver func(m Message)) error { return nil }

type RemoteHub struct{}

func (h *RemoteHub) WaitConnected(names ...string) error { return nil }
