// Package transport is a minimal stub of crew/internal/transport for the
// analyzer tests: the method sets and the Mechanism field name must match
// the real package, the behavior is irrelevant. Methods whose real
// implementations park the goroutine carry //crew:blocks annotations, the
// same way the real package declares behavior the analysis cannot see.
package transport

type Message struct {
	To, From  int
	Kind      string
	Mechanism int
}

type Handle struct{}

func (h *Handle) Send(m Message)  {}
func (h *Handle) SendBatch(n int) {}

type Network struct{}

func (n *Network) Send(m Message) {}

//crew:blocks
func (n *Network) Quiesce() {}

//crew:blocks
func (n *Network) AwaitStall() {}

type Batcher struct{}

func (b *Batcher) Add(to int, m Message) {}

// Link is the backend send primitive below the charging front half.
type Link interface {
	Deliver(m Message) error
	Close() error
}

type ChildConn struct{}

func (c *ChildConn) SendMessage(m Message) error { return nil }

//crew:blocks
func (c *ChildConn) Serve(deliver func(m Message)) error { return nil }

type RemoteHub struct{}

//crew:blocks
func (h *RemoteHub) WaitConnected(names ...string) error { return nil }

// NewNetwork returns an empty stub network.
func NewNetwork() *Network { return &Network{} }

// Deprecated: use NewNetwork.
func New() *Network { return NewNetwork() }

// RegisterPayload mirrors the real payload registry entry point.
func RegisterPayload(prototypes ...any) {}
