// Package mapiter_a seeds mapiter violations: map iterations whose bodies
// reach emission, WAL, or print sinks.
package mapiter_a

import (
	"fmt"
	"sort"

	"crew/internal/store"
	"crew/internal/transport"
)

func emitAll(h *transport.Handle, pending map[int]string) {
	for to := range pending { // want "map iteration feeds Handle.Send"
		h.Send(transport.Message{To: to, Mechanism: 1})
	}
}

func emitSorted(h *transport.Handle, pending map[int]string) {
	ids := make([]int, 0, len(pending))
	for id := range pending { // ok: collects keys, no sink in body
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, to := range ids { // ok: ranges a sorted slice, not a map
		h.Send(transport.Message{To: to, Mechanism: 1})
	}
}

func persist(s *store.Store, state map[string][]byte) {
	for k, v := range state { // want "map iteration feeds Store.Put"
		if err := s.Put(k, v); err != nil {
			return
		}
	}
}

func sendOne(h *transport.Handle, to int) {
	h.Send(transport.Message{To: to, Mechanism: 1})
}

func sendVia(h *transport.Handle, to int) {
	sendOne(h, to)
}

func transitive(h *transport.Handle, pending map[int]string) {
	for to := range pending { // want "map iteration feeds sendVia"
		sendVia(h, to)
	}
}

func allowed(counts map[string]int) {
	//crew:allow mapiter debug dump, consumer sorts lines
	for k, v := range counts {
		fmt.Printf("%s=%d\n", k, v)
	}
}
