// Package lockorder_dep is a fixture dependency: it establishes a
// First→Second acquisition ordering that the importing package then
// contradicts, so the lockorder tests exercise the cross-package cumulative
// LockGraph fact.
package lockorder_dep

import "sync"

type First struct{ Mu sync.Mutex }

type Second struct{ Mu sync.Mutex }

// Nested acquires Second.Mu while holding First.Mu.
func Nested(f *First, s *Second) {
	f.Mu.Lock()
	s.Mu.Lock()
	s.Mu.Unlock()
	f.Mu.Unlock()
}
