package lint

import "testing"

func TestLockSend(t *testing.T) {
	runLintTest(t, LockSend, "locksend_a")
}

func TestLockSendInterprocedural(t *testing.T) {
	// Blocking derived transitively from summaries rather than a
	// hand-maintained callee table.
	runLintTest(t, LockSend, "locksend_b")
}
