package lint

import "testing"

func TestLockSend(t *testing.T) {
	runLintTest(t, LockSend, "locksend_a")
}
