package lint

import "testing"

func TestChargedSend(t *testing.T) {
	runLintTest(t, ChargedSend, "chargedsend_a")
}

func TestChargedSendSkipsTransportItself(t *testing.T) {
	// The transport stub impersonates the real package path, so the
	// analyzer must not report its raw internal sends.
	runLintTest(t, ChargedSend, "crew/internal/transport")
}

func TestChargedSendInterprocedural(t *testing.T) {
	// Wrapper propagation: the charging obligation follows Message
	// parameters through local wrappers, across packages (sendutil), and
	// raw-wire taint through unannotated wrappers.
	runLintTest(t, ChargedSend, "chargedsend_b")
}
