package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockSend reports channel operations and blocking calls performed while a
// sync.Mutex/RWMutex is held in the same function body. The itable/store
// shard locks and the engine/agent command-queue locks are leaf locks on
// hot paths: anything that can park the goroutine while one is held (a
// channel send to a full/unbuffered channel, a receive, a select without
// default, a call that transitively reaches any of those) turns a bounded
// critical section into a potential deadlock — the pump that would drain
// the channel may itself need the lock.
//
// Whether a call blocks comes from the summary fact layer: a function that
// transitively performs a channel operation, calls a blocking root
// (time.Sleep, WaitGroup.Wait, Cond.Wait), or is annotated //crew:blocks
// carries a "may block" fact, across package boundaries and through
// interface dispatch (transport.Link.Deliver is seeded). No per-callee
// table is maintained here.
//
// The analysis is lexical and per-function: a Lock() opens a held region
// that closes at the next positional Unlock() of the same mutex expression
// (or at the end of the function for a deferred or missing Unlock).
// Cross-function lock holding is not modeled by this analyzer (lockorder
// covers cross-function acquisition ordering). Silence deliberate cases
// with //crew:allow locksend <reason>.
var LockSend = &analysis.Analyzer{
	Name:     "locksend",
	Doc:      "forbid channel ops and blocking calls while a mutex is held in the same function",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Summaries},
	Run:      runLockSend,
}

// lockEvent is one Lock/Unlock call inside a function.
type lockEvent struct {
	key      string // canonical mutex expression, e.g. "s.mu"
	class    string // cross-function mutex identity, e.g. "crew/internal/itable.mapShard.mu"
	read     bool   // RLock/RUnlock pairing
	pos      token.Pos
	unlock   bool
	deferred bool
}

// blockEvent is one potentially blocking operation inside a function.
type blockEvent struct {
	pos  token.Pos
	what string
}

// lockInterval is one lexical held region of a mutex: from the acquisition
// to the next positional unlock of the same expression (or the end of the
// function for deferred/missing unlocks).
type lockInterval struct {
	key      string
	class    string
	read     bool
	from, to token.Pos
}

func runLockSend(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Summaries].(*SummaryIndex)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch f := n.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			checkLockRegions(pass, ix, body)
		}
	})
	return nil, nil
}

// collectLockEvents gathers the Lock/Unlock events and blocking operations
// of one function body (excluding nested function literals).
func collectLockEvents(pass *analysis.Pass, ix *SummaryIndex, body *ast.BlockStmt) (locks []lockEvent, blocks []blockEvent) {
	// nonBlocking collects the source ranges of comm clauses of selects
	// WITH a default clause: channel ops there never block.
	type posRange struct{ from, to token.Pos }
	var nonBlocking []posRange
	inNonBlockingComm := func(pos token.Pos) bool {
		for _, r := range nonBlocking {
			if pos >= r.from && pos < r.to {
				return true
			}
		}
		return false
	}
	goCalls := map[*ast.CallExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // nested functions get their own region check
		case *ast.GoStmt:
			// The spawned call runs on its own goroutine with its own
			// stack; it neither blocks the spawner nor holds its locks.
			goCalls[st.Call] = true
		case *ast.DeferStmt:
			if ev, ok := lockEventOf(pass, st.Call); ok && ev.unlock {
				ev.deferred = true
				locks = append(locks, ev)
			}
			return false // a deferred call runs at exit, not here
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			// Comm-clause ops are covered by the select itself: with a
			// default they never block, without one the select is reported
			// as a single event rather than once per clause.
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking = append(nonBlocking, posRange{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
			if !hasDefault {
				blocks = append(blocks, blockEvent{st.Pos(), "select without default"})
			}
		case *ast.SendStmt:
			if !inNonBlockingComm(st.Pos()) {
				blocks = append(blocks, blockEvent{st.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !inNonBlockingComm(st.Pos()) {
				blocks = append(blocks, blockEvent{st.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(st.X).Underlying().(*types.Chan); ok {
				blocks = append(blocks, blockEvent{st.Pos(), "range over channel"})
			}
		case *ast.CallExpr:
			if goCalls[st] {
				return true
			}
			if ev, ok := lockEventOf(pass, st); ok {
				locks = append(locks, ev)
				return true
			}
			if k, ok := calleeKey(pass.TypesInfo, st); ok && blockingRoots[k] {
				what := k.name
				if k.recv != "" {
					what = k.recv + "." + what
				}
				blocks = append(blocks, blockEvent{st.Pos(), what})
				return true
			}
			if callee := calleeFunc(pass.TypesInfo, st); callee != nil {
				if ix.FactsOf(callee).Blocks {
					blocks = append(blocks, blockEvent{st.Pos(), funcDisplayName(callee)})
				}
			}
		}
		return true
	})
	return locks, blocks
}

// heldIntervals turns a lock-event list into the lexical held regions of
// the function: each acquisition opens a region closed by the next
// positional unlock of the same expression and mode, or by end.
func heldIntervals(locks []lockEvent, end token.Pos) []lockInterval {
	sort.Slice(locks, func(i, j int) bool { return locks[i].pos < locks[j].pos })
	var held []lockInterval
	for i, ev := range locks {
		if ev.unlock {
			continue
		}
		to := end
		for j := i + 1; j < len(locks); j++ {
			u := locks[j]
			if u.unlock && !u.deferred && u.key == ev.key && u.read == ev.read {
				to = u.pos
				break
			}
		}
		held = append(held, lockInterval{key: ev.key, class: ev.class, read: ev.read, from: ev.pos, to: to})
	}
	return held
}

func checkLockRegions(pass *analysis.Pass, ix *SummaryIndex, body *ast.BlockStmt) {
	locks, blocks := collectLockEvents(pass, ix, body)
	if len(locks) == 0 || len(blocks) == 0 {
		return
	}
	held := heldIntervals(locks, body.End())
	for _, b := range blocks {
		for _, iv := range held {
			if b.pos > iv.from && b.pos < iv.to {
				if !exempted(pass, b.pos, "locksend") {
					pass.Reportf(b.pos, "%s while %s is locked: the goroutine that would unblock it may need the same lock (move the operation after Unlock or annotate //crew:allow locksend <reason>)", b.what, iv.key)
				}
				break
			}
		}
	}
}

// lockEventOf classifies a call as a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the canonical receiver expression
// and the cross-function lock class.
func lockEventOf(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	var unlock, read bool
	switch name {
	case "Lock":
	case "RLock":
		read = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		unlock, read = true, true
	default:
		return lockEvent{}, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return lockEvent{}, false
	}
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return lockEvent{}, false
	}
	return lockEvent{
		key:    types.ExprString(sel.X),
		class:  lockClassOf(pass, sel.X),
		read:   read,
		pos:    call.Pos(),
		unlock: unlock,
	}, true
}

// lockClassOf names the cross-function identity of a mutex expression:
// "pkgpath.Type.field" for a mutex field (whatever expression reaches it),
// "pkgpath.var" for a package-level mutex, and a local fallback otherwise.
// Two acquisitions of the same class in different functions are treated as
// the same lock by lockorder; generic instantiations share one class.
func lockClassOf(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if t := pass.TypesInfo.TypeOf(x.X); t != nil {
			if n := namedOrPointerTo(t); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(x); obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + x.Name
			}
			return pass.Pkg.Path() + ".local." + x.Name
		}
	}
	return pass.Pkg.Path() + "." + types.ExprString(e)
}
