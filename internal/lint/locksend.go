package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockSend reports channel operations and known-blocking calls performed
// while a sync.Mutex/RWMutex is held in the same function body. The
// itable/store shard locks and the engine/agent command-queue locks are
// leaf locks on hot paths: anything that can park the goroutine while one
// is held (a channel send to a full/unbuffered channel, a receive, a
// select without default, Quiesce/AwaitStall/WaitGroup.Wait, time.Sleep)
// turns a bounded critical section into a potential deadlock — the pump
// that would drain the channel may itself need the lock.
//
// The analysis is lexical and per-function: a Lock() opens a held region
// that closes at the next positional Unlock() of the same mutex expression
// (or at the end of the function for a deferred or missing Unlock).
// Cross-function lock holding is not modeled. Silence deliberate cases
// with //crew:allow locksend <reason>.
var LockSend = &analysis.Analyzer{
	Name:     "locksend",
	Doc:      "forbid channel ops and blocking calls while a mutex is held in the same function",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockSend,
}

// lockBlockingCalls are calls that can park the goroutine indefinitely.
var lockBlockingCalls = map[methodKey]bool{
	{pkg: "sync", recv: "WaitGroup", name: "Wait"}:                true,
	{pkg: "time", name: "Sleep"}:                                  true,
	{pkg: transportPath, recv: "Network", name: "Quiesce"}:        true,
	{pkg: transportPath, recv: "Network", name: "AwaitStall"}:     true,
	{pkg: "crew/internal/central", recv: "Engine", name: "Do"}:    true,
	{pkg: "crew/internal/distributed", recv: "Agent", name: "Do"}: true,
	// Wire primitives park the goroutine on a socket or a peer's consume
	// loop: a delivery can wait out a whole crash/recover cycle, and
	// Serve/WaitConnected block for the lifetime of a connection.
	{pkg: transportPath, recv: "ChildConn", name: "Serve"}:         true,
	{pkg: transportPath, recv: "RemoteHub", name: "WaitConnected"}: true,
}

// lockEvent is one Lock/Unlock call inside a function.
type lockEvent struct {
	key      string // canonical mutex expression, e.g. "s.mu"
	read     bool   // RLock/RUnlock pairing
	pos      token.Pos
	unlock   bool
	deferred bool
}

// blockEvent is one potentially blocking operation inside a function.
type blockEvent struct {
	pos  token.Pos
	what string
}

func runLockSend(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch f := n.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			checkLockRegions(pass, body)
		}
	})
	return nil, nil
}

func checkLockRegions(pass *analysis.Pass, body *ast.BlockStmt) {
	var locks []lockEvent
	var blocks []blockEvent

	// nonBlocking collects the source ranges of comm clauses of selects
	// WITH a default clause: channel ops there never block.
	type posRange struct{ from, to token.Pos }
	var nonBlocking []posRange
	inNonBlockingComm := func(pos token.Pos) bool {
		for _, r := range nonBlocking {
			if pos >= r.from && pos < r.to {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // nested functions get their own region check
		case *ast.DeferStmt:
			if ev, ok := lockEventOf(pass, st.Call); ok && ev.unlock {
				ev.deferred = true
				locks = append(locks, ev)
			}
			return false // a deferred call runs at exit, not here
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			// Comm-clause ops are covered by the select itself: with a
			// default they never block, without one the select is reported
			// as a single event rather than once per clause.
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking = append(nonBlocking, posRange{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
			if !hasDefault {
				blocks = append(blocks, blockEvent{st.Pos(), "select without default"})
			}
		case *ast.SendStmt:
			if !inNonBlockingComm(st.Pos()) {
				blocks = append(blocks, blockEvent{st.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !inNonBlockingComm(st.Pos()) {
				blocks = append(blocks, blockEvent{st.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(st.X).Underlying().(*types.Chan); ok {
				blocks = append(blocks, blockEvent{st.Pos(), "range over channel"})
			}
		case *ast.CallExpr:
			if ev, ok := lockEventOf(pass, st); ok {
				locks = append(locks, ev)
				return true
			}
			if k, ok := calleeKey(pass.TypesInfo, st); ok && lockBlockingCalls[k] {
				what := k.name
				if k.recv != "" {
					what = k.recv + "." + what
				}
				blocks = append(blocks, blockEvent{st.Pos(), what})
			} else if !ok && wireDeliverCall(pass, st) {
				// Interface dispatch: calleeKey cannot resolve Link.Deliver,
				// but a backend delivery can block on a socket or a down peer.
				blocks = append(blocks, blockEvent{st.Pos(), "Link.Deliver"})
			}
		}
		return true
	})
	if len(locks) == 0 || len(blocks) == 0 {
		return
	}

	sort.Slice(locks, func(i, j int) bool { return locks[i].pos < locks[j].pos })
	type interval struct {
		key      string
		from, to token.Pos
	}
	var held []interval
	for i, ev := range locks {
		if ev.unlock {
			continue
		}
		end := body.End()
		for j := i + 1; j < len(locks); j++ {
			u := locks[j]
			if u.unlock && !u.deferred && u.key == ev.key && u.read == ev.read {
				end = u.pos
				break
			}
		}
		held = append(held, interval{ev.key, ev.pos, end})
	}
	for _, b := range blocks {
		for _, iv := range held {
			if b.pos > iv.from && b.pos < iv.to {
				if !exempted(pass, b.pos, "locksend") {
					pass.Reportf(b.pos, "%s while %s is locked: the goroutine that would unblock it may need the same lock (move the operation after Unlock or annotate //crew:allow locksend <reason>)", b.what, iv.key)
				}
				break
			}
		}
	}
}

// lockEventOf classifies a call as a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the canonical receiver expression.
func lockEventOf(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	var unlock, read bool
	switch name {
	case "Lock":
	case "RLock":
		read = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		unlock, read = true, true
	default:
		return lockEvent{}, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return lockEvent{}, false
	}
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return lockEvent{}, false
	}
	return lockEvent{key: types.ExprString(sel.X), read: read, pos: call.Pos(), unlock: unlock}, true
}
