package lint

import "testing"

func TestLockOrder(t *testing.T) {
	runLintTest(t, LockOrder, "lockorder_a")
}
