package lint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// sendEntryPoints are the transport layer's physical-send entry points. A
// message entering any of them is counted into the metrics collector under
// its Mechanism class, which is exactly the quantity the paper's Tables 4-6
// compare — so a call site that does not deliberately set the Mechanism is
// silently miscounting traffic under Normal.
var sendEntryPoints = map[methodKey]int{
	// value is the index of the transport.Message argument; -1 when the
	// call carries no Message literal at all (envelopes).
	{pkg: transportPath, recv: "Handle", name: "Send"}:      0,
	{pkg: transportPath, recv: "Network", name: "Send"}:     0,
	{pkg: transportPath, recv: "Handle", name: "SendBatch"}: -1,
	{pkg: transportPath, recv: "Batcher", name: "Add"}:      1,
	// ChildConn.SendMessage is the wire primitive that forwards a message
	// into the hub network; the hub charges it there, so the forwarded
	// message must already carry its Mechanism (forwarding funnels that
	// relay pre-charged traffic annotate //crew:nocharge).
	{pkg: transportPath, recv: "ChildConn", name: "SendMessage"}: 0,
}

// wireDeliverCall reports a dynamic call of transport.Link.Deliver — the
// backend send primitive below the charging front half. StaticCallee cannot
// resolve interface methods, so the receiver's static type is matched
// instead.
func wireDeliverCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Deliver" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && isNamedType(t, transportPath, "Link")
}

// ChargedSend enforces the msgs/load accounting invariant statically: every
// transport Send/SendBatch/Batcher.Add call site outside the transport
// package itself must either pass a transport.Message whose Mechanism field
// is set explicitly (directly in a composite literal, or via a local
// variable whose construction sets it) or carry a //crew:nocharge <reason>
// annotation. The per-component send() wrappers in central, parallel, and
// distributed are the intended charging funnels; this analyzer is what
// keeps new call sites from bypassing them.
var ChargedSend = &analysis.Analyzer{
	Name:     "chargedsend",
	Doc:      "transport sends must set Message.Mechanism explicitly or be annotated //crew:nocharge",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runChargedSend,
}

func runChargedSend(pass *analysis.Pass) (any, error) {
	if strings.HasPrefix(pass.Pkg.Path(), transportPath) {
		// The transport layer is the charging implementation, and its own
		// tests exercise the raw entry points by definition.
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		k, ok := calleeKey(pass.TypesInfo, call)
		if !ok {
			// Link.Deliver sits BELOW the charging front half: a message
			// entering it directly was never counted, never sequenced and
			// never tracked for park/replay, whatever its Mechanism says.
			if wireDeliverCall(pass, call) && !exempted(pass, call.Pos(), "chargedsend") {
				pass.Reportf(call.Pos(), "uncharged transport send: Link.Deliver bypasses the Network front half (counting, fault policy, park/replay) — send through Network.Send or a Handle (annotate //crew:nocharge <reason> if deliberate)")
			}
			return true
		}
		argIdx, hit := sendEntryPoints[k]
		if !hit {
			return true
		}
		if exempted(pass, call.Pos(), "chargedsend") {
			return true
		}
		if argIdx >= 0 && argIdx < len(call.Args) &&
			messageCharged(pass, enclosingFuncBody(stack), call.Args[argIdx]) {
			return true
		}
		what := k.recv + "." + k.name
		if argIdx < 0 {
			pass.Reportf(call.Pos(), "uncharged transport send: %s bypasses the Batcher that charges each logical message's Mechanism (annotate //crew:nocharge <reason> if deliberate)", what)
		} else {
			pass.Reportf(call.Pos(), "uncharged transport send: %s call does not set Message.Mechanism explicitly, so the message is miscounted under Normal (set the field or annotate //crew:nocharge <reason>)", what)
		}
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the traversal stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// messageCharged reports whether the Message argument provably sets its
// Mechanism field: a composite literal with an explicit Mechanism key, or a
// local variable whose construction (or a later field assignment) within
// the enclosing function sets it.
func messageCharged(pass *analysis.Pass, body *ast.BlockStmt, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	if u, ok := arg.(*ast.UnaryExpr); ok { // &transport.Message{...}
		arg = ast.Unparen(u.X)
	}
	if lit, ok := arg.(*ast.CompositeLit); ok {
		return litSetsMechanism(lit)
	}
	id, ok := arg.(*ast.Ident)
	if !ok || body == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	charged := false
	ast.Inspect(body, func(n ast.Node) bool {
		if charged {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				// m := transport.Message{... Mechanism: ...} / m = ...
				if lid, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(lid) == obj {
					if lit, ok := ast.Unparen(st.Rhs[i]).(*ast.CompositeLit); ok && litSetsMechanism(lit) {
						charged = true
					}
				}
				// m.Mechanism = ...
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Mechanism" {
					if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(base) == obj {
						charged = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i >= len(st.Values) {
					break
				}
				if pass.TypesInfo.ObjectOf(name) == obj {
					if lit, ok := ast.Unparen(st.Values[i]).(*ast.CompositeLit); ok && litSetsMechanism(lit) {
						charged = true
					}
				}
			}
		}
		return true
	})
	return charged
}

// litSetsMechanism reports whether a composite literal has an explicit
// Mechanism field key.
func litSetsMechanism(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Mechanism" {
				return true
			}
		}
	}
	return false
}
