package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ChargedSend enforces the msgs/load accounting invariant statically: every
// message entering the transport must carry an explicitly chosen Mechanism
// (the quantity the paper's Tables 4-6 compare), and no call site may slip
// below the charging front half.
//
// Which calls count as sends comes from the summary fact layer rather than
// a hardcoded table: the transport package's entry points (Handle.Send,
// Network.Send, Batcher.Add, ChildConn.SendMessage, Handle.SendBatch,
// Link.Deliver) are seeded there, and the obligation propagates through
// wrapper functions — a function that forwards its own transport.Message
// parameter into a send without charging it exports a "sends parameter i"
// fact, so its callers are checked exactly like direct call sites, across
// package boundaries and interface dispatch.
//
// A call site is clean when it passes a Message that provably sets
// Mechanism (composite literal with the field, or a local whose
// construction/assignment sets it), forwards its own parameter onward
// (shifting the obligation to its callers), or carries a
// //crew:nocharge <reason> annotation. The per-component send() wrappers in
// central, parallel, and distributed are the intended charging funnels;
// this analyzer is what keeps new call sites from bypassing them.
var ChargedSend = &analysis.Analyzer{
	Name:     "chargedsend",
	Doc:      "transport sends must set Message.Mechanism explicitly or be annotated //crew:nocharge",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Summaries},
	Run:      runChargedSend,
}

func runChargedSend(pass *analysis.Pass) (any, error) {
	if strings.HasPrefix(pass.Pkg.Path(), transportPath) {
		// The transport layer is the charging implementation, and its own
		// tests exercise the raw entry points by definition.
		return nil, nil
	}
	ix := pass.ResultOf[Summaries].(*SummaryIndex)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		ff := ix.FactsOf(callee)
		what := funcDisplayName(callee)
		switch {
		case ff.SendsRaw:
			// Link.Deliver (or a wrapper reaching it) sits BELOW the
			// charging front half: a message entering it directly was never
			// counted, never sequenced and never tracked for park/replay,
			// whatever its Mechanism says.
			if !exempted(pass, call.Pos(), "chargedsend") {
				pass.Reportf(call.Pos(), "uncharged transport send: %s bypasses the Network front half (counting, fault policy, park/replay) — send through Network.Send or a Handle (annotate //crew:nocharge <reason> if deliberate)", what)
			}
		case ff.BypassBatch:
			if !exempted(pass, call.Pos(), "chargedsend") {
				pass.Reportf(call.Pos(), "uncharged transport send: %s bypasses the Batcher that charges each logical message's Mechanism (annotate //crew:nocharge <reason> if deliberate)", what)
			}
		case ff.SendsParam != 0:
			idx := int(ff.SendsParam) - 1
			if idx >= len(call.Args) || exempted(pass, call.Pos(), "chargedsend") {
				return true
			}
			arg := call.Args[idx]
			if messageCharged(pass, enclosingFuncBody(stack), arg) {
				return true
			}
			if forwardsOwnParam(pass, ix, stack, arg) {
				// The enclosing function re-exports the obligation as its
				// own "sends parameter" fact; its callers are checked.
				return true
			}
			pass.Reportf(call.Pos(), "uncharged transport send: %s call does not set Message.Mechanism explicitly, so the message is miscounted under Normal (set the field or annotate //crew:nocharge <reason>)", what)
		}
		return true
	})
	return nil, nil
}

// forwardsOwnParam reports whether arg is a parameter of the enclosing
// function declaration AND that function carries a SendsParam fact for it —
// i.e. the charging obligation demonstrably shifted to the callers. A
// parameter of a function literal never qualifies (literals export no
// facts, so nothing would check their callers).
func forwardsOwnParam(pass *analysis.Pass, ix *SummaryIndex, stack []ast.Node, arg ast.Expr) bool {
	var fd *ast.FuncDecl
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.FuncDecl:
			fd = f
		}
		if fd != nil {
			break
		}
	}
	if fd == nil {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	idx := paramIndexOf(pass, sig, ast.Unparen(arg))
	if idx < 0 {
		return false
	}
	return int(ix.FactsOf(fn).SendsParam) == idx+1
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the traversal stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// messageCharged reports whether the Message argument provably sets its
// Mechanism field: a composite literal with an explicit Mechanism key, or a
// local variable whose construction (or a later field assignment) within
// the enclosing function sets it.
func messageCharged(pass *analysis.Pass, body *ast.BlockStmt, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	if u, ok := arg.(*ast.UnaryExpr); ok { // &transport.Message{...}
		arg = ast.Unparen(u.X)
	}
	if lit, ok := arg.(*ast.CompositeLit); ok {
		return litSetsMechanism(lit)
	}
	id, ok := arg.(*ast.Ident)
	if !ok || body == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	charged := false
	ast.Inspect(body, func(n ast.Node) bool {
		if charged {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				// m := transport.Message{... Mechanism: ...} / m = ...
				if lid, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(lid) == obj {
					if lit, ok := ast.Unparen(st.Rhs[i]).(*ast.CompositeLit); ok && litSetsMechanism(lit) {
						charged = true
					}
				}
				// m.Mechanism = ...
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Mechanism" {
					if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(base) == obj {
						charged = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i >= len(st.Values) {
					break
				}
				if pass.TypesInfo.ObjectOf(name) == obj {
					if lit, ok := ast.Unparen(st.Values[i]).(*ast.CompositeLit); ok && litSetsMechanism(lit) {
						charged = true
					}
				}
			}
		}
		return true
	})
	return charged
}

// litSetsMechanism reports whether a composite literal has an explicit
// Mechanism field key.
func litSetsMechanism(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Mechanism" {
				return true
			}
		}
	}
	return false
}
