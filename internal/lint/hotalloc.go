package lint

// hotalloc enforces that functions annotated //crew:hotpath are
// allocation-free. The per-event path — rules.FireOn through event.Table
// posting into the itable shards, and the transport's batch/frame encoders
// — is where ROADMAP item 5's zero-alloc event loop will live; its
// AllocsPerRun budgets only catch a regression after the fact and only on
// the exact path a benchmark drives. This analyzer rejects the allocation
// at the line that introduces it: map iteration, fmt/errors/json/reflect
// calls, interface boxing of a concrete value, capturing closures, make and
// new, heap composite literals, string concatenation, goroutine spawns —
// directly in the function, or in anything it calls (via the summary fact
// layer, across packages and interface dispatch).
//
// A deliberate cold branch inside a hot function (an error return that
// formats once per failure, a once-per-lifetime growth) is silenced at the
// site with //crew:allow hotalloc <reason>; the exemption also keeps the
// site out of the function's own "may allocate" summary, so hot callers of
// the annotated function stay clean.
//
// Calls that resolve to nothing (function values, unannotated interface
// methods without facts) contribute nothing — the analyzer is deliberately
// optimistic there, and the AllocsPerRun budgets remain the dynamic
// backstop.

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var HotAlloc = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "//crew:hotpath functions must not allocate, directly or through anything they call",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Summaries},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	ix := pass.ResultOf[Summaries].(*SummaryIndex)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !hasHotPathAnnotation(fd.Doc) {
			return
		}
		name := fd.Name.Name
		if fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func); ok {
			name = funcDisplayName(fn)
		}

		// Direct allocation sites.
		for _, s := range allocSites(pass, fd.Body) {
			if exempted(pass, s.pos, "hotalloc") {
				continue
			}
			pass.Reportf(s.pos, "allocation on //crew:hotpath function %s: %s (hoist it off the hot path or annotate //crew:allow hotalloc <reason>)", name, s.what)
		}

		// Calls to functions whose summary says they may allocate.
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return false // the literal's creation was already flagged
			case *ast.GoStmt:
				goCalls[st.Call] = true // the spawn was already flagged
			case *ast.CallExpr:
				if goCalls[st] {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, st)
				if callee == nil || !ix.FactsOf(callee).Allocs {
					return true
				}
				if exempted(pass, st.Pos(), "hotalloc") {
					return true
				}
				pass.Reportf(st.Pos(), "allocation on //crew:hotpath function %s: call to %s, which may allocate (make the callee allocation-free or annotate //crew:allow hotalloc <reason>)", name, funcDisplayName(callee))
			}
			return true
		})
	})
	return nil, nil
}

// hasHotPathAnnotation reports a //crew:hotpath marker in a doc comment.
func hasHotPathAnnotation(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := trimCommentMarker(c.Text)
		if text == "crew:hotpath" || len(text) > len("crew:hotpath") && text[:len("crew:hotpath ")] == "crew:hotpath " {
			return true
		}
	}
	return false
}

// trimCommentMarker strips the // or /* comment marker and surrounding
// space.
func trimCommentMarker(text string) string {
	if len(text) >= 2 {
		text = text[2:]
	}
	for len(text) > 0 && (text[0] == ' ' || text[0] == '\t') {
		text = text[1:]
	}
	for len(text) > 0 && (text[len(text)-1] == ' ' || text[len(text)-1] == '\t') {
		text = text[:len(text)-1]
	}
	return text
}
