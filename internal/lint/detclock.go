package lint

import (
	"flag"
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// detDefaultPackages lists the packages whose outputs must be a pure
// function of their inputs and seeds: the workflow model and its frozen
// schema caches, the rule engine (indexed/scan parity demands identical
// firing order), the analytical tables, the sharded instance tables, and
// fault-plan construction. A package outside this list opts in by carrying
// a //crew:deterministic comment in any of its files.
var detDefaultPackages = map[string]bool{
	"crew/internal/model":    true,
	"crew/internal/rules":    true,
	"crew/internal/analysis": true,
	"crew/internal/itable":   true,
	"crew/internal/faults":   true,
}

// detClockFlags lets a driver widen the deterministic set, mainly so the
// analyzer tests can point it at a testdata package:
// -detclock.packages=pkg1,pkg2 adds to the default list.
var detClockFlags flag.FlagSet
var detExtraPackages = detClockFlags.String("packages", "", "comma-separated extra package paths treated as deterministic")

// DetClock reports wall-clock reads (time.Now, time.Since, timers) and
// unseeded math/rand use inside deterministic packages. Replay, the seeded
// fault plans, and the benchdiff gates all assume these packages compute
// the same outputs for the same seeds on every run.
var DetClock = &analysis.Analyzer{
	Name:     "detclock",
	Doc:      "forbid wall-clock and unseeded randomness in deterministic packages",
	Flags:    detClockFlags,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetClock,
}

// detTimeFuncs are the time package entry points that read or arm the wall
// clock. time.Duration arithmetic and formatting stay legal.
var detTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// detRandSeeded are the math/rand constructors that take or build an
// explicit source; everything else at package level draws from the global,
// nondeterministically shared source.
var detRandSeeded = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetClock(pass *analysis.Pass) (any, error) {
	if !detPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if inTestFile(pass, call.Pos()) {
			// Tests may poll deadlines; determinism binds the package's
			// production outputs, not its test harnesses.
			return
		}
		k, ok := calleeKey(pass.TypesInfo, call)
		if !ok || k.recv != "" {
			return
		}
		switch k.pkg {
		case "time":
			if detTimeFuncs[k.name] && !exempted(pass, call.Pos(), "detclock") {
				pass.Reportf(call.Pos(), "wall clock in deterministic package: time.%s (use the network's logical clock or a seeded schedule)", k.name)
			}
		case "math/rand", "math/rand/v2":
			if !detRandSeeded[k.name] && !exempted(pass, call.Pos(), "detclock") {
				pass.Reportf(call.Pos(), "unseeded randomness in deterministic package: %s.%s draws from the global source (use rand.New(rand.NewSource(seed)))", k.pkg, k.name)
			}
		}
	})
	return nil, nil
}

// detPackage reports whether the pass's package must be deterministic:
// either a member of the default list or opted in via a
// //crew:deterministic file comment.
func detPackage(pass *analysis.Pass) bool {
	if detDefaultPackages[pass.Pkg.Path()] {
		return true
	}
	for _, p := range strings.Split(*detExtraPackages, ",") {
		if p != "" && p == pass.Pkg.Path() {
			return true
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crew:deterministic") {
					return true
				}
			}
		}
	}
	return false
}
