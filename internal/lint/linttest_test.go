package lint

// This file is an offline stand-in for golang.org/x/tools/go/analysis/
// analysistest, which is not part of the toolchain's vendored x/tools
// subset (see third_party/). It loads a package from testdata/src by
// import path, type-checks it against stub dependencies in the same tree
// (falling back to the source importer for the standard library), runs one
// analyzer, and compares the diagnostics against `// want "substr"`
// comments: every diagnostic must be matched by a want comment on its
// line, and every want comment must be matched by a diagnostic. A want
// comment may carry several quoted substrings when one line produces
// several diagnostics. Matching is substring, not regexp.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// tdImporter resolves import paths from testdata/src first (so stub
// packages can impersonate real module paths like crew/internal/transport)
// and the standard library from source second.
type tdImporter struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	pkgs   map[string]*tdPackage
}

type tdPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

var (
	tdOnce sync.Once
	tdImp  *tdImporter
)

func testdataImporter(t *testing.T) *tdImporter {
	tdOnce.Do(func() {
		fset := token.NewFileSet()
		tdImp = &tdImporter{
			fset:   fset,
			srcDir: filepath.Join("testdata", "src"),
			std:    importer.ForCompiler(fset, "source", nil),
			pkgs:   map[string]*tdPackage{},
		}
	})
	return tdImp
}

func (im *tdImporter) Import(path string) (*types.Package, error) {
	p := im.load(path)
	return p.pkg, p.err
}

func (im *tdImporter) load(path string) *tdPackage {
	if p, ok := im.pkgs[path]; ok {
		return p
	}
	p := &tdPackage{}
	im.pkgs[path] = p // before type-checking: breaks import cycles into errors
	dir := filepath.Join(im.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		p.pkg, p.err = im.std.Import(path)
		return p
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p
	}
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: im}
	p.pkg, p.err = conf.Check(path, im.fset, p.files, p.info)
	return p
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"[^"]*")+)`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// runLintTest loads testdata/src/<pkgPath>, runs the analyzer, and checks
// diagnostics against want comments.
func runLintTest(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	im := testdataImporter(t)
	p := im.load(pkgPath)
	if p.err != nil {
		t.Fatalf("loading %s: %v", pkgPath, p.err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       im.fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]any{
			inspect.Analyzer: inspector.New(p.files),
		},
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile: os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]string{}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := im.fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[k] = append(wants[k], arg[1])
				}
			}
		}
	}

	for _, d := range diags {
		pos := im.fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	var missed []string
	for k, ws := range wants {
		for _, w := range ws {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, w))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
