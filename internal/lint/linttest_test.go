package lint

// This file is an offline stand-in for golang.org/x/tools/go/analysis/
// analysistest, which is not part of the toolchain's vendored x/tools
// subset (see third_party/). It loads a package from testdata/src by
// import path, type-checks it against stub dependencies in the same tree
// (falling back to the source importer for the standard library), runs an
// analyzer together with its full Requires closure, and compares the
// diagnostics against `// want "substr"` comments: every diagnostic must
// be matched by a want comment on its line, and every want comment must be
// matched by a diagnostic. A want comment may carry several quoted
// substrings when one line produces several diagnostics. Matching is
// substring, not regexp.
//
// Facts: the harness keeps one shared in-memory fact store. Before an
// analyzer runs on a package, every fact-producing analyzer in its
// Requires closure is first run over the package's testdata imports
// (recursively, dependencies before dependents), so object and package
// facts flow across stub package boundaries exactly as they do across
// .vetx files under the real vet driver.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Fixture packages live under testdata/src with bare import paths, so widen
// the first-party gate that normally restricts fact computation to the crew
// module.
func init() { factsAllPackages = true }

// tdImporter resolves import paths from testdata/src first (so stub
// packages can impersonate real module paths like crew/internal/transport)
// and the standard library from source second.
type tdImporter struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	pkgs   map[string]*tdPackage

	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
	runs     map[runKey]*runEntry
}

type tdPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type runKey struct {
	a    *analysis.Analyzer
	path string
}

type runEntry struct {
	result any
	diags  []analysis.Diagnostic
	err    error
}

var (
	tdOnce sync.Once
	tdImp  *tdImporter
)

func testdataImporter(t *testing.T) *tdImporter {
	tdOnce.Do(func() {
		fset := token.NewFileSet()
		tdImp = &tdImporter{
			fset:     fset,
			srcDir:   filepath.Join("testdata", "src"),
			std:      importer.ForCompiler(fset, "source", nil),
			pkgs:     map[string]*tdPackage{},
			objFacts: map[objFactKey]analysis.Fact{},
			pkgFacts: map[pkgFactKey]analysis.Fact{},
			runs:     map[runKey]*runEntry{},
		}
	})
	return tdImp
}

func (im *tdImporter) Import(path string) (*types.Package, error) {
	p := im.load(path)
	return p.pkg, p.err
}

func (im *tdImporter) load(path string) *tdPackage {
	if p, ok := im.pkgs[path]; ok {
		return p
	}
	p := &tdPackage{}
	im.pkgs[path] = p // before type-checking: breaks import cycles into errors
	dir := filepath.Join(im.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		p.pkg, p.err = im.std.Import(path)
		return p
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p
	}
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: im}
	p.pkg, p.err = conf.Check(path, im.fset, p.files, p.info)
	return p
}

// isTestdata reports whether the loaded package came from testdata/src
// (rather than the standard library).
func (im *tdImporter) isTestdata(path string) bool {
	p, ok := im.pkgs[path]
	return ok && len(p.files) > 0
}

// factProducers returns the analyzers in a's Requires closure (including a
// itself) that declare fact types, in dependency order.
func factProducers(a *analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	var walk func(x *analysis.Analyzer)
	walk = func(x *analysis.Analyzer) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, r := range x.Requires {
			walk(r)
		}
		if len(x.FactTypes) > 0 {
			out = append(out, x)
		}
	}
	walk(a)
	return out
}

// exec runs analyzer a over testdata package path, memoized. The full
// Requires closure runs first on the same package, and every
// fact-producing analyzer in the closure runs over the package's testdata
// imports (recursively) so imported facts are in the store.
func (im *tdImporter) exec(t *testing.T, a *analysis.Analyzer, path string) *runEntry {
	t.Helper()
	key := runKey{a, path}
	if e, ok := im.runs[key]; ok {
		return e
	}
	e := &runEntry{}
	im.runs[key] = e

	p := im.load(path)
	if p.err != nil {
		e.err = fmt.Errorf("loading %s: %w", path, p.err)
		return e
	}

	// Dependencies' facts first: run the closure's fact producers over the
	// testdata imports (their own imports recurse through exec).
	for _, imp := range p.pkg.Imports() {
		if !im.isTestdata(imp.Path()) {
			continue
		}
		for _, fa := range factProducers(a) {
			if dep := im.exec(t, fa, imp.Path()); dep.err != nil {
				e.err = dep.err
				return e
			}
		}
	}

	// Required analyzers on this package.
	results := map[*analysis.Analyzer]any{}
	for _, r := range a.Requires {
		dep := im.exec(t, r, path)
		if dep.err != nil {
			e.err = dep.err
			return e
		}
		results[r] = dep.result
	}

	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       im.fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report:     func(d analysis.Diagnostic) { e.diags = append(e.diags, d) },
		ReadFile:   os.ReadFile,

		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return im.getFact(objFactKey{obj, reflect.TypeOf(fact)}, fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			im.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = fact
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return im.getPkgFact(pkgFactKey{pkg, reflect.TypeOf(fact)}, fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			im.pkgFacts[pkgFactKey{p.pkg, reflect.TypeOf(fact)}] = fact
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
	}
	e.result, e.err = a.Run(pass)
	if e.err != nil {
		e.err = fmt.Errorf("%s on %s: %w", a.Name, path, e.err)
	}
	return e
}

func (im *tdImporter) getFact(k objFactKey, out analysis.Fact) bool {
	stored, ok := im.objFacts[k]
	if !ok {
		return false
	}
	reflect.ValueOf(out).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (im *tdImporter) getPkgFact(k pkgFactKey, out analysis.Fact) bool {
	stored, ok := im.pkgFacts[k]
	if !ok {
		return false
	}
	reflect.ValueOf(out).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"[^"]*")+)`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// runLintTest loads testdata/src/<pkgPath>, runs the analyzer (and its
// Requires closure, with facts), and checks diagnostics against want
// comments.
func runLintTest(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	im := testdataImporter(t)
	e := im.exec(t, a, pkgPath)
	if e.err != nil {
		t.Fatal(e.err)
	}
	p := im.load(pkgPath)

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]string{}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := im.fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[k] = append(wants[k], arg[1])
				}
			}
		}
	}

	for _, d := range e.diags {
		pos := im.fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	var missed []string
	for k, ws := range wants {
		for _, w := range ws {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, w))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
