package workload

import (
	"context"
	"sync"
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/distributed"
	"crew/internal/metrics"
	"crew/internal/parallel"
)

// TestStressAllArchitecturesSharedCollector drives the centralized, parallel
// and distributed architectures at the same time against a single shared
// Collector while a reader goroutine hammers the snapshot/aggregate API.
// Under -race this exercises every hot-path counter (sharded message
// counters, NodeRecorder handles, concurrent Node registration from three
// deployments whose agent names overlap) plus Quiesce on live networks.
func TestStressAllArchitecturesSharedCollector(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	p := analysis.Default()
	p.C = 3
	p.S = 8
	p.E = 3
	p.Z = 6
	p.A = 2
	p.F = 2
	p.R = 3
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 1

	col := metrics.NewCollector()
	quiet := func(string, ...any) {}

	type deployment struct {
		name    string
		target  Target
		quiesce func(context.Context) error
		close   func()
	}
	var deps []deployment

	w, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	csys, err := central.NewSystem(central.SystemConfig{
		Library: w.Library, Programs: w.Programs, Collector: col,
		Agents: w.Agents, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	deps = append(deps, deployment{"central", csys, csys.Quiesce, csys.Close})
	psys, err := parallel.NewSystem(parallel.SystemConfig{
		Library: w.Library, Programs: w.Programs, Collector: col,
		Engines: p.E, Agents: w.Agents, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	deps = append(deps, deployment{"parallel", psys, psys.Quiesce, psys.Close})
	dsys, err := distributed.NewSystem(distributed.SystemConfig{
		Library: w.Library, Programs: w.Programs, Collector: col,
		Agents: w.Agents, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	deps = append(deps, deployment{"distributed", dsys, dsys.Quiesce, dsys.Close})
	defer func() {
		for _, d := range deps {
			d.close()
		}
	}()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := col.Snapshot()
			for _, m := range metrics.Mechanisms {
				_ = snap.MessagesOf(m)
				_ = col.Messages(m)
				_, _ = col.MaxNodeLoad(m)
				_ = col.TotalLoad(m)
			}
			_ = col.Nodes()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, len(deps))
	for i, d := range deps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Drive(d.target, w, 4, 30*time.Second); err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			errs[i] = d.quiesce(ctx)
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("%s: %v", deps[i].name, err)
		}
	}

	// Every architecture committed or aborted all its instances; the shared
	// collector saw traffic from all three.
	if col.Messages(metrics.Normal) == 0 {
		t.Fatal("shared collector recorded no normal-execution messages")
	}
}
