// Package workload generates synthetic workflow populations parameterized
// exactly by the paper's Table 3 (number of steps s, schemas c, instances i,
// eligible agents a, rollback depth r, terminal steps f, abort compensation
// width w, coordination densities me/ro/rd, and the probabilities pf, pi,
// pa, pr), with fully deterministic, seeded failure injection. The same
// workload runs unchanged on the centralized, parallel and distributed
// architectures, which is what makes the Tables 4-6 comparison meaningful.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"

	"crew/internal/analysis"
	"crew/internal/expr"
	"crew/internal/model"
)

// Workload is a generated schema library plus its program registry.
type Workload struct {
	Library  *model.Library
	Programs *model.Registry
	Agents   []string
	Params   analysis.Parameters
	Seed     int64
}

// AgentNames returns z agent node names (agent01, agent02, ...).
func AgentNames(z int) []string {
	out := make([]string, z)
	for i := range out {
		out[i] = fmt.Sprintf("agent%02d", i+1)
	}
	return out
}

// hash01 maps arbitrary labels deterministically to [0, 1). The FNV sum is
// run through a murmur-style finalizer because FNV alone diffuses trailing
// bytes poorly into the high bits we sample.
func hash01(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// pick returns n distinct items from pool, deterministically per label.
func pick(pool []string, n int, seed int64, label string) []string {
	if n >= len(pool) {
		return append([]string(nil), pool...)
	}
	start := int(hash01(seed, label) * float64(len(pool)))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[(start+i)%len(pool)])
	}
	return out
}

// schemaName names the k-th generated schema.
func schemaName(k int) string { return fmt.Sprintf("WF%02d", k+1) }

// Generate builds c schemas of s steps each. Every schema is a chain of
// s-f steps followed by f parallel terminal branches (giving the paper's f
// final steps). Step programs produce one output, consume the previous
// step's output, fail deterministically with probability pf on their first
// attempt, and re-execute on rollback with probability pr (the remaining
// steps reuse their previous results — the OCR path).
func Generate(p analysis.Parameters, seed int64) (*Workload, error) {
	if p.S < 2 {
		return nil, fmt.Errorf("workload: need at least 2 steps, got %d", p.S)
	}
	if p.F < 1 || p.F >= p.S {
		return nil, fmt.Errorf("workload: need 1 <= f < s, got f=%d s=%d", p.F, p.S)
	}
	agents := AgentNames(p.Z)
	lib := model.NewLibrary()
	reg := model.NewRegistry()
	w := &Workload{Library: lib, Programs: reg, Agents: agents, Params: p, Seed: seed}

	for k := 0; k < p.C; k++ {
		wf := schemaName(k)
		b := model.NewSchema(wf, "I1")
		chainLen := p.S - p.F

		var prev model.StepID
		for i := 1; i <= chainLen; i++ {
			id := model.StepID(fmt.Sprintf("S%d", i))
			opts := []model.StepOption{
				model.WithOutputs("O1"),
				model.WithAgents(pick(agents, p.A, seed, wf+string(id))...),
				model.WithCompensation(w.compProgram(wf, id)),
			}
			if i > 1 {
				opts = append(opts, model.WithInputs(prev.Ref("O1")))
			} else {
				opts = append(opts, model.WithInputs("WF.I1"))
			}
			// pr controls re-execution on rollback revisits: steps outside
			// the re-execution fraction always reuse previous results.
			if hash01(seed, wf, string(id), "pr") >= p.PR {
				opts = append(opts, model.WithReexecCond("false"))
			}
			b.Step(id, w.stepProgram(wf, id), opts...)
			if i > 1 {
				b.Arc(prev, id)
			}
			prev = id
		}
		// f parallel terminal steps fan out from the end of the chain.
		for j := 1; j <= p.F; j++ {
			id := model.StepID(fmt.Sprintf("T%d", j))
			b.Step(id, w.stepProgram(wf, id),
				model.WithOutputs("O1"),
				model.WithInputs(prev.Ref("O1")),
				model.WithAgents(pick(agents, p.A, seed, wf+string(id))...),
				model.WithCompensation(w.compProgram(wf, id)),
			)
			b.Arc(prev, id)
		}
		// Failure policies: a failing step rolls back r steps (bounded by
		// the chain start); the first step and the terminal fan-out retry
		// in place. Every step has a policy so injected failures exercise
		// failure handling rather than aborting the workflow.
		b.OnFailure("S1", "S1", 3)
		for i := 2; i <= chainLen; i++ {
			target := i - p.R
			if target < 1 {
				target = 1
			}
			b.OnFailure(model.StepID(fmt.Sprintf("S%d", i)),
				model.StepID(fmt.Sprintf("S%d", target)), 3)
		}
		for j := 1; j <= p.F; j++ {
			id := model.StepID(fmt.Sprintf("T%d", j))
			b.OnFailure(id, id, 3)
		}
		// Abort compensation width w: the first w chain steps.
		var abortSet []model.StepID
		for i := 1; i <= p.W && i <= chainLen; i++ {
			abortSet = append(abortSet, model.StepID(fmt.Sprintf("S%d", i)))
		}
		if len(abortSet) >= 1 {
			b.AbortCompensate(abortSet...)
		}
		s, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("workload: schema %s: %w", wf, err)
		}
		lib.Add(s)
	}

	w.addCoordination()
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// addCoordination pairs consecutive schemas with relative-order, mutex and
// rollback-dependency specs of the densities me, ro, rd (steps per workflow
// involved in each requirement, as Table 3 defines them).
func (w *Workload) addCoordination() {
	p := w.Params
	chainLen := p.S - p.F
	for k := 0; k+1 < p.C; k += 2 {
		a, b := schemaName(k), schemaName(k+1)

		if p.RO >= 2 {
			pairs := make([]model.ConflictPair, 0, p.RO)
			for j := 0; j < p.RO && j+1 <= chainLen; j++ {
				step := model.StepID(fmt.Sprintf("S%d", j+1))
				pairs = append(pairs, model.ConflictPair{
					A: model.StepRef{Workflow: a, Step: step},
					B: model.StepRef{Workflow: b, Step: step},
				})
			}
			if len(pairs) >= 1 {
				w.Library.AddCoord(model.CoordSpec{
					Kind:  model.RelativeOrder,
					Name:  fmt.Sprintf("ro-%s-%s", a, b),
					Pairs: pairs,
				})
			}
		}

		for j := 0; j < p.ME && chainLen-j >= 1; j++ {
			step := model.StepID(fmt.Sprintf("S%d", chainLen-j))
			w.Library.AddCoord(model.CoordSpec{
				Kind: model.Mutex,
				Name: fmt.Sprintf("mx-%s-%s-%d", a, b, j),
				MutexSteps: []model.StepRef{
					{Workflow: a, Step: step},
					{Workflow: b, Step: step},
				},
			})
		}

		for j := 0; j < p.RD && j+2 <= chainLen; j++ {
			w.Library.AddCoord(model.CoordSpec{
				Kind:    model.RollbackDep,
				Name:    fmt.Sprintf("rd-%s-%s-%d", a, b, j),
				Trigger: model.StepRef{Workflow: a, Step: model.StepID(fmt.Sprintf("S%d", j+1))},
				Target:  model.StepRef{Workflow: b, Step: model.StepID(fmt.Sprintf("S%d", j+1))},
			})
		}
	}
}

// shouldFail injects a deterministic logical failure: a step fails on its
// first attempt with probability pf (retries succeed, so every workflow
// eventually commits).
func (w *Workload) shouldFail(wf string, step model.StepID, instance, attempt int) bool {
	if attempt > 1 {
		return false
	}
	return hash01(w.Seed, wf, string(step), fmt.Sprintf("fail%d", instance)) < w.Params.PF
}

// stepProgram registers and returns the program name for a step.
func (w *Workload) stepProgram(wf string, step model.StepID) string {
	name := fmt.Sprintf("p:%s:%s", wf, step)
	w.Programs.Register(name, func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		if w.shouldFail(wf, step, ctx.Instance, ctx.Attempt) {
			return nil, model.Fail("injected")
		}
		// Output depends on the input value and attempt so data genuinely
		// flows and changes across re-executions.
		in := 0.0
		for _, v := range ctx.Inputs {
			if f, ok := v.AsNum(); ok {
				in += f
			}
		}
		return map[string]expr.Value{
			"O1": expr.Num(math.Mod(in, 1e6) + float64(ctx.Attempt)),
		}, nil
	})
	return name
}

// compProgram registers and returns the compensation program for a step.
func (w *Workload) compProgram(wf string, step model.StepID) string {
	name := fmt.Sprintf("c:%s:%s", wf, step)
	w.Programs.Register(name, func(*model.ProgramContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	return name
}

// Plan describes the user-initiated actions for one instance.
type Plan struct {
	Abort        bool
	ChangeInputs bool
}

// PlanFor returns the deterministic user-action plan for an instance: abort
// with probability pa, else change inputs with probability pi.
func (w *Workload) PlanFor(wf string, instance int) Plan {
	h := hash01(w.Seed, wf, fmt.Sprintf("plan%d", instance))
	p := w.Params
	switch {
	case h < p.PA:
		return Plan{Abort: true}
	case h < p.PA+p.PI:
		return Plan{ChangeInputs: true}
	default:
		return Plan{}
	}
}

// Inputs returns the workflow inputs for an instance.
func (w *Workload) Inputs(instance int) map[string]expr.Value {
	return map[string]expr.Value{"I1": expr.Num(float64(instance))}
}

// ChangedInputs returns the altered inputs used by input-change plans.
func (w *Workload) ChangedInputs(instance int) map[string]expr.Value {
	return map[string]expr.Value{"I1": expr.Num(float64(instance) + 0.5)}
}
