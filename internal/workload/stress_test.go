package workload

import (
	"fmt"
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/distributed"
	"crew/internal/metrics"
	"crew/internal/wfdb"
)

// TestStressDistributedSeeds hammers the distributed architecture across
// seeds to flush out rare ordering-dependent hangs.
func TestStressDistributedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	p := analysis.Default()
	p.C = 4
	p.S = 10
	p.Z = 8
	p.A = 2
	p.F = 2
	p.R = 3
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 1
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w, err := Generate(p, seed)
			if err != nil {
				t.Fatal(err)
			}
			col := metrics.NewCollector()
			sys, err := distributed.NewSystem(distributed.SystemConfig{
				Library: w.Library, Programs: w.Programs, Collector: col,
				Agents: w.Agents, Logf: func(string, ...any) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if _, err := Drive(sys, w, 6, 10*time.Second); err != nil {
				t.Logf("drive error: %v", err)
				dump(t, sys, w)
				t.FailNow()
			}
		})
	}
}

func dump(t *testing.T, sys *distributed.System, w *Workload) {
	for _, wf := range w.Library.Names() {
		for i := 1; i <= 6; i++ {
			st, ok := sys.Status(wf, i)
			if ok && st != wfdb.Running {
				continue
			}
			t.Logf("--- stuck %s.%d (status=%v ok=%v)", wf, i, st, ok)
			for _, ag := range sys.AgentNames() {
				if snap, has := sys.SnapshotAt(ag, wf, i); has {
					t.Logf("  %s: ev=%s exec=%v", ag, snap.Events.String(), snap.ExecOrder)
					t.Logf("  %s dbg: %s", ag, sys.Agent(ag).DebugState(wf, i))
				}
			}
		}
	}
}
