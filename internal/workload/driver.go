package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/expr"
	"crew/internal/wfdb"
)

// Target is the architecture-independent face of a running WFMS deployment;
// the central, parallel and distributed System types all satisfy it.
type Target interface {
	Start(workflow string, inputs map[string]expr.Value) (int, error)
	Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error)
	Abort(workflow string, id int) error
	ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error
}

// SeqStarter is implemented by targets that can launch an instance under an
// externally assigned ID and global sequence number. Placement becomes a pure
// function of (workflow, id, seq), so a concurrent driver reproduces exactly
// the instance IDs and engine assignment a sequential Start loop would have
// produced, regardless of goroutine scheduling.
type SeqStarter interface {
	StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error
}

// Result summarizes a driver run.
type Result struct {
	Instances  int
	Committed  int
	Aborted    int
	UserAborts int
	InputEdits int
	Elapsed    time.Duration
}

// forEach runs work(i) for every i in [0, n) on a bounded worker pool.
func forEach(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// Drive runs `instances` instances of every schema in the workload against a
// target, applying the deterministic per-instance plan (aborts and input
// changes per pa/pi). It waits for every instance to terminate.
//
// Targets implementing SeqStarter are driven by a bounded worker pool:
// starts, user actions and waits each fan out concurrently. Instance IDs and
// sequence numbers are precomputed from the sorted schema order, so the
// workload lands on the same nodes as under the sequential legacy path.
func Drive(t Target, w *Workload, instances int, timeout time.Duration) (*Result, error) {
	return DriveRange(t, w, 1, instances, timeout)
}

// DriveRange is Drive over the explicit instance-id window [from, from+
// instances) per schema. Sustained-load harnesses call it once per round with
// increasing bases so successive rounds hit the same deployment with fresh
// ids instead of colliding with (or resurrecting) retired instances.
func DriveRange(t Target, w *Workload, from, instances int, timeout time.Duration) (*Result, error) {
	start := time.Now()
	res := &Result{}
	type ref struct {
		wf   string
		id   int
		plan Plan
	}
	var refs []ref

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	if ss, ok := t.(SeqStarter); ok {
		for _, wf := range w.Library.Names() {
			for i := 0; i < instances; i++ {
				id := from + i
				refs = append(refs, ref{wf: wf, id: id, plan: w.PlanFor(wf, id)})
			}
		}
		var started atomic.Int64
		forEach(len(refs), func(k int) {
			r := refs[k]
			if err := ss.StartSeq(r.wf, r.id, k, w.Inputs(r.id-1)); err != nil {
				fail(fmt.Errorf("workload: start %s: %w", r.wf, err))
				return
			}
			started.Add(1)
		})
		res.Instances = int(started.Load())
		if firstErr != nil {
			return res, firstErr
		}
	} else {
		for _, wf := range w.Library.Names() {
			for i := 0; i < instances; i++ {
				id, err := t.Start(wf, w.Inputs(i))
				if err != nil {
					return res, fmt.Errorf("workload: start %s: %w", wf, err)
				}
				res.Instances++
				refs = append(refs, ref{wf: wf, id: id, plan: w.PlanFor(wf, id)})
			}
		}
	}

	// Apply user actions. Aborts may race with commit; both outcomes are
	// legitimate, so errors from Abort/ChangeInputs on finished instances
	// are ignored.
	var userAborts, inputEdits atomic.Int64
	forEach(len(refs), func(k int) {
		r := refs[k]
		switch {
		case r.plan.Abort:
			if err := t.Abort(r.wf, r.id); err == nil {
				userAborts.Add(1)
			}
		case r.plan.ChangeInputs:
			if err := t.ChangeInputs(r.wf, r.id, w.ChangedInputs(r.id)); err == nil {
				inputEdits.Add(1)
			}
		}
	})
	res.UserAborts = int(userAborts.Load())
	res.InputEdits = int(inputEdits.Load())

	var committed, aborted atomic.Int64
	forEach(len(refs), func(k int) {
		r := refs[k]
		st, err := t.Wait(r.wf, r.id, timeout)
		if err != nil {
			fail(fmt.Errorf("workload: wait %s.%d: %w", r.wf, r.id, err))
			return
		}
		switch st {
		case wfdb.Committed:
			committed.Add(1)
		case wfdb.Aborted:
			aborted.Add(1)
		}
	})
	res.Committed = int(committed.Load())
	res.Aborted = int(aborted.Load())
	if firstErr != nil {
		return res, firstErr
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
