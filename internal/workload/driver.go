package workload

import (
	"fmt"
	"time"

	"crew/internal/expr"
	"crew/internal/wfdb"
)

// Target is the architecture-independent face of a running WFMS deployment;
// the central, parallel and distributed System types all satisfy it.
type Target interface {
	Start(workflow string, inputs map[string]expr.Value) (int, error)
	Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error)
	Abort(workflow string, id int) error
	ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error
}

// Result summarizes a driver run.
type Result struct {
	Instances  int
	Committed  int
	Aborted    int
	UserAborts int
	InputEdits int
	Elapsed    time.Duration
}

// Drive runs `instances` instances of every schema in the workload against a
// target, applying the deterministic per-instance plan (aborts and input
// changes per pa/pi). It waits for every instance to terminate.
func Drive(t Target, w *Workload, instances int, timeout time.Duration) (*Result, error) {
	start := time.Now()
	res := &Result{}
	type ref struct {
		wf   string
		id   int
		plan Plan
	}
	var refs []ref
	for _, wf := range w.Library.Names() {
		for i := 0; i < instances; i++ {
			id, err := t.Start(wf, w.Inputs(i))
			if err != nil {
				return res, fmt.Errorf("workload: start %s: %w", wf, err)
			}
			res.Instances++
			refs = append(refs, ref{wf: wf, id: id, plan: w.PlanFor(wf, id)})
		}
	}
	// Apply user actions. Aborts may race with commit; both outcomes are
	// legitimate, so errors from Abort/ChangeInputs on finished instances
	// are ignored.
	for _, r := range refs {
		switch {
		case r.plan.Abort:
			if err := t.Abort(r.wf, r.id); err == nil {
				res.UserAborts++
			}
		case r.plan.ChangeInputs:
			if err := t.ChangeInputs(r.wf, r.id, w.ChangedInputs(r.id)); err == nil {
				res.InputEdits++
			}
		}
	}
	for _, r := range refs {
		st, err := t.Wait(r.wf, r.id, timeout)
		if err != nil {
			return res, fmt.Errorf("workload: wait %s.%d: %w", r.wf, r.id, err)
		}
		switch st {
		case wfdb.Committed:
			res.Committed++
		case wfdb.Aborted:
			res.Aborted++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
