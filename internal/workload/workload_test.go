package workload

import (
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/central"
	"crew/internal/distributed"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/parallel"
	"crew/internal/wfdb"
)

// smallParams returns a fast parameter point with every mechanism active.
func smallParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 4 // schemas
	p.S = 6 // steps
	p.Z = 6 // agents
	p.A = 2
	p.F = 2
	p.R = 2
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 1
	p.PF, p.PI, p.PA, p.PR = 0.15, 0.05, 0.05, 0.3
	return p
}

func TestGenerateStructure(t *testing.T) {
	p := smallParams()
	w, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	names := w.Library.Names()
	if len(names) != p.C {
		t.Fatalf("schemas = %d, want %d", len(names), p.C)
	}
	for _, name := range names {
		s := w.Library.Schema(name)
		if len(s.Steps) != p.S {
			t.Errorf("%s has %d steps, want %d", name, len(s.Steps), p.S)
		}
		if terms := s.TerminalSteps(); len(terms) != p.F {
			t.Errorf("%s has %d terminal steps, want %d", name, len(terms), p.F)
		}
		if starts := s.StartSteps(); len(starts) != 1 {
			t.Errorf("%s has %d start steps, want 1", name, len(starts))
		}
		for _, st := range s.StepList() {
			if len(st.EligibleAgents) != p.A {
				t.Errorf("%s.%s has %d eligible agents, want %d", name, st.ID, len(st.EligibleAgents), p.A)
			}
		}
		if len(s.AbortCompensate) != p.W {
			t.Errorf("%s abort set = %d, want %d", name, len(s.AbortCompensate), p.W)
		}
	}
	if err := w.Library.Validate(); err != nil {
		t.Fatal(err)
	}
	// Coordination specs exist for ro, me and rd.
	kinds := map[model.CoordKind]int{}
	for _, c := range w.Library.Coord {
		kinds[c.Kind]++
	}
	if kinds[model.RelativeOrder] == 0 || kinds[model.Mutex] == 0 || kinds[model.RollbackDep] == 0 {
		t.Errorf("coordination kinds = %v", kinds)
	}
}

func TestGenerateValidation(t *testing.T) {
	p := smallParams()
	p.S = 1
	if _, err := Generate(p, 1); err == nil {
		t.Error("s < 2 should fail")
	}
	p = smallParams()
	p.F = p.S
	if _, err := Generate(p, 1); err == nil {
		t.Error("f >= s should fail")
	}
}

func TestDeterminism(t *testing.T) {
	p := smallParams()
	w1, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds: identical eligibility, plans and failure decisions.
	for _, name := range w1.Library.Names() {
		s1, s2 := w1.Library.Schema(name), w2.Library.Schema(name)
		for _, id := range s1.Order {
			a1, a2 := s1.Steps[id].EligibleAgents, s2.Steps[id].EligibleAgents
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("eligibility differs for %s.%s", name, id)
				}
			}
		}
	}
	for i := 0; i < 50; i++ {
		if w1.PlanFor("WF01", i) != w2.PlanFor("WF01", i) {
			t.Fatalf("plan differs for instance %d", i)
		}
		if w1.shouldFail("WF01", "S2", i, 1) != w2.shouldFail("WF01", "S2", i, 1) {
			t.Fatalf("failure injection differs for instance %d", i)
		}
	}
	// Different seed changes something.
	w3, _ := Generate(p, 8)
	diff := false
	for i := 0; i < 200 && !diff; i++ {
		if w1.shouldFail("WF01", "S2", i, 1) != w3.shouldFail("WF01", "S2", i, 1) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical failure injection")
	}
}

func TestFailureInjectionRate(t *testing.T) {
	p := smallParams()
	p.PF = 0.2
	w, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, fails := 0, 0
	for i := 0; i < 2000; i++ {
		n++
		if w.shouldFail("WF01", "S3", i, 1) {
			fails++
		}
	}
	rate := float64(fails) / float64(n)
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("failure rate = %g, want about 0.2", rate)
	}
	// Retries never fail.
	for i := 0; i < 100; i++ {
		if w.shouldFail("WF01", "S3", i, 2) {
			t.Fatal("retry failed")
		}
	}
}

func TestPlanRates(t *testing.T) {
	p := smallParams()
	p.PA, p.PI = 0.1, 0.1
	w, _ := Generate(p, 5)
	aborts, edits := 0, 0
	const n = 3000
	for i := 0; i < n; i++ {
		pl := w.PlanFor("WF01", i)
		if pl.Abort {
			aborts++
		}
		if pl.ChangeInputs {
			edits++
		}
		if pl.Abort && pl.ChangeInputs {
			t.Fatal("plan has both actions")
		}
	}
	if ar := float64(aborts) / n; ar < 0.07 || ar > 0.13 {
		t.Errorf("abort rate = %g, want about 0.1", ar)
	}
	if er := float64(edits) / n; er < 0.07 || er > 0.13 {
		t.Errorf("edit rate = %g, want about 0.1", er)
	}
}

func TestAgentNames(t *testing.T) {
	names := AgentNames(3)
	if len(names) != 3 || names[0] != "agent01" || names[2] != "agent03" {
		t.Errorf("AgentNames = %v", names)
	}
}

// driveOn runs the workload on one architecture and sanity-checks totals.
func driveOn(t *testing.T, name string, target Target, col *metrics.Collector, w *Workload, instances int) *Result {
	t.Helper()
	res, err := Drive(target, w, instances, 30*time.Second)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want := len(w.Library.Names()) * instances
	if res.Instances != want {
		t.Fatalf("%s: started %d instances, want %d", name, res.Instances, want)
	}
	if res.Committed+res.Aborted != want {
		t.Fatalf("%s: %d committed + %d aborted != %d", name, res.Committed, res.Aborted, want)
	}
	if col.Messages(metrics.Normal) == 0 {
		t.Errorf("%s: no normal messages recorded", name)
	}
	return res
}

func TestDriveCentral(t *testing.T) {
	p := smallParams()
	w, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	sys, err := central.NewSystem(central.SystemConfig{
		Library:   w.Library,
		Programs:  w.Programs,
		Collector: col,
		Agents:    w.Agents,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := driveOn(t, "central", sys, col, w, 5)
	if res.Committed == 0 {
		t.Error("nothing committed")
	}
	// Coordination costs no messages in centralized control.
	if col.Messages(metrics.Coordination) != 0 {
		t.Errorf("central coordination messages = %d", col.Messages(metrics.Coordination))
	}
}

func TestDriveParallel(t *testing.T) {
	p := smallParams()
	w, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	sys, err := parallel.NewSystem(parallel.SystemConfig{
		Library:   w.Library,
		Programs:  w.Programs,
		Collector: col,
		Engines:   3,
		Agents:    w.Agents,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := driveOn(t, "parallel", sys, col, w, 5)
	if res.Committed == 0 {
		t.Error("nothing committed")
	}
}

func TestDriveDistributed(t *testing.T) {
	p := smallParams()
	w, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	sys, err := distributed.NewSystem(distributed.SystemConfig{
		Library:   w.Library,
		Programs:  w.Programs,
		Collector: col,
		Agents:    w.Agents,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := driveOn(t, "distributed", sys, col, w, 5)
	if res.Committed == 0 {
		t.Error("nothing committed")
	}
	// The headline scalability property: the most loaded node in the
	// distributed deployment carries far less than a central engine would.
	_, maxLoad := col.MaxNodeLoad(metrics.Normal)
	total := col.TotalLoad(metrics.Normal)
	if maxLoad*2 > total {
		t.Errorf("distributed load concentrated: max=%d total=%d", maxLoad, total)
	}
}

var _ Target = (*central.System)(nil)
var _ Target = (*parallel.System)(nil)
var _ Target = (*distributed.System)(nil)

var _ = wfdb.Running // keep import for clarity of driver contract
