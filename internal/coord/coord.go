// Package coord implements the coordinated-execution requirements across
// concurrent workflows: relative ordering, mutual exclusion, and rollback
// dependencies. The Tracker is the pure decision core; it is used directly
// (with zero messages) by the centralized engine, via engine-to-engine
// messages by the parallel architecture, and via the AddRule / AddEvent /
// AddPrecondition workflow interfaces between agents in the distributed
// architecture.
//
// Relative ordering follows the paper's Figure 4 protocol: the first pair of
// conflicting steps is ordered by whichever instance completes its member
// first, establishing a leading and a lagging workflow; every later
// conflicting pair must then execute in the same relative order, enforced by
// making the lagging step's rule wait for an injected event from the leading
// workflow.
package coord

import (
	"fmt"

	"crew/internal/model"
)

// InstanceRef identifies a workflow instance.
type InstanceRef struct {
	Workflow string
	ID       int
}

// String renders WF.id.
func (r InstanceRef) String() string { return fmt.Sprintf("%s.%d", r.Workflow, r.ID) }

// Injection is an event to inject into another instance's event table (the
// AddEvent() call the caller must perform, locally or via a message).
type Injection struct {
	Target InstanceRef
	Event  string
	// Step names the step of the target instance whose rule waits on the
	// event, when known. Distributed control uses it to route the AddEvent
	// message to the agents eligible for that step; architectures with a
	// single state holder per instance ignore it.
	Step model.StepID
}

// RollbackOrder instructs the caller to roll a dependent workflow class back
// to a target step (applied to that class's running instances).
type RollbackOrder struct {
	TargetWorkflow string
	TargetStep     model.StepID
}

// OrderEventName is the event a lagging instance waits on: "the leading
// instance completed its pair-k step".
func OrderEventName(specName string, pair int, leader InstanceRef) string {
	return fmt.Sprintf("ro:%s:%d:%s", specName, pair, leader)
}

// GrantEventName is the event that grants a mutex to an instance's step.
func GrantEventName(specName string, ref InstanceRef, step model.StepID) string {
	return fmt.Sprintf("mx:%s:%s:%s", specName, ref, step)
}

// roState tracks one relative-order spec: the enrollment queue and which
// pair-steps each enrolled instance has completed.
type roState struct {
	queue []InstanceRef
	pos   map[InstanceRef]int
	done  map[InstanceRef]map[int]bool
}

// muState tracks one mutex spec: the current holder and FIFO waiters.
type muState struct {
	held    bool
	holder  InstanceRef
	holding model.StepID
	waiters []muWaiter
}

type muWaiter struct {
	ref  InstanceRef
	step model.StepID
}

// Tracker holds the runtime coordination state for a library's specs. It is
// not safe for concurrent use; each owner serializes access (the central
// engine goroutine, or a spec's home node).
type Tracker struct {
	specs []model.CoordSpec
	ro    map[int]*roState
	mu    map[int]*muState
}

// NewTracker builds a tracker for the library's coordination specs.
func NewTracker(lib *model.Library) *Tracker {
	t := &Tracker{
		specs: append([]model.CoordSpec(nil), lib.Coord...),
		ro:    make(map[int]*roState),
		mu:    make(map[int]*muState),
	}
	for i, c := range t.specs {
		switch c.Kind {
		case model.RelativeOrder:
			t.ro[i] = &roState{pos: make(map[InstanceRef]int), done: make(map[InstanceRef]map[int]bool)}
		case model.Mutex:
			t.mu[i] = &muState{}
		}
	}
	return t
}

// Specs returns the tracked specs.
func (t *Tracker) Specs() []model.CoordSpec { return t.specs }

// pairIndex returns which conflict pair (if any) of spec i the step belongs
// to, or -1.
func (t *Tracker) pairIndex(i int, ref model.StepRef) int {
	for k, p := range t.specs[i].Pairs {
		if p.A == ref || p.B == ref {
			return k
		}
	}
	return -1
}

// pairStepFor returns the pair-k member belonging to the given workflow
// class, so the tracker can tell which step a queued instance must complete.
func pairStepFor(spec model.CoordSpec, k int, workflow string) (model.StepID, bool) {
	p := spec.Pairs[k]
	if p.A.Workflow == workflow {
		return p.A.Step, true
	}
	if p.B.Workflow == workflow {
		return p.B.Step, true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Relative ordering

// OrderWait reports what the instance must wait for before executing the
// given step. If the step is a pair-k member (k >= 1) of a relative-order
// spec and the instance's predecessor in the spec's queue has not yet
// completed its own pair-k step, OrderWait returns the event name the
// caller must add as a precondition (AddPrecondition) and true.
//
// Instances that have not enrolled (not yet completed a pair-0 step) never
// wait: the first conflicting pair *establishes* the order.
func (t *Tracker) OrderWait(ref model.StepRef, inst InstanceRef) (events []string) {
	for i, spec := range t.specs {
		if spec.Kind != model.RelativeOrder {
			continue
		}
		k := t.pairIndex(i, ref)
		if k < 1 {
			continue
		}
		st := t.ro[i]
		pos, enrolled := st.pos[inst]
		if !enrolled || pos == 0 {
			continue
		}
		pred := st.queue[pos-1]
		if st.done[pred][k] {
			continue
		}
		events = append(events, OrderEventName(spec.Name, k, pred))
	}
	return events
}

// OrderStepDone records completion of a step for relative ordering and
// returns the injections to deliver: for a pair-0 completion the instance
// enrolls in the queue (becoming leading or lagging); for a pair-k
// completion, the successor instance in the queue (if any) receives the
// order event it may be waiting on.
func (t *Tracker) OrderStepDone(ref model.StepRef, inst InstanceRef) []Injection {
	var out []Injection
	for i, spec := range t.specs {
		if spec.Kind != model.RelativeOrder {
			continue
		}
		k := t.pairIndex(i, ref)
		if k < 0 {
			continue
		}
		st := t.ro[i]
		if _, enrolled := st.pos[inst]; !enrolled {
			if k != 0 {
				continue // later pair without enrollment: spec starts at pair 0
			}
			st.pos[inst] = len(st.queue)
			st.queue = append(st.queue, inst)
			st.done[inst] = make(map[int]bool)
		}
		st.done[inst][k] = true
		// Notify the successor instance, if enrolled, that its wait for
		// this pair is satisfied.
		pos := st.pos[inst]
		if pos+1 < len(st.queue) {
			succ := st.queue[pos+1]
			inj := Injection{
				Target: succ,
				Event:  OrderEventName(spec.Name, k, inst),
			}
			if step, ok := pairStepFor(spec, k, succ.Workflow); ok {
				inj.Step = step
			}
			out = append(out, inj)
		}
	}
	return out
}

// OrderRole reports the instance's role in a relative-order spec by name:
// "leading" (queue head), "lagging" (enrolled behind the head), or ""
// (not enrolled / unknown spec). Workflow packets carry this (Figure 7's
// "R.O. Leading / R.O. Lagging" lines).
func (t *Tracker) OrderRole(specName string, inst InstanceRef) string {
	for i, spec := range t.specs {
		if spec.Kind != model.RelativeOrder || spec.Name != specName {
			continue
		}
		st := t.ro[i]
		pos, ok := st.pos[inst]
		if !ok {
			return ""
		}
		if pos == 0 {
			return "leading"
		}
		return "lagging"
	}
	return ""
}

// OrderQueue returns the enrollment queue of a relative-order spec.
func (t *Tracker) OrderQueue(specName string) []InstanceRef {
	for i, spec := range t.specs {
		if spec.Kind == model.RelativeOrder && spec.Name == specName {
			return append([]InstanceRef(nil), t.ro[i].queue...)
		}
	}
	return nil
}

// OrderForget removes a terminated instance from all relative-order queues.
// Later instances' waits against it are satisfied by injections for every
// pair, as a vanished leader must not block the queue.
func (t *Tracker) OrderForget(inst InstanceRef) []Injection {
	var out []Injection
	for i, spec := range t.specs {
		if spec.Kind != model.RelativeOrder {
			continue
		}
		st := t.ro[i]
		pos, ok := st.pos[inst]
		if !ok {
			continue
		}
		// Release the successor from all pair waits on this instance.
		if pos+1 < len(st.queue) {
			succ := st.queue[pos+1]
			for k := range spec.Pairs {
				if k == 0 {
					continue
				}
				if !st.done[inst][k] {
					inj := Injection{Target: succ, Event: OrderEventName(spec.Name, k, inst)}
					if step, ok := pairStepFor(spec, k, succ.Workflow); ok {
						inj.Step = step
					}
					out = append(out, inj)
				}
			}
		}
		// Compact the queue.
		st.queue = append(st.queue[:pos], st.queue[pos+1:]...)
		delete(st.pos, inst)
		delete(st.done, inst)
		for j := pos; j < len(st.queue); j++ {
			st.pos[st.queue[j]] = j
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Mutual exclusion

// mutexSpecsFor returns the indices of mutex specs containing the step.
func (t *Tracker) mutexSpecsFor(ref model.StepRef) []int {
	var out []int
	for i, spec := range t.specs {
		if spec.Kind != model.Mutex {
			continue
		}
		for _, r := range spec.MutexSteps {
			if r == ref {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// MutexAcquire requests the mutexes covering a step for an instance. It
// returns the grant injections that are immediately available; if the step
// needs a lock that is held, the instance is queued and the grant arrives
// from a later MutexRelease. The caller gates step execution on having
// received grants for all returned waitEvents.
func (t *Tracker) MutexAcquire(ref model.StepRef, inst InstanceRef) (grants []Injection, waitEvents []string) {
	for _, i := range t.mutexSpecsFor(ref) {
		spec := t.specs[i]
		st := t.mu[i]
		ev := GrantEventName(spec.Name, inst, ref.Step)
		waitEvents = append(waitEvents, ev)
		if !st.held {
			st.held = true
			st.holder = inst
			st.holding = ref.Step
			grants = append(grants, Injection{Target: inst, Event: ev, Step: ref.Step})
			continue
		}
		if st.holder == inst && st.holding == ref.Step {
			grants = append(grants, Injection{Target: inst, Event: ev, Step: ref.Step})
			continue
		}
		queued := false
		for _, w := range st.waiters {
			if w.ref == inst && w.step == ref.Step {
				queued = true
				break
			}
		}
		if !queued {
			st.waiters = append(st.waiters, muWaiter{ref: inst, step: ref.Step})
		}
	}
	return grants, waitEvents
}

// MutexRelease releases the mutexes covering a step and returns grant
// injections for the next waiters.
func (t *Tracker) MutexRelease(ref model.StepRef, inst InstanceRef) []Injection {
	var out []Injection
	for _, i := range t.mutexSpecsFor(ref) {
		spec := t.specs[i]
		st := t.mu[i]
		if !st.held || st.holder != inst || st.holding != ref.Step {
			continue
		}
		if len(st.waiters) == 0 {
			st.held = false
			st.holder = InstanceRef{}
			st.holding = ""
			continue
		}
		next := st.waiters[0]
		st.waiters = st.waiters[1:]
		st.holder = next.ref
		st.holding = next.step
		out = append(out, Injection{Target: next.ref, Event: GrantEventName(spec.Name, next.ref, next.step), Step: next.step})
	}
	return out
}

// MutexForget releases any mutexes held by a terminated instance and drops
// it from waiter queues.
func (t *Tracker) MutexForget(inst InstanceRef) []Injection {
	var out []Injection
	for i, spec := range t.specs {
		if spec.Kind != model.Mutex {
			continue
		}
		st := t.mu[i]
		// Drop from waiters.
		kept := st.waiters[:0]
		for _, w := range st.waiters {
			if w.ref != inst {
				kept = append(kept, w)
			}
		}
		st.waiters = kept
		if st.held && st.holder == inst {
			out = append(out, t.MutexRelease(model.StepRef{Workflow: inst.Workflow, Step: st.holding}, inst)...)
			_ = spec
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Rollback dependency

// RollbackTriggered reports the rollback orders caused by invalidating the
// given steps of one instance during a rollback: for every rollback-
// dependency spec whose trigger is among the invalidated steps, dependent
// workflow classes must roll back to their target step.
func (t *Tracker) RollbackTriggered(workflow string, invalidated []model.StepID) []RollbackOrder {
	inv := make(map[model.StepID]bool, len(invalidated))
	for _, id := range invalidated {
		inv[id] = true
	}
	var out []RollbackOrder
	for _, spec := range t.specs {
		if spec.Kind != model.RollbackDep {
			continue
		}
		if spec.Trigger.Workflow == workflow && inv[spec.Trigger.Step] {
			out = append(out, RollbackOrder{
				TargetWorkflow: spec.Target.Workflow,
				TargetStep:     spec.Target.Step,
			})
		}
	}
	return out
}

// CoordinatedSteps returns all step refs mentioned by any spec; agents use
// it to know which steps carry coordination work (the paper's me+ro+rd).
func (t *Tracker) CoordinatedSteps() map[model.StepRef]bool {
	out := make(map[model.StepRef]bool)
	for _, spec := range t.specs {
		switch spec.Kind {
		case model.Mutex:
			for _, r := range spec.MutexSteps {
				out[r] = true
			}
		case model.RelativeOrder:
			for _, p := range spec.Pairs {
				out[p.A] = true
				out[p.B] = true
			}
		case model.RollbackDep:
			out[spec.Trigger] = true
			out[spec.Target] = true
		}
	}
	return out
}

// MutexDebug renders the mutex state of every mutex spec, for diagnostics.
func (t *Tracker) MutexDebug() []string {
	var out []string
	for i, spec := range t.specs {
		if spec.Kind != model.Mutex {
			continue
		}
		st := t.mu[i]
		line := fmt.Sprintf("%s held=%v holder=%s holding=%s waiters=[", spec.Name, st.held, st.holder, st.holding)
		for j, w := range st.waiters {
			if j > 0 {
				line += " "
			}
			line += w.ref.String() + ":" + string(w.step)
		}
		out = append(out, line+"]")
	}
	return out
}
