package coord

import (
	"testing"

	"crew/internal/model"
)

// libWithOrder builds two order-processing classes with a two-pair
// relative-order spec — the paper's Figure 2 scenario (S12/S23 and S14/S25).
func libWithOrder(t *testing.T) *model.Library {
	t.Helper()
	wf1 := model.NewSchema("WF1").
		Step("S11", "p").Step("S12", "p").Step("S13", "p").Step("S14", "p").
		Seq("S11", "S12", "S13", "S14").
		MustBuild()
	wf2 := model.NewSchema("WF2").
		Step("S21", "p").Step("S23", "p").Step("S24", "p").Step("S25", "p").
		Seq("S21", "S23", "S24", "S25").
		MustBuild()
	lib := model.NewLibrary()
	lib.Add(wf1)
	lib.Add(wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "WF1", Step: "S12"}, B: model.StepRef{Workflow: "WF2", Step: "S23"}},
			{A: model.StepRef{Workflow: "WF1", Step: "S14"}, B: model.StepRef{Workflow: "WF2", Step: "S25"}},
		},
	})
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	return lib
}

func libWithMutex(t *testing.T) *model.Library {
	t.Helper()
	a := model.NewSchema("A").Step("S1", "p").Step("S2", "p").Seq("S1", "S2").MustBuild()
	b := model.NewSchema("B").Step("T1", "p").Step("T2", "p").Seq("T1", "T2").MustBuild()
	lib := model.NewLibrary()
	lib.Add(a)
	lib.Add(b)
	lib.AddCoord(model.CoordSpec{
		Kind: model.Mutex,
		Name: "inv",
		MutexSteps: []model.StepRef{
			{Workflow: "A", Step: "S2"},
			{Workflow: "B", Step: "T2"},
		},
	})
	return lib
}

func TestRelativeOrderEstablishment(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	i1 := InstanceRef{Workflow: "WF1", ID: 1}
	i2 := InstanceRef{Workflow: "WF2", ID: 1}

	// WF2 completes its pair-0 step first: it becomes leading.
	inj := tr.OrderStepDone(model.StepRef{Workflow: "WF2", Step: "S23"}, i2)
	if len(inj) != 0 {
		t.Errorf("first enrollment should not notify anyone: %v", inj)
	}
	inj = tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S12"}, i1)
	if len(inj) != 0 {
		t.Errorf("second enrollment should not notify (pair-0 already done by leader): %v", inj)
	}
	if got := tr.OrderRole("orders", i2); got != "leading" {
		t.Errorf("WF2.1 role = %q, want leading", got)
	}
	if got := tr.OrderRole("orders", i1); got != "lagging" {
		t.Errorf("WF1.1 role = %q, want lagging", got)
	}
	if got := tr.OrderRole("orders", InstanceRef{Workflow: "WF1", ID: 9}); got != "" {
		t.Errorf("unenrolled role = %q", got)
	}
	if got := tr.OrderRole("nope", i1); got != "" {
		t.Errorf("unknown spec role = %q", got)
	}
	q := tr.OrderQueue("orders")
	if len(q) != 2 || q[0] != i2 || q[1] != i1 {
		t.Errorf("queue = %v", q)
	}
	if tr.OrderQueue("nope") != nil {
		t.Error("unknown spec queue should be nil")
	}
}

func TestRelativeOrderLaggingWaits(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	i1 := InstanceRef{Workflow: "WF1", ID: 1}
	i2 := InstanceRef{Workflow: "WF2", ID: 1}

	tr.OrderStepDone(model.StepRef{Workflow: "WF2", Step: "S23"}, i2) // leader
	tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S12"}, i1) // lagging

	// Lagging WF1.1 wants to execute S14 (pair 1): must wait for the leader.
	waits := tr.OrderWait(model.StepRef{Workflow: "WF1", Step: "S14"}, i1)
	if len(waits) != 1 {
		t.Fatalf("waits = %v", waits)
	}
	want := OrderEventName("orders", 1, i2)
	if waits[0] != want {
		t.Errorf("wait event = %q, want %q", waits[0], want)
	}

	// Leading instance never waits.
	if w := tr.OrderWait(model.StepRef{Workflow: "WF2", Step: "S25"}, i2); len(w) != 0 {
		t.Errorf("leader waits = %v", w)
	}

	// Leader completes pair-1 step: injection targets the lagging instance.
	inj := tr.OrderStepDone(model.StepRef{Workflow: "WF2", Step: "S25"}, i2)
	if len(inj) != 1 || inj[0].Target != i1 || inj[0].Event != want {
		t.Errorf("injections = %v", inj)
	}

	// After the event, the lagging instance no longer waits.
	if w := tr.OrderWait(model.StepRef{Workflow: "WF1", Step: "S14"}, i1); len(w) != 0 {
		t.Errorf("waits after leader done = %v", w)
	}
}

func TestRelativeOrderPairStepOfUnknownClassIgnored(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	i9 := InstanceRef{Workflow: "WF9", ID: 1}
	if inj := tr.OrderStepDone(model.StepRef{Workflow: "WF9", Step: "SX"}, i9); len(inj) != 0 {
		t.Errorf("unrelated step produced injections: %v", inj)
	}
	if w := tr.OrderWait(model.StepRef{Workflow: "WF9", Step: "SX"}, i9); len(w) != 0 {
		t.Errorf("unrelated step produced waits: %v", w)
	}
}

func TestRelativeOrderLaterPairWithoutEnrollment(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	i1 := InstanceRef{Workflow: "WF1", ID: 1}
	// Completing pair-1 without pair-0 does not enroll.
	tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S14"}, i1)
	if q := tr.OrderQueue("orders"); len(q) != 0 {
		t.Errorf("queue = %v, want empty", q)
	}
}

func TestRelativeOrderThreeInstancesChain(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	a := InstanceRef{Workflow: "WF1", ID: 1}
	b := InstanceRef{Workflow: "WF2", ID: 1}
	c := InstanceRef{Workflow: "WF1", ID: 2}
	tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S12"}, a)
	tr.OrderStepDone(model.StepRef{Workflow: "WF2", Step: "S23"}, b)
	tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S12"}, c)

	// c waits on b (its immediate predecessor), not on a.
	waits := tr.OrderWait(model.StepRef{Workflow: "WF1", Step: "S14"}, c)
	if len(waits) != 1 || waits[0] != OrderEventName("orders", 1, b) {
		t.Errorf("waits = %v", waits)
	}
	// b waits on a.
	waits = tr.OrderWait(model.StepRef{Workflow: "WF2", Step: "S25"}, b)
	if len(waits) != 1 || waits[0] != OrderEventName("orders", 1, a) {
		t.Errorf("waits = %v", waits)
	}
}

func TestOrderForget(t *testing.T) {
	lib := libWithOrder(t)
	tr := NewTracker(lib)
	a := InstanceRef{Workflow: "WF1", ID: 1}
	b := InstanceRef{Workflow: "WF2", ID: 1}
	tr.OrderStepDone(model.StepRef{Workflow: "WF1", Step: "S12"}, a)
	tr.OrderStepDone(model.StepRef{Workflow: "WF2", Step: "S23"}, b)

	// Leader a vanishes (aborted): successor b gets released for pair 1.
	inj := tr.OrderForget(a)
	if len(inj) != 1 || inj[0].Target != b || inj[0].Event != OrderEventName("orders", 1, a) {
		t.Errorf("forget injections = %v", inj)
	}
	q := tr.OrderQueue("orders")
	if len(q) != 1 || q[0] != b {
		t.Errorf("queue after forget = %v", q)
	}
	if tr.OrderRole("orders", b) != "leading" {
		t.Error("survivor should now lead")
	}
	// Forgetting an unenrolled instance is a no-op.
	if inj := tr.OrderForget(InstanceRef{Workflow: "WF1", ID: 99}); len(inj) != 0 {
		t.Errorf("no-op forget = %v", inj)
	}
}

func TestMutexAcquireRelease(t *testing.T) {
	lib := libWithMutex(t)
	tr := NewTracker(lib)
	a1 := InstanceRef{Workflow: "A", ID: 1}
	b1 := InstanceRef{Workflow: "B", ID: 1}
	refA := model.StepRef{Workflow: "A", Step: "S2"}
	refB := model.StepRef{Workflow: "B", Step: "T2"}

	grants, waits := tr.MutexAcquire(refA, a1)
	if len(grants) != 1 || len(waits) != 1 {
		t.Fatalf("first acquire = (%v, %v)", grants, waits)
	}
	if grants[0].Event != GrantEventName("inv", a1, "S2") {
		t.Errorf("grant event = %q", grants[0].Event)
	}

	// Second acquirer queues.
	grants2, waits2 := tr.MutexAcquire(refB, b1)
	if len(grants2) != 0 || len(waits2) != 1 {
		t.Fatalf("second acquire = (%v, %v)", grants2, waits2)
	}

	// Releasing grants to the waiter.
	rel := tr.MutexRelease(refA, a1)
	if len(rel) != 1 || rel[0].Target != b1 || rel[0].Event != GrantEventName("inv", b1, "T2") {
		t.Errorf("release = %v", rel)
	}
	// Release by the new holder with no waiters frees the lock.
	if rel := tr.MutexRelease(refB, b1); len(rel) != 0 {
		t.Errorf("final release = %v", rel)
	}
	// Lock is free again.
	grants3, _ := tr.MutexAcquire(refA, a1)
	if len(grants3) != 1 {
		t.Error("lock not free after releases")
	}
}

func TestMutexReacquireByHolderIsIdempotent(t *testing.T) {
	lib := libWithMutex(t)
	tr := NewTracker(lib)
	a1 := InstanceRef{Workflow: "A", ID: 1}
	refA := model.StepRef{Workflow: "A", Step: "S2"}
	tr.MutexAcquire(refA, a1)
	grants, _ := tr.MutexAcquire(refA, a1)
	if len(grants) != 1 {
		t.Errorf("re-acquire by holder should re-grant: %v", grants)
	}
}

func TestMutexReleaseByNonHolderIgnored(t *testing.T) {
	lib := libWithMutex(t)
	tr := NewTracker(lib)
	a1 := InstanceRef{Workflow: "A", ID: 1}
	b1 := InstanceRef{Workflow: "B", ID: 1}
	tr.MutexAcquire(model.StepRef{Workflow: "A", Step: "S2"}, a1)
	if rel := tr.MutexRelease(model.StepRef{Workflow: "B", Step: "T2"}, b1); len(rel) != 0 {
		t.Errorf("non-holder release = %v", rel)
	}
	// Lock still held by a1.
	_, waits := tr.MutexAcquire(model.StepRef{Workflow: "B", Step: "T2"}, b1)
	if len(waits) != 1 {
		t.Error("lock should still be held")
	}
}

func TestMutexForget(t *testing.T) {
	lib := libWithMutex(t)
	tr := NewTracker(lib)
	a1 := InstanceRef{Workflow: "A", ID: 1}
	b1 := InstanceRef{Workflow: "B", ID: 1}
	tr.MutexAcquire(model.StepRef{Workflow: "A", Step: "S2"}, a1)
	tr.MutexAcquire(model.StepRef{Workflow: "B", Step: "T2"}, b1) // queued

	inj := tr.MutexForget(a1)
	if len(inj) != 1 || inj[0].Target != b1 {
		t.Errorf("forget should grant to waiter: %v", inj)
	}
	// Forgetting a waiter removes it from the queue.
	a2 := InstanceRef{Workflow: "A", ID: 2}
	tr.MutexAcquire(model.StepRef{Workflow: "A", Step: "S2"}, a2) // queued behind b1
	if inj := tr.MutexForget(a2); len(inj) != 0 {
		t.Errorf("forgetting waiter should not grant: %v", inj)
	}
	rel := tr.MutexRelease(model.StepRef{Workflow: "B", Step: "T2"}, b1)
	if len(rel) != 0 {
		t.Errorf("queue should be empty after waiter forgotten: %v", rel)
	}
}

func TestRollbackTriggered(t *testing.T) {
	lib := libWithOrder(t)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "WF1", Step: "S13"},
		Target:  model.StepRef{Workflow: "WF2", Step: "S23"},
	})
	tr := NewTracker(lib)

	orders := tr.RollbackTriggered("WF1", []model.StepID{"S13", "S14"})
	if len(orders) != 1 || orders[0].TargetWorkflow != "WF2" || orders[0].TargetStep != "S23" {
		t.Errorf("orders = %v", orders)
	}
	// Rollback not covering the trigger: nothing.
	if got := tr.RollbackTriggered("WF1", []model.StepID{"S14"}); len(got) != 0 {
		t.Errorf("non-trigger rollback = %v", got)
	}
	// Different class: nothing.
	if got := tr.RollbackTriggered("WF2", []model.StepID{"S13"}); len(got) != 0 {
		t.Errorf("wrong class rollback = %v", got)
	}
}

func TestCoordinatedSteps(t *testing.T) {
	lib := libWithOrder(t)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "WF1", Step: "S13"},
		Target:  model.StepRef{Workflow: "WF2", Step: "S23"},
	})
	lib.AddCoord(model.CoordSpec{
		Kind: model.Mutex,
		Name: "mx",
		MutexSteps: []model.StepRef{
			{Workflow: "WF1", Step: "S11"},
			{Workflow: "WF2", Step: "S21"},
		},
	})
	tr := NewTracker(lib)
	got := tr.CoordinatedSteps()
	for _, ref := range []model.StepRef{
		{Workflow: "WF1", Step: "S12"}, {Workflow: "WF2", Step: "S23"},
		{Workflow: "WF1", Step: "S14"}, {Workflow: "WF2", Step: "S25"},
		{Workflow: "WF1", Step: "S13"}, {Workflow: "WF1", Step: "S11"},
		{Workflow: "WF2", Step: "S21"},
	} {
		if !got[ref] {
			t.Errorf("missing coordinated step %v", ref)
		}
	}
	if got[model.StepRef{Workflow: "WF1", Step: "S99"}] {
		t.Error("unexpected coordinated step")
	}
}

func TestInstanceRefString(t *testing.T) {
	if (InstanceRef{Workflow: "WF3", ID: 15}).String() != "WF3.15" {
		t.Error("InstanceRef.String wrong")
	}
}
