package event

import "testing"

// TestPostAllocBudget guards the event-table hot path the hotalloc analyzer
// gates (//crew:hotpath on Post): re-posting an existing event — the
// steady-state shape, since loops re-post step.done every iteration — must
// not allocate.
func TestPostAllocBudget(t *testing.T) {
	tab := NewTable()
	tab.Post("step.done") // inserts the entry
	avg := testing.AllocsPerRun(500, func() {
		tab.Post("step.done")
	})
	if avg > 0 {
		t.Errorf("Post allocates %.2f/op on an existing entry, budget 0", avg)
	}
}
