package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNameConstructors(t *testing.T) {
	if got := DoneName("S4"); got != "S4.done" {
		t.Errorf("DoneName = %q", got)
	}
	if got := FailName("S4"); got != "S4.fail" {
		t.Errorf("FailName = %q", got)
	}
	if got := CompensatedName("S4"); got != "S4.compensated" {
		t.Errorf("CompensatedName = %q", got)
	}
	if got := ExternalName("WF1", 3, "S12.done"); got != "ext:WF1.3:S12.done" {
		t.Errorf("ExternalName = %q", got)
	}
	if !IsExternalName("ext:WF1.3:S12.done") || IsExternalName("S12.done") {
		t.Error("IsExternalName misclassifies")
	}
}

func TestStepOfDone(t *testing.T) {
	cases := map[string]string{
		"S4.done":            "S4",
		"S4.fail":            "",
		"WF.done":            "",
		"ext:WF1.3:S12.done": "",
		"Reserve.done":       "Reserve",
		"S4.compensated":     "",
	}
	for name, want := range cases {
		if got := StepOfDone(name); got != want {
			t.Errorf("StepOfDone(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestKindOfName(t *testing.T) {
	cases := map[string]Kind{
		"WF.start":          WorkflowStart,
		"WF.done":           WorkflowDone,
		"WF.abort":          WorkflowAbort,
		"S1.done":           StepDone,
		"S1.fail":           StepFail,
		"S1.compensated":    StepCompensated,
		"ext:WF2.1:S3.done": External,
		"something":         External,
	}
	for name, want := range cases {
		if got := KindOfName(name); got != want {
			t.Errorf("KindOfName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{WorkflowStart, StepDone, StepFail, StepCompensated, WorkflowDone, WorkflowAbort, External} {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("Kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind should render numerically")
	}
}

func TestPostHasInvalidate(t *testing.T) {
	tab := NewTable()
	if tab.Has("S1.done") {
		t.Error("empty table Has = true")
	}
	if !tab.Post("S1.done") {
		t.Error("first Post should report change")
	}
	if !tab.Has("S1.done") {
		t.Error("Has after Post = false")
	}
	if tab.Post("S1.done") {
		t.Error("re-Post of valid event should not report change")
	}
	if tab.Count("S1.done") != 2 {
		t.Errorf("Count = %d, want 2", tab.Count("S1.done"))
	}
	if !tab.Invalidate("S1.done") {
		t.Error("Invalidate of valid event should return true")
	}
	if tab.Has("S1.done") {
		t.Error("Has after Invalidate = true")
	}
	if tab.Invalidate("S1.done") {
		t.Error("double Invalidate should return false")
	}
	if tab.Invalidate("missing") {
		t.Error("Invalidate of absent event should return false")
	}
	// Re-post revalidates.
	if !tab.Post("S1.done") {
		t.Error("Post after Invalidate should report change")
	}
	if !tab.Has("S1.done") || tab.Count("S1.done") != 3 {
		t.Error("re-validation failed")
	}
}

func TestInvalidateWhere(t *testing.T) {
	tab := NewTable()
	for _, n := range []string{"S1.done", "S2.done", "S3.done", "WF.start"} {
		tab.Post(n)
	}
	n := tab.InvalidateWhere(func(name string) bool {
		return name == "S2.done" || name == "S3.done"
	})
	if n != 2 {
		t.Errorf("InvalidateWhere = %d, want 2", n)
	}
	if !tab.Has("S1.done") || tab.Has("S2.done") || tab.Has("S3.done") || !tab.Has("WF.start") {
		t.Error("wrong events invalidated")
	}
	if again := tab.InvalidateWhere(func(string) bool { return true }); again != 2 {
		t.Errorf("second InvalidateWhere = %d, want 2 (S1, WF.start)", again)
	}
}

func TestValidNamesSortedAndLen(t *testing.T) {
	tab := NewTable()
	tab.Post("b")
	tab.Post("a")
	tab.Post("c")
	tab.Invalidate("b")
	got := tab.ValidNames()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("ValidNames = %v, want [a c]", got)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if s := tab.String(); s != "a c" {
		t.Errorf("String = %q, want \"a c\"", s)
	}
}

func TestMerge(t *testing.T) {
	tab := NewTable()
	tab.Post("a")
	n := tab.Merge([]string{"a", "b", "c"})
	if n != 2 {
		t.Errorf("Merge new count = %d, want 2", n)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !tab.Has(name) {
			t.Errorf("after Merge missing %q", name)
		}
	}
}

func TestSeqChangesOnMutation(t *testing.T) {
	tab := NewTable()
	s0 := tab.Seq()
	tab.Post("a")
	s1 := tab.Seq()
	if s1 == s0 {
		t.Error("Seq unchanged after Post")
	}
	tab.Invalidate("a")
	if tab.Seq() == s1 {
		t.Error("Seq unchanged after Invalidate")
	}
	s2 := tab.Seq()
	tab.InvalidateWhere(func(string) bool { return false })
	if tab.Seq() != s2 {
		t.Error("Seq changed by no-op InvalidateWhere")
	}
}

func TestClone(t *testing.T) {
	tab := NewTable()
	tab.Post("a")
	tab.Post("b")
	tab.Invalidate("b")
	c := tab.Clone()
	tab.Post("c")
	tab.Invalidate("a")
	if !c.Has("a") || c.Has("b") || c.Has("c") {
		t.Error("Clone not isolated from original")
	}
	if c.Count("b") != 1 {
		t.Errorf("Clone lost counts: %d", c.Count("b"))
	}
}

// Property: after any sequence of posts and invalidations, ValidNames
// contains exactly the names whose last operation was a post.
func TestPropertyTableConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		tab := NewTable()
		last := make(map[string]bool)
		names := []string{"a", "b", "c", "d"}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			if op%2 == 0 {
				tab.Post(name)
				last[name] = true
			} else {
				tab.Invalidate(name)
				last[name] = false
			}
		}
		for _, n := range names {
			if tab.Has(n) != last[n] {
				return false
			}
		}
		valid := 0
		for _, v := range last {
			if v {
				valid++
			}
		}
		return tab.Len() == valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge is idempotent — merging the same names twice yields the
// same table as merging once.
func TestPropertyMergeIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		names := make([]string, len(raw))
		for i, r := range raw {
			names[i] = string(rune('a' + r%6))
		}
		t1 := NewTable()
		t1.Merge(names)
		t2 := NewTable()
		t2.Merge(names)
		t2.Merge(names)
		v1, v2 := t1.ValidNames(), t2.ValidNames()
		if len(v1) != len(v2) {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
