// Package event defines the event vocabulary of the rule-based workflow
// run-time (workflow.start, step.done, step.fail, step.compensated,
// workflow.done, workflow.abort, and externally injected coordination
// events), and the per-instance event table with the invalidation semantics
// the paper requires: when a workflow is rolled back, step.done events of
// steps that are successors of the rollback origin are invalidated so that
// stale rules cannot fire, which is also how race conditions between parallel
// threads are avoided.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies events.
type Kind int

const (
	// WorkflowStart is generated when an instance is created.
	WorkflowStart Kind = iota
	// StepDone is generated when a step completes successfully.
	StepDone
	// StepFail is generated when a step fails logically.
	StepFail
	// StepCompensated is generated when a step's compensation completes.
	StepCompensated
	// WorkflowDone is generated when the workflow commits.
	WorkflowDone
	// WorkflowAbort is generated when the workflow aborts.
	WorkflowAbort
	// External marks coordination events injected by AddEvent from other
	// workflow instances (e.g. relative-ordering notifications).
	External
)

// String names the kind using the paper's dotted notation.
func (k Kind) String() string {
	switch k {
	case WorkflowStart:
		return "workflow.start"
	case StepDone:
		return "step.done"
	case StepFail:
		return "step.fail"
	case StepCompensated:
		return "step.compensated"
	case WorkflowDone:
		return "workflow.done"
	case WorkflowAbort:
		return "workflow.abort"
	case External:
		return "external"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Canonical event-name constructors. Rules wait on these names.

// WorkflowStartName is the event posted when an instance starts.
const WorkflowStartName = "WF.start"

// WorkflowDoneName is the event posted when an instance commits.
const WorkflowDoneName = "WF.done"

// WorkflowAbortName is the event posted when an instance aborts.
const WorkflowAbortName = "WF.abort"

// DoneName returns the step.done event name for a step.
func DoneName(step string) string { return step + ".done" }

// FailName returns the step.fail event name for a step.
func FailName(step string) string { return step + ".fail" }

// CompensatedName returns the step.compensated event name for a step.
func CompensatedName(step string) string { return step + ".compensated" }

// ExternalName returns the canonical name for a coordination event injected
// from another workflow instance, e.g. ext:WF1.3:S12.done — the form carried
// in the "Events" section of a workflow packet (paper Figure 7 shows entries
// such as WF1.S and S1.D; we keep instance qualification to disambiguate
// concurrent instances).
func ExternalName(workflow string, instance int, suffix string) string {
	return fmt.Sprintf("ext:%s.%d:%s", workflow, instance, suffix)
}

// IsExternalName reports whether name denotes an injected coordination event.
func IsExternalName(name string) bool { return strings.HasPrefix(name, "ext:") }

// StepOfDone extracts the step ID from a step.done event name, or "" if the
// name is not a step.done event.
func StepOfDone(name string) string {
	if s, ok := strings.CutSuffix(name, ".done"); ok && !IsExternalName(name) && s != "WF" {
		return s
	}
	return ""
}

// KindOfName infers the event kind from a canonical name.
func KindOfName(name string) Kind {
	switch {
	case IsExternalName(name):
		return External
	case name == WorkflowStartName:
		return WorkflowStart
	case name == WorkflowDoneName:
		return WorkflowDone
	case name == WorkflowAbortName:
		return WorkflowAbort
	case strings.HasSuffix(name, ".done"):
		return StepDone
	case strings.HasSuffix(name, ".fail"):
		return StepFail
	case strings.HasSuffix(name, ".compensated"):
		return StepCompensated
	default:
		return External
	}
}

// entry records an event occurrence. count counts total occurrences (loops
// re-post step.done on every iteration); valid marks whether the latest
// occurrence is still valid or has been invalidated by a rollback.
type entry struct {
	count int
	valid bool
}

// Observer receives every table mutation: posted is true for Post (the
// event's occurrence count grew), false for an invalidation; wasValid and
// nowValid frame the validity transition. Observers must not mutate the
// table from the callback.
type Observer func(name string, posted, wasValid, nowValid bool)

// Table is the per-instance event table. It is not safe for concurrent use;
// each owner (engine or agent goroutine) serializes access.
type Table struct {
	entries map[string]entry
	seq     int // bumps on every mutation; used to detect staleness cheaply
	obs     Observer
}

// NewTable returns an empty event table.
func NewTable() *Table {
	return &Table{entries: make(map[string]entry)}
}

// SetObserver installs the mutation observer (nil removes it). A table has
// at most one observer — the rule engine bound to it — which is how bound
// engines track rule satisfaction incrementally. Clones and imported tables
// start with no observer.
func (t *Table) SetObserver(fn Observer) { t.obs = fn }

// Post records an occurrence of the named event and returns true if this
// changed the table (the event was previously absent or invalidated).
//
//crew:hotpath
func (t *Table) Post(name string) bool {
	e := t.entries[name]
	changed := !e.valid
	e.count++
	e.valid = true
	t.entries[name] = e
	t.seq++
	if t.obs != nil {
		t.obs(name, true, !changed, true)
	}
	return changed
}

// Has reports whether the named event has a valid occurrence.
func (t *Table) Has(name string) bool {
	return t.entries[name].valid
}

// Count returns the total number of times the event has been posted,
// including occurrences that were later invalidated.
func (t *Table) Count(name string) int {
	return t.entries[name].count
}

// Invalidate marks the named event invalid and returns whether it was valid.
func (t *Table) Invalidate(name string) bool {
	e, ok := t.entries[name]
	if !ok || !e.valid {
		return false
	}
	e.valid = false
	t.entries[name] = e
	t.seq++
	if t.obs != nil {
		t.obs(name, false, true, false)
	}
	return true
}

// InvalidateWhere invalidates every valid event whose name satisfies pred and
// returns how many were invalidated.
func (t *Table) InvalidateWhere(pred func(name string) bool) int {
	n := 0
	for name, e := range t.entries {
		if e.valid && pred(name) {
			e.valid = false
			t.entries[name] = e
			n++
			if t.obs != nil {
				t.obs(name, false, true, false)
			}
		}
	}
	if n > 0 {
		t.seq++
	}
	return n
}

// RangeValid calls fn for every valid event, in unspecified order, without
// allocating. Callers needing deterministic order use ValidNames. fn must not
// mutate the table.
func (t *Table) RangeValid(fn func(name string)) {
	for name, e := range t.entries {
		if e.valid {
			fn(name)
		}
	}
}

// ValidNames returns the sorted names of all valid events. This is the event
// section carried inside a workflow packet.
func (t *Table) ValidNames() []string {
	names := make([]string, 0, len(t.entries))
	for name, e := range t.entries {
		if e.valid {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Merge posts the events in names (as delivered by an incoming workflow
// packet) that are not already valid, and returns how many were new. Events
// that are already valid are left untouched — in particular their occurrence
// counts do not grow, so rules do not re-fire just because state information
// was re-received.
func (t *Table) Merge(names []string) int {
	n := 0
	for _, name := range names {
		if !t.Has(name) {
			t.Post(name)
			n++
		}
	}
	return n
}

// Seq returns a counter that changes on every table mutation.
func (t *Table) Seq() int { return t.seq }

// Len returns the number of valid events.
func (t *Table) Len() int {
	n := 0
	for _, e := range t.entries {
		if e.valid {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := NewTable()
	for name, e := range t.entries {
		c.entries[name] = e
	}
	c.seq = t.seq
	return c
}

// String renders the valid events, comma separated, for logs and packets.
func (t *Table) String() string {
	return strings.Join(t.ValidNames(), " ")
}

// Exported is the serializable form of one event-table entry.
type Exported struct {
	Name  string `json:"n"`
	Count int    `json:"c"`
	Valid bool   `json:"v"`
}

// Export returns all entries (including invalidated ones) sorted by name,
// for persistence in a workflow or agent database.
func (t *Table) Export() []Exported {
	out := make([]Exported, 0, len(t.entries))
	for name, e := range t.entries {
		out = append(out, Exported{Name: name, Count: e.count, Valid: e.valid})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ImportTable reconstructs a table from exported entries.
func ImportTable(recs []Exported) *Table {
	t := NewTable()
	for _, r := range recs {
		t.entries[r.Name] = entry{count: r.Count, valid: r.Valid}
	}
	t.seq = len(recs)
	return t
}
