package itable

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crew/internal/wfdb"
)

func TestShardSpread(t *testing.T) {
	// Sequential ids of one workflow must not pile onto one shard.
	hit := make(map[uint32]int)
	for id := 1; id <= 1024; id++ {
		hit[shardOf("WF", id)]++
	}
	if len(hit) != shardCount {
		t.Fatalf("1024 sequential ids landed on %d/%d shards", len(hit), shardCount)
	}
	for sh, n := range hit {
		if n != 1024/shardCount {
			t.Fatalf("shard %d got %d ids, want %d", sh, n, 1024/shardCount)
		}
	}
}

func TestMapBasics(t *testing.T) {
	var m Map[string]
	ref := Ref{Workflow: "WF", ID: 7}
	if _, ok := m.Get(ref); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put(ref, "e1")
	if v, ok := m.Get(ref); !ok || v != "e1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete(ref) || m.Delete(ref) {
		t.Fatal("Delete should report true then false")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
}

func TestMapUpdateAtomicCounter(t *testing.T) {
	var m Map[int]
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Update(Ref{Workflow: "WF"}, func(v int, _ bool) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if v, _ := m.Get(Ref{Workflow: "WF"}); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
}

func TestMapRange(t *testing.T) {
	var m Map[int]
	for id := 1; id <= 100; id++ {
		m.Put(Ref{Workflow: "WF", ID: id}, id)
	}
	sum := 0
	m.Range(func(ref Ref, v int) bool {
		if ref.ID != v {
			t.Fatalf("ref %v carries %d", ref, v)
		}
		sum += v
		return true
	})
	if sum != 5050 {
		t.Fatalf("sum = %d", sum)
	}
	n := 0
	m.Range(func(Ref, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d entries", n)
	}
}

func TestTerminalCompleteAndStatus(t *testing.T) {
	var reg Terminal
	if _, ok := reg.Status("WF", 1); ok {
		t.Fatal("empty registry reported a status")
	}
	reg.Complete("WF", 1, wfdb.Committed)
	reg.Complete("WF", 2, wfdb.Aborted)
	if st, ok := reg.Status("WF", 1); !ok || st != wfdb.Committed {
		t.Fatalf("Status(1) = %v,%v", st, ok)
	}
	if st, ok := reg.Status("WF", 2); !ok || st != wfdb.Aborted {
		t.Fatalf("Status(2) = %v,%v", st, ok)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
	// Duplicate completions keep the first status (distributed election
	// flips can double-commit) and do not double-count.
	reg.Complete("WF", 1, wfdb.Aborted)
	if st, _ := reg.Status("WF", 1); st != wfdb.Committed {
		t.Fatalf("duplicate Complete overwrote status: %v", st)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len after duplicate = %d", reg.Len())
	}
}

func TestTerminalSparseFallback(t *testing.T) {
	var reg Terminal
	// Nested children are numbered parentID*1000+attempt and can exceed the
	// dense vector limit; negative/zero ids must also be representable.
	ids := []int{denseLimit, denseLimit + 1001, 0, -3}
	for i, id := range ids {
		st := wfdb.Committed
		if i%2 == 1 {
			st = wfdb.Aborted
		}
		reg.Complete("WF", id, st)
		if got, ok := reg.Status("WF", id); !ok || got != st {
			t.Fatalf("Status(%d) = %v,%v want %v", id, got, ok, st)
		}
	}
	// A huge id must not balloon resident memory via the dense vector.
	if vec := reg.shards[shardOf("WF", denseLimit)].dense["WF"]; len(vec) >= denseLimit>>6 {
		t.Fatalf("dense vector grew to %d entries for an out-of-range id", len(vec))
	}
}

func TestTerminalSubscribeBeforeComplete(t *testing.T) {
	var reg Terminal
	st, done, w, _ := reg.Subscribe("WF", 9)
	if done || w == nil {
		t.Fatalf("Subscribe on live instance = %v,%v,%v", st, done, w)
	}
	go reg.Complete("WF", 9, wfdb.Committed)
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
	if w.Result() != wfdb.Committed {
		t.Fatalf("Result = %v", w.Result())
	}
	if reg.Waiting() != 0 {
		t.Fatalf("Waiting = %d after completion", reg.Waiting())
	}
}

func TestTerminalSubscribeAfterComplete(t *testing.T) {
	var reg Terminal
	reg.Complete("WF", 3, wfdb.Aborted)
	st, done, w, gen := reg.Subscribe("WF", 3)
	if !done || st != wfdb.Aborted || w != nil || gen != 0 {
		t.Fatalf("Subscribe on finished instance = %v,%v,%v,%d", st, done, w, gen)
	}
}

func TestTerminalUnsubscribeGenerations(t *testing.T) {
	var reg Terminal
	_, _, w, gen := reg.Subscribe("WF", 5)
	// Stale stamp (wrong generation) must be a no-op.
	reg.Unsubscribe("WF", 5, w, gen+1)
	if reg.Waiting() != 1 {
		t.Fatalf("stale Unsubscribe released the waiter (Waiting=%d)", reg.Waiting())
	}
	// Two subscribers share one waiter; both must release before recycle.
	_, _, w2, gen2 := reg.Subscribe("WF", 5)
	if w2 != w {
		t.Fatal("second Subscribe allocated a fresh waiter")
	}
	reg.Unsubscribe("WF", 5, w, gen)
	if reg.Waiting() != 1 {
		t.Fatalf("waiter released while a subscriber remains (Waiting=%d)", reg.Waiting())
	}
	reg.Unsubscribe("WF", 5, w2, gen2)
	if reg.Waiting() != 0 {
		t.Fatalf("Waiting = %d after final Unsubscribe", reg.Waiting())
	}
	// The recycle bumped the generation, so a double-release is harmless
	// even if the pool hands the same waiter to a new instance.
	reg.Unsubscribe("WF", 5, w, gen)
}

func TestTerminalConcurrentSubscribeComplete(t *testing.T) {
	var reg Terminal
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 1; id <= n; id++ {
		id := id
		wg.Add(2)
		go func() {
			defer wg.Done()
			st, done, w, _ := reg.Subscribe("WF", id)
			if !done {
				select {
				case <-w.Done():
					st = w.Result()
				case <-time.After(5 * time.Second):
					errs <- fmt.Errorf("id %d: waiter never woke", id)
					return
				}
			}
			if st != wfdb.Committed {
				errs <- fmt.Errorf("id %d: status %v", id, st)
			}
		}()
		go func() {
			defer wg.Done()
			reg.Complete("WF", id, wfdb.Committed)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if reg.Len() != n {
		t.Fatalf("Len = %d, want %d", reg.Len(), n)
	}
}
