package itable

import (
	"testing"

	"crew/internal/wfdb"
)

// TestHotReadAllocBudgets guards the sharded-table read paths the hotalloc
// analyzer gates (//crew:hotpath on shardOf, Map.Get, Terminal.Status):
// lookups run on every packet an agent routes, and must not allocate.
func TestHotReadAllocBudgets(t *testing.T) {
	var m Map[int]
	m.Put(Ref{"wf", 7}, 42)
	var term Terminal
	term.Complete("wf", 7, wfdb.Committed)

	avg := testing.AllocsPerRun(500, func() {
		if v, ok := m.Get(Ref{"wf", 7}); !ok || v != 42 {
			t.Error("Get lost the entry")
		}
	})
	if avg > 0 {
		t.Errorf("Map.Get allocates %.2f/op, budget 0", avg)
	}

	avg = testing.AllocsPerRun(500, func() {
		if st, ok := term.Status("wf", 7); !ok || st != wfdb.Committed {
			t.Error("Status lost the record")
		}
	})
	if avg > 0 {
		t.Errorf("Terminal.Status allocates %.2f/op, budget 0", avg)
	}
}
