// Package itable provides the sharded instance-state tables behind the
// steady-state runtime layer: a generic fixed-shard map keyed by
// (workflow, id) for cross-goroutine routing state (owners, coordinator
// names, next-id counters), and Terminal, a sharded terminal-status
// registry with pooled, generation-stamped completion waiters.
//
// Shards are fixed at construction (a power of two) and each shard is
// guarded by its own mutex, so concurrent Start / event-delivery / Wait
// traffic for different instances does not contend on a single lock.
// Sharding is an implementation detail of one logical table: it adds no
// control nodes and sends no messages, so the paper's per-architecture
// message and load columns (Tables 3-7) are unaffected.
package itable

import (
	"sync"

	"crew/internal/wfdb"
)

// shardCount is the fixed number of shards. A power of two so the shard
// index is a mask, sized well past the core counts the simulator runs at.
const shardCount = 64

// Ref names one workflow instance.
type Ref struct {
	Workflow string
	ID       int
}

// shardOf hashes a (workflow, id) pair onto a shard. The workflow name is
// FNV-1a hashed once and the id is folded in additively, which both spreads
// sequential ids of one workflow across all shards and keeps the residue
// class of ids within a shard fixed — the property Terminal's dense status
// vectors index by.
//crew:hotpath
func shardOf(workflow string, id int) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(workflow); i++ {
		h ^= uint32(workflow[i])
		h *= 16777619
	}
	return (h + uint32(id)) & (shardCount - 1)
}

// Map is a fixed-shard concurrent map keyed by instance Ref. Workflow-level
// entries (for example per-workflow id counters) use ID 0.
type Map[V any] struct {
	shards [shardCount]mapShard[V]
}

type mapShard[V any] struct {
	mu sync.RWMutex
	m  map[Ref]V
}

// Get returns the value stored for ref, if any.
//
//crew:hotpath
func (t *Map[V]) Get(ref Ref) (V, bool) {
	s := &t.shards[shardOf(ref.Workflow, ref.ID)]
	s.mu.RLock()
	v, ok := s.m[ref]
	s.mu.RUnlock()
	return v, ok
}

// Put stores v for ref.
func (t *Map[V]) Put(ref Ref, v V) {
	s := &t.shards[shardOf(ref.Workflow, ref.ID)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[Ref]V)
	}
	s.m[ref] = v
	s.mu.Unlock()
}

// Delete removes ref's entry, reporting whether one existed.
func (t *Map[V]) Delete(ref Ref) bool {
	s := &t.shards[shardOf(ref.Workflow, ref.ID)]
	s.mu.Lock()
	_, ok := s.m[ref]
	if ok {
		delete(s.m, ref)
	}
	s.mu.Unlock()
	return ok
}

// Update applies fn to the current value (zero value if absent) under the
// shard lock and stores the result, returning it. Used for atomic
// read-modify-write of counters such as per-workflow next ids.
func (t *Map[V]) Update(ref Ref, fn func(v V, ok bool) V) V {
	s := &t.shards[shardOf(ref.Workflow, ref.ID)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[Ref]V)
	}
	v, ok := s.m[ref]
	v = fn(v, ok)
	s.m[ref] = v
	s.mu.Unlock()
	return v
}

// Len reports the total number of entries across all shards.
func (t *Map[V]) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Each shard is
// snapshotted under its lock before fn runs, so fn may call back into the
// map.
func (t *Map[V]) Range(fn func(ref Ref, v V) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		refs := make([]Ref, 0, len(s.m))
		vals := make([]V, 0, len(s.m))
		for r, v := range s.m {
			refs = append(refs, r)
			vals = append(vals, v)
		}
		s.mu.RUnlock()
		for j, r := range refs {
			if !fn(r, vals[j]) {
				return
			}
		}
	}
}

// denseLimit bounds the ids recorded in the dense per-workflow status
// vectors; larger ids (nested children are numbered parentID*1000+attempt)
// fall back to a sparse map so one huge id cannot balloon the vector.
const denseLimit = 1 << 20

// Terminal is the push-based completion registry: a sharded table mapping
// every finished instance to its terminal status, plus per-instance waiter
// channels closed exactly once when the instance commits or aborts.
//
// Status storage is deliberately tiny — one byte per instance in a dense
// per-workflow vector — so the registry stays resident after the instance
// itself has been archived and evicted, and resident memory stays flat
// under an unbounded instance stream.
//
// Waiters are pooled and generation-stamped: a waiter returned to the pool
// bumps its generation, so a stale Unsubscribe (for example a context
// cancellation racing a recycle) can never release a later subscriber's
// waiter.
type Terminal struct {
	shards [shardCount]termShard
}

type termShard struct {
	mu     sync.Mutex
	dense  map[string][]byte // workflow -> status+1, indexed by id>>6
	sparse map[Ref]wfdb.Status
	waits  map[Ref]*Waiter
	count  int
}

// Waiter is a pooled completion handle. Done is closed when the instance
// reaches a terminal status; Result is valid after Done is closed.
type Waiter struct {
	gen  uint64
	refs int
	st   wfdb.Status
	done chan struct{}
}

// Done returns the channel closed at terminal status.
func (w *Waiter) Done() <-chan struct{} { return w.done }

// Result returns the terminal status. Only valid after Done is closed.
func (w *Waiter) Result() wfdb.Status { return w.st }

var waiterPool = sync.Pool{New: func() any {
	return &Waiter{done: make(chan struct{})}
}}

// Status reports the recorded terminal status of the instance, if any.
//
//crew:hotpath
func (t *Terminal) Status(workflow string, id int) (wfdb.Status, bool) {
	s := &t.shards[shardOf(workflow, id)]
	s.mu.Lock()
	st, ok := s.status(workflow, id)
	s.mu.Unlock()
	return st, ok
}

// status reads the shard's record for (workflow, id). Caller holds s.mu.
//
//crew:hotpath
func (s *termShard) status(workflow string, id int) (wfdb.Status, bool) {
	if id > 0 && id < denseLimit {
		if vec := s.dense[workflow]; id>>6 < len(vec) {
			if b := vec[id>>6]; b != 0 {
				return wfdb.Status(b - 1), true
			}
		}
		return 0, false
	}
	st, ok := s.sparse[Ref{workflow, id}]
	return st, ok
}

// setStatus records st for (workflow, id). Caller holds s.mu. Reports
// whether this was the first record (false on duplicate Complete).
func (s *termShard) setStatus(workflow string, id int, st wfdb.Status) bool {
	if id > 0 && id < denseLimit {
		if s.dense == nil {
			s.dense = make(map[string][]byte)
		}
		vec := s.dense[workflow]
		if idx := id >> 6; idx >= len(vec) {
			grown := make([]byte, idx+1)
			copy(grown, vec)
			vec = grown
			s.dense[workflow] = vec
		}
		if s.dense[workflow][id>>6] != 0 {
			return false
		}
		s.dense[workflow][id>>6] = byte(st) + 1
		return true
	}
	if s.sparse == nil {
		s.sparse = make(map[Ref]wfdb.Status)
	}
	if _, ok := s.sparse[Ref{workflow, id}]; ok {
		return false
	}
	s.sparse[Ref{workflow, id}] = st
	return true
}

// Complete records the terminal status for an instance and closes its
// waiter, if any, waking every subscriber. Duplicate completions keep the
// first status and are otherwise no-ops.
func (t *Terminal) Complete(workflow string, id int, st wfdb.Status) {
	s := &t.shards[shardOf(workflow, id)]
	ref := Ref{workflow, id}
	s.mu.Lock()
	if !s.setStatus(workflow, id, st) {
		s.mu.Unlock()
		return
	}
	s.count++
	w := s.waits[ref]
	if w != nil {
		delete(s.waits, ref)
	}
	s.mu.Unlock()
	if w != nil {
		// Publish the status before the close: subscribers observe st via
		// the happens-before edge of the channel close. A completed waiter
		// is never pooled (its done channel is spent), so this write can
		// never race a recycled use.
		w.st = st
		close(w.done)
	}
}

// Subscribe registers interest in an instance's completion. If the
// instance is already terminal it returns (st, true, nil, 0) and nothing
// needs releasing. Otherwise it returns a waiter and the generation stamp
// that must be passed back to Unsubscribe if the caller stops waiting
// before Done closes; after Done closes no Unsubscribe is needed.
func (t *Terminal) Subscribe(workflow string, id int) (st wfdb.Status, done bool, w *Waiter, gen uint64) {
	s := &t.shards[shardOf(workflow, id)]
	ref := Ref{workflow, id}
	s.mu.Lock()
	if st, ok := s.status(workflow, id); ok {
		s.mu.Unlock()
		return st, true, nil, 0
	}
	w = s.waits[ref]
	if w == nil {
		w = waiterPool.Get().(*Waiter)
		if s.waits == nil {
			s.waits = make(map[Ref]*Waiter)
		}
		s.waits[ref] = w
	}
	w.refs++
	gen = w.gen
	s.mu.Unlock()
	return 0, false, w, gen
}

// Unsubscribe releases one Subscribe reference for a waiter whose Done
// never closed (context cancellation, timeout). The generation stamp makes
// stale calls — racing a Complete that already detached the waiter, or
// arriving after the waiter was recycled for a new instance — harmless.
func (t *Terminal) Unsubscribe(workflow string, id int, w *Waiter, gen uint64) {
	s := &t.shards[shardOf(workflow, id)]
	ref := Ref{workflow, id}
	s.mu.Lock()
	cur, ok := s.waits[ref]
	if !ok || cur != w || w.gen != gen {
		s.mu.Unlock()
		return
	}
	w.refs--
	if w.refs > 0 {
		s.mu.Unlock()
		return
	}
	delete(s.waits, ref)
	w.gen++ // invalidate outstanding stamps before the recycle
	s.mu.Unlock()
	waiterPool.Put(w)
}

// Len reports the number of recorded terminal instances.
func (t *Terminal) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return n
}

// Waiting reports the number of instances with live waiters, for tests.
func (t *Terminal) Waiting() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.waits)
		s.mu.Unlock()
	}
	return n
}
