package central

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"crew/internal/cerrors"
	"crew/internal/coord"
	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/itable"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/nav"
	"crew/internal/ocr"
	"crew/internal/rules"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// Config parameterizes an engine.
type Config struct {
	// Name is the engine's node name on the network.
	Name string
	// Library holds the deployed schemas and coordination specs. Steps with
	// empty EligibleAgents are dispatched to any of Agents.
	Library *model.Library
	// Agents lists the application agents the engine may dispatch to.
	Agents []string
	// Programs resolves step program names.
	Programs *model.Registry
	// Collector receives load accounting (may be nil).
	Collector *metrics.Collector
	// DB persists instance state; nil disables persistence.
	DB *wfdb.DB
	// OnUnhandled, if set, receives messages the engine does not understand
	// (the parallel architecture routes its coordination protocol here).
	// Called from the engine goroutine.
	OnUnhandled func(m transport.Message)
	// DisableOCR forces the Saga-style complete compensation and complete
	// re-execution on every revisit (the OCR ablation).
	DisableOCR bool
	// Archive, when DB is nil, receives retired instances (the parallel
	// architecture shares one archive across its engines so any engine can
	// answer Snapshot). When both are nil the engine keeps a private
	// in-memory archive. Ignored when DB is set: retired instances then go
	// to the WFDB's archive table as before.
	Archive *wfdb.DB
	// Terminal, if set, is the shared terminal-status registry completions
	// are published to (push-based Wait). Nil gets a private registry.
	Terminal *itable.Terminal
	// OnRetired, if set, is called from the engine goroutine after an
	// instance reaches terminal status and is evicted from the live table,
	// so owners of routing state (instance->engine maps, coordination
	// trackers) can drop their references.
	OnRetired func(workflow string, id int)
	// Logf, if set, receives diagnostics (compensation failures, dropped
	// stale results).
	Logf func(format string, args ...any)
}

// instState is the engine-side state of one instance.
type instState struct {
	ins      *wfdb.Instance
	schema   *model.Schema
	rules    *rules.Engine
	recovery metrics.Mechanism // Normal when not recovering

	dispatched   map[model.StepID]bool
	coordPending map[model.StepID]bool
	// coordWaits holds the latest coordination wait-event list per step;
	// coordBlocked marks steps whose rule fired but whose coordination
	// events are not yet all valid (retried when injections arrive).
	coordWaits   map[model.StepID][]string
	coordBlocked map[model.StepID]bool
	rollbacks    map[model.StepID]int

	chain        []chainTask
	chainActive  bool
	pendingChain *chainTask
	aborting     bool
	abortCause   metrics.Mechanism

	childOf map[model.StepID]int // nested step -> child instance ID
}

// chainTask is one entry of the serialized compensation/re-execution chain.
type chainTask struct {
	step model.StepID
	mode model.ExecMode // ModeCompensate or ModePartialComp
	then *execPlan      // optional re-execution after this compensation
}

type execPlan struct {
	step model.StepID
	mode model.ExecMode // ModeExecute or ModeIncremental
}

// Engine is a centralized workflow engine. All state is owned by a single
// goroutine; external calls go through the command channel.
type Engine struct {
	cfg         Config
	net         *transport.Network
	ep          *transport.Endpoint
	coordinator Coordinator
	rec         metrics.NodeRecorder
	// handles caches per-destination senders; touched only by the engine
	// goroutine.
	handles map[string]*transport.Handle
	// batch coalesces the sends of one handler turn into per-destination
	// envelopes; flushed before the turn's Ack (see flushSends).
	batch transport.Batcher

	cmdMu     sync.Mutex
	cmdQ      []func()
	cmdNotify chan struct{}
	wg        sync.WaitGroup

	instances map[string]*instState
	nextID    map[string]int
	loads     map[string]int64

	// term records terminal statuses and wakes completion subscribers; adb
	// is where retired instances are archived (cfg.DB, cfg.Archive, or a
	// private in-memory DB). Both are safe for concurrent use, so Status /
	// Wait / Snapshot of finished instances never round-trip through the
	// engine goroutine.
	term *itable.Terminal
	adb  *wfdb.DB

	coordSteps map[model.StepRef]bool

	// halted marks a simulated engine-process crash: volatile state has been
	// discarded and not yet rebuilt. Messages that reference unknown
	// instances while halted are stashed in orphans and replayed after
	// Restart rebuilds the instance table (a message can slip past the
	// transport-level crash into the engine loop during the crash window).
	halted  bool
	orphans []func()
}

// NewEngine registers the engine on the network and starts its goroutine.
// SetCoordinator must be called before the first workflow starts; the System
// facade does this.
func NewEngine(cfg Config, net *transport.Network) (*Engine, error) {
	if cfg.Name == "" {
		return nil, errors.New("central: engine needs a name")
	}
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("central: engine needs a library and programs")
	}
	ep, err := net.Register(cfg.Name)
	if err != nil {
		return nil, err
	}
	ep.ManualAck()
	e := &Engine{
		cfg:        cfg,
		net:        net,
		ep:         ep,
		rec:        cfg.Collector.Node(cfg.Name),
		handles:    make(map[string]*transport.Handle),
		cmdNotify:  make(chan struct{}, 1),
		instances:  make(map[string]*instState),
		nextID:     make(map[string]int),
		loads:      make(map[string]int64),
		coordSteps: make(map[model.StepRef]bool),
	}
	e.term = cfg.Terminal
	if e.term == nil {
		e.term = new(itable.Terminal)
	}
	switch {
	case cfg.DB != nil:
		e.adb = cfg.DB
	case cfg.Archive != nil:
		e.adb = cfg.Archive
	default:
		e.adb = wfdb.NewMemory()
	}
	tmp := coord.NewTracker(cfg.Library)
	e.coordSteps = tmp.CoordinatedSteps()
	e.wg.Add(1)
	go e.loop()
	return e, nil
}

// SetCoordinator installs the coordination hook.
func (e *Engine) SetCoordinator(c Coordinator) { e.coordinator = c }

// Name returns the engine's node name.
func (e *Engine) Name() string { return e.cfg.Name }

// Stop waits for the engine goroutine to exit; the network must be closed
// first so the inbox drains.
func (e *Engine) Stop() { e.wg.Wait() }

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	} else {
		log.Printf("central[%s]: "+format, append([]any{e.cfg.Name}, args...)...)
	}
}

func (e *Engine) loop() {
	defer e.wg.Done()
	inbox := e.ep.Inbox()
	for {
		e.drainCmds()
		select {
		case m, ok := <-inbox:
			if !ok {
				e.drainCmds()
				return
			}
			e.handleMessage(m)
			e.flushSends()
			e.ep.Ack()
		case <-e.cmdNotify:
		}
	}
}

// flushSends dispatches the current turn's batched sends. It runs at the end
// of every handler turn and command, before the turn's Ack, so quiescence
// accounting never sees a processed-but-unsent gap.
func (e *Engine) flushSends() {
	if err := e.batch.Flush(); err != nil {
		e.logf("flush sends: %v", err)
	}
}

func (e *Engine) drainCmds() {
	for {
		e.cmdMu.Lock()
		if len(e.cmdQ) == 0 {
			e.cmdMu.Unlock()
			return
		}
		f := e.cmdQ[0]
		e.cmdQ = e.cmdQ[1:]
		e.cmdMu.Unlock()
		f()
		e.flushSends()
	}
}

func (e *Engine) enqueue(f func()) {
	e.cmdMu.Lock()
	e.cmdQ = append(e.cmdQ, f)
	e.cmdMu.Unlock()
	select {
	case e.cmdNotify <- struct{}{}:
	default:
	}
}

// Do runs f on the engine goroutine and waits for it. It must not be called
// from the engine goroutine itself (use direct calls there).
func (e *Engine) Do(f func()) {
	done := make(chan struct{})
	e.enqueue(func() {
		defer close(done)
		f()
		e.flushSends() // before done closes: the caller may Quiesce next
	})
	<-done
}

// DoAsync schedules f on the engine goroutine without waiting. Safe to call
// from any goroutine, including the engine's own.
func (e *Engine) DoAsync(f func()) {
	e.enqueue(func() {
		f()
		e.flushSends()
	})
}

func (e *Engine) handleMessage(m transport.Message) {
	switch p := m.Payload.(type) {
	case *transport.Envelope:
		for _, lm := range p.Msgs {
			e.handleMessage(lm)
		}
		p.Release()
	case ExecResponse:
		e.onExecResponse(p)
	case StateResponse:
		e.loads[p.Agent] = p.Load
	default:
		if e.cfg.OnUnhandled != nil {
			e.cfg.OnUnhandled(m)
		}
	}
}

func (e *Engine) addLoad(m metrics.Mechanism, units int64) {
	e.rec.Add(m, units)
}

// ---------------------------------------------------------------------------
// Public API (thread-safe)

// ErrUnknownWorkflow reports an unknown class name. It aliases the shared
// sentinel so errors.Is matches across architectures.
var ErrUnknownWorkflow = cerrors.ErrUnknownWorkflow

// ErrUnknownInstance reports an unknown instance.
var ErrUnknownInstance = cerrors.ErrUnknownInstance

// ErrNotRunning reports an operation on a committed/aborted instance.
var ErrNotRunning = cerrors.ErrNotRunning

// Start creates and launches a new instance, returning its ID.
func (e *Engine) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	var id int
	var err error
	e.Do(func() {
		id, err = e.startLocked(workflow, 0, inputs, nil)
	})
	return id, err
}

// StartWithID launches an instance under an externally assigned ID (used by
// the parallel architecture's instance partitioning).
func (e *Engine) StartWithID(workflow string, id int, inputs map[string]expr.Value) error {
	var err error
	e.Do(func() {
		_, err = e.startLocked(workflow, id, inputs, nil)
	})
	return err
}

// Abort requests a user-initiated abort.
func (e *Engine) Abort(workflow string, id int) error {
	if _, done := e.term.Status(workflow, id); done {
		return ErrNotRunning // already retired
	}
	var err error
	e.Do(func() {
		st := e.instances[wfdb.InstanceKeyOf(workflow, id)]
		if st == nil {
			if _, done := e.term.Status(workflow, id); done {
				err = ErrNotRunning // retired while the command was queued
			} else {
				err = ErrUnknownInstance
			}
			return
		}
		if st.ins.Status != wfdb.Running {
			err = ErrNotRunning
			return
		}
		e.addLoad(metrics.Abort, 1)
		e.abortInstance(st, metrics.Abort)
	})
	return err
}

// ChangeInputs applies user-initiated workflow input changes, rolling back
// to the earliest step consuming a changed input and re-executing forward
// with the OCR strategy.
func (e *Engine) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	if _, done := e.term.Status(workflow, id); done {
		return ErrNotRunning // already retired
	}
	var err error
	e.Do(func() {
		err = e.changeInputsLocked(workflow, id, inputs)
	})
	return err
}

// Status reports an instance's status. Finished instances answer from the
// terminal registry without touching the engine goroutine.
func (e *Engine) Status(workflow string, id int) (wfdb.Status, bool) {
	if st, done := e.term.Status(workflow, id); done {
		return st, true
	}
	var s wfdb.Status
	var ok bool
	e.Do(func() {
		if st := e.instances[wfdb.InstanceKeyOf(workflow, id)]; st != nil {
			s, ok = st.ins.Status, true
		} else if e.cfg.DB != nil {
			if sum, found, _ := e.cfg.DB.LoadSummary(workflow, id); found {
				s, ok = sum, true
			}
		}
	})
	return s, ok
}

// Terminal exposes the engine's terminal-status registry so system facades
// can subscribe to completions directly (push-based WaitCtx).
func (e *Engine) Terminal() *itable.Terminal { return e.term }

// WaitChan returns a channel that receives the instance's terminal status.
// Completion is push-based: the channel is fed from the terminal registry,
// not from polling the engine.
func (e *Engine) WaitChan(workflow string, id int) <-chan wfdb.Status {
	ch := make(chan wfdb.Status, 1)
	st, done, w, gen := e.term.Subscribe(workflow, id)
	if done {
		ch <- st
		return ch
	}
	// An instance that finished under a previous engine incarnation is only
	// in the database; the registry will never fire for it.
	if e.cfg.DB != nil {
		if sum, found, _ := e.cfg.DB.LoadSummary(workflow, id); found && sum != wfdb.Running {
			e.term.Unsubscribe(workflow, id, w, gen)
			ch <- sum
			return ch
		}
	}
	go func() {
		<-w.Done()
		ch <- w.Result()
	}()
	return ch
}

// Snapshot returns a deep copy of an instance's state for inspection.
// Retired instances are reloaded from the archive.
func (e *Engine) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	var out *wfdb.Instance
	e.Do(func() {
		if st := e.instances[wfdb.InstanceKeyOf(workflow, id)]; st != nil {
			out = st.ins.Clone()
		}
	})
	if out == nil {
		if ins, ok, err := e.adb.LoadArchived(workflow, id); err == nil && ok {
			if schema := e.cfg.Library.Schema(workflow); schema != nil {
				ins.AttachSchema(schema)
			}
			out = ins
		}
	}
	return out, out != nil
}

// Owns reports whether this engine manages the instance.
func (e *Engine) Owns(workflow string, id int) bool {
	var ok bool
	e.Do(func() {
		_, ok = e.instances[wfdb.InstanceKeyOf(workflow, id)]
	})
	return ok
}

// LiveInstances reports how many instances are resident in the engine's
// live table — retired (terminal) instances have been archived and evicted,
// so under a sustained stream this stays bounded by the in-flight count.
func (e *Engine) LiveInstances() int {
	var n int
	e.Do(func() { n = len(e.instances) })
	return n
}

// InjectEvent posts an event into an instance's event table (used by remote
// coordinators) and re-evaluates its rules.
func (e *Engine) InjectEvent(workflow string, id int, name string) {
	e.DoAsync(func() {
		e.injectLocal(coord.InstanceRef{Workflow: workflow, ID: id}, name)
	})
}

// ResolveCoord delivers a coordination check result (remote coordinators).
func (e *Engine) ResolveCoord(workflow string, id int, step model.StepID, waitEvents []string) {
	e.DoAsync(func() {
		e.coordResolved(coord.InstanceRef{Workflow: workflow, ID: id}, step, waitEvents)
	})
}

// ApplyRollbackOrder rolls running instances of a class back to a step
// (rollback-dependency enforcement; remote coordinators).
func (e *Engine) ApplyRollbackOrder(ord coord.RollbackOrder) {
	e.DoAsync(func() {
		e.applyRollbackOrder(ord)
	})
}

// Recover performs the forward recovery the WFDB exists for (paper §2):
// after an engine failure, a fresh engine reloads every running instance
// from the database, regenerates its rule set, resets steps that were
// dispatched but whose results died with the old engine, and resumes
// navigation. Steps whose results are on file are revisited through the OCR
// strategy, so unchanged work is reused rather than redone. It returns the
// number of instances resumed.
func (e *Engine) Recover() (int, error) {
	var n int
	var err error
	e.Do(func() {
		n, err = e.recoverLocked()
	})
	return n, err
}

func (e *Engine) recoverLocked() (int, error) {
	if e.cfg.DB == nil {
		return 0, errors.New("central: recovery needs a database")
	}
	resumed := 0
	for _, key := range e.cfg.DB.InstanceKeys() {
		workflow, id, err := wfdb.ParseInstanceKey(key)
		if err != nil {
			e.logf("recover: %v", err)
			continue
		}
		if _, live := e.instances[key]; live {
			continue
		}
		ins, ok, err := e.cfg.DB.LoadInstance(workflow, id)
		if err != nil || !ok {
			if err != nil {
				e.logf("recover %s: %v", key, err)
			}
			continue
		}
		if ins.Status != wfdb.Running {
			continue
		}
		schema := e.cfg.Library.Schema(workflow)
		if schema == nil {
			e.logf("recover %s: unknown workflow class", key)
			continue
		}
		// Results of steps that were executing at the crash are lost.
		for _, rec := range ins.Steps {
			if rec.Status == wfdb.StepExecuting {
				rec.Status = wfdb.StepPending
			}
		}
		ins.AttachSchema(schema)
		st := &instState{
			ins:          ins,
			schema:       schema,
			rules:        rules.NewEngine(),
			recovery:     metrics.Normal,
			dispatched:   make(map[model.StepID]bool),
			coordPending: make(map[model.StepID]bool),
			coordWaits:   make(map[model.StepID][]string),
			coordBlocked: make(map[model.StepID]bool),
			rollbacks:    make(map[model.StepID]int),
			childOf:      make(map[model.StepID]int),
		}
		rules.InstallSchemaRules(st.rules, schema)
		st.rules.Bind(st.ins.Events)
		e.instances[key] = st
		if id > e.nextID[workflow] {
			e.nextID[workflow] = id
		}
		resumed++
		e.addLoad(metrics.Normal, 1)
		// A compensation in flight at the crash is lost with the old engine;
		// re-queue it for dispatch (compensations tolerate at-least-once).
		e.rebuildChains(st, false)
		e.resumeInstance(st)
	}
	return resumed, nil
}

// Halt simulates an engine-process crash: all volatile state — the instance
// table, dispatch bookkeeping, compensation chains, the agent-load cache — is
// discarded. The WFDB and the transport's persistent queues survive (parking
// undelivered messages is Network.Crash's job). Waiter channels and the ID
// counters are harness-side state and survive too. No-op without a database
// or when already halted.
func (e *Engine) Halt() {
	e.DoAsync(func() {
		if e.cfg.DB == nil || e.halted {
			return
		}
		e.halted = true
		e.instances = make(map[string]*instState)
		e.loads = make(map[string]int64)
	})
}

// Restart rebuilds volatile state from the WFDB after Halt, trusting the
// persistent queues (paper §2's recovery contract): a step recorded as
// executing or compensating has its request or result parked in a queue, so
// the rebuilt instance awaits that result rather than redispatching —
// compensations therefore run at most once per write-ahead record. Messages
// that arrived during the halt window are replayed afterwards.
func (e *Engine) Restart() {
	e.DoAsync(func() {
		if !e.halted {
			return
		}
		e.restartLocked()
		e.halted = false
		orphans := e.orphans
		e.orphans = nil
		for _, f := range orphans {
			f()
		}
	})
}

func (e *Engine) restartLocked() {
	var rebuilt []*instState
	for _, key := range e.cfg.DB.InstanceKeys() {
		workflow, id, err := wfdb.ParseInstanceKey(key)
		if err != nil {
			e.logf("restart: %v", err)
			continue
		}
		if _, live := e.instances[key]; live {
			continue
		}
		ins, ok, err := e.cfg.DB.LoadInstance(workflow, id)
		if err != nil || !ok {
			if err != nil {
				e.logf("restart %s: %v", key, err)
			}
			continue
		}
		if ins.Status != wfdb.Running {
			continue
		}
		schema := e.cfg.Library.Schema(workflow)
		if schema == nil {
			e.logf("restart %s: unknown workflow class", key)
			continue
		}
		ins.AttachSchema(schema)
		st := &instState{
			ins:          ins,
			schema:       schema,
			rules:        rules.NewEngine(),
			recovery:     metrics.Normal,
			dispatched:   make(map[model.StepID]bool),
			coordPending: make(map[model.StepID]bool),
			coordWaits:   make(map[model.StepID][]string),
			coordBlocked: make(map[model.StepID]bool),
			rollbacks:    make(map[model.StepID]int),
			childOf:      make(map[model.StepID]int),
		}
		rules.InstallSchemaRules(st.rules, schema)
		st.rules.Bind(st.ins.Events)
		// In-flight dispatches survive in the queues: await their results.
		for sid, rec := range ins.Steps {
			if rec.Status == wfdb.StepExecuting {
				st.dispatched[sid] = true
			}
		}
		e.rebuildChains(st, true)
		e.instances[key] = st
		if id > e.nextID[workflow] {
			e.nextID[workflow] = id
		}
		e.addLoad(metrics.Failure, 1) // recovery bookkeeping
		rebuilt = append(rebuilt, st)
	}
	if e.cfg.Collector != nil {
		e.cfg.Collector.AddSurvived(int64(len(rebuilt)))
	}
	// Resume only after every instance is registered: nested children finish
	// into their parent, coordination may cross instances.
	for _, st := range rebuilt {
		e.resumeInstance(st)
	}
}

// resumeInstance restarts navigation on a rebuilt instance.
func (e *Engine) resumeInstance(st *instState) {
	if st.aborting {
		e.pumpChain(st)
		return
	}
	e.evaluate(st)
	if !st.chainActive && len(st.chain) > 0 {
		e.pumpChain(st)
	}
}

// rebuildChains reconstructs compensation-chain state from the persisted
// instance. With trustQueues (warm restart over reliable queues) a step
// recorded StepCompensating has its compensation request or result still in a
// queue, so it becomes the active pending task and is NOT re-dispatched;
// without (cold recovery, queues lost) the task is re-queued for dispatch.
// An instance flagged Aborting gets its abort chain rebuilt the same way
// abortInstance builds it, minus steps already compensated or in flight.
func (e *Engine) rebuildChains(st *instState, trustQueues bool) {
	for _, sid := range st.schema.Order {
		rec := st.ins.Steps[sid]
		if rec == nil || rec.Status != wfdb.StepCompensating {
			continue
		}
		mode := rec.CompMode
		if mode != model.ModeCompensate && mode != model.ModePartialComp {
			mode = model.ModeCompensate
		}
		task := chainTask{step: sid, mode: mode}
		if mode == model.ModePartialComp {
			// The partial compensation's re-execution plan is implied by its
			// mode; a complete-CR chain's plan is instead recovered by rule
			// re-arming (see onCompResult).
			task.then = &execPlan{step: sid, mode: model.ModeIncremental}
		}
		if trustQueues && !st.chainActive {
			t := task
			st.chainActive = true
			st.pendingChain = &t
		} else {
			st.chain = append(st.chain, task)
		}
	}
	if !st.ins.Aborting {
		return
	}
	st.aborting = true
	st.abortCause = metrics.Abort
	var candidates []model.StepID
	if len(st.schema.AbortCompensate) > 0 {
		candidates = st.schema.AbortCompensate
	} else {
		for _, id := range st.schema.Order {
			if st.schema.Steps[id].Compensable() {
				candidates = append(candidates, id)
			}
		}
	}
	ordered := st.ins.ResultMembersInOrder(candidates)
	for i := len(ordered) - 1; i >= 0; i-- {
		sid := ordered[i]
		if st.pendingChain != nil && st.pendingChain.step == sid {
			continue
		}
		dup := false
		for _, t := range st.chain {
			if t.step == sid {
				dup = true
				break
			}
		}
		if !dup {
			st.chain = append(st.chain, chainTask{step: sid, mode: model.ModeCompensate})
		}
	}
}

// ---------------------------------------------------------------------------
// Instance lifecycle (engine goroutine only)

func (e *Engine) startLocked(workflow string, id int, inputs map[string]expr.Value, parent *wfdb.ParentRef) (int, error) {
	schema := e.cfg.Library.Schema(workflow)
	if schema == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownWorkflow, workflow)
	}
	if id == 0 {
		e.nextID[workflow]++
		id = e.nextID[workflow]
	} else if id > e.nextID[workflow] {
		e.nextID[workflow] = id
	}
	key := wfdb.InstanceKeyOf(workflow, id)
	if _, dup := e.instances[key]; dup {
		return 0, fmt.Errorf("central: instance %s already exists", key)
	}
	ins := wfdb.NewInstance(workflow, id, inputs)
	ins.AttachSchema(schema)
	ins.Parent = parent
	st := &instState{
		ins:          ins,
		schema:       schema,
		rules:        rules.NewEngine(),
		recovery:     metrics.Normal,
		dispatched:   make(map[model.StepID]bool),
		coordPending: make(map[model.StepID]bool),
		coordWaits:   make(map[model.StepID][]string),
		coordBlocked: make(map[model.StepID]bool),
		rollbacks:    make(map[model.StepID]int),
		childOf:      make(map[model.StepID]int),
	}
	rules.InstallSchemaRules(st.rules, schema)
	st.rules.Bind(st.ins.Events)
	e.instances[key] = st
	e.addLoad(metrics.Normal, 1) // WorkflowStart processing
	if e.cfg.DB != nil {
		if err := e.cfg.DB.SaveSummary(workflow, id, wfdb.Running); err != nil {
			e.logf("save summary %s: %v", key, err)
		}
	}
	ins.Events.Post(event.WorkflowStartName)
	// Persist before navigating: an acknowledged start must survive a crash
	// even if the first dispatch has not happened yet (coordination blocks).
	e.persist(st)
	e.evaluate(st)
	return id, nil
}

func (e *Engine) changeInputsLocked(workflow string, id int, inputs map[string]expr.Value) error {
	st := e.instances[wfdb.InstanceKeyOf(workflow, id)]
	if st == nil {
		return ErrUnknownInstance
	}
	if st.ins.Status != wfdb.Running {
		return ErrNotRunning
	}
	e.addLoad(metrics.InputChange, 1)
	changed := make(map[string]bool)
	for name, v := range inputs {
		full := model.WorkflowInput(name)
		if old, ok := st.ins.Data[full]; !ok || !old.Equal(v) {
			changed[full] = true
			st.ins.Data[full] = v
		}
	}
	if len(changed) == 0 {
		return nil
	}
	// Roll back to the earliest step consuming a changed input; OCR decides
	// per revisited step whether re-execution is actually needed.
	var origin model.StepID
	for _, sid := range st.schema.TopoOrder() {
		for _, in := range st.schema.Steps[sid].Inputs {
			if changed[in] {
				origin = sid
				break
			}
		}
		if origin != "" {
			break
		}
	}
	if origin == "" {
		return nil // no step consumes the changed inputs
	}
	e.rollbackTo(st, origin, metrics.InputChange)
	e.evaluate(st)
	return nil
}

// ---------------------------------------------------------------------------
// Rule evaluation and dispatch

func (e *Engine) evaluate(st *instState) {
	if st.ins.Status != wfdb.Running {
		return
	}
	for {
		if st.aborting {
			return
		}
		fired, err := st.rules.Evaluate(st.ins.Events, st.ins.Env())
		if err != nil {
			e.logf("instance %s: %v", st.ins.Key(), err)
		}
		progressed := false
		for _, r := range fired {
			switch r.Action.Kind {
			case rules.ActExecute:
				if e.maybeExecute(st, r.Action.Step) {
					progressed = true
				}
			case rules.ActNotify:
				if r.Action.Fn != nil {
					r.Action.Fn()
				}
				progressed = true
			case rules.ActCompensate:
				st.chain = append(st.chain, chainTask{step: r.Action.Step, mode: model.ModeCompensate})
				e.pumpChain(st)
				progressed = true
			case rules.ActAbort:
				e.abortInstance(st, st.recovery)
				return
			}
		}
		e.maybeCommit(st)
		if len(fired) == 0 || !progressed {
			return
		}
	}
}

// resolveInputs reads a step's declared inputs from the data table.
func resolveInputs(st *instState, s *model.Step) map[string]expr.Value {
	in := make(map[string]expr.Value, len(s.Inputs))
	for _, name := range s.Inputs {
		if v, ok := st.ins.Data[name]; ok {
			in[name] = v
		}
	}
	return in
}

// maybeExecute handles a fired execution rule; it returns true if state
// changed synchronously (OCR reuse) so evaluation should continue.
func (e *Engine) maybeExecute(st *instState, step model.StepID) bool {
	if st.ins.Status != wfdb.Running || st.aborting || st.dispatched[step] {
		return false
	}
	rec := st.ins.Steps[step]
	if rec != nil && (rec.Status == wfdb.StepExecuting || rec.Status == wfdb.StepCompensating) {
		return false
	}
	s := st.schema.Steps[step]
	if s == nil {
		return false
	}

	// Coordinated-execution gate: the step may proceed only when the home
	// tracker has answered (coordWaits known) and every wait event (mutex
	// grants, relative-order releases) is valid. Blocked steps are retried
	// directly when injections arrive — rules are never strengthened, so a
	// later invalidation can never wedge the instance.
	ref := model.StepRef{Workflow: st.ins.Workflow, Step: step}
	if e.coordSteps[ref] && e.coordinator != nil {
		waits, known := st.coordWaits[step]
		if !known {
			st.coordBlocked[step] = true
			if !st.coordPending[step] {
				st.coordPending[step] = true
				e.coordinator.Check(ref, coord.InstanceRef{Workflow: st.ins.Workflow, ID: st.ins.ID})
			}
			return false
		}
		for _, ev := range waits {
			if !st.ins.Events.Has(ev) {
				st.coordBlocked[step] = true
				return false
			}
		}
		st.coordBlocked[step] = false
	}

	inputs := resolveInputs(st, s)

	// OCR: the step may have a previous execution whose results stand.
	if rec != nil && rec.HasResult {
		mech := st.recovery
		if mech == metrics.Normal {
			mech = metrics.Failure
		}
		var d ocr.Decision
		if e.cfg.DisableOCR {
			d = ocr.CompleteCR
		} else {
			var derr error
			d, derr = ocr.Decide(st.schema, s, rec, inputs, st.ins.Env())
			if derr != nil {
				e.logf("instance %s step %s: %v", st.ins.Key(), step, derr)
			}
		}
		e.addLoad(mech, 1) // condition check + bookkeeping
		switch d {
		case ocr.Reuse:
			st.ins.RecordDone(step, rec.Outputs)
			e.afterStepDone(st, step)
			return true
		case ocr.CompleteCR:
			plan := ocr.PlanCompensation(st.schema, st.ins, step)
			e.enqueueCompChain(st, plan, &execPlan{step: step, mode: model.ModeExecute})
			return false
		case ocr.IncrementalCR:
			st.chain = append(st.chain, chainTask{
				step: step,
				mode: model.ModePartialComp,
				then: &execPlan{step: step, mode: model.ModeIncremental},
			})
			e.pumpChain(st)
			return false
		}
		// ExecuteFresh falls through.
	}

	e.dispatchStep(st, step, model.ModeExecute, inputs, nil)
	return false
}

// enqueueCompChain queues compensations for plan (already in compensation
// order) attaching the re-execution to the last entry.
func (e *Engine) enqueueCompChain(st *instState, plan []model.StepID, then *execPlan) {
	for i, cid := range plan {
		t := chainTask{step: cid, mode: model.ModeCompensate}
		if i == len(plan)-1 {
			t.then = then
		}
		st.chain = append(st.chain, t)
	}
	e.pumpChain(st)
}

// stepMechanism classifies a dispatch: re-executions and recovery work count
// under the recovery cause; fresh forward progress is Normal.
func (e *Engine) stepMechanism(st *instState, step model.StepID) metrics.Mechanism {
	rec := st.ins.Steps[step]
	if rec != nil && rec.Attempts > 0 && st.recovery != metrics.Normal {
		return st.recovery
	}
	return metrics.Normal
}

// effectiveAgents returns the agents eligible for a step.
func (e *Engine) effectiveAgents(s *model.Step) []string {
	if len(s.EligibleAgents) > 0 {
		return s.EligibleAgents
	}
	return e.cfg.Agents
}

// chooseAgent probes the non-chosen eligible agents (2(a-1) messages) and
// dispatch+result make the per-step total 2a, matching the paper's
// centralized message model. Selection is least cached load, ties broken
// lexically.
func (e *Engine) chooseAgent(s *model.Step, mech metrics.Mechanism) string {
	elig := e.effectiveAgents(s)
	best := ""
	for _, a := range elig {
		if !e.net.Alive(a) {
			continue
		}
		if best == "" || e.loads[a] < e.loads[best] || (e.loads[a] == e.loads[best] && a < best) {
			best = a
		}
	}
	if best == "" {
		return ""
	}
	for _, a := range elig {
		if a == best || !e.net.Alive(a) {
			continue
		}
		e.send(a, mech, KindStateInformation, StateRequest{ReplyTo: e.cfg.Name, Mechanism: mech})
	}
	return best
}

func (e *Engine) dispatchStep(st *instState, step model.StepID, mode model.ExecMode, inputs map[string]expr.Value, prev *model.PrevExecution) {
	s := st.schema.Steps[step]
	mech := e.stepMechanism(st, step)
	e.addLoad(mech, 1) // navigation/scheduling

	if s.Nested != "" {
		e.startNested(st, step, inputs)
		return
	}

	agent := e.chooseAgent(s, mech)
	if agent == "" {
		e.logf("instance %s step %s: no eligible agent alive", st.ins.Key(), step)
		return
	}
	if mode == model.ModeIncremental && prev == nil {
		prev = st.ins.StepRec(step).Prev()
	}
	st.ins.RecordExecuting(step, agent, inputs)
	st.dispatched[step] = true
	// Write-ahead: a restart must know this attempt's request (or result) is
	// in a persistent queue, so it awaits the result instead of redispatching.
	e.persist(st)
	e.loads[agent]++ // optimistic cache update
	e.send(agent, mech, KindStepExecute, ExecRequest{
		Workflow:  st.ins.Workflow,
		Instance:  st.ins.ID,
		Step:      step,
		Program:   s.Program,
		Mode:      mode,
		Attempt:   st.ins.StepRec(step).Attempts,
		Inputs:    inputs,
		Prev:      prev,
		Mechanism: mech,
		ReplyTo:   e.cfg.Name,
	})
}

func (e *Engine) send(to string, mech metrics.Mechanism, kind string, payload any) {
	h := e.handles[to]
	if h == nil {
		var err error
		if h, err = e.net.Handle(to); err != nil {
			e.logf("send %s to %s: %v", kind, to, err)
			return
		}
		e.handles[to] = h
	}
	e.batch.Add(h, transport.Message{
		From:      e.cfg.Name,
		To:        to,
		Mechanism: mech,
		Kind:      kind,
		Payload:   payload,
	})
}

// ---------------------------------------------------------------------------
// Results

func (e *Engine) onExecResponse(r ExecResponse) {
	st := e.instances[wfdb.InstanceKeyOf(r.Workflow, r.Instance)]
	if st == nil {
		if e.halted {
			e.orphans = append(e.orphans, func() { e.onExecResponse(r) })
			return
		}
		if _, done := e.term.Status(r.Workflow, r.Instance); done {
			// A result landing after its instance finished (a user abort
			// racing an in-flight step): examining it still costs the
			// result-processing unit the pre-retirement engine charged, so
			// the Tables 4-5 load columns stay identical.
			e.addLoad(metrics.Normal, 1)
		}
		return
	}
	switch r.Mode {
	case model.ModeCompensate, model.ModePartialComp:
		e.onCompResult(st, r)
	default:
		e.onStepResult(st, r)
	}
}

func (e *Engine) onStepResult(st *instState, r ExecResponse) {
	// The attempt number identifies the dispatch a result answers
	// (RecordExecuting increments it, and the agent echoes it). Only the
	// newest dispatch's result is live; anything else — an older attempt
	// overtaken by a rollback's re-dispatch, a result for a step that was
	// reset and not re-dispatched, or a stray from before an engine restart
	// — is dropped here. Counting expected drops instead (the previous
	// scheme) is unsound when results arrive out of order from different
	// agents: the counter can eat the live result and process a stale one.
	rec := st.ins.Steps[r.Step]
	if rec == nil || r.Attempt != rec.Attempts || !st.dispatched[r.Step] {
		return
	}
	st.dispatched[r.Step] = false
	mech := e.stepMechanism(st, r.Step)
	e.addLoad(mech, 1) // result processing

	if st.ins.Status != wfdb.Running {
		return
	}
	if r.Failed {
		st.ins.RecordFailed(r.Step)
		ref := model.StepRef{Workflow: st.ins.Workflow, Step: r.Step}
		if e.coordSteps[ref] && e.coordinator != nil {
			// Release any mutex held for the attempt; the order queues are
			// not advanced for a failed step.
			e.coordinator.StepFailed(ref, coord.InstanceRef{Workflow: st.ins.Workflow, ID: st.ins.ID})
			e.clearMutexGrants(st, r.Step)
			delete(st.coordWaits, r.Step)
		}
		e.handleStepFailure(st, r.Step)
		return
	}
	st.ins.RecordDone(r.Step, r.Outputs)
	e.afterStepDone(st, r.Step)
	e.evaluate(st)
}

// afterStepDone runs the shared post-success navigation: recovery exit,
// branch-switch compensation, coordination notifications, loop arcs, commit
// checks and persistence. Callers re-evaluate afterwards (evaluate is
// reentrant-safe from the engine goroutine).
func (e *Engine) afterStepDone(st *instState, step model.StepID) {
	rec := st.ins.StepRec(step)

	// Exiting the recovery region: a first-time execution means the
	// workflow moved past everything it had executed before.
	if st.recovery != metrics.Normal && rec.Attempts <= 1 {
		st.recovery = metrics.Normal
	}

	// Branch switch after re-execution: compensate abandoned branches
	// (the CompensateThread of distributed control, done engine-side here).
	if st.schema.IsBranching(step) && rec.Attempts > 1 {
		taken := nav.ActiveBranchTargets(st.schema, st.ins, step)
		abandoned := nav.AbandonedBranchSteps(st.schema, st.ins, step, taken)
		if len(abandoned) > 0 {
			ordered := st.ins.ResultMembersInOrder(abandoned)
			for i := len(ordered) - 1; i >= 0; i-- {
				st.chain = append(st.chain, chainTask{step: ordered[i], mode: model.ModeCompensate})
			}
			e.pumpChain(st)
		}
	}

	// Coordination: advance order queues, release mutexes.
	ref := model.StepRef{Workflow: st.ins.Workflow, Step: step}
	if e.coordSteps[ref] && e.coordinator != nil {
		e.coordinator.StepDone(ref, coord.InstanceRef{Workflow: st.ins.Workflow, ID: st.ins.ID})
		e.clearMutexGrants(st, step)
		delete(st.coordWaits, step) // a revisit must re-acquire
	}

	// Loop arcs: iterate when the repeat condition holds.
	for _, a := range st.schema.LoopArcs(step) {
		cond, err := st.schema.CondExpr(a.Cond)
		if err != nil {
			continue
		}
		if ok, err := cond.EvalBool(st.ins.Env()); err == nil && ok {
			e.addLoad(metrics.Normal, 1)
			body := nav.ApplyLoopBack(st.schema, st.ins, st.rules, a.To, step)
			e.resetDispatchState(st, body)
		}
	}

	e.persist(st)
}

// clearMutexGrants invalidates the instance's mutex grant events for a step
// so a later re-execution must re-acquire.
func (e *Engine) clearMutexGrants(st *instState, step model.StepID) {
	suffix := ":" + string(step)
	st.ins.Events.InvalidateWhere(func(name string) bool {
		return strings.HasPrefix(name, "mx:") && strings.HasSuffix(name, suffix)
	})
}

func (e *Engine) resetDispatchState(st *instState, steps []model.StepID) {
	for _, id := range steps {
		// An in-flight result becomes stale: it no longer matches the step's
		// dispatched state (and a re-dispatch bumps the attempt number).
		st.dispatched[id] = false
		delete(st.coordWaits, id)
		st.coordBlocked[id] = false
		st.coordPending[id] = false
		e.clearMutexGrants(st, id)
		// A reset step whose result will be dropped can no longer release
		// coordination resources itself; release them here (release by a
		// non-holder is a no-op).
		ref := model.StepRef{Workflow: st.ins.Workflow, Step: id}
		if e.coordSteps[ref] && e.coordinator != nil {
			e.coordinator.StepFailed(ref, coord.InstanceRef{Workflow: st.ins.Workflow, ID: st.ins.ID})
		}
	}
}

func (e *Engine) handleStepFailure(st *instState, step model.StepID) {
	pol, ok := st.schema.OnFailure[step]
	st.rollbacks[step]++
	if !ok || st.rollbacks[step] > pol.Attempts() {
		e.abortInstance(st, metrics.Failure)
		return
	}
	st.recovery = metrics.Failure
	e.rollbackTo(st, pol.RollbackTo, metrics.Failure)
	e.evaluate(st)
}

// rollbackTo applies a partial rollback: descendants of origin (and origin)
// are reset, coordination is informed, dependent workflows roll back too.
func (e *Engine) rollbackTo(st *instState, origin model.StepID, cause metrics.Mechanism) {
	prev := st.recovery
	st.recovery = cause
	affected, invalidated := nav.ApplyRollback(st.schema, st.ins, st.rules, origin)
	e.addLoad(cause, int64(len(affected))+1)
	_ = invalidated
	all := append(append([]model.StepID(nil), affected...), origin)
	// A still-dispatched step has a result in flight that the reset below
	// makes stale: onStepResult will drop it without charging the
	// result-processing unit. In the common schedule that result arrives
	// just before the rollback and is charged under the pre-rollback
	// mechanism, so charge the same unit here — otherwise total load
	// depends on the race (the documented ~1.5% Table-4 22.94-vs-23.00
	// flake). Clearing dispatched as we charge keeps duplicates in `all`
	// from double-charging.
	for _, id := range all {
		if st.dispatched[id] {
			st.dispatched[id] = false
			e.addLoad(prev, 1)
		}
	}
	e.resetDispatchState(st, all)
	if e.coordinator != nil {
		e.coordinator.Rollback(st.ins.Workflow, all)
	}
	e.persist(st)
}

// applyRollbackOrder enforces a rollback dependency on this engine's running
// instances of the target class.
func (e *Engine) applyRollbackOrder(ord coord.RollbackOrder) {
	if e.halted {
		e.orphans = append(e.orphans, func() { e.applyRollbackOrder(ord) })
		return
	}
	// Sorted iteration: rollbackTo emits coordination and recovery traffic,
	// and map order would make the emitted sequence differ run to run.
	keys := make([]string, 0, len(e.instances))
	for k := range e.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := e.instances[k]
		if st.ins.Workflow != ord.TargetWorkflow || st.ins.Status != wfdb.Running || st.aborting {
			continue
		}
		if st.recovery != metrics.Normal {
			continue // already recovering; guards against dependency cycles
		}
		rec := st.ins.Steps[ord.TargetStep]
		if rec == nil || rec.Attempts == 0 {
			continue // has not reached the target step yet
		}
		e.addLoad(metrics.Coordination, 1)
		e.rollbackTo(st, ord.TargetStep, metrics.Failure)
		e.evaluate(st)
	}
}

// ---------------------------------------------------------------------------
// Compensation chain

func (e *Engine) pumpChain(st *instState) {
	for !st.chainActive {
		if len(st.chain) == 0 {
			if st.aborting {
				e.finalizeAbort(st)
			} else {
				e.maybeCommit(st)
			}
			return
		}
		task := st.chain[0]
		st.chain = st.chain[1:]
		rec := st.ins.Steps[task.step]
		s := st.schema.Steps[task.step]
		needsWork := rec != nil && rec.HasResult && s != nil && s.Compensation != ""
		if task.mode == model.ModePartialComp {
			needsWork = needsWork && s.Incremental
		}
		if !needsWork {
			// Nothing to undo (never executed, not compensable, or already
			// compensated): complete the task inline.
			if rec != nil && rec.HasResult && task.mode == model.ModeCompensate && (s == nil || s.Compensation == "") {
				// Not compensable but has results: just drop the marker so
				// re-execution proceeds.
				st.ins.RecordCompensated(task.step)
			}
			e.finishChainTask(st, task)
			continue
		}
		mech := st.recovery
		if st.aborting {
			mech = st.abortCause
		}
		if mech == metrics.Normal {
			mech = metrics.Failure
		}
		agent := rec.Agent
		if agent == "" || !e.net.Alive(agent) {
			agent = e.chooseAgent(s, mech)
		}
		if agent == "" {
			e.logf("instance %s: no agent to compensate %s", st.ins.Key(), task.step)
			e.finishChainTask(st, task)
			continue
		}
		st.chainActive = true
		st.pendingChain = &task
		// Write-ahead: mark the step compensating (with its mode) so a
		// restart rebuilds this pending task and never dispatches the
		// compensation a second time.
		st.ins.RecordCompensating(task.step, task.mode)
		e.persist(st)
		e.addLoad(mech, 1)
		e.send(agent, mech, KindStepCompensate, ExecRequest{
			Workflow:  st.ins.Workflow,
			Instance:  st.ins.ID,
			Step:      task.step,
			Program:   s.Compensation,
			Mode:      task.mode,
			Attempt:   rec.Attempts,
			Inputs:    rec.Inputs,
			Prev:      rec.Prev(),
			Mechanism: mech,
			ReplyTo:   e.cfg.Name,
		})
	}
}

func (e *Engine) onCompResult(st *instState, r ExecResponse) {
	task := st.pendingChain
	st.chainActive = false
	st.pendingChain = nil
	if task == nil || task.step != r.Step {
		e.logf("instance %s: unexpected compensation result for %s", st.ins.Key(), r.Step)
		return
	}
	mech := st.recovery
	if st.aborting {
		mech = st.abortCause
	}
	if mech == metrics.Normal {
		mech = metrics.Failure
	}
	e.addLoad(mech, 1)
	if r.Failed {
		e.logf("instance %s: compensation of %s failed: %s", st.ins.Key(), r.Step, r.Reason)
	}
	if r.Mode == model.ModeCompensate {
		st.ins.RecordCompensated(r.Step)
	}
	e.persist(st)
	e.finishChainTask(st, *task)
	// A restart while this compensation was in flight loses the re-execution
	// plan attached to the chain (only the compensating step itself is
	// persisted). Re-arm the step's execution rule and re-evaluate: if the
	// revisit that queued this chain is still due, OCR re-decides it; in
	// normal operation the rule's events/conditions no longer hold (or the
	// step is already dispatched), so this is a no-op.
	if st.ins.Status == wfdb.Running && !st.aborting {
		st.rules.RearmWhere(func(id string) bool { return rules.IsExecRuleFor(id, r.Step) })
		e.evaluate(st)
	}
}

func (e *Engine) finishChainTask(st *instState, task chainTask) {
	if task.then != nil && !st.aborting && st.ins.Status == wfdb.Running {
		s := st.schema.Steps[task.then.step]
		if s != nil {
			inputs := resolveInputs(st, s)
			prev := st.ins.StepRec(task.then.step).Prev()
			e.dispatchStep(st, task.then.step, task.then.mode, inputs, prev)
		}
	}
	e.pumpChain(st)
}

// ---------------------------------------------------------------------------
// Abort / commit / nested

func (e *Engine) abortInstance(st *instState, cause metrics.Mechanism) {
	if st.aborting || st.ins.Status != wfdb.Running {
		return
	}
	st.aborting = true
	st.abortCause = cause
	if st.abortCause == metrics.Normal {
		st.abortCause = metrics.Abort
	}
	// Write-ahead: an acknowledged abort must survive a crash; a restart
	// rebuilds the compensation chain from this flag.
	st.ins.Aborting = true
	e.persist(st)
	// Drop any queued chain work; abort compensation takes over.
	st.chain = nil

	var candidates []model.StepID
	if len(st.schema.AbortCompensate) > 0 {
		candidates = st.schema.AbortCompensate
	} else {
		for _, id := range st.schema.Order {
			if st.schema.Steps[id].Compensable() {
				candidates = append(candidates, id)
			}
		}
	}
	ordered := st.ins.ResultMembersInOrder(candidates)
	for i := len(ordered) - 1; i >= 0; i-- {
		st.chain = append(st.chain, chainTask{step: ordered[i], mode: model.ModeCompensate})
	}
	e.pumpChain(st)
}

func (e *Engine) finalizeAbort(st *instState) {
	if st.ins.Status != wfdb.Running {
		return
	}
	st.ins.Status = wfdb.Aborted
	st.ins.Events.Post(event.WorkflowAbortName)
	e.finishInstance(st)
}

func (e *Engine) maybeCommit(st *instState) {
	if st.aborting || !nav.ShouldCommit(st.schema, st.ins) {
		return
	}
	// A workflow with an active compensation chain is not quiescent.
	if st.chainActive || len(st.chain) > 0 {
		return
	}
	e.addLoad(metrics.Normal, 1)
	st.ins.Status = wfdb.Committed
	st.ins.Events.Post(event.WorkflowDoneName)
	e.finishInstance(st)
}

// finishInstance retires a terminal instance: the full state is archived,
// the terminal status is published (waking every Wait subscriber), the
// coordination tracker and routing owners drop their references, and the
// live entry is evicted — so resident memory stays flat under an unbounded
// instance stream while Status/Snapshot/Wait keep answering from the
// archive and the terminal registry.
//
// Retirement happens only here, at terminal status: by this point every
// pending rollback dependency and OCR compensation-dependent set involving
// the instance has been resolved (a Running instance is never evicted), so
// no live navigation can still need the evicted state.
func (e *Engine) finishInstance(st *instState) {
	key := st.ins.Key()
	if e.cfg.DB != nil {
		if err := e.cfg.DB.SaveSummary(st.ins.Workflow, st.ins.ID, st.ins.Status); err != nil {
			e.logf("summary %s: %v", key, err)
		}
	}
	// Archive before publishing completion: a woken waiter may Snapshot
	// immediately and must find the archived state.
	if err := e.adb.Archive(st.ins); err != nil {
		e.logf("archive %s: %v", key, err)
	}
	if e.coordinator != nil {
		e.coordinator.Forget(coord.InstanceRef{Workflow: st.ins.Workflow, ID: st.ins.ID})
	}
	e.term.Complete(st.ins.Workflow, st.ins.ID, st.ins.Status)

	// Nested workflows: hand the result to the parent step before the child
	// leaves the table (the parent reads the child's data directly).
	if p := st.ins.Parent; p != nil {
		if parent := e.instances[wfdb.InstanceKeyOf(p.Workflow, p.ID)]; parent != nil {
			e.onChildFinished(parent, p.Step, st)
		} else if _, done := e.term.Status(p.Workflow, p.ID); done {
			// Parent finished first (a user abort racing the child):
			// examining the child's result still costs the unit the
			// pre-retirement engine charged in onChildFinished, so the
			// Tables 4-5 load columns stay identical.
			e.addLoad(metrics.Normal, 1)
		}
	}

	delete(e.instances, key)
	if e.cfg.OnRetired != nil {
		e.cfg.OnRetired(st.ins.Workflow, st.ins.ID)
	}
}

func (e *Engine) startNested(st *instState, step model.StepID, inputs map[string]expr.Value) {
	s := st.schema.Steps[step]
	child := e.cfg.Library.Schema(s.Nested)
	if child == nil {
		e.logf("instance %s step %s: unknown nested workflow %q", st.ins.Key(), step, s.Nested)
		return
	}
	// Positional input mapping: the i-th declared step input feeds the
	// child's i-th workflow input.
	childInputs := make(map[string]expr.Value)
	for i, in := range s.Inputs {
		if i >= len(child.Inputs) {
			break
		}
		if v, ok := st.ins.Data[in]; ok {
			childInputs[child.Inputs[i]] = v
		}
	}
	st.ins.RecordExecuting(step, e.cfg.Name, inputs)
	st.dispatched[step] = true
	e.persist(st)
	id, err := e.startLocked(s.Nested, 0, childInputs, &wfdb.ParentRef{
		Workflow: st.ins.Workflow,
		ID:       st.ins.ID,
		Step:     step,
	})
	if err != nil {
		e.logf("instance %s step %s: nested start: %v", st.ins.Key(), step, err)
		st.dispatched[step] = false
		return
	}
	st.childOf[step] = id
}

// onChildFinished resumes the parent step when its nested workflow ends.
func (e *Engine) onChildFinished(parent *instState, step model.StepID, child *instState) {
	parent.dispatched[step] = false
	e.addLoad(metrics.Normal, 1)
	if parent.ins.Status != wfdb.Running {
		return
	}
	if child.ins.Status != wfdb.Committed {
		parent.ins.RecordFailed(step)
		e.handleStepFailure(parent, step)
		return
	}
	// Output mapping: output o of the nested step takes the value of
	// <terminal>.<o> from the child's data table (first terminal that
	// produced it, in definition order).
	s := parent.schema.Steps[step]
	outputs := make(map[string]expr.Value, len(s.Outputs))
	for _, o := range s.Outputs {
		for _, term := range child.schema.TerminalSteps() {
			if v, ok := child.ins.Data[term.Ref(o)]; ok {
				outputs[o] = v
				break
			}
		}
	}
	parent.ins.RecordDone(step, outputs)
	e.afterStepDone(parent, step)
	e.evaluate(parent)
}

func (e *Engine) persist(st *instState) {
	if e.cfg.DB == nil {
		return
	}
	if err := e.cfg.DB.SaveInstance(st.ins); err != nil {
		e.logf("persist %s: %v", st.ins.Key(), err)
	}
}

// ---------------------------------------------------------------------------
// Coordination callbacks (engine goroutine only)

func (e *Engine) injectLocal(target coord.InstanceRef, eventName string) {
	st := e.instances[wfdb.InstanceKeyOf(target.Workflow, target.ID)]
	if st == nil {
		if e.halted {
			e.orphans = append(e.orphans, func() { e.injectLocal(target, eventName) })
		}
		return
	}
	e.addLoad(metrics.Coordination, 1)
	if st.ins.Events.Post(eventName) {
		e.retryBlocked(st)
		e.evaluate(st)
	}
}

// retryBlocked re-attempts coordination-blocked steps after new events, in
// step-ID order so the resulting dispatches are deterministic.
func (e *Engine) retryBlocked(st *instState) {
	steps := make([]model.StepID, 0, len(st.coordBlocked))
	for step, blocked := range st.coordBlocked {
		if blocked {
			steps = append(steps, step)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	for _, step := range steps {
		e.maybeExecute(st, step)
	}
}

func (e *Engine) coordResolved(inst coord.InstanceRef, step model.StepID, waitEvents []string) {
	st := e.instances[wfdb.InstanceKeyOf(inst.Workflow, inst.ID)]
	if st == nil {
		if e.halted {
			e.orphans = append(e.orphans, func() { e.coordResolved(inst, step, waitEvents) })
		}
		return
	}
	st.coordPending[step] = false
	st.coordWaits[step] = waitEvents
	e.maybeExecute(st, step)
	e.evaluate(st)
}
