package central

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
)

// Agent is an application agent of the centralized architecture: it executes
// step programs on the engine's request and answers state probes. It holds no
// workflow state — that is the defining property of centralized control.
type Agent struct {
	name     string
	net      *transport.Network
	ep       *transport.Endpoint
	programs *model.Registry
	rec      metrics.NodeRecorder
	// handles caches per-destination senders; touched only by the agent
	// goroutine.
	handles map[string]*transport.Handle
	// batch coalesces the responses of one handler turn (one received
	// envelope of N requests yields one envelope of N responses).
	batch transport.Batcher

	load int64 // executions performed, reported to StateInformation probes

	wg   sync.WaitGroup
	done chan struct{}
}

// NewAgent registers and starts an application agent on the network.
func NewAgent(name string, net *transport.Network, programs *model.Registry, col *metrics.Collector) (*Agent, error) {
	ep, err := net.Register(name)
	if err != nil {
		return nil, err
	}
	ep.ManualAck()
	a := &Agent{
		name:     name,
		net:      net,
		ep:       ep,
		programs: programs,
		rec:      col.Node(name),
		handles:  make(map[string]*transport.Handle),
		done:     make(chan struct{}),
	}
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// Name returns the agent's node name.
func (a *Agent) Name() string { return a.name }

// Load returns the number of programs the agent has executed.
func (a *Agent) Load() int64 { return atomic.LoadInt64(&a.load) }

// Stop waits for the agent goroutine to exit (the network must be closed or
// closing, so the inbox drains).
func (a *Agent) Stop() {
	a.wg.Wait()
}

func (a *Agent) loop() {
	defer a.wg.Done()
	for m := range a.ep.Inbox() {
		if env, ok := m.Payload.(*transport.Envelope); ok {
			for _, lm := range env.Msgs {
				a.handleOne(lm)
			}
			env.Release()
		} else {
			a.handleOne(m)
		}
		_ = a.batch.Flush() // before Ack: sends belong to this turn
		a.ep.Ack()
	}
}

func (a *Agent) handleOne(m transport.Message) {
	switch p := m.Payload.(type) {
	case ExecRequest:
		a.handleExec(p)
	case StateRequest:
		a.send(p.ReplyTo, p.Mechanism, KindStateResponse, StateResponse{Agent: a.name, Load: atomic.LoadInt64(&a.load)})
	}
}

func (a *Agent) handleExec(req ExecRequest) {
	resp := ExecResponse{
		Workflow: req.Workflow,
		Instance: req.Instance,
		Step:     req.Step,
		Mode:     req.Mode,
		Attempt:  req.Attempt,
	}
	prog, ok := a.programs.Lookup(req.Program)
	if !ok {
		resp.Failed = true
		resp.Reason = fmt.Sprintf("agent %s: unknown program %q", a.name, req.Program)
	} else {
		atomic.AddInt64(&a.load, 1)
		a.rec.Add(req.Mechanism, 1)
		out, err := prog(&model.ProgramContext{
			Workflow: req.Workflow,
			Instance: req.Instance,
			Step:     req.Step,
			Mode:     req.Mode,
			Attempt:  req.Attempt,
			Inputs:   req.Inputs,
			Prev:     req.Prev,
		})
		if err != nil {
			resp.Failed = true
			resp.Reason = err.Error()
		} else {
			resp.Outputs = out
		}
	}
	a.send(req.ReplyTo, req.Mechanism, KindStepResult, resp)
}

func (a *Agent) send(to string, mech metrics.Mechanism, kind string, payload any) {
	h := a.handles[to]
	if h == nil {
		var err error
		if h, err = a.net.Handle(to); err != nil {
			return
		}
		a.handles[to] = h
	}
	a.batch.Add(h, transport.Message{
		From:      a.name,
		To:        to,
		Mechanism: mech,
		Kind:      kind,
		Payload:   payload,
	})
}
