package central

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crew/internal/coord"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/wfdb"
)

const waitTimeout = 5 * time.Second

// recorder captures program executions across agent goroutines.
type recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	r.mu.Unlock()
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *recorder) count(s string) int {
	n := 0
	for _, e := range r.list() {
		if e == s {
			n++
		}
	}
	return n
}

func (r *recorder) index(s string) int {
	for i, e := range r.list() {
		if e == s {
			return i
		}
	}
	return -1
}

// tracked returns a program that records its invocation and emits outputs.
func tracked(rec *recorder, name string, outputs map[string]expr.Value) model.Program {
	return func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add(name)
		out := make(map[string]expr.Value, len(outputs))
		for k, v := range outputs {
			out[k] = v
		}
		return out, nil
	}
}

func newSystem(t *testing.T, lib *model.Library, reg *model.Registry) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: metrics.NewCollector(),
		DB:        wfdb.NewMemory(),
		Agents:    []string{"a1", "a2"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func runToStatus(t *testing.T, sys *System, wf string, inputs map[string]expr.Value, want wfdb.Status) int {
	t.Helper()
	id, st, err := sys.Run(wf, inputs, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("instance %s.%d finished %v, want %v", wf, id, st, want)
	}
	return id
}

func lib1(schemas ...*model.Schema) *model.Library {
	lib := model.NewLibrary()
	for _, s := range schemas {
		lib.Add(s)
	}
	return lib
}

func TestLinearWorkflowCommits(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(1)}))
	reg.Register("pb", tracked(rec, "b", map[string]expr.Value{"O1": expr.Num(2)}))
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("Lin", "I1").
		Step("A", "pa", model.WithOutputs("O1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithOutputs("O1")).
		Step("C", "pc", model.WithInputs("B.O1", "WF.I1")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)

	id := runToStatus(t, sys, "Lin", map[string]expr.Value{"I1": expr.Num(90)}, wfdb.Committed)

	got := rec.list()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("execution order = %v", got)
	}
	snap, ok := sys.Snapshot("Lin", id)
	if !ok {
		t.Fatal("no snapshot")
	}
	if !snap.Data["A.O1"].Equal(expr.Num(1)) || !snap.Data["B.O1"].Equal(expr.Num(2)) {
		t.Errorf("data table = %v", snap.Data)
	}
	if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
		t.Errorf("Status = (%v, %v)", st, ok)
	}
	// Archived in the DB with a committed summary.
	if sum, ok, _ := sys.Engine.cfg.DB.LoadSummary("Lin", id); !ok || sum != wfdb.Committed {
		t.Errorf("summary = (%v, %v)", sum, ok)
	}
	if _, ok, _ := sys.Engine.cfg.DB.LoadArchived("Lin", id); !ok {
		t.Error("instance not archived")
	}
}

func TestMessageCountMatchesCentralizedModel(t *testing.T) {
	// Paper Table 4: normal execution exchanges 2·s·a messages per instance.
	// With s=3 steps and a=2 eligible agents per step: 12 messages.
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, p := range []string{"pa", "pb", "pc"} {
		reg.Register(p, tracked(rec, p, nil))
	}
	s := model.NewSchema("Msg").
		Step("A", "pa", model.WithAgents("a1", "a2")).
		Step("B", "pb", model.WithAgents("a1", "a2")).
		Step("C", "pc", model.WithAgents("a1", "a2")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Msg", nil, wfdb.Committed)

	// Probe responses may still be in flight right after commit.
	deadline := time.Now().Add(waitTimeout)
	for sys.Collector().Messages(metrics.Normal) < 12 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sys.Collector().Messages(metrics.Normal); got != 12 {
		t.Errorf("normal messages = %d, want 2*s*a = 12", got)
	}
	if got := sys.Collector().Messages(metrics.Coordination); got != 0 {
		t.Errorf("coordination messages = %d, want 0 in centralized control", got)
	}
	node, load := sys.Collector().MaxNodeLoad(metrics.Normal)
	if node != "engine" || load == 0 {
		t.Errorf("engine load = (%s, %d)", node, load)
	}
}

func TestParallelBranchJoin(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, p := range []string{"pa", "pb", "pc", "pd"} {
		reg.Register(p, tracked(rec, p, nil))
	}
	s := model.NewSchema("Dia").
		Step("A", "pa").
		Step("B", "pb").
		Step("C", "pc").
		Step("D", "pd", model.WithJoin(model.JoinAll)).
		Arc("A", "B").Arc("A", "C").Arc("B", "D").Arc("C", "D").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Dia", nil, wfdb.Committed)

	if rec.count("pd") != 1 {
		t.Errorf("join step executed %d times", rec.count("pd"))
	}
	if rec.index("pd") != 3 {
		t.Errorf("join must run last: %v", rec.list())
	}
}

func TestIfThenElseTakesOneBranch(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(-3)}))
	reg.Register("ptop", tracked(rec, "top", nil))
	reg.Register("pbot", tracked(rec, "bot", nil))
	reg.Register("pj", tracked(rec, "join", nil))
	s := model.NewSchema("ITE").
		Step("A", "pa", model.WithOutputs("O1")).
		Step("T", "ptop").
		Step("B", "pbot").
		Step("J", "pj", model.WithJoin(model.JoinAny)).
		CondArc("A", "T", "A.O1 > 0").
		CondArc("A", "B", "A.O1 <= 0").
		Arc("T", "J").Arc("B", "J").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "ITE", nil, wfdb.Committed)

	if rec.count("top") != 0 || rec.count("bot") != 1 || rec.count("join") != 1 {
		t.Errorf("branch execution = %v", rec.list())
	}
}

func TestLoopIterates(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	var mu sync.Mutex
	counter := 0.0
	reg.Register("pinc", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		mu.Lock()
		counter++
		v := counter
		mu.Unlock()
		rec.add("inc")
		return map[string]expr.Value{"O1": expr.Num(v)}, nil
	})
	reg.Register("pend", tracked(rec, "end", nil))
	s := model.NewSchema("Loop").
		Step("I", "pinc", model.WithOutputs("O1")).
		Step("E", "pend", model.WithInputs("I.O1")).
		Arc("I", "E").
		LoopArc("I", "I", "I.O1 < 3").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id := runToStatus(t, sys, "Loop", nil, wfdb.Committed)

	if got := rec.count("inc"); got != 3 {
		t.Errorf("loop body executed %d times, want 3", got)
	}
	snap, _ := sys.Snapshot("Loop", id)
	if !snap.Data["I.O1"].Equal(expr.Num(3)) {
		t.Errorf("final loop output = %v", snap.Data["I.O1"])
	}
}

// TestFigure3BranchSwitch reproduces the paper's Figure 3: S4 fails, the
// workflow partially rolls back to S2 and re-executes; the second pass takes
// the other branch, so S3 (executed on the abandoned branch) is compensated.
func TestFigure3BranchSwitch(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("p1", tracked(rec, "s1", nil))
	reg.Register("p2", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("s2")
		if ctx.Attempt <= 1 {
			return map[string]expr.Value{"O1": expr.Num(5)}, nil // top branch
		}
		return map[string]expr.Value{"O1": expr.Num(-1)}, nil // bottom branch
	})
	reg.Register("c2", tracked(rec, "c2", nil))
	reg.Register("p3", tracked(rec, "s3", nil))
	reg.Register("c3", tracked(rec, "c3", nil))
	reg.Register("p4", model.FailNTimes(1, tracked(rec, "s4", nil)))
	reg.Register("p6", tracked(rec, "s6", nil))
	reg.Register("p5", tracked(rec, "s5", nil))

	s := model.NewSchema("Fig3", "I1").
		Step("S1", "p1").
		Step("S2", "p2", model.WithOutputs("O1"), model.WithCompensation("c2"), model.WithReexecCond("true")).
		Step("S3", "p3", model.WithCompensation("c3")).
		Step("S4", "p4").
		Step("S6", "p6").
		Step("S5", "p5", model.WithJoin(model.JoinAny)).
		Seq("S1", "S2").
		CondArc("S2", "S3", "S2.O1 > 0").
		CondArc("S2", "S6", "S2.O1 <= 0").
		Arc("S3", "S4").Arc("S4", "S5").Arc("S6", "S5").
		OnFailure("S4", "S2", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Fig3", nil, wfdb.Committed)

	if rec.count("s2") != 2 {
		t.Errorf("S2 executed %d times, want 2: %v", rec.count("s2"), rec.list())
	}
	if rec.count("c2") != 1 {
		t.Errorf("S2 compensated %d times, want 1", rec.count("c2"))
	}
	if rec.count("c3") != 1 {
		t.Errorf("abandoned branch S3 compensated %d times, want 1: %v", rec.count("c3"), rec.list())
	}
	if rec.count("s6") != 1 || rec.count("s5") != 1 {
		t.Errorf("bottom branch not taken: %v", rec.list())
	}
	if rec.count("s4") != 0 {
		t.Errorf("S4 should have failed, not completed: %v", rec.list())
	}
	// Failure-handling messages were classified separately.
	if sys.Collector().Messages(metrics.Failure) == 0 {
		t.Error("no failure-handling messages recorded")
	}
}

// TestOCRReuse verifies the opportunistic reuse: after a rollback past A,
// A's unchanged results are reused without compensation or re-execution.
func TestOCRReuse(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(7)}))
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", model.FailNTimes(1, tracked(rec, "b", nil)))
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("Reuse").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca")).
		Step("B", "pb", model.WithInputs("A.O1")).
		Step("C", "pc").
		Seq("A", "B", "C").
		OnFailure("B", "A", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id := runToStatus(t, sys, "Reuse", nil, wfdb.Committed)

	if rec.count("a") != 1 {
		t.Errorf("A executed %d times, want 1 (reused): %v", rec.count("a"), rec.list())
	}
	if rec.count("ca") != 0 {
		t.Errorf("A compensated despite reuse: %v", rec.list())
	}
	// The first B attempt failed inside the injector (inner program not
	// reached); the retry succeeded: one recorded run, two attempts.
	if rec.count("b") != 1 {
		t.Errorf("B ran %d times, want 1 recorded success: %v", rec.count("b"), rec.list())
	}
	snap, _ := sys.Snapshot("Reuse", id)
	if got := snap.StepRec("B").Attempts; got != 2 {
		t.Errorf("B attempts = %d, want 2", got)
	}
	if rec.count("c") != 1 {
		t.Errorf("C executed %d times, want 1", rec.count("c"))
	}
}

// TestOCRDisabledFallsBackToSaga covers the ablation: with OCR disabled, the
// revisited step is always compensated and re-executed.
func TestOCRDisabledFallsBackToSaga(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(7)}))
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", model.FailNTimes(1, tracked(rec, "b", nil)))
	s := model.NewSchema("Saga").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca")).
		Step("B", "pb", model.WithInputs("A.O1")).
		Seq("A", "B").
		OnFailure("B", "A", 3).
		MustBuild()
	lib := lib1(s)
	sys, err := NewSystem(SystemConfig{
		Library:    lib,
		Programs:   reg,
		Collector:  metrics.NewCollector(),
		Agents:     []string{"a1", "a2"},
		DisableOCR: true,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	id, st, err := sys.Run("Saga", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%d, %v, %v)", id, st, err)
	}
	if rec.count("ca") != 1 || rec.count("a") != 2 {
		t.Errorf("Saga fallback: a=%d ca=%d, want 2/1: %v", rec.count("a"), rec.count("ca"), rec.list())
	}
}

// TestOCRIncremental verifies partial compensation + incremental
// re-execution for steps that support it.
func TestOCRIncremental(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		switch ctx.Mode {
		case model.ModeIncremental:
			rec.add("a-incr")
		default:
			rec.add("a")
		}
		return map[string]expr.Value{"O1": expr.Num(float64(ctx.Attempt))}, nil
	})
	reg.Register("ca", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		if ctx.Mode == model.ModePartialComp {
			rec.add("ca-partial")
		} else {
			rec.add("ca")
		}
		return nil, nil
	})
	reg.Register("pb", model.FailNTimes(1, tracked(rec, "b", nil)))
	s := model.NewSchema("Incr").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca"),
			model.WithReexecCond("true"), model.WithIncremental()).
		Step("B", "pb", model.WithInputs("A.O1")).
		Seq("A", "B").
		OnFailure("B", "A", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "Incr", nil, wfdb.Committed)

	if rec.count("ca-partial") != 1 || rec.count("a-incr") != 1 {
		t.Errorf("incremental path not used: %v", rec.list())
	}
	if rec.count("ca") != 0 {
		t.Errorf("complete compensation used despite incremental support: %v", rec.list())
	}
}

// TestCompSetReverseOrder verifies compensation dependent sets compensate in
// reverse execution order before the rolled-back step re-executes.
func TestCompSetReverseOrder(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	for _, n := range []string{"pa", "pb", "pc"} {
		n := n
		reg.Register(n, func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
			rec.add(n)
			return map[string]expr.Value{"O1": expr.Num(float64(ctx.Attempt))}, nil
		})
	}
	for _, n := range []string{"ca", "cb", "cc"} {
		reg.Register(n, tracked(rec, n, nil))
	}
	reg.Register("pd", model.FailNTimes(1, tracked(rec, "pd", nil)))
	s := model.NewSchema("CSet").
		Step("A", "pa", model.WithOutputs("O1"), model.WithCompensation("ca"), model.WithReexecCond("true")).
		Step("B", "pb", model.WithOutputs("O1"), model.WithCompensation("cb"), model.WithReexecCond("true")).
		Step("C", "pc", model.WithOutputs("O1"), model.WithCompensation("cc"), model.WithReexecCond("true")).
		Step("D", "pd").
		Seq("A", "B", "C", "D").
		CompSet("A", "B", "C").
		OnFailure("D", "A", 3).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	runToStatus(t, sys, "CSet", nil, wfdb.Committed)

	// When A is revisited, the whole set compensates in reverse order first.
	ic, ib, ia := rec.index("cc"), rec.index("cb"), rec.index("ca")
	if ic < 0 || ib < 0 || ia < 0 || !(ic < ib && ib < ia) {
		t.Errorf("compensation order wrong: %v", rec.list())
	}
	for _, n := range []string{"pa", "pb", "pc"} {
		if rec.count(n) != 2 {
			t.Errorf("%s executed %d times, want 2: %v", n, rec.count(n), rec.list())
		}
	}
}

func TestUserAbortCompensatesReverse(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("pb", tracked(rec, "b", nil))
	reg.Register("pc", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("c")
		<-gate
		return nil, nil
	})
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("cb", tracked(rec, "cb", nil))
	// C runs on its own agent so its blocked program cannot stall the
	// compensations dispatched to a1.
	s := model.NewSchema("Ab").
		Step("A", "pa", model.WithCompensation("ca"), model.WithAgents("a1")).
		Step("B", "pb", model.WithCompensation("cb"), model.WithAgents("a1")).
		Step("C", "pc", model.WithAgents("a2")).
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)

	id, err := sys.Start("Ab", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until C is in flight (A and B done).
	deadline := time.Now().Add(waitTimeout)
	for rec.count("c") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("C never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := sys.Abort("Ab", id); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Wait("Ab", id, waitTimeout)
	close(gate)
	if err != nil || st != wfdb.Aborted {
		t.Fatalf("abort wait = (%v, %v)", st, err)
	}
	ib, ia := rec.index("cb"), rec.index("ca")
	if ib < 0 || ia < 0 || ib > ia {
		t.Errorf("compensations out of order: %v", rec.list())
	}
	// Abort messages classified under Abort.
	if sys.Collector().Messages(metrics.Abort) == 0 {
		t.Error("no abort messages recorded")
	}
	// Aborting again is rejected.
	if err := sys.Abort("Ab", id); err == nil {
		t.Error("second abort should fail")
	}
}

func TestWorkflowInputChange(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("pa", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("a")
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"O1": expr.Num(v * 2)}, nil
	})
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("b")
		gateOnce.Do(func() { <-gate })
		return nil, nil
	})
	s := model.NewSchema("IC", "I1").
		Step("A", "pa", model.WithInputs("WF.I1"), model.WithOutputs("O1"), model.WithCompensation("ca")).
		Step("B", "pb", model.WithInputs("A.O1")).
		Seq("A", "B").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)

	id, err := sys.Start("IC", map[string]expr.Value{"I1": expr.Num(10)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("b") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Change the input while B is blocked: A must compensate and re-execute
	// with the new value; B's stale result is dropped and B re-runs.
	if err := sys.ChangeInputs("IC", id, map[string]expr.Value{"I1": expr.Num(20)}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	st, err := sys.Wait("IC", id, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("wait = (%v, %v)", st, err)
	}
	snap, _ := sys.Snapshot("IC", id)
	if !snap.Data["A.O1"].Equal(expr.Num(40)) {
		t.Errorf("A.O1 = %v, want 40 after input change", snap.Data["A.O1"])
	}
	if rec.count("a") != 2 || rec.count("ca") != 1 {
		t.Errorf("a=%d ca=%d, want 2/1: %v", rec.count("a"), rec.count("ca"), rec.list())
	}
	if sys.Collector().Messages(metrics.InputChange) == 0 {
		t.Error("no input-change messages recorded")
	}
	// Changing inputs after commit is rejected.
	if err := sys.ChangeInputs("IC", id, map[string]expr.Value{"I1": expr.Num(30)}); err == nil {
		t.Error("input change after commit should fail")
	}
	// No-op change (same value) succeeds without work.
	// (Instance finished, so this exercises the error path instead.)
}

func TestExhaustedAttemptsAbort(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", nil))
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", model.FailNTimes(100, tracked(rec, "b", nil)))
	s := model.NewSchema("Fail").
		Step("A", "pa", model.WithCompensation("ca")).
		Step("B", "pb").
		Seq("A", "B").
		OnFailure("B", "A", 2).
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	id, st, err := sys.Run("Fail", nil, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st != wfdb.Aborted {
		t.Fatalf("status = %v, want aborted after exhausted attempts", st)
	}
	if rec.count("ca") != 1 {
		t.Errorf("A compensated %d times on abort, want 1: %v", rec.count("ca"), rec.list())
	}
	if sum, ok, _ := sys.Engine.cfg.DB.LoadSummary("Fail", id); !ok || sum != wfdb.Aborted {
		t.Errorf("summary = (%v, %v)", sum, ok)
	}
}

func TestStepWithoutPolicyAbortsOnFailure(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("pa", model.FailNTimes(1, model.NopProgram()))
	s := model.NewSchema("NoPol").
		Step("A", "pa").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	_, st, err := sys.Run("NoPol", nil, waitTimeout)
	if err != nil || st != wfdb.Aborted {
		t.Fatalf("run = (%v, %v), want aborted", st, err)
	}
}

func TestNestedWorkflow(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pp1", tracked(rec, "p1", map[string]expr.Value{"O1": expr.Num(11)}))
	reg.Register("pp3", tracked(rec, "p3", nil))
	reg.Register("pc1", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("c1")
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"R": expr.Num(v + 1)}, nil
	})
	child := model.NewSchema("Child", "I1").
		Step("C1", "pc1", model.WithInputs("WF.I1"), model.WithOutputs("R")).
		MustBuild()
	parent := model.NewSchema("Parent", "I1").
		Step("P1", "pp1", model.WithOutputs("O1")).
		NestedStep("N", "Child", model.WithInputs("P1.O1"), model.WithOutputs("R")).
		Step("P3", "pp3", model.WithInputs("N.R")).
		Seq("P1", "N", "P3").
		MustBuild()
	sys := newSystem(t, lib1(parent, child), reg)
	id := runToStatus(t, sys, "Parent", nil, wfdb.Committed)

	snap, _ := sys.Snapshot("Parent", id)
	if !snap.Data["N.R"].Equal(expr.Num(12)) {
		t.Errorf("nested output N.R = %v, want 12", snap.Data["N.R"])
	}
	want := []string{"p1", "c1", "p3"}
	got := rec.list()
	if len(got) != 3 {
		t.Fatalf("executions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestRelativeOrderEnforced(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	reg.Register("pa1", tracked(rec, "a1", nil))
	reg.Register("pb1", tracked(rec, "b1", nil))
	reg.Register("pa2", tracked(rec, "a2", nil))
	reg.Register("pb2", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		<-gate
		rec.add("b2")
		return nil, nil
	})
	wf1 := model.NewSchema("O1").
		Step("A1", "pa1").Step("B1", "pb1").Seq("A1", "B1").MustBuild()
	wf2 := model.NewSchema("O2").
		Step("A2", "pa2").Step("B2", "pb2").Seq("A2", "B2").MustBuild()
	lib := lib1(wf1, wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "O1", Step: "A1"}, B: model.StepRef{Workflow: "O2", Step: "A2"}},
			{A: model.StepRef{Workflow: "O1", Step: "B1"}, B: model.StepRef{Workflow: "O2", Step: "B2"}},
		},
	})
	sys := newSystem(t, lib, reg)

	// O2 starts first and completes its pair-0 step: it leads.
	id2, err := sys.Start("O2", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("a2") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("a2 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	id1, err := sys.Start("O1", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The lagging O1 must not execute B1 while the leader's B2 is blocked.
	time.Sleep(100 * time.Millisecond)
	if rec.count("b1") != 0 {
		t.Fatalf("lagging B1 ran before leading B2: %v", rec.list())
	}
	close(gate)
	if st, err := sys.Wait("O2", id2, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O2 = (%v, %v)", st, err)
	}
	if st, err := sys.Wait("O1", id1, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O1 = (%v, %v)", st, err)
	}
	if rec.index("b2") > rec.index("b1") {
		t.Errorf("relative order violated: %v", rec.list())
	}
	// Centralized coordination uses zero messages.
	if got := sys.Collector().Messages(metrics.Coordination); got != 0 {
		t.Errorf("coordination messages = %d, want 0", got)
	}
	// But it does cost engine load.
	if sys.Collector().NodeLoad("engine", metrics.Coordination) == 0 {
		t.Error("no coordination load recorded at engine")
	}
}

func TestMutualExclusion(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	var mu sync.Mutex
	inCrit, maxCrit := 0, 0
	crit := func(name string) model.Program {
		return func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
			mu.Lock()
			inCrit++
			if inCrit > maxCrit {
				maxCrit = inCrit
			}
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			mu.Lock()
			inCrit--
			mu.Unlock()
			rec.add(name)
			return nil, nil
		}
	}
	reg.Register("px", crit("x"))
	reg.Register("py", crit("y"))
	a := model.NewSchema("MA").Step("X", "px").MustBuild()
	b := model.NewSchema("MB").Step("Y", "py").MustBuild()
	lib := lib1(a, b)
	lib.AddCoord(model.CoordSpec{
		Kind: model.Mutex,
		Name: "res",
		MutexSteps: []model.StepRef{
			{Workflow: "MA", Step: "X"},
			{Workflow: "MB", Step: "Y"},
		},
	})
	sys := newSystem(t, lib, reg)

	var ids []struct {
		wf string
		id int
	}
	for i := 0; i < 3; i++ {
		ida, err := sys.Start("MA", nil)
		if err != nil {
			t.Fatal(err)
		}
		idb, err := sys.Start("MB", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, struct {
			wf string
			id int
		}{"MA", ida}, struct {
			wf string
			id int
		}{"MB", idb})
	}
	for _, ref := range ids {
		if st, err := sys.Wait(ref.wf, ref.id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("%s.%d = (%v, %v)", ref.wf, ref.id, st, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if maxCrit != 1 {
		t.Errorf("max concurrent critical sections = %d, want 1", maxCrit)
	}
	if rec.count("x") != 3 || rec.count("y") != 3 {
		t.Errorf("executions = %v", rec.list())
	}
}

func TestRollbackDependency(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("px1", tracked(rec, "x1", nil))
	reg.Register("px2", model.FailNTimes(1, tracked(rec, "x2", nil)))
	reg.Register("py1", tracked(rec, "y1", nil))
	reg.Register("cy1", tracked(rec, "cy1", nil))
	reg.Register("py2", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		gateOnce.Do(func() { <-gate })
		rec.add("y2")
		return nil, nil
	})
	// Y2 blocks on the gate, so it gets a dedicated agent; everything else
	// runs on a1.
	x := model.NewSchema("X").
		Step("X1", "px1", model.WithAgents("a1")).
		Step("X2", "px2", model.WithAgents("a1")).
		Seq("X1", "X2").
		OnFailure("X2", "X1", 3).
		MustBuild()
	y := model.NewSchema("Y").
		Step("Y1", "py1", model.WithCompensation("cy1"), model.WithReexecCond("true"), model.WithAgents("a1")).
		Step("Y2", "py2", model.WithAgents("a2")).
		Seq("Y1", "Y2").
		MustBuild()
	lib := lib1(x, y)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "X", Step: "X1"},
		Target:  model.StepRef{Workflow: "Y", Step: "Y1"},
	})
	sys := newSystem(t, lib, reg)

	idY, err := sys.Start("Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("y1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("y1 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// X fails at X2 and rolls back past X1, triggering Y's rollback to Y1.
	idX, err := sys.Start("X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := sys.Wait("X", idX, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("X = (%v, %v)", st, err)
	}
	close(gate)
	if st, err := sys.Wait("Y", idY, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("Y = (%v, %v)", st, err)
	}
	if rec.count("cy1") != 1 || rec.count("y1") != 2 {
		t.Errorf("dependent rollback not applied: cy1=%d y1=%d: %v",
			rec.count("cy1"), rec.count("y1"), rec.list())
	}
}

func TestStartUnknownWorkflow(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram())
	s := model.NewSchema("W").Step("A", "p").MustBuild()
	sys := newSystem(t, lib1(s), reg)
	if _, err := sys.Start("Missing", nil); err == nil {
		t.Error("start of unknown workflow should fail")
	}
	if err := sys.Abort("W", 99); err == nil {
		t.Error("abort of unknown instance should fail")
	}
	if err := sys.ChangeInputs("W", 99, nil); err == nil {
		t.Error("input change of unknown instance should fail")
	}
	if _, ok := sys.Status("W", 99); ok {
		t.Error("status of unknown instance should be not-ok")
	}
}

func TestManyConcurrentInstances(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram("O1"))
	s := model.NewSchema("Many").
		Step("A", "p", model.WithOutputs("O1")).
		Step("B", "p").
		Step("C", "p").
		Seq("A", "B", "C").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	const n = 50
	ids := make([]int, n)
	for i := range ids {
		id, err := sys.Start("Many", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if st, err := sys.Wait("Many", id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("instance %d = (%v, %v)", id, st, err)
		}
	}
	// 2·s·a messages per instance with a=2 agents: 12 each.
	if got := sys.Collector().Messages(metrics.Normal); got != int64(n*12) {
		t.Errorf("normal messages = %d, want %d", got, n*12)
	}
}

// TestEngineForwardRecovery exercises the paper's §2 claim that the WFDB
// enables forward recovery of a failed engine: a fresh system over the same
// database resumes a mid-flight instance — completed steps are reused via
// OCR, the step that was executing at the crash re-runs, and the workflow
// commits.
func TestEngineForwardRecovery(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(1)}))
	reg.Register("ca", tracked(rec, "ca", nil))
	reg.Register("pb", tracked(rec, "b", nil))
	reg.Register("pc", tracked(rec, "c", nil))
	s := model.NewSchema("Rec", "I1").
		Step("A", "pa", model.WithInputs("WF.I1"), model.WithOutputs("O1"), model.WithCompensation("ca")).
		Step("B", "pb", model.WithInputs("A.O1")).
		Step("C", "pc").
		Seq("A", "B", "C").
		MustBuild()
	lib := lib1(s)

	// Craft the crash state directly in the database: A completed, B was
	// executing when the engine died.
	db := wfdb.NewMemory()
	if err := db.SaveSchema(s); err != nil {
		t.Fatal(err)
	}
	ins := wfdb.NewInstance("Rec", 3, map[string]expr.Value{"I1": expr.Num(9)})
	ins.Events.Post("WF.start")
	ins.RecordExecuting("A", "a1", map[string]expr.Value{"WF.I1": expr.Num(9)})
	ins.RecordDone("A", map[string]expr.Value{"O1": expr.Num(1)})
	ins.RecordExecuting("B", "a2", map[string]expr.Value{"A.O1": expr.Num(1)})
	if err := db.SaveInstance(ins); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSummary("Rec", 3, wfdb.Running); err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem(SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: metrics.NewCollector(),
		DB:        db,
		Agents:    []string{"a1", "a2"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	n, err := sys.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = (%d, %v), want 1 instance", n, err)
	}
	st, err := sys.Wait("Rec", 3, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("recovered instance = (%v, %v)", st, err)
	}
	// A's results were reused (no re-execution, no compensation); B re-ran.
	if rec.count("a") != 0 || rec.count("ca") != 0 {
		t.Errorf("A should be reused untouched: %v", rec.list())
	}
	if rec.count("b") != 1 || rec.count("c") != 1 {
		t.Errorf("B/C executions = %v", rec.list())
	}
	// Summary reflects the commit; a second Recover finds nothing to do.
	if sum, ok, _ := db.LoadSummary("Rec", 3); !ok || sum != wfdb.Committed {
		t.Errorf("summary = (%v, %v)", sum, ok)
	}
	if n, err := sys.Recover(); err != nil || n != 0 {
		t.Errorf("second Recover = (%d, %v), want 0", n, err)
	}
}

// TestRecoverWithoutDB rejects recovery when no database is configured.
func TestRecoverWithoutDB(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram())
	lib := lib1(model.NewSchema("W").Step("A", "p").MustBuild())
	sys, err := NewSystem(SystemConfig{
		Library:  lib,
		Programs: reg,
		Agents:   []string{"a1"},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Recover(); err == nil {
		t.Error("Recover without DB should fail")
	}
}

// linSchema builds the three-step linear schema used by the retirement tests.
func linSchema(reg *model.Registry, rec *recorder) *model.Schema {
	reg.Register("pa", tracked(rec, "a", map[string]expr.Value{"O1": expr.Num(1)}))
	reg.Register("pb", tracked(rec, "b", map[string]expr.Value{"O1": expr.Num(2)}))
	reg.Register("pc", tracked(rec, "c", nil))
	return model.NewSchema("Lin", "I1").
		Step("A", "pa", model.WithOutputs("O1")).
		Step("B", "pb", model.WithInputs("A.O1"), model.WithOutputs("O1")).
		Step("C", "pc", model.WithInputs("B.O1", "WF.I1")).
		Seq("A", "B", "C").
		MustBuild()
}

func TestRetiredInstanceServedFromArchive(t *testing.T) {
	reg := model.NewRegistry()
	sys := newSystem(t, lib1(linSchema(reg, &recorder{})), reg)
	id := runToStatus(t, sys, "Lin", map[string]expr.Value{"I1": expr.Num(1)}, wfdb.Committed)

	// The live table is empty: the terminal instance was archived and
	// evicted when it committed.
	if n := sys.Engine.LiveInstances(); n != 0 {
		t.Fatalf("LiveInstances = %d after commit", n)
	}
	// The public API still answers, now from the archive/terminal registry.
	if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
		t.Fatalf("Status = (%v, %v)", st, ok)
	}
	snap, ok := sys.Snapshot("Lin", id)
	if !ok || snap.Status != wfdb.Committed {
		t.Fatalf("Snapshot = (%v, %v)", snap, ok)
	}
	if !snap.Data["B.O1"].Equal(expr.Num(2)) {
		t.Fatalf("archived data table = %v", snap.Data)
	}
	if st, err := sys.Wait("Lin", id, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("Wait = (%v, %v)", st, err)
	}
	// Mutations distinguish retired from never-started.
	if err := sys.Abort("Lin", id); err != ErrNotRunning {
		t.Fatalf("Abort retired = %v, want ErrNotRunning", err)
	}
	if err := sys.Abort("Lin", 999); err != ErrUnknownInstance {
		t.Fatalf("Abort unknown = %v, want ErrUnknownInstance", err)
	}
}

func TestRecoverDoesNotResurrectRetired(t *testing.T) {
	reg := model.NewRegistry()
	rec := &recorder{}
	sys := newSystem(t, lib1(linSchema(reg, rec)), reg)
	id := runToStatus(t, sys, "Lin", map[string]expr.Value{"I1": expr.Num(1)}, wfdb.Committed)

	// Archive removed the instance record, so recovery has nothing to load:
	// the retired instance must not come back as a running replica.
	n, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Recover resumed %d instances, want 0", n)
	}
	if live := sys.Engine.LiveInstances(); live != 0 {
		t.Fatalf("LiveInstances after Recover = %d", live)
	}
	if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
		t.Fatalf("Status after Recover = (%v, %v)", st, ok)
	}
	if got := rec.count("a"); got != 1 {
		t.Fatalf("step A executed %d times (re-executed after recovery?)", got)
	}
}

func TestRetirementForgetsCoordination(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa1", tracked(rec, "a1", nil))
	reg.Register("pa2", tracked(rec, "a2", nil))
	wf1 := model.NewSchema("O1").Step("A1", "pa1").MustBuild()
	wf2 := model.NewSchema("O2").Step("A2", "pa2").MustBuild()
	lib := lib1(wf1, wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "O1", Step: "A1"}, B: model.StepRef{Workflow: "O2", Step: "A2"}},
		},
	})
	sys := newSystem(t, lib, reg)

	id1 := runToStatus(t, sys, "O1", nil, wfdb.Committed)
	id2 := runToStatus(t, sys, "O2", nil, wfdb.Committed)
	_ = id1
	_ = id2

	// finishInstance must Forget the instance at the tracker: retired
	// instances may not linger in relative-order queues (they would block
	// every later instance of the conflicting class).
	tr := sys.Engine.coordinator.(*LocalCoordinator).tracker
	var q []coord.InstanceRef
	sys.Engine.Do(func() { q = tr.OrderQueue("orders") })
	if len(q) != 0 {
		t.Fatalf("order queue still holds %v after both instances retired", q)
	}
}

// TestInputChangeRollbackChargesInFlightResult pins the fix for the
// documented ~1.5% Table-4 load flake: when a rollback resets a step whose
// result is still in flight, onStepResult later drops that stale result
// without charging its result-processing unit, so total load used to depend
// on whether the result or the rollback won the race. rollbackTo now charges
// the dropped unit at reset time under the pre-rollback mechanism. The gates
// force the losing schedule deterministically: B's result is in flight (its
// program is parked) when the input change rolls A and B back, and A's
// re-execution parks too, so after ChangeInputs returns the only Normal-row
// charge since the snapshot is the recharged unit of B's doomed result.
func TestInputChangeRollbackChargesInFlightResult(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gateA := make(chan struct{})
	gateB := make(chan struct{})
	var gateBOnce sync.Once
	reg.Register("pa", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("a")
		if ctx.Attempt > 1 {
			<-gateA
		}
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"O1": expr.Num(v * 2)}, nil
	})
	reg.Register("pb", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add("b")
		gateBOnce.Do(func() { <-gateB })
		return nil, nil
	})
	s := model.NewSchema("ICF", "I1").
		Step("A", "pa", model.WithInputs("WF.I1"), model.WithOutputs("O1")).
		Step("B", "pb", model.WithInputs("A.O1")).
		Seq("A", "B").
		MustBuild()
	sys := newSystem(t, lib1(s), reg)
	col := sys.Collector()

	id, err := sys.Start("ICF", map[string]expr.Value{"I1": expr.Num(10)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("b") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Quiescent point: A's result is processed, B is dispatched and parked,
	// B's result is the one in-flight completion.
	normalBefore := col.TotalLoad(metrics.Normal)

	if err := sys.ChangeInputs("ICF", id, map[string]expr.Value{"I1": expr.Num(20)}); err != nil {
		t.Fatal(err)
	}
	// ChangeInputs runs synchronously on the engine goroutine: the rollback,
	// the recharge, and A's re-dispatch (charged to the InputChange row) are
	// done; A's re-execution is parked on gateA.
	if d := col.TotalLoad(metrics.Normal) - normalBefore; d != 1 {
		t.Errorf("Normal-row load delta across the racing rollback = %d, want exactly 1 (the dropped in-flight result's recharged unit)", d)
	}
	close(gateA)
	close(gateB)
	st, err := sys.Wait("ICF", id, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("wait = (%v, %v)", st, err)
	}
	snap, _ := sys.Snapshot("ICF", id)
	if !snap.Data["A.O1"].Equal(expr.Num(40)) {
		t.Errorf("A.O1 = %v, want 40 after input change", snap.Data["A.O1"])
	}
}

// TestRollbackOrderAppliesInstancesDeterministically pins the fix for a bug
// crewlint's mapiter analyzer found: applyRollbackOrder iterated the
// engine's instances map while emitting rollback and re-dispatch traffic,
// so the order dependent instances were rolled back — and therefore the
// emitted message sequence — changed from run to run with Go's randomized
// map order. Six dependent instances on a single agent make the applied
// order observable through the compensation programs; the engine must visit
// them in sorted instance-key order (probability of passing by accident
// with map order: 1/6!).
func TestRollbackOrderAppliesInstancesDeterministically(t *testing.T) {
	const n = 6
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("px1", tracked(rec, "x1", nil))
	reg.Register("px2", model.FailNTimes(1, tracked(rec, "x2", nil)))
	reg.Register("py1", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add(fmt.Sprintf("y1:%d", ctx.Instance))
		return nil, nil
	})
	reg.Register("cy1", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		rec.add(fmt.Sprintf("cy1:%d", ctx.Instance))
		return nil, nil
	})
	reg.Register("py2", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		gateOnce.Do(func() { <-gate })
		return nil, nil
	})
	x := model.NewSchema("X").
		Step("X1", "px1", model.WithAgents("a1")).
		Step("X2", "px2", model.WithAgents("a1")).
		Seq("X1", "X2").
		OnFailure("X2", "X1", 3).
		MustBuild()
	y := model.NewSchema("Y").
		Step("Y1", "py1", model.WithCompensation("cy1"), model.WithReexecCond("true"), model.WithAgents("a1")).
		Step("Y2", "py2", model.WithAgents("a2")).
		Seq("Y1", "Y2").
		MustBuild()
	lib := lib1(x, y)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "X", Step: "X1"},
		Target:  model.StepRef{Workflow: "Y", Step: "Y1"},
	})
	sys := newSystem(t, lib, reg)

	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := sys.Start("Y", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	deadline := time.Now().Add(waitTimeout)
	for {
		done := 0
		for _, id := range ids {
			if rec.count(fmt.Sprintf("y1:%d", id)) > 0 {
				done++
			}
		}
		if done == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d Y1 executions", done, n)
		}
		time.Sleep(time.Millisecond)
	}

	// X's failure rollback past X1 triggers the dependency on every running
	// Y instance.
	idX, err := sys.Start("X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := sys.Wait("X", idX, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("X = (%v, %v)", st, err)
	}
	close(gate)
	for _, id := range ids {
		if st, err := sys.Wait("Y", id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("Y.%d = (%v, %v)", id, st, err)
		}
	}

	var comps []string
	for _, e := range rec.list() {
		if strings.HasPrefix(e, "cy1:") {
			comps = append(comps, e)
		}
	}
	want := make([]string, 0, n)
	for _, id := range ids {
		want = append(want, fmt.Sprintf("cy1:%d", id))
	}
	if len(comps) != n {
		t.Fatalf("compensations = %v, want one per instance %v", comps, want)
	}
	for i := range want {
		if comps[i] != want[i] {
			t.Fatalf("dependent rollback order = %v, want sorted instance order %v", comps, want)
		}
	}
}
