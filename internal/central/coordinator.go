package central

import (
	"crew/internal/coord"
	"crew/internal/metrics"
	"crew/internal/model"
)

// Coordinator is the engine's hook for coordinated-execution requirements.
// The centralized architecture uses LocalCoordinator (the tracker lives in
// the engine: zero messages); the parallel architecture substitutes a
// message-based implementation with a home engine per library.
//
// All methods are invoked from the engine goroutine. Check must eventually
// lead to a CoordResolved call on the engine — synchronously for a local
// coordinator, via a message round-trip otherwise.
type Coordinator interface {
	Check(ref model.StepRef, inst coord.InstanceRef)
	StepDone(ref model.StepRef, inst coord.InstanceRef)
	// StepFailed releases coordination resources held for a failed attempt
	// without advancing relative-order queues.
	StepFailed(ref model.StepRef, inst coord.InstanceRef)
	Rollback(workflow string, invalidated []model.StepID)
	Forget(inst coord.InstanceRef)
}

// LocalCoordinator answers coordination questions from an in-engine tracker.
// This is the Table 4 configuration: coordination costs engine load but no
// physical messages.
type LocalCoordinator struct {
	eng     *Engine
	tracker *coord.Tracker
}

// NewLocalCoordinator builds the coordinator for a single central engine.
func NewLocalCoordinator(eng *Engine, tracker *coord.Tracker) *LocalCoordinator {
	return &LocalCoordinator{eng: eng, tracker: tracker}
}

func (c *LocalCoordinator) load(units int64) {
	c.eng.rec.Add(metrics.Coordination, units)
}

// Check implements Coordinator.
func (c *LocalCoordinator) Check(ref model.StepRef, inst coord.InstanceRef) {
	c.load(1)
	waits := c.tracker.OrderWait(ref, inst)
	grants, mutexWaits := c.tracker.MutexAcquire(ref, inst)
	waits = append(waits, mutexWaits...)
	for _, g := range grants {
		c.eng.injectLocal(g.Target, g.Event)
	}
	c.eng.coordResolved(inst, ref.Step, waits)
}

// StepDone implements Coordinator.
func (c *LocalCoordinator) StepDone(ref model.StepRef, inst coord.InstanceRef) {
	c.load(1)
	for _, inj := range c.tracker.OrderStepDone(ref, inst) {
		c.eng.injectLocal(inj.Target, inj.Event)
	}
	for _, inj := range c.tracker.MutexRelease(ref, inst) {
		c.eng.injectLocal(inj.Target, inj.Event)
	}
}

// StepFailed implements Coordinator.
func (c *LocalCoordinator) StepFailed(ref model.StepRef, inst coord.InstanceRef) {
	c.load(1)
	for _, inj := range c.tracker.MutexRelease(ref, inst) {
		c.eng.injectLocal(inj.Target, inj.Event)
	}
}

// Rollback implements Coordinator.
func (c *LocalCoordinator) Rollback(workflow string, invalidated []model.StepID) {
	c.load(1)
	for _, ord := range c.tracker.RollbackTriggered(workflow, invalidated) {
		c.eng.applyRollbackOrder(ord)
	}
}

// Forget implements Coordinator.
func (c *LocalCoordinator) Forget(inst coord.InstanceRef) {
	c.load(1)
	for _, inj := range c.tracker.OrderForget(inst) {
		c.eng.injectLocal(inj.Target, inj.Event)
	}
	for _, inj := range c.tracker.MutexForget(inst) {
		c.eng.injectLocal(inj.Target, inj.Event)
	}
}
