// Package central implements the centralized workflow control architecture
// (paper §2-3): a single workflow engine owns all workflow state in the
// WFDB, navigates every instance through the rule-based run-time, and
// dispatches steps to application agents, probing eligible agents' state to
// pick the least loaded. Coordinated execution needs no messages here — the
// ordering/mutex/rollback-dependency state lives inside the engine — which
// is exactly the property Table 4 reports (0 coordination messages).
//
// The same engine is reused by the parallel architecture (package parallel),
// which runs several engines side by side and replaces the local Coordinator
// with a message-based one.
package central

import (
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
)

func init() {
	// Register every payload this architecture puts on the transport, so wire
	// backends (unix/tcp sockets) can carry them across a process boundary.
	transport.RegisterPayload(ExecRequest{}, ExecResponse{}, StateRequest{}, StateResponse{})
}

// ExecRequest asks an agent to run a step program (or its compensation).
type ExecRequest struct {
	Workflow string
	Instance int
	Step     model.StepID
	Program  string
	Mode     model.ExecMode
	Attempt  int
	Inputs   map[string]expr.Value
	Prev     *model.PrevExecution
	// Mechanism tags the reply so failure-handling traffic is counted in
	// the right class.
	Mechanism metrics.Mechanism
	// ReplyTo names the engine to answer.
	ReplyTo string
}

// ExecResponse returns a step execution's outcome.
type ExecResponse struct {
	Workflow string
	Instance int
	Step     model.StepID
	Mode     model.ExecMode
	// Attempt echoes the request's attempt number, letting the engine
	// discard results of superseded dispatches (after a loop-back reset or
	// an engine restart) instead of relying on volatile bookkeeping.
	Attempt int
	Outputs map[string]expr.Value
	Failed  bool
	Reason  string
}

// StateRequest probes an agent's state (the StateInformation() WI); the
// engine uses the responses to pick the least-loaded eligible agent.
type StateRequest struct {
	ReplyTo   string
	Mechanism metrics.Mechanism
}

// StateResponse reports an agent's current load.
type StateResponse struct {
	Agent string
	Load  int64
}

// Message kind labels used for tracing.
const (
	KindStepExecute      = "StepExecute"
	KindStepCompensate   = "StepCompensate"
	KindStepResult       = "StepResult"
	KindStateInformation = "StateInformation"
	KindStateResponse    = "StateResponse"
)
